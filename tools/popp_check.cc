// Randomized invariant checker: run N seeded trials of random datasets and
// transform/builder configurations through the oracle suite, print a
// per-oracle pass/fail table, and shrink + persist the first failure as a
// CSV + recipe reproducer. See `popp_check --help`.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/runner.h"

namespace {

constexpr const char* kUsage = R"(usage: popp_check [options]

Runs seeded randomized trials of the popp invariant oracles
(encode_bijective, global_invariant, label_runs, tree_equivalence,
tree_equivalence_pruned, serialize_roundtrip, stream_vs_batch,
cols_vs_csv, compiled_vs_interpreted, fault_crash_safety,
shard_vs_stream, serve_vs_cli, parallel_determinism) and prints a pass/fail
table. On the first failure the case is shrunk to a minimal reproducer
and written as <out>/popp_check_repro.{csv,recipe}.

options:
  --trials N          number of random trials (default 200)
  --seed S            run seed (default 1)
  --time-budget-ms M  stop starting new trials after M ms (default: none)
  --oracle NAME       run only the named oracle
  --max-rows N        cap generated dataset rows (default 200)
  --max-attrs N       cap generated dataset attributes (default 4)
  --out DIR           directory for reproducer files (default .)
  --no-shrink         report failures without shrinking
  --replay FILE       re-run the oracle recorded in a reproducer recipe
  --help              this text

exit status: 0 all oracles passed, 1 a failure was found (or a replayed
recipe still fails), 2 bad usage.
)";

bool ParseUint(const std::string& text, uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  popp::check::CheckOptions options;
  std::string replay_path;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    uint64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--trials") {
      const std::string* v = value();
      if (!v || !ParseUint(*v, n) || n == 0) {
        std::cerr << "popp_check: --trials needs a positive integer\n";
        return 2;
      }
      options.trials = static_cast<size_t>(n);
    } else if (arg == "--seed") {
      const std::string* v = value();
      if (!v || !ParseUint(*v, n)) {
        std::cerr << "popp_check: --seed needs an integer\n";
        return 2;
      }
      options.seed = n;
    } else if (arg == "--time-budget-ms") {
      const std::string* v = value();
      if (!v || !ParseUint(*v, n)) {
        std::cerr << "popp_check: --time-budget-ms needs an integer\n";
        return 2;
      }
      options.time_budget_ms = n;
    } else if (arg == "--oracle") {
      const std::string* v = value();
      if (!v) {
        std::cerr << "popp_check: --oracle needs a name\n";
        return 2;
      }
      bool known = false;
      for (const auto& oracle : popp::check::AllOracles()) {
        known = known || oracle.name == *v;
      }
      if (!known) {
        std::cerr << "popp_check: no oracle named '" << *v << "' (have:";
        for (const auto& oracle : popp::check::AllOracles()) {
          std::cerr << " " << oracle.name;
        }
        std::cerr << ")\n";
        return 2;
      }
      options.only_oracle = *v;
    } else if (arg == "--max-rows") {
      const std::string* v = value();
      if (!v || !ParseUint(*v, n) || n == 0) {
        std::cerr << "popp_check: --max-rows needs a positive integer\n";
        return 2;
      }
      options.generator.max_rows = static_cast<size_t>(n);
      options.generator.min_rows =
          std::min(options.generator.min_rows, options.generator.max_rows);
    } else if (arg == "--max-attrs") {
      const std::string* v = value();
      if (!v || !ParseUint(*v, n) || n == 0) {
        std::cerr << "popp_check: --max-attrs needs a positive integer\n";
        return 2;
      }
      options.generator.max_attributes = static_cast<size_t>(n);
      options.generator.min_attributes = std::min(
          options.generator.min_attributes, options.generator.max_attributes);
    } else if (arg == "--out") {
      const std::string* v = value();
      if (!v) {
        std::cerr << "popp_check: --out needs a directory\n";
        return 2;
      }
      options.out_dir = *v;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--replay") {
      const std::string* v = value();
      if (!v) {
        std::cerr << "popp_check: --replay needs a recipe file\n";
        return 2;
      }
      replay_path = *v;
    } else {
      std::cerr << "popp_check: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  if (!replay_path.empty()) {
    auto result = popp::check::ReplayRecipe(replay_path, std::cerr);
    if (!result.ok()) {
      std::cerr << "popp_check: " << result.status().ToString() << "\n";
      return 2;
    }
    if (result.value().passed) {
      std::cout << "replay: PASS (the recorded failure no longer occurs)\n";
      return 0;
    }
    std::cout << "replay: FAIL — " << result.value().message << "\n";
    return 1;
  }

  const popp::check::CheckReport report =
      popp::check::RunChecks(options, std::cerr);
  std::cout << popp::check::RenderReport(report);
  if (!report.reproducer_recipe.empty()) {
    std::cout << "reproducer: " << report.reproducer_csv << " ("
              << report.reproducer_rows << " rows), replay with\n  popp_check"
              << " --replay " << report.reproducer_recipe << "\n";
  }
  return report.AllPassed() ? 0 : 1;
}
