#!/usr/bin/env bash
# CI gate: sanitized build, full test suite, and a bounded fuzz run.
#
# Usage: tools/ci_check.sh [build-dir]
#
# Builds with ASan+UBSan (POPP_SANITIZE=address,undefined), runs ctest,
# then hammers the invariant oracles with a bounded popp_check run. Any
# failure — test, sanitizer report, or oracle — fails the script.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"

echo "== configure (ASan+UBSan) =="
cmake -B "$build_dir" -S "$repo_root" \
  -DPOPP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== build =="
cmake --build "$build_dir" -j

echo "== ctest =="
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "== popp_check (bounded) =="
"$build_dir/tools/popp_check" --trials 200 --seed 7 --out "$build_dir"

echo "ci_check: all gates passed"
