#!/usr/bin/env bash
# CI gate: sanitized builds, full test suite, and bounded fuzz runs.
#
# Usage: tools/ci_check.sh [build-dir]
#
# Stage 1 builds with ASan+UBSan (POPP_SANITIZE=address,undefined), runs
# ctest, then hammers the invariant oracles — including stream_vs_batch,
# the streamed-release == batch-release contract — with a bounded
# popp_check run. Stage 2 rebuilds with TSan (POPP_SANITIZE=thread) and
# runs the parallel execution layer's tests, the streaming release tests,
# the compiled-kernel tests, the frontier tree builder's stress battery
# (which sweeps 1/2/3/7/8-thread builds against the serial bytes), and
# the parallel_determinism + stream_vs_batch + compiled_vs_interpreted
# oracles, which exercise every ThreadPool/ParallelFor path under real
# concurrency. Both stages also run the shard_vs_stream oracle plus the
# sharded-release test battery (fork-based worker suites only under ASan
# — TSan cannot host fork()), the serve_vs_cli oracle and the
# popp-serve test battery (byte-identity, tenant isolation, malformed
# frames, kill-mid-request crash schedules), and a final smoke stage
# round-trips a real popp-serve process against `popp encode`. Both
# stages also run the supervised_convergence oracle — randomized
# crash/error/delay schedules over the shard pipeline and the admission-
# controlled daemon, under a hard wall-clock timeout so an undetected
# hang fails the gate instead of stalling it — plus the resilience-layer
# test battery (retry/deadline/admission, the worker watchdog, the
# startup debris sweep and the hang-injection fail points). Any
# failure — test, sanitizer report, oracle, or timeout — fails the
# script.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
tsan_build_dir="${build_dir}-tsan"

echo "== configure (ASan+UBSan) =="
cmake -B "$build_dir" -S "$repo_root" \
  -DPOPP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== build =="
cmake --build "$build_dir" -j

echo "== ctest =="
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "== popp_check (bounded) =="
"$build_dir/tools/popp_check" --trials 200 --seed 7 --out "$build_dir"

echo "== fault injection: crash-safety oracle + corrupt corpus under ASan =="
# The fault_crash_safety oracle proves the atomic-rename + journal
# contract under randomized injected errors, torn writes and simulated
# kills; the corrupt-corpus and fault-layer tests pin the integrity
# diagnostics. Both run under ASan so leaked handles or buffer slips in
# the error paths fail the gate too.
"$build_dir/tools/popp_check" --oracle fault_crash_safety \
  --trials 25 --seed 11 --out "$build_dir"
"$build_dir/tests/popp_tests" \
  --gtest_filter='FailPoint*:FaultFile*:Manifest*:FaultCrashSafety*:SerializeGolden.Corrupt*:SerializeGolden.Legacy*:SerializeGolden.Cols*:Cols*'

echo "== cols_vs_csv oracle under ASan (bounded) =="
# The interchange-format contract: CSV -> popp-cols -> CSV is the
# identity, and a release fed from either format is byte-identical.
"$build_dir/tools/popp_check" --oracle cols_vs_csv \
  --trials 50 --seed 13 --out "$build_dir"

echo "== serve_vs_cli oracle + serving tests under ASan =="
# The serving contract: daemon-served encodes must be byte-identical to
# the one-shot CLI at 1/2/7 request threads in both framings, repeat
# requests must hit the plan cache, tenants stay isolated, and the
# kill-daemon-mid-request schedules (faults injected into the server-side
# SavePlan) must never leave a partial key. The test battery adds the
# malformed-frame, lifecycle and LRU-eviction cases.
"$build_dir/tools/popp_check" --oracle serve_vs_cli \
  --trials 10 --seed 17 --out "$build_dir"
"$build_dir/tests/popp_tests" \
  --gtest_filter='ServeProtocol*:PlanCache*:WorkspaceRegistry*:ServeEndToEnd*:ServeLifecycle*:CliServe*'

echo "== shard_vs_stream oracle + sharded-release tests under ASan =="
# The sharded-release contract: concatenated shard files are byte-identical
# to the single-process stream-release at every shard count, thread count
# and input format; the merge tree is order-robust; a published
# meta-manifest always verifies; randomized kill schedules either surface
# an error or leave a fully correct release, and --resume converges to the
# same bytes. ShardProcess*/CliShardProcess* fork real worker processes —
# fine under ASan, excluded from the TSan stage below.
"$build_dir/tools/popp_check" --oracle shard_vs_stream \
  --trials 10 --seed 19 --out "$build_dir"
"$build_dir/tests/popp_tests" \
  --gtest_filter='SplitRows*:CountRows*:RangeChunkReader*:SkipRows*:SummaryCodec*:MergeProperty*:ShardRelease*:ShardResume*:ShardProcess*:ShardOracle*:MetaManifest*:CliTest.Shard*:CliTest.VerifyManifest*:CliShardProcess*:CliBasicsTest.Shard*'

echo "== supervised_convergence oracle + resilience tests under ASan =="
# The supervision/overload contract: randomized crash/error/delay
# schedules over both execution backends must converge byte-identically
# or fail loudly — never hang, never leave debris. 40 trials x (3 shard
# + 3 serve) schedules = 240 randomized schedules. The hard timeout is
# the hang detector of last resort: a supervision bug that deadlocks the
# oracle fails the gate here instead of wedging CI. The battery adds the
# deterministic cases: backoff/deadline/admission units, watchdog kills
# and quarantine (fork-based, ASan only), queue-full shedding, the
# debris sweep, and the delay fail-point semantics.
timeout 900 "$build_dir/tools/popp_check" --oracle supervised_convergence \
  --trials 40 --seed 29 --out "$build_dir"
"$build_dir/tests/popp_tests" \
  --gtest_filter='ResilRetry*:ResilDeadline*:ResilHeartbeat*:ResilAdmission*:ResilSupervisor*:ServeAdmission*:ShardSweep*:ShardProcessSupervision*:FailPointDelay*'

echo "== configure (TSan) =="
cmake -B "$tsan_build_dir" -S "$repo_root" \
  -DPOPP_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== build (TSan) =="
cmake --build "$tsan_build_dir" -j --target popp_tests popp_check

echo "== parallel + streaming tests under TSan =="
"$tsan_build_dir/tests/popp_tests" \
  --gtest_filter='ThreadPool*:ParallelFor*:ParallelEquality*:TrialStream*:StreamRelease*:OodPolicy*:IncrementalSummary*:ChunkIo*:Cols*:Compiled*'

echo "== frontier builder stress battery under TSan (1/2/3/7/8 threads) =="
# The builder tests byte-compare every parallel build — including the
# tie-saturated adversarial inputs and the columnar-partition internals —
# against the serial tree, so a TSan-visible race OR a scheduling-order
# dependence in the frontier engine (frontier scans, subtree solver,
# side-mask marking) fails here. Each stress case sweeps 1/2/3/7/8
# worker threads.
"$tsan_build_dir/tests/popp_tests" \
  --gtest_filter='BuilderParallel*:BuilderEdge*:ColumnarPartitions*'

echo "== stream resume under TSan (kill-point sweep + --resume at 7 threads) =="
# The resume sweep re-runs the multi-threaded encode on top of the
# journal recovery path; the CLI pass drives the same machinery end to
# end with --threads 7 and verifies the resumed artifact byte-for-byte.
"$tsan_build_dir/tests/popp_tests" --gtest_filter='StreamResume*'
cmake --build "$tsan_build_dir" -j --target popp_cli
resume_dir="$tsan_build_dir/resume-e2e"
mkdir -p "$resume_dir"
awk 'BEGIN {
  srand(5); print "x,y,z,class";
  for (i = 0; i < 2000; i++)
    printf "%d,%d,%.3f,%s\n", int(rand()*100), int(rand()*50), rand()*10,
           (rand() < 0.5 ? "a" : "b");
}' > "$resume_dir/data.csv"
"$tsan_build_dir/tools/popp" stream-release "$resume_dir/data.csv" \
  "$resume_dir/plain.csv" "$resume_dir/plain.key" \
  --seed 9 --chunk-rows 101 --threads 7
"$tsan_build_dir/tools/popp" stream-release "$resume_dir/data.csv" \
  "$resume_dir/resumed.csv" "$resume_dir/resumed.key" \
  --seed 9 --chunk-rows 101 --threads 7 --resume
cmp "$resume_dir/plain.csv" "$resume_dir/resumed.csv"
cmp "$resume_dir/plain.key" "$resume_dir/resumed.key"

echo "== parallel_determinism oracle under TSan (bounded) =="
"$tsan_build_dir/tools/popp_check" --oracle parallel_determinism \
  --trials 25 --seed 7 --out "$tsan_build_dir"

echo "== stream_vs_batch oracle under TSan (bounded) =="
"$tsan_build_dir/tools/popp_check" --oracle stream_vs_batch \
  --trials 25 --seed 7 --out "$tsan_build_dir"

echo "== compiled_vs_interpreted oracle under TSan (bounded) =="
"$tsan_build_dir/tools/popp_check" --oracle compiled_vs_interpreted \
  --trials 25 --seed 7 --out "$tsan_build_dir"

echo "== cols_vs_csv oracle under TSan (bounded) =="
"$tsan_build_dir/tools/popp_check" --oracle cols_vs_csv \
  --trials 25 --seed 7 --out "$tsan_build_dir"

echo "== shard_vs_stream oracle + sharded-release tests under TSan =="
# Thread-mode shard workers under real concurrency: the summarize/encode
# ThreadPool fan-out, the failpoint layer's shared counters, and the
# resume path all run with TSan watching. The fork-based ShardProcess*
# suites are excluded — TSan cannot host fork()ed children.
"$tsan_build_dir/tools/popp_check" --oracle shard_vs_stream \
  --trials 8 --seed 19 --out "$tsan_build_dir"
"$tsan_build_dir/tests/popp_tests" \
  --gtest_filter='SplitRows*:CountRows*:RangeChunkReader*:SkipRows*:SummaryCodec*:MergeProperty*:ShardRelease*:ShardResume*:ShardOracle*:MetaManifest*:CliTest.Shard*:CliTest.VerifyManifest*:-*ShardProcess*'

echo "== serve_vs_cli oracle + concurrent serving tests under TSan =="
# The daemon's accept loop, per-tenant locking and drain path under real
# concurrency: four tenants hammer one daemon from four client threads
# while TSan watches the ThreadPool handoffs, then the oracle replays the
# byte-identity + crash-schedule sweep.
"$tsan_build_dir/tools/popp_check" --oracle serve_vs_cli \
  --trials 8 --seed 7 --out "$tsan_build_dir"
"$tsan_build_dir/tests/popp_tests" \
  --gtest_filter='ServeEndToEnd*:ServeLifecycle*:ServeProtocol*'

echo "== supervised_convergence oracle + resilience tests under TSan =="
# The same contract with TSan watching the admission controller's
# cv/grant hand-offs, the daemon's deadline checks and the thread-mode
# shard pipeline under injected delays. 35 trials x 6 schedules = 210
# randomized schedules. The fork-based ResilSupervisor* and
# ShardProcessSupervision* suites are excluded — TSan cannot host fork().
timeout 900 "$tsan_build_dir/tools/popp_check" \
  --oracle supervised_convergence --trials 35 --seed 29 \
  --out "$tsan_build_dir"
"$tsan_build_dir/tests/popp_tests" \
  --gtest_filter='ResilRetry*:ResilDeadline*:ResilHeartbeat*:ResilAdmission*:ServeAdmission*:ShardSweep*:FailPointDelay*'

echo "== serve smoke: daemon round trip vs one-shot CLI =="
# Start a real popp-serve process, push one cols-framed encode through
# `popp serve-client`, byte-compare against `popp encode`, then shut the
# daemon down and verify it drained (exit 0) and removed its socket.
cmake --build "$build_dir" -j --target popp_serve popp_cli
serve_dir="$build_dir/serve-e2e"
rm -rf "$serve_dir" && mkdir -p "$serve_dir"
awk 'BEGIN {
  srand(3); print "u,v,w,class";
  for (i = 0; i < 1500; i++)
    printf "%d,%.3f,%.3f,%s\n", int(rand()*80), rand()*20, rand()*5,
           (rand() < 0.5 ? "p" : "q");
}' > "$serve_dir/data.csv"
"$build_dir/tools/popp" convert "$serve_dir/data.csv" \
  "$serve_dir/data.cols"
"$build_dir/tools/popp" encode "$serve_dir/data.csv" \
  "$serve_dir/oneshot.csv" "$serve_dir/oneshot.key" --seed 21 --policy bp
sock="$serve_dir/popp.sock"
"$build_dir/tools/popp-serve" "$sock" --threads 2 &
serve_pid=$!
for _ in $(seq 50); do [ -S "$sock" ] && break; sleep 0.1; done
"$build_dir/tools/popp" serve-client "$sock" encode \
  "$serve_dir/data.csv" "$serve_dir/served.csv" --seed 21 --policy bp
cmp "$serve_dir/oneshot.csv" "$serve_dir/served.csv"
"$build_dir/tools/popp" serve-client "$sock" encode \
  "$serve_dir/data.cols" "$serve_dir/served.cols" --seed 21 --policy bp
"$build_dir/tools/popp" convert "$serve_dir/served.cols" \
  "$serve_dir/served_from_cols.csv"
cmp "$serve_dir/oneshot.csv" "$serve_dir/served_from_cols.csv"
"$build_dir/tools/popp" serve-client "$sock" shutdown
wait "$serve_pid"
[ ! -e "$sock" ] || { echo "daemon left its socket behind"; exit 1; }

echo "ci_check: all gates passed"
