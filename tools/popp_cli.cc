// The `popp` command-line tool: encode data, mine trees, decode results,
// verify the no-outcome-change guarantee and build risk reports from the
// shell. See `popp help`.

#include <iostream>
#include <string>
#include <vector>

#include "core/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return popp::RunCli(args, std::cout, std::cerr);
}
