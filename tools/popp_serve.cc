// popp-serve: the persistent multi-tenant custodian daemon. Listens on a
// Unix domain socket, keeps fitted plans hot in per-tenant LRU caches,
// and serves fit/encode/decode/verify/risk/stats/shutdown requests over
// the length-prefixed binary protocol (src/serve/). Drive it with
// `popp serve-client`.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "serve/server.h"

namespace {

constexpr const char* kUsage = R"(usage: popp-serve <socket-path> [options]

Starts the custodian daemon on a Unix domain socket. Plans are fitted
once per (schema fingerprint, seed, policy) and kept hot in a per-tenant
LRU, so a warm encode is one compiled-kernel pass instead of a refit.
Requests are issued with `popp serve-client <socket-path> <op> ...`.

options:
  --threads N           connection worker threads      (default 4)
  --cache-capacity N    per-tenant hot-plan LRU size   (default 64)
  --max-request-threads N
                        ceiling on a request's ExecPolicy (default 16)
  --save-dir DIR        root for request `save` targets; clients name a
                        relative path, confined to DIR/<tenant>/.
                        Without this flag server-side saves are refused
                        (a socket peer gets no filesystem writes).
  --max-inflight N      concurrent-execution cap across all tenants
                        (default 0 = match --threads)
  --max-queue N         admission queue bound; the next waiter is shed
                        with an explicit overloaded reply (default 16)
  --tenant-cap N        per-tenant concurrent-execution cap
                        (default 0 = off)
  --help                this text

lifecycle: SIGTERM/SIGINT drain in-flight requests, remove the socket
file and exit 0. Starting on a socket another live daemon is bound to
fails with exit 2; a stale socket file (its daemon is gone) is reclaimed.

exit codes: 0 graceful shutdown, 1 runtime failure, 2 usage error
(including a live socket), 3 socket/I-O error.
)";

bool ParseSize(const std::string& text, size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  popp::serve::ServeOptions options;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--threads") {
      const std::string* v = value();
      if (!v || !ParseSize(*v, &options.num_threads) ||
          options.num_threads == 0) {
        std::cerr << "popp-serve: --threads needs a positive integer\n";
        return 2;
      }
    } else if (arg == "--cache-capacity") {
      const std::string* v = value();
      if (!v || !ParseSize(*v, &options.cache_capacity) ||
          options.cache_capacity == 0) {
        std::cerr << "popp-serve: --cache-capacity needs a positive "
                     "integer\n";
        return 2;
      }
    } else if (arg == "--max-request-threads") {
      const std::string* v = value();
      if (!v || !ParseSize(*v, &options.max_request_threads) ||
          options.max_request_threads == 0) {
        std::cerr << "popp-serve: --max-request-threads needs a positive "
                     "integer\n";
        return 2;
      }
    } else if (arg == "--max-inflight") {
      const std::string* v = value();
      if (!v || !ParseSize(*v, &options.max_inflight)) {
        std::cerr << "popp-serve: --max-inflight needs an integer "
                     "(0 = match --threads)\n";
        return 2;
      }
    } else if (arg == "--max-queue") {
      const std::string* v = value();
      if (!v || !ParseSize(*v, &options.max_queue)) {
        std::cerr << "popp-serve: --max-queue needs an integer\n";
        return 2;
      }
    } else if (arg == "--tenant-cap") {
      const std::string* v = value();
      if (!v || !ParseSize(*v, &options.per_tenant_inflight)) {
        std::cerr << "popp-serve: --tenant-cap needs an integer (0 = off)\n";
        return 2;
      }
    } else if (arg == "--save-dir") {
      const std::string* v = value();
      if (!v || v->empty()) {
        std::cerr << "popp-serve: --save-dir needs a directory path\n";
        return 2;
      }
      options.save_dir = *v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "popp-serve: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else if (options.socket_path.empty()) {
      options.socket_path = arg;
    } else {
      std::cerr << "popp-serve: unexpected argument '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  return popp::serve::RunServer(options, std::cout, std::cerr);
}
