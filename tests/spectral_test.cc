#include <gtest/gtest.h>

#include <cmath>

#include "attack/spectral.h"
#include "perturb/perturbation.h"
#include "synth/presets.h"
#include "transform/plan.h"

namespace popp {
namespace {

// ----------------------------------------------------------------- eigen --

TEST(EigenTest, DiagonalMatrix) {
  const auto result = SymmetricEigen({{3, 0, 0}, {0, 7, 0}, {0, 0, 1}});
  ASSERT_EQ(result.values.size(), 3u);
  EXPECT_NEAR(result.values[0], 7, 1e-10);
  EXPECT_NEAR(result.values[1], 3, 1e-10);
  EXPECT_NEAR(result.values[2], 1, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors (1,1), (1,-1).
  const auto result = SymmetricEigen({{2, 1}, {1, 2}});
  EXPECT_NEAR(result.values[0], 3, 1e-10);
  EXPECT_NEAR(result.values[1], 1, 1e-10);
  EXPECT_NEAR(std::fabs(result.vectors[0][0]), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::fabs(result.vectors[0][1]), std::sqrt(0.5), 1e-8);
}

TEST(EigenTest, ReconstructsMatrix) {
  const std::vector<std::vector<double>> m = {
      {4, 1, 0.5}, {1, 3, -1}, {0.5, -1, 2}};
  const auto e = SymmetricEigen(m);
  // sum_i lambda_i v_i v_i^T == m.
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      double sum = 0.0;
      for (size_t i = 0; i < 3; ++i) {
        sum += e.values[i] * e.vectors[i][r] * e.vectors[i][c];
      }
      EXPECT_NEAR(sum, m[r][c], 1e-8);
    }
  }
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  const auto e = SymmetricEigen({{5, 2, 1}, {2, 4, 0}, {1, 0, 3}});
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < 3; ++k) {
        dot += e.vectors[i][k] * e.vectors[j][k];
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(EigenTest, RejectsAsymmetric) {
  EXPECT_DEATH(SymmetricEigen({{1, 2}, {3, 4}}), "symmetric");
}

// ------------------------------------------------------------ covariance --

TEST(CovarianceTest, IndependentColumns) {
  Rng rng(3);
  Dataset d({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 5000; ++i) {
    d.AddRow({rng.Gaussian(0, 2), rng.Gaussian(0, 5)}, 0);
  }
  d.AddRow({0, 0}, 1);  // schema needs both classes? (not for covariance)
  const auto cov = CovarianceMatrix(d);
  EXPECT_NEAR(cov[0][0], 4.0, 0.3);
  EXPECT_NEAR(cov[1][1], 25.0, 1.5);
  EXPECT_NEAR(cov[0][1], 0.0, 0.5);
}

TEST(CovarianceTest, PerfectlyCorrelated) {
  Dataset d({"x", "y"}, {"a"});
  for (int i = 0; i < 100; ++i) {
    d.AddRow({static_cast<double>(i), 2.0 * i}, 0);
  }
  const auto cov = CovarianceMatrix(d);
  EXPECT_NEAR(cov[0][1] / std::sqrt(cov[0][0] * cov[1][1]), 1.0, 1e-9);
}

// --------------------------------------------------------- the attack --

TEST(SpectralAttackTest, FiltersNoiseFromCorrelatedData) {
  Rng rng(7);
  const Dataset original = MakeCorrelatedDataset(4000, 8, 2, 5.0, rng);
  PerturbOptions perturb;
  perturb.scale_fraction = 0.25;
  perturb.round_to_int = false;
  perturb.clamp_to_range = false;
  Rng noise_rng(11);
  const Dataset released = PerturbDataset(original, perturb, noise_rng);

  SpectralFilterOptions options;
  for (size_t a = 0; a < original.NumAttributes(); ++a) {
    const auto& col = original.Column(a);
    const double width = *std::max_element(col.begin(), col.end()) -
                         *std::min_element(col.begin(), col.end());
    // Uniform noise on [-s, s] has stddev s/sqrt(3).
    options.noise_stddev.push_back(perturb.scale_fraction *
                                   std::max(width, 1.0) / std::sqrt(3.0));
  }
  const Dataset filtered = SpectralNoiseFilter(released, options);

  // Filtering must cut the reconstruction error substantially on every
  // attribute (the signal lives in 2 latent dimensions).
  for (size_t a = 0; a < original.NumAttributes(); ++a) {
    const double raw = MeanAbsoluteError(original, released, a);
    const double recovered = MeanAbsoluteError(original, filtered, a);
    EXPECT_LT(recovered, raw * 0.55) << "attr " << a << ": raw " << raw
                                     << " filtered " << recovered;
  }
}

TEST(SpectralAttackTest, CrackFractionRises) {
  Rng rng(13);
  const Dataset original = MakeCorrelatedDataset(3000, 8, 2, 5.0, rng);
  PerturbOptions perturb;
  perturb.scale_fraction = 0.25;
  perturb.round_to_int = false;
  perturb.clamp_to_range = false;
  Rng noise_rng(17);
  const Dataset released = PerturbDataset(original, perturb, noise_rng);
  SpectralFilterOptions options;
  for (size_t a = 0; a < original.NumAttributes(); ++a) {
    const auto& col = original.Column(a);
    const double width = *std::max_element(col.begin(), col.end()) -
                         *std::min_element(col.begin(), col.end());
    options.noise_stddev.push_back(perturb.scale_fraction *
                                   std::max(width, 1.0) / std::sqrt(3.0));
  }
  const Dataset filtered = SpectralNoiseFilter(released, options);
  // rho = 2% of the first attribute's range.
  const auto& col = original.Column(0);
  const double rho = 0.02 * (*std::max_element(col.begin(), col.end()) -
                             *std::min_element(col.begin(), col.end()));
  EXPECT_GT(CrackFraction(original, filtered, 0, rho),
            2.0 * CrackFraction(original, released, 0, rho));
}

TEST(SpectralAttackTest, UselessAgainstPiecewiseTransforms) {
  // The popp release is not signal-plus-noise: treating it as such and
  // filtering recovers essentially nothing.
  Rng rng(19);
  const Dataset original = MakeCorrelatedDataset(2000, 6, 2, 5.0, rng);
  PiecewiseOptions plan_options;
  plan_options.min_breakpoints = 15;
  const TransformPlan plan =
      TransformPlan::Create(original, plan_options, rng);
  const Dataset released = plan.EncodeDataset(original);

  SpectralFilterOptions options;
  options.noise_stddev.assign(original.NumAttributes(), 1.0);
  const Dataset filtered = SpectralNoiseFilter(released, options);
  const auto& col = original.Column(0);
  const double rho = 0.02 * (*std::max_element(col.begin(), col.end()) -
                             *std::min_element(col.begin(), col.end()));
  EXPECT_LT(CrackFraction(original, filtered, 0, rho), 0.15);
}

TEST(SpectralAttackTest, HelperMetrics) {
  Dataset a({"x"}, {"c"});
  Dataset b({"x"}, {"c"});
  a.AddRow({10}, 0);
  a.AddRow({20}, 0);
  b.AddRow({11}, 0);
  b.AddRow({25}, 0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(a, b, 0), 3.0);
  EXPECT_DOUBLE_EQ(CrackFraction(a, b, 0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(CrackFraction(a, b, 0, 5.0), 1.0);
}

}  // namespace
}  // namespace popp
