#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "data/cols.h"
#include "data/csv.h"
#include "fault/file.h"
#include "fault/mmap.h"
#include "stream/chunk_io.h"
#include "stream/cols_io.h"
#include "stream/streaming_custodian.h"
#include "transform/serialize.h"
#include "util/rng.h"

/// \file
/// popp-cols v1 coverage: bit-exact round trips (including the values that
/// bite CSV), the dict-vs-raw encoding decision, the chunked reader's
/// mmap/buffered seams, and the acceptance contract of the format switch —
/// a streamed release fed from popp-cols is byte-identical to the batch
/// release at every chunk size x thread count.

namespace popp {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Dataset SmallDataset() {
  Dataset d({"x", "y"}, {"a", "b", "c"});
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    d.AddRow({rng.Uniform(-50.0, 50.0), static_cast<double>(i % 7)},
             static_cast<ClassId>(i % 3));
  }
  return d;
}

// ------------------------------------------------------------------------
// Round trips

TEST(ColsRoundTrip, SmallDatasetIsIdentity) {
  const Dataset d = SmallDataset();
  auto back = ParseCols(SerializeCols(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == d);
}

TEST(ColsRoundTrip, SerializationIsByteStable) {
  const Dataset d = SmallDataset();
  const std::string bytes = SerializeCols(d);
  auto back = ParseCols(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(SerializeCols(back.value()), bytes);
}

TEST(ColsRoundTrip, AdversarialValuesRoundTripBitExact) {
  // The values that historically bite text formats: denormals, adjacent
  // doubles, negative zero, NaN (with a payload), infinities. CSV cannot
  // carry the last two; the binary container must carry all of them.
  const double quiet_nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> values = {
      -std::numeric_limits<double>::infinity(),
      -1e150,
      -5e-324,
      -0.0,
      0.0,
      5e-324,
      1e-300,
      1.0,
      std::nextafter(1.0, 2.0),
      3.141592653589793,
      0.1,
      1e150,
      std::numeric_limits<double>::infinity(),
      quiet_nan,
      -quiet_nan,
  };
  Dataset d({"x"}, {"a", "b"});
  for (size_t i = 0; i < values.size(); ++i) {
    d.AddRow({values[i]}, static_cast<ClassId>(i % 2));
  }
  auto back = ParseCols(SerializeCols(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().NumRows(), d.NumRows());
  for (size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(Bits(back.value().Value(r, 0)), Bits(d.Value(r, 0)))
        << "row " << r;
    EXPECT_EQ(back.value().Label(r), d.Label(r)) << "row " << r;
  }
  // -0.0 and 0.0 are distinct dictionary entries, not collapsed.
  EXPECT_NE(Bits(back.value().Value(3, 0)), Bits(back.value().Value(4, 0)));
}

TEST(ColsRoundTrip, ZeroRowDatasetKeepsTheSchema) {
  Dataset d({"x", "y", "z"}, {"only"});
  auto back = ParseCols(SerializeCols(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().NumRows(), 0u);
  EXPECT_EQ(back.value().NumAttributes(), 3u);
  EXPECT_TRUE(back.value() == d);
}

TEST(ColsRoundTrip, EmptyColumnsDatasetRoundTrips) {
  // Zero attributes, labels only — every extent except the columns.
  Dataset d(std::vector<std::string>{}, {"a", "b"});
  d.AddRow({}, 0);
  d.AddRow({}, 1);
  d.AddRow({}, 1);
  auto back = ParseCols(SerializeCols(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == d);
}

TEST(ColsRoundTrip, DictVersusRawChoiceFollowsSize) {
  // 120 rows: column 0 has 6 distinct values (dict wins), column 1 is
  // all-distinct (raw wins: 8 + 120*8 + 120 > 120*8).
  Dataset d({"lowcard", "unique"}, {"a"});
  for (int i = 0; i < 120; ++i) {
    d.AddRow({static_cast<double>(i % 6), i * 1.25}, 0);
  }
  ColsStats stats;
  const std::string bytes = SerializeCols(d, &stats);
  EXPECT_EQ(stats.dict_columns, 1u);
  EXPECT_EQ(stats.raw_columns, 1u);
  EXPECT_EQ(stats.bytes, bytes.size());
  auto view = ColsView::Open(bytes);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view.value().is_dict(0));
  EXPECT_FALSE(view.value().is_dict(1));
}

TEST(ColsRoundTrip, SchemaNamesWithCsvMetacharactersSurvive) {
  // Names are length-prefixed binary, so commas, quotes and newlines need
  // no escaping at all.
  Dataset d({"a,b", "c\"d"}, {"class,with,commas", "line\nbreak"});
  d.AddRow({1.0, 2.0}, 0);
  d.AddRow({3.0, 4.0}, 1);
  auto back = ParseCols(SerializeCols(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == d);
}

// ------------------------------------------------------------------------
// CSV -> cols -> CSV through the quirks CSV is known for

struct CsvQuirkCase {
  const char* name;
  const char* text;
};

TEST(ColsCsvBridge, CsvQuirksConvertLosslessly) {
  const CsvQuirkCase cases[] = {
      {"crlf", "x,y,class\r\n1,2,a\r\n3,4,b\r\n"},
      {"missing_trailing_newline", "x,y,class\n1,2,a\n3,4,b"},
      {"quoted_fields", "x,y,\"cl,ass\"\n1,2,\"a\"\"q\"\n3,4,\"b,c\"\n"},
      {"hex_float_cells", "x,y,class\n0x1.8p1,-0x1p-3,a\n0x0p0,2,b\n"},
      {"negative_zero", "x,y,class\n-0,0,a\n1,2,b\n"},
  };
  for (const auto& c : cases) {
    auto parsed = ParseCsv(c.text);
    ASSERT_TRUE(parsed.ok()) << c.name << ": " << parsed.status().ToString();
    auto back = ParseCols(SerializeCols(parsed.value()));
    ASSERT_TRUE(back.ok()) << c.name << ": " << back.status().ToString();
    EXPECT_TRUE(back.value() == parsed.value()) << c.name;
    // The canonical CSV bytes survive the binary detour untouched.
    EXPECT_EQ(ToCsvString(back.value()), ToCsvString(parsed.value()))
        << c.name;
  }
}

TEST(ColsCsvBridge, NegativeZeroSurvivesTheFullCycle) {
  auto parsed = ParseCsv("x,class\n-0,a\n0,b\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(std::signbit(parsed.value().Value(0, 0)));
  auto back = ParseCols(SerializeCols(parsed.value()));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::signbit(back.value().Value(0, 0)));
  EXPECT_FALSE(std::signbit(back.value().Value(1, 0)));
}

TEST(ColsCsvBridge, QuotedFieldsSpanningTinyReadBuffersConvert) {
  // Stream a CSV whose quoted class labels straddle every read-buffer
  // seam, feed the chunks into a cols writer, and require the container
  // to reproduce the one-shot parse exactly.
  const std::string csv_path = TempPath("cols_quoted_seams.csv");
  const std::string csv_text =
      "x,\"cl,ass\"\n1,\"alpha,beta\"\n2,\"gam\"\"ma\"\n3,\"alpha,beta\"\n";
  ASSERT_TRUE(fault::WriteFileAtomic(csv_path, csv_text).ok());
  auto whole = ParseCsv(csv_text);
  ASSERT_TRUE(whole.ok());
  for (const size_t buffer_bytes : {1u, 2u, 7u}) {
    stream::CsvChunkReader reader(csv_path, {}, buffer_bytes);
    const std::string cols_path = TempPath("cols_quoted_seams.cols");
    stream::ColsChunkWriter writer(cols_path);
    for (;;) {
      auto chunk = reader.NextChunk(2);
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (chunk.value().NumRows() == 0) break;
      ASSERT_TRUE(writer.Append(chunk.value()).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    auto loaded = ReadCols(cols_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded.value() == whole.value())
        << "buffer_bytes=" << buffer_bytes;
    std::remove(cols_path.c_str());
  }
  std::remove(csv_path.c_str());
}

// ------------------------------------------------------------------------
// Chunked reader: seams, rewind, sniffing

/// Drains `reader` in `max_rows` chunks into one dataset.
Dataset Drain(stream::ChunkReader& reader, size_t max_rows) {
  stream::DatasetChunkWriter writer;
  for (;;) {
    auto chunk = reader.NextChunk(max_rows);
    EXPECT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (!chunk.ok() || chunk.value().NumRows() == 0) break;
    EXPECT_TRUE(writer.Append(chunk.value()).ok());
  }
  return writer.collected();
}

TEST(ColsChunkIo, BufferedSeamsMatchMmapAtPathologicalSizes) {
  const Dataset d = SmallDataset();
  const std::string path = TempPath("cols_seams.cols");
  ASSERT_TRUE(WriteCols(d, path).ok());

  stream::ColsChunkReader mapped(path, /*prefer_mmap=*/true);
  const Dataset via_map = Drain(mapped, 13);
  EXPECT_TRUE(via_map == d);

  // The shared seam contract: both backends must be byte-equivalent to
  // their mmap/one-shot siblings at 1-, 2- and 7-byte read granularity.
  for (const size_t buffer_bytes : {1u, 2u, 7u}) {
    stream::ColsChunkReader buffered(path, /*prefer_mmap=*/false,
                                     buffer_bytes);
    EXPECT_TRUE(Drain(buffered, 13) == d)
        << "cols buffer_bytes=" << buffer_bytes;
  }

  const std::string csv_path = TempPath("cols_seams.csv");
  ASSERT_TRUE(WriteCsv(d, csv_path).ok());
  auto csv_whole = ReadCsv(csv_path);
  ASSERT_TRUE(csv_whole.ok());
  for (const size_t buffer_bytes : {1u, 2u, 7u}) {
    stream::CsvChunkReader buffered(csv_path, {}, buffer_bytes);
    EXPECT_TRUE(Drain(buffered, 13) == csv_whole.value())
        << "csv buffer_bytes=" << buffer_bytes;
  }
  std::remove(path.c_str());
  std::remove(csv_path.c_str());
}

TEST(ColsChunkIo, RewindMidStreamRestartsFromRowZero) {
  const Dataset d = SmallDataset();
  const std::string path = TempPath("cols_rewind.cols");
  ASSERT_TRUE(WriteCols(d, path).ok());
  stream::ColsChunkReader reader(path);
  auto first = reader.NextChunk(7);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().NumRows(), 7u);
  ASSERT_TRUE(reader.Rewind().ok());
  EXPECT_TRUE(Drain(reader, 11) == d);
  // Rewind after exhaustion too.
  ASSERT_TRUE(reader.Rewind().ok());
  EXPECT_TRUE(Drain(reader, d.NumRows()) == d);
  std::remove(path.c_str());
}

TEST(ColsChunkIo, FromBytesNeedsNoFile) {
  const Dataset d = SmallDataset();
  auto reader = stream::ColsChunkReader::FromBytes(SerializeCols(d));
  EXPECT_TRUE(Drain(*reader, 9) == d);
  ASSERT_TRUE(reader->Rewind().ok());
  EXPECT_TRUE(Drain(*reader, 1) == d);
}

TEST(ColsChunkIo, ChunksCarryTheFullClassDictionaryUpFront) {
  // Unlike CSV streaming (append-only growth), a cols chunk knows every
  // class from row 0 — ids still agree with the container's schema.
  Dataset d({"x"}, {"a", "b", "c"});
  d.AddRow({1.0}, 2);  // first row uses the *last* class
  d.AddRow({2.0}, 0);
  auto reader = stream::ColsChunkReader::FromBytes(SerializeCols(d));
  auto chunk = reader->NextChunk(1);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk.value().NumClasses(), 3u);
  EXPECT_EQ(chunk.value().Label(0), 2);
}

TEST(ColsChunkIo, SniffDetectsTheFormat) {
  const Dataset d = SmallDataset();
  const std::string cols_path = TempPath("cols_sniff.cols");
  const std::string csv_path = TempPath("cols_sniff.csv");
  ASSERT_TRUE(WriteCols(d, cols_path).ok());
  ASSERT_TRUE(WriteCsv(d, csv_path).ok());

  auto cols_format =
      stream::SniffDatasetFormat(cols_path, stream::DatasetFormat::kAuto);
  ASSERT_TRUE(cols_format.ok());
  EXPECT_EQ(cols_format.value(), stream::DatasetFormat::kCols);
  auto csv_format =
      stream::SniffDatasetFormat(csv_path, stream::DatasetFormat::kAuto);
  ASSERT_TRUE(csv_format.ok());
  EXPECT_EQ(csv_format.value(), stream::DatasetFormat::kCsv);
  // An explicit request short-circuits the sniff.
  auto forced = stream::SniffDatasetFormat("/nonexistent/popp/never",
                                           stream::DatasetFormat::kCsv);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced.value(), stream::DatasetFormat::kCsv);

  for (const auto* path : {&cols_path, &csv_path}) {
    auto reader = stream::MakeChunkReader(*path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_TRUE(Drain(*reader.value(), 10) == d) << *path;
  }
  std::remove(cols_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(ColsChunkIo, ParseDatasetFormatNamesRoundTrip) {
  for (const auto format :
       {stream::DatasetFormat::kAuto, stream::DatasetFormat::kCsv,
        stream::DatasetFormat::kCols}) {
    auto parsed =
        stream::ParseDatasetFormat(stream::DatasetFormatName(format));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), format);
  }
  EXPECT_FALSE(stream::ParseDatasetFormat("parquet").ok());
}

TEST(ColsChunkIo, WriterMergesGrowingClassDictionaries)
{
  // Chunks arriving with append-only-growing schemas (the CSV streaming
  // shape) merge into one container with the union dictionary.
  Dataset first({"x"}, {"a"});
  first.AddRow({1.0}, 0);
  Dataset second({"x"}, {"a", "b"});
  second.AddRow({2.0}, 1);
  const std::string path = TempPath("cols_writer_merge.cols");
  stream::ColsChunkWriter writer(path);
  ASSERT_TRUE(writer.Append(first).ok());
  ASSERT_TRUE(writer.Append(second).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_GT(writer.stats().bytes, 0u);
  auto loaded = ReadCols(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().NumRows(), 2u);
  EXPECT_EQ(loaded.value().NumClasses(), 2u);
  EXPECT_EQ(loaded.value().Label(0), 0);
  EXPECT_EQ(loaded.value().Label(1), 1);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------------
// MappedFile

TEST(ColsMappedFile, MapsAndFallsBackIdentically) {
  const std::string path = TempPath("cols_mapped.bin");
  const std::string payload = "popp mapped payload\n\0with a nul";
  ASSERT_TRUE(fault::WriteFileAtomic(path, payload).ok());
  fault::MappedFile mapped;
  ASSERT_TRUE(mapped.Open(path).ok());
  EXPECT_TRUE(mapped.is_open());
  ASSERT_EQ(mapped.size(), payload.size());
  fault::MappedFile buffered;
  ASSERT_TRUE(buffered.Open(path, /*prefer_mmap=*/false, 3).ok());
  EXPECT_FALSE(buffered.is_mapped());
  ASSERT_EQ(buffered.size(), payload.size());
  EXPECT_EQ(std::string_view(mapped.data(), mapped.size()),
            std::string_view(buffered.data(), buffered.size()));
  std::remove(path.c_str());
}

TEST(ColsMappedFile, EmptyFileIsAValidEmptySpan) {
  const std::string path = TempPath("cols_mapped_empty.bin");
  ASSERT_TRUE(fault::WriteFileAtomic(path, "").ok());
  fault::MappedFile map;
  ASSERT_TRUE(map.Open(path).ok());
  EXPECT_TRUE(map.is_open());
  EXPECT_EQ(map.size(), 0u);
  std::remove(path.c_str());
}

TEST(ColsMappedFile, MissingFileIsNotFound) {
  fault::MappedFile map;
  const Status status = map.Open("/nonexistent/popp/never.cols");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------------
// The acceptance contract: byte-identical releases from either format,
// every chunk size x 1/2/7/8 threads.

TEST(ColsStreamRelease, ByteIdenticalToBatchAtEveryChunkAndThreadCount) {
  const Dataset d = SmallDataset();
  const uint64_t seed = 29;
  PiecewiseOptions transform;
  Rng rng(seed);
  const TransformPlan batch_plan = TransformPlan::Create(d, transform, rng);
  const std::string batch_csv = ToCsvString(batch_plan.EncodeDataset(d));
  const std::string batch_key = SerializePlan(batch_plan);
  const std::string cols_bytes = SerializeCols(d);

  for (const size_t chunk_rows :
       {size_t{1}, size_t{2}, size_t{7}, size_t{16}, d.NumRows()}) {
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{7}, size_t{8}}) {
      stream::StreamOptions options;
      options.chunk_rows = chunk_rows;
      options.transform = transform;
      options.seed = seed;
      options.exec = ExecPolicy{threads};

      auto cols_reader = stream::ColsChunkReader::FromBytes(cols_bytes);
      stream::DatasetChunkWriter cols_writer;
      auto cols_plan = stream::StreamingCustodian::Release(
          *cols_reader, cols_writer, options);
      ASSERT_TRUE(cols_plan.ok())
          << cols_plan.status().ToString() << " chunk=" << chunk_rows
          << " threads=" << threads;
      EXPECT_EQ(SerializePlan(cols_plan.value()), batch_key)
          << "chunk=" << chunk_rows << " threads=" << threads;
      EXPECT_EQ(ToCsvString(cols_writer.collected()), batch_csv)
          << "chunk=" << chunk_rows << " threads=" << threads;

      stream::DatasetChunkReader csv_reader(&d);
      stream::DatasetChunkWriter csv_writer;
      auto csv_plan = stream::StreamingCustodian::Release(
          csv_reader, csv_writer, options);
      ASSERT_TRUE(csv_plan.ok());
      EXPECT_EQ(ToCsvString(csv_writer.collected()),
                ToCsvString(cols_writer.collected()))
          << "chunk=" << chunk_rows << " threads=" << threads;
    }
  }
}

TEST(ColsStreamRelease, FileBackedReleaseMatchesCsvInput) {
  // End to end through real files and both reader backends.
  const Dataset d = SmallDataset();
  const std::string csv_path = TempPath("cols_release_in.csv");
  const std::string cols_path = TempPath("cols_release_in.cols");
  ASSERT_TRUE(WriteCsv(d, csv_path).ok());
  ASSERT_TRUE(WriteCols(d, cols_path).ok());

  auto release = [&](const std::string& in) {
    auto reader = stream::MakeChunkReader(in);
    EXPECT_TRUE(reader.ok()) << reader.status().ToString();
    stream::StreamOptions options;
    options.chunk_rows = 11;
    options.seed = 5;
    stream::DatasetChunkWriter writer;
    auto plan =
        stream::StreamingCustodian::Release(*reader.value(), writer, options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return ToCsvString(writer.collected()) +
           (plan.ok() ? SerializePlan(plan.value()) : std::string());
  };
  EXPECT_EQ(release(csv_path), release(cols_path));
  std::remove(csv_path.c_str());
  std::remove(cols_path.c_str());
}

}  // namespace
}  // namespace popp
