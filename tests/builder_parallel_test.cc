#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/dataset.h"
#include "parallel/exec_policy.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "tree/builder.h"
#include "tree/compare.h"
#include "tree/serialize.h"
#include "util/rng.h"

/// \file
/// The frontier builder's serial == parallel contract, stress-tested where
/// it is easiest to break: inputs whose split searches are wall-to-wall
/// exact ties. A scheduling-order dependence anywhere in the (node ×
/// attribute) fan-out — a merge that prefers whichever attribute finished
/// first, a repartition that drifts from stability, a histogram that
/// accumulates in claim order — shows up here as a byte difference in the
/// serialized tree. Every assertion compares full SerializeTree bytes, not
/// just structure, at thread counts chosen to cover the inline path (1),
/// even/odd worker splits (2, 3), more workers than attributes (7) and the
/// acceptance bar's count (8).

namespace popp {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 3, 7, 8};

/// Serializes the tree the builder produces serially (ExecPolicy default).
std::string SerialTreeBytes(const Dataset& d, const BuildOptions& options) {
  return SerializeTree(DecisionTreeBuilder(options).Build(d));
}

/// Asserts byte-identical serialized trees at every thread count.
void ExpectParallelMatchesSerial(const Dataset& d,
                                 const BuildOptions& options,
                                 const std::string& what) {
  const std::string serial = SerialTreeBytes(d, options);
  for (size_t threads : kThreadCounts) {
    const DecisionTree parallel =
        DecisionTreeBuilder(options, ExecPolicy{threads}).Build(d);
    EXPECT_EQ(SerializeTree(parallel), serial)
        << what << ": tree bytes differ at " << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// All-tied gain columns: every attribute is a copy (or mirror) of the same
// column, so every cross-attribute comparison is an exact tie and the
// attribute-order merge alone decides the split.

TEST(BuilderParallel, IdenticalColumnsAllTieEverywhere) {
  Dataset d({"x", "x_copy1", "x_copy2", "x_copy3"}, {"a", "b"});
  const int values[] = {1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6};
  for (int i = 0; i < 12; ++i) {
    const double v = values[i];
    d.AddRow({v, v, v, v}, i % 2);
  }
  ExpectParallelMatchesSerial(d, BuildOptions{}, "identical columns");
}

TEST(BuilderParallel, PalindromicClassStructureTiesBothEnds) {
  // Classes a,b,b,...,b,a over each attribute: isolating either outer 'a'
  // scores identically; the canonical-position tie-break must resolve the
  // same way regardless of scheduling.
  for (auto criterion : {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    Dataset d({"x", "y"}, {"a", "b"});
    for (int i = 0; i < 10; ++i) {
      const ClassId c = (i == 0 || i == 9) ? 0 : 1;
      d.AddRow({static_cast<double>(i), static_cast<double>(9 - i)}, c);
    }
    BuildOptions options;
    options.criterion = criterion;
    ExpectParallelMatchesSerial(d, options, ToString(criterion));
  }
}

// ---------------------------------------------------------------------------
// Degenerate attributes and nodes.

TEST(BuilderParallel, ConstantAttributesNeverSplit) {
  // Attributes 1 and 3 are constant: their scans find nothing, and the
  // merge must not let an empty local decision displace a real one.
  Dataset d({"x", "const1", "y", "const2"}, {"a", "b", "c"});
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    d.AddRow({static_cast<double>(rng.UniformInt(0, 5)), 42.0,
              static_cast<double>(rng.UniformInt(0, 3)), -1.0},
             static_cast<ClassId>(rng.UniformInt(0, 2)));
  }
  ExpectParallelMatchesSerial(d, BuildOptions{}, "constant attributes");
}

TEST(BuilderParallel, SingleClassNodesLeafImmediately) {
  Dataset d({"x", "y"}, {"only"});
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    d.AddRow({static_cast<double>(rng.UniformInt(0, 9)),
              static_cast<double>(rng.UniformInt(0, 9))},
             0);
  }
  ExpectParallelMatchesSerial(d, BuildOptions{}, "single class");
  // A two-class dataset that purifies after one split exercises the
  // pure-node gate mid-frontier rather than at the root.
  Dataset split({"x"}, {"a", "b"});
  for (int i = 0; i < 20; ++i) {
    split.AddRow({static_cast<double>(i)}, i < 10 ? 0 : 1);
  }
  ExpectParallelMatchesSerial(split, BuildOptions{}, "purifying split");
}

// ---------------------------------------------------------------------------
// min_leaf_size boundaries: the feasibility filter interacts with the
// candidate mode — interior-of-run fallbacks only exist under
// kAllBoundaries — and each (mode, criterion, leaf size) combination must
// stay scheduling-independent.

TEST(BuilderParallel, MinLeafSizeBoundarySweep) {
  Dataset d({"x", "y"}, {"a", "b"});
  const int xs[] = {1, 1, 1, 2, 2, 3, 3, 3, 4, 4, 5, 5};
  const int cs[] = {0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 0};
  for (int i = 0; i < 12; ++i) {
    d.AddRow({static_cast<double>(xs[i]), static_cast<double>(12 - i)},
             cs[i]);
  }
  for (auto mode : {BuildOptions::CandidateMode::kRunBoundaries,
                    BuildOptions::CandidateMode::kAllBoundaries}) {
    for (auto criterion :
         {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
      for (size_t min_leaf : {size_t{1}, size_t{2}, size_t{3}, size_t{4}}) {
        BuildOptions options;
        options.candidate_mode = mode;
        options.criterion = criterion;
        options.min_leaf_size = min_leaf;
        ExpectParallelMatchesSerial(
            d, options,
            std::string(ToString(criterion)) + " min_leaf " +
                std::to_string(min_leaf));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// F_bi multiplicity permutations: a bijective release piece may permute
// how many tuples carry each value *within* a monochromatic run without
// moving the run's boundaries. Every variant must be serial == parallel,
// and — because run-boundary splits only read whole-run aggregates — the
// variants must agree with each other structurally.

TEST(BuilderParallel, FbiMultiplicityPermutationsAreStable) {
  // Three monochromatic runs over values {1..9}; `counts` permutes the
  // per-value multiplicities within each run across variants.
  const int multiplicities[][9] = {
      {3, 1, 2, 2, 2, 2, 1, 3, 2},  // base
      {1, 2, 3, 2, 2, 2, 3, 2, 1},  // permuted within each run
      {2, 3, 1, 2, 2, 2, 2, 1, 3},  // another permutation
  };
  const ClassId run_class[] = {0, 0, 0, 1, 1, 1, 0, 0, 0};
  BuildOptions options;
  options.candidate_mode = BuildOptions::CandidateMode::kRunBoundaries;
  options.min_leaf_size = 1;
  std::vector<DecisionTree> variants;
  for (const auto& counts : multiplicities) {
    Dataset d({"x"}, {"a", "b"});
    for (int v = 0; v < 9; ++v) {
      for (int k = 0; k < counts[v]; ++k) {
        d.AddRow({static_cast<double>(v + 1)}, run_class[v]);
      }
    }
    ExpectParallelMatchesSerial(d, options, "F_bi variant");
    variants.push_back(DecisionTreeBuilder(options).Build(d));
  }
  for (size_t i = 1; i < variants.size(); ++i) {
    EXPECT_TRUE(StructurallyIdentical(variants[0], variants[i]))
        << "variant " << i << " changed the tree shape";
  }
}

// ---------------------------------------------------------------------------
// Randomized tie-heavy sweeps: small integer domains force massive value
// duplication and frequent exact score ties at every node.

TEST(BuilderParallel, RandomSmallDomainSweep) {
  for (uint64_t seed : {3u, 19u, 41u}) {
    Rng rng(seed);
    Dataset d({"x", "y", "z"}, {"a", "b", "c"});
    for (int i = 0; i < 300; ++i) {
      d.AddRow({static_cast<double>(rng.UniformInt(0, 4)),
                static_cast<double>(rng.UniformInt(0, 2)),
                static_cast<double>(rng.UniformInt(0, 6))},
               static_cast<ClassId>(rng.UniformInt(0, 2)));
    }
    ExpectParallelMatchesSerial(d, BuildOptions{},
                                "seed " + std::to_string(seed));
  }
}

TEST(BuilderParallel, CovtypeLikeDeepTreeSweep) {
  Rng rng(5);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(2000), rng);
  BuildOptions options;
  options.min_split_size = 4;
  ExpectParallelMatchesSerial(d, options, "covtype-like 2000 rows");
}

// ---------------------------------------------------------------------------
// Three-way algorithm equality under parallel execution: the frontier
// engine must match both recursive engines bit for bit at every thread
// count, not just serially.

TEST(BuilderParallel, AllAlgorithmsAgreeAtEveryThreadCount) {
  Rng rng(31);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1500), rng);
  BuildOptions reference;
  reference.algorithm = BuildOptions::Algorithm::kResort;
  const std::string expected =
      SerializeTree(DecisionTreeBuilder(reference).Build(d));
  for (auto algorithm : {BuildOptions::Algorithm::kResort,
                         BuildOptions::Algorithm::kPresorted,
                         BuildOptions::Algorithm::kFrontier}) {
    BuildOptions options;
    options.algorithm = algorithm;
    for (size_t threads : kThreadCounts) {
      const DecisionTree tree =
          DecisionTreeBuilder(options, ExecPolicy{threads}).Build(d);
      EXPECT_EQ(SerializeTree(tree), expected)
          << "algorithm " << static_cast<int>(algorithm) << " at "
          << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// BuildStats: the per-stage breakdown must account for the build without
// perturbing it.

TEST(BuilderParallel, BuildStatsReportsLevelsAndNodes) {
  Rng rng(13);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(500), rng);
  BuildStats stats;
  const DecisionTree with_stats =
      DecisionTreeBuilder().Build(d, &stats);
  const DecisionTree without = DecisionTreeBuilder().Build(d);
  EXPECT_TRUE(ExactlyEqual(with_stats, without));
  EXPECT_EQ(stats.nodes, with_stats.NumNodes());
  EXPECT_GE(stats.levels, 1u);
  EXPECT_GE(stats.sort_s, 0.0);
  EXPECT_GE(stats.scan_s, 0.0);
  EXPECT_GE(stats.partition_s, 0.0);
  EXPECT_GE(stats.emit_s, 0.0);
}

}  // namespace
}  // namespace popp
