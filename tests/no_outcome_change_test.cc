#include <gtest/gtest.h>

#include <tuple>

#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/plan.h"
#include "transform/tree_decode.h"
#include "tree/builder.h"
#include "tree/compare.h"

namespace popp {
namespace {

/// The headline guarantee (Theorems 1 and 2), swept as a parameterized
/// property: for every split criterion, breakpoint policy, global
/// direction and random seed, mining the transformed data and decoding
/// yields exactly the tree mined from the original data.
struct NoOutcomeChangeCase {
  SplitCriterion criterion;
  BreakpointPolicy policy;
  bool global_anti;
  uint64_t seed;
};

std::string CaseName(
    const testing::TestParamInfo<NoOutcomeChangeCase>& info) {
  const auto& c = info.param;
  std::string name = ToString(c.criterion) + "_" + ToString(c.policy) +
                     (c.global_anti ? "_anti" : "_mono") + "_seed" +
                     std::to_string(c.seed);
  for (auto& ch : name) {
    if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

class NoOutcomeChangeTest
    : public testing::TestWithParam<NoOutcomeChangeCase> {};

TEST_P(NoOutcomeChangeTest, DecodedTreeEqualsDirectTree) {
  const NoOutcomeChangeCase& c = GetParam();
  Rng data_rng(c.seed * 7919 + 13);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);

  BuildOptions tree_options;
  tree_options.criterion = c.criterion;
  const DecisionTreeBuilder builder(tree_options);
  const DecisionTree direct = builder.Build(d);

  Rng rng(c.seed);
  PiecewiseOptions options;
  options.policy = c.policy;
  options.global_anti_monotone = c.global_anti;
  options.min_breakpoints = 7;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset released = plan.EncodeDataset(d);

  const DecisionTree mined = builder.Build(released);
  const DecisionTree decoded = DecodeTreeWithData(mined, plan, d);

  if (!c.global_anti) {
    // Order-preserving release: the guarantee is bit-exact, ties included
    // (the candidate scan on D' sees the identical class-count sequence).
    EXPECT_TRUE(ExactlyEqual(direct, decoded))
        << DescribeDifference(direct, decoded);
    // Theorem 1 corollary: T' itself has the same shape, split attributes
    // and leaf labels as T (only thresholds differ).
    EXPECT_TRUE(StructurallyIdentical(direct, mined));
  }
  // Order-reversing release: an exactly-tied split at a class-palindromic
  // node can resolve to its mirror image (no class-structure tie-break can
  // coordinate the two orientations), yielding a different tree *shape*
  // with the identical decision function. The outcome — the classifier —
  // is always preserved.
  Rng probe_rng(c.seed + 999);
  EXPECT_TRUE(SameDecisionFunction(direct, decoded, d, 20000, probe_rng));
  EXPECT_EQ(direct.NumLeaves(), decoded.NumLeaves());
  EXPECT_DOUBLE_EQ(direct.Accuracy(d), decoded.Accuracy(d));
}

std::vector<NoOutcomeChangeCase> AllCases() {
  std::vector<NoOutcomeChangeCase> cases;
  for (auto criterion : {SplitCriterion::kGini, SplitCriterion::kEntropy,
                         SplitCriterion::kGainRatio}) {
    for (auto policy :
         {BreakpointPolicy::kNone, BreakpointPolicy::kChooseBP,
          BreakpointPolicy::kChooseMaxMP}) {
      for (bool anti : {false, true}) {
        for (uint64_t seed : {1u, 2u, 3u}) {
          cases.push_back({criterion, policy, anti, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, NoOutcomeChangeTest,
                         testing::ValuesIn(AllCases()), CaseName);

// ------------------------------------------------- additional guarantees --

TEST(NoOutcomeChangeExtra, HoldsOnCensusAndWdbcLikeData) {
  for (uint64_t seed : {5u, 6u}) {
    for (const auto& spec : {CensusLikeSpec(2000), WdbcLikeSpec(1500)}) {
      Rng data_rng(seed);
      const Dataset d = GenerateCovtypeLike(spec, data_rng);
      const DecisionTreeBuilder builder;
      Rng rng(seed + 100);
      PiecewiseOptions options;
      options.min_breakpoints = 10;
      const TransformPlan plan = TransformPlan::Create(d, options, rng);
      const DecisionTree direct = builder.Build(d);
      const DecisionTree decoded =
          DecodeTreeWithData(builder.Build(plan.EncodeDataset(d)), plan, d);
      EXPECT_TRUE(ExactlyEqual(direct, decoded))
          << DescribeDifference(direct, decoded);
    }
  }
}

TEST(NoOutcomeChangeExtra, HoldsWithDepthAndLeafLimits) {
  Rng data_rng(31);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(700), data_rng);
  BuildOptions tree_options;
  tree_options.max_depth = 4;
  tree_options.min_leaf_size = 5;
  tree_options.min_split_size = 12;
  const DecisionTreeBuilder builder(tree_options);
  Rng rng(33);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTree direct = builder.Build(d);
  const DecisionTree decoded =
      DecodeTreeWithData(builder.Build(plan.EncodeDataset(d)), plan, d);
  EXPECT_TRUE(ExactlyEqual(direct, decoded))
      << DescribeDifference(direct, decoded);
}

TEST(NoOutcomeChangeExtra, HoldsWithMinImpurityDecrease) {
  Rng data_rng(37);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  BuildOptions tree_options;
  tree_options.min_impurity_decrease = 0.01;
  const DecisionTreeBuilder builder(tree_options);
  Rng rng(39);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTree direct = builder.Build(d);
  const DecisionTree decoded =
      DecodeTreeWithData(builder.Build(plan.EncodeDataset(d)), plan, d);
  EXPECT_TRUE(ExactlyEqual(direct, decoded));
}

TEST(NoOutcomeChangeExtra, MinedTreeThresholdsLookRealistic) {
  // Output privacy: T''s thresholds live in the transformed space, not
  // the original one — yet T' has the same structure (Theorem 1). Verify
  // at least one threshold differs from the original tree's.
  Rng data_rng(41);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  const DecisionTreeBuilder builder;
  Rng rng(43);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTree direct = builder.Build(d);
  const DecisionTree mined = builder.Build(plan.EncodeDataset(d));
  EXPECT_TRUE(StructurallyIdentical(direct, mined));
  EXPECT_FALSE(ExactlyEqual(direct, mined));
}

}  // namespace
}  // namespace popp
