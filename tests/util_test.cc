#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/crc64.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace popp {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, Uniform01InHalfOpenUnit) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 40000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.Gaussian(3.0, 2.0);
  EXPECT_NEAR(Mean(xs), 3.0, 0.05);
  EXPECT_NEAR(SampleStdDev(xs), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(23);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleIndicesDistinctSortedInRange) {
  Rng rng(29);
  for (int rep = 0; rep < 50; ++rep) {
    const auto s = rng.SampleIndices(100, 17);
    ASSERT_EQ(s.size(), 17u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    for (size_t i = 1; i < s.size(); ++i) EXPECT_NE(s[i - 1], s[i]);
    for (size_t x : s) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleIndicesFullSet) {
  Rng rng(31);
  const auto s = rng.SampleIndices(5, 5);
  EXPECT_EQ(s, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleIndicesZero) {
  Rng rng(31);
  EXPECT_TRUE(rng.SampleIndices(5, 0).empty());
  EXPECT_TRUE(rng.SampleIndices(0, 0).empty());
}

TEST(RngTest, SampleIndicesIsUniformish) {
  // Each of C(5,2)=10 pairs should appear with frequency ~1/10.
  Rng rng(37);
  std::map<std::pair<size_t, size_t>, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto s = rng.SampleIndices(5, 2);
    counts[{s[0], s[1]}]++;
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.1, 0.02);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  Rng b(41);
  b.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, IndexedForkDoesNotAdvanceParent) {
  Rng a(41);
  Rng b(41);
  a.Fork(0);
  a.Fork(1);
  a.Fork(12345);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, IndexedForkIsAPureFunctionOfStateAndIndex) {
  const Rng a(41);
  Rng first = a.Fork(7);
  Rng again = a.Fork(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(first.Next(), again.Next());
  }
}

TEST(RngTest, IndexedForkChildrenAreDistinct) {
  const Rng a(41);
  std::set<uint64_t> first_draws;
  for (uint64_t index = 0; index < 256; ++index) {
    Rng child = a.Fork(index);
    EXPECT_TRUE(first_draws.insert(child.Next()).second)
        << "index " << index << " collides";
  }
}

TEST(RngTest, IndexedForkDependsOnParentState) {
  Rng a(41);
  const Rng before = a;
  a.Next();
  const Rng after = a;
  Rng x = before.Fork(3);
  Rng y = after.Fork(3);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (x.Next() == y.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, IndexedForkChildLooksUniform) {
  // Children must be usable as full-quality streams, not just distinct.
  const Rng a(99);
  double sum = 0;
  constexpr int kChildren = 500;
  for (uint64_t index = 0; index < kChildren; ++index) {
    Rng child = a.Fork(index);
    sum += child.Uniform01();
  }
  EXPECT_NEAR(sum / kChildren, 0.5, 0.05);
}

// ----------------------------------------------------------------- stats --

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, StdDevBasics) {
  EXPECT_DOUBLE_EQ(SampleStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({5.0}), 0.0);
  EXPECT_NEAR(SampleStdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              2.1380899, 1e-6);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(StatsTest, QuantileEndpoints) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 20.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.75), 7.5);
}

TEST(StatsTest, MinMax) {
  std::vector<double> xs{3.0, -1.0, 9.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 9.0);
}

TEST(StatsTest, SummarizeConsistent) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = Summarize(xs);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
}

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// ----------------------------------------------------------------- table --

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxx", "1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("a    | long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxx | 1"), std::string::npos);
  EXPECT_NE(out.find("-----+---"), std::string::npos);
}

TEST(TableTest, TitleRendered) {
  TablePrinter t({"h"});
  const std::string out = t.ToString("My Title");
  EXPECT_EQ(out.rfind("=== My Title ===\n", 0), 0u);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Pct(0.125, 1), "12.5%");
  EXPECT_EQ(TablePrinter::Pct(1.0, 0), "100%");
}

// ----------------------------------------------------------------- Crc64 --

/// Bit-at-a-time CRC-64/XZ: the obviously-correct reference the sliced
/// production implementation must match on every length and alignment.
uint64_t ReferenceCrc64(std::string_view bytes) {
  constexpr uint64_t kPoly = 0xC96C5795D7870F42ull;
  uint64_t state = ~0ull;
  for (const char c : bytes) {
    state ^= static_cast<uint8_t>(c);
    for (int bit = 0; bit < 8; ++bit) {
      state = (state >> 1) ^ ((state & 1) ? kPoly : 0);
    }
  }
  return ~state;
}

TEST(Crc64Test, KnownVectors) {
  // The CRC-64/XZ check value from the catalogue of parametrised CRCs.
  EXPECT_EQ(Crc64("123456789"), 0x995DC9BBDF1939FAull);
  EXPECT_EQ(Crc64(""), 0ull);
}

TEST(Crc64Test, MatchesBitwiseReferenceOnEveryLengthAndAlignment) {
  Rng rng(7);
  std::string bytes;
  for (size_t i = 0; i < 64; ++i) {
    bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  // Every (offset, length) window exercises the 8-byte folded loop's
  // head, body and tail in all alignments.
  for (size_t offset = 0; offset < 9; ++offset) {
    for (size_t length = 0; length + offset <= bytes.size(); ++length) {
      const std::string_view window(bytes.data() + offset, length);
      ASSERT_EQ(Crc64(window), ReferenceCrc64(window))
          << "offset=" << offset << " length=" << length;
    }
  }
}

TEST(Crc64Test, StreamingSplitsAgreeWithOneShot) {
  Rng rng(11);
  std::string bytes;
  for (size_t i = 0; i < 1000; ++i) {
    bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  const uint64_t whole = Crc64(bytes);
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                       size_t{9}, size_t{500}, size_t{999}}) {
    Crc64Stream stream;
    stream.Update(std::string_view(bytes).substr(0, split));
    stream.Update(std::string_view(bytes).substr(split));
    EXPECT_EQ(stream.value(), whole) << "split=" << split;
  }
}

}  // namespace
}  // namespace popp
