#include <gtest/gtest.h>

#include <cmath>

#include "transform/families.h"
#include "transform/function.h"
#include "util/rng.h"

namespace popp {
namespace {

// ---------------------------------------------------------------- shapes --

TEST(ShapeTest, IdentityIsIdentity) {
  IdentityShape s;
  for (double t : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(s.Forward(t), t);
    EXPECT_DOUBLE_EQ(s.Backward(t), t);
  }
  EXPECT_EQ(s.Name(), "linear");
}

TEST(ShapeTest, PowerEndpointsAndInverse) {
  PowerShape s(2.5);
  EXPECT_DOUBLE_EQ(s.Forward(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Forward(1.0), 1.0);
  for (double t : {0.1, 0.3, 0.7, 0.95}) {
    EXPECT_NEAR(s.Backward(s.Forward(t)), t, 1e-12);
  }
}

TEST(ShapeTest, PowerIsStrictlyIncreasing) {
  PowerShape s(3.0);
  double prev = -1;
  for (int i = 0; i <= 100; ++i) {
    const double v = s.Forward(i / 100.0);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(ShapeTest, LogEndpointsAndInverse) {
  LogShape s(10.0);
  EXPECT_DOUBLE_EQ(s.Forward(0.0), 0.0);
  EXPECT_NEAR(s.Forward(1.0), 1.0, 1e-12);
  for (double t : {0.05, 0.4, 0.8}) {
    EXPECT_NEAR(s.Backward(s.Forward(t)), t, 1e-12);
  }
}

TEST(ShapeTest, LogIsConcave) {
  // A log shape bends above the diagonal.
  LogShape s(10.0);
  EXPECT_GT(s.Forward(0.5), 0.5);
}

TEST(ShapeTest, SqrtLogEndpointsAndInverse) {
  SqrtLogShape s(8.0);
  EXPECT_DOUBLE_EQ(s.Forward(0.0), 0.0);
  EXPECT_NEAR(s.Forward(1.0), 1.0, 1e-12);
  for (double t : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(s.Backward(s.Forward(t)), t, 1e-12);
  }
}

TEST(ShapeTest, ClonePreservesBehavior) {
  PowerShape original(2.0);
  auto clone = original.Clone();
  EXPECT_DOUBLE_EQ(clone->Forward(0.3), original.Forward(0.3));
}

// ------------------------------------------------------ RescaledFunction --

TEST(RescaledTest, LinearMonotoneMapsEndpoints) {
  RescaledFunction f(std::make_unique<IdentityShape>(), 10, 50, 100, 300,
                     /*anti_monotone=*/false);
  EXPECT_DOUBLE_EQ(f.Apply(10), 100);
  EXPECT_DOUBLE_EQ(f.Apply(50), 300);
  EXPECT_DOUBLE_EQ(f.Apply(30), 200);
  EXPECT_EQ(f.kind(), FunctionKind::kMonotone);
}

TEST(RescaledTest, AntiMonotoneReverses) {
  RescaledFunction f(std::make_unique<IdentityShape>(), 0, 10, 0, 100,
                     /*anti_monotone=*/true);
  EXPECT_DOUBLE_EQ(f.Apply(0), 100);
  EXPECT_DOUBLE_EQ(f.Apply(10), 0);
  EXPECT_DOUBLE_EQ(f.Apply(2.5), 75);
  EXPECT_EQ(f.kind(), FunctionKind::kAntiMonotone);
}

TEST(RescaledTest, RoundTripAllShapes) {
  std::vector<std::unique_ptr<ShapeFunction>> shapes;
  shapes.push_back(std::make_unique<IdentityShape>());
  shapes.push_back(std::make_unique<PowerShape>(2.0));
  shapes.push_back(std::make_unique<PowerShape>(3.0));
  shapes.push_back(std::make_unique<LogShape>(5.0));
  shapes.push_back(std::make_unique<SqrtLogShape>(12.0));
  for (auto& shape : shapes) {
    for (bool anti : {false, true}) {
      RescaledFunction f(shape->Clone(), -20, 80, 5, 305, anti);
      for (double x : {-20.0, -3.0, 0.0, 17.5, 42.0, 80.0}) {
        EXPECT_NEAR(f.Inverse(f.Apply(x)), x, 1e-8)
            << shape->Name() << " anti=" << anti << " x=" << x;
      }
    }
  }
}

TEST(RescaledTest, MonotonePreservesOrder) {
  Rng rng(3);
  RescaledFunction f(std::make_unique<LogShape>(9.0), 0, 1000, -50, 450,
                     false);
  double prev = f.Apply(0);
  for (int x = 1; x <= 1000; x += 7) {
    const double y = f.Apply(x);
    EXPECT_GT(y, prev);
    prev = y;
  }
}

TEST(RescaledTest, AntiMonotoneReversesOrder) {
  RescaledFunction f(std::make_unique<PowerShape>(2.0), 0, 100, 0, 100,
                     true);
  double prev = f.Apply(0);
  for (int x = 5; x <= 100; x += 5) {
    const double y = f.Apply(x);
    EXPECT_LT(y, prev);
    prev = y;
  }
}

TEST(RescaledTest, OutputStaysInTargetInterval) {
  RescaledFunction f(std::make_unique<SqrtLogShape>(4.0), 10, 20, 500, 600,
                     false);
  for (double x = 10; x <= 20; x += 0.25) {
    const double y = f.Apply(x);
    EXPECT_GE(y, 500);
    EXPECT_LE(y, 600);
  }
}

TEST(RescaledTest, DescribeMentionsShapeAndDirection) {
  RescaledFunction f(std::make_unique<LogShape>(3.0), 0, 1, 0, 1, true);
  const std::string d = f.Describe();
  EXPECT_NE(d.find("anti"), std::string::npos);
  EXPECT_NE(d.find("log"), std::string::npos);
}

TEST(RescaledTest, CloneIsIndependentCopy) {
  RescaledFunction f(std::make_unique<PowerShape>(2.0), 0, 10, 0, 100,
                     false);
  auto clone = f.Clone();
  EXPECT_DOUBLE_EQ(clone->Apply(5.0), f.Apply(5.0));
  EXPECT_EQ(clone->kind(), f.kind());
}

// --------------------------------------------------- PermutationFunction --

TEST(PermutationTest, ExactMappingAndInverse) {
  PermutationFunction f({1, 2, 15}, {20, 17, 16});  // the paper's Figure 4 r1
  EXPECT_DOUBLE_EQ(f.Apply(1), 20);
  EXPECT_DOUBLE_EQ(f.Apply(2), 17);
  EXPECT_DOUBLE_EQ(f.Apply(15), 16);
  EXPECT_DOUBLE_EQ(f.Inverse(20), 1);
  EXPECT_DOUBLE_EQ(f.Inverse(17), 2);
  EXPECT_DOUBLE_EQ(f.Inverse(16), 15);
  EXPECT_EQ(f.kind(), FunctionKind::kBijective);
}

TEST(PermutationTest, NonDomainProbeSnapsToNearest) {
  PermutationFunction f({10, 20, 30}, {7, 2, 9});
  EXPECT_DOUBLE_EQ(f.Apply(11), 7);   // nearest domain value 10
  EXPECT_DOUBLE_EQ(f.Apply(26), 9);   // nearest 30
  EXPECT_DOUBLE_EQ(f.Apply(-5), 7);   // clamps to 10
  EXPECT_DOUBLE_EQ(f.Apply(99), 9);   // clamps to 30
}

TEST(PermutationTest, NonImageInverseSnapsToNearest) {
  PermutationFunction f({10, 20, 30}, {7, 2, 9});
  EXPECT_DOUBLE_EQ(f.Inverse(2.4), 20);  // nearest image 2
  EXPECT_DOUBLE_EQ(f.Inverse(8.5), 30);  // nearest image 9
  EXPECT_DOUBLE_EQ(f.Inverse(-100), 20); // below all -> smallest image 2
  EXPECT_DOUBLE_EQ(f.Inverse(100), 30);  // above all -> largest image 9
}

TEST(PermutationTest, SingleValue) {
  PermutationFunction f({5}, {42});
  EXPECT_DOUBLE_EQ(f.Apply(5), 42);
  EXPECT_DOUBLE_EQ(f.Inverse(42), 5);
}

TEST(PermutationTest, RejectsDuplicateImages) {
  EXPECT_DEATH(PermutationFunction({1, 2}, {5, 5}), "distinct");
}

TEST(PermutationTest, RejectsUnsortedDomain) {
  EXPECT_DEATH(PermutationFunction({2, 1}, {5, 6}), "increasing");
}

TEST(PermutationTest, CloneRoundTrips) {
  PermutationFunction f({1, 3, 9}, {30, 10, 20});
  auto clone = f.Clone();
  for (double x : {1.0, 3.0, 9.0}) {
    EXPECT_DOUBLE_EQ(clone->Apply(x), f.Apply(x));
    EXPECT_DOUBLE_EQ(clone->Inverse(f.Apply(x)), x);
  }
}

// -------------------------------------------------------------- sampling --

TEST(FamilyTest, SampleShapeRespectsForcedChoice) {
  Rng rng(5);
  FamilyOptions options;
  options.forced_shape = FamilyOptions::ShapeChoice::kSqrtLog;
  auto shape = SampleShape(options, rng);
  EXPECT_NE(shape->Name().find("sqrt"), std::string::npos);
}

TEST(FamilyTest, SampleShapeHonorsDisabledFamilies) {
  Rng rng(7);
  FamilyOptions options;
  options.allow_polynomial = false;
  options.allow_log = false;
  options.allow_sqrt_log = false;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(SampleShape(options, rng)->Name(), "linear");
  }
}

TEST(FamilyTest, SampleMonotoneDirectionProbability) {
  Rng rng(9);
  FamilyOptions options;
  options.anti_monotone_prob = 0.0;
  for (int i = 0; i < 20; ++i) {
    auto f = SampleMonotone(options, 0, 10, 0, 10, rng);
    EXPECT_EQ(f->kind(), FunctionKind::kMonotone);
  }
  options.anti_monotone_prob = 1.0;
  for (int i = 0; i < 20; ++i) {
    auto f = SampleMonotone(options, 0, 10, 0, 10, rng);
    EXPECT_EQ(f->kind(), FunctionKind::kAntiMonotone);
  }
}

TEST(FamilyTest, SampledMonotoneRoundTripsOnDomain) {
  Rng rng(11);
  FamilyOptions options;
  for (int i = 0; i < 50; ++i) {
    auto f = SampleMonotone(options, -100, 100, 37, 412, rng);
    for (double x : {-100.0, -12.5, 0.0, 63.0, 100.0}) {
      EXPECT_NEAR(f->Inverse(f->Apply(x)), x, 1e-7);
    }
  }
}

TEST(FamilyTest, SamplePermutationIsBijection) {
  Rng rng(13);
  std::vector<AttrValue> domain{3, 7, 8, 12, 40};
  for (int rep = 0; rep < 30; ++rep) {
    auto f = SamplePermutation(domain, 100, 200, rng);
    std::set<double> images;
    for (double v : domain) {
      const double y = f->Apply(v);
      EXPECT_GE(y, 100);
      EXPECT_LE(y, 200);
      EXPECT_TRUE(images.insert(y).second) << "duplicate image";
      EXPECT_DOUBLE_EQ(f->Inverse(y), v);
    }
  }
}

TEST(FamilyTest, SamplePermutationShufflesOrder) {
  // Over many draws, at least one permutation must not be monotone.
  Rng rng(17);
  std::vector<AttrValue> domain{1, 2, 3, 4, 5, 6};
  bool saw_non_monotone = false;
  for (int rep = 0; rep < 20 && !saw_non_monotone; ++rep) {
    auto f = SamplePermutation(domain, 0, 100, rng);
    for (size_t i = 1; i < domain.size(); ++i) {
      if (f->Apply(domain[i]) < f->Apply(domain[i - 1])) {
        saw_non_monotone = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_non_monotone);
}

TEST(FunctionKindTest, Names) {
  EXPECT_EQ(ToString(FunctionKind::kMonotone), "monotone");
  EXPECT_EQ(ToString(FunctionKind::kAntiMonotone), "anti-monotone");
  EXPECT_EQ(ToString(FunctionKind::kBijective), "bijective");
}

}  // namespace
}  // namespace popp
