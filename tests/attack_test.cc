#include <gtest/gtest.h>

#include <cmath>

#include "attack/combination.h"
#include "attack/curve_fit.h"
#include "attack/knowledge.h"
#include "data/summary.h"
#include "transform/piecewise.h"
#include "util/rng.h"

namespace popp {
namespace {

AttributeSummary LinearSummary(size_t n) {
  std::vector<ValueLabel> tuples;
  for (size_t v = 0; v < n; ++v) {
    tuples.push_back({static_cast<double>(v * 2), 0});
    tuples.push_back({static_cast<double>(v * 2), 1});
  }
  return AttributeSummary::FromTuples(std::move(tuples), 2);
}

// --------------------------------------------------------------- profiles --

TEST(KnowledgeTest, ProfileKpCounts) {
  EXPECT_EQ(GoodKpCount(HackerProfile::kIgnorant), 0u);
  EXPECT_EQ(GoodKpCount(HackerProfile::kKnowledgeable), 2u);
  EXPECT_EQ(GoodKpCount(HackerProfile::kExpert), 4u);
  EXPECT_EQ(GoodKpCount(HackerProfile::kInsider), 8u);
}

TEST(KnowledgeTest, ProfileNames) {
  EXPECT_EQ(ToString(HackerProfile::kIgnorant), "ignorant");
  EXPECT_EQ(ToString(HackerProfile::kInsider), "insider");
}

TEST(KnowledgeTest, CrackRadiusScalesWithRange) {
  const auto s = LinearSummary(101);  // values 0..200
  EXPECT_DOUBLE_EQ(CrackRadius(s, 0.02), 4.0);
  EXPECT_DOUBLE_EQ(CrackRadius(s, 0.05), 10.0);
  EXPECT_DOUBLE_EQ(CrackRadius(s, 0.0), 0.0);
}

TEST(KnowledgeTest, GoodPointsAreGood) {
  const auto s = LinearSummary(50);
  Rng rng(3);
  PiecewiseOptions options;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  KnowledgeOptions ko;
  ko.num_good = 20;
  ko.radius_fraction = 0.02;
  const double rho = CrackRadius(s, ko.radius_fraction);
  const auto points = SampleKnowledgePoints(s, f, ko, rng);
  ASSERT_EQ(points.size(), 20u);
  for (const auto& kp : points) {
    // Definition 4: |nu - f^{-1}(nu')| <= rho.
    EXPECT_LE(std::fabs(kp.guessed_original - f.Inverse(kp.transformed)),
              rho + 1e-9);
  }
}

TEST(KnowledgeTest, BadPointsAreBad) {
  const auto s = LinearSummary(50);
  Rng rng(5);
  const auto f = PiecewiseTransform::Create(s, PiecewiseOptions{}, rng);
  KnowledgeOptions ko;
  ko.num_good = 0;
  ko.num_bad = 20;
  ko.radius_fraction = 0.02;
  const double rho = CrackRadius(s, ko.radius_fraction);
  const auto points = SampleKnowledgePoints(s, f, ko, rng);
  ASSERT_EQ(points.size(), 20u);
  for (const auto& kp : points) {
    EXPECT_GT(std::fabs(kp.guessed_original - f.Inverse(kp.transformed)),
              5.0 * rho);
  }
}

// -------------------------------------------------------------- curve fit --

std::vector<KnowledgePoint> PointsOnLine(double slope, double intercept,
                                         std::vector<double> xs) {
  std::vector<KnowledgePoint> points;
  for (double x : xs) {
    points.push_back({x, slope * x + intercept});
  }
  return points;
}

TEST(CurveFitTest, IdentityCrack) {
  auto g = MakeIdentityCrack();
  EXPECT_DOUBLE_EQ(g->Guess(123.5), 123.5);
  EXPECT_EQ(g->Name(), "identity");
}

TEST(CurveFitTest, RegressionRecoversExactLine) {
  auto g = FitCurve(FitMethod::kLinearRegression,
                    PointsOnLine(2.0, -3.0, {0, 1, 5, 9}));
  for (double x : {-2.0, 0.5, 7.0, 100.0}) {
    EXPECT_NEAR(g->Guess(x), 2.0 * x - 3.0, 1e-9);
  }
  EXPECT_EQ(g->Name(), "regression");
}

TEST(CurveFitTest, RegressionMinimizesResiduals) {
  // Points not on a line: regression must match the closed-form LSQ fit.
  std::vector<KnowledgePoint> points{{0, 0}, {1, 2}, {2, 1}, {3, 3}};
  auto g = FitCurve(FitMethod::kLinearRegression, points);
  // slope = cov/var = (sum xy - n xbar ybar) / (sum xx - n xbar^2)
  // xbar=1.5, ybar=1.5; sxy = 0+2+2+9=13; sxx = 0+1+4+9=14.
  const double slope = (13.0 - 4 * 1.5 * 1.5) / (14.0 - 4 * 1.5 * 1.5);
  const double intercept = 1.5 - slope * 1.5;
  EXPECT_NEAR(g->Guess(10.0), slope * 10 + intercept, 1e-9);
}

TEST(CurveFitTest, PolylineInterpolatesThroughPoints) {
  std::vector<KnowledgePoint> points{{0, 0}, {10, 100}, {20, 50}};
  auto g = FitCurve(FitMethod::kPolyline, points);
  EXPECT_DOUBLE_EQ(g->Guess(0), 0);
  EXPECT_DOUBLE_EQ(g->Guess(10), 100);
  EXPECT_DOUBLE_EQ(g->Guess(20), 50);
  EXPECT_DOUBLE_EQ(g->Guess(5), 50);    // halfway up the first segment
  EXPECT_DOUBLE_EQ(g->Guess(15), 75);   // halfway down the second
}

TEST(CurveFitTest, PolylineExtrapolatesEndSegments) {
  std::vector<KnowledgePoint> points{{0, 0}, {10, 100}, {20, 50}};
  auto g = FitCurve(FitMethod::kPolyline, points);
  EXPECT_DOUBLE_EQ(g->Guess(-5), -50);  // slope 10 extended left
  EXPECT_DOUBLE_EQ(g->Guess(30), 0);    // slope -5 extended right
}

TEST(CurveFitTest, SplinePassesThroughKnots) {
  std::vector<KnowledgePoint> points{{0, 1}, {5, 9}, {10, 4}, {15, 16}};
  auto g = FitCurve(FitMethod::kSpline, points);
  for (const auto& p : points) {
    EXPECT_NEAR(g->Guess(p.transformed), p.guessed_original, 1e-9);
  }
  EXPECT_EQ(g->Name(), "spline");
}

TEST(CurveFitTest, SplineIsSmoothOnLinearData) {
  // A natural spline through collinear points is that line.
  auto g = FitCurve(FitMethod::kSpline,
                    PointsOnLine(1.5, 2.0, {0, 4, 8, 12, 16}));
  for (double x : {1.0, 6.0, 11.0, 14.0}) {
    EXPECT_NEAR(g->Guess(x), 1.5 * x + 2.0, 1e-9);
  }
}

TEST(CurveFitTest, SplineExtrapolatesLinearly) {
  auto g = FitCurve(FitMethod::kSpline,
                    PointsOnLine(2.0, 0.0, {0, 1, 2, 3}));
  EXPECT_NEAR(g->Guess(-1), -2.0, 1e-9);
  EXPECT_NEAR(g->Guess(10), 20.0, 1e-9);
}

TEST(CurveFitTest, DegenerateInputs) {
  // 0 points -> identity.
  auto g0 = FitCurve(FitMethod::kSpline, {});
  EXPECT_DOUBLE_EQ(g0->Guess(7), 7);
  // 1 point -> constant.
  auto g1 = FitCurve(FitMethod::kPolyline, {{5, 42}});
  EXPECT_DOUBLE_EQ(g1->Guess(-100), 42);
  EXPECT_DOUBLE_EQ(g1->Guess(100), 42);
  // 2 points -> chord for spline.
  auto g2 = FitCurve(FitMethod::kSpline, {{0, 0}, {10, 20}});
  EXPECT_NEAR(g2->Guess(5), 10, 1e-9);
}

TEST(CurveFitTest, DuplicateXAveraged) {
  auto g = FitCurve(FitMethod::kPolyline, {{5, 10}, {5, 20}, {10, 30}});
  EXPECT_DOUBLE_EQ(g->Guess(5), 15);
}

TEST(CurveFitTest, VerticalPointsFallBackToConstant) {
  // All points share one x: regression denominator is zero.
  auto g = FitCurve(FitMethod::kLinearRegression, {{5, 10}, {5, 20}});
  EXPECT_DOUBLE_EQ(g->Guess(0), 15);
  EXPECT_DOUBLE_EQ(g->Guess(99), 15);
}

TEST(CurveFitTest, FitMethodNames) {
  EXPECT_EQ(ToString(FitMethod::kLinearRegression), "regression");
  EXPECT_EQ(ToString(FitMethod::kPolyline), "polyline");
  EXPECT_EQ(ToString(FitMethod::kSpline), "spline");
}

// ------------------------------------------------------------ combination --

TEST(CombinationTest, RegionsPartitionTotal) {
  const std::vector<bool> a{1, 1, 0, 0, 1, 0, 1, 0};
  const std::vector<bool> b{1, 0, 1, 0, 1, 1, 0, 0};
  const std::vector<bool> c{1, 0, 0, 1, 0, 1, 1, 0};
  const VennCounts v = CombineCrackSets(a, b, c);
  EXPECT_EQ(v.total, 8u);
  EXPECT_EQ(v.only_a + v.only_b + v.only_c + v.ab + v.ac + v.bc + v.abc +
                v.none,
            v.total);
  EXPECT_EQ(v.abc, 1u);   // item 0
  EXPECT_EQ(v.none, 1u);  // item 7
  EXPECT_EQ(v.InA(), 4u);
  EXPECT_EQ(v.InB(), 4u);
  EXPECT_EQ(v.InC(), 4u);
}

TEST(CombinationTest, RiskAggregates) {
  // 4 items: one cracked by all, one by two, one by one, one by none.
  const std::vector<bool> a{1, 1, 1, 0};
  const std::vector<bool> b{1, 1, 0, 0};
  const std::vector<bool> c{1, 0, 0, 0};
  const VennCounts v = CombineCrackSets(a, b, c);
  EXPECT_DOUBLE_EQ(v.UnionRisk(), 0.75);
  EXPECT_DOUBLE_EQ(v.ExpectedRisk(), (3 + 2 + 1) / (3.0 * 4.0));
  EXPECT_DOUBLE_EQ(v.MajorityRisk(), 0.5);
}

TEST(CombinationTest, EmptySets) {
  const VennCounts v = CombineCrackSets({}, {}, {});
  EXPECT_EQ(v.total, 0u);
  EXPECT_DOUBLE_EQ(v.UnionRisk(), 0.0);
  EXPECT_DOUBLE_EQ(v.ExpectedRisk(), 0.0);
  EXPECT_DOUBLE_EQ(v.MajorityRisk(), 0.0);
}

TEST(CombinationTest, ToStringShowsRegions) {
  const VennCounts v =
      CombineCrackSets({1, 0}, {0, 0}, {0, 1});
  const std::string s = v.ToString("regr", "spline", "poly");
  EXPECT_NE(s.find("only regr"), std::string::npos);
  EXPECT_NE(s.find("50.0%"), std::string::npos);
}

}  // namespace
}  // namespace popp
