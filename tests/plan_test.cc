#include <gtest/gtest.h>

#include "data/summary.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/plan.h"
#include "tree/label_runs.h"

namespace popp {
namespace {

TEST(PlanTest, OneTransformPerAttribute) {
  Rng rng(3);
  const Dataset d = MakeFigure1Dataset();
  const TransformPlan plan = TransformPlan::Create(d, PiecewiseOptions{}, rng);
  EXPECT_EQ(plan.NumAttributes(), 2u);
}

TEST(PlanTest, EncodeDatasetPreservesLabelsAndShape) {
  Rng rng(5);
  const Dataset d = MakeFigure1Dataset();
  const TransformPlan plan = TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const Dataset dp = plan.EncodeDataset(d);
  ASSERT_EQ(dp.NumRows(), d.NumRows());
  ASSERT_EQ(dp.NumAttributes(), d.NumAttributes());
  EXPECT_EQ(dp.schema(), d.schema());
  for (size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(dp.Label(r), d.Label(r));
  }
}

TEST(PlanTest, EncodeDecodeRoundTripsEveryCell) {
  Rng rng(7);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  PiecewiseOptions options;
  options.min_breakpoints = 10;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset dp = plan.EncodeDataset(d);
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    for (size_t r = 0; r < d.NumRows(); ++r) {
      EXPECT_NEAR(plan.Decode(a, dp.Value(r, a)), d.Value(r, a), 1e-7);
    }
  }
}

TEST(PlanTest, EncodeValueMatchesDatasetEncoding) {
  Rng rng(9);
  const Dataset d = MakeFigure1Dataset();
  const TransformPlan plan = TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const Dataset dp = plan.EncodeDataset(d);
  for (size_t r = 0; r < d.NumRows(); ++r) {
    for (size_t a = 0; a < d.NumAttributes(); ++a) {
      EXPECT_DOUBLE_EQ(plan.Encode(a, d.Value(r, a)), dp.Value(r, a));
    }
  }
}

TEST(PlanTest, ClassStringPreservedUnderGlobalMonotone) {
  // Lemma 1, end to end at the dataset level: the class string of every
  // attribute is unchanged by a global-monotone piecewise transform.
  Rng rng(11);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(800), rng);
  PiecewiseOptions options;
  options.min_breakpoints = 12;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset dp = plan.EncodeDataset(d);
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    // Compare label-run structure (lengths + labels), which is invariant
    // under the canonical-order freedom at tied values.
    const auto runs_d = LabelRunsOf(d, a);
    const auto runs_dp = LabelRunsOf(dp, a);
    // Bijective pieces permute same-class values, which cannot change the
    // run structure; monotone pieces preserve order outright.
    EXPECT_EQ(runs_d.size(), runs_dp.size()) << "attr " << a;
  }
}

TEST(PlanTest, ClassStringExactlyPreservedWithoutTies) {
  // With all-distinct values the class string comparison is exact.
  Dataset d({"x"}, {"a", "b"});
  const std::vector<ClassId> labels{0, 0, 1, 0, 1, 1, 0, 1, 0, 0};
  for (size_t i = 0; i < labels.size(); ++i) {
    d.AddRow({static_cast<double>(i * 7)}, labels[i]);
  }
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    PiecewiseOptions options;
    options.min_breakpoints = 3;
    const TransformPlan plan = TransformPlan::Create(d, options, rng);
    const Dataset dp = plan.EncodeDataset(d);
    EXPECT_EQ(ClassString(d.SortedProjection(0)),
              ClassString(dp.SortedProjection(0)))
        << "seed " << seed;
  }
}

TEST(PlanTest, ClassStringReversedUnderGlobalAntiMonotone) {
  // Lemma 1's anti-monotone half, with a single anti-monotone piece.
  Dataset d({"x"}, {"a", "b"});
  const std::vector<ClassId> labels{0, 1, 1, 0, 0, 0, 1};
  for (size_t i = 0; i < labels.size(); ++i) {
    d.AddRow({static_cast<double>(i * 3)}, labels[i]);
  }
  Rng rng(13);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kNone;
  options.global_anti_monotone = true;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset dp = plan.EncodeDataset(d);
  EXPECT_EQ(Reversed(ClassString(d.SortedProjection(0))),
            ClassString(dp.SortedProjection(0)));
}

TEST(PlanTest, PerAttributeOptions) {
  Rng rng(17);
  const Dataset d = MakeFigure1Dataset();
  std::vector<PiecewiseOptions> per_attr(2);
  per_attr[0].policy = BreakpointPolicy::kNone;
  per_attr[1].policy = BreakpointPolicy::kChooseBP;
  per_attr[1].min_breakpoints = 2;
  const TransformPlan plan =
      TransformPlan::CreatePerAttribute(d, per_attr, rng);
  EXPECT_EQ(plan.transform(0).NumPieces(), 1u);
  EXPECT_GT(plan.transform(1).NumPieces(), 1u);
}

TEST(PlanTest, DescribeMentionsAttributes) {
  Rng rng(19);
  const Dataset d = MakeFigure1Dataset();
  const TransformPlan plan = TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const std::string text = plan.Describe(d.schema());
  EXPECT_NE(text.find("age"), std::string::npos);
  EXPECT_NE(text.find("salary"), std::string::npos);
}

TEST(PlanTest, DeterministicGivenSeed) {
  const Dataset d = MakeFigure1Dataset();
  Rng rng1(21), rng2(21);
  const TransformPlan p1 = TransformPlan::Create(d, PiecewiseOptions{}, rng1);
  const TransformPlan p2 = TransformPlan::Create(d, PiecewiseOptions{}, rng2);
  EXPECT_EQ(p1.EncodeDataset(d), p2.EncodeDataset(d));
}

}  // namespace
}  // namespace popp
