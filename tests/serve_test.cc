#include <gtest/gtest.h>

#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/cols.h"
#include "data/csv.h"
#include "fault/failpoint.h"
#include "fault/file.h"
#include "parallel/exec_policy.h"
#include "serve/client.h"
#include "serve/ops.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/workspace.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/compiled.h"
#include "transform/plan.h"
#include "transform/serialize.h"
#include "util/crc64.h"
#include "util/rng.h"

namespace popp::serve {
namespace {

std::string TempSocketPath(const std::string& name) {
  return testing::TempDir() + "popp_srv_" + std::to_string(::getpid()) +
         "_" + name;
}

// ---------------------------------------------------------------------------
// Protocol framing (pure byte-string codec, no socket).

TEST(ServeProtocolTest, FrameRoundTrip) {
  const std::string payload("payload \x01\x02\x00 bytes", 17);
  const std::string bytes = EncodeFrame(Tag::kEncode, "tenant-a", payload);
  auto frame = DecodeFrame(bytes);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().version, kProtocolVersion);
  EXPECT_EQ(frame.value().tag, Tag::kEncode);
  EXPECT_EQ(frame.value().tenant, "tenant-a");
  EXPECT_EQ(frame.value().payload, payload);
}

TEST(ServeProtocolTest, EmptyTenantAndPayloadRoundTrip) {
  auto frame = DecodeFrame(EncodeFrame(Tag::kShutdown, "", ""));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().tag, Tag::kShutdown);
  EXPECT_TRUE(frame.value().tenant.empty());
  EXPECT_TRUE(frame.value().payload.empty());
}

TEST(ServeProtocolTest, TruncatedFrameIsDataLoss) {
  const std::string bytes = EncodeFrame(Tag::kStats, "t", "payload");
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() - 1}) {
    auto frame = DecodeFrame(bytes.substr(0, cut));
    ASSERT_FALSE(frame.ok()) << "cut at " << cut;
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss) << "cut at "
                                                            << cut;
  }
}

TEST(ServeProtocolTest, DamagedByteIsCrcDataLoss) {
  std::string bytes = EncodeFrame(Tag::kFit, "tenant", "payload");
  bytes[bytes.size() / 2] ^= 0x40;  // damage inside the body
  auto frame = DecodeFrame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(frame.status().message().find("CRC"), std::string::npos);
}

/// Builds a frame by hand so the version byte can disagree while the CRC
/// stays valid (EncodeFrame always stamps the supported version).
std::string HandcraftedFrame(uint8_t version, Tag tag,
                             const std::string& tenant,
                             const std::string& payload) {
  std::string body;
  body.push_back(static_cast<char>(version));
  body.push_back(static_cast<char>(tag));
  const uint16_t tenant_len = static_cast<uint16_t>(tenant.size());
  body.push_back(static_cast<char>(tenant_len & 0xff));
  body.push_back(static_cast<char>(tenant_len >> 8));
  body += tenant;
  body += payload;
  const uint64_t crc = Crc64(body);
  const uint32_t frame_len = static_cast<uint32_t>(body.size() + 8);
  std::string bytes;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((frame_len >> (8 * i)) & 0xff));
  }
  bytes += body;
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  return bytes;
}

TEST(ServeProtocolTest, VersionMismatchIsInvalidArgumentNamingBoth) {
  auto frame = DecodeFrame(HandcraftedFrame(9, Tag::kStats, "t", "p"));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(frame.status().message().find("9"), std::string::npos);
  EXPECT_NE(frame.status().message().find(
                std::to_string(int{kProtocolVersion})),
            std::string::npos);
}

TEST(ServeProtocolTest, HandcraftedCurrentVersionDecodes) {
  auto frame = DecodeFrame(
      HandcraftedFrame(kProtocolVersion, Tag::kRisk, "ten", "pay"));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().tag, Tag::kRisk);
  EXPECT_EQ(frame.value().tenant, "ten");
  EXPECT_EQ(frame.value().payload, "pay");
}

TEST(ServeProtocolTest, OversizeFrameIsRejectedBeforeAllocation) {
  const std::string bytes = EncodeFrame(Tag::kEncode, "t",
                                        std::string(256, 'x'));
  auto frame = DecodeFrame(bytes, /*max_frame_bytes=*/64);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, RequestBodyRoundTrip) {
  RequestBody request;
  request.options = "seed 7\npolicy bp\n";
  request.extra = std::string("tree\x00kov", 8);
  request.dataset = "a,b,class\n1,2,x\n";
  auto decoded = RequestBody::Decode(request.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().options, request.options);
  EXPECT_EQ(decoded.value().extra, request.extra);
  EXPECT_EQ(decoded.value().dataset, request.dataset);
}

TEST(ServeProtocolTest, ReplyBodyRoundTripCarriesCode) {
  const ReplyBody reply =
      ReplyBody::Error(Status::DataLoss("checksum mismatch"));
  auto decoded = ReplyBody::Decode(reply.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().code, StatusCode::kDataLoss);
  EXPECT_FALSE(decoded.value().ok());
  EXPECT_NE(decoded.value().text.find("checksum"), std::string::npos);
}

TEST(ServeProtocolTest, ParseTagNames) {
  for (Tag tag : {Tag::kFit, Tag::kEncode, Tag::kDecode, Tag::kVerify,
                  Tag::kRisk, Tag::kStats, Tag::kShutdown}) {
    auto parsed = ParseTag(TagName(tag));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), tag);
  }
  EXPECT_FALSE(ParseTag("frobnicate").ok());
}

// ---------------------------------------------------------------------------
// Plan cache: key canonicalization and strict LRU.

TEST(PlanCacheKeyTest, PolicyFingerprintSeparatesEveryKnob) {
  const PiecewiseOptions base;
  PiecewiseOptions changed = base;
  changed.min_breakpoints = base.min_breakpoints + 1;
  EXPECT_NE(PolicyFingerprint(base), PolicyFingerprint(changed));
  changed = base;
  changed.global_anti_monotone = !base.global_anti_monotone;
  EXPECT_NE(PolicyFingerprint(base), PolicyFingerprint(changed));
  changed = base;
  changed.gap_fraction += 0.125;
  EXPECT_NE(PolicyFingerprint(base), PolicyFingerprint(changed));
  EXPECT_EQ(PolicyFingerprint(base), PolicyFingerprint(PiecewiseOptions{}));
}

TEST(PlanCacheKeyTest, SchemaFingerprintSeparatesVocabulary) {
  const Schema a({"x", "y"}, {"yes", "no"});
  const Schema same({"x", "y"}, {"yes", "no"});
  const Schema renamed({"x", "z"}, {"yes", "no"});
  const Schema relabeled({"x", "y"}, {"no", "yes"});
  EXPECT_EQ(SchemaFingerprint(a), SchemaFingerprint(same));
  EXPECT_NE(SchemaFingerprint(a), SchemaFingerprint(renamed));
  EXPECT_NE(SchemaFingerprint(a), SchemaFingerprint(relabeled));
}

PlanKey KeyNumbered(uint64_t n) {
  PlanKey key;
  key.schema_fp = 0xfeedu;
  key.seed = n;
  key.policy = "p";
  return key;
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedAtTinyCapacity) {
  PlanCache cache(2);
  cache.Insert(KeyNumbered(1), CachedPlan{});
  cache.Insert(KeyNumbered(2), CachedPlan{});
  EXPECT_NE(cache.Lookup(KeyNumbered(1)), nullptr);  // promotes 1 over 2
  cache.Insert(KeyNumbered(3), CachedPlan{});        // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(KeyNumbered(1)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyNumbered(2)), nullptr);
  EXPECT_NE(cache.Lookup(KeyNumbered(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().resident, 2u);
  EXPECT_EQ(cache.stats().capacity, 2u);
}

TEST(PlanCacheTest, CapacityOneThrashes) {
  PlanCache cache(1);
  for (uint64_t n = 0; n < 5; ++n) {
    EXPECT_EQ(cache.Lookup(KeyNumbered(n)), nullptr);
    cache.Insert(KeyNumbered(n), CachedPlan{});
    EXPECT_NE(cache.Lookup(KeyNumbered(n)), nullptr);
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 4u);
}

// ---------------------------------------------------------------------------
// Workspace registry: stable pointers, tenant isolation.

TEST(WorkspaceRegistryTest, StablePerTenantWorkspaces) {
  WorkspaceRegistry registry(4);
  Workspace* a = registry.GetOrCreate("alice");
  Workspace* b = registry.GetOrCreate("bob");
  Workspace* base = registry.GetOrCreate("");
  EXPECT_NE(a, b);
  EXPECT_NE(a, base);
  EXPECT_EQ(registry.GetOrCreate("alice"), a);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(a->name(), "alice");

  // Filling alice's cache never touches bob's.
  a->cache().Insert(KeyNumbered(1), CachedPlan{});
  a->cache().Insert(KeyNumbered(2), CachedPlan{});
  EXPECT_EQ(b->cache().size(), 0u);
  EXPECT_EQ(b->cache().stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end daemon tests over a real Unix socket.

/// A daemon running on a background thread for one test.
struct TestServer {
  ServeOptions options;
  std::unique_ptr<Server> server;
  std::thread thread;
  std::ostringstream log;
  int exit_code = -1;

  Status Start(ServeOptions opts) {
    options = std::move(opts);
    server = std::make_unique<Server>(options);
    const Status started = server->Start();
    if (!started.ok()) return started;
    thread = std::thread([this] { exit_code = server->Serve(log); });
    return Status::Ok();
  }

  /// Requests a drain and joins; returns the daemon's exit code.
  int Shutdown() {
    if (server != nullptr) server->RequestShutdown();
    if (thread.joinable()) thread.join();
    return exit_code;
  }

  ~TestServer() { Shutdown(); }
};

class ServeEndToEndTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    const Dataset generated = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
    // The canonical dataset is what the CSV request framing parses to
    // (class ids in order of first appearance).
    auto canonical = ParseCsv(ToCsvString(generated));
    ASSERT_TRUE(canonical.ok());
    data_ = std::move(canonical).value();
    csv_bytes_ = ToCsvString(data_);
    cols_bytes_ = SerializeCols(data_);
  }

  /// The release `popp encode --seed N` computes for these bytes.
  Dataset ExpectedRelease(uint64_t seed,
                          const PiecewiseOptions& options) const {
    Rng rng(seed);
    const TransformPlan plan =
        TransformPlan::Create(data_, options, rng, ExecPolicy{1});
    return CompiledPlan::Compile(plan).EncodeDataset(data_, ExecPolicy{1});
  }

  /// What `popp encode --seed N` writes (a CSV-framed reply body).
  std::string ExpectedEncode(uint64_t seed,
                             const PiecewiseOptions& options) const {
    return ToCsvString(ExpectedRelease(seed, options));
  }

  static std::string OptionsText(uint64_t seed, size_t threads) {
    return "seed " + std::to_string(seed) + "\npolicy bp\nthreads " +
           std::to_string(threads) + "\n";
  }

  Dataset data_;
  std::string csv_bytes_;
  std::string cols_bytes_;
};

TEST_F(ServeEndToEndTest, EncodeMatchesLibraryAcrossFramingsAndThreads) {
  ServeOptions options;
  options.socket_path = TempSocketPath("enc");
  options.num_threads = 2;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  PiecewiseOptions transform;
  transform.policy = BreakpointPolicy::kChooseBP;
  const Dataset release = ExpectedRelease(9, transform);
  // The reply mirrors the request framing.
  const std::string expected_csv = ToCsvString(release);
  const std::string expected_cols = SerializeCols(release);

  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  bool first = true;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    for (const std::string* bytes : {&csv_bytes_, &cols_bytes_}) {
      RequestBody request;
      request.options = OptionsText(9, threads);
      request.dataset = *bytes;
      auto reply = client.Call(Tag::kEncode, "t", request);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ASSERT_TRUE(reply.value().ok()) << reply.value().text;
      EXPECT_EQ(reply.value().body,
                bytes == &cols_bytes_ ? expected_cols : expected_csv);
      EXPECT_NE(reply.value().text.find(first ? "cold plan" : "hot plan"),
                std::string::npos)
          << reply.value().text;
      first = false;
    }
  }
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST_F(ServeEndToEndTest, LruEvictionUnderTinyCapacity) {
  ServeOptions options;
  options.socket_path = TempSocketPath("lru");
  options.cache_capacity = 1;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  // Alternating seeds with capacity 1: every request misses and evicts.
  for (uint64_t round = 0; round < 3; ++round) {
    for (uint64_t seed : {uint64_t{1}, uint64_t{2}}) {
      RequestBody request;
      request.options = OptionsText(seed, 1);
      request.dataset = csv_bytes_;
      auto reply = client.Call(Tag::kEncode, "t", request);
      ASSERT_TRUE(reply.ok() && reply.value().ok());
      EXPECT_NE(reply.value().text.find("cold plan"), std::string::npos);
    }
  }
  auto stats = client.Call(Tag::kStats, "t", RequestBody{});
  ASSERT_TRUE(stats.ok() && stats.value().ok());
  EXPECT_NE(stats.value().body.find("cache_misses: 6"), std::string::npos)
      << stats.value().body;
  EXPECT_NE(stats.value().body.find("cache_evictions: 5"),
            std::string::npos)
      << stats.value().body;
  EXPECT_NE(stats.value().body.find("plans_resident: 1"), std::string::npos)
      << stats.value().body;
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST_F(ServeEndToEndTest, ConcurrentTenantsStayIsolatedAndDeterministic) {
  ServeOptions options;
  options.socket_path = TempSocketPath("conc");
  options.num_threads = 4;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  PiecewiseOptions transform;
  transform.policy = BreakpointPolicy::kChooseBP;
  const Dataset release = ExpectedRelease(9, transform);
  const std::string expected_csv = ToCsvString(release);
  const std::string expected_cols = SerializeCols(release);

  constexpr size_t kTenants = 4;
  constexpr size_t kRequests = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (size_t t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      ServeClient client;
      if (!client.Connect(options.socket_path).ok()) {
        mismatches.fetch_add(100);
        return;
      }
      const std::string tenant = "tenant-" + std::to_string(t);
      for (size_t r = 0; r < kRequests; ++r) {
        RequestBody request;
        request.options = OptionsText(9, 1 + t % 3);
        request.dataset = t % 2 == 0 ? csv_bytes_ : cols_bytes_;
        const std::string& expected =
            t % 2 == 0 ? expected_csv : expected_cols;
        auto reply = client.Call(Tag::kEncode, tenant, request);
        if (!reply.ok() || !reply.value().ok() ||
            reply.value().body != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : tenants) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Each tenant saw exactly its own requests; one fit per tenant.
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  for (size_t t = 0; t < kTenants; ++t) {
    auto stats = client.Call(Tag::kStats, "tenant-" + std::to_string(t),
                             RequestBody{});
    ASSERT_TRUE(stats.ok() && stats.value().ok());
    EXPECT_NE(stats.value().body.find(
                  "requests_served: " + std::to_string(kRequests + 1)),
              std::string::npos)
        << stats.value().body;
    EXPECT_NE(stats.value().body.find("cache_misses: 1"), std::string::npos)
        << stats.value().body;
  }
  EXPECT_EQ(daemon.Shutdown(), 0);
}

/// Connects a raw socket for malformed-frame tests.
int RawConnect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

TEST_F(ServeEndToEndTest, MalformedFramesPoisonOnlyTheirConnection) {
  ServeOptions options;
  options.socket_path = TempSocketPath("bad");
  options.max_frame_bytes = 1u << 20;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  // (a) CRC damage: flip a body byte, keep the length honest.
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    std::string bytes = EncodeFrame(Tag::kStats, "t", "x");
    bytes[6] ^= 0x10;
    SendAll(fd, bytes);
    auto reply = RecvFrame(fd);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    auto body = ReplyBody::Decode(reply.value().payload);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body.value().code, StatusCode::kDataLoss);
    ::close(fd);
  }
  // (b) Truncation: promise more bytes than ever arrive, then close.
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    const std::string full = EncodeFrame(Tag::kStats, "t", "payload");
    SendAll(fd, full.substr(0, full.size() - 3));
    ::shutdown(fd, SHUT_WR);
    auto reply = RecvFrame(fd);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    auto body = ReplyBody::Decode(reply.value().payload);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body.value().code, StatusCode::kDataLoss);
    ::close(fd);
  }
  // (c) Version from the future with a valid CRC.
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    SendAll(fd, HandcraftedFrame(9, Tag::kStats, "t", ""));
    auto reply = RecvFrame(fd);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    auto body = ReplyBody::Decode(reply.value().payload);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body.value().code, StatusCode::kInvalidArgument);
    ::close(fd);
  }
  // (d) Oversize length prefix is refused without allocation.
  {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    SendAll(fd, std::string("\xff\xff\xff\x7f", 4));
    auto reply = RecvFrame(fd);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    auto body = ReplyBody::Decode(reply.value().payload);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body.value().code, StatusCode::kInvalidArgument);
    ::close(fd);
  }

  // The daemon survived all four: a well-formed request still works.
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  auto stats = client.Call(Tag::kStats, "t", RequestBody{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().ok());
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST_F(ServeEndToEndTest, PeerVanishingMidReplyCostsOnlyItsConnection) {
  ServeOptions options;
  options.socket_path = TempSocketPath("gone");
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  // Clients that request an encode and disappear before reading the
  // reply: the daemon's send must surface as EPIPE on that connection
  // (MSG_NOSIGNAL), never raise a process-killing SIGPIPE.
  for (int round = 0; round < 3; ++round) {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    RequestBody request;
    request.options = OptionsText(9, 1);
    request.dataset = csv_bytes_;
    SendAll(fd, EncodeFrame(Tag::kEncode, "t", request.Encode()));
    ::close(fd);  // gone before the reply
  }

  // The daemon survived every abandoned reply: a well-formed request
  // still round-trips.
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  auto stats = client.Call(Tag::kStats, "t", RequestBody{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().ok());
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST(ServeDrainTest, DrainAbortsAPeerThatStopsConsumingItsReply) {
  // A reply larger than the socket buffer blocks the worker's send; a
  // drain must abort that write instead of spinning on the connection
  // count forever (the pre-fix hang: RecvFrame honored the shutdown
  // flag but the reply write did not).
  Rng rng(13);
  const Dataset big = GenerateCovtypeLike(SmallCovtypeSpec(40000), rng);
  const std::string big_csv = ToCsvString(big);

  ServeOptions options;
  options.socket_path = TempSocketPath("stall");
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  const int fd = RawConnect(options.socket_path);
  ASSERT_GE(fd, 0);
  RequestBody request;
  request.options = "seed 9\npolicy bp\nthreads 1\n";
  request.dataset = big_csv;
  SendAll(fd, EncodeFrame(Tag::kEncode, "stall", request.Encode()));

  // Wait until the daemon has started writing the reply (bytes become
  // readable on our side), then never read a single one: its send
  // buffer fills and the worker blocks mid-reply.
  struct pollfd pfd = {fd, POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, 30000), 0);

  // The drain aborts the stalled write; Shutdown() joins promptly
  // instead of hanging (a regression here times the test out).
  EXPECT_EQ(daemon.Shutdown(), 0);
  ::close(fd);
  EXPECT_FALSE(fault::FileExists(options.socket_path));
}

TEST_F(ServeEndToEndTest, SaveIsRefusedWithoutAConfiguredSaveDir) {
  ServeOptions options;
  options.socket_path = TempSocketPath("nosave");
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());

  RequestBody fit;
  fit.options = "seed 4\nsave plan.key\n";
  fit.dataset = csv_bytes_;
  auto reply = client.Call(Tag::kFit, "t", fit);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().code, StatusCode::kInvalidArgument);
  EXPECT_NE(reply.value().text.find("--save-dir"), std::string::npos)
      << reply.value().text;
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST_F(ServeEndToEndTest, SaveIsConfinedToThePerTenantDirectory) {
  const std::string save_dir = testing::TempDir() + "popp_srv_saves_" +
                               std::to_string(::getpid());
  ServeOptions options;
  options.socket_path = TempSocketPath("save");
  options.save_dir = save_dir;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());

  // Escape attempts are refused before any filesystem work.
  for (const char* target :
       {"/tmp/evil.key", "../escape.key", "a/../../b", "a//b", "."}) {
    RequestBody fit;
    fit.options = std::string("seed 4\nsave ") + target + "\n";
    fit.dataset = csv_bytes_;
    auto reply = client.Call(Tag::kFit, "alice", fit);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().code, StatusCode::kInvalidArgument) << target;
  }
  // A tenant whose name cannot be a directory component may not save.
  {
    RequestBody fit;
    fit.options = "seed 4\nsave plan.key\n";
    fit.dataset = csv_bytes_;
    auto reply = client.Call(Tag::kFit, "../bob", fit);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().code, StatusCode::kInvalidArgument);
  }
  // A relative target lands under <save_dir>/<tenant>/ holding the
  // exact canonical plan bytes.
  Rng rng(4);
  const TransformPlan plan =
      TransformPlan::Create(data_, PiecewiseOptions{}, rng, ExecPolicy{1});
  RequestBody fit;
  fit.options = "seed 4\nsave plans/run1.key\n";
  fit.dataset = csv_bytes_;
  auto reply = client.Call(Tag::kFit, "alice", fit);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply.value().ok()) << reply.value().text;
  auto saved = fault::ReadFileToString(save_dir + "/alice/plans/run1.key");
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(saved.value(), SerializePlan(plan));
  EXPECT_EQ(daemon.Shutdown(), 0);
  std::error_code ec;
  std::filesystem::remove_all(save_dir, ec);
}

TEST_F(ServeEndToEndTest, ThreadsZeroMeansAllHardwareThreadsCapped) {
  ServeOptions options;
  options.socket_path = TempSocketPath("hw");
  options.max_request_threads = 2;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());

  // `threads 0` keeps the CLI meaning (all hardware threads, here capped
  // at the serve ceiling of 2) rather than silently clamping to 1; the
  // released bytes are identical either way by the §12 determinism.
  PiecewiseOptions transform;
  transform.policy = BreakpointPolicy::kChooseBP;
  RequestBody request;
  request.options = OptionsText(9, 0);
  request.dataset = csv_bytes_;
  auto reply = client.Call(Tag::kEncode, "t", request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply.value().ok()) << reply.value().text;
  EXPECT_EQ(reply.value().body, ExpectedEncode(9, transform));
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST_F(ServeEndToEndTest, ProtocolShutdownDrainsAndRemovesSocket) {
  ServeOptions options;
  options.socket_path = TempSocketPath("down");
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());
  ASSERT_TRUE(fault::FileExists(options.socket_path));

  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  auto reply = client.Call(Tag::kShutdown, "", RequestBody{});
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().ok());
  EXPECT_EQ(daemon.Shutdown(), 0);
  EXPECT_FALSE(fault::FileExists(options.socket_path));
}

TEST(ServeLifecycleTest, RefusesSocketAnotherDaemonListensOn) {
  ServeOptions options;
  options.socket_path = TempSocketPath("live");
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  Server second(options);
  const Status refused = second.Start();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.ToString().find(options.socket_path),
            std::string::npos);
  // The refusal maps onto the usage exit code, with the diagnostic on err.
  std::ostringstream out, err;
  EXPECT_EQ(RunServer(options, out, err), 2);
  EXPECT_NE(err.str().find("already listening"), std::string::npos);
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST(ServeLifecycleTest, ReclaimsStaleDeadSocket) {
  const std::string path = TempSocketPath("stale");
  // Fake a crashed daemon: bind a socket, close the fd, leave the file.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ::close(fd);
  ASSERT_TRUE(fault::FileExists(path));

  ServeOptions options;
  options.socket_path = path;
  TestServer daemon;
  EXPECT_TRUE(daemon.Start(options).ok());
  ServeClient client;
  EXPECT_TRUE(client.Connect(path).ok());
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST(ServeLifecycleTest, RejectsOverlongSocketPath) {
  ServeOptions options;
  options.socket_path = testing::TempDir() + std::string(200, 'x');
  Server server(options);
  const Status status = server.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ServeLifecycleTest, IdleShutdownSoak) {
  // Start/drain cycles with zero or one connection: the pool must come up
  // and wind down cleanly every time, and the socket file must never
  // survive a drain.
  for (int round = 0; round < 12; ++round) {
    ServeOptions options;
    options.socket_path = TempSocketPath("soak");
    options.num_threads = 1 + round % 4;
    TestServer daemon;
    ASSERT_TRUE(daemon.Start(options).ok()) << "round " << round;
    if (round % 3 == 0) {
      ServeClient client;
      ASSERT_TRUE(client.Connect(options.socket_path).ok());
      auto reply = client.Call(Tag::kStats, "soak", RequestBody{});
      ASSERT_TRUE(reply.ok() && reply.value().ok());
    }
    EXPECT_EQ(daemon.Shutdown(), 0) << "round " << round;
    EXPECT_FALSE(fault::FileExists(options.socket_path))
        << "round " << round;
  }
}

TEST_F(ServeEndToEndTest, FitDecodeVerifyRiskRoundTrips) {
  ServeOptions options;
  options.socket_path = TempSocketPath("ops");
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());

  // fit: the reply body is the canonical plan document.
  Rng rng(4);
  const TransformPlan plan =
      TransformPlan::Create(data_, PiecewiseOptions{}, rng, ExecPolicy{1});
  RequestBody fit;
  fit.options = "seed 4\n";
  fit.dataset = csv_bytes_;
  auto fitted = client.Call(Tag::kFit, "ops", fit);
  ASSERT_TRUE(fitted.ok() && fitted.value().ok());
  EXPECT_EQ(fitted.value().body, SerializePlan(plan));

  // verify: the daemon runs the full no-outcome-change check.
  RequestBody verify;
  verify.options = "seed 4\n";
  verify.dataset = csv_bytes_;
  auto verified = client.Call(Tag::kVerify, "ops", verify);
  ASSERT_TRUE(verified.ok() && verified.value().ok());
  EXPECT_NE(verified.value().text.find("VERIFIED"), std::string::npos)
      << verified.value().text;

  // risk: a tiny report renders.
  RequestBody risk;
  risk.options = "seed 4\ntrials 3\n";
  risk.dataset = csv_bytes_;
  auto report = client.Call(Tag::kRisk, "ops", risk);
  ASSERT_TRUE(report.ok() && report.value().ok());
  EXPECT_FALSE(report.value().body.empty());

  // Unknown request option → clean kInvalidArgument reply, daemon alive.
  RequestBody bad;
  bad.options = "frobnicate 1\n";
  bad.dataset = csv_bytes_;
  auto rejected = client.Call(Tag::kEncode, "ops", bad);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().code, StatusCode::kInvalidArgument);

  EXPECT_EQ(daemon.Shutdown(), 0);
}

// ---------------------------------------------------------------------------
// Admission control and deadlines (the §17 overload contract).

class ServeAdmissionTest : public ServeEndToEndTest {
 protected:
  /// Polls the `health` op until its body reports `inflight <want>` (the
  /// op bypasses admission, so it answers even when every slot is taken).
  void WaitForInflight(ServeClient& client, size_t want) {
    // Anchor the match at a line start: the stats body also carries a
    // "max-inflight N" line whose tail is the same substring.
    const std::string needle = "inflight " + std::to_string(want) + "\n";
    for (int spin = 0; spin < 2000; ++spin) {
      auto health = client.Call(Tag::kHealth, "probe", RequestBody{});
      ASSERT_TRUE(health.ok()) << health.status().ToString();
      ASSERT_TRUE(health.value().ok()) << health.value().text;
      const std::string& body = health.value().body;
      if (body.rfind(needle, 0) == 0 ||
          body.find("\n" + needle) != std::string::npos) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FAIL() << "daemon never reported inflight " << want;
  }

  /// Joins the guarded thread on scope exit, so a fatal assertion in the
  /// test body cannot destroy a still-running helper thread (which would
  /// terminate the whole process).
  struct ScopedJoin {
    std::thread& thread;
    ~ScopedJoin() {
      if (thread.joinable()) thread.join();
    }
  };

  RequestBody EncodeRequest(const std::string& extra_options = "") {
    RequestBody request;
    request.options = OptionsText(9, 1) + extra_options;
    request.dataset = csv_bytes_;
    return request;
  }
};

TEST_F(ServeAdmissionTest, HealthBypassesAdmissionAndReportsCounters) {
  ServeOptions options;
  options.socket_path = TempSocketPath("health");
  options.max_inflight = 3;
  options.max_queue = 5;
  options.per_tenant_inflight = 2;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());

  auto health = client.Call(Tag::kHealth, "anyone", RequestBody{});
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  ASSERT_TRUE(health.value().ok()) << health.value().text;
  EXPECT_EQ(health.value().text, "healthy");
  const std::string& body = health.value().body;
  EXPECT_NE(body.find("inflight 0\n"), std::string::npos) << body;
  EXPECT_NE(body.find("max-inflight 3\n"), std::string::npos) << body;
  EXPECT_NE(body.find("max-queue 5\n"), std::string::npos) << body;
  EXPECT_NE(body.find("tenant-cap 2\n"), std::string::npos) << body;
  EXPECT_NE(body.find("rejected-frames "), std::string::npos) << body;
  EXPECT_NE(body.find("connections "), std::string::npos) << body;
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST_F(ServeAdmissionTest, ExpiredDeadlineIsShedBeforeAnyWork) {
  ServeOptions options;
  options.socket_path = TempSocketPath("dl0");
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());

  auto reply = client.Call(Tag::kEncode, "t", EncodeRequest("deadline-ms 0\n"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().code, StatusCode::kUnavailable);
  EXPECT_NE(reply.value().text.find("deadline exceeded"), std::string::npos)
      << reply.value().text;
  // The shed was an answer, not a hang: the connection and the daemon
  // both still serve.
  auto after = client.Call(Tag::kEncode, "t", EncodeRequest());
  ASSERT_TRUE(after.ok() && after.value().ok());
  EXPECT_EQ(daemon.Shutdown(), 0);
}

TEST_F(ServeAdmissionTest, QueueFullShedsWithRetryAfterHint) {
  const std::string save_dir = testing::TempDir() + "popp_adm_save_" +
                               std::to_string(::getpid());
  ServeOptions options;
  options.socket_path = TempSocketPath("full");
  options.num_threads = 2;
  options.max_inflight = 1;
  options.max_queue = 0;  // no queue: overflow sheds immediately
  options.save_dir = save_dir;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  // A fit-with-save stalls 1500 ms inside the save (an injected hang on
  // the first fault-layer op), pinning the single execution slot.
  fault::ScopedFaultInjection injection(
      fault::FaultSchedule::DelayAt(0, 1500));
  std::thread blocked([&] {
    ServeClient slow;
    ASSERT_TRUE(slow.Connect(options.socket_path).ok());
    RequestBody fit;
    fit.options = "seed 4\nsave slow.key\n";
    fit.dataset = csv_bytes_;
    auto reply = slow.Call(Tag::kFit, "t", fit);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply.value().ok()) << reply.value().text;
  });
  ScopedJoin join_guard{blocked};

  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  WaitForInflight(client, 1);
  auto shed = client.Call(Tag::kEncode, "t", EncodeRequest());
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().code, StatusCode::kUnavailable);
  EXPECT_NE(shed.value().text.find("overloaded"), std::string::npos)
      << shed.value().text;
  EXPECT_NE(shed.value().text.find("retry-after-ms"), std::string::npos)
      << shed.value().text;
  blocked.join();

  // The slot came back; the same request now executes.
  WaitForInflight(client, 0);
  auto after = client.Call(Tag::kEncode, "t", EncodeRequest());
  ASSERT_TRUE(after.ok() && after.value().ok()) << after.value().text;
  EXPECT_EQ(daemon.Shutdown(), 0);
  std::error_code ec;
  std::filesystem::remove_all(save_dir, ec);
}

TEST_F(ServeAdmissionTest, PerTenantCapLeavesOtherTenantsServed) {
  const std::string save_dir = testing::TempDir() + "popp_adm_cap_" +
                               std::to_string(::getpid());
  ServeOptions options;
  options.socket_path = TempSocketPath("cap");
  options.num_threads = 3;
  options.max_inflight = 2;
  options.max_queue = 0;
  options.per_tenant_inflight = 1;
  options.save_dir = save_dir;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  fault::ScopedFaultInjection injection(
      fault::FaultSchedule::DelayAt(0, 1500));
  std::thread greedy([&] {
    ServeClient slow;
    ASSERT_TRUE(slow.Connect(options.socket_path).ok());
    RequestBody fit;
    fit.options = "seed 4\nsave slow.key\n";
    fit.dataset = csv_bytes_;
    auto reply = slow.Call(Tag::kFit, "greedy", fit);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply.value().ok()) << reply.value().text;
  });
  ScopedJoin join_guard{greedy};

  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  WaitForInflight(client, 1);
  // The greedy tenant is at its cap: its second request sheds even though
  // a global slot is free...
  auto capped = client.Call(Tag::kEncode, "greedy", EncodeRequest());
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped.value().code, StatusCode::kUnavailable);
  EXPECT_NE(capped.value().text.find("overloaded"), std::string::npos)
      << capped.value().text;
  // ...while another tenant takes that free slot immediately.
  ServeClient other;
  ASSERT_TRUE(other.Connect(options.socket_path).ok());
  auto served = other.Call(Tag::kEncode, "other", EncodeRequest());
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served.value().ok()) << served.value().text;
  greedy.join();
  EXPECT_EQ(daemon.Shutdown(), 0);
  std::error_code ec;
  std::filesystem::remove_all(save_dir, ec);
}

TEST_F(ServeAdmissionTest, DeadlineExpiryMidRequestAnswersInsteadOfHanging) {
  const std::string save_dir = testing::TempDir() + "popp_adm_mid_" +
                               std::to_string(::getpid());
  ServeOptions options;
  options.socket_path = TempSocketPath("mid");
  options.save_dir = save_dir;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());

  // The save stalls 400 ms but the request's deadline is 120 ms: the
  // request is admitted (the deadline is live on arrival) and expires
  // mid-flight, so a phase-boundary check must answer kUnavailable.
  fault::ScopedFaultInjection injection(
      fault::FaultSchedule::DelayAt(0, 400));
  RequestBody fit;
  fit.options = "seed 4\nsave mid.key\ndeadline-ms 120\n";
  fit.dataset = csv_bytes_;
  auto reply = client.Call(Tag::kFit, "alice", fit);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().code, StatusCode::kUnavailable);
  EXPECT_NE(reply.value().text.find("deadline exceeded"), std::string::npos)
      << reply.value().text;

  // The abandoned save never tears: the target holds nothing or the
  // exact canonical plan document.
  Rng rng(4);
  const TransformPlan plan =
      TransformPlan::Create(data_, PiecewiseOptions{}, rng, ExecPolicy{1});
  auto saved = fault::ReadFileToString(save_dir + "/alice/mid.key");
  if (saved.ok()) {
    EXPECT_EQ(saved.value(), SerializePlan(plan));
  }

  // The daemon is intact: the identical request without a deadline
  // converges to the canonical plan bytes.
  RequestBody retry;
  retry.options = "seed 4\nsave mid.key\n";
  retry.dataset = csv_bytes_;
  auto again = client.Call(Tag::kFit, "alice", retry);
  ASSERT_TRUE(again.ok() && again.value().ok()) << again.value().text;
  EXPECT_EQ(again.value().body, SerializePlan(plan));
  auto final_saved = fault::ReadFileToString(save_dir + "/alice/mid.key");
  ASSERT_TRUE(final_saved.ok());
  EXPECT_EQ(final_saved.value(), SerializePlan(plan));
  EXPECT_EQ(daemon.Shutdown(), 0);
  std::error_code ec;
  std::filesystem::remove_all(save_dir, ec);
}

TEST_F(ServeAdmissionTest, ClientRetryLoopRecoversFromShedding) {
  const std::string save_dir = testing::TempDir() + "popp_adm_retry_" +
                               std::to_string(::getpid());
  ServeOptions options;
  options.socket_path = TempSocketPath("retry");
  options.num_threads = 2;
  options.max_inflight = 1;
  options.max_queue = 0;
  options.save_dir = save_dir;
  TestServer daemon;
  ASSERT_TRUE(daemon.Start(options).ok());

  fault::ScopedFaultInjection injection(
      fault::FaultSchedule::DelayAt(0, 1000));
  std::thread blocked([&] {
    ServeClient slow;
    ASSERT_TRUE(slow.Connect(options.socket_path).ok());
    RequestBody fit;
    fit.options = "seed 4\nsave slow.key\n";
    fit.dataset = csv_bytes_;
    auto reply = slow.Call(Tag::kFit, "t", fit);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply.value().ok()) << reply.value().text;
  });
  ScopedJoin join_guard{blocked};

  ServeClient client;
  ASSERT_TRUE(client.Connect(options.socket_path).ok());
  WaitForInflight(client, 1);
  // A plain call sheds right now...
  auto shed = client.Call(Tag::kEncode, "t", EncodeRequest());
  ASSERT_TRUE(shed.ok());
  ASSERT_EQ(shed.value().code, StatusCode::kUnavailable);
  // ...but the retry loop honors the retry-after hint and converges to
  // the exact expected bytes once the slot frees.
  PiecewiseOptions transform;
  transform.policy = BreakpointPolicy::kChooseBP;
  RetryOptions retry;
  retry.max_retries = 20;
  retry.seed = 7;
  retry.backoff.base_ms = 50;
  retry.backoff.cap_ms = 200;
  auto reply = client.CallWithRetry(Tag::kEncode, "t", EncodeRequest(), retry);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply.value().ok()) << reply.value().text;
  EXPECT_EQ(reply.value().body, ExpectedEncode(9, transform));
  blocked.join();
  EXPECT_EQ(daemon.Shutdown(), 0);
  std::error_code ec;
  std::filesystem::remove_all(save_dir, ec);
}

}  // namespace
}  // namespace popp::serve
