#include "transform/compiled.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "data/csv.h"
#include "data/summary.h"
#include "stream/chunk_io.h"
#include "stream/ood_policy.h"
#include "stream/streaming_custodian.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/piecewise.h"
#include "transform/plan.h"
#include "transform/serialize.h"
#include "util/rng.h"

namespace popp {
namespace {

/// Bit-level equality (stricter than ==): the compiled kernels promise the
/// exact same bytes as the interpreted path, -0.0 vs 0.0 included.
testing::AssertionResult BitEqual(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  if (ua == ub) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << a << " and " << b << " differ at the bit level";
}

Dataset CovtypeLikeData(size_t rows = 500, uint64_t seed = 17) {
  Rng rng(seed);
  return GenerateCovtypeLike(SmallCovtypeSpec(rows), rng);
}

/// Probe set of one transform: active-domain values, inter-value midpoints
/// (non-integral, so they bypass the LUT), piece-gap interiors (the bridge
/// branch) and out-of-hull offsets on both sides.
std::vector<AttrValue> Probes(const AttributeSummary& summary,
                              const PiecewiseTransform& t) {
  std::vector<AttrValue> probes;
  const auto& vals = summary.values();
  for (size_t i = 0; i < vals.size(); ++i) {
    probes.push_back(vals[i]);
    if (i + 1 < vals.size()) probes.push_back(0.5 * (vals[i] + vals[i + 1]));
  }
  const AttrValue lo = t.piece(0).domain_lo;
  const AttrValue hi = t.piece(t.NumPieces() - 1).domain_hi;
  for (AttrValue x : {lo - 3.0, lo - 0.5, hi + 0.5, hi + 3.0}) {
    probes.push_back(x);
  }
  for (size_t d = 0; d + 1 < t.NumPieces(); ++d) {
    const AttrValue gl = t.piece(d).domain_hi;
    const AttrValue gr = t.piece(d + 1).domain_lo;
    if (gr > gl) {
      probes.push_back(gl + 0.25 * (gr - gl));
      probes.push_back(gl + 0.75 * (gr - gl));
    }
  }
  return probes;
}

/// Asserts Apply/Inverse bit-identity over the probe set for both compile
/// variants (LUT fast path on and off).
void ExpectBitIdentical(const AttributeSummary& summary,
                        const PiecewiseTransform& t,
                        const std::string& what) {
  const CompiledTransform with_lut = CompiledTransform::Compile(t);
  const CompiledTransform no_lut = CompiledTransform::Compile(
      t, CompiledTransform::CompileOptions{.enable_lut = false});
  EXPECT_FALSE(no_lut.has_lut());
  for (AttrValue x : Probes(summary, t)) {
    for (const CompiledTransform* ct : {&with_lut, &no_lut}) {
      EXPECT_TRUE(BitEqual(t.Apply(x), ct->Apply(x)))
          << what << ": Apply(" << x << ")"
          << (ct == &with_lut ? " [lut]" : " [search]");
      const AttrValue y = t.Apply(x);
      EXPECT_TRUE(BitEqual(t.Inverse(y), ct->Inverse(y)))
          << what << ": Inverse(" << y << ")"
          << (ct == &with_lut ? " [lut]" : " [search]");
    }
  }
}

AttributeSummary SummaryOf(const Dataset& data, size_t attr = 0) {
  return AttributeSummary::FromDataset(data, attr);
}

// ------------------------------------------------- per-family bit identity

/// Every F_mono family × both global directions × anti-monotone piece
/// sampling, probed in-domain, between values, in gaps, and out-of-hull.
TEST(CompiledTransformTest, MonotoneFamiliesAreBitIdentical) {
  const Dataset data = CovtypeLikeData();
  const AttributeSummary summary = SummaryOf(data);
  const struct {
    FamilyOptions::ShapeChoice shape;
    const char* name;
  } kFamilies[] = {
      {FamilyOptions::ShapeChoice::kLinear, "linear"},
      {FamilyOptions::ShapeChoice::kPolynomial, "polynomial"},
      {FamilyOptions::ShapeChoice::kLog, "log"},
      {FamilyOptions::ShapeChoice::kSqrtLog, "sqrt-log"},
  };
  for (const auto& family : kFamilies) {
    for (const bool global_anti : {false, true}) {
      for (const double anti_prob : {0.0, 1.0}) {
        PiecewiseOptions options;
        options.policy = BreakpointPolicy::kChooseBP;  // F_mono only
        options.min_breakpoints = 6;
        options.family.forced_shape = family.shape;
        options.family.anti_monotone_prob = anti_prob;
        options.global_anti_monotone = global_anti;
        Rng rng(97 + (anti_prob > 0.5 ? 1 : 0));
        const PiecewiseTransform t =
            PiecewiseTransform::Create(summary, options, rng);
        ExpectBitIdentical(summary, t,
                           std::string(family.name) +
                               (global_anti ? " anti" : " mono"));
      }
    }
  }
}

/// F_bi permutation pieces (ChooseMaxMP on data with monochromatic runs),
/// including nearest-value snapping for non-domain probes.
TEST(CompiledTransformTest, PermutationPiecesAreBitIdentical) {
  const Dataset data = CovtypeLikeData(800, /*seed=*/23);
  for (size_t attr = 0; attr < data.NumAttributes(); ++attr) {
    const AttributeSummary summary = SummaryOf(data, attr);
    PiecewiseOptions options;  // default kChooseMaxMP + exploit_monochromatic
    Rng rng(41 + attr);
    const PiecewiseTransform t =
        PiecewiseTransform::Create(summary, options, rng);
    ExpectBitIdentical(summary, t, "maxmp attr " + std::to_string(attr));
  }
}

// ----------------------------------------------------------- LUT fast path

TEST(CompiledTransformTest, LutEligibleForSmallIntegerHull) {
  const Dataset data = CovtypeLikeData();  // integer-valued attributes
  const AttributeSummary summary = SummaryOf(data);
  PiecewiseOptions options;
  Rng rng(7);
  const PiecewiseTransform t =
      PiecewiseTransform::Create(summary, options, rng);
  const CompiledTransform compiled = CompiledTransform::Compile(t);
  ASSERT_TRUE(compiled.has_lut());
  const AttrValue lo = t.piece(0).domain_lo;
  const AttrValue hi = t.piece(t.NumPieces() - 1).domain_hi;
  EXPECT_EQ(compiled.LutEntries(),
            static_cast<size_t>(hi - lo) + 1);
  // Every integer in the hull takes the LUT path and must equal the
  // interpreted image exactly.
  for (AttrValue x = lo; x <= hi; x += 1.0) {
    EXPECT_TRUE(BitEqual(t.Apply(x), compiled.Apply(x))) << "x=" << x;
  }
}

TEST(CompiledTransformTest, LutIneligibleForFractionalBoundaries) {
  // A piece with non-integral domain endpoints cannot use the value-indexed
  // LUT (the eligibility rule requires integral piece boundaries).
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 30; ++i) {
    d.AddRow({10.5 + static_cast<AttrValue>(i)}, i % 2);
  }
  const AttributeSummary summary = SummaryOf(d);
  PiecewiseOptions options;
  Rng rng(11);
  const PiecewiseTransform t =
      PiecewiseTransform::Create(summary, options, rng);
  const CompiledTransform compiled = CompiledTransform::Compile(t);
  EXPECT_FALSE(compiled.has_lut());
  ExpectBitIdentical(summary, t, "fractional hull");
}

TEST(CompiledTransformTest, LutIneligibleBeyondEntryCap) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 40; ++i) {
    d.AddRow({static_cast<AttrValue>(i * 5000)}, i % 2);
  }
  const AttributeSummary summary = SummaryOf(d);
  PiecewiseOptions options;
  Rng rng(13);
  const PiecewiseTransform t =
      PiecewiseTransform::Create(summary, options, rng);
  // Hull spans 195001 integers > the 65536-entry cap.
  const CompiledTransform compiled = CompiledTransform::Compile(t);
  EXPECT_FALSE(compiled.has_lut());
  // A raised cap admits it again.
  const CompiledTransform big = CompiledTransform::Compile(
      t, CompiledTransform::CompileOptions{.max_lut_entries = 1 << 20});
  EXPECT_TRUE(big.has_lut());
  ExpectBitIdentical(summary, t, "wide hull");
}

// ------------------------------------------------------- OOD shared logic

TEST(CompiledTransformTest, OodEncodersMatchStreamHelpers) {
  const Dataset data = CovtypeLikeData();
  for (const bool global_anti : {false, true}) {
    const AttributeSummary summary = SummaryOf(data);
    PiecewiseOptions options;
    options.global_anti_monotone = global_anti;
    Rng rng(29);
    const PiecewiseTransform t =
        PiecewiseTransform::Create(summary, options, rng);
    const CompiledTransform compiled = CompiledTransform::Compile(t);
    const stream::DomainHull hull = stream::FittedHull(t);
    EXPECT_EQ(compiled.bounds().lo, hull.lo);
    EXPECT_EQ(compiled.bounds().hi, hull.hi);
    for (AttrValue x : {hull.lo - 100.0, hull.lo - 0.5, hull.lo,
                        0.5 * (hull.lo + hull.hi), hull.hi, hull.hi + 0.5,
                        hull.hi + 100.0}) {
      EXPECT_TRUE(BitEqual(stream::EncodeClamped(t, x),
                           compiled.EncodeClamped(x)))
          << "clamp x=" << x << " anti=" << global_anti;
      EXPECT_TRUE(BitEqual(stream::EncodeExtended(t, x),
                           compiled.EncodeExtended(x)))
          << "extend x=" << x << " anti=" << global_anti;
    }
  }
}

/// Per-policy regression: the streamed release through the compiled
/// kernels is byte-identical to the interpreted streamed release. (The
/// OOD semantics live in one shared implementation either way.)
TEST(CompiledStreamTest, StreamedReleaseMatchesInterpretedPerPolicy) {
  Dataset d({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 60; ++i) {
    d.AddRow({static_cast<AttrValue>(10 + i % 20),
              static_cast<AttrValue>(5 + (i * 7) % 11)},
             i % 2);
  }
  d.AddRow({120, 7}, 0);   // beyond the prefix hull
  d.AddRow({-40, 8}, 1);
  d.AddRow({121, 9}, 0);
  for (const stream::OodPolicy policy :
       {stream::OodPolicy::kClamp, stream::OodPolicy::kExtendPiece,
        stream::OodPolicy::kRefit}) {
    stream::StreamOptions options;
    options.chunk_rows = 10;
    options.fit_rows = 60;
    options.ood_policy = policy;
    options.seed = 5;

    stream::DatasetChunkReader interp_reader(&d);
    stream::DatasetChunkWriter interp_writer;
    options.use_compiled = false;
    auto interp = stream::StreamingCustodian::Release(
        interp_reader, interp_writer, options);
    ASSERT_TRUE(interp.ok()) << interp.status().ToString();

    stream::DatasetChunkReader comp_reader(&d);
    stream::DatasetChunkWriter comp_writer;
    options.use_compiled = true;
    auto comp = stream::StreamingCustodian::Release(comp_reader, comp_writer,
                                                    options);
    ASSERT_TRUE(comp.ok()) << comp.status().ToString();

    EXPECT_EQ(SerializePlan(interp.value()), SerializePlan(comp.value()))
        << stream::ToString(policy);
    EXPECT_EQ(ToCsvString(interp_writer.collected()),
              ToCsvString(comp_writer.collected()))
        << stream::ToString(policy);
  }
  // kReject: both paths report the same first offending row.
  stream::StreamOptions options;
  options.chunk_rows = 10;
  options.fit_rows = 60;
  options.ood_policy = stream::OodPolicy::kReject;
  options.seed = 5;
  stream::DatasetChunkReader r1(&d), r2(&d);
  stream::DatasetChunkWriter w1, w2;
  options.use_compiled = false;
  auto interp = stream::StreamingCustodian::Release(r1, w1, options);
  options.use_compiled = true;
  auto comp = stream::StreamingCustodian::Release(r2, w2, options);
  ASSERT_FALSE(interp.ok());
  ASSERT_FALSE(comp.ok());
  EXPECT_EQ(interp.status().ToString(), comp.status().ToString());
}

// -------------------------------------------------- serialize round trip

TEST(CompiledPlanTest, SerializeLoadCompileRoundTrip) {
  const Dataset data = CovtypeLikeData();
  Rng rng(3);
  const TransformPlan plan =
      TransformPlan::Create(data, PiecewiseOptions{}, rng);
  auto reloaded = ParsePlan(SerializePlan(plan));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const CompiledPlan compiled = CompiledPlan::Compile(reloaded.value());
  ASSERT_EQ(compiled.NumAttributes(), plan.NumAttributes());
  for (size_t a = 0; a < data.NumAttributes(); ++a) {
    for (AttrValue v : data.ActiveDomain(a)) {
      EXPECT_TRUE(BitEqual(plan.Encode(a, v), compiled.transform(a).Apply(v)))
          << "attr " << a << " value " << v;
    }
  }
}

// ---------------------------------------------- batched dataset encoding

TEST(CompiledPlanTest, EncodeDatasetMatchesInterpretedAtEveryThreadCount) {
  const Dataset data = CovtypeLikeData(700, /*seed=*/37);
  Rng rng(5);
  const TransformPlan plan =
      TransformPlan::Create(data, PiecewiseOptions{}, rng);
  const Dataset interpreted = plan.EncodeDataset(data);
  const CompiledPlan compiled = CompiledPlan::Compile(plan);
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    const Dataset released =
        compiled.EncodeDataset(data, ExecPolicy{threads});
    EXPECT_EQ(ToCsvString(released), ToCsvString(interpreted))
        << threads << " threads";
  }
}

TEST(CompiledPlanTest, EncodeColumnMatchesApplyColumn) {
  const Dataset data = CovtypeLikeData(300, /*seed=*/43);
  Rng rng(9);
  const TransformPlan plan =
      TransformPlan::Create(data, PiecewiseOptions{}, rng);
  const CompiledPlan compiled = CompiledPlan::Compile(plan);
  const auto& in = data.Column(1);
  std::vector<AttrValue> serial(in.size()), parallel(in.size());
  compiled.transform(1).ApplyColumn(in.data(), serial.data(), in.size());
  compiled.EncodeColumn(1, in.data(), parallel.data(), in.size(),
                        ExecPolicy{4});
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_TRUE(BitEqual(serial[i], parallel[i])) << "row " << i;
    EXPECT_TRUE(BitEqual(plan.Encode(1, in[i]), serial[i])) << "row " << i;
  }
}

TEST(CompiledTransformTest, InverseColumnDecodesBatches) {
  const Dataset data = CovtypeLikeData(200, /*seed=*/47);
  const AttributeSummary summary = SummaryOf(data);
  PiecewiseOptions options;
  Rng rng(15);
  const PiecewiseTransform t =
      PiecewiseTransform::Create(summary, options, rng);
  const CompiledTransform compiled = CompiledTransform::Compile(t);
  const auto& vals = summary.values();
  std::vector<AttrValue> encoded(vals.size()), decoded(vals.size());
  compiled.ApplyColumn(vals.data(), encoded.data(), vals.size());
  compiled.InverseColumn(encoded.data(), decoded.data(), encoded.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_TRUE(BitEqual(t.Inverse(encoded[i]), decoded[i])) << "i=" << i;
  }
}

// ------------------------------------------ interpreted-path parallelism

/// Satellite regression: the legacy interpreted EncodeDataset now takes an
/// ExecPolicy and must stay bit-identical to its serial self.
TEST(TransformPlanTest, EncodeDatasetParallelMatchesSerial) {
  const Dataset data = CovtypeLikeData(600, /*seed=*/53);
  Rng rng(21);
  const TransformPlan plan =
      TransformPlan::Create(data, PiecewiseOptions{}, rng);
  const Dataset serial = plan.EncodeDataset(data);
  for (const size_t threads : {size_t{2}, size_t{7}}) {
    EXPECT_EQ(ToCsvString(plan.EncodeDataset(data, ExecPolicy{threads})),
              ToCsvString(serial))
        << threads << " threads";
  }
}

TEST(DatasetTest, ColumnAdoptingConstructorValidates) {
  Schema schema({"x", "y"}, {"a", "b"});
  std::vector<std::vector<AttrValue>> columns = {{1.0, 2.0}, {3.0, 4.0}};
  const Dataset d(schema, columns, {0, 1});
  EXPECT_EQ(d.NumRows(), 2u);
  EXPECT_EQ(d.Value(1, 0), 2.0);
  EXPECT_EQ(d.Value(0, 1), 3.0);
  EXPECT_EQ(d.Label(1), 1);
}

}  // namespace
}  // namespace popp
