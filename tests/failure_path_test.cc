#include <gtest/gtest.h>

#include <string>

#include "data/cols.h"
#include "data/csv.h"
#include "util/status.h"

/// \file
/// Failure-path coverage: the abort diagnostics of the CHECK macros and
/// Result::value(), and ParseCsv's rejection of malformed input. The abort
/// paths run as death tests so the diagnostics stay greppable — tools and
/// the check/ harness match on them.

namespace popp {
namespace {

TEST(StatusDeath, CheckFailureAbortsWithExpression) {
  EXPECT_DEATH(POPP_CHECK(1 + 1 == 3), "CHECK failed");
  EXPECT_DEATH(POPP_CHECK(1 + 1 == 3), "1 \\+ 1 == 3");
}

TEST(StatusDeath, CheckMsgAppendsTheStreamedMessage) {
  const int index = 7;
  EXPECT_DEATH(POPP_CHECK_MSG(index < 3, "index " << index << " out of range"),
               "index 7 out of range");
}

TEST(StatusDeath, ResultValueOnErrorAborts) {
  const Result<int> failed = Status::NotFound("no such thing");
  EXPECT_DEATH(failed.value(), "Result::value\\(\\) on error");
  EXPECT_DEATH(failed.value(), "no such thing");
}

TEST(Status, ToStringNamesTheCode) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad knob");
  EXPECT_NE(s.ToString().find("bad knob"), std::string::npos);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CsvFailure, EmptyInputIsInvalidArgument) {
  const auto r = ParseCsv("");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvFailure, HeaderOnlyInputParsesToZeroRows) {
  // A header with no data lines is a valid (empty) dataset; consumers like
  // the tree builder reject the zero-row case themselves.
  const auto r = ParseCsv("x,y,class\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().NumRows(), 0u);
  EXPECT_EQ(r.value().NumAttributes(), 2u);
}

TEST(CsvFailure, TruncatedRowIsRejected) {
  // Second data row lost its class column.
  const auto r = ParseCsv("x,y,class\n1,2,a\n3,4\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvFailure, NonNumericAttributeCellIsRejected) {
  const auto r = ParseCsv("x,y,class\n1,oops,a\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The diagnostic should point at the offending token.
  EXPECT_NE(r.status().message().find("oops"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvFailure, MissingFileIsNotFound) {
  // kNotFound (ENOENT), distinct from kIoError (disk trouble), so callers
  // can tell "wrong path" from "failing hardware".
  const auto r = ReadCsv("/nonexistent/popp/never.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("/nonexistent/popp/never.csv"),
            std::string::npos)
      << r.status().ToString();
}

TEST(CsvFailure, GoodInputStillParses) {
  // Guard the failure tests against over-rejection.
  const auto r = ParseCsv("x,y,class\n1,2,a\n3,4,b\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().NumRows(), 2u);
  EXPECT_EQ(r.value().NumAttributes(), 2u);
}

TEST(ColsFailure, MissingFileIsNotFound) {
  const auto r = ReadCols("/nonexistent/popp/never.cols");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("/nonexistent/popp/never.cols"),
            std::string::npos)
      << r.status().ToString();
}

TEST(ColsFailure, NonColsBytesAreDataLossWithTheMagicNamed) {
  // A CSV handed to the cols parser is kDataLoss (corrupt-or-wrong-format),
  // distinct from kInvalidArgument (well-formed but meaningless input).
  const auto r = ParseCols("x,y,class\n1,2,a\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("expected 'poppcols' magic"),
            std::string::npos)
      << r.status().ToString();
}

TEST(ColsFailure, EmptyBytesAreDataLoss) {
  const auto r = ParseCols("");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(ColsFailure, TrailingBytesAfterTheContainerAreDataLoss) {
  Dataset d({"x"}, {"a"});
  d.AddRow({1.0}, 0);
  const auto r = ParseCols(SerializeCols(d) + "zzz");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("trailing bytes"), std::string::npos)
      << r.status().ToString();
}

TEST(ColsFailure, FutureVersionIsRefusedWithBothVersions) {
  Dataset d({"x"}, {"a"});
  d.AddRow({1.0}, 0);
  std::string bytes = SerializeCols(d);
  bytes[8] = 2;  // u32 version little-endian low byte
  const auto r = ParseCols(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("unsupported version 2"),
            std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace popp
