#include <gtest/gtest.h>

#include <set>

#include "arm/apriori.h"
#include "arm/itemset.h"
#include "arm/mask.h"
#include "arm/relabel.h"

namespace popp {
namespace {

/// Four transactions with an obvious rule {0} => {1}.
TransactionDb TinyDb() {
  TransactionDb db(4);
  db.Add({0, 1});
  db.Add({0, 1, 2});
  db.Add({0, 1, 3});
  db.Add({2, 3});
  return db;
}

// --------------------------------------------------------------- itemset --

TEST(TransactionDbTest, SupportCounting) {
  const TransactionDb db = TinyDb();
  EXPECT_EQ(db.SupportCount({0}), 3u);
  EXPECT_EQ(db.SupportCount({0, 1}), 3u);
  EXPECT_EQ(db.SupportCount({2, 3}), 1u);
  EXPECT_EQ(db.SupportCount({0, 2, 3}), 0u);
  EXPECT_EQ(db.SupportCount({}), 4u);  // empty set is in everything
}

TEST(TransactionDbTest, RejectsBadTransactions) {
  TransactionDb db(3);
  EXPECT_DEATH(db.Add({2, 1}), "increasing");
  EXPECT_DEATH(db.Add({0, 5}), "out of range");
}

TEST(BasketGeneratorTest, PlantedPatternsAreFrequent) {
  Rng rng(3);
  const BasketSpec spec = DefaultBasketSpec(3000);
  const TransactionDb db = GenerateBaskets(spec, rng);
  EXPECT_EQ(db.NumTransactions(), 3000u);
  for (const auto& pattern : spec.patterns) {
    const double support =
        static_cast<double>(db.SupportCount(pattern.items)) / 3000.0;
    // Planted at `frequency`, plus noise co-occurrence.
    EXPECT_GT(support, pattern.frequency * 0.8) <<
        ItemsetToString(pattern.items);
  }
}

TEST(BasketGeneratorTest, ItemsetToStringFormat) {
  EXPECT_EQ(ItemsetToString({3, 7, 12}), "{3,7,12}");
  EXPECT_EQ(ItemsetToString({}), "{}");
}

// --------------------------------------------------------------- apriori --

TEST(AprioriTest, FindsFrequentItemsetsInTinyDb) {
  AprioriOptions options;
  options.min_support = 0.5;  // count >= 2
  const auto frequent = MineFrequentItemsets(TinyDb(), options);
  std::set<Transaction> sets;
  for (const auto& f : frequent) sets.insert(f.items);
  EXPECT_TRUE(sets.count({0}));
  EXPECT_TRUE(sets.count({1}));
  EXPECT_TRUE(sets.count({2}));
  EXPECT_TRUE(sets.count({3}));
  EXPECT_TRUE(sets.count({0, 1}));
  EXPECT_FALSE(sets.count({2, 3}));  // support 1 < 2
}

TEST(AprioriTest, SupportsAreExact) {
  AprioriOptions options;
  options.min_support = 0.25;
  const auto frequent = MineFrequentItemsets(TinyDb(), options);
  for (const auto& f : frequent) {
    EXPECT_EQ(f.support, TinyDb().SupportCount(f.items))
        << ItemsetToString(f.items);
  }
}

TEST(AprioriTest, ApriorPropertyHolds) {
  // Every subset of a reported frequent itemset is also reported.
  Rng rng(5);
  const TransactionDb db = GenerateBaskets(DefaultBasketSpec(1000), rng);
  AprioriOptions options;
  options.min_support = 0.08;
  const auto frequent = MineFrequentItemsets(db, options);
  std::set<Transaction> sets;
  for (const auto& f : frequent) sets.insert(f.items);
  for (const auto& f : frequent) {
    if (f.items.size() < 2) continue;
    for (size_t skip = 0; skip < f.items.size(); ++skip) {
      Transaction subset;
      for (size_t i = 0; i < f.items.size(); ++i) {
        if (i != skip) subset.push_back(f.items[i]);
      }
      EXPECT_TRUE(sets.count(subset))
          << ItemsetToString(subset) << " missing though "
          << ItemsetToString(f.items) << " is frequent";
    }
  }
}

TEST(AprioriTest, RulesMeetThresholdsAndArithmetic) {
  AprioriOptions options;
  options.min_support = 0.5;
  options.min_confidence = 0.9;
  const auto rules = MineRules(TinyDb(), options);
  // {0} => {1}: support 3/4, confidence 3/3 = 1. And {1} => {0} likewise.
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].antecedent, (Transaction{0}));
  EXPECT_EQ(rules[0].consequent, (Transaction{1}));
  EXPECT_DOUBLE_EQ(rules[0].support, 0.75);
  EXPECT_DOUBLE_EQ(rules[0].confidence, 1.0);
}

TEST(AprioriTest, FindsPlantedRules) {
  Rng rng(7);
  const TransactionDb db = GenerateBaskets(DefaultBasketSpec(3000), rng);
  AprioriOptions options;
  options.min_support = 0.08;
  options.min_confidence = 0.6;
  const auto rules = MineRules(db, options);
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.antecedent == Transaction{2, 7} &&
        rule.consequent == Transaction{19}) {
      found = true;
      EXPECT_GT(rule.confidence, 0.6);
    }
  }
  EXPECT_TRUE(found) << "expected {2,7} => {19} from the planted pattern";
}

TEST(AprioriTest, RuleToStringFormat) {
  AssociationRule rule;
  rule.antecedent = {1};
  rule.consequent = {2, 3};
  rule.support = 0.25;
  rule.confidence = 0.8;
  EXPECT_EQ(RuleToString(rule), "{1} => {2,3} (sup 0.250, conf 0.800)");
}

// --------------------------------------------------------------- relabel --

TEST(RelabelTest, BijectionRoundTrips) {
  Rng rng(9);
  const ItemRelabeling relabeling = ItemRelabeling::Sample(40, rng);
  std::set<ItemId> images;
  for (ItemId item = 0; item < 40; ++item) {
    const ItemId encoded = relabeling.Encode(item);
    EXPECT_TRUE(images.insert(encoded).second);
    EXPECT_EQ(relabeling.Decode(encoded), item);
  }
}

TEST(RelabelTest, NoOutcomeChangeForAssociationRules) {
  // The ARM analogue of the paper's pillar 1: mine the relabeled release,
  // decode the rules, get exactly the rules of the original database.
  Rng rng(11);
  const TransactionDb db = GenerateBaskets(DefaultBasketSpec(2000), rng);
  const ItemRelabeling relabeling =
      ItemRelabeling::Sample(db.num_items(), rng);
  const TransactionDb released = relabeling.EncodeDb(db);

  AprioriOptions options;
  options.min_support = 0.08;
  options.min_confidence = 0.6;
  const auto direct = MineRules(db, options);
  auto decoded = MineRules(released, options);
  for (auto& rule : decoded) rule = relabeling.DecodeRule(rule);
  std::sort(decoded.begin(), decoded.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  ASSERT_EQ(decoded.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(decoded[i], direct[i]) << RuleToString(direct[i]);
  }
}

TEST(RelabelTest, ReleasedBasketsHideIdentities) {
  Rng rng(13);
  const TransactionDb db = GenerateBaskets(DefaultBasketSpec(500), rng);
  const ItemRelabeling relabeling =
      ItemRelabeling::Sample(db.num_items(), rng);
  const TransactionDb released = relabeling.EncodeDb(db);
  // Same transaction sizes, different contents (with 60 items the chance a
  // random permutation fixes a whole basket is negligible).
  size_t changed = 0;
  for (size_t t = 0; t < db.NumTransactions(); ++t) {
    ASSERT_EQ(db.transaction(t).size(), released.transaction(t).size());
    if (db.transaction(t) != released.transaction(t)) ++changed;
  }
  EXPECT_GT(changed, db.NumTransactions() * 9 / 10);
}

// ------------------------------------------------------------------ mask --

TEST(MaskTest, DistortionKeepsMostBits) {
  Rng rng(17);
  const TransactionDb db = GenerateBaskets(DefaultBasketSpec(500), rng);
  MaskOptions options;
  options.keep_prob = 0.9;
  const TransactionDb distorted = MaskDistort(db, options, rng);
  EXPECT_NEAR(MaskBitRetention(db, distorted), 0.9, 0.01);
}

TEST(MaskTest, SupportEstimatorIsUnbiasedish) {
  Rng rng(19);
  const TransactionDb db = GenerateBaskets(DefaultBasketSpec(4000), rng);
  MaskOptions options;
  options.keep_prob = 0.9;
  const TransactionDb distorted = MaskDistort(db, options, rng);
  // True support of the strongest planted pair.
  const Transaction pair{4, 11};
  const double truth = static_cast<double>(db.SupportCount(pair)) / 4000.0;
  const double estimate =
      MaskEstimateSupport(distorted, pair, options.keep_prob);
  EXPECT_NEAR(estimate, truth, 0.05);
}

TEST(MaskTest, PerfectKeepProbIsExact) {
  Rng rng(23);
  const TransactionDb db = GenerateBaskets(DefaultBasketSpec(500), rng);
  const TransactionDb distorted =
      MaskDistort(db, MaskOptions{1.0}, rng);
  EXPECT_EQ(distorted, db);
  const double estimate = MaskEstimateSupport(distorted, {4, 11}, 1.0);
  EXPECT_DOUBLE_EQ(estimate,
                   static_cast<double>(db.SupportCount({4, 11})) / 500.0);
}

TEST(MaskTest, RejectsFiftyFifty) {
  Rng rng(29);
  const TransactionDb db = TinyDb();
  EXPECT_DEATH(MaskDistort(db, MaskOptions{0.5}, rng), "keep_prob");
}

TEST(MaskTest, OutcomeChangesUnderDistortion) {
  // The collector recovers an *approximation* of the rule set: recall is
  // decent but not perfect — the contrast to exact relabeling.
  Rng rng(31);
  const TransactionDb db = GenerateBaskets(DefaultBasketSpec(3000), rng);
  AprioriOptions options;
  options.min_support = 0.08;
  options.min_confidence = 0.6;
  options.max_itemset_size = 3;
  const auto reference = MineRules(db, options);
  ASSERT_FALSE(reference.empty());

  MaskOptions mask;
  mask.keep_prob = 0.85;
  const TransactionDb distorted = MaskDistort(db, mask, rng);
  const auto recovered =
      MineRulesFromMasked(distorted, options, mask.keep_prob);
  const RuleRecovery recovery = CompareRuleSets(reference, recovered);
  EXPECT_GT(recovery.recall, 0.4);  // estimation works...
  // ...but the outcome is not exactly preserved.
  bool identical = recovery.recall == 1.0 && recovery.precision == 1.0;
  if (identical) {
    // Even if the rule identities coincide, the numbers cannot: estimated
    // supports differ from exact ones.
    bool same_numbers = recovered.size() == reference.size();
    for (size_t i = 0; same_numbers && i < reference.size(); ++i) {
      same_numbers = recovered[i].support == reference[i].support;
    }
    EXPECT_FALSE(same_numbers);
  }
}

TEST(MaskTest, CompareRuleSetsMetrics) {
  AssociationRule a;
  a.antecedent = {1};
  a.consequent = {2};
  AssociationRule b;
  b.antecedent = {3};
  b.consequent = {4};
  AssociationRule c;
  c.antecedent = {5};
  c.consequent = {6};
  const auto recovery = CompareRuleSets({a, b}, {b, c});
  EXPECT_DOUBLE_EQ(recovery.precision, 0.5);
  EXPECT_DOUBLE_EQ(recovery.recall, 0.5);
  EXPECT_EQ(recovery.reference_rules, 2u);
  EXPECT_EQ(recovery.recovered_rules, 2u);
}

}  // namespace
}  // namespace popp
