#include <gtest/gtest.h>

#include <cmath>

#include "perturb/comparison.h"
#include "perturb/perturbation.h"
#include "perturb/reconstruction.h"
#include "synth/covtype_like.h"
#include "data/summary.h"
#include "synth/presets.h"

namespace popp {
namespace {

TEST(PerturbTest, ShapeAndLabelsPreserved) {
  Rng data_rng(3);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(5);
  const Dataset released = PerturbDataset(d, PerturbOptions{}, rng);
  ASSERT_EQ(released.NumRows(), d.NumRows());
  ASSERT_EQ(released.NumAttributes(), d.NumAttributes());
  for (size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(released.Label(r), d.Label(r));
  }
}

TEST(PerturbTest, ZeroScaleChangesNothing) {
  Rng data_rng(7);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(9);
  PerturbOptions options;
  options.scale_fraction = 0.0;
  const Dataset released = PerturbDataset(d, options, rng);
  EXPECT_EQ(released, d);
  EXPECT_DOUBLE_EQ(FractionUnchanged(d, released, 0), 1.0);
}

TEST(PerturbTest, ClampKeepsRange) {
  Rng data_rng(11);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(13);
  PerturbOptions options;
  options.scale_fraction = 2.0;  // huge noise
  const Dataset released = PerturbDataset(d, options, rng);
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    const auto original = AttributeSummary::FromDataset(d, a);
    const auto perturbed = AttributeSummary::FromDataset(released, a);
    EXPECT_GE(perturbed.MinValue(), original.MinValue());
    EXPECT_LE(perturbed.MaxValue(), original.MaxValue());
  }
}

TEST(PerturbTest, RoundingYieldsIntegers) {
  Rng data_rng(17);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(19);
  const Dataset released = PerturbDataset(d, PerturbOptions{}, rng);
  for (size_t r = 0; r < released.NumRows(); ++r) {
    const double v = released.Value(r, 0);
    EXPECT_DOUBLE_EQ(v, std::floor(v));
  }
}

TEST(PerturbTest, DiscreteValuesSurviveUnchanged) {
  // The weakness the paper calls out: with additive noise on a discrete
  // domain, a nontrivial fraction of released values equals the original.
  Rng data_rng(23);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(2000), data_rng);
  Rng rng(29);
  PerturbOptions options;
  options.scale_fraction = 0.01;  // modest noise, as in low-privacy modes
  const Dataset released = PerturbDataset(d, options, rng);
  const double unchanged = FractionUnchanged(d, released, 0);
  EXPECT_GT(unchanged, 0.05);
}

TEST(PerturbTest, GaussianNoiseAlsoSupported) {
  Rng data_rng(31);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(37);
  PerturbOptions options;
  options.noise = PerturbOptions::Noise::kGaussian;
  const Dataset released = PerturbDataset(d, options, rng);
  EXPECT_LT(FractionUnchanged(d, released, 0), 0.5);
}

TEST(PerturbTest, NoiseNames) {
  EXPECT_EQ(ToString(PerturbOptions::Noise::kUniform), "uniform");
  EXPECT_EQ(ToString(PerturbOptions::Noise::kGaussian), "gaussian");
}

// -------------------------------------------------------- reconstruction --

TEST(ReconstructionTest, EmpiricalHistogramNormalized) {
  const auto dist = EmpiricalDistribution({0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
                                          0, 10, 5);
  double sum = 0;
  for (double p : dist.density) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(dist.NumBins(), 5u);
  EXPECT_DOUBLE_EQ(dist.BinWidth(), 2.0);
}

TEST(ReconstructionTest, EmpiricalClampsOutliers) {
  const auto dist = EmpiricalDistribution({-100, 100}, 0, 10, 2);
  EXPECT_DOUBLE_EQ(dist.density[0], 0.5);
  EXPECT_DOUBLE_EQ(dist.density[1], 0.5);
}

TEST(ReconstructionTest, RecoversBimodalShapeFromUniformNoise) {
  // Original: two spikes at 20 and 80. Perturb with uniform noise and
  // check that AS00 reconstruction is much closer to the truth than the
  // released distribution is.
  Rng rng(41);
  std::vector<AttrValue> original;
  for (int i = 0; i < 4000; ++i) {
    // Two bumps (not delta spikes: a uniform deconvolution cannot localize
    // sub-bin mass, so exact spikes are not identifiable at this grid).
    const double center = rng.Bernoulli(0.5) ? 20.0 : 80.0;
    original.push_back(center + rng.Uniform(-7.5, 7.5));
  }
  const double scale = 25.0;
  std::vector<AttrValue> released;
  for (double v : original) {
    released.push_back(v + rng.Uniform(-scale, scale));
  }
  const size_t bins = 20;
  const auto truth = EmpiricalDistribution(original, 0, 100, bins);
  const auto observed = EmpiricalDistribution(released, 0, 100, bins);
  // AS00 stop after a handful of sweeps: EM deconvolution over-sharpens
  // if run to convergence. The default (8) is in the sweet spot.
  const auto reconstructed = ReconstructDistribution(
      released, PerturbOptions::Noise::kUniform, scale, 0, 100, bins, 10);
  const double tv_observed = TotalVariation(truth, observed);
  const double tv_reconstructed = TotalVariation(truth, reconstructed);
  EXPECT_LT(tv_reconstructed, tv_observed * 0.7)
      << "observed TV " << tv_observed << ", reconstructed TV "
      << tv_reconstructed;
}

TEST(ReconstructionTest, GaussianNoiseKernel) {
  Rng rng(43);
  std::vector<AttrValue> original;
  for (int i = 0; i < 3000; ++i) {
    original.push_back(rng.Uniform(40.0, 60.0));
  }
  std::vector<AttrValue> released;
  for (double v : original) {
    released.push_back(v + rng.Gaussian(0, 15.0));
  }
  const auto truth = EmpiricalDistribution(original, 0, 100, 20);
  const auto observed = EmpiricalDistribution(released, 0, 100, 20);
  const auto reconstructed = ReconstructDistribution(
      released, PerturbOptions::Noise::kGaussian, 15.0, 0, 100, 20, 12);
  EXPECT_LT(TotalVariation(truth, reconstructed),
            TotalVariation(truth, observed));
}

TEST(ReconstructionTest, TotalVariationBasics) {
  BinnedDistribution p{0, 1, {0.5, 0.5}};
  BinnedDistribution q{0, 1, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(TotalVariation(p, p), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariation(p, q), 0.5);
}

// ------------------------------------------------------------ comparison --

TEST(ComparisonTest, PerturbationChangesOutcome) {
  Rng data_rng(47);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1000), data_rng);
  Rng rng(53);
  PerturbOptions perturb;
  perturb.scale_fraction = 0.25;
  const PerturbationImpact impact =
      MeasurePerturbationImpact(d, perturb, BuildOptions{}, 0.02, rng);
  // The collector's tree is a worse model of the true data than the
  // direct tree (pillar 1 fails for perturbation)...
  EXPECT_LT(impact.perturbed_tree_accuracy, impact.original_accuracy);
  // ...and the trees differ.
  EXPECT_FALSE(impact.same_tree);
}

TEST(ComparisonTest, ImpactVectorsSized) {
  Rng data_rng(59);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(61);
  const PerturbationImpact impact =
      MeasurePerturbationImpact(d, PerturbOptions{}, BuildOptions{}, 0.02,
                                rng);
  EXPECT_EQ(impact.unchanged_fraction.size(), d.NumAttributes());
  EXPECT_EQ(impact.within_rho_fraction.size(), d.NumAttributes());
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    EXPECT_GE(impact.within_rho_fraction[a], impact.unchanged_fraction[a]);
  }
}

TEST(ComparisonTest, MildNoiseRetainsMoreValues) {
  Rng data_rng(67);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(800), data_rng);
  PerturbOptions mild;
  mild.scale_fraction = 0.01;
  PerturbOptions strong;
  strong.scale_fraction = 0.5;
  Rng rng1(71), rng2(71);
  const auto mild_impact =
      MeasurePerturbationImpact(d, mild, BuildOptions{}, 0.02, rng1);
  const auto strong_impact =
      MeasurePerturbationImpact(d, strong, BuildOptions{}, 0.02, rng2);
  EXPECT_GT(mild_impact.unchanged_fraction[0],
            strong_impact.unchanged_fraction[0]);
}

}  // namespace
}  // namespace popp
