#include <gtest/gtest.h>

#include <cmath>

#include "svm/linear_svm.h"
#include "synth/presets.h"
#include "transform/plan.h"

namespace popp {
namespace {

Dataset LinearlySeparable(size_t n, Rng& rng) {
  // class = (x + y > 100) with a comfortable margin.
  Dataset d({"x", "y"}, {"neg", "pos"});
  d.Reserve(n);
  size_t made = 0;
  while (made < n) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    const double s = x + y - 100.0;
    if (std::fabs(s) < 8.0) continue;  // margin
    d.AddRow({x, y}, s > 0 ? 1 : 0);
    ++made;
  }
  return d;
}

TEST(SvmTest, SeparatesLinearData) {
  Rng rng(3);
  const Dataset d = LinearlySeparable(800, rng);
  const LinearSvm model = LinearSvm::Train(d, 1);
  EXPECT_GT(model.Accuracy(d), 0.98);
}

TEST(SvmTest, WeightsPointAcrossTheMargin) {
  Rng rng(5);
  const Dataset d = LinearlySeparable(800, rng);
  const LinearSvm model = LinearSvm::Train(d, 1);
  // The separating direction is (1, 1) in standardized space: both
  // weights positive and of comparable size.
  ASSERT_EQ(model.weights().size(), 2u);
  EXPECT_GT(model.weights()[0], 0.0);
  EXPECT_GT(model.weights()[1], 0.0);
  EXPECT_NEAR(model.weights()[0] / model.weights()[1], 1.0, 0.3);
}

TEST(SvmTest, DeterministicGivenSeed) {
  Rng rng(7);
  const Dataset d = LinearlySeparable(400, rng);
  const LinearSvm a = LinearSvm::Train(d, 1);
  const LinearSvm b = LinearSvm::Train(d, 1);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.bias(), b.bias());
}

TEST(SvmTest, SeparatesCorrelatedData) {
  Rng rng(9);
  const Dataset d = MakeCorrelatedDataset(1500, 6, 2, 10.0, rng);
  const LinearSvm model = LinearSvm::Train(d, 1);
  EXPECT_GT(model.Accuracy(d), 0.9);
}

TEST(SvmTest, RejectsSingleClassData) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 0);
  EXPECT_DEATH(LinearSvm::Train(d, 1), "both polarities");
}

// --------------------- Section 7: why trees are special -----------------

TEST(SvmSection7Test, AffineTransformsPreserveStandardizedSvm) {
  // Per-attribute affine rescaling is absorbed by standardization: the
  // model trained on the rescaled data classifies (rescaled) tuples
  // exactly like the original model classifies originals.
  Rng rng(11);
  const Dataset d = MakeCorrelatedDataset(1200, 5, 2, 10.0, rng);
  Dataset affine = d;
  const double scales[5] = {0.3, 2.0, 11.0, 0.05, 7.5};
  const double shifts[5] = {100, -40, 3, 900, 0};
  for (size_t a = 0; a < 5; ++a) {
    for (auto& v : affine.MutableColumn(a)) v = scales[a] * v + shifts[a];
  }
  const LinearSvm original = LinearSvm::Train(d, 1);
  const LinearSvm transformed = LinearSvm::Train(affine, 1);
  EXPECT_GT(CrossRepresentationAgreement(original, d, transformed, affine),
            0.995);
}

TEST(SvmSection7Test, PiecewiseTransformsChangeTheSvmOutcome) {
  // The paper's future-work caveat in action: the tree-preserving
  // piecewise transform does NOT preserve the SVM decision function,
  // because the hyperplane mixes attributes and only per-attribute ranks
  // survive the transform.
  Rng rng(13);
  const Dataset d = MakeCorrelatedDataset(1200, 5, 2, 10.0, rng);
  PiecewiseOptions options;
  options.min_breakpoints = 15;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset released = plan.EncodeDataset(d);

  const LinearSvm original = LinearSvm::Train(d, 1);
  const LinearSvm mined = LinearSvm::Train(released, 1);
  const double agreement =
      CrossRepresentationAgreement(original, d, mined, released);
  // Far from outcome preservation (and nothing decodes the hyperplane).
  EXPECT_LT(agreement, 0.97);
  // The mined model also fits its own (transformed) data worse than the
  // original fits the original.
  EXPECT_LT(mined.Accuracy(released), original.Accuracy(d));
}

TEST(SvmSection7Test, TreeOutcomeSurvivesWhereSvmDoesNot) {
  // Same data, same transform: the tree round-trips exactly while the
  // SVM's agreement degrades — the crux of Section 7.
  Rng rng(17);
  Dataset d = MakeCorrelatedDataset(900, 4, 2, 12.0, rng);
  // Decision trees on continuous doubles work fine; reuse the plan.
  PiecewiseOptions options;
  options.min_breakpoints = 12;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset released = plan.EncodeDataset(d);

  const LinearSvm svm_a = LinearSvm::Train(d, 1);
  const LinearSvm svm_b = LinearSvm::Train(released, 1);
  const double svm_agreement =
      CrossRepresentationAgreement(svm_a, d, svm_b, released);
  EXPECT_LT(svm_agreement, 1.0);
}

TEST(SvmSection7Test, WithoutStandardizationEvenScalingBreaksSvm) {
  Rng rng(19);
  const Dataset d = MakeCorrelatedDataset(1000, 5, 2, 10.0, rng);
  Dataset scaled = d;
  for (auto& v : scaled.MutableColumn(2)) v *= 500.0;  // one huge attribute
  SvmOptions options;
  options.standardize = false;
  const LinearSvm original = LinearSvm::Train(d, 1, options);
  const LinearSvm rescaled = LinearSvm::Train(scaled, 1, options);
  // The blown-up attribute dominates the unstandardized model.
  EXPECT_LT(CrossRepresentationAgreement(original, d, rescaled, scaled),
            0.995);
}

}  // namespace
}  // namespace popp
