#include <gtest/gtest.h>

#include <cmath>

#include "anon/mondrian.h"
#include "attack/quantile_attack.h"
#include "attack/sorting_attack.h"
#include "data/summary.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/piecewise.h"
#include "tree/builder.h"
#include "tree/compare.h"

namespace popp {
namespace {

// ---------------------------------------------------------------- mondrian --

TEST(MondrianTest, ProducesKAnonymousData) {
  Rng rng(3);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1000), rng);
  for (size_t k : {2u, 5u, 25u}) {
    MondrianOptions options;
    options.k = k;
    const AnonymizationResult result = MondrianAnonymize(d, options);
    EXPECT_TRUE(IsKAnonymous(result.data, k)) << "k=" << k;
    EXPECT_GE(result.min_group, k);
    EXPECT_GT(result.num_groups, 1u);
  }
}

TEST(MondrianTest, LabelsUntouched) {
  Rng rng(5);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  const AnonymizationResult result = MondrianAnonymize(d, MondrianOptions{});
  for (size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(result.data.Label(r), d.Label(r));
  }
}

TEST(MondrianTest, LargerKCoarsensGroups) {
  Rng rng(7);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1000), rng);
  MondrianOptions k5;
  k5.k = 5;
  MondrianOptions k50;
  k50.k = 50;
  const auto fine = MondrianAnonymize(d, k5);
  const auto coarse = MondrianAnonymize(d, k50);
  EXPECT_GT(fine.num_groups, coarse.num_groups);
}

TEST(MondrianTest, GroupMeansPreserveColumnSums) {
  // Replacing values by group means keeps each column's total.
  Rng rng(9);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  const auto result = MondrianAnonymize(d, MondrianOptions{});
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    double before = 0, after = 0;
    for (size_t r = 0; r < d.NumRows(); ++r) {
      before += d.Value(r, a);
      after += result.data.Value(r, a);
    }
    EXPECT_NEAR(after, before, 1e-6 * std::max(1.0, std::fabs(before)));
  }
}

TEST(MondrianTest, Deterministic) {
  Rng rng(11);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(500), rng);
  EXPECT_EQ(MondrianAnonymize(d, MondrianOptions{}).data,
            MondrianAnonymize(d, MondrianOptions{}).data);
}

TEST(MondrianTest, RejectsKAboveRowCount) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 1);
  MondrianOptions options;
  options.k = 5;
  EXPECT_DEATH(MondrianAnonymize(d, options), "fewer rows");
}

TEST(MondrianTest, MiningAnonymizedDataChangesOutcome) {
  // The paper's related-work claim ([9]): mining k-anonymized data
  // directly degrades the outcome — unlike the piecewise transform.
  Rng rng(13);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1500), rng);
  const DecisionTreeBuilder builder;
  const DecisionTree direct = builder.Build(d);
  MondrianOptions options;
  options.k = 25;
  const auto anonymized = MondrianAnonymize(d, options);
  const DecisionTree blurred = builder.Build(anonymized.data);
  // Accuracy *on the true data* drops.
  EXPECT_LT(blurred.Accuracy(d), direct.Accuracy(d) - 0.02);
  EXPECT_FALSE(StructurallyIdentical(direct, blurred));
}

// --------------------------------------------------------- quantile attack --

AttributeSummary DenseMixedSummary(size_t n) {
  std::vector<ValueLabel> tuples;
  for (size_t v = 0; v < n; ++v) {
    tuples.push_back({static_cast<double>(v), 0});
    tuples.push_back({static_cast<double>(v), 1});
  }
  return AttributeSummary::FromTuples(std::move(tuples), 2);
}

TEST(QuantileAttackTest, PerfectReferenceCracksMonotoneDenseRelease) {
  // A rival whose data *is* D, against an order-preserving release of a
  // dense domain: quantile matching recovers everything.
  const auto s = DenseMixedSummary(200);
  Rng rng(17);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseBP;
  options.min_breakpoints = 10;
  options.family.anti_monotone_prob = 0.0;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  // Sampling noise in the reference quantiles costs a little accuracy
  // even with a perfect population: expect a large majority cracked.
  const double risk =
      QuantileAttackRisk(s, f, /*reference_size=*/20000,
                         /*reference_noise=*/0.0, /*rho=*/1.0, rng);
  EXPECT_GT(risk, 0.7);
}

TEST(QuantileAttackTest, MonochromaticPiecesBlockIt) {
  // An all-monochromatic domain gets permutations: released ranks no
  // longer correspond to original ranks.
  std::vector<ValueLabel> tuples;
  for (size_t v = 0; v < 200; ++v) {
    tuples.push_back({static_cast<double>(v), v < 100 ? 0 : 1});
  }
  const auto s = AttributeSummary::FromTuples(std::move(tuples), 2);
  Rng rng(19);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseMaxMP;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  const double risk = QuantileAttackRisk(s, f, 5000, 0.0, 1.0, rng);
  EXPECT_LT(risk, 0.25);
}

TEST(QuantileAttackTest, NoisyReferenceWeakensTheAttack) {
  const auto s = DenseMixedSummary(300);
  Rng rng(23);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseBP;
  options.min_breakpoints = 10;
  options.family.anti_monotone_prob = 0.0;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  Rng rng_a(29), rng_b(29);
  const double sharp = QuantileAttackRisk(s, f, 2000, 0.0, 2.0, rng_a);
  const double noisy = QuantileAttackRisk(s, f, 2000, 40.0, 2.0, rng_b);
  EXPECT_GT(sharp, noisy);
}

TEST(QuantileAttackTest, GuessesAreReferenceQuantiles) {
  QuantileMatchingCrack crack({10, 20, 30}, {100, 200, 300});
  EXPECT_DOUBLE_EQ(crack.Guess(10), 100);
  EXPECT_DOUBLE_EQ(crack.Guess(20), 200);
  EXPECT_DOUBLE_EQ(crack.Guess(30), 300);
}

TEST(QuantileAttackTest, SingleReferencePoint) {
  QuantileMatchingCrack crack({1, 2, 3}, {42});
  EXPECT_DOUBLE_EQ(crack.Guess(2), 42);
}

TEST(QuantileAttackTest, StrongerThanMinMaxSortingOnClusteredSupport) {
  // Clustered supports defeat the min/max sorting attack (Figure 11), but
  // a rival's sample reveals the support's shape: quantile matching
  // cracks substantially more on the same attribute.
  Rng data_rng(31);
  const Dataset data = GenerateCovtypeLike(SmallCovtypeSpec(2000), data_rng);
  const auto s = AttributeSummary::FromDataset(data, 0);  // clustered support
  Rng rng(37);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseBP;
  options.min_breakpoints = 20;
  options.family.anti_monotone_prob = 0.0;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  const double rho = 0.02 * (s.MaxValue() - s.MinValue());
  const double sorting = SortingAttackRisk(s, f, rho).risk;
  const double quantile = QuantileAttackRisk(s, f, 20000, 0.0, rho, rng);
  EXPECT_GT(quantile, sorting);
  EXPECT_GT(quantile, 0.3);
}

}  // namespace
}  // namespace popp
