#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "data/cols.h"
#include "data/csv.h"
#include "fault/failpoint.h"
#include "fault/file.h"
#include "shard/meta_manifest.h"
#include "shard/pipeline.h"
#include "shard/planner.h"
#include "shard/summary_io.h"
#include "stream/chunk_io.h"
#include "stream/cols_io.h"
#include "stream/incremental_summary.h"
#include "stream/manifest.h"
#include "stream/streaming_custodian.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/plan.h"
#include "transform/serialize.h"
#include "util/crc64.h"
#include "util/rng.h"
#include "util/status.h"

/// \file
/// The sharded two-phase release (src/shard): shard planning and range
/// readers, the summary codec, merge-tree algebra, the byte-identity
/// contract against the single-process streamed release across shard
/// counts x thread counts x formats, crash/resume behavior under injected
/// faults, and the manifest-of-manifests verification. Process-mode (fork)
/// tests live in the ShardProcess* suites so sanitizer stages that cannot
/// host fork() can filter them out.

namespace popp {
namespace {

using shard::kOpenEnd;
using shard::MetaManifest;
using shard::RangeChunkReader;
using shard::ShardedCustodian;
using shard::ShardEntry;
using shard::ShardOptions;
using shard::ShardRange;
using shard::ShardStats;
using shard::ShardSummary;
using shard::SummaryCodec;
using stream::IncrementalSummary;

/// Small unstructured datasets (the covtype-like generator needs hundreds
/// of rows to satisfy its mixed-value constraints; shard layouts care
/// about row counts, not class structure).
Dataset CovtypeLikeData(size_t rows = 240, uint64_t seed = 31) {
  Rng rng(seed);
  return MakeRandomDataset(rows, 4, 3, 50, rng);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/popp_shard_" + name;
}

std::string Slurp(const std::string& path) {
  auto bytes = fault::ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? bytes.value() : std::string();
}

/// Writes the dataset to disk in the requested interchange format.
std::string WriteInput(const Dataset& data, const std::string& name,
                       bool cols) {
  const std::string path = TempPath(name);
  const std::string bytes = cols ? SerializeCols(data) : ToCsvString(data);
  EXPECT_TRUE(fault::WriteFileAtomic(path, bytes).ok());
  return path;
}

/// The golden: a single-process streamed release of `input_path` into a
/// file, returning its bytes (and the plan bytes through `plan_out`).
std::string StreamReleaseBytes(const std::string& input_path,
                               size_t chunk_rows, uint64_t seed,
                               std::string* plan_out = nullptr) {
  stream::StreamOptions options;
  options.chunk_rows = chunk_rows;
  options.seed = seed;
  auto reader = stream::MakeChunkReader(input_path,
                                        stream::DatasetFormat::kAuto, {});
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  const std::string out = TempPath("stream_golden.csv");
  stream::ResumableCsvChunkWriter writer(out, {}, /*resume=*/false);
  auto plan = stream::StreamingCustodian::Release(*reader.value(), writer,
                                                  options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  if (plan.ok() && plan_out != nullptr) {
    *plan_out = SerializePlan(plan.value());
  }
  return Slurp(out);
}

std::string ConcatShards(const std::string& out_path, size_t num_shards) {
  std::string all;
  for (size_t k = 0; k < num_shards; ++k) {
    all += Slurp(shard::ShardFilePath(out_path, k));
  }
  return all;
}

ShardOptions BaseOptions(size_t shards, size_t threads, size_t chunk_rows,
                         uint64_t seed) {
  ShardOptions options;
  options.num_shards = shards;
  options.chunk_rows = chunk_rows;
  options.seed = seed;
  options.exec = ExecPolicy{threads};
  return options;
}

/// Fits a plan from an incremental summary with the batch RNG discipline
/// and returns its serialization — the merge property tests' invariant.
std::string FitBytes(const IncrementalSummary& summary, uint64_t seed) {
  Rng rng(seed);
  const TransformPlan plan = TransformPlan::CreateFromSummaries(
      summary.SummarizeAll(), PiecewiseOptions{}, rng, ExecPolicy::Serial());
  return SerializePlan(plan);
}

// ------------------------------------------------------------ planning --

TEST(SplitRowsTest, EvenSplitIsContiguous) {
  const auto ranges = shard::SplitRows(12, 4);
  ASSERT_EQ(ranges.size(), 4u);
  size_t cursor = 0;
  for (const ShardRange& r : ranges) {
    EXPECT_EQ(r.begin, cursor);
    EXPECT_EQ(r.rows(), 3u);
    cursor = r.end;
  }
  EXPECT_EQ(cursor, 12u);
}

TEST(SplitRowsTest, RemainderGoesToEarliestShards) {
  const auto ranges = shard::SplitRows(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].rows(), 3u);
  EXPECT_EQ(ranges[1].rows(), 3u);
  EXPECT_EQ(ranges[2].rows(), 2u);
  EXPECT_EQ(ranges[3].rows(), 2u);
  EXPECT_EQ(ranges[3].end, 10u);
}

TEST(SplitRowsTest, FewerRowsThanShardsLeavesTrailingShardsEmpty) {
  const auto ranges = shard::SplitRows(2, 5);
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges[0].rows(), 1u);
  EXPECT_EQ(ranges[1].rows(), 1u);
  for (size_t k = 2; k < 5; ++k) {
    EXPECT_TRUE(ranges[k].empty()) << "shard " << k;
  }
}

TEST(SplitRowsTest, ZeroRowsAllEmpty) {
  for (const ShardRange& r : shard::SplitRows(0, 3)) {
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.rows(), 0u);
  }
}

TEST(CountRowsTest, CsvAndColsAgree) {
  const Dataset data = CovtypeLikeData(57);
  const std::string csv = WriteInput(data, "count.csv", /*cols=*/false);
  const std::string cols = WriteInput(data, "count.cols", /*cols=*/true);
  auto csv_rows = shard::CountRows(csv);
  auto cols_rows = shard::CountRows(cols);
  ASSERT_TRUE(csv_rows.ok()) << csv_rows.status().ToString();
  ASSERT_TRUE(cols_rows.ok()) << cols_rows.status().ToString();
  EXPECT_EQ(csv_rows.value(), 57u);
  EXPECT_EQ(cols_rows.value(), 57u);
}

TEST(RangeChunkReaderTest, BoundedRangeYieldsExactlyItsRows) {
  const Dataset data = CovtypeLikeData(40);
  const std::string path = WriteInput(data, "range.csv", /*cols=*/false);
  auto inner = stream::MakeChunkReader(path, stream::DatasetFormat::kAuto, {});
  ASSERT_TRUE(inner.ok());
  RangeChunkReader reader(std::move(inner).value(), ShardRange{13, 29});
  size_t rows = 0;
  for (;;) {
    auto chunk = reader.NextChunk(7);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk.value().NumRows() == 0) break;
    // Spot-check alignment: first attribute values match the source rows.
    for (size_t i = 0; i < chunk.value().NumRows(); ++i) {
      EXPECT_EQ(chunk.value().Value(i, 0), data.Value(13 + rows + i, 0));
    }
    rows += chunk.value().NumRows();
  }
  EXPECT_EQ(rows, 16u);
}

TEST(RangeChunkReaderTest, EmptyRangeYieldsNothing) {
  const Dataset data = CovtypeLikeData(10);
  const std::string path = WriteInput(data, "range_empty.csv", false);
  auto inner = stream::MakeChunkReader(path, stream::DatasetFormat::kAuto, {});
  ASSERT_TRUE(inner.ok());
  RangeChunkReader reader(std::move(inner).value(), ShardRange{10, 10});
  auto chunk = reader.NextChunk(4);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk.value().NumRows(), 0u);
}

TEST(RangeChunkReaderTest, RangeBeyondEofIsInvalidArgument) {
  const Dataset data = CovtypeLikeData(5);
  const std::string path = WriteInput(data, "range_eof.csv", false);
  auto inner = stream::MakeChunkReader(path, stream::DatasetFormat::kAuto, {});
  ASSERT_TRUE(inner.ok());
  RangeChunkReader reader(std::move(inner).value(), ShardRange{10, 15});
  auto chunk = reader.NextChunk(4);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.status().code(), StatusCode::kInvalidArgument);
}

TEST(RangeChunkReaderTest, RewindReproducesTheRange) {
  const Dataset data = CovtypeLikeData(30);
  const std::string path = WriteInput(data, "range_rewind.cols", true);
  auto inner = stream::MakeChunkReader(path, stream::DatasetFormat::kAuto, {});
  ASSERT_TRUE(inner.ok());
  RangeChunkReader reader(std::move(inner).value(), ShardRange{7, 19});
  auto pass = [&reader]() {
    std::string csv;
    for (;;) {
      auto chunk = reader.NextChunk(5);
      EXPECT_TRUE(chunk.ok());
      if (chunk.value().NumRows() == 0) break;
      csv += ToCsvString(chunk.value());
    }
    return csv;
  };
  const std::string first = pass();
  ASSERT_TRUE(reader.Rewind().ok());
  EXPECT_EQ(pass(), first);
  EXPECT_FALSE(first.empty());
}

TEST(SkipRowsTest, ColsSkipsInConstantTimeToTheRightRow) {
  const Dataset data = CovtypeLikeData(25);
  const std::string bytes = SerializeCols(data);
  auto reader = stream::ColsChunkReader::FromBytes(bytes);
  auto skipped = reader->SkipRows(11);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped.value(), 11u);
  auto chunk = reader->NextChunk(3);
  ASSERT_TRUE(chunk.ok());
  ASSERT_EQ(chunk.value().NumRows(), 3u);
  EXPECT_EQ(chunk.value().Value(0, 0), data.Value(11, 0));
}

TEST(SkipRowsTest, SkippingPastEofReportsTheShortCount) {
  const Dataset data = CovtypeLikeData(8);
  const std::string path = WriteInput(data, "skip_eof.csv", false);
  auto reader = stream::MakeChunkReader(path, stream::DatasetFormat::kAuto,
                                        {});
  ASSERT_TRUE(reader.ok());
  auto skipped = reader.value()->SkipRows(100);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped.value(), 8u);
}

TEST(SkipRowsTest, CsvSkipKeepsClassDictionaryAligned) {
  // The drain-skip must leave the reader's append-only class dictionary
  // exactly as if the skipped rows had been absorbed — the property the
  // shard workers' prefix-chain remap rests on.
  const Dataset data = CovtypeLikeData(60);
  const std::string path = WriteInput(data, "skip_dict.csv", false);
  auto skipping = stream::MakeChunkReader(path, stream::DatasetFormat::kAuto,
                                          {});
  auto reading = stream::MakeChunkReader(path, stream::DatasetFormat::kAuto,
                                         {});
  ASSERT_TRUE(skipping.ok());
  ASSERT_TRUE(reading.ok());
  ASSERT_TRUE(skipping.value()->SkipRows(37).ok());
  ASSERT_TRUE(reading.value()->SkipRows(0).ok());
  auto drained = reading.value()->NextChunk(37);
  ASSERT_TRUE(drained.ok());
  auto a = skipping.value()->NextChunk(10);
  auto b = reading.value()->NextChunk(10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().schema().class_names(), b.value().schema().class_names());
  EXPECT_EQ(ToCsvString(a.value()), ToCsvString(b.value()));
}

// ------------------------------------------------------- summary codec --

ShardSummary SummaryOf(const Dataset& data, size_t begin, size_t end,
                       size_t index = 0, size_t shards = 1) {
  ShardSummary s;
  s.shard_index = index;
  s.num_shards = shards;
  s.range = ShardRange{begin, end};
  if (begin < end) {
    IncrementalSummary inc(data.NumAttributes());
    stream::DatasetChunkReader reader(&data);
    EXPECT_TRUE(reader.SkipRows(begin).ok());
    auto chunk = reader.NextChunk(end - begin);
    EXPECT_TRUE(chunk.ok());
    inc.Absorb(chunk.value());
    s.class_names = chunk.value().schema().class_names();
    s.summary = std::move(inc);
  }
  return s;
}

TEST(SummaryCodecTest, RoundTripIsByteStable) {
  const Dataset data = CovtypeLikeData(80);
  const ShardSummary shard = SummaryOf(data, 5, 60, 1, 3);
  const std::string text = SummaryCodec::Serialize(shard);
  auto parsed = SummaryCodec::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SummaryCodec::Serialize(parsed.value()), text);
  EXPECT_EQ(parsed.value().shard_index, 1u);
  EXPECT_EQ(parsed.value().num_shards, 3u);
  EXPECT_EQ(parsed.value().class_names, shard.class_names);
  ASSERT_TRUE(parsed.value().summary.has_value());
  EXPECT_EQ(parsed.value().summary->NumRows(), 55u);
  EXPECT_EQ(FitBytes(*parsed.value().summary, 3),
            FitBytes(*shard.summary, 3));
}

TEST(SummaryCodecTest, ValuesTravelAsBitPatterns) {
  // -0.0 vs 0.0 and a denormal must survive: decimal rendering would
  // collapse or perturb them and break the byte-identity contract.
  Schema schema({"a"}, {"x"});
  Dataset data(schema);
  data.AddRow({0.0}, 0);
  data.AddRow({-0.0}, 0);
  data.AddRow({5e-324}, 0);
  data.AddRow({1.0}, 0);
  ShardSummary shard = SummaryOf(data, 0, 4);
  const std::string text = SummaryCodec::Serialize(shard);
  auto parsed = SummaryCodec::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const AttributeSummary original = shard.summary->Summarize(0);
  const AttributeSummary reloaded = parsed.value().summary->Summarize(0);
  ASSERT_EQ(reloaded.NumDistinct(), original.NumDistinct());
  for (size_t i = 0; i < original.NumDistinct(); ++i) {
    EXPECT_EQ(std::signbit(reloaded.ValueAt(i)),
              std::signbit(original.ValueAt(i)));
    EXPECT_EQ(reloaded.ValueAt(i), original.ValueAt(i));
  }
}

TEST(SummaryCodecTest, EmptyShardRoundTrips) {
  ShardSummary shard;
  shard.shard_index = 4;
  shard.num_shards = 5;
  shard.range = ShardRange{9, 9};
  const std::string text = SummaryCodec::Serialize(shard);
  auto parsed = SummaryCodec::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed.value().summary.has_value());
  EXPECT_TRUE(parsed.value().class_names.empty());
  EXPECT_EQ(SummaryCodec::Serialize(parsed.value()), text);
}

TEST(SummaryCodecTest, OpenRangeRoundTrips) {
  const Dataset data = CovtypeLikeData(12);
  ShardSummary shard = SummaryOf(data, 0, 12);
  shard.range = ShardRange{0, kOpenEnd};
  auto parsed = SummaryCodec::Parse(SummaryCodec::Serialize(shard));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().range.open());
}

TEST(SummaryCodecTest, CorruptionIsDataLoss) {
  const Dataset data = CovtypeLikeData(30);
  const std::string text = SummaryCodec::Serialize(SummaryOf(data, 0, 30));
  // Flip a byte anywhere in the payload: the footer CRC must catch it.
  for (size_t at : {size_t{0}, text.size() / 2, text.size() - 2}) {
    std::string bad = text;
    bad[at] ^= 0x01;
    auto parsed = SummaryCodec::Parse(bad);
    ASSERT_FALSE(parsed.ok()) << "flip at " << at;
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << "flip at "
                                                             << at;
  }
  // Truncation too.
  auto truncated = SummaryCodec::Parse(text.substr(0, text.size() / 2));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
}

TEST(SummaryCodecTest, SaveLoadRoundTripsAndMissingFileIsNotFound) {
  const Dataset data = CovtypeLikeData(20);
  const ShardSummary shard = SummaryOf(data, 0, 20);
  const std::string path = TempPath("codec.sum");
  ASSERT_TRUE(SummaryCodec::Save(shard, path).ok());
  auto loaded = SummaryCodec::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SummaryCodec::Serialize(loaded.value()),
            SummaryCodec::Serialize(shard));
  ASSERT_TRUE(fault::RemoveFile(path).ok());
  auto missing = SummaryCodec::Load(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------- merge-tree algebra --

/// Absorbs rows [begin, end) of `data` into a fresh summary.
IncrementalSummary PartOf(const Dataset& data, size_t begin, size_t end) {
  IncrementalSummary inc(data.NumAttributes());
  stream::DatasetChunkReader reader(&data);
  EXPECT_TRUE(reader.SkipRows(begin).ok());
  if (begin < end) {
    auto chunk = reader.NextChunk(end - begin);
    EXPECT_TRUE(chunk.ok());
    inc.Absorb(chunk.value());
  }
  return inc;
}

TEST(MergePropertyTest, MergeIsCommutative) {
  const Dataset data = CovtypeLikeData(100);
  IncrementalSummary ab = PartOf(data, 0, 40);
  ab.Merge(PartOf(data, 40, 100));
  IncrementalSummary ba = PartOf(data, 40, 100);
  ba.Merge(PartOf(data, 0, 40));
  EXPECT_EQ(FitBytes(ab, 7), FitBytes(ba, 7));
  EXPECT_EQ(ab.NumRows(), ba.NumRows());
}

TEST(MergePropertyTest, MergeIsAssociative) {
  const Dataset data = CovtypeLikeData(90);
  // ((a + b) + c)
  IncrementalSummary left = PartOf(data, 0, 30);
  left.Merge(PartOf(data, 30, 55));
  left.Merge(PartOf(data, 55, 90));
  // (a + (b + c))
  IncrementalSummary bc = PartOf(data, 30, 55);
  bc.Merge(PartOf(data, 55, 90));
  IncrementalSummary right = PartOf(data, 0, 30);
  right.Merge(bc);
  EXPECT_EQ(FitBytes(left, 11), FitBytes(right, 11));
}

TEST(MergePropertyTest, RandomGroupingsAndOrdersFitTheSamePlan) {
  // The satellite property test: any contiguous grouping of the stream —
  // including empty and single-row groups — merged in any order yields
  // the same fitted plan bytes as the whole-stream absorb.
  const Dataset data = CovtypeLikeData(120, 17);
  const std::string golden = FitBytes(PartOf(data, 0, 120), 5);
  Rng rng(99);
  for (size_t trial = 0; trial < 12; ++trial) {
    // Random cut points, allowing empty groups (repeated cuts) and
    // single-row groups.
    std::vector<size_t> cuts = {0, 120};
    const size_t extra = 1 + static_cast<size_t>(rng.UniformInt(0, 6));
    for (size_t i = 0; i < extra; ++i) {
      cuts.push_back(static_cast<size_t>(rng.UniformInt(0, 120)));
    }
    std::sort(cuts.begin(), cuts.end());
    std::vector<IncrementalSummary> groups;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      groups.push_back(PartOf(data, cuts[i], cuts[i + 1]));
    }
    // Merge in a random order: repeatedly fold a random group into a
    // random survivor.
    while (groups.size() > 1) {
      const size_t a = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(groups.size() - 1)));
      size_t b = a;
      while (b == a) {
        b = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(groups.size() - 1)));
      }
      groups[std::min(a, b)].Merge(groups[std::max(a, b)]);
      groups.erase(groups.begin() +
                   static_cast<ptrdiff_t>(std::max(a, b)));
    }
    ASSERT_EQ(groups[0].NumRows(), 120u) << "trial " << trial;
    EXPECT_EQ(FitBytes(groups[0], 5), golden) << "trial " << trial;
  }
}

TEST(MergePropertyTest, RemapClassesPreservesCountsExactly) {
  const Dataset data = CovtypeLikeData(60);
  const IncrementalSummary base = PartOf(data, 0, 60);
  // Remap through a permutation and back: counts must be preserved.
  const size_t c = base.NumClasses();
  ASSERT_GE(c, 2u);
  std::vector<size_t> perm(c), inverse(c);
  for (size_t i = 0; i < c; ++i) perm[i] = (i + 1) % c;
  for (size_t i = 0; i < c; ++i) inverse[perm[i]] = i;
  const IncrementalSummary there = SummaryCodec::RemapClasses(base, perm, c);
  const IncrementalSummary back =
      SummaryCodec::RemapClasses(there, inverse, c);
  EXPECT_EQ(FitBytes(back, 13), FitBytes(base, 13));
  EXPECT_EQ(back.NumRows(), base.NumRows());
}

// ------------------------------------------------ byte-identity sweep --

class ShardReleaseTest : public testing::Test {
 protected:
  void SetUp() override { data_ = CovtypeLikeData(220, 41); }
  Dataset data_;
};

TEST_F(ShardReleaseTest, ConcatenationMatchesStreamReleaseEverywhere) {
  // The tentpole gate: shards {1, 2, 3, 8} x threads {1, 2, 7} x formats
  // {csv, cols}, all byte-identical to the single-process release.
  for (const bool cols : {false, true}) {
    const std::string input =
        WriteInput(data_, cols ? "sweep.cols" : "sweep.csv", cols);
    std::string golden_plan;
    const std::string golden =
        StreamReleaseBytes(input, 64, /*seed=*/9, &golden_plan);
    ASSERT_FALSE(golden.empty());
    for (const size_t shards : {1, 2, 3, 8}) {
      for (const size_t threads : {1, 2, 7}) {
        const std::string out = TempPath("sweep_out");
        ShardStats stats;
        auto plan = ShardedCustodian::Release(
            input, out, BaseOptions(shards, threads, 64, 9), &stats);
        ASSERT_TRUE(plan.ok())
            << plan.status().ToString() << " shards=" << shards
            << " threads=" << threads << " cols=" << cols;
        const std::string where = " shards=" + std::to_string(shards) +
                                  " threads=" + std::to_string(threads) +
                                  " cols=" + std::to_string(cols);
        EXPECT_EQ(SerializePlan(plan.value()), golden_plan) << where;
        EXPECT_EQ(ConcatShards(out, shards), golden) << where;
        EXPECT_EQ(stats.rows, data_.NumRows()) << where;
        const uint64_t crc = Crc64(golden_plan);
        EXPECT_TRUE(shard::VerifyShardedRelease(out, &crc, nullptr).ok())
            << where;
      }
    }
  }
}

TEST_F(ShardReleaseTest, SingleShardTakesTheSingleProcessPath) {
  // The 1-shard degenerate layout: open range, no counting pass, full
  // thread budget inside the one worker — and exact byte identity.
  const std::string input = WriteInput(data_, "single.csv", false);
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 32, 3, &golden_plan);
  const std::string out = TempPath("single_out");
  ShardStats stats;
  auto plan =
      ShardedCustodian::Release(input, out, BaseOptions(1, 7, 32, 3), &stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(SerializePlan(plan.value()), golden_plan);
  EXPECT_EQ(Slurp(shard::ShardFilePath(out, 0)), golden);
  EXPECT_EQ(stats.shards, 1u);
  EXPECT_EQ(stats.empty_shards, 0u);
}

TEST_F(ShardReleaseTest, MoreShardsThanRowsYieldsEmptyShards) {
  const Dataset tiny = CovtypeLikeData(3, 77);
  const std::string input = WriteInput(tiny, "tiny.csv", false);
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 16, 5, &golden_plan);
  const std::string out = TempPath("tiny_out");
  ShardStats stats;
  auto plan =
      ShardedCustodian::Release(input, out, BaseOptions(8, 2, 16, 5), &stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(SerializePlan(plan.value()), golden_plan);
  EXPECT_EQ(ConcatShards(out, 8), golden);
  EXPECT_EQ(stats.empty_shards, 5u);
  // The empty shards publish zero-byte files the manifest still covers.
  for (size_t k = 3; k < 8; ++k) {
    EXPECT_EQ(Slurp(shard::ShardFilePath(out, k)), "");
  }
  shard::VerifyTotals totals;
  ASSERT_TRUE(shard::VerifyShardedRelease(out, nullptr, &totals).ok());
  EXPECT_EQ(totals.shards, 8u);
  EXPECT_EQ(totals.rows, 3u);
}

TEST_F(ShardReleaseTest, IndivisibleRowCountStaysByteIdentical) {
  const Dataset odd = CovtypeLikeData(101, 13);
  const std::string input = WriteInput(odd, "odd.csv", false);
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 21, 7, &golden_plan);
  const std::string out = TempPath("odd_out");
  auto plan =
      ShardedCustodian::Release(input, out, BaseOptions(4, 2, 21, 7), nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(SerializePlan(plan.value()), golden_plan);
  EXPECT_EQ(ConcatShards(out, 4), golden);
}

TEST_F(ShardReleaseTest, EmptyInputIsInvalidArgument) {
  Schema schema({"a"}, {"x"});
  Dataset empty(schema);
  const std::string input = WriteInput(empty, "empty.csv", false);
  const std::string out = TempPath("empty_out");
  auto plan =
      ShardedCustodian::Release(input, out, BaseOptions(3, 2, 16, 1), nullptr);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------- crash and resume --

TEST(ShardResumeTest, FaultsAnywhereResumeToIdenticalBytes) {
  // Cols input so phase-1 reads are injected too; thread mode so the
  // failpoint stays in-process. Schedules sample the op range edge to
  // edge, alternating clean errors and simulated kills.
  const Dataset data = CovtypeLikeData(150, 23);
  const std::string input = WriteInput(data, "resume.cols", true);
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 40, 21, &golden_plan);
  const ShardOptions options = BaseOptions(3, 2, 40, 21);
  const std::string out = TempPath("resume_out");

  size_t total_ops = 0;
  {
    fault::ScopedFaultInjection probe(fault::FaultSchedule::CountOnly());
    auto counted = ShardedCustodian::Release(input, TempPath("resume_probe"),
                                             options, nullptr);
    ASSERT_TRUE(counted.ok()) << counted.status().ToString();
    total_ops = probe.ops_seen();
  }
  ASSERT_GT(total_ops, 0u);

  const size_t kSchedules = 8;
  for (size_t k = 0; k < kSchedules; ++k) {
    const size_t fire_at = k * (total_ops - 1) / (kSchedules - 1);
    const bool crash = k % 2 == 0;
    SCOPED_TRACE("schedule " + std::to_string(k) + ": " +
                 (crash ? "crash" : "error") + " at op " +
                 std::to_string(fire_at) + "/" + std::to_string(total_ops));
    {
      fault::ScopedFaultInjection inject(
          crash ? fault::FaultSchedule::CrashAt(fire_at, 0.4)
                : fault::FaultSchedule::ErrorAt(fire_at, 0.4));
      auto faulted = ShardedCustodian::Release(input, out, options, nullptr);
      ASSERT_TRUE(inject.fired());
      if (crash) {
        ASSERT_FALSE(faulted.ok());
      }
    }
    ShardOptions resume = options;
    resume.resume = true;
    auto recovered = ShardedCustodian::Release(input, out, resume, nullptr);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(SerializePlan(recovered.value()), golden_plan);
    EXPECT_EQ(ConcatShards(out, 3), golden);
    const uint64_t crc = Crc64(golden_plan);
    EXPECT_TRUE(shard::VerifyShardedRelease(out, &crc, nullptr).ok());
    // Journals retired, no summary debris.
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_FALSE(
          fault::FileExists(shard::ShardFilePath(out, s) + ".manifest"));
      EXPECT_FALSE(
          fault::FileExists(shard::ShardFilePath(out, s) + ".partial"));
      EXPECT_FALSE(fault::FileExists(shard::ShardSummaryPath(out, s)));
    }
  }
}

TEST(ShardResumeTest, ResumeReusesCompletedShardWork) {
  // Kill late in the run (inside finalize), then resume: the journals
  // must mark every chunk done, so the resumed release redoes no encode.
  const Dataset data = CovtypeLikeData(120, 29);
  const std::string input = WriteInput(data, "reuse.csv", false);
  const ShardOptions options = BaseOptions(2, 2, 30, 2);
  const std::string out = TempPath("reuse_out");

  size_t total_ops = 0;
  {
    fault::ScopedFaultInjection probe(fault::FaultSchedule::CountOnly());
    auto counted = ShardedCustodian::Release(input, TempPath("reuse_probe"),
                                             options, nullptr);
    ASSERT_TRUE(counted.ok()) << counted.status().ToString();
    total_ops = probe.ops_seen();
  }
  {
    // The very last op is a journal retirement after the meta commit.
    fault::ScopedFaultInjection inject(
        fault::FaultSchedule::CrashAt(total_ops - 1));
    auto faulted = ShardedCustodian::Release(input, out, options, nullptr);
    ASSERT_TRUE(inject.fired());
    ASSERT_FALSE(faulted.ok());
  }
  ShardOptions resume = options;
  resume.resume = true;
  ShardStats stats;
  auto recovered = ShardedCustodian::Release(input, out, resume, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Every chunk of both shards came back from the journals.
  EXPECT_GT(stats.resumed_chunks, 0u);
  std::string golden_plan;
  EXPECT_EQ(ConcatShards(out, 2),
            StreamReleaseBytes(input, 30, 2, &golden_plan));
  EXPECT_EQ(SerializePlan(recovered.value()), golden_plan);
}

TEST(ShardResumeTest, StaleJournalFromOtherLayoutIsNotResumed) {
  // A journal written under a 2-shard layout must not poison a 3-shard
  // resume of the same output path: the salt makes the fingerprints
  // disagree and the shard starts fresh — output still byte-identical.
  const Dataset data = CovtypeLikeData(90, 37);
  const std::string input = WriteInput(data, "salt.csv", false);
  const std::string out = TempPath("salt_out");
  ASSERT_TRUE(ShardedCustodian::Release(input, out,
                                        BaseOptions(2, 1, 25, 5), nullptr)
                  .ok());
  // Rerun under a different shard count with --resume: shard 0's final
  // file from the 2-shard run survives on disk but covers different rows.
  ShardOptions relayout = BaseOptions(3, 1, 25, 5);
  relayout.resume = true;
  auto plan = ShardedCustodian::Release(input, out, relayout, nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string golden_plan;
  EXPECT_EQ(ConcatShards(out, 3),
            StreamReleaseBytes(input, 25, 5, &golden_plan));
  EXPECT_EQ(SerializePlan(plan.value()), golden_plan);
}

// ------------------------------------------------------ meta-manifest --

TEST(MetaManifestTest, SerializeParseRoundTrips) {
  MetaManifest m;
  m.fingerprint = "chunk_rows=64 ood=reject fit_rows=0 seed=9 plan_crc=abc";
  m.plan_crc = 0x0123456789abcdefull;
  m.shards.push_back(ShardEntry{0, 100, 2048, 0xdeadbeefull, "r.shard0"});
  m.shards.push_back(ShardEntry{1, 0, 0, 0, "r.shard1"});
  const std::string text = shard::SerializeMetaManifest(m);
  auto parsed = shard::ParseMetaManifest(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(shard::SerializeMetaManifest(parsed.value()), text);
  EXPECT_EQ(parsed.value().fingerprint, m.fingerprint);
  EXPECT_EQ(parsed.value().plan_crc, m.plan_crc);
  ASSERT_EQ(parsed.value().shards.size(), 2u);
  EXPECT_EQ(parsed.value().shards[1].file, "r.shard1");
}

TEST(MetaManifestTest, ParseRejectsTampering) {
  MetaManifest m;
  m.fingerprint = "f";
  m.plan_crc = 7;
  m.shards.push_back(ShardEntry{0, 1, 2, 3, "x.shard0"});
  const std::string text = shard::SerializeMetaManifest(m);
  for (size_t at = 0; at < text.size(); at += 7) {
    std::string bad = text;
    bad[at] ^= 0x04;
    auto parsed = shard::ParseMetaManifest(bad);
    if (parsed.ok()) {
      // A flip may cancel out only if serialization is not canonical —
      // never acceptable.
      ADD_FAILURE() << "tampered byte " << at << " went undetected";
    } else {
      EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << at;
    }
  }
}

TEST(MetaManifestTest, VerifyNamesTheCorruptShard) {
  const Dataset data = CovtypeLikeData(80, 53);
  const std::string input = WriteInput(data, "vm.csv", false);
  const std::string out = TempPath("vm_out");
  auto plan = ShardedCustodian::Release(input, out,
                                        BaseOptions(3, 1, 32, 4), nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(shard::VerifyShardedRelease(out).ok());

  // Corrupt shard 1's bytes: DataLoss naming shard 1.
  const std::string victim = shard::ShardFilePath(out, 1);
  const std::string original = Slurp(victim);
  std::string tampered = original;
  ASSERT_FALSE(tampered.empty());
  tampered[tampered.size() / 2] ^= 0x10;
  ASSERT_TRUE(fault::WriteFileAtomic(victim, tampered).ok());
  Status caught = shard::VerifyShardedRelease(out);
  ASSERT_FALSE(caught.ok());
  EXPECT_EQ(caught.code(), StatusCode::kDataLoss);
  EXPECT_NE(caught.message().find("shard 1"), std::string::npos)
      << caught.ToString();

  // Truncation: length mismatch, still naming the shard.
  ASSERT_TRUE(
      fault::WriteFileAtomic(victim, original.substr(0, original.size() / 2))
          .ok());
  caught = shard::VerifyShardedRelease(out);
  ASSERT_FALSE(caught.ok());
  EXPECT_EQ(caught.code(), StatusCode::kDataLoss);
  EXPECT_NE(caught.message().find("shard 1"), std::string::npos);

  // A missing shard keeps the NotFound taxonomy (exit 3, not 4).
  ASSERT_TRUE(fault::RemoveFile(victim).ok());
  caught = shard::VerifyShardedRelease(out);
  ASSERT_FALSE(caught.ok());
  EXPECT_EQ(caught.code(), StatusCode::kNotFound);

  // Restored bytes verify again.
  ASSERT_TRUE(fault::WriteFileAtomic(victim, original).ok());
  EXPECT_TRUE(shard::VerifyShardedRelease(out).ok());
}

TEST(MetaManifestTest, WrongKeyIsRejected) {
  const Dataset data = CovtypeLikeData(60, 3);
  const std::string input = WriteInput(data, "key.csv", false);
  const std::string out = TempPath("key_out");
  auto plan = ShardedCustodian::Release(input, out,
                                        BaseOptions(2, 1, 32, 4), nullptr);
  ASSERT_TRUE(plan.ok());
  const uint64_t right = Crc64(SerializePlan(plan.value()));
  ASSERT_TRUE(shard::VerifyShardedRelease(out, &right, nullptr).ok());
  const uint64_t wrong = right ^ 1;
  Status caught = shard::VerifyShardedRelease(out, &wrong, nullptr);
  ASSERT_FALSE(caught.ok());
  EXPECT_EQ(caught.code(), StatusCode::kDataLoss);
  EXPECT_NE(caught.message().find("wrong key"), std::string::npos)
      << caught.ToString();
}

// ------------------------------------------------ forked worker mode --
// (ShardProcess* suites fork(); sanitizer stages that cannot host fork
// filter them with --gtest_filter=-*ShardProcess*.)

TEST(ShardProcessTest, ByteIdentityAcrossForkedWorkers) {
  const Dataset data = CovtypeLikeData(130, 61);
  for (const bool cols : {false, true}) {
    const std::string input =
        WriteInput(data, cols ? "proc.cols" : "proc.csv", cols);
    std::string golden_plan;
    const std::string golden = StreamReleaseBytes(input, 48, 6, &golden_plan);
    const std::string out = TempPath("proc_out");
    ShardOptions options = BaseOptions(3, 2, 48, 6);
    options.workers_mode = shard::WorkersMode::kProcess;
    ShardStats stats;
    auto plan = ShardedCustodian::Release(input, out, options, &stats);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString() << " cols=" << cols;
    EXPECT_EQ(SerializePlan(plan.value()), golden_plan) << "cols=" << cols;
    EXPECT_EQ(ConcatShards(out, 3), golden) << "cols=" << cols;
    EXPECT_EQ(stats.rows, data.NumRows());
    // The summary hand-off artifacts are consumed and removed.
    for (size_t k = 0; k < 3; ++k) {
      EXPECT_FALSE(fault::FileExists(shard::ShardSummaryPath(out, k)));
    }
    const uint64_t crc = Crc64(golden_plan);
    EXPECT_TRUE(shard::VerifyShardedRelease(out, &crc, nullptr).ok());
  }
}

TEST(ShardProcessTest, SingleShardDegenerateAlsoForks) {
  const Dataset data = CovtypeLikeData(70, 67);
  const std::string input = WriteInput(data, "proc1.csv", false);
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 24, 8, &golden_plan);
  const std::string out = TempPath("proc1_out");
  ShardOptions options = BaseOptions(1, 2, 24, 8);
  options.workers_mode = shard::WorkersMode::kProcess;
  auto plan = ShardedCustodian::Release(input, out, options, nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(SerializePlan(plan.value()), golden_plan);
  EXPECT_EQ(Slurp(shard::ShardFilePath(out, 0)), golden);
}

TEST(ShardProcessTest, WorkerFailureSurfacesThroughExitCodes) {
  // An unwritable output location fails inside the forked workers; the
  // coordinator must map the exit code back onto the I/O Status taxonomy.
  const Dataset data = CovtypeLikeData(40, 71);
  const std::string input = WriteInput(data, "procfail.csv", false);
  const std::string out =
      testing::TempDir() + "/popp_no_such_dir/sub/release";
  ShardOptions options = BaseOptions(2, 1, 16, 1);
  options.workers_mode = shard::WorkersMode::kProcess;
  auto plan = ShardedCustodian::Release(input, out, options, nullptr);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kIoError);
  EXPECT_NE(plan.status().message().find("worker"), std::string::npos)
      << plan.status().ToString();
}

// -------------------------------------------------- startup debris sweep --

/// A fresh directory so the sweep's directory scan sees only what the
/// test plants there.
std::string FreshSweepDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/popp_sweep_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  EXPECT_FALSE(ec) << ec.message();
  return dir;
}

void Plant(const std::string& path, const std::string& bytes = "debris") {
  ASSERT_TRUE(fault::WriteFileAtomic(path, bytes).ok()) << path;
}

TEST(ShardSweepTest, RemovesOnlyOrphanedWorkingFiles) {
  const std::string dir = FreshSweepDir("unit");
  const std::string out = dir + "/release";
  // Debris of this stem: every working suffix, chained temporaries, and
  // the torn meta-manifest temp.
  // Survivors: live payloads, the published meta-manifest, the input,
  // other stems, and look-alikes that fail the matcher. Planted before
  // the debris because the atomic writer stages each survivor through
  // its own `.tmp` name — which for `out` IS one of the debris names.
  const std::vector<std::string> survivors = {
      out,                       out + ".shard0",
      out + ".shard12",          dir + "/input.csv",
      dir + "/other.shard0.sum", out + ".shardX.sum",
      out + ".shard0.sumX",      out + ".shard0.backup"};
  for (const std::string& path : survivors) Plant(path, "live");
  const std::vector<std::string> debris = {
      out + ".shard0.sum",     out + ".shard1.partial",
      out + ".shard2.manifest", out + ".shard0.hb",
      out + ".shard3.sum.tmp", out + ".tmp"};
  for (const std::string& path : debris) Plant(path);

  auto swept = shard::SweepOrphanedShardFiles(out);
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  EXPECT_EQ(swept.value(), debris.size());
  for (const std::string& path : debris) {
    EXPECT_FALSE(fault::FileExists(path)) << path;
  }
  for (const std::string& path : survivors) {
    EXPECT_TRUE(fault::FileExists(path)) << path;
    EXPECT_EQ(Slurp(path), "live") << path;
  }
  // Idempotent: a second sweep finds nothing.
  auto again = shard::SweepOrphanedShardFiles(out);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
}

TEST(ShardSweepTest, FreshReleaseSweepsDebrisAndConverges) {
  const Dataset data = CovtypeLikeData(80, 41);
  const std::string dir = FreshSweepDir("fresh");
  const std::string input = dir + "/in.csv";
  ASSERT_TRUE(fault::WriteFileAtomic(input, ToCsvString(data)).ok());
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 25, 3, &golden_plan);
  const std::string out = dir + "/rel";
  Plant(out + ".shard0.manifest");
  Plant(out + ".shard1.sum");
  Plant(out + ".tmp");

  ShardStats stats;
  auto plan =
      ShardedCustodian::Release(input, out, BaseOptions(2, 1, 25, 3), &stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(stats.swept_files, 3u);
  EXPECT_EQ(ConcatShards(out, 2), golden);
  EXPECT_EQ(SerializePlan(plan.value()), golden_plan);
  EXPECT_TRUE(shard::VerifyShardedRelease(out).ok());
}

TEST(ShardSweepTest, ResumeKeepsWorkingFiles) {
  // --resume must NOT sweep: surviving journals ARE the resume state, so
  // even an unrelated planted working file stays untouched.
  const Dataset data = CovtypeLikeData(70, 43);
  const std::string dir = FreshSweepDir("resume");
  const std::string input = dir + "/in.csv";
  ASSERT_TRUE(fault::WriteFileAtomic(input, ToCsvString(data)).ok());
  const std::string out = dir + "/rel";
  ShardOptions options = BaseOptions(2, 1, 20, 5);
  ASSERT_TRUE(ShardedCustodian::Release(input, out, options, nullptr).ok());

  const std::string planted = out + ".shard0.hb";
  Plant(planted);
  options.resume = true;
  ShardStats stats;
  auto plan = ShardedCustodian::Release(input, out, options, &stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(stats.swept_files, 0u);
  EXPECT_TRUE(fault::FileExists(planted));
}

TEST(ShardSweepTest, PublishedReleaseIsNeverSwept) {
  // Regression for the sweep matcher: after a complete publish, a sweep
  // over the same stem must remove nothing and leave the release
  // verifiable with identical bytes.
  const Dataset data = CovtypeLikeData(90, 47);
  const std::string dir = FreshSweepDir("live");
  const std::string input = dir + "/in.cols";
  ASSERT_TRUE(fault::WriteFileAtomic(input, SerializeCols(data)).ok());
  const std::string out = dir + "/rel";
  auto plan = ShardedCustodian::Release(input, out,
                                        BaseOptions(3, 2, 30, 7), nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string before = ConcatShards(out, 3);
  auto swept = shard::SweepOrphanedShardFiles(out);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 0u);
  EXPECT_EQ(ConcatShards(out, 3), before);
  const uint64_t crc = Crc64(SerializePlan(plan.value()));
  EXPECT_TRUE(shard::VerifyShardedRelease(out, &crc, nullptr).ok());
}

// ---------------------------------------- supervised forked worker mode --
// (fork-based like the other ShardProcess* suites; the TSan stage's
// -*ShardProcess* filter covers this suite too.)

/// Drives supervised process-mode releases with `kind` injected into a
/// forked child: scans fault-op indices (child_only + a one-shot token,
/// so the coordinator never stalls and a restarted worker never
/// re-fires) until a schedule lands inside a worker, then returns that
/// trial's stats through `stats`. Returns false if no index fired.
bool DriveChildFault(fault::Injection::Kind kind, uint32_t delay_ms,
                     const std::string& input, const std::string& out,
                     ShardOptions options, ShardStats* stats) {
  options.workers_mode = shard::WorkersMode::kProcess;
  size_t total_ops = 0;
  {
    fault::ScopedFaultInjection probe(fault::FaultSchedule::CountOnly());
    auto counted =
        ShardedCustodian::Release(input, out + "_probe", options, nullptr);
    EXPECT_TRUE(counted.ok()) << counted.status().ToString();
    total_ops = probe.ops_seen();
  }
  const std::string token = out + "_token";
  for (size_t fire_at = 0; fire_at < total_ops; ++fire_at) {
    EXPECT_TRUE(fault::WriteFileAtomic(token, "armed").ok());
    fault::FaultSchedule schedule;
    schedule.fire_at = fire_at;
    schedule.kind = kind;
    schedule.delay_ms = delay_ms;
    schedule.child_only = true;
    schedule.one_shot_token = token;
    {
      fault::ScopedFaultInjection inject(schedule);
      auto plan = ShardedCustodian::Release(input, out, options, stats);
      EXPECT_TRUE(plan.ok()) << plan.status().ToString() << " at op "
                             << fire_at;
    }
    // The token vanished iff some child consumed it and fired.
    if (!fault::FileExists(token)) return true;
    (void)fault::RemoveFile(token);
  }
  return false;
}

TEST(ShardProcessSupervisionTest, WatchdogKillsHungWorkerAndConverges) {
  const Dataset data = CovtypeLikeData(60, 73);
  const std::string input = WriteInput(data, "sup_hang.csv", false);
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 20, 9, &golden_plan);
  const std::string out = TempPath("sup_hang_out");
  ShardOptions options = BaseOptions(2, 1, 20, 9);
  options.worker_deadline_ms = 200;
  options.max_worker_restarts = 2;

  // A worker stalls 5 s mid-operation — far past the 200 ms deadline —
  // so the watchdog must SIGKILL it; the restarted attempt (the delay is
  // one-shot) finishes, and the release is byte-identical anyway.
  ShardStats stats;
  ASSERT_TRUE(DriveChildFault(fault::Injection::Kind::kDelay, 5000, input,
                              out, options, &stats))
      << "no fault-op index landed inside a forked worker";
  EXPECT_GE(stats.workers_killed, 1u);
  EXPECT_GE(stats.worker_restarts, 1u);
  EXPECT_EQ(ConcatShards(out, 2), golden);
  const uint64_t crc = Crc64(golden_plan);
  EXPECT_TRUE(shard::VerifyShardedRelease(out, &crc, nullptr).ok());
  // Supervision leaves no working debris: heartbeats are removed when a
  // task settles.
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_FALSE(
        fault::FileExists(shard::ShardFilePath(out, k) + ".hb"));
  }
}

TEST(ShardProcessSupervisionTest, CrashedWorkerIsRestartedAndConverges) {
  const Dataset data = CovtypeLikeData(60, 79);
  const std::string input = WriteInput(data, "sup_crash.csv", false);
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 20, 9, &golden_plan);
  const std::string out = TempPath("sup_crash_out");
  ShardOptions options = BaseOptions(2, 1, 20, 9);
  options.max_worker_restarts = 2;

  // A worker dies mid-run (simulated kill); the supervisor restarts it
  // with the attempt number, so a restarted encode resumes its journal —
  // and the release still converges to the exact golden bytes.
  ShardStats stats;
  ASSERT_TRUE(DriveChildFault(fault::Injection::Kind::kCrash, 0, input, out,
                              options, &stats))
      << "no fault-op index landed inside a forked worker";
  EXPECT_GE(stats.worker_restarts, 1u);
  EXPECT_EQ(ConcatShards(out, 2), golden);
  EXPECT_EQ(stats.workers_killed, 0u);  // a crash is not a hang
  const uint64_t crc = Crc64(golden_plan);
  EXPECT_TRUE(shard::VerifyShardedRelease(out, &crc, nullptr).ok());
}

TEST(ShardProcessSupervisionTest, UnsupervisedEscapeHatchStaysByteIdentical) {
  // supervise=false is the benchmark baseline (the PR 9 fork-and-block
  // path): same bytes, no heartbeat files, zeroed supervision counters.
  const Dataset data = CovtypeLikeData(70, 83);
  const std::string input = WriteInput(data, "sup_off.csv", false);
  std::string golden_plan;
  const std::string golden = StreamReleaseBytes(input, 24, 11, &golden_plan);
  const std::string out = TempPath("sup_off_out");
  ShardOptions options = BaseOptions(2, 1, 24, 11);
  options.workers_mode = shard::WorkersMode::kProcess;
  options.supervise = false;
  ShardStats stats;
  auto plan = ShardedCustodian::Release(input, out, options, &stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(SerializePlan(plan.value()), golden_plan);
  EXPECT_EQ(ConcatShards(out, 2), golden);
  EXPECT_EQ(stats.workers_killed, 0u);
  EXPECT_EQ(stats.worker_restarts, 0u);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_FALSE(fault::FileExists(shard::ShardFilePath(out, k) + ".hb"));
  }
}

// ---------------------------------------------------------- the oracle --

TEST(ShardOracleTest, ShardVsStreamHoldsOnRandomCases) {
  // A bounded in-test sweep of the oracle; ci_check and popp_check run
  // the large randomized batches.
  const Dataset data = CovtypeLikeData(90, 83);
  Rng plan_rng(19);
  const TransformPlan plan =
      TransformPlan::Create(data, PiecewiseOptions{}, plan_rng);
  const Dataset released = plan.EncodeDataset(data);
  for (const size_t shards : {1, 3}) {
    const auto result = check::CheckShardVsStream(
        data, plan, released, /*plan_seed=*/19, PiecewiseOptions{}, shards,
        /*num_threads=*/2, /*chunk_rows=*/33, /*use_cols=*/shards == 3,
        /*num_fault_schedules=*/3);
    EXPECT_TRUE(result.passed) << result.message;
  }
}

}  // namespace
}  // namespace popp
