#include <gtest/gtest.h>

#include "attack/sorting_attack.h"
#include "data/summary.h"
#include "transform/piecewise.h"
#include "util/rng.h"

namespace popp {
namespace {

/// A dense integer domain (no discontinuities), every value mixed-class.
AttributeSummary DenseSummary(int64_t lo, int64_t hi) {
  std::vector<ValueLabel> tuples;
  for (int64_t v = lo; v <= hi; ++v) {
    tuples.push_back({static_cast<double>(v), 0});
    tuples.push_back({static_cast<double>(v), 1});
  }
  return AttributeSummary::FromTuples(std::move(tuples), 2);
}

/// A sparse domain: every third integer only.
AttributeSummary SparseSummary(int64_t lo, size_t count) {
  std::vector<ValueLabel> tuples;
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back({static_cast<double>(lo + 3 * i), 0});
    tuples.push_back({static_cast<double>(lo + 3 * i), 1});
  }
  return AttributeSummary::FromTuples(std::move(tuples), 2);
}

TEST(SortingGuessesTest, SpreadsOverAssumedDomain) {
  const auto guesses = SortingAttackGuesses(5, 10, 18);
  EXPECT_EQ(guesses, (std::vector<AttrValue>{10, 12, 14, 16, 18}));
}

TEST(SortingGuessesTest, SingleValue) {
  EXPECT_EQ(SortingAttackGuesses(1, 7, 9), (std::vector<AttrValue>{7}));
}

TEST(SortingGuessesTest, DenseDomainGuessesExactly) {
  const auto guesses = SortingAttackGuesses(11, 0, 10);
  for (size_t i = 0; i < guesses.size(); ++i) {
    EXPECT_DOUBLE_EQ(guesses[i], static_cast<double>(i));
  }
}

TEST(RankCrackProbabilityTest, PaperExampleFiveOverThirtySix) {
  // Section 5.4's worked example: domain [1,44], value nu' with 5 ranked
  // ahead and 3 after, truth 29, rho 2: R_g = [6,41] (36 slots),
  // R_rho = [27,31] (5 slots) -> 5/36.
  EXPECT_NEAR(RankCrackProbability(1, 44, 5, 3, 29, 2), 5.0 / 36.0, 1e-12);
}

TEST(RankCrackProbabilityTest, FullyConstrainedRankIsCertain) {
  // Dense domain: rank pins the value exactly.
  EXPECT_DOUBLE_EQ(RankCrackProbability(0, 10, 4, 6, 4, 1), 1.0);
}

TEST(RankCrackProbabilityTest, NoOverlapIsZero) {
  EXPECT_DOUBLE_EQ(RankCrackProbability(0, 100, 0, 0, 50, 2),
                   5.0 / 101.0);
  EXPECT_DOUBLE_EQ(RankCrackProbability(0, 100, 90, 0, 5, 2), 0.0);
}

TEST(SortingAttackTest, DenseDomainFullyCrackedInWorstCaseModel) {
  // The paper's attribute-2 situation: no discontinuity -> the worst-case
  // analytic model (hacker assumes an order-preserving release and knows
  // the true min/max) pins every value: 100%.
  const auto s = DenseSummary(0, 60);
  Rng rng(3);
  PiecewiseOptions options;
  options.min_breakpoints = 10;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  const auto result = SortingAttackRisk(s, f, /*rho=*/0.0);
  EXPECT_DOUBLE_EQ(result.analytic, 1.0);
  EXPECT_LE(result.risk, 1.0);
}

TEST(SortingAttackTest, MonotoneTransformOfDenseDomainStillCracked) {
  // Breakpoints cannot save an attribute with no discontinuities and no
  // monochromatic values — the released order equals the original order.
  const auto s = DenseSummary(100, 160);
  Rng rng(5);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseBP;
  options.min_breakpoints = 20;
  options.family.anti_monotone_prob = 0.0;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  EXPECT_DOUBLE_EQ(SortingAttackRisk(s, f, 0.0).risk, 1.0);
}

TEST(SortingAttackTest, DiscontinuitiesReduceAnalyticRisk) {
  const auto dense = DenseSummary(0, 99);
  const auto sparse = SparseSummary(0, 100);  // 100 values over width 298
  Rng rng(7);
  const auto fd =
      PiecewiseTransform::Create(dense, PiecewiseOptions{}, rng);
  const auto fs =
      PiecewiseTransform::Create(sparse, PiecewiseOptions{}, rng);
  const double rho_dense = 0.02 * 99;
  const double rho_sparse = 0.02 * 297;
  const auto rd = SortingAttackRisk(dense, fd, rho_dense);
  const auto rs = SortingAttackRisk(sparse, fs, rho_sparse);
  EXPECT_GT(rd.analytic, rs.analytic);
  EXPECT_LT(rs.analytic, 0.5);
}

TEST(SortingAttackTest, PermutationPiecesBlockSorting) {
  // All-monochromatic domain -> ChooseMaxMP uses bijections everywhere;
  // rank order in D' is scrambled, so rank-mapping cracks little.
  std::vector<ValueLabel> tuples;
  for (int64_t v = 0; v < 200; ++v) {
    tuples.push_back({static_cast<double>(v), v < 100 ? 0 : 1});
  }
  const auto s = AttributeSummary::FromTuples(std::move(tuples), 2);
  Rng rng(9);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseMaxMP;
  options.min_mono_width = 2;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  const auto result = SortingAttackRisk(s, f, /*rho=*/2.0);
  // Dense domain: the analytic bound says rank pins the value; but the
  // permutation breaks the rank->value correspondence, so the actual
  // deterministic attack cracks only a small fraction.
  EXPECT_LT(result.risk, 0.2);
}

TEST(SortingAttackTest, RhoWidensCracks) {
  const auto s = SparseSummary(0, 80);
  Rng rng(11);
  PiecewiseOptions options;
  options.family.anti_monotone_prob = 0.0;
  options.policy = BreakpointPolicy::kNone;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  const auto tight = SortingAttackRisk(s, f, 0.5);
  const auto loose = SortingAttackRisk(s, f, 20.0);
  EXPECT_LE(tight.risk, loose.risk);
  EXPECT_LE(tight.analytic, loose.analytic);
}

}  // namespace
}  // namespace popp
