#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "check/oracles.h"
#include "data/cols.h"
#include "data/dataset.h"
#include "fault/failpoint.h"
#include "fault/file.h"
#include "stream/chunk_io.h"
#include "stream/manifest.h"
#include "util/crc64.h"
#include "util/rng.h"
#include "util/status.h"

/// \file
/// The fault-injection framework and the hardened I/O layer it exercises:
/// failpoint determinism, atomic publication, torn writes, simulated-kill
/// debris, journal recovery — and the `fault_crash_safety` oracle swept
/// over hundreds of randomized schedules (the PR's acceptance bar).

namespace popp {
namespace {

using fault::AtomicFileWriter;
using fault::FaultSchedule;
using fault::InputFile;
using fault::Op;
using fault::OutputFile;
using fault::ScopedFaultInjection;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  auto bytes = fault::ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? bytes.value() : std::string();
}

// ----------------------------------------------------------- failpoint --

TEST(FailPointTest, DisabledInjectionIsInvisible) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::CrashActive());
  const std::string path = TempPath("fp_plain.txt");
  ASSERT_TRUE(fault::WriteFileAtomic(path, "hello\n").ok());
  EXPECT_EQ(Slurp(path), "hello\n");
}

TEST(FailPointTest, CountOnlyCountsWithoutFiring) {
  const std::string path = TempPath("fp_count.txt");
  size_t first = 0;
  {
    ScopedFaultInjection probe(FaultSchedule::CountOnly());
    ASSERT_TRUE(fault::WriteFileAtomic(path, "abc\n").ok());
    first = probe.ops_seen();
    EXPECT_FALSE(probe.fired());
  }
  ASSERT_GT(first, 0u);
  // Determinism: the identical operation sequence counts identically.
  {
    ScopedFaultInjection probe(FaultSchedule::CountOnly());
    ASSERT_TRUE(fault::WriteFileAtomic(path, "abc\n").ok());
    EXPECT_EQ(probe.ops_seen(), first);
  }
}

TEST(FailPointTest, ErrorAtFiresAtExactlyThatOperation) {
  const std::string path = TempPath("fp_error.txt");
  size_t total = 0;
  {
    ScopedFaultInjection probe(FaultSchedule::CountOnly());
    ASSERT_TRUE(fault::WriteFileAtomic(path, "abc\n").ok());
    total = probe.ops_seen();
  }
  for (size_t k = 0; k < total; ++k) {
    ScopedFaultInjection inject(FaultSchedule::ErrorAt(k));
    const Status s = fault::WriteFileAtomic(path, "abc\n");
    EXPECT_FALSE(s.ok()) << "op " << k << " did not propagate";
    EXPECT_TRUE(inject.fired()) << "op " << k;
    EXPECT_FALSE(inject.crash_triggered());
    EXPECT_NE(s.message().find("injected"), std::string::npos)
        << s.ToString();
  }
  // The schedule beyond the last op never fires; the write succeeds.
  {
    ScopedFaultInjection inject(FaultSchedule::ErrorAt(total));
    EXPECT_TRUE(fault::WriteFileAtomic(path, "abc\n").ok());
    EXPECT_FALSE(inject.fired());
  }
}

TEST(FailPointTest, CrashMakesEveryLaterOperationFail) {
  const std::string a = TempPath("fp_crash_a.txt");
  const std::string b = TempPath("fp_crash_b.txt");
  ScopedFaultInjection inject(FaultSchedule::CrashAt(0));
  EXPECT_FALSE(fault::WriteFileAtomic(a, "x\n").ok());
  EXPECT_TRUE(inject.crash_triggered());
  EXPECT_TRUE(fault::CrashActive());
  // A "dead process" cannot do unrelated I/O either.
  const Status later = fault::WriteFileAtomic(b, "y\n");
  EXPECT_FALSE(later.ok());
  EXPECT_NE(later.message().find("crash"), std::string::npos)
      << later.ToString();
}

// ----------------------------------------- delay (hang) injection mode --

TEST(FailPointDelayTest, DelayStallsTheHitOperationThenProceeds) {
  const std::string path = TempPath("fp_delay.txt");
  size_t total = 0;
  {
    ScopedFaultInjection probe(FaultSchedule::CountOnly());
    ASSERT_TRUE(fault::WriteFileAtomic(path, "abc\n").ok());
    total = probe.ops_seen();
  }
  for (size_t k = 0; k < total; ++k) {
    ScopedFaultInjection inject(FaultSchedule::DelayAt(k, 80));
    const auto start = std::chrono::steady_clock::now();
    const Status s = fault::WriteFileAtomic(path, "abc\n");
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    // Nothing fails — the injected symptom is pure latency.
    EXPECT_TRUE(s.ok()) << "op " << k << ": " << s.ToString();
    EXPECT_TRUE(inject.fired()) << "op " << k;
    EXPECT_FALSE(inject.crash_triggered());
    EXPECT_GE(elapsed.count(), 75) << "op " << k << " did not stall";
  }
  EXPECT_EQ(Slurp(path), "abc\n");
}

TEST(FailPointDelayTest, DelayBeyondTheOpRangeNeverStalls) {
  const std::string path = TempPath("fp_delay_miss.txt");
  size_t total = 0;
  {
    ScopedFaultInjection probe(FaultSchedule::CountOnly());
    ASSERT_TRUE(fault::WriteFileAtomic(path, "x\n").ok());
    total = probe.ops_seen();
  }
  ScopedFaultInjection inject(FaultSchedule::DelayAt(total, 30000));
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(fault::WriteFileAtomic(path, "x\n").ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(inject.fired());
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(FailPointDelayTest, OneShotTokenIsConsumedExactlyOnce) {
  const std::string path = TempPath("fp_token_target.txt");
  const std::string token = TempPath("fp_token");
  ASSERT_TRUE(fault::WriteFileAtomic(token, "armed").ok());
  {
    // Token present: the fault fires and eats the token.
    FaultSchedule schedule = FaultSchedule::ErrorAt(0);
    schedule.one_shot_token = token;
    ScopedFaultInjection inject(schedule);
    EXPECT_FALSE(fault::WriteFileAtomic(path, "a\n").ok());
    EXPECT_TRUE(inject.fired());
  }
  EXPECT_FALSE(fault::FileExists(token));
  {
    // Token gone: the same schedule is inert — this is what keeps a
    // restarted shard worker from re-firing an already-consumed fault.
    FaultSchedule schedule = FaultSchedule::ErrorAt(0);
    schedule.one_shot_token = token;
    ScopedFaultInjection inject(schedule);
    EXPECT_TRUE(fault::WriteFileAtomic(path, "a\n").ok());
    EXPECT_FALSE(inject.fired());
  }
  EXPECT_EQ(Slurp(path), "a\n");
}

TEST(FailPointDelayTest, ChildOnlyScheduleSkipsTheInstallerProcess) {
  // In the installing process a child_only schedule must neither stall
  // nor fail anything — it exists to hang forked workers, and this test
  // runs no fork.
  const std::string path = TempPath("fp_child_only.txt");
  FaultSchedule schedule = FaultSchedule::DelayAt(0, 30000);
  schedule.child_only = true;
  ScopedFaultInjection inject(schedule);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(fault::WriteFileAtomic(path, "c\n").ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(inject.fired());
  EXPECT_LT(elapsed.count(), 5000);
  EXPECT_EQ(Slurp(path), "c\n");
}

// ----------------------------------------------------------- file layer --

TEST(FaultFileTest, MissingFileIsNotFoundWithPath) {
  const std::string path = TempPath("does_not_exist_anywhere.bin");
  auto bytes = fault::ReadFileToString(path);
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kNotFound);
  EXPECT_NE(bytes.status().message().find(path), std::string::npos)
      << bytes.status().ToString();
}

TEST(FaultFileTest, WriteReadRoundTripIncludingBinaryBytes) {
  const std::string path = TempPath("fault_roundtrip.bin");
  std::string payload = "line\n";
  payload.push_back('\0');
  payload += "\xff\x7f tail";
  ASSERT_TRUE(fault::WriteFileAtomic(path, payload).ok());
  EXPECT_EQ(Slurp(path), payload);
  EXPECT_FALSE(fault::FileExists(path + ".tmp"));
}

TEST(FaultFileTest, FailedRewriteLeavesPreviousArtifactIntact) {
  const std::string path = TempPath("fault_keep_old.txt");
  ASSERT_TRUE(fault::WriteFileAtomic(path, "old bytes\n").ok());
  size_t total = 0;
  {
    ScopedFaultInjection probe(FaultSchedule::CountOnly());
    ASSERT_TRUE(fault::WriteFileAtomic(path + ".probe", "new bytes\n").ok());
    total = probe.ops_seen();
  }
  for (size_t k = 0; k < total; ++k) {
    ScopedFaultInjection inject(FaultSchedule::ErrorAt(k));
    ASSERT_FALSE(fault::WriteFileAtomic(path, "new bytes\n").ok());
  }
  // Every failure point left the old artifact untouched and no temp file.
  EXPECT_EQ(Slurp(path), "old bytes\n");
  EXPECT_FALSE(fault::FileExists(path + ".tmp"));
}

TEST(FaultFileTest, TornWritePersistsExactlyThePrefix) {
  const std::string path = TempPath("fault_torn.txt");
  std::remove(path.c_str());
  OutputFile out;
  ASSERT_TRUE(out.Open(path, /*append=*/false).ok());
  const std::string payload = "0123456789";
  {
    // Ops count from scope installation, so the write below is op 0.
    ScopedFaultInjection inject(FaultSchedule::ErrorAt(0, /*fraction=*/0.5));
    const Status s = out.Write(payload);
    ASSERT_FALSE(s.ok());
    ASSERT_TRUE(inject.fired());
  }
  out.CloseQuietly();
  EXPECT_EQ(Slurp(path), "01234");
}

TEST(FaultFileTest, AbandonedAtomicWriterNeverTouchesFinalPath) {
  const std::string path = TempPath("fault_abandon.txt");
  std::remove(path.c_str());
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("half-finished").ok());
    EXPECT_TRUE(fault::FileExists(writer.temp_path()));
    // No Commit: destruction abandons.
  }
  EXPECT_FALSE(fault::FileExists(path));
  EXPECT_FALSE(fault::FileExists(path + ".tmp"));
}

TEST(FaultFileTest, CrashLeavesTempDebrisButNoFinalFile) {
  const std::string path = TempPath("fault_crash_debris.txt");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  {
    // The injection scope outlives the writer (as it does around a whole
    // faulted release), so the writer destructs while the crash is active
    // and its cleanup is suppressed, exactly like a kill -9.
    ScopedFaultInjection inject(FaultSchedule::CrashAt(2));
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());                  // op 0
    ASSERT_TRUE(writer.Append("doomed bytes").ok());  // op 1
    ASSERT_FALSE(writer.Commit().ok());               // op 2: crash
    EXPECT_TRUE(inject.crash_triggered());
  }
  EXPECT_FALSE(fault::FileExists(path));
  EXPECT_TRUE(fault::FileExists(path + ".tmp"));
  std::remove((path + ".tmp").c_str());
}

TEST(FaultFileTest, InputFileShortReadsNeverForgeEof) {
  const std::string path = TempPath("fault_short_read.txt");
  ASSERT_TRUE(fault::WriteFileAtomic(path, "abcdefgh").ok());
  InputFile in;
  ASSERT_TRUE(in.Open(path).ok());
  std::string got;
  char buffer[3];
  for (;;) {
    auto n = in.Read(buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (n.value() == 0) break;
    got.append(buffer, n.value());
  }
  EXPECT_EQ(got, "abcdefgh");
}

// ------------------------------------------------------------- manifest --

TEST(ManifestTest, LoadParsesChunksAndCompleteMarker) {
  const std::string path = TempPath("manifest_ok.manifest");
  const std::string text =
      "popp-manifest v1\n"
      "fingerprint chunk_rows=10 seed=1\n"
      "chunk 0 10 120 " + Crc64Hex(Crc64("a")) + "\n" +
      "chunk 1 7 90 " + Crc64Hex(Crc64("b")) + "\n" +
      "complete 2 17 210\n";
  ASSERT_TRUE(fault::WriteFileAtomic(path, text).ok());
  auto manifest = stream::LoadManifest(path);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest.value().fingerprint, "chunk_rows=10 seed=1");
  ASSERT_EQ(manifest.value().chunks.size(), 2u);
  EXPECT_EQ(manifest.value().chunks[1].rows, 7u);
  EXPECT_EQ(manifest.value().chunks[1].bytes, 90u);
  EXPECT_TRUE(manifest.value().complete);
}

TEST(ManifestTest, TornTailLineIsDroppedLeniently) {
  const std::string path = TempPath("manifest_torn.manifest");
  const std::string text =
      "popp-manifest v1\n"
      "fingerprint fp\n"
      "chunk 0 10 120 " + Crc64Hex(Crc64("a")) + "\n" +
      "chunk 1 7 90 00ab";  // the crash tore this journal append
  ASSERT_TRUE(fault::WriteFileAtomic(path, text).ok());
  auto manifest = stream::LoadManifest(path);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest.value().chunks.size(), 1u);
  EXPECT_FALSE(manifest.value().complete);
}

TEST(ManifestTest, TruncatedHeaderIsDataLoss) {
  const std::string path = TempPath("manifest_bad.manifest");
  ASSERT_TRUE(fault::WriteFileAtomic(path, "popp-manifest v1\nfinge").ok());
  auto manifest = stream::LoadManifest(path);
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.status().code(), StatusCode::kDataLoss);
}

TEST(ManifestTest, ResumeMismatchIsActionableDataLoss) {
  const std::string path = TempPath("resume_mismatch_unit.csv");
  Dataset chunk({"x"}, {"a"});
  chunk.AddRow({1.0}, 0);
  // An interrupted run: one journaled chunk, no Close.
  std::remove(path.c_str());
  {
    stream::ResumableCsvChunkWriter writer(path, {}, /*resume=*/false);
    ASSERT_TRUE(writer.BeginStream("fp").ok());
    ASSERT_TRUE(writer.Append(chunk).ok());
  }
  // Resume claims the stream now produces a different row count for the
  // journaled chunk: the input changed, and the writer must say so.
  stream::ResumableCsvChunkWriter writer(path, {}, /*resume=*/true);
  ASSERT_TRUE(writer.BeginStream("fp").ok());
  ASSERT_EQ(writer.CompletedChunks(), 1u);
  const Status s = writer.NoteSkipped(0, /*rows=*/2);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("re-run without --resume"), std::string::npos)
      << s.ToString();
}

// ------------------------------------------------- the oracle, at scale --

Dataset SmallMixedData(uint64_t seed, size_t rows) {
  Rng rng(seed);
  Dataset d({"x", "y"}, {"a", "b", "c"});
  for (size_t i = 0; i < rows; ++i) {
    d.AddRow({static_cast<AttrValue>(rng.UniformInt(-40, 40)),
              rng.Uniform(0.0, 9.0)},
             static_cast<ClassId>(rng.UniformInt(0, 2)));
  }
  return d;
}

/// The acceptance bar: >= 200 randomized fault schedules, spread over
/// several datasets and chunk sizes, with zero tolerated failures. Each
/// schedule is one injected error/torn-write/kill plus one resumed run
/// compared by hash against the uninterrupted release.
TEST(FaultCrashSafetyTest, OracleGreenOverTwoHundredRandomSchedules) {
  struct Sweep {
    uint64_t seed;
    size_t rows;
    size_t chunk_rows;
    size_t schedules;
  };
  const Sweep sweeps[] = {
      {101, 90, 13, 70},
      {202, 60, 60, 70},
      {303, 120, 1, 35},
      {404, 75, 200, 35},  // one chunk holds the whole stream
  };
  size_t total = 0;
  for (const Sweep& sweep : sweeps) {
    const Dataset data = SmallMixedData(sweep.seed, sweep.rows);
    const check::OracleResult result = check::CheckFaultCrashSafety(
        data, sweep.seed, PiecewiseOptions{}, sweep.chunk_rows,
        sweep.schedules);
    EXPECT_TRUE(result.passed)
        << "seed " << sweep.seed << ": " << result.message;
    total += sweep.schedules;
  }
  EXPECT_GE(total, 200u);
}

// ------------------------------------------------- popp-cols integrity --

Dataset SmallColsData() {
  Dataset d({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 12; ++i) {
    d.AddRow({static_cast<double>(i % 4), i * 0.5},
             static_cast<ClassId>(i % 2));
  }
  return d;
}

/// The committed popp-cols corruption corpus: each file is the golden
/// container with one specific kind of damage, and the loader must refuse
/// it with kDataLoss and a diagnostic naming the damage.
TEST(ColsFaultTest, CorruptCorpusIsRejectedWithDataLoss) {
  struct CorruptCase {
    const char* file;
    const char* expect;  ///< required diagnostic substring
  };
  const CorruptCase cases[] = {
      // Cut mid-extent: the header's file_bytes can no longer be honest.
      {"cols_truncated.cols", "truncated container"},
      // Not a popp-cols container at all.
      {"cols_garbage_magic.cols", "expected 'poppcols' magic"},
      // One flipped bit in an extent footer: footer and directory disagree.
      {"cols_bitflip_footer.cols", "footer disagrees with the directory"},
      // Directory entry claims a payload overrunning the directory.
      {"cols_truncated_extent.cols", "payload extends past the directory"},
      // dict_size inflated with every checksum re-fixed: only the
      // structural dictionary bound can catch it.
      {"cols_torn_dict.cols", "dictionary extends past its extent"},
  };
  for (const auto& c : cases) {
    auto bytes = fault::ReadFileToString(std::string(POPP_TEST_DATA_DIR) +
                                         "/corrupt/" + c.file);
    ASSERT_TRUE(bytes.ok()) << c.file << ": " << bytes.status().ToString();
    auto parsed = ParseCols(bytes.value());
    ASSERT_FALSE(parsed.ok()) << c.file << " parsed despite the corruption";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << c.file;
    EXPECT_NE(parsed.status().message().find(c.expect), std::string::npos)
        << c.file << " diagnostic: " << parsed.status().message();
  }
}

TEST(ColsFaultTest, WriteColsIsAtomicUnderEveryInjectedError) {
  const std::string path = TempPath("cols_fault_atomic.cols");
  const Dataset d = SmallColsData();
  ASSERT_TRUE(WriteCols(d, path).ok());
  const std::string good = Slurp(path);
  size_t total = 0;
  {
    ScopedFaultInjection probe(FaultSchedule::CountOnly());
    ASSERT_TRUE(WriteCols(d, path + ".probe").ok());
    total = probe.ops_seen();
  }
  ASSERT_GT(total, 0u);
  for (size_t k = 0; k < total; ++k) {
    ScopedFaultInjection inject(FaultSchedule::ErrorAt(k));
    ASSERT_FALSE(WriteCols(d, path).ok()) << "op " << k;
    EXPECT_TRUE(inject.fired());
  }
  // Every failure point left the previous container intact (and loadable)
  // and no temp debris.
  EXPECT_EQ(Slurp(path), good);
  EXPECT_FALSE(fault::FileExists(path + ".tmp"));
  auto reloaded = ReadCols(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(reloaded.value() == d);
  std::remove(path.c_str());
  std::remove((path + ".probe").c_str());
}

TEST(ColsFaultTest, ReadColsSurfacesInjectedOpenErrors) {
  const std::string path = TempPath("cols_fault_read.cols");
  ASSERT_TRUE(WriteCols(SmallColsData(), path).ok());
  {
    ScopedFaultInjection inject(FaultSchedule::ErrorAt(0));
    auto loaded = ReadCols(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(inject.fired());
    EXPECT_NE(loaded.status().message().find("injected"), std::string::npos)
        << loaded.status().ToString();
  }
  {
    ScopedFaultInjection inject(FaultSchedule::CrashAt(0));
    auto loaded = ReadCols(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(inject.crash_triggered());
  }
  auto loaded = ReadCols(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace popp
