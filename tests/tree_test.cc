#include <gtest/gtest.h>

#include "data/dataset.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "tree/builder.h"
#include "tree/compare.h"
#include "tree/decision_tree.h"

namespace popp {
namespace {

Dataset XorLikeData() {
  // Needs both attributes: class = (x > 5) XOR (y > 5).
  Dataset d({"x", "y"}, {"n", "p"});
  d.AddRow({2, 2}, 0);
  d.AddRow({3, 8}, 1);
  d.AddRow({8, 3}, 1);
  d.AddRow({9, 9}, 0);
  d.AddRow({1, 1}, 0);
  d.AddRow({2, 9}, 1);
  d.AddRow({9, 2}, 1);
  d.AddRow({8, 8}, 0);
  return d;
}

// ------------------------------------------------------- tree structure --

TEST(DecisionTreeTest, SingleLeaf) {
  DecisionTree t;
  const NodeId leaf = t.AddLeaf(1, {0, 3});
  t.SetRoot(leaf);
  EXPECT_EQ(t.NumNodes(), 1u);
  EXPECT_EQ(t.NumLeaves(), 1u);
  EXPECT_EQ(t.NumInternal(), 0u);
  EXPECT_EQ(t.Depth(), 0u);
  EXPECT_EQ(t.Predict({42.0}), 1);
}

TEST(DecisionTreeTest, ManualTwoLevelTree) {
  DecisionTree t;
  const NodeId l = t.AddLeaf(0);
  const NodeId r = t.AddLeaf(1);
  const NodeId root = t.AddInternal(0, 5.0, l, r);
  t.SetRoot(root);
  EXPECT_EQ(t.Depth(), 1u);
  EXPECT_EQ(t.NumLeaves(), 2u);
  EXPECT_EQ(t.Predict({4.0}), 0);
  EXPECT_EQ(t.Predict({5.0}), 0);  // <= goes left
  EXPECT_EQ(t.Predict({6.0}), 1);
}

TEST(DecisionTreeTest, PathsEnumeration) {
  DecisionTree t;
  const NodeId ll = t.AddLeaf(0);
  const NodeId lr = t.AddLeaf(1);
  const NodeId l = t.AddInternal(1, 2.0, ll, lr);
  const NodeId r = t.AddLeaf(2);
  t.SetRoot(t.AddInternal(0, 5.0, l, r));
  const auto paths = t.Paths();
  ASSERT_EQ(paths.size(), 3u);
  // Left-left path: x <= 5 AND y <= 2 -> class 0.
  EXPECT_EQ(paths[0].length(), 2u);
  EXPECT_EQ(paths[0].conditions[0].op, PathCondition::Op::kLe);
  EXPECT_EQ(paths[0].conditions[1].attribute, 1u);
  EXPECT_EQ(paths[0].leaf_label, 0);
  // Left-right: x <= 5 AND y > 2 -> class 1.
  EXPECT_EQ(paths[1].conditions[1].op, PathCondition::Op::kGt);
  EXPECT_EQ(paths[1].leaf_label, 1);
  // Right: x > 5 -> class 2.
  EXPECT_EQ(paths[2].length(), 1u);
  EXPECT_EQ(paths[2].conditions[0].op, PathCondition::Op::kGt);
  EXPECT_EQ(paths[2].leaf_label, 2);
}

TEST(DecisionTreeTest, EmptyTreeBasics) {
  DecisionTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Depth(), 0u);
  EXPECT_TRUE(t.Paths().empty());
}

TEST(DecisionTreeTest, ToTextMentionsNamesAndThresholds) {
  const Dataset d = MakeFigure1Dataset();
  const DecisionTree t = DecisionTreeBuilder().Build(d);
  const std::string text = t.ToText(d.schema());
  EXPECT_NE(text.find("age"), std::string::npos);
  EXPECT_NE(text.find("High"), std::string::npos);
}

// ---------------------------------------------------------- tree builder --

TEST(BuilderTest, PureDataYieldsLeaf) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 0);
  const DecisionTree t = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(t.NumNodes(), 1u);
  EXPECT_EQ(t.node(t.root()).label, 0);
}

TEST(BuilderTest, PerfectlySeparableSingleSplit) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 0);
  d.AddRow({10}, 1);
  d.AddRow({11}, 1);
  const DecisionTree t = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(t.NumLeaves(), 2u);
  const auto& root = t.node(t.root());
  ASSERT_FALSE(root.is_leaf);
  EXPECT_EQ(root.attribute, 0u);
  EXPECT_DOUBLE_EQ(root.threshold, 6.0);  // midpoint of 2 and 10
  EXPECT_DOUBLE_EQ(t.Accuracy(d), 1.0);
}

TEST(BuilderTest, Figure1TreeShape) {
  const Dataset d = MakeFigure1Dataset();
  const DecisionTree t = DecisionTreeBuilder().Build(d);
  // Root splits age at (23+32)/2 = 27.5 (paper Figure 1d), then salary.
  const auto& root = t.node(t.root());
  ASSERT_FALSE(root.is_leaf);
  EXPECT_EQ(root.attribute, 0u);
  EXPECT_DOUBLE_EQ(root.threshold, 27.5);
  EXPECT_DOUBLE_EQ(t.Accuracy(d), 1.0);
}

TEST(BuilderTest, XorNeedsBothAttributes) {
  const Dataset d = XorLikeData();
  const DecisionTree t = DecisionTreeBuilder().Build(d);
  EXPECT_DOUBLE_EQ(t.Accuracy(d), 1.0);
  EXPECT_GE(t.Depth(), 2u);
}

TEST(BuilderTest, MaxDepthZeroForcesLeaf) {
  BuildOptions options;
  options.max_depth = 0;
  const Dataset d = XorLikeData();
  const DecisionTree t = DecisionTreeBuilder(options).Build(d);
  EXPECT_EQ(t.NumNodes(), 1u);
}

TEST(BuilderTest, MinSplitSizeStopsGrowth) {
  BuildOptions options;
  options.min_split_size = 100;
  const Dataset d = XorLikeData();
  const DecisionTree t = DecisionTreeBuilder(options).Build(d);
  EXPECT_EQ(t.NumNodes(), 1u);
}

TEST(BuilderTest, MinLeafSizeRespected) {
  BuildOptions options;
  options.min_leaf_size = 2;
  const Dataset d = XorLikeData();
  const DecisionTree t = DecisionTreeBuilder(options).Build(d);
  for (const auto& path : t.Paths()) {
    uint64_t total = 0;
    for (uint64_t c : t.node(path.leaf).class_hist) total += c;
    EXPECT_GE(total, 2u);
  }
}

TEST(BuilderTest, MajorityLabelAtForcedLeaf) {
  BuildOptions options;
  options.max_depth = 0;
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 1);
  d.AddRow({2}, 1);
  d.AddRow({3}, 0);
  const DecisionTree t = DecisionTreeBuilder(options).Build(d);
  EXPECT_EQ(t.node(t.root()).label, 1);
}

TEST(BuilderTest, MajorityTieBreaksToSmallestClassId) {
  EXPECT_EQ(MajorityClass({3, 3}), 0);
  EXPECT_EQ(MajorityClass({0, 2, 2}), 1);
  EXPECT_EQ(MajorityClass({}), kNoClass);
}

TEST(BuilderTest, GiniAndEntropyBothSeparate) {
  const Dataset d = XorLikeData();
  for (auto criterion : {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    BuildOptions options;
    options.criterion = criterion;
    const DecisionTree t = DecisionTreeBuilder(options).Build(d);
    EXPECT_DOUBLE_EQ(t.Accuracy(d), 1.0) << ToString(criterion);
  }
}

TEST(BuilderTest, CandidateModesAgree) {
  // Lemma 2: restricting the search to label-run boundaries must not
  // change the tree.
  Rng rng(5);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1500), rng);
  BuildOptions all;
  all.candidate_mode = BuildOptions::CandidateMode::kAllBoundaries;
  BuildOptions runs;
  runs.candidate_mode = BuildOptions::CandidateMode::kRunBoundaries;
  const DecisionTree ta = DecisionTreeBuilder(all).Build(d);
  const DecisionTree tr = DecisionTreeBuilder(runs).Build(d);
  EXPECT_TRUE(ExactlyEqual(ta, tr)) << DescribeDifference(ta, tr);
}

TEST(BuilderTest, FindBestSplitReportsBoundary) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({3}, 0);
  d.AddRow({7}, 1);
  const DecisionTreeBuilder builder;
  const SplitDecision split = builder.FindBestSplit(d, {0, 1, 2});
  ASSERT_TRUE(split.found);
  EXPECT_EQ(split.attribute, 0u);
  EXPECT_EQ(split.boundary_index, 2u);
  EXPECT_DOUBLE_EQ(split.left_max, 3.0);
  EXPECT_DOUBLE_EQ(split.right_min, 7.0);
  EXPECT_DOUBLE_EQ(split.threshold, 5.0);
  EXPECT_DOUBLE_EQ(split.impurity, 0.0);
}

TEST(BuilderTest, FindBestSplitNoneOnConstantAttribute) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({4}, 0);
  d.AddRow({4}, 1);
  const SplitDecision split =
      DecisionTreeBuilder().FindBestSplit(d, {0, 1});
  EXPECT_FALSE(split.found);
}

TEST(BuilderTest, AllAlgorithmsAgreeBitForBit) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    Rng rng(seed);
    const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1200), rng);
    for (auto criterion : {SplitCriterion::kGini, SplitCriterion::kEntropy,
                           SplitCriterion::kGainRatio}) {
      BuildOptions resort;
      resort.algorithm = BuildOptions::Algorithm::kResort;
      resort.criterion = criterion;
      const DecisionTree a = DecisionTreeBuilder(resort).Build(d);
      for (auto algorithm : {BuildOptions::Algorithm::kPresorted,
                             BuildOptions::Algorithm::kFrontier}) {
        BuildOptions other = resort;
        other.algorithm = algorithm;
        const DecisionTree b = DecisionTreeBuilder(other).Build(d);
        EXPECT_TRUE(ExactlyEqual(a, b))
            << ToString(criterion) << " seed " << seed << ": "
            << DescribeDifference(a, b);
      }
    }
  }
}

TEST(BuilderTest, AlgorithmsAgreeUnderDepthAndLeafLimits) {
  Rng rng(13);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1000), rng);
  BuildOptions resort;
  resort.algorithm = BuildOptions::Algorithm::kResort;
  resort.max_depth = 5;
  resort.min_leaf_size = 4;
  resort.min_split_size = 10;
  const DecisionTree reference = DecisionTreeBuilder(resort).Build(d);
  for (auto algorithm : {BuildOptions::Algorithm::kPresorted,
                         BuildOptions::Algorithm::kFrontier}) {
    BuildOptions other = resort;
    other.algorithm = algorithm;
    EXPECT_TRUE(
        ExactlyEqual(reference, DecisionTreeBuilder(other).Build(d)));
  }
}

TEST(BuilderTest, DeterministicAcrossCalls) {
  Rng rng(9);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1000), rng);
  const DecisionTree a = DecisionTreeBuilder().Build(d);
  const DecisionTree b = DecisionTreeBuilder().Build(d);
  EXPECT_TRUE(ExactlyEqual(a, b));
}

TEST(BuilderTest, AccuracyHighOnStructuredData) {
  Rng rng(11);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(2000), rng);
  const DecisionTree t = DecisionTreeBuilder().Build(d);
  // Mono pieces make a large share of values perfectly predictable.
  EXPECT_GT(t.Accuracy(d), 0.6);
}

// --------------------------------------------------------------- compare --

TEST(CompareTest, ExactEqualityDetectsThresholdChange) {
  const Dataset d = MakeFigure1Dataset();
  DecisionTree a = DecisionTreeBuilder().Build(d);
  DecisionTree b = DecisionTreeBuilder().Build(d);
  EXPECT_TRUE(ExactlyEqual(a, b));
  EXPECT_EQ(DescribeDifference(a, b), "");
  b.mutable_node(b.root()).threshold += 0.25;
  EXPECT_FALSE(ExactlyEqual(a, b));
  EXPECT_TRUE(StructurallyIdentical(a, b));
  EXPECT_NE(DescribeDifference(a, b).find("threshold"), std::string::npos);
}

TEST(CompareTest, StructuralDetectsLabelChange) {
  const Dataset d = MakeFigure1Dataset();
  DecisionTree a = DecisionTreeBuilder().Build(d);
  DecisionTree b = DecisionTreeBuilder().Build(d);
  // Flip the first leaf's label.
  for (size_t i = 0; i < b.NumNodes(); ++i) {
    auto& node = b.mutable_node(static_cast<NodeId>(i));
    if (node.is_leaf) {
      node.label = node.label == 0 ? 1 : 0;
      break;
    }
  }
  EXPECT_FALSE(StructurallyIdentical(a, b));
}

TEST(CompareTest, PartitionIdenticalToleratesThresholdJitter) {
  const Dataset d = MakeFigure1Dataset();
  DecisionTree a = DecisionTreeBuilder().Build(d);
  DecisionTree b = DecisionTreeBuilder().Build(d);
  // Nudge the root threshold within its inter-value gap (23, 32): still
  // the same partition of D.
  b.mutable_node(b.root()).threshold = 24.0;
  EXPECT_FALSE(ExactlyEqual(a, b));
  EXPECT_TRUE(PartitionIdenticalOn(a, b, d));
  // Push it past value 32: now the partition differs.
  b.mutable_node(b.root()).threshold = 33.0;
  EXPECT_FALSE(PartitionIdenticalOn(a, b, d));
}

TEST(CompareTest, CanonicalizeRestoresMidpoints) {
  const Dataset d = MakeFigure1Dataset();
  DecisionTree a = DecisionTreeBuilder().Build(d);
  DecisionTree b = DecisionTreeBuilder().Build(d);
  b.mutable_node(b.root()).threshold = 28.9;  // still within (23, 32)
  CanonicalizeThresholds(b, d);
  EXPECT_TRUE(ExactlyEqual(a, b)) << DescribeDifference(a, b);
}

TEST(CompareTest, EmptyTrees) {
  DecisionTree a, b;
  EXPECT_TRUE(ExactlyEqual(a, b));
  EXPECT_TRUE(StructurallyIdentical(a, b));
  DecisionTree c;
  c.SetRoot(c.AddLeaf(0));
  EXPECT_FALSE(ExactlyEqual(a, c));
}

}  // namespace
}  // namespace popp
