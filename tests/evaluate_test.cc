#include <gtest/gtest.h>

#include <set>

#include "synth/covtype_like.h"
#include "transform/plan.h"
#include "transform/tree_decode.h"
#include "tree/evaluate.h"

namespace popp {
namespace {

Dataset EvalData(size_t rows = 1200, uint64_t seed = 3) {
  Rng rng(seed);
  return GenerateCovtypeLike(SmallCovtypeSpec(rows), rng);
}

// ----------------------------------------------------------------- split --

TEST(SplitTest, PartitionsAllRowsExactlyOnce) {
  const Dataset d = EvalData();
  Rng rng(5);
  const TrainTestSplit split = StratifiedSplit(d, 0.25, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), d.NumRows());
  std::set<size_t> seen(split.train.begin(), split.train.end());
  seen.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(seen.size(), d.NumRows());
}

TEST(SplitTest, RespectsTestFraction) {
  const Dataset d = EvalData();
  Rng rng(7);
  const TrainTestSplit split = StratifiedSplit(d, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(split.test.size()) /
                  static_cast<double>(d.NumRows()),
              0.3, 0.02);
}

TEST(SplitTest, StratificationPreservesClassBalance) {
  const Dataset d = EvalData();
  Rng rng(9);
  const TrainTestSplit split = StratifiedSplit(d, 0.25, rng);
  const auto full_hist = d.ClassHistogram();
  std::vector<size_t> test_hist(d.NumClasses(), 0);
  for (size_t r : split.test) {
    test_hist[static_cast<size_t>(d.Label(r))]++;
  }
  for (size_t c = 0; c < d.NumClasses(); ++c) {
    if (full_hist[c] < 20) continue;
    const double full_share =
        static_cast<double>(full_hist[c]) / static_cast<double>(d.NumRows());
    const double test_share = static_cast<double>(test_hist[c]) /
                              static_cast<double>(split.test.size());
    EXPECT_NEAR(test_share, full_share, 0.03) << "class " << c;
  }
}

TEST(SplitTest, KFoldCoversEveryRowOnceAsTest) {
  const Dataset d = EvalData(600);
  Rng rng(11);
  const auto folds = StratifiedKFold(d, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> test_seen(d.NumRows(), 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), d.NumRows());
    for (size_t r : fold.test) test_seen[r]++;
  }
  for (size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(test_seen[r], 1) << "row " << r;
  }
}

TEST(SplitTest, RejectsBadParameters) {
  const Dataset d = EvalData(600);
  Rng rng(13);
  EXPECT_DEATH(StratifiedSplit(d, 0.0, rng), "test_fraction");
  EXPECT_DEATH(StratifiedKFold(d, 1, rng), "k >= 2");
}

// ------------------------------------------------------------- confusion --

TEST(ConfusionTest, CountsAndMetrics) {
  ConfusionMatrix m(2);
  // 8 true negatives, 2 false positives, 1 false negative, 9 true pos.
  for (int i = 0; i < 8; ++i) m.Add(0, 0);
  for (int i = 0; i < 2; ++i) m.Add(0, 1);
  m.Add(1, 0);
  for (int i = 0; i < 9; ++i) m.Add(1, 1);
  EXPECT_EQ(m.Total(), 20u);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.Recall(0), 0.8);
  EXPECT_DOUBLE_EQ(m.Recall(1), 0.9);
  EXPECT_DOUBLE_EQ(m.Precision(1), 9.0 / 11.0);
}

TEST(ConfusionTest, EmptyClassMetricsAreZero) {
  ConfusionMatrix m(3);
  m.Add(0, 0);
  EXPECT_DOUBLE_EQ(m.Recall(2), 0.0);
  EXPECT_DOUBLE_EQ(m.Precision(2), 0.0);
}

TEST(ConfusionTest, RendersWithClassNames) {
  const Dataset d = EvalData(300);
  ConfusionMatrix m(d.NumClasses());
  m.Add(0, 1);
  const std::string text = m.ToString(d.schema());
  EXPECT_NE(text.find("recall"), std::string::npos);
  EXPECT_NE(text.find(d.schema().ClassName(0)), std::string::npos);
}

// --------------------------------------------------------------- evaluate --

TEST(EvaluateTest, HoldoutAccuracyIsReasonable) {
  const Dataset d = EvalData(2000);
  Rng rng(17);
  const TrainTestSplit split = StratifiedSplit(d, 0.3, rng);
  const DecisionTree tree =
      DecisionTreeBuilder().Build(d.Select(split.train));
  const ConfusionMatrix matrix = Evaluate(tree, d, split.test);
  EXPECT_EQ(matrix.Total(), split.test.size());
  // Structured data: held-out accuracy comfortably above chance.
  EXPECT_GT(matrix.Accuracy(), 0.5);
}

TEST(EvaluateTest, CrossValidationAggregates) {
  const Dataset d = EvalData(900);
  Rng rng(19);
  const CrossValidationResult cv =
      CrossValidate(d, BuildOptions{}, 4, rng);
  ASSERT_EQ(cv.fold_accuracies.size(), 4u);
  double sum = 0;
  for (double a : cv.fold_accuracies) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    sum += a;
  }
  EXPECT_DOUBLE_EQ(cv.mean_accuracy, sum / 4.0);
}

TEST(EvaluateTest, DecodedTreeGeneralizesIdentically) {
  // The point of the guarantee: the custodian's decoded tree behaves on
  // held-out data exactly like the tree she would have mined herself.
  const Dataset d = EvalData(1500, 23);
  Rng rng(29);
  const TrainTestSplit split = StratifiedSplit(d, 0.3, rng);
  const Dataset train = d.Select(split.train);

  Rng plan_rng(31);
  PiecewiseOptions options;
  options.min_breakpoints = 12;
  const TransformPlan plan = TransformPlan::Create(train, options, plan_rng);
  const DecisionTreeBuilder builder;
  const DecisionTree direct = builder.Build(train);
  const DecisionTree decoded = DecodeTreeWithData(
      builder.Build(plan.EncodeDataset(train)), plan, train);

  const ConfusionMatrix m_direct = Evaluate(direct, d, split.test);
  const ConfusionMatrix m_decoded = Evaluate(decoded, d, split.test);
  EXPECT_DOUBLE_EQ(m_direct.Accuracy(), m_decoded.Accuracy());
  for (size_t a = 0; a < d.NumClasses(); ++a) {
    for (size_t p = 0; p < d.NumClasses(); ++p) {
      EXPECT_EQ(m_direct.Count(static_cast<ClassId>(a),
                               static_cast<ClassId>(p)),
                m_decoded.Count(static_cast<ClassId>(a),
                                static_cast<ClassId>(p)));
    }
  }
}

}  // namespace
}  // namespace popp
