#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/custodian.h"
#include "core/recipe.h"
#include "core/report.h"
#include "parallel/exec_policy.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "risk/domain_risk.h"
#include "risk/trials.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/serialize.h"
#include "tree/builder.h"
#include "tree/compare.h"

namespace popp {
namespace {

// ---------------------------------------------------------------------------
// ExecPolicy

TEST(ExecPolicyTest, DefaultIsSerial) {
  const ExecPolicy policy;
  EXPECT_EQ(policy.ResolvedThreads(), 1u);
  EXPECT_TRUE(policy.IsSerial());
}

TEST(ExecPolicyTest, ZeroResolvesToHardwareConcurrency) {
  const ExecPolicy policy = ExecPolicy::Hardware();
  EXPECT_GE(policy.ResolvedThreads(), 1u);
}

TEST(ExecPolicyTest, ExplicitCountIsKept) {
  const ExecPolicy policy{7};
  EXPECT_EQ(policy.ResolvedThreads(), 7u);
  EXPECT_FALSE(policy.IsSerial());
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ForEachRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ForEach(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.ForEach(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ForEach(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, SubmitReturnsAWaitableFuture) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  auto f1 = pool.Submit([&] { done.fetch_add(1); });
  auto f2 = pool.Submit([&] { done.fetch_add(1); });
  f1.get();
  f2.get();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPoolTest, SubmitFutureRethrowsTaskException) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ForEachRethrowsSmallestFailingIndex) {
  ThreadPool pool(4);
  // Several indices fail; the rethrown exception must deterministically be
  // the smallest one's, no matter which worker hit it first.
  for (int repeat = 0; repeat < 10; ++repeat) {
    try {
      pool.ForEach(64, [&](size_t i) {
        if (i % 7 == 3) {  // fails at 3, 10, 17, ...
          throw std::runtime_error("failed at " + std::to_string(i));
        }
      });
      FAIL() << "ForEach did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failed at 3");
    }
  }
}

TEST(ThreadPoolTest, ForEachFinishesAllBodiesDespiteFailure) {
  ThreadPool pool(4);
  constexpr size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  try {
    pool.ForEach(kN, [&](size_t i) {
      hits[i].fetch_add(1);
      if (i == 0) throw std::runtime_error("early");
    });
    FAIL() << "ForEach did not throw";
  } catch (const std::runtime_error&) {
  }
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedForEachRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  pool.ForEach(4, [&](size_t) {
    // A worker iterating on its own pool must not block on the queue.
    pool.ForEach(8, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 4 * 8);
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(1);  // a single worker deadlocks unless submit inlines
  std::atomic<bool> inner_ran{false};
  pool.Submit([&] { pool.Submit([&] { inner_ran = true; }).get(); }).get();
  EXPECT_TRUE(inner_ran.load());
}

TEST(ParallelForTest, SerialPolicyNeedsNoPool) {
  std::vector<int> out(10, 0);
  ParallelFor(ExecPolicy::Serial(), out.size(), [&](size_t i) {
    out[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, MapReduceFoldsInIndexOrder) {
  // A non-commutative fold exposes any out-of-order reduction.
  const std::string serial = ParallelMapReduce<std::string>(
      ExecPolicy::Serial(), 8, std::string(),
      [](size_t i) { return std::string(1, static_cast<char>('a' + i)); },
      [](std::string acc, std::string x) { return acc + x; });
  const std::string parallel = ParallelMapReduce<std::string>(
      ExecPolicy{4}, 8, std::string(),
      [](size_t i) { return std::string(1, static_cast<char>('a' + i)); },
      [](std::string acc, std::string x) { return acc + x; });
  EXPECT_EQ(serial, "abcdefgh");
  EXPECT_EQ(parallel, serial);
}

// ---------------------------------------------------------------------------
// Serial-vs-parallel bit equality of the wired subsystems

constexpr size_t kThreadCounts[] = {1, 2, 7};

Dataset TestData(size_t rows = 400, uint64_t seed = 77) {
  Rng rng(seed);
  return GenerateCovtypeLike(SmallCovtypeSpec(rows), rng);
}

TEST(ParallelEqualityTest, PlanSelectionIsBitIdentical) {
  const Dataset data = TestData();
  PiecewiseOptions options;
  options.min_breakpoints = 12;
  Rng serial_rng(31);
  const TransformPlan serial =
      TransformPlan::Create(data, options, serial_rng);
  const std::string serial_key = SerializePlan(serial);
  for (size_t threads : kThreadCounts) {
    Rng rng(31);
    const TransformPlan parallel =
        TransformPlan::Create(data, options, rng, ExecPolicy{threads});
    EXPECT_EQ(SerializePlan(parallel), serial_key)
        << "plan differs at " << threads << " threads";
    // The caller's generator is advanced identically (by exactly one fork)
    // regardless of the thread count.
    Rng reference(31);
    reference.Fork();
    EXPECT_EQ(rng.Next(), reference.Next());
  }
}

TEST(ParallelEqualityTest, CustodianPipelineIsBitIdentical) {
  const Dataset data = TestData();
  CustodianOptions serial_options;
  serial_options.seed = 5;
  serial_options.transform.min_breakpoints = 8;
  const Custodian serial(data, serial_options);
  const Dataset serial_release = serial.Release();
  const DecisionTree serial_direct = serial.MineDirectly();
  const DecisionTree serial_mined = serial.MineReleased();
  for (size_t threads : kThreadCounts) {
    CustodianOptions options = serial_options;
    options.exec = ExecPolicy{threads};
    const Custodian parallel(data, options);
    EXPECT_EQ(parallel.Release(), serial_release)
        << "release differs at " << threads << " threads";
    EXPECT_TRUE(ExactlyEqual(parallel.MineDirectly(), serial_direct))
        << "direct tree differs at " << threads << " threads";
    EXPECT_TRUE(ExactlyEqual(parallel.MineReleased(), serial_mined))
        << "mined tree differs at " << threads << " threads";
    std::string detail;
    EXPECT_TRUE(parallel.VerifyNoOutcomeChange(&detail)) << detail;
  }
}

TEST(ParallelEqualityTest, TreeBuildIsBitIdenticalForAllAlgorithms) {
  const Dataset data = TestData(3000, 3);
  for (auto algorithm : {BuildOptions::Algorithm::kPresorted,
                         BuildOptions::Algorithm::kResort,
                         BuildOptions::Algorithm::kFrontier}) {
    BuildOptions options;
    options.algorithm = algorithm;
    const DecisionTree serial = DecisionTreeBuilder(options).Build(data);
    for (size_t threads : kThreadCounts) {
      const DecisionTree parallel =
          DecisionTreeBuilder(options, ExecPolicy{threads}).Build(data);
      EXPECT_TRUE(ExactlyEqual(serial, parallel))
          << "tree differs at " << threads << " threads — "
          << DescribeDifference(serial, parallel);
    }
  }
}

TEST(ParallelEqualityTest, CollectTrialsIsBitIdentical) {
  const auto trial = [](Rng& rng) {
    double acc = 0;
    for (int i = 0; i < 50; ++i) acc += rng.Gaussian();
    return acc;
  };
  const std::vector<double> serial = CollectTrials(33, 99, trial);
  for (size_t threads : kThreadCounts) {
    EXPECT_EQ(CollectTrials(33, 99, trial, ExecPolicy{threads}), serial)
        << "trial vector differs at " << threads << " threads";
  }
  // The compatibility spelling routes to the same streams.
  EXPECT_EQ(CollectTrialsParallel(33, 99, trial, 3), serial);
}

TEST(ParallelEqualityTest, MedianDomainRiskIsBitIdentical) {
  const Dataset data = TestData(250, 11);
  const AttributeSummary summary = AttributeSummary::FromDataset(data, 0);
  DomainRiskExperiment experiment;
  experiment.num_trials = 15;
  experiment.knowledge.num_good = 4;
  const double serial = MedianDomainRisk(summary, experiment);
  for (size_t threads : kThreadCounts) {
    DomainRiskExperiment parallel = experiment;
    parallel.exec = ExecPolicy{threads};
    EXPECT_EQ(MedianDomainRisk(summary, parallel), serial)
        << "median differs at " << threads << " threads";
  }
}

TEST(ParallelEqualityTest, RiskReportIsBitIdentical) {
  const Dataset data = TestData(200, 21);
  CustodianOptions options;
  options.seed = 4;
  const Custodian custodian(data, options);
  ReportOptions report_options;
  report_options.num_trials = 5;
  const auto serial = BuildRiskReport(custodian, report_options);
  const std::string serial_text = RenderRiskReport(serial);
  for (size_t threads : {size_t{3}, size_t{7}}) {
    ReportOptions parallel = report_options;
    parallel.exec = ExecPolicy{threads};
    EXPECT_EQ(RenderRiskReport(BuildRiskReport(custodian, parallel)),
              serial_text)
        << "report differs at " << threads << " threads";
  }
}

TEST(ParallelEqualityTest, HardeningDecisionsAreBitIdentical) {
  const Dataset data = TestData(200, 23);
  HardeningTargets targets;
  targets.trials = 5;
  targets.max_breakpoints = 32;
  const auto serial =
      RecommendPerAttributeOptions(data, PiecewiseOptions{}, targets, 2);
  const std::string serial_text = RenderHardeningDecisions(data, serial);
  HardeningTargets parallel = targets;
  parallel.exec = ExecPolicy{5};
  const auto decisions =
      RecommendPerAttributeOptions(data, PiecewiseOptions{}, parallel, 2);
  EXPECT_EQ(RenderHardeningDecisions(data, decisions), serial_text);
}

// ---------------------------------------------------------------------------
// The indexed-stream contract of the trial harness (regression: trials
// used to share one mutating generator, so a trial's stream depended on
// every earlier fork).

TEST(TrialStreamTest, TrialOutputIsIndependentOfTrialCount) {
  const auto trial = [](Rng& rng) { return rng.Uniform01(); };
  const std::vector<double> one = CollectTrials(1, 17, trial);
  const std::vector<double> ten = CollectTrials(10, 17, trial);
  const std::vector<double> hundred = CollectTrials(100, 17, trial);
  EXPECT_EQ(one[0], ten[0]);
  EXPECT_EQ(ten[0], hundred[0]);
  for (size_t t = 0; t < ten.size(); ++t) {
    EXPECT_EQ(ten[t], hundred[t]) << "trial " << t;
  }
}

TEST(TrialStreamTest, DistinctTrialsDrawDistinctStreams) {
  const auto trial = [](Rng& rng) { return rng.Uniform01(); };
  const std::vector<double> values = CollectTrials(50, 123, trial);
  for (size_t a = 0; a < values.size(); ++a) {
    for (size_t b = a + 1; b < values.size(); ++b) {
      EXPECT_NE(values[a], values[b]) << "trials " << a << " and " << b;
    }
  }
}

}  // namespace
}  // namespace popp
