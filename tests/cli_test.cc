#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/cli.h"
#include "data/csv.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "tree/compare.h"
#include "tree/serialize.h"
#include "util/rng.h"

namespace popp {
namespace {

/// Runs the CLI and captures its streams.
struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunPopp(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/popp_cli_" + name;
}

class CliTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    data_ = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
    csv_path_ = TempPath("data.csv");
    ASSERT_TRUE(WriteCsv(data_, csv_path_).ok());
  }

  Dataset data_;
  std::string csv_path_;
};

TEST(CliBasicsTest, NoArgsPrintsUsageAndFails) {
  const CliResult r = RunPopp({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliBasicsTest, HelpSucceeds) {
  const CliResult r = RunPopp({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("encode"), std::string::npos);
}

TEST(CliBasicsTest, UnknownCommandFails) {
  const CliResult r = RunPopp({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliBasicsTest, MissingFileReported) {
  const CliResult r = RunPopp({"verify", "/nonexistent/data.csv"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("IO_ERROR"), std::string::npos);
}

TEST(CliBasicsTest, BadFlagValueReported) {
  const CliResult r = RunPopp({"mine", "in.csv", "out.tree", "--criterion",
                           "id3"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown --criterion"), std::string::npos);
}

TEST_F(CliTest, VerifyPasses) {
  const CliResult r = RunPopp({"verify", csv_path_, "--seed", "9"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("VERIFIED"), std::string::npos);
}

TEST_F(CliTest, FullEncodeMineDecodePipeline) {
  const std::string released = TempPath("released.csv");
  const std::string key = TempPath("plan.key");
  const std::string mined = TempPath("mined.tree");
  const std::string decoded = TempPath("decoded.tree");
  const std::string direct = TempPath("direct.tree");

  // Custodian encodes.
  CliResult r = RunPopp({"encode", csv_path_, released, key, "--seed", "3"});
  ASSERT_EQ(r.code, 0) << r.err;

  // Provider mines the released data.
  r = RunPopp({"mine", released, mined});
  ASSERT_EQ(r.code, 0) << r.err;

  // Custodian decodes with her key + original data.
  r = RunPopp({"decode", mined, key, csv_path_, decoded});
  ASSERT_EQ(r.code, 0) << r.err;

  // Reference: mining the original directly.
  r = RunPopp({"mine", csv_path_, direct});
  ASSERT_EQ(r.code, 0) << r.err;

  auto decoded_tree = LoadTree(decoded);
  auto direct_tree = LoadTree(direct);
  ASSERT_TRUE(decoded_tree.ok());
  ASSERT_TRUE(direct_tree.ok());
  EXPECT_TRUE(ExactlyEqual(direct_tree.value(), decoded_tree.value()))
      << DescribeDifference(direct_tree.value(), decoded_tree.value());
}

TEST_F(CliTest, EncodedCsvDiffersEverywhere) {
  const std::string released = TempPath("released2.csv");
  const std::string key = TempPath("plan2.key");
  ASSERT_EQ(RunPopp({"encode", csv_path_, released, key}).code, 0);
  auto reloaded = ReadCsv(released);
  ASSERT_TRUE(reloaded.ok());
  const Dataset& enc = reloaded.value();
  ASSERT_EQ(enc.NumRows(), data_.NumRows());
  size_t same = 0;
  for (size_t rix = 0; rix < data_.NumRows(); ++rix) {
    for (size_t a = 0; a < data_.NumAttributes(); ++a) {
      if (enc.Value(rix, a) == data_.Value(rix, a)) ++same;
    }
  }
  EXPECT_EQ(same, 0u);
}

TEST_F(CliTest, MineSupportsCriteriaAndPruning) {
  const std::string tree_path = TempPath("pruned.tree");
  const CliResult r = RunPopp({"mine", csv_path_, tree_path, "--criterion",
                           "gainratio", "--prune", "--max-depth", "6"});
  ASSERT_EQ(r.code, 0) << r.err;
  auto tree = LoadTree(tree_path);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree.value().Depth(), 6u);
}

TEST_F(CliTest, ReportPrintsAllAttributes) {
  const CliResult r = RunPopp({"report", csv_path_, "--trials", "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (size_t a = 0; a < data_.NumAttributes(); ++a) {
    EXPECT_NE(r.out.find(data_.schema().AttributeName(a)),
              std::string::npos);
  }
}

TEST_F(CliTest, HardenPrintsRecommendations) {
  const CliResult r = RunPopp({"harden", csv_path_, "--trials", "3",
                               "--max-risk", "90"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Hardening recommendations"), std::string::npos);
  for (size_t a = 0; a < data_.NumAttributes(); ++a) {
    EXPECT_NE(r.out.find(data_.schema().AttributeName(a)),
              std::string::npos);
  }
}

TEST_F(CliTest, VerifyWithAntiMonotoneAndEntropy) {
  const CliResult r = RunPopp({"verify", csv_path_, "--seed", "11", "--policy",
                           "bp", "--criterion", "entropy"});
  EXPECT_EQ(r.code, 0) << r.err;
}

}  // namespace
}  // namespace popp
