#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "core/cli.h"
#include "data/csv.h"
#include "fault/failpoint.h"
#include "fault/file.h"
#include "serve/server.h"
#include "shard/meta_manifest.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "tree/compare.h"
#include "tree/serialize.h"
#include "util/integrity.h"
#include "util/rng.h"

namespace popp {
namespace {

/// Runs the CLI and captures its streams.
struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunPopp(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/popp_cli_" + name;
}

class CliTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    data_ = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
    csv_path_ = TempPath("data.csv");
    ASSERT_TRUE(WriteCsv(data_, csv_path_).ok());
  }

  Dataset data_;
  std::string csv_path_;
};

TEST(CliBasicsTest, NoArgsPrintsUsageAndFails) {
  const CliResult r = RunPopp({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliBasicsTest, HelpSucceeds) {
  const CliResult r = RunPopp({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("encode"), std::string::npos);
}

TEST(CliBasicsTest, UnknownCommandFails) {
  const CliResult r = RunPopp({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliBasicsTest, MissingFileReported) {
  const CliResult r = RunPopp({"verify", "/nonexistent/data.csv"});
  EXPECT_EQ(r.code, 3);  // exit taxonomy: 3 = file/I-O error
  EXPECT_NE(r.err.find("NOT_FOUND"), std::string::npos);
  EXPECT_NE(r.err.find("/nonexistent/data.csv"), std::string::npos);
}

TEST(CliBasicsTest, BadFlagValueReported) {
  const CliResult r = RunPopp({"mine", "in.csv", "out.tree", "--criterion",
                           "id3"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown --criterion"), std::string::npos);
}

TEST_F(CliTest, VerifyPasses) {
  const CliResult r = RunPopp({"verify", csv_path_, "--seed", "9"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("VERIFIED"), std::string::npos);
}

TEST_F(CliTest, FullEncodeMineDecodePipeline) {
  const std::string released = TempPath("released.csv");
  const std::string key = TempPath("plan.key");
  const std::string mined = TempPath("mined.tree");
  const std::string decoded = TempPath("decoded.tree");
  const std::string direct = TempPath("direct.tree");

  // Custodian encodes.
  CliResult r = RunPopp({"encode", csv_path_, released, key, "--seed", "3"});
  ASSERT_EQ(r.code, 0) << r.err;

  // Provider mines the released data.
  r = RunPopp({"mine", released, mined});
  ASSERT_EQ(r.code, 0) << r.err;

  // Custodian decodes with her key + original data.
  r = RunPopp({"decode", mined, key, csv_path_, decoded});
  ASSERT_EQ(r.code, 0) << r.err;

  // Reference: mining the original directly.
  r = RunPopp({"mine", csv_path_, direct});
  ASSERT_EQ(r.code, 0) << r.err;

  auto decoded_tree = LoadTree(decoded);
  auto direct_tree = LoadTree(direct);
  ASSERT_TRUE(decoded_tree.ok());
  ASSERT_TRUE(direct_tree.ok());
  EXPECT_TRUE(ExactlyEqual(direct_tree.value(), decoded_tree.value()))
      << DescribeDifference(direct_tree.value(), decoded_tree.value());
}

TEST_F(CliTest, NoCompiledFlagProducesIdenticalRelease) {
  // --no-compiled switches encode to the interpreted path; the compiled
  // kernels are bit-identical, so both releases must match byte for byte.
  const std::string compiled_csv = TempPath("rel_compiled.csv");
  const std::string compiled_key = TempPath("rel_compiled.key");
  const std::string interp_csv = TempPath("rel_interp.csv");
  const std::string interp_key = TempPath("rel_interp.key");
  ASSERT_EQ(RunPopp({"encode", csv_path_, compiled_csv, compiled_key,
                     "--seed", "11"})
                .code,
            0);
  const CliResult r = RunPopp({"encode", csv_path_, interp_csv, interp_key,
                               "--seed", "11", "--no-compiled"});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
  };
  EXPECT_EQ(slurp(compiled_csv), slurp(interp_csv));
  EXPECT_EQ(slurp(compiled_key), slurp(interp_key));

  // The flag is also accepted by verify.
  const CliResult v =
      RunPopp({"verify", csv_path_, "--seed", "9", "--no-compiled"});
  EXPECT_EQ(v.code, 0) << v.err;
}

TEST_F(CliTest, EncodedCsvDiffersEverywhere) {
  const std::string released = TempPath("released2.csv");
  const std::string key = TempPath("plan2.key");
  ASSERT_EQ(RunPopp({"encode", csv_path_, released, key}).code, 0);
  auto reloaded = ReadCsv(released);
  ASSERT_TRUE(reloaded.ok());
  const Dataset& enc = reloaded.value();
  ASSERT_EQ(enc.NumRows(), data_.NumRows());
  size_t same = 0;
  for (size_t rix = 0; rix < data_.NumRows(); ++rix) {
    for (size_t a = 0; a < data_.NumAttributes(); ++a) {
      if (enc.Value(rix, a) == data_.Value(rix, a)) ++same;
    }
  }
  EXPECT_EQ(same, 0u);
}

TEST_F(CliTest, MineSupportsCriteriaAndPruning) {
  const std::string tree_path = TempPath("pruned.tree");
  const CliResult r = RunPopp({"mine", csv_path_, tree_path, "--criterion",
                           "gainratio", "--prune", "--max-depth", "6"});
  ASSERT_EQ(r.code, 0) << r.err;
  auto tree = LoadTree(tree_path);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree.value().Depth(), 6u);
}

TEST_F(CliTest, ReportPrintsAllAttributes) {
  const CliResult r = RunPopp({"report", csv_path_, "--trials", "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (size_t a = 0; a < data_.NumAttributes(); ++a) {
    EXPECT_NE(r.out.find(data_.schema().AttributeName(a)),
              std::string::npos);
  }
}

TEST_F(CliTest, HardenPrintsRecommendations) {
  const CliResult r = RunPopp({"harden", csv_path_, "--trials", "3",
                               "--max-risk", "90"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Hardening recommendations"), std::string::npos);
  for (size_t a = 0; a < data_.NumAttributes(); ++a) {
    EXPECT_NE(r.out.find(data_.schema().AttributeName(a)),
              std::string::npos);
  }
}

TEST_F(CliTest, VerifyWithAntiMonotoneAndEntropy) {
  const CliResult r = RunPopp({"verify", csv_path_, "--seed", "11", "--policy",
                           "bp", "--criterion", "entropy"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST_F(CliTest, StreamReleaseMatchesEncodeBytes) {
  const std::string batch_csv = TempPath("batch.csv");
  const std::string batch_key = TempPath("batch.key");
  const std::string stream_csv = TempPath("stream.csv");
  const std::string stream_key = TempPath("stream.key");
  ASSERT_EQ(RunPopp({"encode", csv_path_, batch_csv, batch_key, "--seed",
                     "9"})
                .code,
            0);
  const CliResult r =
      RunPopp({"stream-release", csv_path_, stream_csv, stream_key, "--seed",
               "9", "--chunk-rows", "41", "--threads", "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("streamed 600 rows"), std::string::npos) << r.out;
  std::ifstream a(batch_csv, std::ios::binary), b(stream_csv,
                                                  std::ios::binary);
  const std::string batch_bytes((std::istreambuf_iterator<char>(a)),
                                std::istreambuf_iterator<char>());
  const std::string stream_bytes((std::istreambuf_iterator<char>(b)),
                                 std::istreambuf_iterator<char>());
  EXPECT_EQ(batch_bytes, stream_bytes);
  std::ifstream ka(batch_key, std::ios::binary), kb(stream_key,
                                                    std::ios::binary);
  const std::string key_a((std::istreambuf_iterator<char>(ka)),
                          std::istreambuf_iterator<char>());
  const std::string key_b((std::istreambuf_iterator<char>(kb)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(key_a, key_b);
}

TEST_F(CliTest, StreamReleaseRejectErrorIsActionable) {
  // A prefix fit on the first 100 rows leaves the tail's unseen values
  // out-of-domain; the default reject policy must name the attribute, the
  // offending value, the fitted domain, and the active policy.
  const CliResult r =
      RunPopp({"stream-release", csv_path_, TempPath("rej.csv"),
               TempPath("rej.key"), "--seed", "9", "--chunk-rows", "50",
               "--fit-rows", "100"});
  ASSERT_EQ(r.code, 1) << r.out;
  EXPECT_NE(r.err.find("out-of-domain value"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("attribute '"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("fitted domain ["), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("ood-policy: reject"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("--ood-policy clamp"), std::string::npos) << r.err;
}

TEST_F(CliTest, StreamReleaseClampToleratesUnseenTail) {
  const CliResult r =
      RunPopp({"stream-release", csv_path_, TempPath("clamp.csv"),
               TempPath("clamp.key"), "--seed", "9", "--chunk-rows", "50",
               "--fit-rows", "100", "--ood-policy", "clamp"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("out-of-domain values:"), std::string::npos);
}

TEST(CliBasicsTest, StreamReleaseBadOodPolicyReported) {
  const CliResult r = RunPopp({"stream-release", "in.csv", "out.csv",
                               "key.out", "--ood-policy", "ignore"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown --ood-policy"), std::string::npos);
}

TEST(CliBasicsTest, StreamReleaseZeroChunkRowsReported) {
  const CliResult r = RunPopp({"stream-release", "in.csv", "out.csv",
                               "key.out", "--chunk-rows", "0"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--chunk-rows"), std::string::npos);
}

// ------------------------------------------------------- shard-release --

std::string ReadAll(const std::string& path) {
  auto bytes = fault::ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? bytes.value() : std::string();
}

TEST_F(CliTest, ShardReleaseConcatenationMatchesStreamRelease) {
  const std::string stream_csv = TempPath("sr_stream.csv");
  const std::string stream_key = TempPath("sr_stream.key");
  ASSERT_EQ(RunPopp({"stream-release", csv_path_, stream_csv, stream_key,
                     "--seed", "9", "--chunk-rows", "64"})
                .code,
            0);
  const std::string out = TempPath("sr_release");
  const std::string key = TempPath("sr_release.key");
  const CliResult r =
      RunPopp({"shard-release", csv_path_, out, key, "--shards", "3",
               "--seed", "9", "--chunk-rows", "64", "--threads", "2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("600 rows across 3 shards"), std::string::npos)
      << r.out;
  std::string concatenated;
  for (size_t k = 0; k < 3; ++k) {
    concatenated += ReadAll(shard::ShardFilePath(out, k));
  }
  EXPECT_EQ(concatenated, ReadAll(stream_csv));
  EXPECT_EQ(ReadAll(key), ReadAll(stream_key));
}

TEST_F(CliTest, VerifyManifestCatchesCorruptionNamingTheShard) {
  const std::string out = TempPath("vm_release");
  const std::string key = TempPath("vm_release.key");
  ASSERT_EQ(RunPopp({"shard-release", csv_path_, out, key, "--shards", "3",
                     "--seed", "4"})
                .code,
            0);

  // Clean verification, with and without the key cross-check.
  CliResult r = RunPopp({"verify", out, "--manifest"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("VERIFIED (3 shards, 600 rows"), std::string::npos)
      << r.out;
  r = RunPopp({"verify", out, "--manifest", "--key", key});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("key matches"), std::string::npos) << r.out;

  // Corrupt one shard's bytes: exit 4, diagnostic names the shard.
  const std::string victim = shard::ShardFilePath(out, 1);
  const std::string original = ReadAll(victim);
  std::string tampered = original;
  ASSERT_FALSE(tampered.empty());
  tampered[tampered.size() / 2] ^= 0x08;
  ASSERT_TRUE(fault::WriteFileAtomic(victim, tampered).ok());
  r = RunPopp({"verify", out, "--manifest"});
  EXPECT_EQ(r.code, 4) << r.err;
  EXPECT_NE(r.err.find("shard 1"), std::string::npos) << r.err;
  EXPECT_NE(r.out.find("FAILED"), std::string::npos) << r.out;
  ASSERT_TRUE(fault::WriteFileAtomic(victim, original).ok());

  // Corrupt shard 1's CRC line *inside* the meta-manifest, recomputing the
  // document footer so only the recorded CRC lies: still exit 4, still
  // naming the shard.
  const std::string manifest_text = ReadAll(out);
  bool had_footer = false;
  auto payload = VerifyIntegrityFooter(manifest_text, &had_footer);
  ASSERT_TRUE(payload.ok() && had_footer);
  auto parsed = shard::ParseMetaManifest(manifest_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  shard::MetaManifest lying = parsed.value();
  lying.shards[1].crc ^= 0x1;
  ASSERT_TRUE(shard::SaveMetaManifest(lying, out).ok());
  r = RunPopp({"verify", out, "--manifest"});
  EXPECT_EQ(r.code, 4) << r.err;
  EXPECT_NE(r.err.find("shard 1"), std::string::npos) << r.err;
  ASSERT_TRUE(fault::WriteFileAtomic(out, manifest_text).ok());

  // A torn meta-manifest itself: the footer catches it, exit 4.
  ASSERT_TRUE(
      fault::WriteFileAtomic(out,
                             manifest_text.substr(0, manifest_text.size() / 2))
          .ok());
  r = RunPopp({"verify", out, "--manifest"});
  EXPECT_EQ(r.code, 4) << r.err;
  ASSERT_TRUE(fault::WriteFileAtomic(out, manifest_text).ok());

  // The wrong key: exit 4 with the wrong-key diagnostic.
  const std::string other_key = TempPath("vm_other.key");
  ASSERT_EQ(RunPopp({"shard-release", csv_path_, TempPath("vm_other"),
                     other_key, "--shards", "2", "--seed", "5"})
                .code,
            0);
  r = RunPopp({"verify", out, "--manifest", "--key", other_key});
  EXPECT_EQ(r.code, 4) << r.err;
  EXPECT_NE(r.err.find("wrong key"), std::string::npos) << r.err;
}

TEST_F(CliTest, ShardReleaseResumeFlagCompletesInterruptedRun) {
  // Interrupt a release with an injected kill mid-encode, then finish it
  // with --resume: the CLI round trip of the journal contract.
  const std::string out = TempPath("resume_release");
  const std::string key = TempPath("resume_release.key");
  const std::vector<std::string> args = {"shard-release", csv_path_,  out,
                                         key,             "--shards", "2",
                                         "--seed",        "6"};
  size_t total_ops = 0;
  {
    fault::ScopedFaultInjection probe(fault::FaultSchedule::CountOnly());
    ASSERT_EQ(RunPopp({"shard-release", csv_path_, TempPath("probe_rel"),
                       TempPath("probe_rel.key"), "--shards", "2", "--seed",
                       "6"})
                  .code,
              0);
    total_ops = probe.ops_seen();
  }
  {
    fault::ScopedFaultInjection inject(
        fault::FaultSchedule::CrashAt(total_ops / 2));
    const CliResult r = RunPopp(args);
    ASSERT_TRUE(inject.fired());
    ASSERT_NE(r.code, 0);
  }
  std::vector<std::string> resume_args = args;
  resume_args.push_back("--resume");
  const CliResult r = RunPopp(resume_args);
  ASSERT_EQ(r.code, 0) << r.err;
  ASSERT_EQ(RunPopp({"verify", out, "--manifest", "--key", key}).code, 0);
}

TEST(CliBasicsTest, ShardReleaseZeroShardsReported) {
  const CliResult r = RunPopp({"shard-release", "in.csv", "out", "key.out",
                               "--shards", "0"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--shards"), std::string::npos);
}

TEST(CliBasicsTest, ShardReleaseBadWorkersModeReported) {
  const CliResult r = RunPopp({"shard-release", "in.csv", "out", "key.out",
                               "--workers-mode", "goroutine"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("workers mode"), std::string::npos);
}

TEST(CliBasicsTest, ShardReleaseMissingInputReported) {
  const CliResult r = RunPopp({"shard-release", "/nonexistent/in.csv", "out",
                               "key.out"});
  EXPECT_EQ(r.code, 3);
}

// Forked workers through the CLI surface; the suite name keeps it out of
// sanitizer stages that cannot host fork().
class CliShardProcessTest : public CliTest {};

TEST_F(CliShardProcessTest, ProcessModeMatchesThreadMode) {
  const std::string thread_out = TempPath("wm_thread");
  const std::string process_out = TempPath("wm_process");
  ASSERT_EQ(RunPopp({"shard-release", csv_path_, thread_out,
                     TempPath("wm_thread.key"), "--shards", "3", "--seed",
                     "8"})
                .code,
            0);
  const CliResult r =
      RunPopp({"shard-release", csv_path_, process_out,
               TempPath("wm_process.key"), "--shards", "3", "--seed", "8",
               "--workers-mode", "process"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(ReadAll(shard::ShardFilePath(process_out, k)),
              ReadAll(shard::ShardFilePath(thread_out, k)))
        << "shard " << k;
  }
}

// ------------------------------------------------------- exit taxonomy --

TEST_F(CliTest, CorruptKeyExitsWithIntegrityCode) {
  // Produce a valid key, then flip one payload byte: the CRC64 footer
  // catches it and the CLI reports the corrupt-artifact exit code.
  const std::string released = TempPath("tax_released.csv");
  const std::string key = TempPath("tax_plan.key");
  ASSERT_EQ(RunPopp({"encode", csv_path_, released, key}).code, 0);
  std::string bytes;
  {
    std::ifstream in(key, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    bytes = oss.str();
  }
  const size_t digit = bytes.find('.');
  ASSERT_NE(digit, std::string::npos);
  bytes[digit + 1] = bytes[digit + 1] == '9' ? '3' : '9';
  {
    std::ofstream out(key, std::ios::binary);
    out << bytes;
  }
  const std::string mined = TempPath("tax_mined.tree");
  ASSERT_EQ(RunPopp({"mine", released, mined}).code, 0);
  const CliResult r =
      RunPopp({"decode", mined, key, csv_path_, TempPath("tax_out.tree")});
  EXPECT_EQ(r.code, 4) << r.err;  // 4 = corrupt or integrity-failed artifact
  EXPECT_NE(r.err.find("DATA_LOSS"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("integrity checksum mismatch"), std::string::npos)
      << r.err;
}

TEST(CliBasicsTest, TruncatedKeyExitsWithIntegrityCode) {
  // A v2 key with its footer torn off is reported as truncation, not as a
  // vague parse error. (decode loads the tree first, so give it one.)
  const std::string tree_path = testing::TempDir() + "/popp_cli_trunc.tree";
  {
    std::ofstream out(tree_path, std::ios::binary);
    out << SerializeTree(DecisionTree{});
  }
  const std::string key = testing::TempDir() + "/popp_cli_trunc.key";
  {
    std::ofstream out(key, std::ios::binary);
    out << "popp-plan v2\nattributes 1\n";
  }
  const CliResult r = RunPopp({"decode", tree_path, key,
                               "whatever.csv", "out.tree"});
  EXPECT_EQ(r.code, 4) << r.err;
  EXPECT_NE(r.err.find("integrity footer"), std::string::npos) << r.err;
}

TEST(CliBasicsTest, UsageAdvertisesExitTaxonomy) {
  const CliResult r = RunPopp({"help"});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("exit codes:"), std::string::npos);
  EXPECT_NE(r.out.find("--resume"), std::string::npos);
  // The supervision/overload taxonomy is pinned: 6 is the shed/deadline
  // exit, and the supervision flags are advertised.
  EXPECT_NE(r.out.find("6 deadline exceeded or overloaded"),
            std::string::npos);
  EXPECT_NE(r.out.find("--worker-deadline"), std::string::npos);
  EXPECT_NE(r.out.find("--max-worker-restarts"), std::string::npos);
  EXPECT_NE(r.out.find("--retry"), std::string::npos);
}

// ------------------------------------------------------- resumable CLI --

TEST_F(CliTest, StreamReleaseResumeFlagCompletesAndMatches) {
  // A plain run and a --resume run from scratch must produce identical
  // bytes (with no journal to resume, --resume degrades to a fresh run).
  const std::string plain_csv = TempPath("res_plain.csv");
  const std::string plain_key = TempPath("res_plain.key");
  const std::string res_csv = TempPath("res_resumed.csv");
  const std::string res_key = TempPath("res_resumed.key");
  ASSERT_EQ(RunPopp({"stream-release", csv_path_, plain_csv, plain_key,
                     "--seed", "9", "--chunk-rows", "73"})
                .code,
            0);
  const CliResult r =
      RunPopp({"stream-release", csv_path_, res_csv, res_key, "--seed", "9",
               "--chunk-rows", "73", "--resume"});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
  };
  EXPECT_EQ(slurp(plain_csv), slurp(res_csv));
  EXPECT_EQ(slurp(plain_key), slurp(res_key));
}

// --------------------------------------------------- popp-cols format --

TEST_F(CliTest, ColsConvertRoundTripReproducesTheCanonicalCsv) {
  const std::string cols_path = TempPath("conv.cols");
  const std::string back_path = TempPath("conv_back.csv");
  // --to defaults to the opposite format, so neither call needs a flag.
  const CliResult to_cols = RunPopp({"convert", csv_path_, cols_path});
  ASSERT_EQ(to_cols.code, 0) << to_cols.err;
  EXPECT_NE(to_cols.out.find("popp-cols v1"), std::string::npos);
  const CliResult to_csv = RunPopp({"convert", cols_path, back_path});
  ASSERT_EQ(to_csv.code, 0) << to_csv.err;
  auto original = ReadCsv(csv_path_);
  auto back = ReadCsv(back_path);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value() == original.value());
  EXPECT_EQ(ToCsvString(back.value()), ToCsvString(original.value()));
}

TEST_F(CliTest, ColsStreamReleaseIsByteIdenticalToCsvInput) {
  const std::string cols_path = TempPath("fmt.cols");
  ASSERT_EQ(RunPopp({"convert", csv_path_, cols_path, "--to", "cols"}).code,
            0);
  const std::string csv_out = TempPath("fmt_csv_out.csv");
  const std::string csv_key = TempPath("fmt_csv.key");
  const std::string cols_out = TempPath("fmt_cols_out.csv");
  const std::string cols_key = TempPath("fmt_cols.key");
  ASSERT_EQ(RunPopp({"stream-release", csv_path_, csv_out, csv_key, "--seed",
                     "3", "--chunk-rows", "57"})
                .code,
            0);
  // Once auto-sniffed, once forced with --format.
  const CliResult r =
      RunPopp({"stream-release", cols_path, cols_out, cols_key, "--seed", "3",
               "--chunk-rows", "57", "--format", "cols"});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
  };
  EXPECT_EQ(slurp(csv_out), slurp(cols_out));
  EXPECT_EQ(slurp(csv_key), slurp(cols_key));
}

TEST_F(CliTest, ColsMineAcceptsTheBinaryFormatTransparently) {
  const std::string cols_path = TempPath("mine.cols");
  ASSERT_EQ(RunPopp({"convert", csv_path_, cols_path}).code, 0);
  const std::string tree_csv = TempPath("mine_csv.tree");
  const std::string tree_cols = TempPath("mine_cols.tree");
  ASSERT_EQ(RunPopp({"mine", csv_path_, tree_csv}).code, 0);
  const CliResult r = RunPopp({"mine", cols_path, tree_cols});
  ASSERT_EQ(r.code, 0) << r.err;
  auto a = LoadTree(tree_csv);
  auto b = LoadTree(tree_cols);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(ExactlyEqual(a.value(), b.value()));
}

TEST(CliColsFailure, CorruptContainerExitsWithDataLossCode) {
  const CliResult r = RunPopp(
      {"mine",
       std::string(POPP_TEST_DATA_DIR) + "/corrupt/cols_bitflip_footer.cols",
       TempPath("never.tree")});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.err.find("footer disagrees"), std::string::npos) << r.err;
}

TEST(CliColsFailure, UnknownFormatFlagIsAUsageError) {
  const CliResult r = RunPopp({"convert", "/dev/null", "/dev/null", "--to",
                               "parquet"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("parquet"), std::string::npos) << r.err;
}

/// An in-process popp-serve daemon backing the serve-client tests.
class CliServeTest : public CliTest {
 protected:
  void SetUp() override {
    CliTest::SetUp();
    socket_path_ = testing::TempDir() + "popp_cli_srv_" +
                   std::to_string(::getpid());
    serve::ServeOptions options;
    options.socket_path = socket_path_;
    options.num_threads = 2;
    server_ = std::make_unique<serve::Server>(options);
    ASSERT_TRUE(server_->Start().ok());
    thread_ = std::thread([this] { exit_code_ = server_->Serve(log_); });
  }

  void TearDown() override {
    server_->RequestShutdown();
    if (thread_.joinable()) thread_.join();
    EXPECT_EQ(exit_code_, 0) << log_.str();
  }

  std::string socket_path_;
  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
  std::ostringstream log_;
  int exit_code_ = -1;
};

TEST_F(CliServeTest, ServedEncodeIsByteIdenticalToOneShotEncode) {
  const std::string cli_out = TempPath("srv_cli.csv");
  const std::string cli_key = TempPath("srv_cli.key");
  const std::string served_out = TempPath("srv_daemon.csv");
  ASSERT_EQ(RunPopp({"encode", csv_path_, cli_out, cli_key, "--seed", "9",
                     "--policy", "bp"})
                .code,
            0);
  const CliResult r =
      RunPopp({"serve-client", socket_path_, "encode", csv_path_, served_out,
               "--seed", "9", "--policy", "bp"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("written to " + served_out), std::string::npos);
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
  };
  EXPECT_EQ(slurp(served_out), slurp(cli_out));
  EXPECT_FALSE(slurp(served_out).empty());
}

TEST_F(CliServeTest, ServedFitWritesTheOneShotKeyBytes) {
  const std::string cli_out = TempPath("srv_fit_cli.csv");
  const std::string cli_key = TempPath("srv_fit_cli.key");
  const std::string served_key = TempPath("srv_fit_daemon.key");
  ASSERT_EQ(RunPopp({"encode", csv_path_, cli_out, cli_key, "--seed", "3"})
                .code,
            0);
  const CliResult r = RunPopp(
      {"serve-client", socket_path_, "fit", csv_path_, served_key, "--seed",
       "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream a(cli_key, std::ios::binary), b(served_key,
                                                std::ios::binary);
  std::ostringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
}

TEST_F(CliServeTest, StatsAndShutdownRoundTrip) {
  const CliResult stats =
      RunPopp({"serve-client", socket_path_, "stats", "--tenant", "me"});
  EXPECT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("tenant: me"), std::string::npos) << stats.out;
  const CliResult bye = RunPopp({"serve-client", socket_path_, "shutdown"});
  EXPECT_EQ(bye.code, 0) << bye.err;
  // TearDown joins the drained daemon and asserts exit 0.
}

TEST_F(CliServeTest, HealthOpReportsAdmissionCounters) {
  const CliResult r = RunPopp({"serve-client", socket_path_, "health"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("healthy"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("inflight 0"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("max-inflight"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("connections"), std::string::npos) << r.out;
}

TEST_F(CliServeTest, ExpiredDeadlineIsTheOverloadExit) {
  // An already-expired deadline is shed with the explicit kUnavailable
  // reply; the CLI maps it onto exit 6, never a hang or a generic error.
  const std::string out = TempPath("srv_deadline.csv");
  std::remove(out.c_str());  // a prior run's success leaves the file behind
  const CliResult r =
      RunPopp({"serve-client", socket_path_, "encode", csv_path_, out,
               "--seed", "9", "--deadline-ms", "0"});
  EXPECT_EQ(r.code, 6) << r.err;
  EXPECT_NE(r.err.find("deadline exceeded"), std::string::npos) << r.err;
  EXPECT_FALSE(std::ifstream(out).good()) << "shed request wrote output";
  // The same request without a deadline still succeeds: the daemon shed
  // one request, not the connection.
  const CliResult ok =
      RunPopp({"serve-client", socket_path_, "encode", csv_path_, out,
               "--seed", "9"});
  EXPECT_EQ(ok.code, 0) << ok.err;
}

TEST(CliServeFailure, MissingSocketIsAnIoExit) {
  const CliResult r = RunPopp({"serve-client",
                               testing::TempDir() + "no_such_popp_socket",
                               "stats"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.err.find("is the daemon running"), std::string::npos) << r.err;
}

TEST(CliServeFailure, UnknownOpIsAUsageError) {
  const CliResult r = RunPopp({"serve-client", "/tmp/sock", "frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("frobnicate"), std::string::npos) << r.err;
}

TEST(CliServeFailure, MissingArgumentsIsAUsageError) {
  EXPECT_EQ(RunPopp({"serve-client"}).code, 2);
  EXPECT_EQ(RunPopp({"serve-client", "/tmp/sock", "encode", "only-in"}).code,
            2);
}

}  // namespace
}  // namespace popp
