#include <gtest/gtest.h>

#include <vector>

#include "data/summary.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "tree/builder.h"
#include "tree/compare.h"
#include "tree/frontier.h"

/// \file
/// Degenerate-input regressions for the tree builder, plus unit tests of
/// the columnar-partition internals the frontier engine is built on. The
/// degenerate shapes — surfaced by the check/ fuzzer's adversarial
/// generator — sit at the edges the covtype-like sweeps never reach: zero
/// rows, one row, constant columns, and exact split-score ties whose
/// resolution the no-outcome-change guarantee depends on being
/// deterministic.

namespace popp {
namespace {

TEST(BuilderEdge, EmptyDatasetIsACheckedError) {
  const Dataset d({"x"}, {"a", "b"});
  EXPECT_DEATH(DecisionTreeBuilder().Build(d), "cannot build a tree from 0");
}

TEST(BuilderEdge, SingleRowBuildsOneLeaf) {
  Dataset d({"x", "y"}, {"a", "b"});
  d.AddRow({3, 7}, 1);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf);
  EXPECT_EQ(tree.node(tree.root()).label, 1);
  EXPECT_DOUBLE_EQ(tree.Accuracy(d), 1.0);
}

TEST(BuilderEdge, AllIdenticalValuesBuildOneMajorityLeaf) {
  // Every attribute constant: no boundary exists anywhere, so the root
  // must become a leaf labeled with the majority class.
  Dataset d({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 5; ++i) d.AddRow({42, -1}, i < 2 ? 0 : 1);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.node(tree.root()).label, 1);
}

TEST(BuilderEdge, MajorityTieGoesToLowestClassId) {
  Dataset d({"x"}, {"a", "b", "c"});
  d.AddRow({1}, 2);
  d.AddRow({1}, 1);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.node(tree.root()).label, 1);
}

TEST(BuilderEdge, SingleClassDatasetIsOneLeafRegardlessOfValues) {
  Dataset d({"x"}, {"only"});
  for (int i = 0; i < 10; ++i) d.AddRow({static_cast<double>(i)}, 0);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.node(tree.root()).label, 0);
}

TEST(BuilderEdge, PalindromicTieResolvesToLowestCanonicalBoundary) {
  // Values 1..4 with classes a,b,b,a: isolating either outer 'a' scores
  // identically under gini and entropy. The documented tie-break chain
  // (lower badness, lower attribute, lower canonical boundary) must pick
  // the boundary after the first value — threshold 1.5, not 3.5.
  for (SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    Dataset d({"x"}, {"a", "b"});
    d.AddRow({1}, 0);
    d.AddRow({2}, 1);
    d.AddRow({3}, 1);
    d.AddRow({4}, 0);
    BuildOptions options;
    options.criterion = criterion;
    const DecisionTree tree = DecisionTreeBuilder(options).Build(d);
    const auto& root = tree.node(tree.root());
    ASSERT_FALSE(root.is_leaf);
    EXPECT_EQ(root.attribute, 0u);
    EXPECT_DOUBLE_EQ(root.threshold, 1.5) << ToString(criterion);
  }
}

TEST(BuilderEdge, CrossAttributeTieResolvesToLowestAttribute) {
  // Two identical columns: every split of attribute 1 scores exactly as
  // its twin on attribute 0, so the builder must choose attribute 0.
  Dataset d({"x", "x_copy"}, {"a", "b"});
  d.AddRow({1, 1}, 0);
  d.AddRow({2, 2}, 0);
  d.AddRow({3, 3}, 1);
  d.AddRow({4, 4}, 1);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  const auto& root = tree.node(tree.root());
  ASSERT_FALSE(root.is_leaf);
  EXPECT_EQ(root.attribute, 0u);
  EXPECT_DOUBLE_EQ(root.threshold, 2.5);
}

TEST(BuilderEdge, AllAlgorithmsAgreeOnTies) {
  // The three algorithms promise bit-identical trees; exercise that
  // promise on a tie-heavy two-class dataset.
  Dataset d({"x", "y"}, {"a", "b"});
  const int xs[] = {1, 1, 2, 2, 3, 3, 4, 4};
  const int ys[] = {4, 3, 4, 3, 2, 1, 2, 1};
  for (int i = 0; i < 8; ++i) {
    d.AddRow({static_cast<double>(xs[i]), static_cast<double>(ys[i])},
             i % 2);
  }
  BuildOptions resort;
  resort.algorithm = BuildOptions::Algorithm::kResort;
  const DecisionTree a = DecisionTreeBuilder(resort).Build(d);
  for (auto algorithm : {BuildOptions::Algorithm::kPresorted,
                         BuildOptions::Algorithm::kFrontier}) {
    BuildOptions other;
    other.algorithm = algorithm;
    const DecisionTree b = DecisionTreeBuilder(other).Build(d);
    EXPECT_TRUE(ExactlyEqual(a, b)) << DescribeDifference(a, b);
  }
}

// ---------------------------------------------------------------------------
// ColumnarPartitions: the frontier engine's node-partition substrate.

/// A small dataset with deliberate duplicate values in both columns.
Dataset PartitionFixture() {
  Dataset d({"x", "y"}, {"a", "b", "c"});
  const double xs[] = {5, 1, 3, 1, 5, 3, 2, 2};
  const double ys[] = {9, 9, 7, 7, 8, 8, 9, 7};
  const ClassId cs[] = {0, 1, 2, 0, 1, 2, 0, 1};
  for (int i = 0; i < 8; ++i) d.AddRow({xs[i], ys[i]}, cs[i]);
  return d;
}

void ExpectSummariesEqual(const AttributeSummary& a,
                          const AttributeSummary& b) {
  ASSERT_EQ(a.NumDistinct(), b.NumDistinct());
  ASSERT_EQ(a.NumClasses(), b.NumClasses());
  EXPECT_EQ(a.NumTuples(), b.NumTuples());
  for (size_t i = 0; i < a.NumDistinct(); ++i) {
    EXPECT_EQ(a.ValueAt(i), b.ValueAt(i)) << "value " << i;
    EXPECT_EQ(a.CountAt(i), b.CountAt(i)) << "total " << i;
    for (size_t c = 0; c < a.NumClasses(); ++c) {
      EXPECT_EQ(a.ClassCountAt(i, static_cast<ClassId>(c)),
                b.ClassCountAt(i, static_cast<ClassId>(c)))
          << "value " << i << " class " << c;
    }
  }
}

TEST(ColumnarPartitionsTest, BinCodingIsExactAndOrderIsomorphic) {
  const Dataset d = PartitionFixture();
  ColumnarPartitions parts;
  parts.Init(d);
  ASSERT_EQ(parts.NumAttributes(), 2u);
  EXPECT_EQ(parts.NumRows(), 8u);
  EXPECT_EQ(parts.NumClasses(), 3u);
  EXPECT_EQ(parts.NumBins(0), 4u);  // {1, 2, 3, 5}
  EXPECT_EQ(parts.NumBins(1), 3u);  // {7, 8, 9}
  for (size_t attr = 0; attr < parts.NumAttributes(); ++attr) {
    const auto& col = d.Column(attr);
    for (size_t i = 0; i < parts.NumRows(); ++i) {
      // The bin decodes to the exact original value, bit for bit, and the
      // label rides along with its row.
      EXPECT_EQ(parts.BinValue(attr, parts.BinAt(attr, i)),
                col[parts.RowAt(attr, i)]);
      EXPECT_EQ(parts.LabelAt(attr, i), d.Label(parts.RowAt(attr, i)));
      if (i > 0) {
        EXPECT_LE(parts.BinAt(attr, i - 1), parts.BinAt(attr, i))
            << "views must be value-sorted";
        // Equal values keep ascending row order (stable sort).
        if (parts.BinAt(attr, i - 1) == parts.BinAt(attr, i)) {
          EXPECT_LT(parts.RowAt(attr, i - 1), parts.RowAt(attr, i));
        }
      }
    }
  }
}

TEST(ColumnarPartitionsTest, NodeSummaryMatchesFromTuplesOnRoot) {
  const Dataset d = PartitionFixture();
  ColumnarPartitions parts;
  parts.Init(d);
  const NodeSlice root{0, d.NumRows()};
  for (size_t attr = 0; attr < parts.NumAttributes(); ++attr) {
    AttributeSummary got;
    parts.NodeSummary(attr, root, got);
    ExpectSummariesEqual(AttributeSummary::FromDataset(d, attr), got);
  }
}

TEST(ColumnarPartitionsTest, RepartitionIsStableAndMatchesMark) {
  const Dataset d = PartitionFixture();
  ColumnarPartitions parts;
  parts.Init(d);
  const NodeSlice root{0, d.NumRows()};
  // Split on x <= 2 (bins {1, 2} left, {3, 5} right): 4 rows each.
  const size_t split_attr = 0;
  const AttrValue left_max = 2;
  std::vector<uint64_t> mark_hist;
  parts.ResetSideMask();
  const ColumnarPartitions::MarkResult mark =
      parts.MarkSideRows(split_attr, root, left_max, mark_hist);
  const size_t left_n = mark.left_n;
  EXPECT_EQ(left_n, 4u);
  // An even 4/4 split ties; the tie marks the left side, and the fused
  // histogram counts exactly the marked (left) rows.
  EXPECT_TRUE(mark.marked_left);
  std::vector<uint64_t> expected_hist(d.NumClasses(), 0);
  for (size_t r = 0; r < d.NumRows(); ++r) {
    if (d.Column(split_attr)[r] <= left_max) {
      expected_hist[static_cast<size_t>(d.Label(r))]++;
    }
  }
  EXPECT_EQ(mark_hist, expected_hist);
  const size_t other = 1;
  std::vector<uint32_t> before_rows;
  for (size_t i = 0; i < parts.NumRows(); ++i) {
    before_rows.push_back(parts.RowAt(other, i));
  }
  EXPECT_EQ(parts.Repartition(other, root, left_n, mark.marked_left),
            left_n);
  parts.CopySlice(split_attr, root);  // already partitioned by sortedness
  parts.FinishLevel();
  const auto& split_col = d.Column(split_attr);
  // Left rows occupy the prefix, right rows the suffix, and within each
  // side the original (value-sorted) relative order is preserved.
  std::vector<uint32_t> expected;
  for (uint32_t r : before_rows) {
    if (split_col[r] <= left_max) expected.push_back(r);
  }
  for (uint32_t r : before_rows) {
    if (split_col[r] > left_max) expected.push_back(r);
  }
  ASSERT_EQ(parts.NumRows(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    const uint32_t row = parts.RowAt(other, i);
    EXPECT_EQ(row, expected[i]) << "row slot " << i;
    // The bin/label companions moved with their row.
    EXPECT_EQ(parts.BinValue(other, parts.BinAt(other, i)),
              d.Column(other)[row]);
    EXPECT_EQ(parts.LabelAt(other, i), d.Label(row));
  }
  // Child slices still produce exact tuple-level summaries.
  for (const NodeSlice child :
       {NodeSlice{0, left_n}, NodeSlice{left_n, root.end}}) {
    std::vector<ValueLabel> tuples;
    for (size_t i = child.begin; i < child.end; ++i) {
      tuples.push_back(ValueLabel{d.Column(other)[parts.RowAt(other, i)],
                                  d.Label(parts.RowAt(other, i))});
    }
    AttributeSummary got;
    parts.NodeSummary(other, child, got);
    ExpectSummariesEqual(
        AttributeSummary::FromTuples(std::move(tuples), d.NumClasses()),
        got);
  }
}

TEST(ColumnarPartitionsTest, EmptyAndOneRowSlicesAreWellFormed) {
  const Dataset d = PartitionFixture();
  ColumnarPartitions parts;
  parts.Init(d);
  AttributeSummary summary;
  std::vector<uint64_t> hist;
  const NodeSlice empty{3, 3};
  parts.NodeHistogram(empty, hist);
  for (uint64_t c : hist) EXPECT_EQ(c, 0u);
  parts.NodeSummary(0, empty, summary);
  EXPECT_EQ(summary.NumDistinct(), 0u);
  EXPECT_EQ(summary.NumTuples(), 0u);
  const NodeSlice one{2, 3};
  parts.NodeHistogram(one, hist);
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  EXPECT_EQ(total, 1u);
  parts.NodeSummary(0, one, summary);
  EXPECT_EQ(summary.NumDistinct(), 1u);
  EXPECT_EQ(summary.CountAt(0), 1u);
  // A one-row slice marks and repartitions trivially to either side.
  // (Mark and repartition the same attribute: an arbitrary [2, 3) window
  // covers different rows in different views — only split-produced slices
  // hold the same row set across attributes.) Everything routes left, so
  // the empty right side is the smaller one: it gets marked and its fused
  // histogram is all zeros.
  std::vector<uint64_t> mark_hist;
  parts.ResetSideMask();
  const ColumnarPartitions::MarkResult mark =
      parts.MarkSideRows(0, one, 100.0, mark_hist);
  EXPECT_EQ(mark.left_n, 1u);
  EXPECT_FALSE(mark.marked_left);
  uint64_t marked = 0;
  for (uint64_t c : mark_hist) marked += c;
  EXPECT_EQ(marked, 0u);
  EXPECT_EQ(parts.Repartition(0, one, mark.left_n, mark.marked_left), 1u);
}

TEST(ColumnarPartitionsTest, NodeSummariesSurviveRecursiveSplits) {
  // Drive the partitions through two levels of real splits and check every
  // slice's summary against a from-scratch FromTuples at each step.
  Rng rng(29);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(300), rng);
  ColumnarPartitions parts;
  parts.Init(d);
  std::vector<uint64_t> mark_hist;
  std::vector<NodeSlice> frontier{NodeSlice{0, d.NumRows()}};
  for (int level = 0; level < 2; ++level) {
    // Mirror the builder's level protocol: reset the mask, mark +
    // repartition every splitting slice into the back buffers, then one
    // FinishLevel publishes the whole level; only then are the children
    // readable.
    parts.ResetSideMask();
    std::vector<NodeSlice> next;
    std::vector<std::vector<uint64_t>> child_mark_hists;
    std::vector<bool> child_marked_left;
    for (const NodeSlice& slice : frontier) {
      if (slice.size() < 2) continue;
      // Split at the median row of attribute 0's slice.
      const uint32_t mid_bin =
          parts.BinAt(0, slice.begin + slice.size() / 2);
      if (parts.BinAt(0, slice.begin) == mid_bin) continue;  // constant-ish
      const AttrValue left_max = parts.BinValue(0, mid_bin - 1);
      const ColumnarPartitions::MarkResult mark =
          parts.MarkSideRows(0, slice, left_max, mark_hist);
      const size_t left_n = mark.left_n;
      ASSERT_GT(left_n, 0u);
      ASSERT_LT(left_n, slice.size());
      parts.CopySlice(0, slice);  // the split attribute copies verbatim
      for (size_t attr = 1; attr < parts.NumAttributes(); ++attr) {
        EXPECT_EQ(parts.Repartition(attr, slice, left_n, mark.marked_left),
                  left_n);
      }
      next.push_back(NodeSlice{slice.begin, slice.begin + left_n});
      next.push_back(NodeSlice{slice.begin + left_n, slice.end});
      child_mark_hists.push_back(mark_hist);
      child_marked_left.push_back(mark.marked_left);
    }
    parts.FinishLevel();
    for (size_t i = 0; i < next.size(); ++i) {
      const NodeSlice& child = next[i];
      const bool is_left = i % 2 == 0;
      if (is_left == child_marked_left[i / 2]) {
        // The fused mark histogram equals a fresh scan of the marked
        // (smaller) child.
        std::vector<uint64_t> hist;
        parts.NodeHistogram(child, hist);
        EXPECT_EQ(hist, child_mark_hists[i / 2]) << "marked child " << i;
      }
      for (size_t attr = 0; attr < parts.NumAttributes(); ++attr) {
        std::vector<ValueLabel> tuples;
        for (size_t j = child.begin; j < child.end; ++j) {
          const uint32_t row = parts.RowAt(attr, j);
          tuples.push_back(ValueLabel{d.Column(attr)[row], d.Label(row)});
        }
        AttributeSummary got;
        parts.NodeSummary(attr, child, got);
        ExpectSummariesEqual(
            AttributeSummary::FromTuples(std::move(tuples), d.NumClasses()),
            got);
      }
    }
    frontier = std::move(next);
  }
}

}  // namespace
}  // namespace popp
