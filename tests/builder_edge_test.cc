#include <gtest/gtest.h>

#include "tree/builder.h"
#include "tree/compare.h"

/// \file
/// Degenerate-input regressions for the tree builder. These shapes —
/// surfaced by the check/ fuzzer's adversarial generator — sit at the edges
/// the covtype-like sweeps never reach: zero rows, one row, constant
/// columns, and exact split-score ties whose resolution the
/// no-outcome-change guarantee depends on being deterministic.

namespace popp {
namespace {

TEST(BuilderEdge, EmptyDatasetIsACheckedError) {
  const Dataset d({"x"}, {"a", "b"});
  EXPECT_DEATH(DecisionTreeBuilder().Build(d), "cannot build a tree from 0");
}

TEST(BuilderEdge, SingleRowBuildsOneLeaf) {
  Dataset d({"x", "y"}, {"a", "b"});
  d.AddRow({3, 7}, 1);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf);
  EXPECT_EQ(tree.node(tree.root()).label, 1);
  EXPECT_DOUBLE_EQ(tree.Accuracy(d), 1.0);
}

TEST(BuilderEdge, AllIdenticalValuesBuildOneMajorityLeaf) {
  // Every attribute constant: no boundary exists anywhere, so the root
  // must become a leaf labeled with the majority class.
  Dataset d({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 5; ++i) d.AddRow({42, -1}, i < 2 ? 0 : 1);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.node(tree.root()).label, 1);
}

TEST(BuilderEdge, MajorityTieGoesToLowestClassId) {
  Dataset d({"x"}, {"a", "b", "c"});
  d.AddRow({1}, 2);
  d.AddRow({1}, 1);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.node(tree.root()).label, 1);
}

TEST(BuilderEdge, SingleClassDatasetIsOneLeafRegardlessOfValues) {
  Dataset d({"x"}, {"only"});
  for (int i = 0; i < 10; ++i) d.AddRow({static_cast<double>(i)}, 0);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.node(tree.root()).label, 0);
}

TEST(BuilderEdge, PalindromicTieResolvesToLowestCanonicalBoundary) {
  // Values 1..4 with classes a,b,b,a: isolating either outer 'a' scores
  // identically under gini and entropy. The documented tie-break chain
  // (lower badness, lower attribute, lower canonical boundary) must pick
  // the boundary after the first value — threshold 1.5, not 3.5.
  for (SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    Dataset d({"x"}, {"a", "b"});
    d.AddRow({1}, 0);
    d.AddRow({2}, 1);
    d.AddRow({3}, 1);
    d.AddRow({4}, 0);
    BuildOptions options;
    options.criterion = criterion;
    const DecisionTree tree = DecisionTreeBuilder(options).Build(d);
    const auto& root = tree.node(tree.root());
    ASSERT_FALSE(root.is_leaf);
    EXPECT_EQ(root.attribute, 0u);
    EXPECT_DOUBLE_EQ(root.threshold, 1.5) << ToString(criterion);
  }
}

TEST(BuilderEdge, CrossAttributeTieResolvesToLowestAttribute) {
  // Two identical columns: every split of attribute 1 scores exactly as
  // its twin on attribute 0, so the builder must choose attribute 0.
  Dataset d({"x", "x_copy"}, {"a", "b"});
  d.AddRow({1, 1}, 0);
  d.AddRow({2, 2}, 0);
  d.AddRow({3, 3}, 1);
  d.AddRow({4, 4}, 1);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  const auto& root = tree.node(tree.root());
  ASSERT_FALSE(root.is_leaf);
  EXPECT_EQ(root.attribute, 0u);
  EXPECT_DOUBLE_EQ(root.threshold, 2.5);
}

TEST(BuilderEdge, ResortAndPresortedAgreeOnTies) {
  // The two algorithms promise bit-identical trees; exercise that promise
  // on a tie-heavy two-class dataset.
  Dataset d({"x", "y"}, {"a", "b"});
  const int xs[] = {1, 1, 2, 2, 3, 3, 4, 4};
  const int ys[] = {4, 3, 4, 3, 2, 1, 2, 1};
  for (int i = 0; i < 8; ++i) {
    d.AddRow({static_cast<double>(xs[i]), static_cast<double>(ys[i])},
             i % 2);
  }
  BuildOptions resort;
  resort.algorithm = BuildOptions::Algorithm::kResort;
  BuildOptions presorted;
  presorted.algorithm = BuildOptions::Algorithm::kPresorted;
  const DecisionTree a = DecisionTreeBuilder(resort).Build(d);
  const DecisionTree b = DecisionTreeBuilder(presorted).Build(d);
  EXPECT_TRUE(ExactlyEqual(a, b)) << DescribeDifference(a, b);
}

}  // namespace
}  // namespace popp
