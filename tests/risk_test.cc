#include <gtest/gtest.h>

#include "attack/curve_fit.h"
#include "data/summary.h"
#include "risk/crack.h"
#include "risk/domain_risk.h"
#include "risk/pattern_risk.h"
#include "risk/subspace_risk.h"
#include "risk/trials.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/plan.h"
#include "tree/builder.h"

namespace popp {
namespace {

AttributeSummary MixedSummary(size_t n, double step = 2.0) {
  std::vector<ValueLabel> tuples;
  for (size_t v = 0; v < n; ++v) {
    tuples.push_back({static_cast<double>(v) * step, 0});
    tuples.push_back({static_cast<double>(v) * step, 1});
  }
  return AttributeSummary::FromTuples(std::move(tuples), 2);
}

// ----------------------------------------------------------------- crack --

TEST(CrackTest, Predicate) {
  EXPECT_TRUE(IsCrack(10.0, 10.0, 0.0));
  EXPECT_TRUE(IsCrack(9.0, 10.0, 1.0));
  EXPECT_TRUE(IsCrack(11.0, 10.0, 1.0));
  EXPECT_FALSE(IsCrack(11.5, 10.0, 1.0));
  EXPECT_FALSE(IsCrack(8.0, 10.0, 1.9));
}

// ----------------------------------------------------------- domain risk --

TEST(DomainRiskTest, PerfectCrackFunctionScoresOne) {
  const auto s = MixedSummary(50);
  Rng rng(3);
  const auto f = PiecewiseTransform::Create(s, PiecewiseOptions{}, rng);

  // The omniscient "hacker": inverts the actual transform.
  class Oracle : public CrackFunction {
   public:
    explicit Oracle(const PiecewiseTransform& f) : f_(f) {}
    AttrValue Guess(AttrValue y) const override { return f_.Inverse(y); }
    std::string Name() const override { return "oracle"; }

   private:
    const PiecewiseTransform& f_;
  } oracle(f);

  // Tiny radius absorbing float round-off of Inverse(Apply(v)).
  const auto result = DomainDisclosureRisk(s, f, oracle, 1e-6);
  EXPECT_DOUBLE_EQ(result.risk, 1.0);
  EXPECT_EQ(result.cracks, s.NumDistinct());
}

TEST(DomainRiskTest, HopelessCrackFunctionScoresZero) {
  const auto s = MixedSummary(50);
  Rng rng(5);
  const auto f = PiecewiseTransform::Create(s, PiecewiseOptions{}, rng);
  class FarOff : public CrackFunction {
   public:
    AttrValue Guess(AttrValue) const override { return 1e9; }
    std::string Name() const override { return "faroff"; }
  } far_off;
  EXPECT_DOUBLE_EQ(DomainDisclosureRisk(s, f, far_off, 5.0).risk, 0.0);
}

TEST(DomainRiskTest, CrackVectorAlignsWithValues) {
  const auto s = MixedSummary(20);
  Rng rng(7);
  const auto f = PiecewiseTransform::Create(s, PiecewiseOptions{}, rng);
  auto identity = MakeIdentityCrack();
  const auto v = DomainCrackVector(s, f, *identity, 1.0);
  EXPECT_EQ(v.size(), s.NumDistinct());
}

TEST(DomainRiskTest, ExpertBeatsIgnorant) {
  // More knowledge points -> higher (or equal) median disclosure.
  Rng data_rng(9);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1500), data_rng);
  const auto s = AttributeSummary::FromDataset(d, 1);  // the worst-case attr

  DomainRiskExperiment ignorant;
  ignorant.transform_options.min_breakpoints = 10;
  ignorant.knowledge.num_good = 0;
  ignorant.num_trials = 21;
  const double risk_ignorant = MedianDomainRisk(s, ignorant);

  DomainRiskExperiment expert = ignorant;
  expert.knowledge.num_good = 4;
  const double risk_expert = MedianDomainRisk(s, expert);

  EXPECT_GE(risk_expert, risk_ignorant);
}

TEST(DomainRiskTest, BreakpointsReduceCurveFitRisk) {
  // The Figure 9 effect: a single monotone piece is far easier to fit
  // through 4 knowledge points than 20+ random pieces.
  Rng data_rng(11);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1500), data_rng);
  const auto s = AttributeSummary::FromDataset(d, 0);

  DomainRiskExperiment no_bp;
  no_bp.transform_options.policy = BreakpointPolicy::kNone;
  no_bp.knowledge.num_good = 4;
  no_bp.num_trials = 21;
  const double risk_no_bp = MedianDomainRisk(s, no_bp);

  DomainRiskExperiment bp = no_bp;
  bp.transform_options.policy = BreakpointPolicy::kChooseBP;
  bp.transform_options.min_breakpoints = 20;
  const double risk_bp = MedianDomainRisk(s, bp);

  EXPECT_LT(risk_bp, risk_no_bp);
}

TEST(DomainRiskTest, IgnorantHackerRarelyCracks) {
  Rng data_rng(13);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1500), data_rng);
  const auto s = AttributeSummary::FromDataset(d, 0);
  DomainRiskExperiment e;
  e.transform_options.min_breakpoints = 20;
  e.knowledge.num_good = 0;
  e.num_trials = 21;
  EXPECT_LT(MedianDomainRisk(s, e), 0.10);
}

// --------------------------------------------------------- subspace risk --

TEST(SubspaceRiskTest, SingletonMatchesDomainRiskOnTupleBasis) {
  Rng data_rng(17);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(19);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  auto identity = MakeIdentityCrack();
  const auto result = SubspaceAssociationRisk(
      d, plan, {0}, {identity.get()}, {1e18});
  // With an infinite radius everything cracks.
  EXPECT_DOUBLE_EQ(result.risk, 1.0);
  EXPECT_EQ(result.total, d.NumRows());
}

TEST(SubspaceRiskTest, AssociationRiskAtMostMinMarginal) {
  // Cracking a pair requires cracking both coordinates: the association
  // risk can never exceed either marginal risk.
  Rng data_rng(23);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(800), data_rng);
  Rng rng(29);
  PiecewiseOptions options;
  options.min_breakpoints = 10;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);

  KnowledgeOptions ko;
  ko.num_good = 4;
  Rng attack_rng(31);
  const auto pair = CurveFitSubspaceRisk(d, plan, {0, 1},
                                         FitMethod::kPolyline, ko,
                                         attack_rng);
  Rng attack_rng2(31);
  const auto single0 = CurveFitSubspaceRisk(d, plan, {0},
                                            FitMethod::kPolyline, ko,
                                            attack_rng2);
  EXPECT_LE(pair.risk, single0.risk + 0.05);
}

TEST(SubspaceRiskTest, LargerSubspaceNoRiskier) {
  Rng data_rng(37);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(800), data_rng);
  Rng rng(41);
  PiecewiseOptions options;
  options.min_breakpoints = 10;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  auto identity = MakeIdentityCrack();
  // Fixed crack function and radii: the triple risk is at most the pair
  // risk, which is at most the single risk (monotone in subset order).
  std::vector<const CrackFunction*> cracks1{identity.get()};
  std::vector<const CrackFunction*> cracks2{identity.get(), identity.get()};
  std::vector<const CrackFunction*> cracks3{identity.get(), identity.get(),
                                            identity.get()};
  const double rho0 = 30.0, rho1 = 20.0, rho2 = 40.0;
  const auto r1 = SubspaceAssociationRisk(d, plan, {0}, cracks1, {rho0});
  const auto r2 =
      SubspaceAssociationRisk(d, plan, {0, 1}, cracks2, {rho0, rho1});
  const auto r3 = SubspaceAssociationRisk(d, plan, {0, 1, 2}, cracks3,
                                          {rho0, rho1, rho2});
  EXPECT_LE(r2.risk, r1.risk);
  EXPECT_LE(r3.risk, r2.risk);
}

// ---------------------------------------------------------- pattern risk --

TEST(PatternRiskTest, OracleCracksAllPaths) {
  Rng data_rng(43);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(47);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTree tprime =
      DecisionTreeBuilder().Build(plan.EncodeDataset(d));

  class Oracle : public CrackFunction {
   public:
    Oracle(const TransformPlan& plan, size_t attr)
        : plan_(plan), attr_(attr) {}
    AttrValue Guess(AttrValue y) const override {
      return plan_.transform(attr_).InverseThreshold(y).value;
    }
    std::string Name() const override { return "oracle"; }

   private:
    const TransformPlan& plan_;
    size_t attr_;
  };
  std::vector<std::unique_ptr<CrackFunction>> owned;
  std::vector<const CrackFunction*> cracks;
  std::vector<double> rhos;
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    owned.push_back(std::make_unique<Oracle>(plan, a));
    cracks.push_back(owned.back().get());
    rhos.push_back(1e-6);
  }
  const auto result = PatternDisclosureRisk(tprime, plan, cracks, rhos);
  EXPECT_DOUBLE_EQ(result.risk, 1.0);
  EXPECT_EQ(result.total, tprime.Paths().size());
}

TEST(PatternRiskTest, HistogramAccountsForAllPaths) {
  Rng data_rng(53);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(59);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTree tprime =
      DecisionTreeBuilder().Build(plan.EncodeDataset(d));
  KnowledgeOptions ko;
  ko.num_good = 8;
  ko.radius_fraction = 0.05;
  Rng attack_rng(61);
  const auto result = CurveFitPatternRisk(tprime, d, plan,
                                          FitMethod::kPolyline, ko,
                                          attack_rng);
  size_t histogram_total = 0;
  for (const auto& [len, count] : result.paths_by_length) {
    histogram_total += count;
  }
  EXPECT_EQ(histogram_total, result.total);
  size_t crack_total = 0;
  for (const auto& [len, count] : result.cracks_by_length) {
    crack_total += count;
  }
  EXPECT_EQ(crack_total, result.cracks);
}

TEST(PatternRiskTest, LongPathsNearlyNeverCrack) {
  // Section 6.4: cracking a path requires cracking every threshold on it;
  // with realistic hacker knowledge the per-threshold probability is well
  // below 1, so long paths are safe.
  Rng data_rng(67);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1200), data_rng);
  Rng rng(71);
  PiecewiseOptions options;
  options.min_breakpoints = 15;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const DecisionTree tprime =
      DecisionTreeBuilder().Build(plan.EncodeDataset(d));
  KnowledgeOptions ko;
  ko.num_good = 4;
  Rng attack_rng(73);
  const auto result = CurveFitPatternRisk(tprime, d, plan,
                                          FitMethod::kPolyline, ko,
                                          attack_rng);
  for (const auto& [len, count] : result.cracks_by_length) {
    if (len >= 5) {
      EXPECT_EQ(count, 0u) << "a length-" << len << " path was cracked";
    }
  }
}

// ---------------------------------------------------------------- trials --

TEST(TrialsTest, CollectReturnsRequestedCount) {
  const auto values =
      CollectTrials(17, 3, [](Rng& rng) { return rng.Uniform01(); });
  EXPECT_EQ(values.size(), 17u);
}

TEST(TrialsTest, DeterministicAcrossRuns) {
  auto trial = [](Rng& rng) { return rng.Uniform01(); };
  EXPECT_EQ(CollectTrials(9, 5, trial), CollectTrials(9, 5, trial));
  EXPECT_NE(CollectTrials(9, 5, trial), CollectTrials(9, 6, trial));
}

TEST(TrialsTest, TrialsAreIndependentStreams) {
  const auto values =
      CollectTrials(50, 7, [](Rng& rng) { return rng.Uniform01(); });
  // All distinct with overwhelming probability.
  std::set<double> uniq(values.begin(), values.end());
  EXPECT_EQ(uniq.size(), values.size());
}

TEST(TrialsTest, ParallelMatchesSequentialBitForBit) {
  auto trial = [](Rng& rng) { return rng.Uniform01() + rng.Uniform01(); };
  const auto sequential = CollectTrials(40, 11, trial);
  for (size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(CollectTrialsParallel(40, 11, trial, threads), sequential)
        << threads << " threads";
  }
  // Default thread count too.
  EXPECT_EQ(CollectTrialsParallel(40, 11, trial), sequential);
}

TEST(TrialsTest, ParallelHandlesFewerTrialsThanThreads) {
  auto trial = [](Rng& rng) { return rng.Uniform01(); };
  EXPECT_EQ(CollectTrialsParallel(3, 5, trial, 16).size(), 3u);
}

TEST(TrialsTest, ParallelRunsRealWorkload) {
  // A trial that actually exercises library code under concurrency.
  Rng data_rng(71);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(800), data_rng);
  const auto s = AttributeSummary::FromDataset(d, 0);
  auto trial = [&s](Rng& rng) {
    PiecewiseOptions options;
    options.min_breakpoints = 8;
    const auto f = PiecewiseTransform::Create(s, options, rng);
    KnowledgeOptions ko;
    ko.num_good = 4;
    return CurveFitDomainRisk(s, f, FitMethod::kPolyline, ko, rng).risk;
  };
  EXPECT_EQ(CollectTrialsParallel(24, 3, trial, 4),
            CollectTrials(24, 3, trial));
}

TEST(TrialsTest, MedianAndSummaryConsistent) {
  size_t counter = 0;
  auto trial = [&counter](Rng&) {
    return static_cast<double>(counter++ % 5);
  };
  EXPECT_DOUBLE_EQ(MedianOverTrials(25, 1, trial), 2.0);
  counter = 0;
  const Summary s = SummarizeTrials(25, 1, trial);
  EXPECT_EQ(s.n, 25u);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

}  // namespace
}  // namespace popp
