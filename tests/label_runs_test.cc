#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/binned_elem.h"
#include "data/summary.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "tree/criterion.h"
#include "tree/label_runs.h"
#include "util/rng.h"

namespace popp {
namespace {

// ------------------------------------------------------------- criterion --

TEST(CriterionTest, GiniPureIsZero) {
  EXPECT_DOUBLE_EQ(GiniImpurity({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0, 7, 0}), 0.0);
}

TEST(CriterionTest, GiniBalancedBinary) {
  EXPECT_DOUBLE_EQ(GiniImpurity({5, 5}), 0.5);
}

TEST(CriterionTest, GiniMulticlassUniform) {
  EXPECT_NEAR(GiniImpurity({3, 3, 3}), 2.0 / 3.0, 1e-12);
}

TEST(CriterionTest, GiniEmpty) {
  EXPECT_DOUBLE_EQ(GiniImpurity({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0, 0}), 0.0);
}

TEST(CriterionTest, EntropyPureIsZero) {
  EXPECT_DOUBLE_EQ(EntropyImpurity({4, 0}), 0.0);
}

TEST(CriterionTest, EntropyBalancedBinaryIsOneBit) {
  EXPECT_DOUBLE_EQ(EntropyImpurity({8, 8}), 1.0);
}

TEST(CriterionTest, EntropyUniformFourWayIsTwoBits) {
  EXPECT_DOUBLE_EQ(EntropyImpurity({2, 2, 2, 2}), 2.0);
}

TEST(CriterionTest, ImpurityDispatch) {
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kGini, {5, 5}), 0.5);
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kEntropy, {5, 5}), 1.0);
}

TEST(CriterionTest, WeightedSplitIsSymmetric) {
  const std::vector<uint64_t> l{8, 2};
  const std::vector<uint64_t> r{1, 9};
  for (auto criterion : {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    EXPECT_DOUBLE_EQ(WeightedSplitImpurity(criterion, l, r),
                     WeightedSplitImpurity(criterion, r, l));
  }
}

TEST(CriterionTest, PerfectSplitScoresZero) {
  EXPECT_DOUBLE_EQ(
      WeightedSplitImpurity(SplitCriterion::kGini, {5, 0}, {0, 5}), 0.0);
}

TEST(CriterionTest, WeightedSplitWeighsBySize) {
  // 9 pure tuples + 1-tuple impure side barely moves the score.
  const double score =
      WeightedSplitImpurity(SplitCriterion::kGini, {9, 0}, {1, 1});
  EXPECT_NEAR(score, (2.0 / 11.0) * 0.5, 1e-12);
}

TEST(CriterionTest, ToStringNames) {
  EXPECT_EQ(ToString(SplitCriterion::kGini), "gini");
  EXPECT_EQ(ToString(SplitCriterion::kEntropy), "entropy");
}

// ------------------------------------------------------------ label runs --

TEST(LabelRunsTest, Figure1AgeClassString) {
  const Dataset d = MakeFigure1Dataset();
  const auto s = ClassString(d.SortedProjection(0));
  EXPECT_EQ(ClassStringText(s), "AAABAB");  // HHHLHL with H=A, L=B
}

TEST(LabelRunsTest, Figure1AgeRuns) {
  const Dataset d = MakeFigure1Dataset();
  const auto runs = LabelRunsOf(d, 0);
  // Four runs: HHH, L, H, L (paper Section 4).
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0], (LabelRun{0, 0, 3}));
  EXPECT_EQ(runs[1], (LabelRun{1, 3, 4}));
  EXPECT_EQ(runs[2], (LabelRun{0, 4, 5}));
  EXPECT_EQ(runs[3], (LabelRun{1, 5, 6}));
}

TEST(LabelRunsTest, Figure1SalaryRuns) {
  const Dataset d = MakeFigure1Dataset();
  const auto runs = LabelRunsOf(d, 1);  // HHHLLH
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].length(), 3u);
  EXPECT_EQ(runs[1].length(), 2u);
  EXPECT_EQ(runs[2].length(), 1u);
}

TEST(LabelRunsTest, EmptyString) {
  EXPECT_TRUE(ComputeLabelRuns({}).empty());
}

TEST(LabelRunsTest, SingleRun) {
  const auto runs = ComputeLabelRuns({2, 2, 2});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (LabelRun{2, 0, 3}));
}

TEST(LabelRunsTest, AlternatingRuns) {
  const auto runs = ComputeLabelRuns({0, 1, 0, 1});
  ASSERT_EQ(runs.size(), 4u);
  for (const auto& run : runs) EXPECT_EQ(run.length(), 1u);
}

TEST(LabelRunsTest, ReversedString) {
  EXPECT_EQ(Reversed({0, 1, 2}), (std::vector<ClassId>{2, 1, 0}));
  EXPECT_TRUE(Reversed({}).empty());
}

TEST(LabelRunsTest, ClassStringTextRejectsLargeIds) {
  EXPECT_DEATH(ClassStringText({26}), "not renderable");
}

// --------------------------------------------------- run-boundary lemma --

TEST(RunBoundaryTest, Figure1AgeCandidates) {
  const Dataset d = MakeFigure1Dataset();
  const auto s = AttributeSummary::FromDataset(d, 0);
  // Ages 17,20,23 | 32 | 43 | 50 with labels H H H L H L: boundaries
  // after 23 (idx 3), after 32 (idx 4), after 43 (idx 5) — exactly the
  // paper's candidate split locations 23, 32, 43.
  EXPECT_EQ(RunBoundaryCandidates(s), (std::vector<size_t>{3, 4, 5}));
}

TEST(RunBoundaryTest, PureAttributeHasNoCandidates) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 0);
  d.AddRow({3}, 0);
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_TRUE(RunBoundaryCandidates(s).empty());
}

TEST(RunBoundaryTest, MixedValueCreatesCandidatesOnBothSides) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 0);
  d.AddRow({2}, 1);  // value 2 is non-monochromatic
  d.AddRow({3}, 0);
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(RunBoundaryCandidates(s), (std::vector<size_t>{1, 2}));
}

TEST(RunBoundaryTest, AllBoundariesWhenAlternating) {
  Dataset d({"x"}, {"a", "b"});
  for (int v = 0; v < 6; ++v) d.AddRow({static_cast<double>(v)}, v % 2);
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(RunBoundaryCandidates(s).size(), 5u);
}

TEST(RunBoundaryTest, AppendVariantMatchesAndReusesTheBuffer) {
  // The allocation-free variant must clear its buffer and reproduce
  // RunBoundaryCandidates exactly, across summaries of different shapes.
  Rng rng(17);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(250), rng);
  std::vector<size_t> out{99, 98, 97};  // stale content must vanish
  for (size_t attr = 0; attr < d.NumAttributes(); ++attr) {
    const auto s = AttributeSummary::FromDataset(d, attr);
    AppendRunBoundaryCandidates(s, out);
    EXPECT_EQ(out, RunBoundaryCandidates(s)) << "attribute " << attr;
  }
}

TEST(RunBoundaryTest, AppendMonoClassesMatchesMonoClassAt) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 0);
  d.AddRow({2}, 1);  // mixed value
  d.AddRow({3}, 1);
  const auto s = AttributeSummary::FromDataset(d, 0);
  std::vector<ClassId> mono{7};  // stale content must vanish
  AppendMonoClasses(s, mono);
  ASSERT_EQ(mono.size(), s.NumDistinct());
  EXPECT_EQ(mono, (std::vector<ClassId>{0, kNoClass, 1}));
  for (size_t i = 0; i < mono.size(); ++i) {
    EXPECT_EQ(mono[i], s.MonoClassAt(i)) << "value " << i;
  }
}

// ------------------------------------------- binned-slice summary path --

TEST(BinnedSliceTest, AssignFromBinnedSliceMatchesFromTuples) {
  // Property: bin-coding a sorted tuple sequence and rebuilding through
  // AssignFromBinnedSlice reproduces FromTuples field for field. This is
  // the equivalence the frontier builder's bit-identity rests on.
  Rng rng(23);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(200), rng);
  for (size_t attr = 0; attr < d.NumAttributes(); ++attr) {
    std::vector<ValueLabel> tuples;
    const auto& col = d.Column(attr);
    for (size_t r = 0; r < d.NumRows(); ++r) {
      tuples.push_back(ValueLabel{col[r], d.Label(r)});
    }
    std::sort(tuples.begin(), tuples.end(), ValueLabelLess());
    // Bin-code: dense rank per distinct value, exact value table, packed
    // into the frontier's (bin, row, label) element words.
    std::vector<uint64_t> elems;
    std::vector<AttrValue> bin_values;
    for (const ValueLabel& t : tuples) {
      if (bin_values.empty() || bin_values.back() != t.value) {
        bin_values.push_back(t.value);
      }
      elems.push_back(PackElem(bin_values.size() - 1,
                               static_cast<uint32_t>(elems.size()), t.label));
    }
    const auto expected =
        AttributeSummary::FromSortedTuples(tuples, d.NumClasses());
    AttributeSummary got;
    got.AssignFromBinnedSlice(elems.data(), elems.size(), bin_values.data(),
                              d.NumClasses());
    ASSERT_EQ(got.NumDistinct(), expected.NumDistinct()) << "attr " << attr;
    EXPECT_EQ(got.NumTuples(), expected.NumTuples());
    for (size_t i = 0; i < expected.NumDistinct(); ++i) {
      EXPECT_EQ(got.ValueAt(i), expected.ValueAt(i));
      EXPECT_EQ(got.CountAt(i), expected.CountAt(i));
      for (size_t c = 0; c < expected.NumClasses(); ++c) {
        EXPECT_EQ(got.ClassCountAt(i, static_cast<ClassId>(c)),
                  expected.ClassCountAt(i, static_cast<ClassId>(c)));
      }
    }
    // Rebuilding into the same object must fully overwrite, not append.
    got.AssignFromBinnedSlice(elems.data(), elems.size(), bin_values.data(),
                              d.NumClasses());
    EXPECT_EQ(got.NumDistinct(), expected.NumDistinct());
    EXPECT_EQ(got.NumTuples(), expected.NumTuples());
  }
}

TEST(BinnedSliceTest, AssignDifferenceMatchesDirectSummaryOfRemainder) {
  // Property: (full - part) computed by integer subtraction is, field for
  // field, the summary FromTuples would build over the remaining tuples —
  // the equivalence that lets the frontier builder scan only the smaller
  // child of a split and derive the sibling.
  Rng rng(31);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(200), rng);
  for (size_t attr = 0; attr < d.NumAttributes(); ++attr) {
    std::vector<ValueLabel> all;
    const auto& col = d.Column(attr);
    for (size_t r = 0; r < d.NumRows(); ++r) {
      all.push_back(ValueLabel{col[r], d.Label(r)});
    }
    // Deterministic pseudo-random subset as the removed side.
    std::vector<ValueLabel> removed;
    std::vector<ValueLabel> rest;
    for (size_t r = 0; r < all.size(); ++r) {
      ((r * 2654435761u) % 3 == 0 ? removed : rest).push_back(all[r]);
    }
    const auto full = AttributeSummary::FromTuples(all, d.NumClasses());
    const auto part = AttributeSummary::FromTuples(removed, d.NumClasses());
    const auto expected = AttributeSummary::FromTuples(rest, d.NumClasses());
    AttributeSummary got;
    got.AssignDifference(full, part);
    ASSERT_EQ(got.NumDistinct(), expected.NumDistinct()) << "attr " << attr;
    EXPECT_EQ(got.NumTuples(), expected.NumTuples());
    for (size_t i = 0; i < expected.NumDistinct(); ++i) {
      EXPECT_EQ(got.ValueAt(i), expected.ValueAt(i));
      EXPECT_EQ(got.CountAt(i), expected.CountAt(i));
      for (size_t c = 0; c < expected.NumClasses(); ++c) {
        EXPECT_EQ(got.ClassCountAt(i, static_cast<ClassId>(c)),
                  expected.ClassCountAt(i, static_cast<ClassId>(c)));
      }
    }
    // Edges: subtracting nothing reproduces `full`; subtracting
    // everything leaves the empty summary. Reuses `got` in place.
    const AttributeSummary none =
        AttributeSummary::FromTuples({}, d.NumClasses());
    got.AssignDifference(full, none);
    EXPECT_EQ(got.NumDistinct(), full.NumDistinct());
    EXPECT_EQ(got.NumTuples(), full.NumTuples());
    got.AssignDifference(full, full);
    EXPECT_EQ(got.NumDistinct(), 0u);
    EXPECT_EQ(got.NumTuples(), 0u);
  }
}

}  // namespace
}  // namespace popp
