#include <gtest/gtest.h>

#include "data/summary.h"
#include "synth/presets.h"
#include "tree/criterion.h"
#include "tree/label_runs.h"

namespace popp {
namespace {

// ------------------------------------------------------------- criterion --

TEST(CriterionTest, GiniPureIsZero) {
  EXPECT_DOUBLE_EQ(GiniImpurity({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0, 7, 0}), 0.0);
}

TEST(CriterionTest, GiniBalancedBinary) {
  EXPECT_DOUBLE_EQ(GiniImpurity({5, 5}), 0.5);
}

TEST(CriterionTest, GiniMulticlassUniform) {
  EXPECT_NEAR(GiniImpurity({3, 3, 3}), 2.0 / 3.0, 1e-12);
}

TEST(CriterionTest, GiniEmpty) {
  EXPECT_DOUBLE_EQ(GiniImpurity({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0, 0}), 0.0);
}

TEST(CriterionTest, EntropyPureIsZero) {
  EXPECT_DOUBLE_EQ(EntropyImpurity({4, 0}), 0.0);
}

TEST(CriterionTest, EntropyBalancedBinaryIsOneBit) {
  EXPECT_DOUBLE_EQ(EntropyImpurity({8, 8}), 1.0);
}

TEST(CriterionTest, EntropyUniformFourWayIsTwoBits) {
  EXPECT_DOUBLE_EQ(EntropyImpurity({2, 2, 2, 2}), 2.0);
}

TEST(CriterionTest, ImpurityDispatch) {
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kGini, {5, 5}), 0.5);
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kEntropy, {5, 5}), 1.0);
}

TEST(CriterionTest, WeightedSplitIsSymmetric) {
  const std::vector<uint64_t> l{8, 2};
  const std::vector<uint64_t> r{1, 9};
  for (auto criterion : {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    EXPECT_DOUBLE_EQ(WeightedSplitImpurity(criterion, l, r),
                     WeightedSplitImpurity(criterion, r, l));
  }
}

TEST(CriterionTest, PerfectSplitScoresZero) {
  EXPECT_DOUBLE_EQ(
      WeightedSplitImpurity(SplitCriterion::kGini, {5, 0}, {0, 5}), 0.0);
}

TEST(CriterionTest, WeightedSplitWeighsBySize) {
  // 9 pure tuples + 1-tuple impure side barely moves the score.
  const double score =
      WeightedSplitImpurity(SplitCriterion::kGini, {9, 0}, {1, 1});
  EXPECT_NEAR(score, (2.0 / 11.0) * 0.5, 1e-12);
}

TEST(CriterionTest, ToStringNames) {
  EXPECT_EQ(ToString(SplitCriterion::kGini), "gini");
  EXPECT_EQ(ToString(SplitCriterion::kEntropy), "entropy");
}

// ------------------------------------------------------------ label runs --

TEST(LabelRunsTest, Figure1AgeClassString) {
  const Dataset d = MakeFigure1Dataset();
  const auto s = ClassString(d.SortedProjection(0));
  EXPECT_EQ(ClassStringText(s), "AAABAB");  // HHHLHL with H=A, L=B
}

TEST(LabelRunsTest, Figure1AgeRuns) {
  const Dataset d = MakeFigure1Dataset();
  const auto runs = LabelRunsOf(d, 0);
  // Four runs: HHH, L, H, L (paper Section 4).
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0], (LabelRun{0, 0, 3}));
  EXPECT_EQ(runs[1], (LabelRun{1, 3, 4}));
  EXPECT_EQ(runs[2], (LabelRun{0, 4, 5}));
  EXPECT_EQ(runs[3], (LabelRun{1, 5, 6}));
}

TEST(LabelRunsTest, Figure1SalaryRuns) {
  const Dataset d = MakeFigure1Dataset();
  const auto runs = LabelRunsOf(d, 1);  // HHHLLH
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].length(), 3u);
  EXPECT_EQ(runs[1].length(), 2u);
  EXPECT_EQ(runs[2].length(), 1u);
}

TEST(LabelRunsTest, EmptyString) {
  EXPECT_TRUE(ComputeLabelRuns({}).empty());
}

TEST(LabelRunsTest, SingleRun) {
  const auto runs = ComputeLabelRuns({2, 2, 2});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (LabelRun{2, 0, 3}));
}

TEST(LabelRunsTest, AlternatingRuns) {
  const auto runs = ComputeLabelRuns({0, 1, 0, 1});
  ASSERT_EQ(runs.size(), 4u);
  for (const auto& run : runs) EXPECT_EQ(run.length(), 1u);
}

TEST(LabelRunsTest, ReversedString) {
  EXPECT_EQ(Reversed({0, 1, 2}), (std::vector<ClassId>{2, 1, 0}));
  EXPECT_TRUE(Reversed({}).empty());
}

TEST(LabelRunsTest, ClassStringTextRejectsLargeIds) {
  EXPECT_DEATH(ClassStringText({26}), "not renderable");
}

// --------------------------------------------------- run-boundary lemma --

TEST(RunBoundaryTest, Figure1AgeCandidates) {
  const Dataset d = MakeFigure1Dataset();
  const auto s = AttributeSummary::FromDataset(d, 0);
  // Ages 17,20,23 | 32 | 43 | 50 with labels H H H L H L: boundaries
  // after 23 (idx 3), after 32 (idx 4), after 43 (idx 5) — exactly the
  // paper's candidate split locations 23, 32, 43.
  EXPECT_EQ(RunBoundaryCandidates(s), (std::vector<size_t>{3, 4, 5}));
}

TEST(RunBoundaryTest, PureAttributeHasNoCandidates) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 0);
  d.AddRow({3}, 0);
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_TRUE(RunBoundaryCandidates(s).empty());
}

TEST(RunBoundaryTest, MixedValueCreatesCandidatesOnBothSides) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({2}, 0);
  d.AddRow({2}, 1);  // value 2 is non-monochromatic
  d.AddRow({3}, 0);
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(RunBoundaryCandidates(s), (std::vector<size_t>{1, 2}));
}

TEST(RunBoundaryTest, AllBoundariesWhenAlternating) {
  Dataset d({"x"}, {"a", "b"});
  for (int v = 0; v < 6; ++v) d.AddRow({static_cast<double>(v)}, v % 2);
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(RunBoundaryCandidates(s).size(), 5u);
}

}  // namespace
}  // namespace popp
