#include <gtest/gtest.h>

#include "core/recipe.h"
#include "synth/covtype_like.h"
#include "transform/plan.h"
#include "transform/tree_decode.h"
#include "tree/builder.h"
#include "tree/compare.h"

namespace popp {
namespace {

Dataset RecipeData(uint64_t seed = 3) {
  Rng rng(seed);
  return GenerateCovtypeLike(SmallCovtypeSpec(1200), rng);
}

TEST(RecipeTest, ProducesOneDecisionPerAttribute) {
  const Dataset d = RecipeData();
  HardeningTargets targets;
  targets.trials = 7;
  const auto decisions =
      RecommendPerAttributeOptions(d, PiecewiseOptions{}, targets, 5);
  ASSERT_EQ(decisions.size(), d.NumAttributes());
  for (const auto& decision : decisions) {
    EXPECT_GE(decision.probes, 1u);
    EXPECT_GE(decision.options.min_breakpoints, 1u);
    EXPECT_GE(decision.measured_risk, 0.0);
    EXPECT_LE(decision.measured_risk, 1.0);
  }
}

TEST(RecipeTest, AcceptedAttributesMeetTheTarget) {
  const Dataset d = RecipeData();
  HardeningTargets targets;
  targets.max_risk = 0.35;
  targets.trials = 7;
  const auto decisions =
      RecommendPerAttributeOptions(d, PiecewiseOptions{}, targets, 7);
  for (const auto& decision : decisions) {
    if (decision.met_target) {
      EXPECT_LE(decision.measured_risk, targets.max_risk);
    } else {
      EXPECT_GT(decision.measured_risk, targets.max_risk);
    }
  }
}

TEST(RecipeTest, LooseTargetAcceptsBaseConfiguration) {
  const Dataset d = RecipeData();
  HardeningTargets targets;
  targets.max_risk = 1.0;  // anything goes
  targets.trials = 3;
  PiecewiseOptions base;
  base.min_breakpoints = 9;
  const auto decisions =
      RecommendPerAttributeOptions(d, base, targets, 9);
  for (const auto& decision : decisions) {
    EXPECT_TRUE(decision.met_target);
    EXPECT_EQ(decision.options.min_breakpoints, 9u);
    EXPECT_EQ(decision.probes, 1u);
  }
}

TEST(RecipeTest, ImpossibleTargetStopsAtCap) {
  const Dataset d = RecipeData();
  HardeningTargets targets;
  targets.max_risk = 1e-9;  // unreachable
  targets.trials = 3;
  targets.max_breakpoints = 32;
  const auto decisions =
      RecommendPerAttributeOptions(d, PiecewiseOptions{}, targets, 11);
  for (const auto& decision : decisions) {
    EXPECT_FALSE(decision.met_target);
    EXPECT_LE(decision.options.min_breakpoints, 32u);
  }
}

TEST(RecipeTest, HardenedPlanStillPreservesOutcome) {
  // The whole point: hardening only changes privacy knobs, never the
  // guarantee.
  const Dataset d = RecipeData(13);
  HardeningTargets targets;
  targets.trials = 5;
  const auto decisions =
      RecommendPerAttributeOptions(d, PiecewiseOptions{}, targets, 13);
  std::vector<PiecewiseOptions> per_attr;
  for (const auto& decision : decisions) {
    per_attr.push_back(decision.options);
  }
  Rng rng(17);
  const TransformPlan plan =
      TransformPlan::CreatePerAttribute(d, per_attr, rng);
  const DecisionTreeBuilder builder;
  const DecisionTree direct = builder.Build(d);
  const DecisionTree decoded =
      DecodeTreeWithData(builder.Build(plan.EncodeDataset(d)), plan, d);
  EXPECT_TRUE(ExactlyEqual(direct, decoded))
      << DescribeDifference(direct, decoded);
}

TEST(RecipeTest, RenderedTableListsEveryAttribute) {
  const Dataset d = RecipeData();
  HardeningTargets targets;
  targets.trials = 3;
  const auto decisions =
      RecommendPerAttributeOptions(d, PiecewiseOptions{}, targets, 19);
  const std::string text = RenderHardeningDecisions(d, decisions);
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    EXPECT_NE(text.find(d.schema().AttributeName(a)), std::string::npos);
  }
}

TEST(RecipeTest, Deterministic) {
  const Dataset d = RecipeData();
  HardeningTargets targets;
  targets.trials = 5;
  const auto a =
      RecommendPerAttributeOptions(d, PiecewiseOptions{}, targets, 23);
  const auto b =
      RecommendPerAttributeOptions(d, PiecewiseOptions{}, targets, 23);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].options.min_breakpoints, b[i].options.min_breakpoints);
    EXPECT_EQ(a[i].measured_risk, b[i].measured_risk);
  }
}

}  // namespace
}  // namespace popp
