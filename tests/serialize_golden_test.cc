#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/shrink.h"
#include "data/cols.h"
#include "data/dataset.h"
#include "transform/plan.h"
#include "transform/serialize.h"
#include "tree/compare.h"
#include "tree/serialize.h"
#include "util/rng.h"

/// \file
/// Golden-file coverage of the persisted formats. The fixtures under
/// tests/data/ are committed bytes; parse → serialize must reproduce them
/// exactly. A failure here means the on-disk format changed — which silently
/// invalidates every custodian key and reproducer recipe in the wild — so a
/// deliberate format change must regenerate the fixtures *and* bump the
/// format version line.

namespace popp {
namespace {

std::string DataDir() { return POPP_TEST_DATA_DIR; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(SerializeGolden, PlanRoundTripIsByteStable) {
  const std::string bytes = ReadFile(DataDir() + "/golden_plan.key");
  ASSERT_FALSE(bytes.empty());
  auto plan = ParsePlan(bytes);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(SerializePlan(plan.value()), bytes);
}

TEST(SerializeGolden, TreeRoundTripIsByteStable) {
  const std::string bytes = ReadFile(DataDir() + "/golden_tree.txt");
  ASSERT_FALSE(bytes.empty());
  auto tree = ParseTree(bytes);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(SerializeTree(tree.value()), bytes);
  // The reparse of the re-serialization is the same tree, not merely the
  // same bytes.
  auto again = ParseTree(SerializeTree(tree.value()));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(ExactlyEqual(tree.value(), again.value()));
}

TEST(SerializeGolden, ReproducerRecipeRoundTripIsByteStable) {
  const std::string recipe_path = DataDir() + "/golden_repro.recipe";
  const std::string recipe_bytes = ReadFile(recipe_path);
  const std::string csv_bytes = ReadFile(DataDir() + "/golden_repro.csv");
  auto repro = check::LoadReproducer(recipe_path);
  ASSERT_TRUE(repro.ok()) << repro.status().ToString();

  // Rewrite under the same base names; the bytes must match the fixtures.
  const std::string dir = testing::TempDir();
  const std::string out_csv = dir + "/golden_repro.csv";
  const std::string out_recipe = dir + "/golden_repro.recipe";
  const Status written =
      check::WriteReproducer(repro.value(), out_csv, out_recipe);
  ASSERT_TRUE(written.ok()) << written.ToString();
  EXPECT_EQ(ReadFile(out_recipe), recipe_bytes);
  EXPECT_EQ(ReadFile(out_csv), csv_bytes);
  std::remove(out_csv.c_str());
  std::remove(out_recipe.c_str());
}

// ------------------------------------------- corrupt-key corpus --------

/// The committed corruption corpus: each file is the v2 golden plan with
/// one specific kind of damage, and the loader must refuse it with
/// kDataLoss and the exact diagnostic family a custodian would need to
/// understand what happened to their key.
TEST(SerializeGolden, CorruptPlanCorpusIsRejectedWithDataLoss) {
  struct CorruptCase {
    const char* file;
    const char* expect;  ///< required diagnostic substring
  };
  const CorruptCase cases[] = {
      // Cut mid-payload: the footer line is gone entirely.
      {"plan_truncated.key", "requires an integrity footer"},
      // One digit of a piece endpoint changed: the payload hashes wrong.
      {"plan_bitflip.key", "integrity checksum mismatch"},
      // Footer checksum altered, payload intact: the footer lies.
      {"plan_bad_crc.key", "integrity checksum mismatch"},
      // Not a popp document at all (binary magic of another format).
      {"plan_garbage.key", "expected 'popp-plan'"},
  };
  for (const auto& c : cases) {
    const std::string bytes =
        ReadFile(DataDir() + "/corrupt/" + std::string(c.file));
    ASSERT_FALSE(bytes.empty()) << c.file;
    auto plan = ParsePlan(bytes);
    ASSERT_FALSE(plan.ok()) << c.file << " parsed despite the corruption";
    EXPECT_EQ(plan.status().code(), StatusCode::kDataLoss) << c.file;
    EXPECT_NE(plan.status().message().find(c.expect), std::string::npos)
        << c.file << " diagnostic: " << plan.status().message();
  }
}

TEST(SerializeGolden, LegacyV1PlanWithoutFooterStillLoads) {
  auto plan = LoadPlan(DataDir() + "/corrupt/plan_v1_legacy.key");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Re-saving upgrades the key to the checksummed v2 format.
  const std::string upgraded = SerializePlan(plan.value());
  EXPECT_EQ(upgraded.rfind("popp-plan v2\n", 0), 0u);
  EXPECT_NE(upgraded.find("\nfooter "), std::string::npos);
}

TEST(SerializeGolden, CorruptTreeCorpusIsRejectedWithDataLoss) {
  const std::string bytes =
      ReadFile(DataDir() + "/corrupt/tree_truncated.txt");
  ASSERT_FALSE(bytes.empty());
  auto tree = ParseTree(bytes);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(tree.status().message().find("integrity footer"),
            std::string::npos)
      << tree.status().message();
}

TEST(SerializeGolden, LegacyV1TreeWithoutFooterStillLoads) {
  auto tree = LoadTree(DataDir() + "/corrupt/tree_v1_legacy.txt");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(SerializeTree(tree.value()).rfind("popp-tree v2\n", 0), 0u);
}

// ------------------------------------------- popp-cols golden ----------

/// The dataset golden_small.cols was generated from. Any layout change —
/// header field order, extent framing, dictionary ordering, CRC discipline
/// — turns this byte comparison into a visible diff instead of a silent
/// format break, and must bump the container version.
Dataset GoldenColsDataset() {
  Dataset d({"elev", "slope"}, {"a", "b"});
  for (int i = 0; i < 8; ++i) {
    d.AddRow({static_cast<double>(i % 3), i * 1.5},
             static_cast<ClassId>(i % 2));
  }
  return d;
}

TEST(SerializeGolden, ColsGoldenContainerIsBytePinned) {
  const std::string bytes = ReadFile(DataDir() + "/golden_small.cols");
  ASSERT_FALSE(bytes.empty());
  // Serializing the reference dataset reproduces the committed bytes.
  const Dataset d = GoldenColsDataset();
  EXPECT_EQ(SerializeCols(d), bytes);
  // Parse -> serialize is the identity on the fixture too.
  auto parsed = ParseCols(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == d);
  EXPECT_EQ(SerializeCols(parsed.value()), bytes);
}

TEST(SerializeGolden, ColsGoldenLayoutFactsHold) {
  const std::string bytes = ReadFile(DataDir() + "/golden_small.cols");
  ASSERT_GE(bytes.size(), 64u);
  EXPECT_EQ(bytes.substr(0, 8), "poppcols");
  auto view = ColsView::Open(bytes);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().num_rows(), 8u);
  EXPECT_EQ(view.value().num_attributes(), 2u);
  // elev has 3 distinct values (dict); slope is all-distinct (raw).
  EXPECT_TRUE(view.value().is_dict(0));
  EXPECT_FALSE(view.value().is_dict(1));
}

// ------------------------------------------- endpoint exactness --------

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Adversarial attribute values: the smallest denormal, a value needing
/// all 17 digits, a nextafter pair (adjacent doubles), and huge-magnitude
/// endpoints. Every one must survive serialize → parse bit-for-bit.
std::vector<double> AdversarialValues() {
  return {-1e150,
          -5e-324,
          0.0,
          5e-324,
          1e-300,
          1.0,
          std::nextafter(1.0, 2.0),
          3.141592653589793,
          0.1,
          1e150};
}

Dataset AdversarialDataset() {
  Dataset d({"x"}, {"a", "b"});
  const auto values = AdversarialValues();
  for (size_t i = 0; i < values.size(); ++i) {
    d.AddRow({values[i]}, static_cast<ClassId>(i % 2));
  }
  return d;
}

TEST(SerializeGolden, AdversarialEndpointsRoundTripBitExact) {
  const Dataset d = AdversarialDataset();
  for (const bool anti : {false, true}) {
    PiecewiseOptions options;
    options.policy = BreakpointPolicy::kNone;
    options.global_anti_monotone = anti;
    Rng rng(7);
    const TransformPlan plan = TransformPlan::Create(d, options, rng);
    const std::string text = SerializePlan(plan);
    auto reparsed = ParsePlan(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(SerializePlan(reparsed.value()), text);
    const PiecewiseTransform& before = plan.transform(0);
    const PiecewiseTransform& after = reparsed.value().transform(0);
    ASSERT_EQ(after.NumPieces(), before.NumPieces());
    for (size_t i = 0; i < before.NumPieces(); ++i) {
      EXPECT_EQ(Bits(after.piece(i).domain_lo), Bits(before.piece(i).domain_lo));
      EXPECT_EQ(Bits(after.piece(i).domain_hi), Bits(before.piece(i).domain_hi));
      EXPECT_EQ(Bits(after.piece(i).out_lo), Bits(before.piece(i).out_lo));
      EXPECT_EQ(Bits(after.piece(i).out_hi), Bits(before.piece(i).out_hi));
    }
    // And the reloaded key encodes every active-domain value bit-identically
    // — the property a custodian actually depends on.
    for (const double v : AdversarialValues()) {
      EXPECT_EQ(Bits(after.Apply(v)), Bits(before.Apply(v))) << "value " << v;
    }
  }
}

TEST(SerializeGolden, ManyPieceEndpointsRoundTripBitExact) {
  // ChooseBP breakpoints land on arbitrary midpoints between adversarial
  // values, so the serialized endpoints get irrational-looking decimals.
  Dataset d({"x", "y"}, {"a", "b"});
  Rng data_rng(3);
  for (int i = 0; i < 120; ++i) {
    d.AddRow({data_rng.Uniform(-1e3, 1e3), data_rng.Uniform(0.0, 1e-5)},
             static_cast<ClassId>(data_rng.Bernoulli(0.5) ? 1 : 0));
  }
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseBP;
  options.min_breakpoints = 10;
  Rng rng(11);
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const std::string text = SerializePlan(plan);
  auto reparsed = ParsePlan(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(SerializePlan(reparsed.value()), text);
  for (size_t attr = 0; attr < plan.NumAttributes(); ++attr) {
    const PiecewiseTransform& before = plan.transform(attr);
    const PiecewiseTransform& after = reparsed.value().transform(attr);
    ASSERT_EQ(after.NumPieces(), before.NumPieces());
    for (size_t i = 0; i < before.NumPieces(); ++i) {
      EXPECT_EQ(Bits(after.piece(i).domain_lo),
                Bits(before.piece(i).domain_lo));
      EXPECT_EQ(Bits(after.piece(i).domain_hi),
                Bits(before.piece(i).domain_hi));
      EXPECT_EQ(Bits(after.piece(i).out_lo), Bits(before.piece(i).out_lo));
      EXPECT_EQ(Bits(after.piece(i).out_hi), Bits(before.piece(i).out_hi));
    }
  }
}

TEST(SerializeGolden, ParserAcceptsHexFloatEndpoints) {
  const Dataset d = AdversarialDataset();
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kNone;
  Rng rng(13);
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  std::string text = SerializePlan(plan);
  // This test rewrites payload bytes, which the checksummed v2 format
  // rightly rejects — so hand-edit a v1 document (no integrity footer).
  const size_t footer = text.rfind("\nfooter ");
  ASSERT_NE(footer, std::string::npos);
  text = text.substr(0, footer + 1);
  const std::string v2_header = "popp-plan v2";
  ASSERT_EQ(text.rfind(v2_header, 0), 0u);
  text.replace(0, v2_header.size(), "popp-plan v1");
  // Respell the first piece's domain_lo in C99 hex-float form everywhere it
  // occurs; the parse must land on the identical bits.
  const double dlo = plan.transform(0).piece(0).domain_lo;
  char dec[48];
  std::snprintf(dec, sizeof(dec), "%.17g", dlo);
  char hex[48];
  std::snprintf(hex, sizeof(hex), "%a", dlo);
  size_t pos = 0;
  size_t replaced = 0;
  while ((pos = text.find(dec, pos)) != std::string::npos) {
    text.replace(pos, std::strlen(dec), hex);
    pos += std::strlen(hex);
    replaced++;
  }
  ASSERT_GE(replaced, 1u);
  auto reparsed = ParsePlan(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(Bits(reparsed.value().transform(0).piece(0).domain_lo),
            Bits(dlo));
  // Re-serialization normalizes back to the canonical decimal bytes.
  EXPECT_EQ(SerializePlan(reparsed.value()), SerializePlan(plan));
}

}  // namespace
}  // namespace popp
