#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/shrink.h"
#include "transform/serialize.h"
#include "tree/compare.h"
#include "tree/serialize.h"

/// \file
/// Golden-file coverage of the persisted formats. The fixtures under
/// tests/data/ are committed bytes; parse → serialize must reproduce them
/// exactly. A failure here means the on-disk format changed — which silently
/// invalidates every custodian key and reproducer recipe in the wild — so a
/// deliberate format change must regenerate the fixtures *and* bump the
/// format version line.

namespace popp {
namespace {

std::string DataDir() { return POPP_TEST_DATA_DIR; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(SerializeGolden, PlanRoundTripIsByteStable) {
  const std::string bytes = ReadFile(DataDir() + "/golden_plan.key");
  ASSERT_FALSE(bytes.empty());
  auto plan = ParsePlan(bytes);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(SerializePlan(plan.value()), bytes);
}

TEST(SerializeGolden, TreeRoundTripIsByteStable) {
  const std::string bytes = ReadFile(DataDir() + "/golden_tree.txt");
  ASSERT_FALSE(bytes.empty());
  auto tree = ParseTree(bytes);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(SerializeTree(tree.value()), bytes);
  // The reparse of the re-serialization is the same tree, not merely the
  // same bytes.
  auto again = ParseTree(SerializeTree(tree.value()));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(ExactlyEqual(tree.value(), again.value()));
}

TEST(SerializeGolden, ReproducerRecipeRoundTripIsByteStable) {
  const std::string recipe_path = DataDir() + "/golden_repro.recipe";
  const std::string recipe_bytes = ReadFile(recipe_path);
  const std::string csv_bytes = ReadFile(DataDir() + "/golden_repro.csv");
  auto repro = check::LoadReproducer(recipe_path);
  ASSERT_TRUE(repro.ok()) << repro.status().ToString();

  // Rewrite under the same base names; the bytes must match the fixtures.
  const std::string dir = testing::TempDir();
  const std::string out_csv = dir + "/golden_repro.csv";
  const std::string out_recipe = dir + "/golden_repro.recipe";
  const Status written =
      check::WriteReproducer(repro.value(), out_csv, out_recipe);
  ASSERT_TRUE(written.ok()) << written.ToString();
  EXPECT_EQ(ReadFile(out_recipe), recipe_bytes);
  EXPECT_EQ(ReadFile(out_csv), csv_bytes);
  std::remove(out_csv.c_str());
  std::remove(out_recipe.c_str());
}

}  // namespace
}  // namespace popp
