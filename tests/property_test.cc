#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "arm/apriori.h"
#include "arm/mask.h"
#include "attack/spectral.h"
#include "check/oracles.h"
#include "data/summary.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/piecewise.h"
#include "transform/plan.h"
#include "tree/builder.h"
#include "tree/prune.h"
#include "tree/compare.h"
#include "tree/label_runs.h"

namespace popp {
namespace {

/// Seed-parameterized property sweeps: each property is checked against a
/// freshly generated dataset/transform per seed.
class SeedSweep : public testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST_P(SeedSweep, TransformIsBijectiveOnActiveDomain) {
  // Assertion logic lives in the check/ oracle; this sweep only supplies
  // the calibrated covtype-like cases the fuzzer's generator does not.
  Rng rng(GetParam());
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  PiecewiseOptions options;
  options.min_breakpoints = 6;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const auto result = check::CheckEncodeBijective(d, plan);
  EXPECT_TRUE(result.passed) << result.message;
}

TEST_P(SeedSweep, GlobalInvariantHolds) {
  Rng rng(GetParam() * 31);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  for (bool anti : {false, true}) {
    PiecewiseOptions options;
    options.min_breakpoints = 9;
    options.global_anti_monotone = anti;
    Rng plan_rng(GetParam() * 17 + anti);
    const TransformPlan plan = TransformPlan::Create(d, options, plan_rng);
    const auto result = check::CheckGlobalInvariant(d, plan);
    EXPECT_TRUE(result.passed) << "anti=" << anti << ": " << result.message;
  }
}

TEST_P(SeedSweep, ClassStringPreservedOnDistinctValuedAttribute) {
  // Lemma 1: construct an attribute with all-distinct values (no ties) so
  // the class-string comparison is exact; the piecewise transform under
  // the global-monotone invariant with monotone pieces preserves it.
  Rng rng(GetParam() * 7 + 1);
  Dataset d({"x"}, {"a", "b", "c"});
  for (int i = 0; i < 120; ++i) {
    d.AddRow({static_cast<double>(i * 5 + (i % 3))},
             static_cast<ClassId>(rng.UniformInt(0, 2)));
  }
  PiecewiseOptions options;
  options.min_breakpoints = 10;
  options.family.anti_monotone_prob = 0.0;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset dp = plan.EncodeDataset(d);
  EXPECT_EQ(ClassString(d.SortedProjection(0)),
            ClassString(dp.SortedProjection(0)));
}

TEST_P(SeedSweep, LabelRunsPreservedEvenWithBijectivePieces) {
  // With permutations on monochromatic pieces the exact class string can
  // change *within* a run, but the run decomposition cannot.
  Rng rng(GetParam() * 11 + 3);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseMaxMP;
  options.min_breakpoints = 10;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset dp = plan.EncodeDataset(d);
  const auto result = check::CheckLabelRunPreservation(d, plan, dp);
  EXPECT_TRUE(result.passed) << result.message;
}

TEST_P(SeedSweep, NoOutcomeChangeOnCovtypeLikeData) {
  // Theorems 1–2 via the check/ oracle, unpruned and pruned, on data whose
  // value distributions differ from the fuzzer generator's.
  Rng rng(GetParam() * 59 + 31);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(400), rng);
  PiecewiseOptions transform_options;
  transform_options.min_breakpoints = 8;
  transform_options.global_anti_monotone = (GetParam() % 2) == 0;
  const TransformPlan plan = TransformPlan::Create(d, transform_options, rng);
  const Dataset dp = plan.EncodeDataset(d);
  BuildOptions build_options;
  build_options.max_depth = 6;
  const std::vector<SplitCriterion> criteria = {SplitCriterion::kGini,
                                                SplitCriterion::kEntropy};
  for (bool pruned : {false, true}) {
    const auto result = check::CheckTreeEquivalence(d, plan, dp, build_options,
                                                    criteria, pruned);
    EXPECT_TRUE(result.passed) << "pruned=" << pruned << ": "
                               << result.message;
  }
}

TEST_P(SeedSweep, Lemma2BestSplitLiesOnRunBoundary) {
  // Lemma 2 as a property: the unrestricted best split coincides with a
  // label-run boundary candidate.
  Rng rng(GetParam() * 13 + 5);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  BuildOptions options;
  options.candidate_mode = BuildOptions::CandidateMode::kAllBoundaries;
  const DecisionTreeBuilder builder(options);
  std::vector<size_t> rows(d.NumRows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  const SplitDecision split = builder.FindBestSplit(d, rows);
  ASSERT_TRUE(split.found);
  const auto s = AttributeSummary::FromDataset(d, split.attribute);
  const auto candidates = RunBoundaryCandidates(s);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                      split.boundary_index),
            candidates.end())
      << "best split at boundary " << split.boundary_index
      << " is not a run boundary";
}

TEST_P(SeedSweep, ThresholdDecodeLandsBetweenAdjacentValues) {
  // For every adjacent pair of distinct values, the midpoint of their
  // images must decode to a value strictly between them (this is what
  // makes decoded trees route training data identically).
  Rng rng(GetParam() * 19 + 7);
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 80; ++i) {
    d.AddRow({static_cast<double>(i * 3)},
             static_cast<ClassId>(rng.UniformInt(0, 1)));
  }
  PiecewiseOptions options;
  options.min_breakpoints = 8;
  // Monotone pieces only: for anti-monotone or bijective pieces the
  // boundary thresholds of real trees are midpoints of *rank-adjacent
  // transformed* values, not of the images of domain-adjacent values,
  // so this particular probe is only meaningful for monotone pieces.
  options.policy = BreakpointPolicy::kChooseBP;
  options.family.anti_monotone_prob = 0.0;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const auto s = AttributeSummary::FromDataset(d, 0);
  const PiecewiseTransform& f = plan.transform(0);
  for (size_t i = 0; i + 1 < s.NumDistinct(); ++i) {
    const AttrValue lo = s.ValueAt(i);
    const AttrValue hi = s.ValueAt(i + 1);
    const AttrValue y_lo = f.Apply(lo);
    const AttrValue y_hi = f.Apply(hi);
    const AttrValue mid = (y_lo + y_hi) / 2;
    const auto decode = f.InverseThreshold(mid);
    // The decoded threshold must separate lo from hi in original space
    // (in one orientation or the other).
    const bool separates_forward =
        decode.value > lo && decode.value < hi && !decode.order_reversed;
    const bool separates_reversed =
        decode.value > lo && decode.value < hi && decode.order_reversed;
    EXPECT_TRUE(separates_forward || separates_reversed)
        << "pair (" << lo << ", " << hi << ") decoded to " << decode.value;
  }
}

TEST_P(SeedSweep, EncodedDatasetLooksPlausible) {
  // Section 1: T' (and D') should "look realistic": the transformed range
  // must stay within a small factor of the original magnitude.
  Rng rng(GetParam() * 23 + 9);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const Dataset dp = plan.EncodeDataset(d);
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    const auto so = AttributeSummary::FromDataset(d, a);
    const auto st = AttributeSummary::FromDataset(dp, a);
    const double original_width = so.MaxValue() - so.MinValue();
    const double released_width = st.MaxValue() - st.MinValue();
    EXPECT_LT(released_width, original_width * 2.0);
    EXPECT_GT(released_width, original_width * 0.5);
  }
}

TEST_P(SeedSweep, BuilderInsensitiveToRowOrder) {
  // Shuffling the rows must not change the induced tree (the builder's
  // decisions depend only on sorted class-count structure).
  Rng rng(GetParam() * 29 + 11);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  std::vector<size_t> perm(d.NumRows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.Shuffle(perm);
  const Dataset shuffled = d.Select(perm);
  const DecisionTreeBuilder builder;
  const DecisionTree a = builder.Build(d);
  const DecisionTree b = builder.Build(shuffled);
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_DOUBLE_EQ(a.Accuracy(d), b.Accuracy(d));
  EXPECT_TRUE(ExactlyEqual(a, b));
}


TEST_P(SeedSweep, PruneIsIdempotent) {
  Rng rng(GetParam() * 37 + 13);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  const DecisionTree full = DecisionTreeBuilder().Build(d);
  const DecisionTree once = PruneTree(full);
  const DecisionTree twice = PruneTree(once);
  EXPECT_TRUE(ExactlyEqual(once, twice));
}

TEST_P(SeedSweep, AprioriMatchesBruteForce) {
  // Cross-check the miner against brute-force support counting on a small
  // random basket database.
  Rng rng(GetParam() * 41 + 17);
  BasketSpec spec;
  spec.num_items = 12;
  spec.num_transactions = 150;
  spec.patterns = {{{1, 4}, 0.3}, {{2, 5, 8}, 0.2}};
  spec.noise_items = 2.0;
  const TransactionDb db = GenerateBaskets(spec, rng);
  AprioriOptions options;
  options.min_support = 0.1;
  options.max_itemset_size = 3;
  const auto frequent = MineFrequentItemsets(db, options);
  const size_t min_count =
      static_cast<size_t>(std::max(1.0, options.min_support * 150.0));
  // (a) every reported itemset really is frequent with the right count;
  std::set<Transaction> reported;
  for (const auto& f : frequent) {
    EXPECT_EQ(f.support, db.SupportCount(f.items));
    EXPECT_GE(f.support, min_count);
    reported.insert(f.items);
  }
  // (b) brute force over all itemsets of size <= 2 finds nothing extra.
  for (ItemId a = 0; a < spec.num_items; ++a) {
    if (db.SupportCount({a}) >= min_count) {
      EXPECT_TRUE(reported.count({a})) << "missing {" << a << "}";
    }
    for (ItemId b = a + 1; b < spec.num_items; ++b) {
      if (db.SupportCount({a, b}) >= min_count) {
        EXPECT_TRUE(reported.count({a, b}))
            << "missing {" << a << "," << b << "}";
      }
    }
  }
}

TEST_P(SeedSweep, EigenDecompositionReconstructsRandomMatrices) {
  Rng rng(GetParam() * 43 + 19);
  const size_t n = 5;
  // Random symmetric matrix.
  std::vector<std::vector<double>> m(n, std::vector<double>(n));
  double trace = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      m[i][j] = m[j][i] = rng.Uniform(-3.0, 3.0);
    }
    trace += m[i][i];
  }
  const EigenResult e = SymmetricEigen(m);
  // Eigenvalue sum equals the trace.
  double sum = 0.0;
  for (double v : e.values) sum += v;
  EXPECT_NEAR(sum, trace, 1e-8);
  // Spectral reconstruction.
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      double rebuilt = 0.0;
      for (size_t i = 0; i < n; ++i) {
        rebuilt += e.values[i] * e.vectors[i][r] * e.vectors[i][c];
      }
      EXPECT_NEAR(rebuilt, m[r][c], 1e-7);
    }
  }
}

TEST_P(SeedSweep, ApplyPreservesGlobalOrderOnArbitraryProbes) {
  // Apply is defined on the whole continuum (gaps bridged linearly): it
  // must be globally monotone on any probe set, not just active values.
  Rng rng(GetParam() * 47 + 23);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(500), rng);
  const auto s = AttributeSummary::FromDataset(d, 0);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseBP;  // monotone pieces only
  options.family.anti_monotone_prob = 0.0;
  options.min_breakpoints = 10;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  double prev_x = s.MinValue();
  double prev_y = f.Apply(prev_x);
  for (int i = 0; i < 500; ++i) {
    const double x =
        prev_x + rng.Uniform(0.01, 1.0) *
                     (double{s.MaxValue()} - double{s.MinValue()}) / 400.0;
    if (x > s.MaxValue()) break;
    const double y = f.Apply(x);
    EXPECT_GE(y, prev_y) << "x=" << x;
    prev_x = x;
    prev_y = y;
  }
}

TEST_P(SeedSweep, MaskSingletonEstimatorIsUnbiased) {
  // Averaged over independent distortions, the MASK estimator converges
  // on the true support.
  Rng rng(GetParam() * 53 + 29);
  BasketSpec spec;
  spec.num_items = 20;
  spec.num_transactions = 400;
  spec.patterns = {{{3}, 0.4}};
  const TransactionDb db = GenerateBaskets(spec, rng);
  const double truth = static_cast<double>(db.SupportCount({3})) / 400.0;
  double mean = 0.0;
  const int reps = 30;
  for (int rep = 0; rep < reps; ++rep) {
    const TransactionDb distorted = MaskDistort(db, MaskOptions{0.8}, rng);
    mean += MaskEstimateSupport(distorted, {3}, 0.8);
  }
  mean /= reps;
  EXPECT_NEAR(mean, truth, 0.03);
}

}  // namespace
}  // namespace popp

