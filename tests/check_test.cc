#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>

#include "check/generators.h"
#include "check/oracles.h"
#include "check/runner.h"
#include "check/shrink.h"
#include "transform/function.h"

/// \file
/// Tests of the checking harness itself: generator determinism and bounds,
/// the guarantee-envelope correlation between transform and builder
/// options, oracle verdicts on known-good and known-bad cases, shrinker
/// minimality, reproducer persistence, and pinned regressions for the
/// latent core bugs the fuzzer originally surfaced.

namespace popp::check {
namespace {

GeneratorOptions SmallGen() {
  GeneratorOptions g;
  g.max_rows = 60;
  return g;
}

TEST(Generators, TrialCasesAreDeterministicPerSeed) {
  const TrialCase a = GenerateTrialCase(SmallGen(), 99);
  const TrialCase b = GenerateTrialCase(SmallGen(), 99);
  EXPECT_EQ(a.plan_seed, b.plan_seed);
  ASSERT_EQ(a.data.NumRows(), b.data.NumRows());
  ASSERT_EQ(a.data.NumAttributes(), b.data.NumAttributes());
  for (size_t r = 0; r < a.data.NumRows(); ++r) {
    EXPECT_EQ(a.data.Label(r), b.data.Label(r));
    for (size_t at = 0; at < a.data.NumAttributes(); ++at) {
      EXPECT_EQ(a.data.Value(r, at), b.data.Value(r, at));
    }
  }
  const TrialCase c = GenerateTrialCase(SmallGen(), 100);
  EXPECT_NE(a.plan_seed, c.plan_seed);
}

TEST(Generators, DatasetsRespectConfiguredBounds) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const TrialCase c = GenerateTrialCase(SmallGen(), seed);
    EXPECT_GE(c.data.NumRows(), SmallGen().min_rows);
    // Duplicate-row injection may append up to NumRows()/2 extra rows.
    EXPECT_LE(c.data.NumRows(), SmallGen().max_rows + SmallGen().max_rows / 2);
    EXPECT_GE(c.data.NumAttributes(), SmallGen().min_attributes);
    EXPECT_LE(c.data.NumAttributes(), SmallGen().max_attributes);
  }
}

TEST(Generators, BuildOptionsStayInsideTheGuaranteeEnvelope) {
  // Whenever the transform can mix order within an attribute, the sampled
  // builder must either stick to run boundaries or use min_leaf_size 1
  // with a concave criterion (Lemma 2's envelope).
  size_t mixing_all_boundaries = 0;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const TrialCase c = GenerateTrialCase(SmallGen(), seed);
    if (!MayMixOrder(c.transform_options)) continue;
    if (c.build_options.candidate_mode !=
        BuildOptions::CandidateMode::kAllBoundaries) {
      continue;
    }
    ++mixing_all_boundaries;
    EXPECT_EQ(c.build_options.min_leaf_size, 1u) << "seed " << seed;
    EXPECT_NE(c.build_options.criterion, SplitCriterion::kGainRatio)
        << "seed " << seed;
  }
  EXPECT_GT(mixing_all_boundaries, 0u) << "envelope case never sampled";
}

TEST(Oracles, AllPassOnASweepOfGeneratedCases) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const TrialContext ctx =
        MakeTrialContext(GenerateTrialCase(SmallGen(), seed));
    for (const Oracle& oracle : AllOracles()) {
      const OracleResult r = oracle.run(ctx);
      EXPECT_TRUE(r.passed)
          << oracle.name << " seed " << seed << ": " << r.message;
    }
  }
}

TEST(Oracles, LabelRunOracleRejectsAShuffledRelease) {
  // Swap two released values across a run boundary: the run decomposition
  // changes and the oracle must say so.
  TrialCase c = GenerateTrialCase(SmallGen(), 3);
  TrialContext ctx = MakeTrialContext(c);
  // Find an attribute with at least two distinct released values.
  bool checked = false;
  for (size_t a = 0; a < ctx.released.NumAttributes() && !checked; ++a) {
    auto& col = ctx.released.MutableColumn(a);
    size_t lo = 0, hi = 0;
    for (size_t r = 1; r < col.size(); ++r) {
      if (col[r] < col[lo]) lo = r;
      if (col[r] > col[hi]) hi = r;
    }
    if (col[lo] == col[hi] ||
        ctx.c.data.Label(lo) == ctx.c.data.Label(hi)) {
      continue;
    }
    std::swap(col[lo], col[hi]);
    const OracleResult r =
        CheckLabelRunPreservation(ctx.c.data, ctx.plan, ctx.released);
    EXPECT_FALSE(r.passed);
    checked = true;
  }
  EXPECT_TRUE(checked) << "no swappable attribute found in the fixture";
}

TEST(Shrink, ShrinksARowCountPredicateToTheMinimum)
{
  // A synthetic failure — "at least 3 rows" — must shrink to exactly 3
  // rows and a single attribute.
  TrialCase c = GenerateTrialCase(SmallGen(), 12);
  ASSERT_GE(c.data.NumRows(), 3u);
  ShrinkStats stats;
  const TrialCase small = ShrinkCase(
      c, [](const TrialCase& t) { return t.data.NumRows() >= 3; }, &stats);
  EXPECT_EQ(small.data.NumRows(), 3u);
  EXPECT_EQ(small.data.NumAttributes(), 1u);
  EXPECT_GT(stats.candidates_tried, 0u);
}

TEST(Shrink, ReproducerRoundTripsThroughDisk) {
  const std::string dir = testing::TempDir();
  const std::string csv = dir + "/check_test_repro.csv";
  const std::string recipe = dir + "/check_test_repro.recipe";
  Reproducer repro{GenerateTrialCase(SmallGen(), 21), "label_runs",
                   "synthetic"};
  ASSERT_TRUE(WriteReproducer(repro, csv, recipe).ok());
  auto back = LoadReproducer(recipe);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const TrialCase& a = repro.c;
  const TrialCase& b = back.value().c;
  EXPECT_EQ(back.value().oracle_name, "label_runs");
  EXPECT_EQ(a.plan_seed, b.plan_seed);
  ASSERT_EQ(a.data.NumRows(), b.data.NumRows());
  for (size_t r = 0; r < a.data.NumRows(); ++r) {
    EXPECT_EQ(a.data.Label(r), b.data.Label(r));
    for (size_t at = 0; at < a.data.NumAttributes(); ++at) {
      EXPECT_EQ(a.data.Value(r, at), b.data.Value(r, at));
    }
  }
  // Same plan seed + same options + same data = same oracle behavior.
  EXPECT_EQ(a.build_options.criterion, b.build_options.criterion);
  EXPECT_EQ(a.transform_options.global_anti_monotone,
            b.transform_options.global_anti_monotone);
  std::remove(csv.c_str());
  std::remove(recipe.c_str());
}

TEST(Runner, BoundedRunPassesAndRendersEveryOracle) {
  CheckOptions options;
  options.trials = 40;
  options.seed = 11;
  options.shrink = false;
  std::ostringstream log;
  const CheckReport report = RunChecks(options, log);
  EXPECT_TRUE(report.AllPassed()) << RenderReport(report);
  EXPECT_EQ(report.trials_run, 40u);
  EXPECT_EQ(report.tallies.size(), AllOracles().size());
  const std::string table = RenderReport(report);
  for (const Oracle& oracle : AllOracles()) {
    EXPECT_NE(table.find(oracle.name), std::string::npos) << table;
  }
}

// ------------------------------------------------------------------------
// Pinned regressions for core bugs the fuzzer surfaced. Each reproduces
// the original failing geometry directly against the core API.

TEST(FuzzerRegression, AntiPieceEndpointImageStaysInsideItsInterval) {
  // Found by encode_bijective: with these exact parameters the endpoint
  // image `ohi - (ohi - olo) * 1.0` rounded an ulp below olo, the piece
  // router read it as lying in the inter-piece gap, and the gap bridge
  // decoded it to the *adjacent piece's* boundary value (38 -> 34).
  const double dlo = 34, dhi = 38;
  const double olo = 4.6160315125481857, ohi = 45.465572290465651;
  const RescaledFunction f(std::make_unique<PowerShape>(2.2296656499181537),
                           dlo, dhi, olo, ohi, /*anti_monotone=*/true);
  const AttrValue y = f.Apply(dhi);
  EXPECT_GE(y, olo);
  EXPECT_LE(y, ohi);
  EXPECT_NEAR(f.Inverse(y), dhi, 1e-7 * dhi);
  const AttrValue y_lo = f.Apply(dlo);
  EXPECT_GE(y_lo, olo);
  EXPECT_LE(y_lo, ohi);
  EXPECT_NEAR(f.Inverse(y_lo), dlo, 1e-7 * dlo);
}

TEST(FuzzerRegression, TreeEquivalenceSurvivesWithinRunMultiplicityShifts) {
  // Found by tree_equivalence: an F_bi piece permutes duplicate
  // multiplicities within a single-class run, which changed the builder's
  // old value-granular tie-break and moved an exactly-tied threshold.
  // The block-granular tie-break must keep the decode identical. The 5-row
  // fixture is the shrunken reproducer's shape: a two-value pure run with
  // uneven multiplicities next to a mixed value.
  Dataset d({"x"}, {"p", "q"});
  d.AddRow({10}, 0);
  d.AddRow({20}, 1);
  d.AddRow({20}, 1);
  d.AddRow({30}, 1);
  d.AddRow({40}, 0);
  PiecewiseOptions transform_options;
  transform_options.policy = BreakpointPolicy::kChooseMaxMP;
  transform_options.exploit_monochromatic = true;
  transform_options.min_mono_width = 2;
  BuildOptions build_options;  // defaults: run boundaries, gini
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const TransformPlan plan =
        TransformPlan::Create(d, transform_options, rng);
    const Dataset released = plan.EncodeDataset(d);
    const OracleResult r = CheckTreeEquivalence(
        d, plan, released, build_options,
        {SplitCriterion::kGini, SplitCriterion::kEntropy}, /*pruned=*/false);
    EXPECT_TRUE(r.passed) << "seed " << seed << ": " << r.message;
  }
}

TEST(FuzzerRegression, MayMixOrderClassifiesTheKnownPlans) {
  PiecewiseOptions o;
  o.policy = BreakpointPolicy::kChooseBP;
  o.family.anti_monotone_prob = 0.0;
  o.global_anti_monotone = false;
  EXPECT_FALSE(MayMixOrder(o));  // strictly order-preserving
  o.family.anti_monotone_prob = 0.5;
  EXPECT_TRUE(MayMixOrder(o));  // mono ranges may draw against the grain
  o.family.anti_monotone_prob = 1.0;
  o.global_anti_monotone = true;
  EXPECT_FALSE(MayMixOrder(o));  // every piece follows the global reversal
  o.policy = BreakpointPolicy::kChooseMaxMP;
  o.exploit_monochromatic = true;
  EXPECT_TRUE(MayMixOrder(o));  // F_bi permutation pieces
}

}  // namespace
}  // namespace popp::check
