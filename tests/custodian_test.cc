#include <gtest/gtest.h>

#include "core/custodian.h"
#include "core/report.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "tree/compare.h"

namespace popp {
namespace {

Custodian MakeCustodian(size_t rows = 500, uint64_t seed = 1) {
  Rng data_rng(seed + 1000);
  Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(rows), data_rng);
  CustodianOptions options;
  options.seed = seed;
  options.transform.min_breakpoints = 8;
  return Custodian(std::move(d), options);
}

TEST(CustodianTest, ReleasePreservesShapeAndChangesValues) {
  const Custodian custodian = MakeCustodian();
  const Dataset released = custodian.Release();
  const Dataset& original = custodian.original();
  ASSERT_EQ(released.NumRows(), original.NumRows());
  size_t changed = 0;
  for (size_t r = 0; r < original.NumRows(); ++r) {
    EXPECT_EQ(released.Label(r), original.Label(r));
    for (size_t a = 0; a < original.NumAttributes(); ++a) {
      if (released.Value(r, a) != original.Value(r, a)) ++changed;
    }
  }
  // Every value transformed (paper Section 1's contrast to perturbation).
  EXPECT_EQ(changed, original.NumRows() * original.NumAttributes());
}

TEST(CustodianTest, ReleaseIsDeterministicPerSeed) {
  const Custodian a = MakeCustodian(300, 5);
  const Custodian b = MakeCustodian(300, 5);
  EXPECT_EQ(a.Release(), b.Release());
  const Custodian c = MakeCustodian(300, 6);
  EXPECT_NE(a.Release(), c.Release());
}

TEST(CustodianTest, NoOutcomeChangeEndToEnd) {
  const Custodian custodian = MakeCustodian();
  std::string detail;
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange(&detail)) << detail;
  EXPECT_TRUE(detail.empty());
}

TEST(CustodianTest, DecodeRecoversDirectTree) {
  const Custodian custodian = MakeCustodian(400, 9);
  const DecisionTree mined = custodian.MineReleased();
  const DecisionTree decoded = custodian.Decode(mined);
  const DecisionTree direct = custodian.MineDirectly();
  EXPECT_TRUE(ExactlyEqual(direct, decoded))
      << DescribeDifference(direct, decoded);
  // The mined tree itself is in transformed space: structurally identical
  // but with different thresholds.
  EXPECT_TRUE(StructurallyIdentical(direct, mined));
  EXPECT_FALSE(ExactlyEqual(direct, mined));
}

TEST(CustodianTest, EntropyCriterionSupported) {
  Rng data_rng(77);
  Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  CustodianOptions options;
  options.tree.criterion = SplitCriterion::kEntropy;
  const Custodian custodian(std::move(d), options);
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
}

TEST(CustodianTest, Figure1WorkflowMatchesPaper) {
  CustodianOptions options;
  options.transform.policy = BreakpointPolicy::kNone;
  options.transform.family.forced_shape =
      FamilyOptions::ShapeChoice::kLinear;
  options.transform.family.anti_monotone_prob = 0.0;
  const Custodian custodian(MakeFigure1Dataset(), options);
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
  const DecisionTree direct = custodian.MineDirectly();
  EXPECT_DOUBLE_EQ(direct.node(direct.root()).threshold, 27.5);
}

TEST(ReportTest, CoversEveryAttribute) {
  const Custodian custodian = MakeCustodian(800, 21);
  ReportOptions options;
  options.num_trials = 7;
  const auto report = BuildRiskReport(custodian, options);
  ASSERT_EQ(report.size(), custodian.original().NumAttributes());
  for (const auto& row : report) {
    EXPECT_FALSE(row.name.empty());
    EXPECT_GT(row.num_distinct, 0u);
    EXPECT_GE(row.curve_fit_risk, 0.0);
    EXPECT_LE(row.curve_fit_risk, 1.0);
    EXPECT_GE(row.sorting_risk, 0.0);
    EXPECT_LE(row.sorting_risk, 1.0);
  }
}

TEST(ReportTest, RenderedTableContainsVerdicts) {
  const Custodian custodian = MakeCustodian(600, 23);
  ReportOptions options;
  options.num_trials = 5;
  const auto report = BuildRiskReport(custodian, options);
  const std::string text = RenderRiskReport(report);
  EXPECT_NE(text.find("attribute"), std::string::npos);
  EXPECT_NE(text.find("curve-fit risk"), std::string::npos);
  EXPECT_TRUE(text.find("safe") != std::string::npos ||
              text.find("REVIEW") != std::string::npos);
}

}  // namespace
}  // namespace popp
