#include <gtest/gtest.h>

#include <cmath>

#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/plan.h"
#include "transform/tree_decode.h"
#include "tree/builder.h"
#include "tree/compare.h"
#include "tree/prune.h"

namespace popp {
namespace {

// ----------------------------------------------------- error estimation --

TEST(PessimisticErrorsTest, ZeroErrorsStillPenalized) {
  // With no observed errors the UCB is n*(1 - cf^(1/n)) > 0.
  const double extra = PessimisticExtraErrors(10, 0, 0.25);
  EXPECT_GT(extra, 0.0);
  EXPECT_NEAR(extra, 10.0 * (1.0 - std::pow(0.25, 0.1)), 1e-12);
}

TEST(PessimisticErrorsTest, MoreDataTightensTheBound) {
  // Relative penalty shrinks with n.
  EXPECT_GT(PessimisticExtraErrors(5, 0, 0.25) / 5.0,
            PessimisticExtraErrors(500, 0, 0.25) / 500.0);
}

TEST(PessimisticErrorsTest, LowerConfidencePrunesHarder) {
  // Smaller cf -> larger pessimistic penalty.
  EXPECT_GT(PessimisticExtraErrors(20, 2, 0.05),
            PessimisticExtraErrors(20, 2, 0.5));
}

TEST(PessimisticErrorsTest, FractionalErrorsInterpolate) {
  const double at0 = PessimisticExtraErrors(30, 0, 0.25);
  const double at_half = PessimisticExtraErrors(30, 0.5, 0.25);
  const double at1 = PessimisticExtraErrors(30, 1, 0.25);
  EXPECT_GT(at_half, std::min(at0, at1) - 1e-9);
  EXPECT_LT(at_half, std::max(at0, at1) + 1e-9);
}

TEST(PessimisticErrorsTest, NearSaturationCase) {
  // errors + 0.5 >= n branch: 0.67 * (n - errors).
  EXPECT_NEAR(PessimisticExtraErrors(10, 9.8, 0.25), 0.67 * 0.2, 1e-12);
}

TEST(PessimisticErrorsTest, LeafEstimateUsesMajority) {
  // 7-vs-3 histogram: 3 observed errors plus the UCB increment.
  const double est = PessimisticLeafErrors({7, 3}, 0.25);
  EXPECT_GT(est, 3.0);
  EXPECT_LT(est, 10.0);
}

// ---------------------------------------------------------------- prune --

TEST(PruneTest, PureTreeUnchanged) {
  const Dataset d = MakeFigure1Dataset();
  const DecisionTree t = DecisionTreeBuilder().Build(d);
  const DecisionTree pruned = PruneTree(t);
  // The Figure 1 tree separates perfectly with 3 leaves of sizes 3/1/2;
  // pessimistic pruning on such small pure leaves may or may not collapse,
  // but the result must be a valid tree that still classifies D well.
  EXPECT_GE(pruned.NumLeaves(), 1u);
  EXPECT_LE(pruned.NumNodes(), t.NumNodes());
}

TEST(PruneTest, CollapsesNoiseSplits) {
  // A dataset where class is determined by x <= 50 except for a single
  // noisy tuple: the full tree carves out the noise; pruning removes it.
  Dataset d({"x"}, {"a", "b"});
  for (int v = 0; v < 100; ++v) {
    d.AddRow({static_cast<double>(v)}, v < 50 ? 0 : 1);
  }
  d.AddRow({30.5}, 1);  // noise inside the 'a' region
  const DecisionTree full = DecisionTreeBuilder().Build(d);
  EXPECT_GT(full.NumLeaves(), 2u);  // the noise forced extra splits
  const DecisionTree pruned = PruneTree(full);
  EXPECT_EQ(pruned.NumLeaves(), 2u);
  // The pruned tree still splits at the true boundary.
  const auto& root = pruned.node(pruned.root());
  ASSERT_FALSE(root.is_leaf);
  EXPECT_DOUBLE_EQ(root.threshold, 49.5);
}

TEST(PruneTest, PrunedTreeIsCompact) {
  Dataset d({"x"}, {"a", "b"});
  for (int v = 0; v < 100; ++v) {
    d.AddRow({static_cast<double>(v)}, v < 50 ? 0 : 1);
  }
  d.AddRow({30.5}, 1);
  const DecisionTree pruned = PruneTree(DecisionTreeBuilder().Build(d));
  // Compact arena: nodes = 2 * leaves - 1 for a binary tree.
  EXPECT_EQ(pruned.NumNodes(), 2 * pruned.NumLeaves() - 1);
}

TEST(PruneTest, ConfidenceControlsAggressiveness) {
  Rng rng(3);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1500), rng);
  const DecisionTree full = DecisionTreeBuilder().Build(d);
  PruneOptions gentle;
  gentle.confidence = 0.75;
  PruneOptions aggressive;
  aggressive.confidence = 0.01;
  const DecisionTree g = PruneTree(full, gentle);
  const DecisionTree a = PruneTree(full, aggressive);
  EXPECT_LE(a.NumLeaves(), g.NumLeaves());
  EXPECT_LE(g.NumLeaves(), full.NumLeaves());
}

TEST(PruneTest, EmptyTree) {
  DecisionTree empty;
  EXPECT_TRUE(PruneTree(empty).empty());
}

TEST(PruneTest, SingleLeaf) {
  DecisionTree t;
  t.SetRoot(t.AddLeaf(1, {2, 5}));
  const DecisionTree pruned = PruneTree(t);
  EXPECT_EQ(pruned.NumNodes(), 1u);
  EXPECT_EQ(pruned.node(pruned.root()).label, 1);
}

// --------------------------------- no-outcome-change extends to pruning --

TEST(PruneTest, GuaranteeExtendsToPrunedTrees) {
  // prune(decode(T')) == prune(T): pruning looks only at class counts,
  // which decode preserves node for node.
  Rng data_rng(7);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(1200), data_rng);
  const DecisionTreeBuilder builder;
  Rng rng(11);
  PiecewiseOptions options;
  options.min_breakpoints = 12;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const DecisionTree direct = PruneTree(builder.Build(d));
  const DecisionTree decoded = PruneTree(
      DecodeTreeWithData(builder.Build(plan.EncodeDataset(d)), plan, d));
  EXPECT_TRUE(ExactlyEqual(direct, decoded))
      << DescribeDifference(direct, decoded);
}

// ------------------------------------------------------------ gain ratio --

TEST(GainRatioTest, MatchesHandComputation) {
  // Split (9,5) | (2,8): textbook gain-ratio arithmetic.
  const std::vector<uint64_t> left{9, 5};
  const std::vector<uint64_t> right{2, 8};
  const double h_parent = EntropyImpurity({11, 13});
  const double h_children =
      (14.0 / 24.0) * EntropyImpurity(left) +
      (10.0 / 24.0) * EntropyImpurity(right);
  EXPECT_NEAR(InformationGain(left, right), h_parent - h_children, 1e-12);
  EXPECT_NEAR(SplitInformation(14, 10), EntropyImpurity({14, 10}), 1e-12);
  EXPECT_NEAR(GainRatio(left, right),
              (h_parent - h_children) / EntropyImpurity({14, 10}), 1e-12);
}

TEST(GainRatioTest, ZeroWhenSplitDegenerate) {
  EXPECT_DOUBLE_EQ(GainRatio({3, 4}, {0, 0}), 0.0);
}

TEST(GainRatioTest, BadnessIsNegatedRatio) {
  const std::vector<uint64_t> left{9, 1};
  const std::vector<uint64_t> right{1, 9};
  EXPECT_DOUBLE_EQ(SplitBadness(SplitCriterion::kGainRatio, left, right),
                   -GainRatio(left, right));
  EXPECT_DOUBLE_EQ(
      SplitBadness(SplitCriterion::kGini, left, right),
      WeightedSplitImpurity(SplitCriterion::kGini, left, right));
}

TEST(GainRatioTest, ImprovementIsInformationGain) {
  const std::vector<uint64_t> left{9, 1};
  const std::vector<uint64_t> right{1, 9};
  const std::vector<uint64_t> parent{10, 10};
  EXPECT_DOUBLE_EQ(
      SplitImprovement(SplitCriterion::kGainRatio, parent, left, right),
      InformationGain(left, right));
  EXPECT_NEAR(
      SplitImprovement(SplitCriterion::kEntropy, parent, left, right),
      InformationGain(left, right), 1e-12);
}

TEST(GainRatioTest, BuilderSeparatesWithGainRatio) {
  Rng rng(13);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(800), rng);
  BuildOptions options;
  options.criterion = SplitCriterion::kGainRatio;
  const DecisionTree t = DecisionTreeBuilder(options).Build(d);
  EXPECT_GT(t.Accuracy(d), 0.9);
}

TEST(GainRatioTest, NoOutcomeChangeUnderGainRatio) {
  Rng data_rng(17);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(900), data_rng);
  BuildOptions tree_options;
  tree_options.criterion = SplitCriterion::kGainRatio;
  const DecisionTreeBuilder builder(tree_options);
  Rng rng(19);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTree direct = builder.Build(d);
  const DecisionTree decoded =
      DecodeTreeWithData(builder.Build(plan.EncodeDataset(d)), plan, d);
  EXPECT_TRUE(ExactlyEqual(direct, decoded))
      << DescribeDifference(direct, decoded);
}

TEST(GainRatioTest, CriterionName) {
  EXPECT_EQ(ToString(SplitCriterion::kGainRatio), "gain-ratio");
}

}  // namespace
}  // namespace popp
