#include <gtest/gtest.h>

#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/plan.h"
#include "transform/tree_decode.h"
#include "tree/builder.h"
#include "tree/compare.h"

namespace popp {
namespace {

TEST(TreeDecodeTest, Figure1PaperTransformDecodesExactly) {
  // The paper's own example: linear monotone transforms, single piece.
  const Dataset d = MakeFigure1Dataset();
  const Dataset dp = MakeFigure1Transformed();
  const DecisionTreeBuilder builder;
  const DecisionTree t = builder.Build(d);
  const DecisionTree tp = builder.Build(dp);

  // T' is structurally identical to T with transformed thresholds
  // (Theorem 1): same attributes and leaf labels.
  EXPECT_TRUE(StructurallyIdentical(t, tp));
  // Root threshold of T': (0.9*23+10 + 0.9*32+10)/2 = 0.9*27.5+10 = 34.75.
  EXPECT_DOUBLE_EQ(tp.node(tp.root()).threshold, 34.75);
}

TEST(TreeDecodeTest, PureDecoderExactForLinearSinglePiece) {
  const Dataset d = MakeFigure1Dataset();
  Rng rng(3);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kNone;
  options.family.forced_shape = FamilyOptions::ShapeChoice::kLinear;
  options.family.anti_monotone_prob = 0.0;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const DecisionTreeBuilder builder;
  const DecisionTree t = builder.Build(d);
  const DecisionTree tp = builder.Build(plan.EncodeDataset(d));

  const DecisionTree decoded = DecodeTree(tp, plan);
  // Linear single-piece: thresholds map midpoint-to-midpoint (up to float
  // round-off), so the pure decoder reproduces T's partition exactly and
  // canonicalization restores bit equality.
  EXPECT_TRUE(PartitionIdenticalOn(t, decoded, d));
  DecisionTree canonical = decoded;
  CanonicalizeThresholds(canonical, d);
  EXPECT_TRUE(ExactlyEqual(t, canonical))
      << DescribeDifference(t, canonical);
}

TEST(TreeDecodeTest, PureDecoderPartitionExactForNonlinearSinglePiece) {
  const Dataset d = MakeFigure1Dataset();
  Rng rng(5);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kNone;
  options.family.forced_shape = FamilyOptions::ShapeChoice::kSqrtLog;
  options.family.anti_monotone_prob = 0.0;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const DecisionTreeBuilder builder;
  const DecisionTree t = builder.Build(d);
  const DecisionTree decoded = DecodeTree(builder.Build(plan.EncodeDataset(d)), plan);
  // Non-linear: thresholds move within their gaps, but the partition of D
  // is identical (the semantic form of Theorem 2)...
  EXPECT_TRUE(PartitionIdenticalOn(t, decoded, d));
  // ...and canonicalization restores exact equality.
  DecisionTree canonical = decoded;
  CanonicalizeThresholds(canonical, d);
  EXPECT_TRUE(ExactlyEqual(t, canonical))
      << DescribeDifference(t, canonical);
}

TEST(TreeDecodeTest, PureDecoderHandlesAntiMonotone) {
  const Dataset d = MakeFigure1Dataset();
  Rng rng(7);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kNone;
  options.global_anti_monotone = true;  // order-reversing transform
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const DecisionTreeBuilder builder;
  const DecisionTree t = builder.Build(d);
  const DecisionTree decoded =
      DecodeTree(builder.Build(plan.EncodeDataset(d)), plan);
  EXPECT_TRUE(PartitionIdenticalOn(t, decoded, d));
}

TEST(TreeDecodeTest, DataDecoderExactAcrossSeedsAndPolicies) {
  Rng data_rng(11);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  const DecisionTreeBuilder builder;
  const DecisionTree t = builder.Build(d);
  for (auto policy : {BreakpointPolicy::kNone, BreakpointPolicy::kChooseBP,
                      BreakpointPolicy::kChooseMaxMP}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      PiecewiseOptions options;
      options.policy = policy;
      options.min_breakpoints = 8;
      const TransformPlan plan = TransformPlan::Create(d, options, rng);
      const DecisionTree tp = builder.Build(plan.EncodeDataset(d));
      const DecisionTree decoded = DecodeTreeWithData(tp, plan, d);
      EXPECT_TRUE(ExactlyEqual(t, decoded))
          << ToString(policy) << " seed " << seed << ": "
          << DescribeDifference(t, decoded);
    }
  }
}

TEST(TreeDecodeTest, DataDecoderExactWithGlobalAntiMonotone) {
  Rng data_rng(13);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  const DecisionTreeBuilder builder;
  const DecisionTree t = builder.Build(d);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 101);
    PiecewiseOptions options;
    options.global_anti_monotone = true;
    options.min_breakpoints = 6;
    const TransformPlan plan = TransformPlan::Create(d, options, rng);
    const DecisionTree decoded =
        DecodeTreeWithData(builder.Build(plan.EncodeDataset(d)), plan, d);
    // Order-reversing release: exact up to mirror-resolved palindromic
    // ties; the decision function is always preserved.
    Rng probe_rng(seed + 4242);
    EXPECT_TRUE(SameDecisionFunction(t, decoded, d, 20000, probe_rng));
    EXPECT_DOUBLE_EQ(t.Accuracy(d), decoded.Accuracy(d));
  }
}

TEST(TreeDecodeTest, DecodedLeavesKeepHistograms) {
  const Dataset d = MakeFigure1Dataset();
  Rng rng(17);
  const TransformPlan plan = TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTreeBuilder builder;
  const DecisionTree tp = builder.Build(plan.EncodeDataset(d));
  const DecisionTree decoded = DecodeTreeWithData(tp, plan, d);
  EXPECT_EQ(decoded.NumNodes(), tp.NumNodes());
  EXPECT_EQ(decoded.node(decoded.root()).class_hist,
            tp.node(tp.root()).class_hist);
}

TEST(TreeDecodeTest, EmptyTreeDecodesEmpty) {
  const Dataset d = MakeFigure1Dataset();
  Rng rng(19);
  const TransformPlan plan = TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTree empty;
  EXPECT_TRUE(DecodeTree(empty, plan).empty());
  EXPECT_TRUE(DecodeTreeWithData(empty, plan, d).empty());
}

TEST(TreeDecodeTest, DecodedTreePredictsLikeDirectTree) {
  Rng data_rng(23);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(29);
  PiecewiseOptions options;
  options.min_breakpoints = 10;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const DecisionTreeBuilder builder;
  const DecisionTree t = builder.Build(d);
  const DecisionTree decoded =
      DecodeTreeWithData(builder.Build(plan.EncodeDataset(d)), plan, d);
  for (size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(decoded.Predict(d, r), t.Predict(d, r));
  }
}

}  // namespace
}  // namespace popp
