#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "fault/file.h"
#include "resil/admission.h"
#include "resil/deadline.h"
#include "resil/heartbeat.h"
#include "resil/retry.h"
#include "resil/supervisor.h"
#include "util/status.h"

/// \file
/// The resilience layer (src/resil): deterministic retry backoff,
/// deadlines, bounded admission control, heartbeats, and the forked-worker
/// supervisor. ResilSupervisor* tests fork(); sanitizer stages that cannot
/// host fork filter them with --gtest_filter=-*ResilSupervisor*.

namespace popp {
namespace {

using resil::AdmissionController;
using resil::AdmissionOptions;
using resil::BackoffOptions;
using resil::Deadline;
using resil::HeartbeatWriter;
using resil::RetryPolicy;
using resil::SupervisionReport;
using resil::SupervisorOptions;
using resil::WorkerTask;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/popp_resil_" + name;
}

// ----------------------------------------------------------- backoff --

TEST(ResilRetryTest, ScheduleIsDeterministicInTheSeed) {
  const RetryPolicy a(BackoffOptions{}, 97);
  const RetryPolicy b(BackoffOptions{}, 97);
  const RetryPolicy c(BackoffOptions{}, 98);
  bool any_differs = false;
  for (size_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(a.DelayMs(attempt), b.DelayMs(attempt)) << attempt;
    any_differs |= a.DelayMs(attempt) != c.DelayMs(attempt);
  }
  EXPECT_TRUE(any_differs) << "different seeds produced identical jitter";
}

TEST(ResilRetryTest, DelayIsOrderIndependent) {
  // DelayMs is a pure function of (seed, attempt): querying attempts out
  // of order, repeatedly, or interleaved must not change any value.
  const RetryPolicy policy(BackoffOptions{}, 12);
  const uint64_t d3 = policy.DelayMs(3);
  const uint64_t d0 = policy.DelayMs(0);
  EXPECT_EQ(policy.DelayMs(3), d3);
  EXPECT_EQ(policy.DelayMs(0), d0);
}

TEST(ResilRetryTest, CurveIsBoundedByJitteredBaseAndCap) {
  BackoffOptions options;
  options.base_ms = 100;
  options.cap_ms = 1000;
  options.multiplier = 2.0;
  options.jitter = 0.25;
  const RetryPolicy policy(options, 5);
  for (size_t attempt = 0; attempt < 12; ++attempt) {
    const uint64_t raw = std::min<uint64_t>(
        options.cap_ms, static_cast<uint64_t>(100 * (1ull << attempt)));
    const uint64_t delay = policy.DelayMs(attempt);
    EXPECT_GE(delay, static_cast<uint64_t>(raw * 0.75) - 1) << attempt;
    EXPECT_LE(delay, static_cast<uint64_t>(raw * 1.25) + 1) << attempt;
  }
}

TEST(ResilRetryTest, ZeroJitterIsTheExactCurveAndZeroBaseIsZero) {
  BackoffOptions exact;
  exact.base_ms = 50;
  exact.cap_ms = 400;
  exact.multiplier = 2.0;
  exact.jitter = 0.0;
  const RetryPolicy policy(exact, 1);
  EXPECT_EQ(policy.DelayMs(0), 50u);
  EXPECT_EQ(policy.DelayMs(1), 100u);
  EXPECT_EQ(policy.DelayMs(2), 200u);
  EXPECT_EQ(policy.DelayMs(3), 400u);
  EXPECT_EQ(policy.DelayMs(9), 400u);  // capped forever after

  BackoffOptions zero;
  zero.base_ms = 0;
  EXPECT_EQ(RetryPolicy(zero, 1).DelayMs(0), 0u);
}

// ---------------------------------------------------------- deadline --

TEST(ResilDeadlineTest, DefaultNeverExpires) {
  const Deadline none;
  EXPECT_FALSE(none.has_deadline());
  EXPECT_FALSE(none.Expired());
  EXPECT_EQ(none.RemainingMs(), UINT64_MAX);
  EXPECT_FALSE(Deadline::None().Expired());
}

TEST(ResilDeadlineTest, AfterZeroIsAlreadyExpired) {
  const Deadline shed = Deadline::After(0);
  EXPECT_TRUE(shed.has_deadline());
  EXPECT_TRUE(shed.Expired());
  EXPECT_EQ(shed.RemainingMs(), 0u);
}

TEST(ResilDeadlineTest, ExpiresAfterItsWindow) {
  const Deadline d = Deadline::After(30);
  EXPECT_FALSE(d.Expired());
  EXPECT_LE(d.RemainingMs(), 30u);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 0u);
}

// --------------------------------------------------------- heartbeat --

TEST(ResilHeartbeatTest, BeatsGrowTheFileAndTruncateOnReopen) {
  const std::string path = TempPath("hb");
  resil::RemoveHeartbeatFile(path);
  EXPECT_EQ(resil::HeartbeatFileBytes(path), 0u);
  {
    HeartbeatWriter writer(path);
    ASSERT_TRUE(writer.enabled());
    writer.Beat();
    const uint64_t one = resil::HeartbeatFileBytes(path);
    EXPECT_GT(one, 0u);
    writer.Beat();
    EXPECT_GT(resil::HeartbeatFileBytes(path), one);
  }
  const uint64_t before = resil::HeartbeatFileBytes(path);
  // A restarted attempt truncates: the size *change* is the liveness
  // signal, so the watchdog re-baselines instead of waiting for the file
  // to outgrow its previous length.
  HeartbeatWriter restarted(path);
  restarted.Beat();
  EXPECT_LT(resil::HeartbeatFileBytes(path), before);
  resil::RemoveHeartbeatFile(path);
  EXPECT_EQ(resil::HeartbeatFileBytes(path), 0u);
}

TEST(ResilHeartbeatTest, EmptyPathAndUnwritablePathAreInert) {
  HeartbeatWriter disabled("");
  EXPECT_FALSE(disabled.enabled());
  disabled.Beat();  // must not crash
  HeartbeatWriter unwritable("/no/such/dir/for/popp.hb");
  EXPECT_FALSE(unwritable.enabled());
  unwritable.Beat();
}

// --------------------------------------------------------- admission --

TEST(ResilAdmissionTest, QueueFullShedsWithRetryAfterHint) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;  // no queue: the second request sheds immediately
  options.retry_after_ms = 123;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Acquire("a", Deadline::None(), nullptr).ok());
  const Status shed = admission.Acquire("b", Deadline::None(), nullptr);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.message().find("overloaded"), std::string::npos);
  EXPECT_NE(shed.message().find("retry-after-ms 123"), std::string::npos);
  const auto snapshot = admission.Snapshot();
  EXPECT_EQ(snapshot.shed_queue_full, 1u);
  EXPECT_EQ(snapshot.inflight, 1u);
  admission.Release("a");
  EXPECT_EQ(admission.Snapshot().inflight, 0u);
  // The slot freed: the same request now admits directly.
  EXPECT_TRUE(admission.Acquire("b", Deadline::None(), nullptr).ok());
  admission.Release("b");
}

TEST(ResilAdmissionTest, QueuedWaiterIsGrantedOnRelease) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Acquire("a", Deadline::None(), nullptr).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(admission.Acquire("b", Deadline::None(), nullptr).ok());
    granted.store(true);
    admission.Release("b");
  });
  while (admission.Snapshot().queued == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(granted.load());
  admission.Release("a");
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(admission.Snapshot().admitted, 2u);
}

TEST(ResilAdmissionTest, ExpiredDeadlineIsShedBeforeAdmission) {
  AdmissionController admission(AdmissionOptions{});
  const Status shed = admission.Acquire("a", Deadline::After(0), nullptr);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.message().find("deadline exceeded"), std::string::npos);
  EXPECT_EQ(admission.Snapshot().shed_deadline, 1u);
  EXPECT_EQ(admission.Snapshot().inflight, 0u);
}

TEST(ResilAdmissionTest, DeadlineExpiryWhileQueuedShedsWithoutExecuting) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Acquire("a", Deadline::None(), nullptr).ok());
  const Status shed =
      admission.Acquire("b", Deadline::After(40), nullptr);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.message().find("while queued"), std::string::npos);
  // The shed waiter left no debris: queue empty, slot math intact.
  const auto snapshot = admission.Snapshot();
  EXPECT_EQ(snapshot.queued, 0u);
  EXPECT_EQ(snapshot.inflight, 1u);
  admission.Release("a");
  EXPECT_TRUE(admission.Acquire("c", Deadline::None(), nullptr).ok());
  admission.Release("c");
}

TEST(ResilAdmissionTest, TenantCapDoesNotStarveOtherTenants) {
  AdmissionOptions options;
  options.max_inflight = 2;
  options.max_queue = 4;
  options.per_tenant_inflight = 1;
  AdmissionController admission(options);
  // Tenant a saturates its cap with one running request and one queued.
  ASSERT_TRUE(admission.Acquire("a", Deadline::None(), nullptr).ok());
  std::atomic<bool> a_backlog_granted{false};
  std::thread backlog([&] {
    ASSERT_TRUE(admission.Acquire("a", Deadline::None(), nullptr).ok());
    a_backlog_granted.store(true);
    admission.Release("a");
  });
  while (admission.Snapshot().queued == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Tenant b arrives *behind* a's backlog, but the second global slot is
  // grantable only to b — the grant scan must skip the capped waiter.
  ASSERT_TRUE(admission.Acquire("b", Deadline::None(), nullptr).ok());
  EXPECT_FALSE(a_backlog_granted.load());
  EXPECT_EQ(admission.Snapshot().inflight, 2u);
  admission.Release("b");
  admission.Release("a");  // frees a's cap; the backlog drains
  backlog.join();
  EXPECT_TRUE(a_backlog_granted.load());
}

TEST(ResilAdmissionTest, StopFlagDrainsImmediatelyAndWhileQueued) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  AdmissionController admission(options);
  std::atomic<bool> stop{true};
  const Status drained = admission.Acquire("a", Deadline::None(), &stop);
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.code(), StatusCode::kFailedPrecondition);

  stop.store(false);
  ASSERT_TRUE(admission.Acquire("a", Deadline::None(), &stop).ok());
  std::thread raiser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true);
  });
  const Status queued = admission.Acquire("b", Deadline::None(), &stop);
  raiser.join();
  ASSERT_FALSE(queued.ok());
  EXPECT_EQ(queued.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(admission.Snapshot().queued, 0u);
}

TEST(ResilAdmissionTest, RenderStatsSpeaksTheHealthVocabulary) {
  AdmissionOptions options;
  options.max_inflight = 3;
  options.max_queue = 7;
  options.per_tenant_inflight = 2;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Acquire("a", Deadline::None(), nullptr).ok());
  const std::string stats = admission.RenderStats();
  EXPECT_NE(stats.find("inflight 1\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("admitted 1\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("max-inflight 3\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("max-queue 7\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("tenant-cap 2\n"), std::string::npos) << stats;
  admission.Release("a");
}

// -------------------------------------------------------- supervisor --
// (ResilSupervisor* suites fork(); keep them out of TSan stages.)

SupervisorOptions FastSupervisor(uint64_t deadline_ms = 0) {
  SupervisorOptions options;
  options.worker_deadline_ms = deadline_ms;
  options.max_restarts = 2;
  options.backoff.base_ms = 5;
  options.backoff.cap_ms = 20;
  options.backoff.jitter = 0.0;
  options.poll_ms = 5;
  return options;
}

resil::ExitDecoder PlainDecoder() {
  return [](const WorkerTask& task, int exit_code) {
    return Status::IoError(task.name + " failed (exit " +
                           std::to_string(exit_code) + ")");
  };
}

TEST(ResilSupervisorTest, AllWorkersSucceeding) {
  std::vector<WorkerTask> tasks;
  for (int k = 0; k < 3; ++k) {
    tasks.push_back({"worker " + std::to_string(k), "",
                     [](size_t) { return 0; }});
  }
  SupervisionReport report;
  const Status status =
      resil::RunSupervised(FastSupervisor(), tasks, PlainDecoder(), &report);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.worker_restarts, 0u);
  EXPECT_EQ(report.workers_killed, 0u);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(ResilSupervisorTest, FailingAttemptIsRestartedWithTheAttemptNumber) {
  // The worker fails until a marker file exists, creating it on attempt 1
  // — proving the restart happened *and* that the attempt number
  // propagates into the child body (the journal-resume hook).
  const std::string marker = TempPath("restart_marker");
  ::unlink(marker.c_str());
  std::vector<WorkerTask> tasks{{"flaky worker", "", [&](size_t attempt) {
    if (attempt == 0) return 7;
    (void)fault::WriteFileAtomic(marker, "attempt " +
                                             std::to_string(attempt));
    return 0;
  }}};
  SupervisionReport report;
  const Status status =
      resil::RunSupervised(FastSupervisor(), tasks, PlainDecoder(), &report);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.worker_restarts, 1u);
  auto seen = fault::ReadFileToString(marker);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen.value(), "attempt 1");
  ::unlink(marker.c_str());
}

TEST(ResilSupervisorTest, ExhaustedRestartsQuarantineWithTheHistory) {
  std::vector<WorkerTask> tasks{
      {"doomed worker", "", [](size_t) { return 3; }}};
  SupervisionReport report;
  const Status status =
      resil::RunSupervised(FastSupervisor(), tasks, PlainDecoder(), &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);  // the decoder's taxonomy
  EXPECT_NE(status.message().find("doomed worker"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("quarantined after 3 failed attempts"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("attempt 0"), std::string::npos);
  EXPECT_NE(status.message().find("attempt 2"), std::string::npos);
  EXPECT_EQ(report.worker_restarts, 2u);
  EXPECT_EQ(report.quarantined, 1u);
}

TEST(ResilSupervisorTest, SingleFailureWithoutRestartBudgetIsVerbatim) {
  // max_restarts 0: the lone failure surfaces as the decoder's Status,
  // not wrapped in quarantine prose (the shard pipeline's existing error
  // contract depends on this).
  SupervisorOptions options = FastSupervisor();
  options.max_restarts = 0;
  std::vector<WorkerTask> tasks{
      {"fragile worker", "", [](size_t) { return 4; }}};
  SupervisionReport report;
  const Status status =
      resil::RunSupervised(options, tasks, PlainDecoder(), &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "fragile worker failed (exit 4)");
  EXPECT_EQ(report.quarantined, 1u);
}

TEST(ResilSupervisorTest, WatchdogKillsASilentWorkerAndRestartsIt) {
  // Attempt 0 beats once then sleeps far past the deadline; the watchdog
  // must SIGKILL it. Attempt 1 finishes promptly — the run succeeds.
  const std::string hb = TempPath("watchdog.hb");
  std::vector<WorkerTask> tasks{{"sleepy worker", hb, [&](size_t attempt) {
    HeartbeatWriter writer(hb);
    writer.Beat();
    if (attempt == 0) {
      std::this_thread::sleep_for(std::chrono::seconds(30));
    }
    return 0;
  }}};
  SupervisionReport report;
  const auto start = std::chrono::steady_clock::now();
  const Status status = resil::RunSupervised(FastSupervisor(/*deadline=*/150),
                                             tasks, PlainDecoder(), &report);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.workers_killed, 1u);
  EXPECT_EQ(report.worker_restarts, 1u);
  EXPECT_LT(elapsed.count(), 10000) << "the watchdog did not cut the hang";
  // The heartbeat file is removed once the task settles.
  EXPECT_EQ(resil::HeartbeatFileBytes(hb), 0u);
  struct stat sb;
  EXPECT_NE(::stat(hb.c_str(), &sb), 0);
}

TEST(ResilSupervisorTest, HungWorkerWithNoBudgetIsUnavailable) {
  SupervisorOptions options = FastSupervisor(/*deadline=*/100);
  options.max_restarts = 0;
  const std::string hb = TempPath("hang.hb");
  std::vector<WorkerTask> tasks{{"stuck worker", hb, [&](size_t) {
    HeartbeatWriter writer(hb);
    writer.Beat();
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return 0;
  }}};
  SupervisionReport report;
  const Status status =
      resil::RunSupervised(options, tasks, PlainDecoder(), &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("stuck worker"), std::string::npos);
  EXPECT_EQ(report.workers_killed, 1u);
}

}  // namespace
}  // namespace popp
