#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "data/summary.h"
#include "data/value.h"
#include "synth/presets.h"

namespace popp {
namespace {

Dataset TwoAttrData() {
  Dataset d({"x", "y"}, {"a", "b"});
  d.AddRow({1, 10}, 0);
  d.AddRow({2, 20}, 1);
  d.AddRow({2, 30}, 0);
  d.AddRow({5, 10}, 1);
  return d;
}

// ----------------------------------------------------------------- value --

TEST(ValueTest, FormatIntegral) {
  EXPECT_EQ(FormatValue(23.0), "23");
  EXPECT_EQ(FormatValue(-7.0), "-7");
  EXPECT_EQ(FormatValue(0.0), "0");
}

TEST(ValueTest, FormatFractional) {
  EXPECT_EQ(FormatValue(27.5), "27.5");
}

TEST(ValueTest, ValueLabelOrdering) {
  ValueLabelLess less;
  EXPECT_TRUE(less(ValueLabel{1, 0}, ValueLabel{2, 0}));
  EXPECT_FALSE(less(ValueLabel{2, 0}, ValueLabel{2, 1}));
}

// ---------------------------------------------------------------- schema --

TEST(SchemaTest, NamesAndLookup) {
  Schema s({"age", "salary"}, {"High", "Low"});
  EXPECT_EQ(s.NumAttributes(), 2u);
  EXPECT_EQ(s.NumClasses(), 2u);
  EXPECT_EQ(s.AttributeName(0), "age");
  EXPECT_EQ(s.ClassName(1), "Low");
  ASSERT_TRUE(s.AttributeIndex("salary").ok());
  EXPECT_EQ(s.AttributeIndex("salary").value(), 1u);
  EXPECT_FALSE(s.AttributeIndex("missing").ok());
  ASSERT_TRUE(s.ClassIdOf("High").ok());
  EXPECT_EQ(s.ClassIdOf("High").value(), 0);
  EXPECT_FALSE(s.ClassIdOf("Mid").ok());
}

TEST(SchemaTest, GetOrAddClass) {
  Schema s({"x"}, {});
  EXPECT_EQ(s.GetOrAddClass("a"), 0);
  EXPECT_EQ(s.GetOrAddClass("b"), 1);
  EXPECT_EQ(s.GetOrAddClass("a"), 0);
  EXPECT_EQ(s.NumClasses(), 2u);
}

// --------------------------------------------------------------- dataset --

TEST(DatasetTest, AddAndAccess) {
  Dataset d = TwoAttrData();
  EXPECT_EQ(d.NumRows(), 4u);
  EXPECT_EQ(d.NumAttributes(), 2u);
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_DOUBLE_EQ(d.Value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.Value(3, 1), 10.0);
  EXPECT_EQ(d.Label(1), 1);
  EXPECT_EQ(d.Row(2), (std::vector<AttrValue>{2, 30}));
}

TEST(DatasetTest, SetValueMutates) {
  Dataset d = TwoAttrData();
  d.SetValue(0, 1, 99.0);
  EXPECT_DOUBLE_EQ(d.Value(0, 1), 99.0);
}

TEST(DatasetTest, ColumnAccess) {
  Dataset d = TwoAttrData();
  EXPECT_EQ(d.Column(0), (std::vector<AttrValue>{1, 2, 2, 5}));
  d.MutableColumn(0)[0] = 7;
  EXPECT_DOUBLE_EQ(d.Value(0, 0), 7.0);
}

TEST(DatasetTest, SortedProjectionStableOnTies) {
  Dataset d = TwoAttrData();
  const auto proj = d.SortedProjection(0);
  ASSERT_EQ(proj.size(), 4u);
  EXPECT_DOUBLE_EQ(proj[0].value, 1.0);
  // The two value-2 tuples keep their original relative order (row 1 then
  // row 2): labels b then a.
  EXPECT_EQ(proj[1].label, 1);
  EXPECT_EQ(proj[2].label, 0);
  EXPECT_DOUBLE_EQ(proj[3].value, 5.0);
}

TEST(DatasetTest, ActiveDomainIsSortedDistinct) {
  Dataset d = TwoAttrData();
  EXPECT_EQ(d.ActiveDomain(0), (std::vector<AttrValue>{1, 2, 5}));
  EXPECT_EQ(d.ActiveDomain(1), (std::vector<AttrValue>{10, 20, 30}));
}

TEST(DatasetTest, ClassHistogram) {
  Dataset d = TwoAttrData();
  EXPECT_EQ(d.ClassHistogram(), (std::vector<size_t>{2, 2}));
}

TEST(DatasetTest, SelectSubset) {
  Dataset d = TwoAttrData();
  Dataset sub = d.Select({3, 0});
  ASSERT_EQ(sub.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(sub.Value(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sub.Value(1, 0), 1.0);
  EXPECT_EQ(sub.Label(0), 1);
  EXPECT_EQ(sub.schema(), d.schema());
}

TEST(DatasetTest, EqualityIsDeep) {
  Dataset a = TwoAttrData();
  Dataset b = TwoAttrData();
  EXPECT_EQ(a, b);
  b.SetValue(0, 0, 42.0);
  EXPECT_NE(a, b);
}

TEST(DatasetTest, Figure1DatasetShape) {
  const Dataset d = MakeFigure1Dataset();
  EXPECT_EQ(d.NumRows(), 6u);
  EXPECT_EQ(d.NumAttributes(), 2u);
  EXPECT_EQ(d.schema().AttributeName(0), "age");
  EXPECT_EQ(d.ClassHistogram(), (std::vector<size_t>{4, 2}));
}

// --------------------------------------------------------------- summary --

TEST(SummaryTest, FromDatasetBasics) {
  Dataset d = TwoAttrData();
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(s.NumDistinct(), 3u);
  EXPECT_EQ(s.NumTuples(), 4u);
  EXPECT_EQ(s.NumClasses(), 2u);
  EXPECT_DOUBLE_EQ(s.MinValue(), 1.0);
  EXPECT_DOUBLE_EQ(s.MaxValue(), 5.0);
  EXPECT_EQ(s.CountAt(1), 2u);  // value 2 occurs twice
}

TEST(SummaryTest, ClassCounts) {
  Dataset d = TwoAttrData();
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(s.ClassCountAt(0, 0), 1u);  // value 1: class a once
  EXPECT_EQ(s.ClassCountAt(0, 1), 0u);
  EXPECT_EQ(s.ClassCountAt(1, 0), 1u);  // value 2: one of each
  EXPECT_EQ(s.ClassCountAt(1, 1), 1u);
}

TEST(SummaryTest, Monochromaticity) {
  Dataset d = TwoAttrData();
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_TRUE(s.IsMonochromatic(0));   // value 1: only class a
  EXPECT_FALSE(s.IsMonochromatic(1));  // value 2: both classes
  EXPECT_TRUE(s.IsMonochromatic(2));   // value 5: only class b
  EXPECT_EQ(s.MonoClassAt(0), 0);
  EXPECT_EQ(s.MonoClassAt(1), kNoClass);
  EXPECT_EQ(s.MonoClassAt(2), 1);
}

TEST(SummaryTest, DynamicRangeAndDiscontinuities) {
  Dataset d = TwoAttrData();
  const auto s = AttributeSummary::FromDataset(d, 0);
  // Values 1, 2, 5 in [1, 5]: width 5, distinct 3, discontinuities 2
  // (the missing 3 and 4).
  EXPECT_DOUBLE_EQ(s.DynamicRangeWidth(), 5.0);
  EXPECT_EQ(s.NumDiscontinuities(), 2u);
}

TEST(SummaryTest, NoDiscontinuitiesWhenDense) {
  Dataset d({"x"}, {"a", "b"});
  for (int v = 10; v <= 20; ++v) d.AddRow({static_cast<double>(v)}, v % 2);
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(s.NumDiscontinuities(), 0u);
  EXPECT_DOUBLE_EQ(s.DynamicRangeWidth(), 11.0);
}

TEST(SummaryTest, IndexOf) {
  Dataset d = TwoAttrData();
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(s.IndexOf(2.0), 1u);
  EXPECT_EQ(s.IndexOf(3.0), AttributeSummary::npos);
}

TEST(SummaryTest, ClassHistogramMatchesDataset) {
  Dataset d = TwoAttrData();
  const auto s = AttributeSummary::FromDataset(d, 0);
  EXPECT_EQ(s.ClassHistogram(), d.ClassHistogram());
}

TEST(SummaryTest, FromTuplesUnsortedInput) {
  const auto s = AttributeSummary::FromTuples(
      {{5, 0}, {1, 1}, {5, 0}, {3, 1}}, 2);
  EXPECT_EQ(s.NumDistinct(), 3u);
  EXPECT_DOUBLE_EQ(s.ValueAt(0), 1.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(2), 5.0);
  EXPECT_EQ(s.CountAt(2), 2u);
}

TEST(SummaryTest, EmptyTuples) {
  const auto s = AttributeSummary::FromTuples({}, 2);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.NumDistinct(), 0u);
  EXPECT_EQ(s.NumTuples(), 0u);
}

// ------------------------------------------------------------------- csv --

TEST(CsvTest, RoundTrip) {
  Dataset d = TwoAttrData();
  const std::string text = ToCsvString(d);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), d);
}

TEST(CsvTest, HeaderParsed) {
  auto parsed = ParseCsv("age,salary,class\n20,100,yes\n30,200,no\n");
  ASSERT_TRUE(parsed.ok());
  const Dataset& d = parsed.value();
  EXPECT_EQ(d.schema().AttributeName(0), "age");
  EXPECT_EQ(d.schema().AttributeName(1), "salary");
  EXPECT_EQ(d.NumRows(), 2u);
  EXPECT_EQ(d.schema().ClassName(d.Label(0)), "yes");
}

TEST(CsvTest, HeaderlessGetsGeneratedNames) {
  CsvOptions options;
  options.has_header = false;
  auto parsed = ParseCsv("1,2,x\n3,4,y\n", options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().schema().AttributeName(0), "attr1");
  EXPECT_EQ(parsed.value().NumRows(), 2u);
}

TEST(CsvTest, RejectsMalformedNumber) {
  auto parsed = ParseCsv("a,class\nnot_a_number,x\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsWrongFieldCount) {
  auto parsed = ParseCsv("a,b,class\n1,x\n");
  ASSERT_FALSE(parsed.ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, SkipsBlankLines) {
  auto parsed = ParseCsv("a,class\n1,x\n\n2,y\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().NumRows(), 2u);
}

TEST(CsvTest, ReadWriteFile) {
  Dataset d = TwoAttrData();
  const std::string path = testing::TempDir() + "/popp_csv_test.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());
  auto readback = ReadCsv(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), d);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto result = ReadCsv("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, CrlfLineEndings) {
  auto parsed = ParseCsv("a,b,class\r\n1,2,x\r\n3,4,y\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Dataset& d = parsed.value();
  EXPECT_EQ(d.NumRows(), 2u);
  EXPECT_EQ(d.schema().AttributeName(1), "b");
  EXPECT_EQ(d.schema().ClassName(d.Label(1)), "y");
  EXPECT_DOUBLE_EQ(d.Column(1)[1], 4.0);
}

TEST(CsvTest, MissingTrailingNewline) {
  auto parsed = ParseCsv("a,class\n1,x\n2,y");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().NumRows(), 2u);
  EXPECT_EQ(parsed.value().schema().ClassName(parsed.value().Label(1)), "y");
}

TEST(CsvTest, CrlfWithMissingTrailingNewline) {
  auto parsed = ParseCsv("a,class\r\n1,x\r\n2,y");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().NumRows(), 2u);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndQuotes) {
  auto parsed =
      ParseCsv("a,\"name, with comma\",class\n1,2,\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Dataset& d = parsed.value();
  EXPECT_EQ(d.schema().AttributeName(1), "name, with comma");
  EXPECT_EQ(d.schema().ClassName(d.Label(0)), "say \"hi\"");
}

TEST(CsvTest, QuotedFieldSpansLines) {
  // An embedded newline inside a quoted class label must not end the
  // record, and the error line counter must keep tracking physical lines.
  auto parsed = ParseCsv("a,class\n1,\"two\nlines\"\n2,plain\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().NumRows(), 2u);
  EXPECT_EQ(parsed.value().schema().ClassName(parsed.value().Label(0)),
            "two\nlines");
}

TEST(CsvTest, LoneCarriageReturnIsData) {
  // Only CRLF is an end-of-line; a CR not followed by LF stays in the
  // field (the old parser stripped every '\r').
  auto parsed = ParseCsv("a,class\n1,x\rv\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().schema().ClassName(parsed.value().Label(0)),
            "x\rv");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto parsed = ParseCsv("a,class\n1,\"unclosed\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("unterminated"),
            std::string::npos);
}

TEST(CsvTest, ErrorLineNumbersSurviveCrlfAndQuotes) {
  auto parsed = ParseCsv("a,class\r\n1,x\r\nbad_number,y\r\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("line 3"), std::string::npos)
      << parsed.status().ToString();
}

TEST(CsvTest, WriterQuotesNamesThatNeedIt) {
  Dataset d({"plain", "with, comma"}, {"a\"b", "c"});
  d.AddRow({1, 2}, 0);
  d.AddRow({3, 4}, 1);
  const std::string text = ToCsvString(d);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), d);
  EXPECT_EQ(parsed.value().schema().AttributeName(1), "with, comma");
  EXPECT_EQ(parsed.value().schema().ClassName(0), "a\"b");
}

TEST(CsvTest, QuotedFieldSpansReadBufferBoundary) {
  // Force a quoted, comma-carrying class label across many tiny read
  // buffers: ReadCsv streams the file in blocks, and the record parser
  // must carry quote state across Feed() calls. A label longer than the
  // 64 KiB block size proves the tokenizer never needs the whole field in
  // one block.
  const std::string big_label =
      "\"" + std::string(70000, 'z') + ",\"\"tail\"\"\"";
  const std::string csv = "a,class\n1," + big_label + "\n2," + big_label +
                          "\n";
  const std::string path = testing::TempDir() + "/popp_csv_span.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << csv;
  }
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().NumRows(), 2u);
  const std::string label =
      read.value().schema().ClassName(read.value().Label(0));
  EXPECT_EQ(label.size(), 70007u);
  EXPECT_EQ(label.substr(69999), "z,\"tail\"");
  // And the in-memory parse agrees byte-for-byte.
  auto parsed = ParseCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), read.value());
}

}  // namespace
}  // namespace popp
