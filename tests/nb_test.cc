#include <gtest/gtest.h>

#include "nb/naive_bayes.h"
#include "synth/covtype_like.h"
#include "tree/builder.h"
#include "synth/presets.h"
#include "transform/plan.h"

namespace popp {
namespace {

Dataset NbData(size_t rows = 1200, uint64_t seed = 3) {
  Rng rng(seed);
  return GenerateCovtypeLike(SmallCovtypeSpec(rows), rng);
}

TEST(NaiveBayesTest, LearnsAnObviousSignal) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 50; ++i) {
    d.AddRow({1}, 0);
    d.AddRow({2}, 1);
  }
  const NaiveBayes model = NaiveBayes::Train(d);
  EXPECT_EQ(model.Predict({1}), 0);
  EXPECT_EQ(model.Predict({2}), 1);
  EXPECT_DOUBLE_EQ(model.Accuracy(d), 1.0);
}

TEST(NaiveBayesTest, UnseenValuesFallBackToThePrior) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 30; ++i) d.AddRow({1}, 0);
  for (int i = 0; i < 10; ++i) d.AddRow({2}, 1);
  const NaiveBayes model = NaiveBayes::Train(d);
  // Value 99 never seen: class priors decide, and 'a' dominates.
  EXPECT_EQ(model.Predict({99}), 0);
}

TEST(NaiveBayesTest, CombinesIndependentAttributes) {
  // Each attribute alone is weak; together they decide.
  Dataset d({"x", "y"}, {"a", "b"});
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const ClassId label = static_cast<ClassId>(rng.Bernoulli(0.5));
    const double x = rng.Bernoulli(label == 1 ? 0.7 : 0.3) ? 1.0 : 0.0;
    const double y = rng.Bernoulli(label == 1 ? 0.7 : 0.3) ? 1.0 : 0.0;
    d.AddRow({x, y}, label);
  }
  const NaiveBayes model = NaiveBayes::Train(d);
  EXPECT_EQ(model.Predict({1, 1}), 1);
  EXPECT_EQ(model.Predict({0, 0}), 0);
  EXPECT_GT(model.Accuracy(d), 0.6);
}

TEST(NaiveBayesTest, ReasonableOnCovtypeLikeData) {
  const Dataset d = NbData(2000);
  const NaiveBayes model = NaiveBayes::Train(d);
  EXPECT_GT(model.Accuracy(d), 0.6);
}

TEST(NaiveBayesTest, LogPosteriorRanksLikePredict) {
  const Dataset d = NbData(500);
  const NaiveBayes model = NaiveBayes::Train(d);
  for (size_t r = 0; r < 50; ++r) {
    const auto row = d.Row(r);
    const auto log_post = model.LogPosterior(row);
    const ClassId predicted = model.Predict(row);
    for (size_t c = 0; c < log_post.size(); ++c) {
      EXPECT_LE(log_post[c], log_post[static_cast<size_t>(predicted)]);
    }
  }
}

TEST(NaiveBayesTest, RejectsEmptyData) {
  Dataset d({"x"}, {"a", "b"});
  EXPECT_DEATH(NaiveBayes::Train(d), "NB needs data");
}

// -------------------- preservation under arbitrary bijections -----------

TEST(NaiveBayesTest, PreservedUnderPiecewiseTransforms) {
  // The piecewise transform is a per-attribute bijection on the active
  // domain, which is all discrete NB sees: the model mined from D'
  // classifies every transformed tuple exactly as the original model
  // classifies the original tuple.
  const Dataset d = NbData(1500, 7);
  Rng rng(11);
  PiecewiseOptions options;
  options.min_breakpoints = 15;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const Dataset released = plan.EncodeDataset(d);

  const NaiveBayes original = NaiveBayes::Train(d);
  const NaiveBayes mined = NaiveBayes::Train(released);
  for (size_t r = 0; r < d.NumRows(); ++r) {
    ASSERT_EQ(mined.Predict(released.Row(r)), original.Predict(d.Row(r)))
        << "row " << r;
  }
  EXPECT_DOUBLE_EQ(mined.Accuracy(released), original.Accuracy(d));
}

TEST(NaiveBayesTest, PreservedEvenUnderOrderDestroyingBijections) {
  // Stronger than the tree guarantee: a pure random permutation of each
  // attribute's values — no global invariant, no monotonicity — still
  // preserves the NB outcome exactly.
  const Dataset d = NbData(1000, 13);
  Dataset scrambled = d;
  Rng rng(17);
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    const auto domain = d.ActiveDomain(a);
    std::vector<AttrValue> image = domain;
    rng.Shuffle(image);
    std::unordered_map<AttrValue, AttrValue> map;
    for (size_t i = 0; i < domain.size(); ++i) map[domain[i]] = image[i];
    for (auto& v : scrambled.MutableColumn(a)) v = map.at(v);
  }
  const NaiveBayes original = NaiveBayes::Train(d);
  const NaiveBayes mined = NaiveBayes::Train(scrambled);
  for (size_t r = 0; r < d.NumRows(); ++r) {
    ASSERT_EQ(mined.Predict(scrambled.Row(r)), original.Predict(d.Row(r)));
  }
}

TEST(NaiveBayesTest, TreesWouldBreakUnderTheSameScrambling) {
  // Sanity check of the contrast: the scrambling that leaves NB intact
  // destroys the tree's rank structure (its accuracy on its own scrambled
  // data drops below the original tree's).
  const Dataset d = NbData(1000, 19);
  Dataset scrambled = d;
  Rng rng(23);
  for (size_t a = 0; a < d.NumAttributes(); ++a) {
    const auto domain = d.ActiveDomain(a);
    std::vector<AttrValue> image = domain;
    rng.Shuffle(image);
    std::unordered_map<AttrValue, AttrValue> map;
    for (size_t i = 0; i < domain.size(); ++i) map[domain[i]] = image[i];
    for (auto& v : scrambled.MutableColumn(a)) v = map.at(v);
  }
  // Depth-limited trees must generalize structure; full-depth trees can
  // memorize anything, so compare constrained models.
  BuildOptions options;
  options.max_depth = 6;
  const DecisionTreeBuilder builder(options);
  const double original_acc = builder.Build(d).Accuracy(d);
  const double scrambled_acc = builder.Build(scrambled).Accuracy(scrambled);
  EXPECT_LT(scrambled_acc, original_acc);
}

}  // namespace
}  // namespace popp
