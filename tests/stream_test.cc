#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "data/csv.h"
#include "data/summary.h"
#include "fault/failpoint.h"
#include "fault/file.h"
#include "stream/chunk_io.h"
#include "stream/manifest.h"
#include "stream/incremental_summary.h"
#include "stream/ood_policy.h"
#include "stream/streaming_custodian.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/plan.h"
#include "transform/serialize.h"
#include "tree/builder.h"
#include "tree/compare.h"
#include "util/rng.h"

namespace popp {
namespace {

using stream::CsvChunkReader;
using stream::CsvChunkWriter;
using stream::DatasetChunkReader;
using stream::DatasetChunkWriter;
using stream::IncrementalSummary;
using stream::OodPolicy;
using stream::StreamingCustodian;
using stream::StreamOptions;
using stream::StreamStats;

Dataset CovtypeLikeData(size_t rows = 800, uint64_t seed = 31) {
  Rng rng(seed);
  return GenerateCovtypeLike(SmallCovtypeSpec(rows), rng);
}

std::string WriteTempCsv(const Dataset& d, const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteCsv(d, path).ok());
  return path;
}

/// The batch baseline every streamed release is compared against.
struct Batch {
  TransformPlan plan;
  Dataset released;
};

Batch BatchRelease(const Dataset& data, uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.plan = TransformPlan::Create(data, PiecewiseOptions{}, rng);
  b.released = b.plan.EncodeDataset(data);
  return b;
}

// ------------------------------------------------- incremental summary --

TEST(IncrementalSummaryTest, AbsorbEqualsBatchSummary) {
  const Dataset data = CovtypeLikeData(500);
  IncrementalSummary inc(data.NumAttributes());
  DatasetChunkReader reader(&data);
  for (;;) {
    auto chunk = reader.NextChunk(37);
    ASSERT_TRUE(chunk.ok());
    if (chunk.value().NumRows() == 0) break;
    inc.Absorb(chunk.value());
  }
  EXPECT_EQ(inc.NumRows(), data.NumRows());
  for (size_t attr = 0; attr < data.NumAttributes(); ++attr) {
    const AttributeSummary batch = AttributeSummary::FromDataset(data, attr);
    const AttributeSummary streamed = inc.Summarize(attr);
    ASSERT_EQ(streamed.NumDistinct(), batch.NumDistinct()) << "attr " << attr;
    ASSERT_EQ(streamed.NumTuples(), batch.NumTuples());
    for (size_t i = 0; i < batch.NumDistinct(); ++i) {
      ASSERT_EQ(streamed.ValueAt(i), batch.ValueAt(i));
      ASSERT_EQ(streamed.CountAt(i), batch.CountAt(i));
      for (size_t c = 0; c < data.NumClasses(); ++c) {
        ASSERT_EQ(streamed.ClassCountAt(i, c), batch.ClassCountAt(i, c));
      }
    }
  }
}

TEST(IncrementalSummaryTest, MergeEqualsSequentialAbsorb) {
  const Dataset data = CovtypeLikeData(300);
  // Split the stream into three sub-streams, absorb separately, merge in a
  // non-sequential grouping.
  std::vector<IncrementalSummary> parts;
  DatasetChunkReader reader(&data);
  for (;;) {
    auto chunk = reader.NextChunk(100);
    ASSERT_TRUE(chunk.ok());
    if (chunk.value().NumRows() == 0) break;
    IncrementalSummary part(data.NumAttributes());
    part.Absorb(chunk.value());
    parts.push_back(std::move(part));
  }
  ASSERT_EQ(parts.size(), 3u);
  IncrementalSummary merged(data.NumAttributes());
  merged.Merge(parts[2]);
  merged.Merge(parts[0]);
  merged.Merge(parts[1]);
  for (size_t attr = 0; attr < data.NumAttributes(); ++attr) {
    const AttributeSummary batch = AttributeSummary::FromDataset(data, attr);
    const AttributeSummary streamed = merged.Summarize(attr);
    ASSERT_EQ(streamed.NumDistinct(), batch.NumDistinct());
    for (size_t i = 0; i < batch.NumDistinct(); ++i) {
      ASSERT_EQ(streamed.ValueAt(i), batch.ValueAt(i));
      ASSERT_EQ(streamed.CountAt(i), batch.CountAt(i));
    }
  }
}

// --------------------------------------------------------- chunked csv --

TEST(ChunkIoTest, CsvReaderMatchesReadCsvAcrossChunkSizes) {
  const Dataset data = CovtypeLikeData(200);
  const std::string path = WriteTempCsv(data, "stream_reader.csv");
  for (const size_t chunk_rows : {1u, 7u, 64u, 1000u}) {
    // A tiny read buffer forces records to span buffer seams.
    CsvChunkReader reader(path, CsvOptions{}, /*buffer_bytes=*/13);
    DatasetChunkWriter collector;
    for (;;) {
      auto chunk = reader.NextChunk(chunk_rows);
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (chunk.value().NumRows() == 0) break;
      ASSERT_LE(chunk.value().NumRows(), chunk_rows);
      ASSERT_TRUE(collector.Append(chunk.value()).ok());
    }
    EXPECT_EQ(collector.collected(), data) << "chunk_rows=" << chunk_rows;
  }
}

TEST(ChunkIoTest, CsvWriterConcatenatesToOneShotBytes) {
  const Dataset data = CovtypeLikeData(150);
  const std::string path = testing::TempDir() + "/stream_writer.csv";
  CsvChunkWriter writer(path);
  DatasetChunkReader reader(&data);
  for (;;) {
    auto chunk = reader.NextChunk(11);
    ASSERT_TRUE(chunk.ok());
    if (chunk.value().NumRows() == 0) break;
    ASSERT_TRUE(writer.Append(chunk.value()).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  std::ifstream in(path, std::ios::binary);
  std::string written((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(written, ToCsvString(data));
}

TEST(ChunkIoTest, RewindRestartsFromFirstRow) {
  const Dataset data = CovtypeLikeData(150);
  const std::string path = WriteTempCsv(data, "stream_rewind.csv");
  CsvChunkReader reader(path);
  auto first = reader.NextChunk(10);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(reader.Rewind().ok());
  auto again = reader.NextChunk(10);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value(), again.value());
}

TEST(ChunkIoTest, EmptyCsvReportsError) {
  const std::string path = testing::TempDir() + "/stream_empty.csv";
  std::ofstream(path, std::ios::binary).close();
  CsvChunkReader reader(path);
  auto chunk = reader.NextChunk(10);
  EXPECT_FALSE(chunk.ok());
}

// ------------------------------------------------- streamed == batched --

TEST(StreamReleaseTest, BitIdenticalAcrossChunkSizesAndThreads) {
  const Dataset data = CovtypeLikeData(600, /*seed=*/5);
  const uint64_t seed = 17;
  const Batch batch = BatchRelease(data, seed);
  const std::string batch_csv = ToCsvString(batch.released);
  const std::string batch_key = SerializePlan(batch.plan);
  const size_t chunk_sizes[] = {1, 7, 256, data.NumRows()};
  for (const size_t chunk_rows : chunk_sizes) {
    for (const size_t threads : {1u, 4u}) {
      StreamOptions options;
      options.chunk_rows = chunk_rows;
      options.seed = seed;
      options.exec = ExecPolicy{threads};
      DatasetChunkReader reader(&data);
      DatasetChunkWriter writer;
      StreamStats stats;
      auto plan = StreamingCustodian::Release(reader, writer, options,
                                              &stats);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      EXPECT_EQ(SerializePlan(plan.value()), batch_key)
          << "chunk_rows=" << chunk_rows << " threads=" << threads;
      EXPECT_EQ(ToCsvString(writer.collected()), batch_csv)
          << "chunk_rows=" << chunk_rows << " threads=" << threads;
      EXPECT_EQ(stats.rows, data.NumRows());
      EXPECT_LE(stats.peak_resident_rows, chunk_rows);
      EXPECT_EQ(stats.ood_total, 0u);
      EXPECT_EQ(stats.refits, 0u);
    }
  }
}

TEST(StreamReleaseTest, FromCsvFileMatchesBatch) {
  const Dataset data = CovtypeLikeData(300, /*seed=*/8);
  const std::string in_path = WriteTempCsv(data, "stream_in.csv");
  const uint64_t seed = 3;
  const Batch batch = BatchRelease(data, seed);
  StreamOptions options;
  options.chunk_rows = 53;
  options.seed = seed;
  CsvChunkReader reader(in_path);
  const std::string out_path = testing::TempDir() + "/stream_out.csv";
  CsvChunkWriter writer(out_path);
  auto plan = StreamingCustodian::Release(reader, writer, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::ifstream in(out_path, std::ios::binary);
  std::string released((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(released, ToCsvString(batch.released));
  EXPECT_EQ(SerializePlan(plan.value()), SerializePlan(batch.plan));
}

TEST(StreamReleaseTest, MinedTreesIdenticalForGiniAndEntropy) {
  const Dataset data = CovtypeLikeData(500, /*seed=*/11);
  const uint64_t seed = 23;
  const Batch batch = BatchRelease(data, seed);
  for (const size_t chunk_rows : {7u, 256u}) {
    StreamOptions options;
    options.chunk_rows = chunk_rows;
    options.seed = seed;
    DatasetChunkReader reader(&data);
    DatasetChunkWriter writer;
    auto plan = StreamingCustodian::Release(reader, writer, options);
    ASSERT_TRUE(plan.ok());
    for (const SplitCriterion criterion :
         {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
      BuildOptions build;
      build.criterion = criterion;
      const DecisionTreeBuilder builder(build);
      const DecisionTree from_stream = builder.Build(writer.collected());
      const DecisionTree from_batch = builder.Build(batch.released);
      EXPECT_TRUE(ExactlyEqual(from_stream, from_batch))
          << "chunk_rows=" << chunk_rows
          << ": " << DescribeDifference(from_stream, from_batch);
    }
  }
}

// -------------------------------------------------------- ood policies --

/// A stream whose tail exceeds the prefix hull on attribute 0.
Dataset PrefixPlusOutliers() {
  Dataset d({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 60; ++i) {
    d.AddRow({static_cast<AttrValue>(10 + i % 20),
              static_cast<AttrValue>(5 + (i * 7) % 11)},
             i % 2);
  }
  // Tail rows outside [10, 29] on x (both sides).
  d.AddRow({120, 7}, 0);
  d.AddRow({-40, 8}, 1);
  d.AddRow({121, 9}, 0);
  return d;
}

StreamOptions PrefixFitOptions(OodPolicy policy) {
  StreamOptions options;
  options.chunk_rows = 10;
  options.fit_rows = 60;
  options.ood_policy = policy;
  options.seed = 5;
  return options;
}

TEST(OodPolicyTest, RejectFailsWithActionableError) {
  const Dataset data = PrefixPlusOutliers();
  DatasetChunkReader reader(&data);
  DatasetChunkWriter writer;
  auto plan = StreamingCustodian::Release(
      reader, writer, PrefixFitOptions(OodPolicy::kReject));
  ASSERT_FALSE(plan.ok());
  const std::string message = plan.status().ToString();
  // Actionable: names the attribute, the offending value, the hull, and
  // the active policy.
  EXPECT_NE(message.find("attribute 'x'"), std::string::npos) << message;
  EXPECT_NE(message.find("120"), std::string::npos) << message;
  EXPECT_NE(message.find("fitted domain"), std::string::npos) << message;
  EXPECT_NE(message.find("reject"), std::string::npos) << message;
  EXPECT_NE(message.find("stream row 61"), std::string::npos) << message;
}

TEST(OodPolicyTest, ClampEncodesOutliersToHullImages) {
  const Dataset data = PrefixPlusOutliers();
  DatasetChunkReader reader(&data);
  DatasetChunkWriter writer;
  StreamStats stats;
  auto plan = StreamingCustodian::Release(
      reader, writer, PrefixFitOptions(OodPolicy::kClamp), &stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(stats.ood_total, 3u);
  EXPECT_EQ(stats.ood_by_attribute[0], 3u);
  EXPECT_EQ(stats.refits, 0u);
  const Dataset& out = writer.collected();
  ASSERT_EQ(out.NumRows(), data.NumRows());
  const PiecewiseTransform& t = plan.value().transform(0);
  const auto hull = stream::FittedHull(t);
  // Outliers collide with the nearest hull endpoint's image.
  EXPECT_EQ(out.Column(0)[60], t.Apply(hull.hi));
  EXPECT_EQ(out.Column(0)[61], t.Apply(hull.lo));
  EXPECT_EQ(out.Column(0)[62], t.Apply(hull.hi));
}

TEST(OodPolicyTest, ExtendPiecePreservesOrderBeyondHull) {
  const Dataset data = PrefixPlusOutliers();
  DatasetChunkReader reader(&data);
  DatasetChunkWriter writer;
  StreamStats stats;
  auto plan = StreamingCustodian::Release(
      reader, writer, PrefixFitOptions(OodPolicy::kExtendPiece), &stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(stats.ood_total, 3u);
  const Dataset& out = writer.collected();
  const PiecewiseTransform& t = plan.value().transform(0);
  const auto hull = stream::FittedHull(t);
  // Order against every in-hull image survives: 120 and 121 land strictly
  // beyond the image of the hull max (global-monotone default), -40
  // strictly below the image of the hull min — and 120 < 121 is kept.
  EXPECT_GT(out.Column(0)[60], t.Apply(hull.hi));
  EXPECT_LT(out.Column(0)[61], t.Apply(hull.lo));
  EXPECT_GT(out.Column(0)[62], out.Column(0)[60]);
}

TEST(OodPolicyTest, RefitAbsorbsOutliersDeterministically) {
  const Dataset data = PrefixPlusOutliers();
  DatasetChunkReader reader(&data);
  DatasetChunkWriter writer;
  StreamStats stats;
  auto plan = StreamingCustodian::Release(
      reader, writer, PrefixFitOptions(OodPolicy::kRefit), &stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(stats.refits, 1u);
  EXPECT_EQ(stats.ood_total, 3u);
  // The final plan's hull covers the whole stream.
  const auto hull = stream::FittedHull(plan.value().transform(0));
  EXPECT_EQ(hull.lo, -40);
  EXPECT_EQ(hull.hi, 121);
  // Determinism: the same stream yields byte-identical output and plan.
  DatasetChunkReader reader2(&data);
  DatasetChunkWriter writer2;
  auto plan2 = StreamingCustodian::Release(
      reader2, writer2, PrefixFitOptions(OodPolicy::kRefit));
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(SerializePlan(plan.value()), SerializePlan(plan2.value()));
  EXPECT_EQ(ToCsvString(writer.collected()), ToCsvString(writer2.collected()));
}

TEST(OodPolicyTest, ParseAndToStringRoundTrip) {
  for (const OodPolicy policy :
       {OodPolicy::kReject, OodPolicy::kClamp, OodPolicy::kExtendPiece,
        OodPolicy::kRefit}) {
    auto parsed = stream::ParseOodPolicy(stream::ToString(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), policy);
  }
  EXPECT_FALSE(stream::ParseOodPolicy("ignore").ok());
}

// ------------------------------------------------------ loaded-plan mode --

TEST(StreamReleaseTest, ReleaseWithLoadedPlanMatchesBatchEncode) {
  const Dataset data = CovtypeLikeData(250, /*seed=*/19);
  const Batch batch = BatchRelease(data, /*seed=*/29);
  // Round-trip the key through its serialized form, as the CLI's --key-in
  // path does.
  auto reloaded = ParsePlan(SerializePlan(batch.plan));
  ASSERT_TRUE(reloaded.ok());
  StreamOptions options;
  options.chunk_rows = 31;
  DatasetChunkReader reader(&data);
  DatasetChunkWriter writer;
  auto plan = StreamingCustodian::ReleaseWithPlan(
      reader, writer, std::move(reloaded).value(), options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(ToCsvString(writer.collected()), ToCsvString(batch.released));
}

// ------------------------------------------------------ crash + resume --

using stream::ResumableCsvChunkWriter;

/// One streamed release into the journaled sink at `path`.
Status ResumableRelease(const Dataset& data, const StreamOptions& options,
                        const std::string& path, bool resume,
                        StreamStats* stats = nullptr) {
  DatasetChunkReader reader(&data);
  ResumableCsvChunkWriter writer(path, {}, resume);
  auto plan = StreamingCustodian::Release(reader, writer, options, stats);
  return plan.ok() ? Status::Ok() : plan.status();
}

std::string SlurpFile(const std::string& path) {
  auto bytes = fault::ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? bytes.value() : std::string();
}

/// The resume bit-identity sweep: kill the release at evenly spaced I/O
/// operations (with a torn half-written buffer at the kill point), across
/// several chunk sizes, and require every `--resume` continuation to
/// finish with bytes identical to the uninterrupted run.
TEST(StreamResumeTest, ResumeIsByteIdenticalAcrossChunkSizesAndKillPoints) {
  const Dataset data = CovtypeLikeData(300, /*seed=*/13);
  for (const size_t chunk_rows : {17u, 97u, 300u}) {
    StreamOptions options;
    options.chunk_rows = chunk_rows;
    options.seed = 41;
    options.exec = ExecPolicy{3};
    const std::string path = testing::TempDir() + "/resume_" +
                             std::to_string(chunk_rows) + ".csv";
    ASSERT_TRUE(ResumableRelease(data, options, path, false).ok());
    const std::string golden = SlurpFile(path);
    ASSERT_FALSE(golden.empty());

    // Size the schedule space from an op-count probe of a full run.
    size_t total_ops = 0;
    {
      fault::ScopedFaultInjection probe(fault::FaultSchedule::CountOnly());
      ASSERT_TRUE(ResumableRelease(data, options,
                                   path + ".count", false)
                      .ok());
      total_ops = probe.ops_seen();
    }
    ASSERT_GT(total_ops, 0u);

    const size_t kill_points[] = {0, total_ops / 4, total_ops / 2,
                                  (3 * total_ops) / 4, total_ops - 1};
    for (const size_t kill : kill_points) {
      SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows) +
                   " kill_op=" + std::to_string(kill));
      std::remove(path.c_str());
      {
        fault::ScopedFaultInjection inject(
            fault::FaultSchedule::CrashAt(kill, /*write_fraction=*/0.5));
        const Status died = ResumableRelease(data, options, path, false);
        ASSERT_TRUE(inject.fired());
        ASSERT_FALSE(died.ok());
      }
      // The final name never holds a partial artifact.
      if (fault::FileExists(path)) {
        EXPECT_EQ(SlurpFile(path), golden);
      }
      StreamStats stats;
      ASSERT_TRUE(ResumableRelease(data, options, path, true, &stats).ok());
      EXPECT_EQ(SlurpFile(path), golden);
      EXPECT_FALSE(fault::FileExists(path + ".partial"));
      EXPECT_FALSE(fault::FileExists(path + ".manifest"));
    }
  }
}

/// A kill late in the encode pass leaves durable chunks behind, and the
/// resumed run must actually reuse them rather than silently re-encode.
TEST(StreamResumeTest, LateKillReusesCompletedChunks) {
  const Dataset data = CovtypeLikeData(300, /*seed=*/13);
  StreamOptions options;
  options.chunk_rows = 50;
  options.seed = 41;
  const std::string path = testing::TempDir() + "/resume_late.csv";
  std::remove(path.c_str());
  size_t total_ops = 0;
  {
    fault::ScopedFaultInjection probe(fault::FaultSchedule::CountOnly());
    ASSERT_TRUE(ResumableRelease(data, options, path, false).ok());
    total_ops = probe.ops_seen();
  }
  const std::string golden = SlurpFile(path);
  std::remove(path.c_str());
  {
    // Kill right before the close/rename tail: every chunk except the
    // in-flight one is already journaled.
    fault::ScopedFaultInjection inject(
        fault::FaultSchedule::CrashAt(total_ops - 4));
    ASSERT_FALSE(ResumableRelease(data, options, path, false).ok());
  }
  StreamStats stats;
  ASSERT_TRUE(ResumableRelease(data, options, path, true, &stats).ok());
  EXPECT_EQ(SlurpFile(path), golden);
  EXPECT_GT(stats.resumed_chunks, 0u);
  EXPECT_NE(stats.Render().find("resumed"), std::string::npos);
}

/// `--resume` against a journal from a different configuration (different
/// seed → different plan fingerprint) must fall back to a fresh run and
/// still produce the right bytes for the *new* configuration.
TEST(StreamResumeTest, FingerprintMismatchFallsBackToFreshRun) {
  const Dataset data = CovtypeLikeData(200, /*seed=*/9);
  StreamOptions options;
  options.chunk_rows = 37;
  options.seed = 7;
  const std::string path = testing::TempDir() + "/resume_mismatch.csv";
  std::remove(path.c_str());
  ASSERT_TRUE(ResumableRelease(data, options, path, false).ok());
  const std::string golden_seed7 = SlurpFile(path);
  // Interrupt a run with seed 7, then resume with seed 8.
  {
    fault::ScopedFaultInjection inject(fault::FaultSchedule::CrashAt(12));
    ASSERT_FALSE(ResumableRelease(data, options, path, false).ok());
  }
  StreamOptions other = options;
  other.seed = 8;
  StreamStats stats;
  ASSERT_TRUE(ResumableRelease(data, other, path, true, &stats).ok());
  EXPECT_EQ(stats.resumed_chunks, 0u);
  EXPECT_NE(SlurpFile(path), golden_seed7);
  // And resuming the seed-7 journal-less state with seed 7 reproduces the
  // seed-7 bytes.
  ASSERT_TRUE(ResumableRelease(data, options, path, true).ok());
  EXPECT_EQ(SlurpFile(path), golden_seed7);
}

TEST(StreamReleaseTest, EmptyStreamFailsCleanly) {
  Dataset empty({"x"}, {"a", "b"});
  DatasetChunkReader reader(&empty);
  DatasetChunkWriter writer;
  auto plan = StreamingCustodian::Release(reader, writer, StreamOptions{});
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("no data rows"), std::string::npos);
}

}  // namespace
}  // namespace popp
