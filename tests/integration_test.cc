#include <gtest/gtest.h>

#include <cmath>

#include "core/custodian.h"
#include "data/csv.h"
#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/serialize.h"
#include "transform/tree_decode.h"
#include "tree/builder.h"
#include "tree/compare.h"
#include "tree/prune.h"
#include "tree/serialize.h"

namespace popp {
namespace {

// ------------------------------------------------ degenerate-shape data --

TEST(EdgeCaseTest, TwoRowDataset) {
  Dataset d({"x"}, {"a", "b"});
  d.AddRow({1}, 0);
  d.AddRow({5}, 1);
  CustodianOptions options;
  options.transform.min_breakpoints = 1;
  const Custodian custodian(std::move(d), options);
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
}

TEST(EdgeCaseTest, SingleRowDataset) {
  Dataset d({"x", "y"}, {"a", "b"});
  d.AddRow({7, 9}, 1);
  const Custodian custodian(std::move(d), CustodianOptions{});
  // Tree is a single leaf; decode trivially equals direct.
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
  EXPECT_EQ(custodian.MineDirectly().NumNodes(), 1u);
}

TEST(EdgeCaseTest, ConstantAttribute) {
  // One attribute carries all information; the other is constant.
  Dataset d({"useful", "constant"}, {"a", "b"});
  for (int i = 0; i < 40; ++i) {
    d.AddRow({static_cast<double>(i), 42.0}, i < 20 ? 0 : 1);
  }
  const Custodian custodian(std::move(d), CustodianOptions{});
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
  const DecisionTree tree = custodian.MineDirectly();
  EXPECT_EQ(tree.node(tree.root()).attribute, 0u);
}

TEST(EdgeCaseTest, AllRowsIdentical) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 10; ++i) d.AddRow({3}, 0);
  const Custodian custodian(std::move(d), CustodianOptions{});
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
}

TEST(EdgeCaseTest, ManyClasses) {
  Rng rng(3);
  Dataset d = MakeRandomDataset(600, 3, 20, 300, rng);
  const Custodian custodian(std::move(d), CustodianOptions{});
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
}

TEST(EdgeCaseTest, NegativeAndLargeMagnitudes) {
  Dataset d({"x", "y"}, {"a", "b"});
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-1e6, 1e6);
    const double y = rng.Uniform(-500.0, -100.0);
    d.AddRow({x, y}, x + 1000.0 * y > 0 ? 1 : 0);
  }
  const Custodian custodian(std::move(d), CustodianOptions{});
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
}

TEST(EdgeCaseTest, FractionalValues) {
  Dataset d({"x"}, {"a", "b"});
  Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    d.AddRow({x}, x > 0.4 ? 1 : 0);
  }
  const Custodian custodian(std::move(d), CustodianOptions{});
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
}

TEST(EdgeCaseTest, DuplicatedAttribute) {
  // Two identical columns: ties between them must break identically on
  // D and D' (by attribute index).
  Dataset d({"x", "x_copy"}, {"a", "b"});
  Rng rng(9);
  for (int i = 0; i < 120; ++i) {
    const double x = static_cast<double>(rng.UniformInt(0, 50));
    d.AddRow({x, x}, x > 25 ? 1 : 0);
  }
  const Custodian custodian(std::move(d), CustodianOptions{});
  EXPECT_TRUE(custodian.VerifyNoOutcomeChange());
  // The winner must be attribute 0 in both worlds.
  const DecisionTree tree = custodian.MineDirectly();
  EXPECT_EQ(tree.node(tree.root()).attribute, 0u);
}

// ----------------------------------------------- full-pipeline journeys --

TEST(PipelineTest, CsvToKeyToDecodedTreeOnDisk) {
  // The whole production flow through files, without the CLI layer.
  Rng rng(11);
  const Dataset original = GenerateCovtypeLike(SmallCovtypeSpec(700), rng);
  const std::string dir = testing::TempDir();
  ASSERT_TRUE(WriteCsv(original, dir + "/it_data.csv").ok());

  // Custodian: load, plan, release, persist key.
  auto loaded = ReadCsv(dir + "/it_data.csv");
  ASSERT_TRUE(loaded.ok());
  Rng plan_rng(13);
  const TransformPlan plan =
      TransformPlan::Create(loaded.value(), PiecewiseOptions{}, plan_rng);
  ASSERT_TRUE(SavePlan(plan, dir + "/it_plan.key").ok());
  ASSERT_TRUE(
      WriteCsv(plan.EncodeDataset(loaded.value()), dir + "/it_released.csv")
          .ok());

  // Provider: load the release, mine, persist the tree.
  auto released = ReadCsv(dir + "/it_released.csv");
  ASSERT_TRUE(released.ok());
  const DecisionTree mined = DecisionTreeBuilder().Build(released.value());
  ASSERT_TRUE(SaveTree(mined, dir + "/it_mined.tree").ok());

  // Custodian: reload everything and decode.
  auto key = LoadPlan(dir + "/it_plan.key");
  auto wire_tree = LoadTree(dir + "/it_mined.tree");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(wire_tree.ok());
  const DecisionTree decoded =
      DecodeTreeWithData(wire_tree.value(), key.value(), loaded.value());
  const DecisionTree direct = DecisionTreeBuilder().Build(loaded.value());
  EXPECT_TRUE(ExactlyEqual(direct, decoded))
      << DescribeDifference(direct, decoded);
}

TEST(PipelineTest, CsvRoundTripPreservesDoublesExactly) {
  // Transformed values are irrational-ish doubles; the CSV layer must not
  // lose precision or the decode would break.
  Rng rng(17);
  const Dataset original = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  Rng plan_rng(19);
  const TransformPlan plan =
      TransformPlan::Create(original, PiecewiseOptions{}, plan_rng);
  const Dataset released = plan.EncodeDataset(original);
  auto round_tripped = ParseCsv(ToCsvString(released));
  ASSERT_TRUE(round_tripped.ok());
  size_t mismatches = 0;
  for (size_t r = 0; r < released.NumRows(); ++r) {
    for (size_t a = 0; a < released.NumAttributes(); ++a) {
      const double v1 = released.Value(r, a);
      const double v2 = round_tripped.value().Value(r, a);
      // %g prints 6 significant digits by default — make sure our CSV
      // writer does better than that.
      if (std::fabs(v1 - v2) > 1e-9 * std::max(1.0, std::fabs(v1))) {
        ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(PipelineTest, PrunedAndUnprunedDecodeConsistently) {
  Rng rng(23);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(900), rng);
  CustodianOptions options;
  options.seed = 29;
  const Custodian custodian(Dataset(d), options);
  const DecisionTree decoded = custodian.Decode(custodian.MineReleased());
  // Pruning commutes with decoding.
  EXPECT_TRUE(ExactlyEqual(PruneTree(decoded),
                           PruneTree(custodian.MineDirectly())));
}

TEST(PipelineTest, RepeatedReleasesUseDistinctPlans) {
  // Two custodians with different seeds produce unlinkable releases of
  // the same data, both decoding to the same tree.
  Rng rng(31);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), rng);
  CustodianOptions o1;
  o1.seed = 1;
  CustodianOptions o2;
  o2.seed = 2;
  const Custodian c1(Dataset(d), o1);
  const Custodian c2(Dataset(d), o2);
  EXPECT_NE(c1.Release(), c2.Release());
  EXPECT_TRUE(ExactlyEqual(c1.Decode(c1.MineReleased()),
                           c2.Decode(c2.MineReleased())));
}

}  // namespace
}  // namespace popp
