#include <gtest/gtest.h>

#include "synth/covtype_like.h"
#include "synth/presets.h"
#include "transform/plan.h"
#include "transform/serialize.h"
#include "transform/tree_decode.h"
#include "tree/builder.h"
#include "tree/compare.h"
#include "tree/serialize.h"

namespace popp {
namespace {

// --------------------------------------------------------------- shapes --

TEST(ShapeSerializeTest, TokensRoundTrip) {
  const std::vector<std::unique_ptr<ShapeFunction>> shapes = [] {
    std::vector<std::unique_ptr<ShapeFunction>> v;
    v.push_back(std::make_unique<IdentityShape>());
    v.push_back(std::make_unique<PowerShape>(2.718281828));
    v.push_back(std::make_unique<LogShape>(7.25));
    v.push_back(std::make_unique<SqrtLogShape>(3.125));
    return v;
  }();
  for (const auto& shape : shapes) {
    auto parsed = ParseShape(shape->Serialize());
    ASSERT_TRUE(parsed.ok()) << shape->Serialize();
    for (double t : {0.0, 0.2, 0.55, 1.0}) {
      EXPECT_DOUBLE_EQ(parsed.value()->Forward(t), shape->Forward(t));
    }
  }
}

TEST(ShapeSerializeTest, RejectsBadTokens) {
  EXPECT_FALSE(ParseShape("sigmoid 3").ok());
  EXPECT_FALSE(ParseShape("power").ok());
  EXPECT_FALSE(ParseShape("power -1").ok());
  EXPECT_FALSE(ParseShape("log zero").ok());
}

// ----------------------------------------------------------------- plan --

TEST(PlanSerializeTest, RoundTripsBitExactly) {
  Rng data_rng(3);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(800), data_rng);
  Rng rng(5);
  PiecewiseOptions options;
  options.min_breakpoints = 10;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);

  const std::string text = SerializePlan(plan);
  auto reloaded = ParsePlan(text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  // Bit-exact encode equality on every cell.
  const Dataset a = plan.EncodeDataset(d);
  const Dataset b = reloaded.value().EncodeDataset(d);
  EXPECT_EQ(a, b);
  // ...and decode equality.
  for (size_t attr = 0; attr < d.NumAttributes(); ++attr) {
    for (AttrValue v : d.ActiveDomain(attr)) {
      EXPECT_EQ(reloaded.value().Decode(attr, plan.Encode(attr, v)),
                plan.Decode(attr, plan.Encode(attr, v)));
    }
  }
}

TEST(PlanSerializeTest, GlobalAntiMonotoneRoundTrips) {
  const Dataset d = MakeFigure1Dataset();
  Rng rng(7);
  PiecewiseOptions options;
  options.global_anti_monotone = true;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  auto reloaded = ParsePlan(SerializePlan(plan));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded.value().transform(0).global_anti_monotone());
  EXPECT_EQ(plan.EncodeDataset(d), reloaded.value().EncodeDataset(d));
}

TEST(PlanSerializeTest, ReloadedPlanDecodesTrees) {
  Rng data_rng(11);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(13);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  auto reloaded = ParsePlan(SerializePlan(plan));
  ASSERT_TRUE(reloaded.ok());

  const DecisionTreeBuilder builder;
  const DecisionTree direct = builder.Build(d);
  const DecisionTree mined = builder.Build(plan.EncodeDataset(d));
  const DecisionTree decoded =
      DecodeTreeWithData(mined, reloaded.value(), d);
  EXPECT_TRUE(ExactlyEqual(direct, decoded))
      << DescribeDifference(direct, decoded);
}

TEST(PlanSerializeTest, FileRoundTrip) {
  const Dataset d = MakeFigure1Dataset();
  Rng rng(17);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const std::string path = testing::TempDir() + "/popp_plan_test.key";
  ASSERT_TRUE(SavePlan(plan, path).ok());
  auto reloaded = LoadPlan(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(plan.EncodeDataset(d), reloaded.value().EncodeDataset(d));
}

TEST(PlanSerializeTest, RejectsCorruptDocuments) {
  EXPECT_FALSE(ParsePlan("").ok());
  EXPECT_FALSE(ParsePlan("not-a-plan v1").ok());
  EXPECT_FALSE(ParsePlan("popp-plan v2 attributes 0").ok());
  EXPECT_FALSE(ParsePlan("popp-plan v1 attributes 1 attribute 0 pieces 1 "
                         "global_anti 0 piece 0 1 0 1 0 rescaled sigmoid 1 "
                         "0 1 0 1 0")
                   .ok());
  // Truncated permutation.
  EXPECT_FALSE(ParsePlan("popp-plan v1 attributes 1 attribute 0 pieces 1 "
                         "global_anti 0 piece 0 1 0 1 1 perm 3 0 5 1 6")
                   .ok());
  EXPECT_FALSE(LoadPlan("/nonexistent/plan.key").ok());
}

// ----------------------------------------------------------------- tree --

TEST(TreeSerializeTest, RoundTripsExactly) {
  Rng data_rng(19);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(700), data_rng);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  auto reloaded = ParseTree(SerializeTree(tree));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(ExactlyEqual(tree, reloaded.value()))
      << DescribeDifference(tree, reloaded.value());
  // Histograms survive too (the pruner needs them).
  EXPECT_EQ(reloaded.value().node(reloaded.value().root()).class_hist,
            tree.node(tree.root()).class_hist);
}

TEST(TreeSerializeTest, EmptyTree) {
  DecisionTree empty;
  auto reloaded = ParseTree(SerializeTree(empty));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded.value().empty());
}

TEST(TreeSerializeTest, SingleLeaf) {
  DecisionTree t;
  t.SetRoot(t.AddLeaf(2, {0, 0, 7}));
  auto reloaded = ParseTree(SerializeTree(t));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(ExactlyEqual(t, reloaded.value()));
}

TEST(TreeSerializeTest, FileRoundTrip) {
  const Dataset d = MakeFigure1Dataset();
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  const std::string path = testing::TempDir() + "/popp_tree_test.tree";
  ASSERT_TRUE(SaveTree(tree, path).ok());
  auto reloaded = LoadTree(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(ExactlyEqual(tree, reloaded.value()));
}

TEST(TreeSerializeTest, RejectsCorruptDocuments) {
  EXPECT_FALSE(ParseTree("").ok());
  EXPECT_FALSE(ParseTree("popp-tree v9\nempty\n").ok());
  EXPECT_FALSE(ParseTree("popp-tree v1\nbranch 0 5\n").ok());
  // Split missing its children.
  EXPECT_FALSE(ParseTree("popp-tree v1\nsplit 0 5 hist 2 1 1\n").ok());
  // Trailing garbage.
  EXPECT_FALSE(
      ParseTree("popp-tree v1\nleaf 0 hist 2 1 1\nleaf 1 hist 2 1 1\n").ok());
  EXPECT_FALSE(LoadTree("/nonexistent/x.tree").ok());
}

class SerializeSeedSweep : public testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeSeedSweep,
                         testing::Values(101, 202, 303, 404, 505));

TEST_P(SerializeSeedSweep, PlanSerializationIsIdempotent) {
  // serialize(parse(serialize(p))) == serialize(p), across random plans.
  Rng data_rng(GetParam());
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(GetParam() * 3 + 1);
  PiecewiseOptions options;
  options.min_breakpoints = 7;
  options.global_anti_monotone = (GetParam() % 2) == 0;
  const TransformPlan plan = TransformPlan::Create(d, options, rng);
  const std::string once = SerializePlan(plan);
  auto reparsed = ParsePlan(once);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(SerializePlan(reparsed.value()), once);
}

TEST_P(SerializeSeedSweep, TreeSerializationIsIdempotent) {
  Rng data_rng(GetParam() * 7 + 5);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  const DecisionTree tree = DecisionTreeBuilder().Build(d);
  const std::string once = SerializeTree(tree);
  auto reparsed = ParseTree(once);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(SerializeTree(reparsed.value()), once);
}

TEST(TreeSerializeTest, ProviderToCustodianExchange) {
  // End-to-end over the wire: the provider serializes T', the custodian
  // parses and decodes it against her plan.
  Rng data_rng(23);
  const Dataset d = GenerateCovtypeLike(SmallCovtypeSpec(600), data_rng);
  Rng rng(29);
  const TransformPlan plan =
      TransformPlan::Create(d, PiecewiseOptions{}, rng);
  const DecisionTreeBuilder builder;

  const std::string wire =
      SerializeTree(builder.Build(plan.EncodeDataset(d)));
  auto received = ParseTree(wire);
  ASSERT_TRUE(received.ok());
  const DecisionTree decoded =
      DecodeTreeWithData(received.value(), plan, d);
  EXPECT_TRUE(ExactlyEqual(builder.Build(d), decoded));
}

}  // namespace
}  // namespace popp
