#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/summary.h"
#include "synth/covtype_like.h"
#include "synth/distributions.h"
#include "synth/presets.h"
#include "transform/pieces.h"

namespace popp {
namespace {

// --------------------------------------------------------- distributions --

TEST(CategoricalSamplerTest, MatchesWeights) {
  Rng rng(3);
  CategoricalSampler sampler({1.0, 3.0, 6.0});
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(CategoricalSamplerTest, ZeroWeightNeverDrawn) {
  Rng rng(5);
  CategoricalSampler sampler({0.0, 1.0});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler.Sample(rng), 1u);
  }
}

TEST(CategoricalSamplerTest, SingleCategory) {
  Rng rng(5);
  CategoricalSampler sampler({2.5});
  EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(ZipfSamplerTest, RanksInRangeAndSkewed) {
  Rng rng(7);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(101, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const size_t r = zipf.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    counts[r]++;
  }
  // Rank 1 should dominate rank 10 roughly by 10^1.2.
  EXPECT_GT(counts[1], counts[10] * 5);
}

TEST(SampleDistinctSupportTest, PinsEndpointsAndCount) {
  Rng rng(11);
  for (int rep = 0; rep < 20; ++rep) {
    const auto support = SampleDistinctSupport(10, 109, 37, rng);
    ASSERT_EQ(support.size(), 37u);
    EXPECT_EQ(support.front(), 10);
    EXPECT_EQ(support.back(), 109);
    EXPECT_TRUE(std::is_sorted(support.begin(), support.end()));
    std::set<int64_t> uniq(support.begin(), support.end());
    EXPECT_EQ(uniq.size(), support.size());
  }
}

TEST(SampleDistinctSupportTest, FullDensity) {
  Rng rng(11);
  const auto support = SampleDistinctSupport(0, 9, 10, rng);
  for (int64_t v = 0; v < 10; ++v) EXPECT_EQ(support[v], v);
}

TEST(SampleClusteredSupportTest, PinsEndpointsCountAndUniqueness) {
  Rng rng(43);
  for (int rep = 0; rep < 10; ++rep) {
    const auto support = SampleClusteredSupport(100, 1099, 250, 8, 2.0, rng);
    ASSERT_EQ(support.size(), 250u);
    EXPECT_EQ(support.front(), 100);
    EXPECT_EQ(support.back(), 1099);
    EXPECT_TRUE(std::is_sorted(support.begin(), support.end()));
    std::set<int64_t> uniq(support.begin(), support.end());
    EXPECT_EQ(uniq.size(), support.size());
  }
}

TEST(SampleClusteredSupportTest, FullDensityIsIdentity) {
  Rng rng(47);
  const auto support = SampleClusteredSupport(5, 14, 10, 4, 2.0, rng);
  for (int64_t v = 0; v < 10; ++v) EXPECT_EQ(support[v], 5 + v);
}

TEST(SampleClusteredSupportTest, DensitiesActuallyVary) {
  // With a strong log-spread, some stretch of the domain must be much
  // denser than another (this is what powers the Figure 11 defense).
  Rng rng(53);
  const auto support = SampleClusteredSupport(0, 9999, 2000, 10, 2.5, rng);
  // Count support points per tenth of the range.
  std::vector<int> per_decile(10, 0);
  for (int64_t v : support) per_decile[std::min<int64_t>(9, v / 1000)]++;
  const int min_count =
      *std::min_element(per_decile.begin(), per_decile.end());
  const int max_count =
      *std::max_element(per_decile.begin(), per_decile.end());
  EXPECT_GT(max_count, 2 * std::max(1, min_count));
}

TEST(SampleClusteredSupportTest, MinimalCount) {
  Rng rng(59);
  const auto support = SampleClusteredSupport(0, 99, 2, 8, 2.0, rng);
  EXPECT_EQ(support, (std::vector<int64_t>{0, 99}));
}

TEST(ClampedGaussianIntTest, StaysInBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = ClampedGaussianInt(50, 100, 0, 80, rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 80);
  }
}

// ------------------------------------------------------- covtype factory --

TEST(CovtypeLikeTest, SmallSpecMatchesTargets) {
  Rng rng(17);
  const CovtypeLikeSpec spec = SmallCovtypeSpec(3000);
  const Dataset data = GenerateCovtypeLike(spec, rng);
  ASSERT_EQ(data.NumRows(), 3000u);
  ASSERT_EQ(data.NumAttributes(), 3u);
  for (size_t a = 0; a < spec.attributes.size(); ++a) {
    const auto& t = spec.attributes[a];
    const auto s = AttributeSummary::FromDataset(data, a);
    EXPECT_EQ(s.NumDistinct(), t.num_distinct) << "attr " << a;
    EXPECT_DOUBLE_EQ(s.DynamicRangeWidth(),
                     static_cast<double>(t.range_width))
        << "attr " << a;
    EXPECT_DOUBLE_EQ(s.MinValue(), static_cast<double>(t.min_value));
    const MonoStats stats = ComputeMonoStats(s, 2);
    EXPECT_EQ(stats.num_pieces, t.num_mono_pieces) << "attr " << a;
    EXPECT_NEAR(stats.value_fraction, t.mono_value_fraction, 0.01)
        << "attr " << a;
  }
}

TEST(CovtypeLikeTest, MixedValuesReallyMix) {
  Rng rng(19);
  const Dataset data = GenerateCovtypeLike(SmallCovtypeSpec(3000), rng);
  // Attribute 1 (a2) is specified with zero mono pieces: every distinct
  // value must be non-monochromatic.
  const auto s = AttributeSummary::FromDataset(data, 1);
  for (size_t i = 0; i < s.NumDistinct(); ++i) {
    EXPECT_FALSE(s.IsMonochromatic(i)) << "value index " << i;
  }
}

TEST(CovtypeLikeTest, DeterministicGivenSeed) {
  Rng rng1(23), rng2(23);
  const Dataset a = GenerateCovtypeLike(SmallCovtypeSpec(1000), rng1);
  const Dataset b = GenerateCovtypeLike(SmallCovtypeSpec(1000), rng2);
  EXPECT_EQ(a, b);
}

TEST(CovtypeLikeTest, DefaultSpecHasTenFigure8Attributes) {
  const CovtypeLikeSpec spec = DefaultCovtypeSpec();
  ASSERT_EQ(spec.attributes.size(), 10u);
  EXPECT_EQ(spec.attributes[0].range_width, 2000);
  EXPECT_EQ(spec.attributes[0].num_distinct, 1978u);
  EXPECT_EQ(spec.attributes[0].num_mono_pieces, 9u);
  EXPECT_EQ(spec.attributes[1].num_mono_pieces, 0u);
  EXPECT_EQ(spec.attributes[9].num_distinct, 5827u);
  EXPECT_EQ(spec.class_weights.size(), 7u);
}

TEST(CovtypeLikeTest, DefaultSpecGeneratesAtModerateScale) {
  Rng rng(29);
  CovtypeLikeSpec spec = DefaultCovtypeSpec(30000);
  const Dataset data = GenerateCovtypeLike(spec, rng);
  ASSERT_EQ(data.NumRows(), 30000u);
  ASSERT_EQ(data.NumAttributes(), 10u);
  // Spot-check the two attributes the paper leans on most: #2 (worst case,
  // no discontinuity, no mono) and #10 (rich structure).
  const auto s2 = AttributeSummary::FromDataset(data, 1);
  EXPECT_EQ(s2.NumDiscontinuities(), 0u);
  EXPECT_EQ(ComputeMonoStats(s2, 2).num_pieces, 0u);
  const auto s10 = AttributeSummary::FromDataset(data, 9);
  EXPECT_EQ(s10.NumDistinct(), 5827u);
  EXPECT_EQ(s10.NumDiscontinuities(), 7174u - 5827u);
  EXPECT_NEAR(ComputeMonoStats(s10, 2).value_fraction, 0.668, 0.01);
}

TEST(CovtypeLikeTest, LabelsAreSharedAcrossAttributes) {
  // The same label column must drive every attribute's structure: check
  // that mono pieces of different attributes coexist with one labels
  // vector (i.e. generation does not contradict itself).
  Rng rng(31);
  const Dataset data = GenerateCovtypeLike(SmallCovtypeSpec(2000), rng);
  for (size_t a = 0; a < data.NumAttributes(); ++a) {
    const auto s = AttributeSummary::FromDataset(data, a);
    EXPECT_EQ(s.NumTuples(), data.NumRows());
  }
}

// --------------------------------------------------------------- presets --

TEST(PresetsTest, Figure1ClassStrings) {
  const Dataset d = MakeFigure1Dataset();
  // By construction (see paper Figure 1): sigma_age = HHHLHL,
  // sigma_salary = HHHHLL with H=class 0, L=class 1.
  const auto age_proj = d.SortedProjection(0);
  std::vector<ClassId> age_string;
  for (const auto& t : age_proj) age_string.push_back(t.label);
  EXPECT_EQ(age_string, (std::vector<ClassId>{0, 0, 0, 1, 0, 1}));
  const auto salary_proj = d.SortedProjection(1);
  std::vector<ClassId> salary_string;
  for (const auto& t : salary_proj) salary_string.push_back(t.label);
  EXPECT_EQ(salary_string, (std::vector<ClassId>{0, 0, 0, 1, 1, 0}));
}

TEST(PresetsTest, Figure1TransformMatchesPaperFunctions) {
  const Dataset d = MakeFigure1Dataset();
  const Dataset dp = MakeFigure1Transformed();
  for (size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(dp.Value(r, 0), 0.9 * d.Value(r, 0) + 10.0);
    EXPECT_DOUBLE_EQ(dp.Value(r, 1), 0.5 * d.Value(r, 1));
    EXPECT_EQ(dp.Label(r), d.Label(r));
  }
}

TEST(PresetsTest, CensusAndWdbcSpecsGenerate) {
  Rng rng(37);
  const Dataset census = GenerateCovtypeLike(CensusLikeSpec(4000), rng);
  EXPECT_EQ(census.NumRows(), 4000u);
  EXPECT_EQ(census.NumAttributes(), 5u);
  EXPECT_EQ(census.NumClasses(), 2u);
  const Dataset wdbc = GenerateCovtypeLike(WdbcLikeSpec(2000), rng);
  EXPECT_EQ(wdbc.NumRows(), 2000u);
  EXPECT_EQ(wdbc.NumAttributes(), 6u);
}

TEST(PresetsTest, RandomDatasetShape) {
  Rng rng(41);
  const Dataset d = MakeRandomDataset(500, 4, 3, 50, rng);
  EXPECT_EQ(d.NumRows(), 500u);
  EXPECT_EQ(d.NumAttributes(), 4u);
  EXPECT_EQ(d.NumClasses(), 3u);
  for (size_t a = 0; a < 4; ++a) {
    const auto dom = d.ActiveDomain(a);
    EXPECT_GE(dom.front(), 0.0);
    EXPECT_LE(dom.back(), 50.0);
  }
}

}  // namespace
}  // namespace popp
