#include <gtest/gtest.h>

#include <set>

#include "data/summary.h"
#include "synth/covtype_like.h"
#include "transform/choose_bp.h"
#include "transform/choose_max_mp.h"
#include "transform/pieces.h"

namespace popp {
namespace {

/// The running example of the paper's Figures 3/4/7: 13 tuples,
/// values 1,2,15,15,27,28,29,29,29,29,42,43,44 with labels
/// H H H H L L L L H H H H H (H=0, L=1).
AttributeSummary PaperExampleSummary() {
  std::vector<ValueLabel> tuples = {
      {1, 0},  {2, 0},  {15, 0}, {15, 0}, {27, 1}, {28, 1}, {29, 1},
      {29, 1}, {29, 0}, {29, 0}, {42, 0}, {43, 0}, {44, 0},
  };
  return AttributeSummary::FromTuples(std::move(tuples), 2);
}

// ---------------------------------------------------------------- pieces --

TEST(PiecesTest, PaperExampleDistinctValues) {
  const auto s = PaperExampleSummary();
  ASSERT_EQ(s.NumDistinct(), 9u);
  EXPECT_TRUE(s.IsMonochromatic(s.IndexOf(15)));
  EXPECT_FALSE(s.IsMonochromatic(s.IndexOf(29)));  // both H and L at 29
  EXPECT_TRUE(s.IsMonochromatic(s.IndexOf(27)));
}

TEST(PiecesTest, IsMonochromaticRange) {
  const auto s = PaperExampleSummary();
  // Values 1,2,15 (indices 0..2): all H.
  EXPECT_TRUE(IsMonochromaticRange(s, 0, 3));
  // Values 27,28 (indices 3..4): all L.
  EXPECT_TRUE(IsMonochromaticRange(s, 3, 5));
  // Adding 29 (mixed) breaks it.
  EXPECT_FALSE(IsMonochromaticRange(s, 3, 6));
  // Crossing a class change (15 is H, 27 is L) breaks it too.
  EXPECT_FALSE(IsMonochromaticRange(s, 2, 4));
}

TEST(PiecesTest, MaximalPiecesMatchPaperFigure7) {
  const auto s = PaperExampleSummary();
  // ChooseMaxMP's pieces (paper): r1 = {1,2,15} H, r2 = {27,28} L,
  // r3 = {29} non-mono, r4 = {42,43,44} H. Maximal mono pieces are
  // r1, r2, r4.
  const auto pieces = MaximalMonochromaticPieces(s);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], (PieceSpec{0, 3, true}));
  EXPECT_EQ(pieces[1], (PieceSpec{3, 5, true}));
  EXPECT_EQ(pieces[2], (PieceSpec{6, 9, true}));
}

TEST(PiecesTest, MinWidthFiltersSlivers) {
  const auto s = PaperExampleSummary();
  const auto pieces = MaximalMonochromaticPieces(s, 3);
  ASSERT_EQ(pieces.size(), 2u);  // the 2-value L piece drops out
  EXPECT_EQ(pieces[0].length(), 3u);
  EXPECT_EQ(pieces[1].length(), 3u);
}

TEST(PiecesTest, ComputePiecesPartitions) {
  const auto s = PaperExampleSummary();
  const auto pieces = ComputePieces(s, {0, 3, 5, 6}, 1);
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0].begin, 0u);
  EXPECT_EQ(pieces[3].end, 9u);
  EXPECT_TRUE(pieces[0].monochromatic);   // 1,2,15 all H
  EXPECT_TRUE(pieces[1].monochromatic);   // 27,28 all L
  EXPECT_FALSE(pieces[2].monochromatic);  // 29 mixed
  EXPECT_TRUE(pieces[3].monochromatic);   // 42,43,44 all H
}

TEST(PiecesTest, ComputePiecesRespectsMinMonoWidth) {
  const auto s = PaperExampleSummary();
  const auto pieces = ComputePieces(s, {0, 3, 5, 6}, 3);
  EXPECT_TRUE(pieces[0].monochromatic);
  EXPECT_FALSE(pieces[1].monochromatic);  // width 2 < 3
  EXPECT_TRUE(pieces[3].monochromatic);
}

TEST(PiecesTest, MonoStatsPaperExample) {
  const auto s = PaperExampleSummary();
  const MonoStats stats = ComputeMonoStats(s);
  EXPECT_EQ(stats.num_pieces, 3u);
  EXPECT_NEAR(stats.avg_length, 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.value_fraction, 8.0 / 9.0, 1e-12);
}

TEST(PiecesTest, MonoStatsEmptyWhenNoMono) {
  // Alternate labels at every value.
  std::vector<ValueLabel> tuples;
  for (int v = 0; v < 10; ++v) {
    tuples.push_back({static_cast<double>(v), 0});
    tuples.push_back({static_cast<double>(v), 1});
  }
  const auto s = AttributeSummary::FromTuples(std::move(tuples), 2);
  const MonoStats stats = ComputeMonoStats(s);
  EXPECT_EQ(stats.num_pieces, 0u);
  EXPECT_EQ(stats.avg_length, 0.0);
  EXPECT_EQ(stats.value_fraction, 0.0);
}

// -------------------------------------------------------------- ChooseBP --

TEST(ChooseBPTest, StartsWithZeroAndSorted) {
  Rng rng(3);
  const auto s = PaperExampleSummary();
  for (int rep = 0; rep < 20; ++rep) {
    const auto starts = ChooseBP(s, 4, rng);
    ASSERT_FALSE(starts.empty());
    EXPECT_EQ(starts[0], 0u);
    EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
    std::set<size_t> uniq(starts.begin(), starts.end());
    EXPECT_EQ(uniq.size(), starts.size());
    EXPECT_EQ(starts.size(), 5u);  // 0 plus 4 breakpoints
    for (size_t b : starts) EXPECT_LT(b, s.NumDistinct());
  }
}

TEST(ChooseBPTest, CapsAtDomainSize) {
  Rng rng(5);
  const auto s = PaperExampleSummary();
  const auto starts = ChooseBP(s, 1000, rng);
  EXPECT_EQ(starts.size(), s.NumDistinct());  // every value its own piece
}

TEST(ChooseBPTest, ZeroBreakpointsSinglePiece) {
  Rng rng(7);
  const auto s = PaperExampleSummary();
  EXPECT_EQ(ChooseBP(s, 0, rng), (std::vector<size_t>{0}));
}

TEST(ChooseBPTest, RandomizedAcrossCalls) {
  Rng rng(9);
  const auto s = PaperExampleSummary();
  std::set<std::vector<size_t>> layouts;
  for (int rep = 0; rep < 20; ++rep) {
    layouts.insert(ChooseBP(s, 3, rng));
  }
  EXPECT_GT(layouts.size(), 5u);
}

// ----------------------------------------------------------- ChooseMaxMP --

TEST(ChooseMaxMPTest, PaperExampleScan) {
  Rng rng(11);
  const auto s = PaperExampleSummary();
  // With w=0 extra breakpoints and min width 1, the scan should produce
  // exactly the paper's four pieces: {1,2,15}, {27,28}, {29}, {42,43,44}.
  const auto result = ChooseMaxMP(s, 0, 1, rng);
  EXPECT_EQ(result.piece_starts, (std::vector<size_t>{0, 3, 5, 6}));
  ASSERT_EQ(result.pieces.size(), 4u);
  EXPECT_TRUE(result.pieces[0].monochromatic);
  EXPECT_TRUE(result.pieces[1].monochromatic);
  EXPECT_FALSE(result.pieces[2].monochromatic);
  EXPECT_TRUE(result.pieces[3].monochromatic);
  EXPECT_EQ(result.NumMonochromatic(), 3u);
}

TEST(ChooseMaxMPTest, TopUpFromNonMonochromaticValues) {
  // A domain with one big non-mono stretch: extra breakpoints must land
  // inside it.
  std::vector<ValueLabel> tuples;
  for (int v = 0; v < 40; ++v) {
    tuples.push_back({static_cast<double>(v), 0});
    tuples.push_back({static_cast<double>(v), 1});
  }
  const auto s = AttributeSummary::FromTuples(std::move(tuples), 2);
  Rng rng(13);
  const auto result = ChooseMaxMP(s, 10, 2, rng);
  EXPECT_GE(result.piece_starts.size(), 10u);
  EXPECT_EQ(result.NumMonochromatic(), 0u);
}

TEST(ChooseMaxMPTest, MinWidthDemotesAndMerges) {
  const auto s = PaperExampleSummary();
  Rng rng(17);
  // min width 3: the {27,28} piece is demoted; it merges with the
  // adjacent non-mono piece {29}.
  const auto result = ChooseMaxMP(s, 0, 3, rng);
  ASSERT_EQ(result.pieces.size(), 3u);
  EXPECT_EQ(result.piece_starts, (std::vector<size_t>{0, 3, 6}));
  EXPECT_TRUE(result.pieces[0].monochromatic);
  EXPECT_FALSE(result.pieces[1].monochromatic);  // {27,28,29}
  EXPECT_TRUE(result.pieces[2].monochromatic);
}

TEST(ChooseMaxMPTest, AllMonoDomain) {
  // Two mono classes back to back, no mixed values at all.
  std::vector<ValueLabel> tuples;
  for (int v = 0; v < 5; ++v) tuples.push_back({static_cast<double>(v), 0});
  for (int v = 5; v < 10; ++v) tuples.push_back({static_cast<double>(v), 1});
  const auto s = AttributeSummary::FromTuples(std::move(tuples), 2);
  Rng rng(19);
  const auto result = ChooseMaxMP(s, 20, 2, rng);
  // No non-mono values to top up from: just the two pieces.
  EXPECT_EQ(result.piece_starts, (std::vector<size_t>{0, 5}));
  EXPECT_EQ(result.NumMonochromatic(), 2u);
}

TEST(ChooseMaxMPTest, CovtypeAttributeCoversMonoShare) {
  Rng rng(23);
  const Dataset data = GenerateCovtypeLike(SmallCovtypeSpec(2000), rng);
  const auto s = AttributeSummary::FromDataset(data, 0);
  const auto result = ChooseMaxMP(s, 20, 2, rng);
  // All generated mono pieces must be discovered.
  size_t covered = 0;
  for (const auto& piece : result.pieces) {
    if (piece.monochromatic) covered += piece.length();
  }
  const MonoStats stats = ComputeMonoStats(s, 2);
  EXPECT_EQ(covered,
            static_cast<size_t>(stats.avg_length * stats.num_pieces + 0.5));
  EXPECT_GE(result.piece_starts.size(), 21u);  // >= w breakpoints + start
}

}  // namespace
}  // namespace popp
