#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/summary.h"
#include "synth/covtype_like.h"
#include "transform/piecewise.h"

namespace popp {
namespace {

AttributeSummary PaperExampleSummary() {
  std::vector<ValueLabel> tuples = {
      {1, 0},  {2, 0},  {15, 0}, {15, 0}, {27, 1}, {28, 1}, {29, 1},
      {29, 1}, {29, 0}, {29, 0}, {42, 0}, {43, 0}, {44, 0},
  };
  return AttributeSummary::FromTuples(std::move(tuples), 2);
}

AttributeSummary MixedSummary(size_t n) {
  // Every value carries both classes: no monochromatic values at all.
  std::vector<ValueLabel> tuples;
  for (size_t v = 0; v < n; ++v) {
    tuples.push_back({static_cast<double>(v * 3), 0});
    tuples.push_back({static_cast<double>(v * 3), 1});
  }
  return AttributeSummary::FromTuples(std::move(tuples), 2);
}

PiecewiseOptions BaselineOptions() {
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kNone;
  return options;
}

TEST(PiecewiseTest, SinglePieceRoundTrip) {
  Rng rng(3);
  const auto s = PaperExampleSummary();
  const auto f = PiecewiseTransform::Create(s, BaselineOptions(), rng);
  EXPECT_EQ(f.NumPieces(), 1u);
  for (AttrValue v : s.values()) {
    EXPECT_NEAR(f.Inverse(f.Apply(v)), v, 1e-8);
  }
}

TEST(PiecewiseTest, GlobalInvariantHoldsAcrossPoliciesAndSeeds) {
  const auto s = PaperExampleSummary();
  for (auto policy : {BreakpointPolicy::kNone, BreakpointPolicy::kChooseBP,
                      BreakpointPolicy::kChooseMaxMP}) {
    for (uint64_t seed = 1; seed <= 30; ++seed) {
      Rng rng(seed);
      PiecewiseOptions options;
      options.policy = policy;
      options.min_breakpoints = 3;
      const auto f = PiecewiseTransform::Create(s, options, rng);
      EXPECT_TRUE(f.SatisfiesGlobalInvariant(s))
          << ToString(policy) << " seed " << seed << "\n"
          << f.Describe();
    }
  }
}

TEST(PiecewiseTest, GlobalAntiMonotoneInvariant) {
  const auto s = PaperExampleSummary();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    PiecewiseOptions options;
    options.policy = BreakpointPolicy::kChooseMaxMP;
    options.global_anti_monotone = true;
    options.min_breakpoints = 2;
    const auto f = PiecewiseTransform::Create(s, options, rng);
    EXPECT_TRUE(f.global_anti_monotone());
    EXPECT_TRUE(f.SatisfiesGlobalInvariant(s)) << f.Describe();
  }
}

TEST(PiecewiseTest, ImagesDistinctOnActiveDomain) {
  const auto s = MixedSummary(200);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    PiecewiseOptions options;
    options.min_breakpoints = 20;
    const auto f = PiecewiseTransform::Create(s, options, rng);
    std::set<double> images;
    for (AttrValue v : s.values()) {
      EXPECT_TRUE(images.insert(f.Apply(v)).second)
          << "collision at " << v;
    }
  }
}

TEST(PiecewiseTest, InverseExactOnAllActiveValues) {
  const auto s = MixedSummary(150);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    PiecewiseOptions options;
    options.min_breakpoints = 15;
    const auto f = PiecewiseTransform::Create(s, options, rng);
    for (AttrValue v : s.values()) {
      EXPECT_NEAR(f.Inverse(f.Apply(v)), v, 1e-7);
    }
  }
}

TEST(PiecewiseTest, EveryValueIsTransformed) {
  // Section 1: "with the proposed transformations, every data value is
  // transformed" (vs perturbation leaving values unchanged). With random
  // offsets a value mapping exactly to itself has measure zero; assert
  // all values move for a handful of seeds.
  const auto s = PaperExampleSummary();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const auto f =
        PiecewiseTransform::Create(s, PiecewiseOptions{}, rng);
    for (AttrValue v : s.values()) {
      EXPECT_NE(f.Apply(v), v);
    }
  }
}

TEST(PiecewiseTest, MonochromaticPiecesGetBijections) {
  Rng rng(7);
  const auto s = PaperExampleSummary();
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseMaxMP;
  options.min_breakpoints = 0;
  options.min_mono_width = 1;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  ASSERT_EQ(f.NumPieces(), 4u);
  EXPECT_TRUE(f.piece(0).bijective);
  EXPECT_TRUE(f.piece(1).bijective);
  // The mixed piece {29} holds a single value: it is represented as a
  // (trivially bijective) one-point permutation rather than an F_mono
  // member, which needs a non-degenerate interval.
  EXPECT_EQ(f.piece(2).domain_lo, f.piece(2).domain_hi);
  EXPECT_TRUE(f.piece(3).bijective);
}

TEST(PiecewiseTest, ChooseBPNeverUsesBijections) {
  Rng rng(9);
  const auto s = PaperExampleSummary();
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseBP;
  options.min_breakpoints = 4;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  for (size_t p = 0; p < f.NumPieces(); ++p) {
    // Single-value pieces are represented as (trivially bijective)
    // permutations; multi-value pieces must be (anti-)monotone.
    if (f.piece(p).domain_lo != f.piece(p).domain_hi) {
      EXPECT_FALSE(f.piece(p).bijective);
    }
  }
}

TEST(PiecewiseTest, ApplyBridgesDomainGapsMonotonically) {
  const auto s = MixedSummary(50);
  Rng rng(11);
  PiecewiseOptions options;
  options.min_breakpoints = 8;
  options.family.anti_monotone_prob = 0.0;  // keep pieces monotone
  const auto f = PiecewiseTransform::Create(s, options, rng);
  // Sample a fine grid across the full domain: output must be strictly
  // increasing (global monotone, monotone pieces, monotone bridges).
  double prev = f.Apply(s.MinValue());
  for (double x = s.MinValue() + 0.25; x <= s.MaxValue(); x += 0.25) {
    const double y = f.Apply(x);
    EXPECT_GE(y, prev) << "x=" << x;
    prev = y;
  }
}

TEST(PiecewiseTest, InverseThresholdInsideMonotonePiece) {
  Rng rng(13);
  const auto s = MixedSummary(30);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kNone;
  options.family.forced_shape = FamilyOptions::ShapeChoice::kLinear;
  options.family.anti_monotone_prob = 0.0;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  // Midpoint between the images of values 6 and 9 decodes between 6 and 9.
  const double mid = (f.Apply(6) + f.Apply(9)) / 2;
  const auto decode = f.InverseThreshold(mid);
  EXPECT_FALSE(decode.order_reversed);
  EXPECT_GT(decode.value, 6.0);
  EXPECT_LT(decode.value, 9.0);
}

TEST(PiecewiseTest, InverseThresholdInsideAntiMonotonePiece) {
  Rng rng(17);
  const auto s = MixedSummary(30);
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kNone;
  // A mixed-class single piece may only be anti-monotone when the whole
  // transform is globally anti-monotone.
  options.global_anti_monotone = true;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  const double mid = (f.Apply(6) + f.Apply(9)) / 2;
  const auto decode = f.InverseThreshold(mid);
  EXPECT_TRUE(decode.order_reversed);
  EXPECT_GT(decode.value, 6.0);
  EXPECT_LT(decode.value, 9.0);
}

TEST(PiecewiseTest, InverseThresholdInGapSeparatesPieces) {
  Rng rng(19);
  const auto s = PaperExampleSummary();
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseMaxMP;
  options.min_breakpoints = 0;
  options.min_mono_width = 1;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  // Boundary between piece 0 (values 1,2,15) and piece 1 (27,28): the
  // threshold midway between the largest image of one and the smallest of
  // the other must decode strictly between 15 and 27 without reversal.
  const double hi0 = f.piece(0).out_hi;
  const double lo1 = f.piece(1).out_lo;
  const double mid = (hi0 + lo1) / 2;
  const auto decode = f.InverseThreshold(mid);
  EXPECT_FALSE(decode.order_reversed);
  EXPECT_GT(decode.value, 15.0);
  EXPECT_LT(decode.value, 27.0);
}

TEST(PiecewiseTest, CopyIsDeep) {
  Rng rng(23);
  const auto s = PaperExampleSummary();
  const auto f = PiecewiseTransform::Create(s, PiecewiseOptions{}, rng);
  const PiecewiseTransform copy = f;  // NOLINT: exercise copy
  for (AttrValue v : s.values()) {
    EXPECT_DOUBLE_EQ(copy.Apply(v), f.Apply(v));
  }
  EXPECT_EQ(copy.NumPieces(), f.NumPieces());
}

TEST(PiecewiseTest, DescribeListsPieces) {
  Rng rng(29);
  const auto s = PaperExampleSummary();
  PiecewiseOptions options;
  options.policy = BreakpointPolicy::kChooseMaxMP;
  options.min_breakpoints = 0;
  options.min_mono_width = 1;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  const std::string d = f.Describe();
  EXPECT_NE(d.find("4 pieces"), std::string::npos);
  EXPECT_NE(d.find("piece 0"), std::string::npos);
}

TEST(PiecewiseTest, SingleDistinctValueDomain) {
  std::vector<ValueLabel> tuples = {{7, 0}, {7, 1}};
  const auto s = AttributeSummary::FromTuples(std::move(tuples), 2);
  Rng rng(31);
  const auto f = PiecewiseTransform::Create(s, PiecewiseOptions{}, rng);
  EXPECT_NEAR(f.Inverse(f.Apply(7)), 7.0, 1e-9);
}

TEST(PiecewiseTest, ManyPiecesOnLargeAttribute) {
  Rng rng(37);
  const Dataset data = GenerateCovtypeLike(SmallCovtypeSpec(3000), rng);
  const auto s = AttributeSummary::FromDataset(data, 0);
  PiecewiseOptions options;
  options.min_breakpoints = 20;
  const auto f = PiecewiseTransform::Create(s, options, rng);
  EXPECT_GE(f.NumPieces(), 21u);
  EXPECT_TRUE(f.SatisfiesGlobalInvariant(s));
}

TEST(PiecewiseTest, BreakpointPolicyNames) {
  EXPECT_EQ(ToString(BreakpointPolicy::kNone), "none");
  EXPECT_EQ(ToString(BreakpointPolicy::kChooseBP), "ChooseBP");
  EXPECT_EQ(ToString(BreakpointPolicy::kChooseMaxMP), "ChooseMaxMP");
}

}  // namespace
}  // namespace popp
