// The data-custodian scenario from the paper's introduction: a medical
// research group holds patient data under consent and wants to outsource
// decision-tree mining without trusting the provider.
//
// This example walks the full production workflow:
//   1. load / generate the study data,
//   2. run the pre-release risk report (Section 5.4's "recipe"),
//   3. release D', have the provider mine T',
//   4. decode T' and verify no outcome change,
//   5. evaluate the decoded model.
//
// Build & run:  ./build/examples/example_custodian_workflow

#include <cstdio>

#include "core/custodian.h"
#include "core/report.h"
#include "data/summary.h"
#include "synth/covtype_like.h"
#include "tree/compare.h"

namespace {

// A small biomarker-study-like dataset: numeric measurements, a binary
// outcome, structure typical of clinical variables (dense ranges, some
// perfectly predictive bands).
popp::Dataset MakeStudyData() {
  popp::CovtypeLikeSpec spec;
  spec.num_rows = 6000;
  spec.attributes = {
      {"age", 18, 73, 70, 2, 0.20},
      {"systolic_bp", 90, 121, 118, 3, 0.30},
      {"cholesterol", 120, 241, 200, 5, 0.35},
      {"biomarker_a", 0, 1200, 420, 12, 0.50},
      {"biomarker_b", 0, 800, 300, 8, 0.40},
  };
  spec.class_weights = {0.7, 0.3};
  spec.class_names = {"responder", "non_responder"};
  popp::Rng rng(99);
  return popp::GenerateCovtypeLike(spec, rng);
}

}  // namespace

int main() {
  using namespace popp;

  Dataset study = MakeStudyData();
  std::printf("study data: %zu patients, %zu attributes, %zu classes\n\n",
              study.NumRows(), study.NumAttributes(), study.NumClasses());

  CustodianOptions options;
  options.seed = 7;
  options.transform.policy = BreakpointPolicy::kChooseMaxMP;
  options.transform.min_breakpoints = 20;
  options.tree.min_leaf_size = 5;  // a pruned, presentable tree
  options.tree.max_depth = 8;
  Custodian custodian(std::move(study), options);

  // --- step 2: is this data safe to release? -------------------------
  ReportOptions report_options;
  report_options.num_trials = 31;
  const auto report = BuildRiskReport(custodian, report_options);
  std::printf("%s\n", RenderRiskReport(report).c_str());

  // --- steps 3-4: release, mine, decode, verify ----------------------
  const Dataset released = custodian.Release();
  std::printf("released %zu rows; sample encoded row 0:", released.NumRows());
  for (size_t a = 0; a < released.NumAttributes(); ++a) {
    std::printf(" %.1f", released.Value(0, a));
  }
  std::printf("   (original:");
  for (size_t a = 0; a < custodian.original().NumAttributes(); ++a) {
    std::printf(" %.0f", custodian.original().Value(0, a));
  }
  std::printf(")\n\n");

  const DecisionTree mined = custodian.MineReleased();
  const DecisionTree decoded = custodian.Decode(mined);

  std::string detail;
  const bool ok = custodian.VerifyNoOutcomeChange(&detail);
  std::printf("no-outcome-change verified: %s%s\n\n", ok ? "YES" : "NO — ",
              detail.c_str());

  // --- step 5: use the decoded model ---------------------------------
  std::printf("decoded model: %zu leaves, depth %zu, training accuracy "
              "%.1f%%\n",
              decoded.NumLeaves(), decoded.Depth(),
              100.0 * decoded.Accuracy(custodian.original()));
  std::printf("\ndecoded tree (top levels):\n%s",
              decoded.ToText(custodian.original().schema())
                  .substr(0, 1200)
                  .c_str());
  return ok ? 0 : 1;
}
