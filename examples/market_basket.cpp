// The three pillars for association-rule mining: a retailer outsources
// basket analysis without revealing what its customers actually buy.
// Item relabeling plays the role the piecewise transform plays for
// decision trees — the rules come back exact, and encoded.
//
// Build & run:  ./build/examples/example_market_basket

#include <cstdio>

#include "arm/apriori.h"
#include "arm/mask.h"
#include "arm/relabel.h"
#include "util/rng.h"

int main() {
  using namespace popp;

  // The retailer's baskets, with a few real purchase patterns inside.
  Rng rng(404);
  const TransactionDb baskets = GenerateBaskets(DefaultBasketSpec(3000), rng);
  AprioriOptions mining;
  mining.min_support = 0.08;
  mining.min_confidence = 0.6;
  mining.max_itemset_size = 4;

  std::printf("catalog: %zu items, %zu baskets\n\n", baskets.num_items(),
              baskets.NumTransactions());

  // --- custodian model: relabel, outsource, decode --------------------
  const ItemRelabeling key = ItemRelabeling::Sample(baskets.num_items(), rng);
  const TransactionDb released = key.EncodeDb(baskets);

  auto encoded_rules = MineRules(released, mining);  // the provider's view
  std::printf("provider mines %zu rules from the relabeled baskets, e.g.\n",
              encoded_rules.size());
  for (size_t i = 0; i < std::min<size_t>(3, encoded_rules.size()); ++i) {
    std::printf("  (encoded) %s\n", RuleToString(encoded_rules[i]).c_str());
  }

  std::printf("\nthe retailer decodes them with its key:\n");
  for (size_t i = 0; i < std::min<size_t>(3, encoded_rules.size()); ++i) {
    std::printf("  (decoded) %s\n",
                RuleToString(key.DecodeRule(encoded_rules[i])).c_str());
  }

  // Verify against mining the original directly.
  const auto direct = MineRules(baskets, mining);
  size_t matches = 0;
  for (const auto& rule : encoded_rules) {
    const AssociationRule decoded = key.DecodeRule(rule);
    for (const auto& ref : direct) {
      if (decoded == ref) {
        ++matches;
        break;
      }
    }
  }
  std::printf("\nexact recovery: %zu / %zu rules identical to mining the "
              "original\n\n",
              matches, direct.size());

  // --- the MASK alternative: estimates, not the truth -----------------
  MaskOptions mask;
  mask.keep_prob = 0.8;
  const TransactionDb distorted = MaskDistort(baskets, mask, rng);
  const auto recovered = MineRulesFromMasked(distorted, mining,
                                             mask.keep_prob);
  const RuleRecovery recovery = CompareRuleSets(direct, recovered);
  std::printf("MASK at p=0.8 for comparison: precision %.0f%%, recall "
              "%.0f%% (%zu rules)\n",
              100 * recovery.precision, 100 * recovery.recall,
              recovery.recovered_rules);
  return matches == direct.size() ? 0 : 1;
}
