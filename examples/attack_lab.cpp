// The hacker's view: given a released dataset D', mount every attack the
// paper analyzes — curve fitting (regression / polyline / spline) with
// varying prior knowledge, the worst-case sorting attack, and the
// combination attack — and report what actually cracks.
//
// Build & run:  ./build/examples/example_attack_lab

#include <cstdio>

#include "attack/combination.h"
#include "attack/curve_fit.h"
#include "attack/knowledge.h"
#include "attack/sorting_attack.h"
#include "data/summary.h"
#include "risk/domain_risk.h"
#include "synth/covtype_like.h"
#include "transform/plan.h"
#include "util/table.h"

int main() {
  using namespace popp;

  // The custodian's side (hidden from the hacker): data + secret plan.
  Rng rng(2718);
  const Dataset data =
      GenerateCovtypeLike(DefaultCovtypeSpec(12000), rng);
  PiecewiseOptions transform_options;
  transform_options.policy = BreakpointPolicy::kChooseMaxMP;
  transform_options.min_breakpoints = 20;
  const TransformPlan plan =
      TransformPlan::Create(data, transform_options, rng);

  std::printf("The hacker sees D' (%zu rows, %zu attributes) and knows the "
              "schema,\nbut not the transformation plan.\n\n",
              data.NumRows(), data.NumAttributes());

  // --- curve fitting with increasing prior knowledge -----------------
  TablePrinter table({"attribute", "hacker", "regression", "polyline",
                      "spline"});
  for (size_t attr : {0u, 1u, 9u}) {
    const AttributeSummary s = AttributeSummary::FromDataset(data, attr);
    for (auto profile : {HackerProfile::kIgnorant,
                         HackerProfile::kKnowledgeable,
                         HackerProfile::kExpert, HackerProfile::kInsider}) {
      KnowledgeOptions ko;
      ko.num_good = GoodKpCount(profile);
      ko.radius_fraction = 0.02;
      std::vector<std::string> row{data.schema().AttributeName(attr),
                                   ToString(profile)};
      for (auto method : {FitMethod::kLinearRegression, FitMethod::kPolyline,
                          FitMethod::kSpline}) {
        Rng attack_rng(1000 + attr * 10 +
                       static_cast<uint64_t>(profile));
        const auto result = CurveFitDomainRisk(s, plan.transform(attr),
                                               method, ko, attack_rng);
        row.push_back(TablePrinter::Pct(result.risk));
      }
      table.AddRow(row);
    }
  }
  table.Print("Curve-fitting attacks (domain disclosure, rho = 2%)");

  // --- the combination attack ----------------------------------------
  {
    const AttributeSummary s = AttributeSummary::FromDataset(data, 9);
    const double rho = CrackRadius(s, 0.02);
    Rng attack_rng(555);
    KnowledgeOptions ko;
    ko.num_good = 4;
    const auto points =
        SampleKnowledgePoints(s, plan.transform(9), ko, attack_rng);
    const auto venn = CombineCrackSets(
        DomainCrackVector(s, plan.transform(9),
                          *FitCurve(FitMethod::kLinearRegression, points),
                          rho),
        DomainCrackVector(s, plan.transform(9),
                          *FitCurve(FitMethod::kSpline, points), rho),
        DomainCrackVector(s, plan.transform(9),
                          *FitCurve(FitMethod::kPolyline, points), rho));
    std::printf("\nCombination attack on %s:\n%s",
                data.schema().AttributeName(9).c_str(),
                venn.ToString("regression", "spline", "polyline").c_str());
    std::printf("union %.1f%% | expected %.1f%% | majority %.1f%%\n",
                100 * venn.UnionRisk(), 100 * venn.ExpectedRisk(),
                100 * venn.MajorityRisk());
  }

  // --- worst-case sorting attack --------------------------------------
  std::printf("\nWorst-case sorting attack (hacker knows true min/max):\n");
  for (size_t attr = 0; attr < data.NumAttributes(); ++attr) {
    const AttributeSummary s = AttributeSummary::FromDataset(data, attr);
    const auto result =
        SortingAttackRisk(s, plan.transform(attr), /*rho=*/0.5);
    std::printf("  %-18s %5.1f%% cracked (%zu discontinuities)\n",
                data.schema().AttributeName(attr).c_str(),
                100.0 * result.risk, s.NumDiscontinuities());
  }
  std::printf(
      "\nTakeaway: without good knowledge points the hacker recovers almost "
      "nothing;\neven an insider cracks only a minority of values, and "
      "attributes with\ndiscontinuities or monochromatic structure resist "
      "the sorting attack.\n");
  return 0;
}
