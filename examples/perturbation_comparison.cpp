// Side-by-side: the data-collector baseline (random perturbation, AS00)
// vs the data-custodian model (piecewise monotone transformations) on the
// same data — the paper's three pillars made concrete:
//   pillar 1: no outcome change,
//   pillar 2: input privacy,
//   pillar 3: output privacy.
//
// Build & run:  ./build/examples/example_perturbation_comparison

#include <cstdio>

#include "core/custodian.h"
#include "data/summary.h"
#include "perturb/comparison.h"
#include "synth/covtype_like.h"
#include "tree/compare.h"
#include "util/table.h"

int main() {
  using namespace popp;

  Rng rng(31415);
  Dataset data = GenerateCovtypeLike(DefaultCovtypeSpec(12000), rng);
  const Dataset original = data;  // keep a copy for the baseline

  // --- custodian model -------------------------------------------------
  CustodianOptions options;
  options.seed = 11;
  Custodian custodian(std::move(data), options);
  const bool no_change = custodian.VerifyNoOutcomeChange();
  const Dataset released = custodian.Release();
  size_t unchanged = 0;
  for (size_t r = 0; r < original.NumRows(); ++r) {
    if (released.Value(r, 0) == original.Value(r, 0)) ++unchanged;
  }

  // --- perturbation baseline -------------------------------------------
  Rng perturb_rng(17);
  PerturbOptions perturb;
  perturb.scale_fraction = 0.25;
  const PerturbationImpact impact = MeasurePerturbationImpact(
      original, perturb, BuildOptions{}, 0.02, perturb_rng);

  // --- the scoreboard ----------------------------------------------------
  TablePrinter table({"criterion", "piecewise transform (custodian)",
                      "random perturbation (collector)"});
  table.AddRow({"outcome preserved (pillar 1)", no_change ? "YES — exact" : "NO",
                impact.same_tree ? "yes" : "NO — tree changed"});
  table.AddRow({"model accuracy on true data",
                TablePrinter::Pct(custodian.MineDirectly().Accuracy(original)),
                TablePrinter::Pct(impact.perturbed_tree_accuracy)});
  table.AddRow({"values released unchanged (attr 1)",
                TablePrinter::Pct(static_cast<double>(unchanged) /
                                  static_cast<double>(original.NumRows())),
                TablePrinter::Pct(impact.unchanged_fraction[0])});
  table.AddRow({"zero-effort cracks within rho (attr 1)", "0.0%",
                TablePrinter::Pct(impact.within_rho_fraction[0])});
  table.AddRow({"mining outcome encoded (pillar 3)",
                "yes — thresholds transformed", "no — tree is in the clear"});
  table.AddRow({"custodian recovers exact model", "yes — decode with key",
                "no — model is permanently distorted"});
  table.Print("Custodian model vs perturbation baseline");

  std::printf(
      "\nThe collector model trades model quality for privacy and still "
      "leaks\nunchanged discrete values; the custodian model keeps the model "
      "exact and\nencodes both the data and the mining outcome.\n");
  return no_change ? 0 : 1;
}
