// Quickstart: the paper's Figure 1 in ~60 lines of popp API.
//
// A custodian owns a tiny training set over (age, salary). She encodes it
// with a piecewise transformation, hands the release to an (untrusted)
// mining service, receives the encoded decision tree back, decodes it —
// and gets exactly the tree she would have mined herself.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "core/custodian.h"
#include "data/csv.h"
#include "synth/presets.h"
#include "tree/compare.h"

int main() {
  using namespace popp;

  // --- the custodian's data (Figure 1a) -----------------------------
  Dataset d = MakeFigure1Dataset();
  std::printf("Original data D:\n%s\n", ToCsvString(d).c_str());

  // --- configure and create the custodian ---------------------------
  CustodianOptions options;
  options.seed = 2026;
  options.transform.policy = BreakpointPolicy::kChooseMaxMP;
  options.transform.min_breakpoints = 2;  // tiny data, few pieces
  Custodian custodian(std::move(d), options);

  // --- what the service provider receives and computes --------------
  const Dataset released = custodian.Release();
  std::printf("Released data D' (every value transformed):\n%s\n",
              ToCsvString(released).c_str());

  const DecisionTree mined = custodian.MineReleased();
  std::printf("Tree T' the provider mines from D' (encoded thresholds):\n%s\n",
              mined.ToText(released.schema()).c_str());

  // --- back at the custodian: decode and verify ---------------------
  const DecisionTree decoded = custodian.Decode(mined);
  std::printf("Decoded tree:\n%s\n",
              decoded.ToText(custodian.original().schema()).c_str());

  const DecisionTree direct = custodian.MineDirectly();
  std::printf("Tree from mining D directly:\n%s\n",
              direct.ToText(custodian.original().schema()).c_str());

  std::printf("no-outcome-change guarantee holds: %s\n",
              ExactlyEqual(direct, decoded) ? "YES" : "NO");

  // The custodian's secret key (breakpoints + functions per attribute):
  std::printf("\nThe custodian keeps only this key:\n%s",
              custodian.plan().Describe(custodian.original().schema()).c_str());
  return ExactlyEqual(direct, decoded) ? 0 : 1;
}
