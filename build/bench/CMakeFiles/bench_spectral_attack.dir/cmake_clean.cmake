file(REMOVE_RECURSE
  "CMakeFiles/bench_spectral_attack.dir/bench_spectral_attack.cc.o"
  "CMakeFiles/bench_spectral_attack.dir/bench_spectral_attack.cc.o.d"
  "CMakeFiles/bench_spectral_attack.dir/experiment_common.cc.o"
  "CMakeFiles/bench_spectral_attack.dir/experiment_common.cc.o.d"
  "bench_spectral_attack"
  "bench_spectral_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spectral_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
