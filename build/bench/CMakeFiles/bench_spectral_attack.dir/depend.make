# Empty dependencies file for bench_spectral_attack.
# This may be replaced when dependencies are built.
