file(REMOVE_RECURSE
  "CMakeFiles/bench_no_outcome_change.dir/bench_no_outcome_change.cc.o"
  "CMakeFiles/bench_no_outcome_change.dir/bench_no_outcome_change.cc.o.d"
  "CMakeFiles/bench_no_outcome_change.dir/experiment_common.cc.o"
  "CMakeFiles/bench_no_outcome_change.dir/experiment_common.cc.o.d"
  "bench_no_outcome_change"
  "bench_no_outcome_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_no_outcome_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
