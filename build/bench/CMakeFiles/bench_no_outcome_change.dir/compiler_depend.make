# Empty compiler generated dependencies file for bench_no_outcome_change.
# This may be replaced when dependencies are built.
