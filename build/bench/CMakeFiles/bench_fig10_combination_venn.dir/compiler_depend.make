# Empty compiler generated dependencies file for bench_fig10_combination_venn.
# This may be replaced when dependencies are built.
