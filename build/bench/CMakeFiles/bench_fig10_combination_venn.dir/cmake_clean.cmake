file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_combination_venn.dir/bench_fig10_combination_venn.cc.o"
  "CMakeFiles/bench_fig10_combination_venn.dir/bench_fig10_combination_venn.cc.o.d"
  "CMakeFiles/bench_fig10_combination_venn.dir/experiment_common.cc.o"
  "CMakeFiles/bench_fig10_combination_venn.dir/experiment_common.cc.o.d"
  "bench_fig10_combination_venn"
  "bench_fig10_combination_venn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_combination_venn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
