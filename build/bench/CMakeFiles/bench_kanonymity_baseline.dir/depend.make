# Empty dependencies file for bench_kanonymity_baseline.
# This may be replaced when dependencies are built.
