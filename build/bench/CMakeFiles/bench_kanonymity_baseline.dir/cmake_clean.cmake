file(REMOVE_RECURSE
  "CMakeFiles/bench_kanonymity_baseline.dir/bench_kanonymity_baseline.cc.o"
  "CMakeFiles/bench_kanonymity_baseline.dir/bench_kanonymity_baseline.cc.o.d"
  "CMakeFiles/bench_kanonymity_baseline.dir/experiment_common.cc.o"
  "CMakeFiles/bench_kanonymity_baseline.dir/experiment_common.cc.o.d"
  "bench_kanonymity_baseline"
  "bench_kanonymity_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kanonymity_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
