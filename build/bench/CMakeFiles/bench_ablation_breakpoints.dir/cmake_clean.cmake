file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_breakpoints.dir/bench_ablation_breakpoints.cc.o"
  "CMakeFiles/bench_ablation_breakpoints.dir/bench_ablation_breakpoints.cc.o.d"
  "CMakeFiles/bench_ablation_breakpoints.dir/experiment_common.cc.o"
  "CMakeFiles/bench_ablation_breakpoints.dir/experiment_common.cc.o.d"
  "bench_ablation_breakpoints"
  "bench_ablation_breakpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_breakpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
