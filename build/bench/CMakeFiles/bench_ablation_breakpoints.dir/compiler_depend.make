# Empty compiler generated dependencies file for bench_ablation_breakpoints.
# This may be replaced when dependencies are built.
