file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_attribute_stats.dir/bench_fig8_attribute_stats.cc.o"
  "CMakeFiles/bench_fig8_attribute_stats.dir/bench_fig8_attribute_stats.cc.o.d"
  "CMakeFiles/bench_fig8_attribute_stats.dir/experiment_common.cc.o"
  "CMakeFiles/bench_fig8_attribute_stats.dir/experiment_common.cc.o.d"
  "bench_fig8_attribute_stats"
  "bench_fig8_attribute_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_attribute_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
