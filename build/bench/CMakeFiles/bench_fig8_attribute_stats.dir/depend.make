# Empty dependencies file for bench_fig8_attribute_stats.
# This may be replaced when dependencies are built.
