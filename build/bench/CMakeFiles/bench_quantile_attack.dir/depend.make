# Empty dependencies file for bench_quantile_attack.
# This may be replaced when dependencies are built.
