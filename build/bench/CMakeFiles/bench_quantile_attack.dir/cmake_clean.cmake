file(REMOVE_RECURSE
  "CMakeFiles/bench_quantile_attack.dir/bench_quantile_attack.cc.o"
  "CMakeFiles/bench_quantile_attack.dir/bench_quantile_attack.cc.o.d"
  "CMakeFiles/bench_quantile_attack.dir/experiment_common.cc.o"
  "CMakeFiles/bench_quantile_attack.dir/experiment_common.cc.o.d"
  "bench_quantile_attack"
  "bench_quantile_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantile_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
