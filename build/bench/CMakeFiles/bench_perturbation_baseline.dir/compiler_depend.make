# Empty compiler generated dependencies file for bench_perturbation_baseline.
# This may be replaced when dependencies are built.
