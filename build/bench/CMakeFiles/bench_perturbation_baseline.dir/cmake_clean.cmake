file(REMOVE_RECURSE
  "CMakeFiles/bench_perturbation_baseline.dir/bench_perturbation_baseline.cc.o"
  "CMakeFiles/bench_perturbation_baseline.dir/bench_perturbation_baseline.cc.o.d"
  "CMakeFiles/bench_perturbation_baseline.dir/experiment_common.cc.o"
  "CMakeFiles/bench_perturbation_baseline.dir/experiment_common.cc.o.d"
  "bench_perturbation_baseline"
  "bench_perturbation_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perturbation_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
