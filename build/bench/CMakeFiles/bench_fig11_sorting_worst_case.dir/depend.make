# Empty dependencies file for bench_fig11_sorting_worst_case.
# This may be replaced when dependencies are built.
