file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sorting_worst_case.dir/bench_fig11_sorting_worst_case.cc.o"
  "CMakeFiles/bench_fig11_sorting_worst_case.dir/bench_fig11_sorting_worst_case.cc.o.d"
  "CMakeFiles/bench_fig11_sorting_worst_case.dir/experiment_common.cc.o"
  "CMakeFiles/bench_fig11_sorting_worst_case.dir/experiment_common.cc.o.d"
  "bench_fig11_sorting_worst_case"
  "bench_fig11_sorting_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sorting_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
