# Empty compiler generated dependencies file for bench_tab622_attack_vs_transform.
# This may be replaced when dependencies are built.
