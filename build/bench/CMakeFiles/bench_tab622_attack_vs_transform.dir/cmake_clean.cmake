file(REMOVE_RECURSE
  "CMakeFiles/bench_tab622_attack_vs_transform.dir/bench_tab622_attack_vs_transform.cc.o"
  "CMakeFiles/bench_tab622_attack_vs_transform.dir/bench_tab622_attack_vs_transform.cc.o.d"
  "CMakeFiles/bench_tab622_attack_vs_transform.dir/experiment_common.cc.o"
  "CMakeFiles/bench_tab622_attack_vs_transform.dir/experiment_common.cc.o.d"
  "bench_tab622_attack_vs_transform"
  "bench_tab622_attack_vs_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab622_attack_vs_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
