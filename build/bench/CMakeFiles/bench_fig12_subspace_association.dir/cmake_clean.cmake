file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_subspace_association.dir/bench_fig12_subspace_association.cc.o"
  "CMakeFiles/bench_fig12_subspace_association.dir/bench_fig12_subspace_association.cc.o.d"
  "CMakeFiles/bench_fig12_subspace_association.dir/experiment_common.cc.o"
  "CMakeFiles/bench_fig12_subspace_association.dir/experiment_common.cc.o.d"
  "bench_fig12_subspace_association"
  "bench_fig12_subspace_association.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_subspace_association.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
