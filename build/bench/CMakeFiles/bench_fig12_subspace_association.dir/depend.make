# Empty dependencies file for bench_fig12_subspace_association.
# This may be replaced when dependencies are built.
