file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_domain_disclosure.dir/bench_fig9_domain_disclosure.cc.o"
  "CMakeFiles/bench_fig9_domain_disclosure.dir/bench_fig9_domain_disclosure.cc.o.d"
  "CMakeFiles/bench_fig9_domain_disclosure.dir/experiment_common.cc.o"
  "CMakeFiles/bench_fig9_domain_disclosure.dir/experiment_common.cc.o.d"
  "bench_fig9_domain_disclosure"
  "bench_fig9_domain_disclosure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_domain_disclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
