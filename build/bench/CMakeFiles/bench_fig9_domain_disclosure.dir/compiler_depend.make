# Empty compiler generated dependencies file for bench_fig9_domain_disclosure.
# This may be replaced when dependencies are built.
