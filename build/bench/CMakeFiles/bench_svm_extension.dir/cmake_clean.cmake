file(REMOVE_RECURSE
  "CMakeFiles/bench_svm_extension.dir/bench_svm_extension.cc.o"
  "CMakeFiles/bench_svm_extension.dir/bench_svm_extension.cc.o.d"
  "CMakeFiles/bench_svm_extension.dir/experiment_common.cc.o"
  "CMakeFiles/bench_svm_extension.dir/experiment_common.cc.o.d"
  "bench_svm_extension"
  "bench_svm_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svm_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
