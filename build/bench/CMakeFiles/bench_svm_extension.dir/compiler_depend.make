# Empty compiler generated dependencies file for bench_svm_extension.
# This may be replaced when dependencies are built.
