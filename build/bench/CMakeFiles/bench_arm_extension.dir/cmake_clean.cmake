file(REMOVE_RECURSE
  "CMakeFiles/bench_arm_extension.dir/bench_arm_extension.cc.o"
  "CMakeFiles/bench_arm_extension.dir/bench_arm_extension.cc.o.d"
  "CMakeFiles/bench_arm_extension.dir/experiment_common.cc.o"
  "CMakeFiles/bench_arm_extension.dir/experiment_common.cc.o.d"
  "bench_arm_extension"
  "bench_arm_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arm_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
