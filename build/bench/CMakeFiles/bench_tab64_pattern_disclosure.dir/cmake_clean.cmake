file(REMOVE_RECURSE
  "CMakeFiles/bench_tab64_pattern_disclosure.dir/bench_tab64_pattern_disclosure.cc.o"
  "CMakeFiles/bench_tab64_pattern_disclosure.dir/bench_tab64_pattern_disclosure.cc.o.d"
  "CMakeFiles/bench_tab64_pattern_disclosure.dir/experiment_common.cc.o"
  "CMakeFiles/bench_tab64_pattern_disclosure.dir/experiment_common.cc.o.d"
  "bench_tab64_pattern_disclosure"
  "bench_tab64_pattern_disclosure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab64_pattern_disclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
