# Empty dependencies file for bench_tab64_pattern_disclosure.
# This may be replaced when dependencies are built.
