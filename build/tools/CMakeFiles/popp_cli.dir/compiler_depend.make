# Empty compiler generated dependencies file for popp_cli.
# This may be replaced when dependencies are built.
