file(REMOVE_RECURSE
  "CMakeFiles/popp_cli.dir/popp_cli.cc.o"
  "CMakeFiles/popp_cli.dir/popp_cli.cc.o.d"
  "popp"
  "popp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
