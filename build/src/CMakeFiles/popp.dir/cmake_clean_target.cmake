file(REMOVE_RECURSE
  "libpopp.a"
)
