
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anon/mondrian.cc" "src/CMakeFiles/popp.dir/anon/mondrian.cc.o" "gcc" "src/CMakeFiles/popp.dir/anon/mondrian.cc.o.d"
  "/root/repo/src/arm/apriori.cc" "src/CMakeFiles/popp.dir/arm/apriori.cc.o" "gcc" "src/CMakeFiles/popp.dir/arm/apriori.cc.o.d"
  "/root/repo/src/arm/itemset.cc" "src/CMakeFiles/popp.dir/arm/itemset.cc.o" "gcc" "src/CMakeFiles/popp.dir/arm/itemset.cc.o.d"
  "/root/repo/src/arm/mask.cc" "src/CMakeFiles/popp.dir/arm/mask.cc.o" "gcc" "src/CMakeFiles/popp.dir/arm/mask.cc.o.d"
  "/root/repo/src/arm/relabel.cc" "src/CMakeFiles/popp.dir/arm/relabel.cc.o" "gcc" "src/CMakeFiles/popp.dir/arm/relabel.cc.o.d"
  "/root/repo/src/attack/combination.cc" "src/CMakeFiles/popp.dir/attack/combination.cc.o" "gcc" "src/CMakeFiles/popp.dir/attack/combination.cc.o.d"
  "/root/repo/src/attack/curve_fit.cc" "src/CMakeFiles/popp.dir/attack/curve_fit.cc.o" "gcc" "src/CMakeFiles/popp.dir/attack/curve_fit.cc.o.d"
  "/root/repo/src/attack/knowledge.cc" "src/CMakeFiles/popp.dir/attack/knowledge.cc.o" "gcc" "src/CMakeFiles/popp.dir/attack/knowledge.cc.o.d"
  "/root/repo/src/attack/quantile_attack.cc" "src/CMakeFiles/popp.dir/attack/quantile_attack.cc.o" "gcc" "src/CMakeFiles/popp.dir/attack/quantile_attack.cc.o.d"
  "/root/repo/src/attack/sorting_attack.cc" "src/CMakeFiles/popp.dir/attack/sorting_attack.cc.o" "gcc" "src/CMakeFiles/popp.dir/attack/sorting_attack.cc.o.d"
  "/root/repo/src/attack/spectral.cc" "src/CMakeFiles/popp.dir/attack/spectral.cc.o" "gcc" "src/CMakeFiles/popp.dir/attack/spectral.cc.o.d"
  "/root/repo/src/core/cli.cc" "src/CMakeFiles/popp.dir/core/cli.cc.o" "gcc" "src/CMakeFiles/popp.dir/core/cli.cc.o.d"
  "/root/repo/src/core/custodian.cc" "src/CMakeFiles/popp.dir/core/custodian.cc.o" "gcc" "src/CMakeFiles/popp.dir/core/custodian.cc.o.d"
  "/root/repo/src/core/recipe.cc" "src/CMakeFiles/popp.dir/core/recipe.cc.o" "gcc" "src/CMakeFiles/popp.dir/core/recipe.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/popp.dir/core/report.cc.o" "gcc" "src/CMakeFiles/popp.dir/core/report.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/popp.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/popp.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/popp.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/popp.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/popp.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/popp.dir/data/schema.cc.o.d"
  "/root/repo/src/data/summary.cc" "src/CMakeFiles/popp.dir/data/summary.cc.o" "gcc" "src/CMakeFiles/popp.dir/data/summary.cc.o.d"
  "/root/repo/src/data/value.cc" "src/CMakeFiles/popp.dir/data/value.cc.o" "gcc" "src/CMakeFiles/popp.dir/data/value.cc.o.d"
  "/root/repo/src/nb/naive_bayes.cc" "src/CMakeFiles/popp.dir/nb/naive_bayes.cc.o" "gcc" "src/CMakeFiles/popp.dir/nb/naive_bayes.cc.o.d"
  "/root/repo/src/perturb/comparison.cc" "src/CMakeFiles/popp.dir/perturb/comparison.cc.o" "gcc" "src/CMakeFiles/popp.dir/perturb/comparison.cc.o.d"
  "/root/repo/src/perturb/perturbation.cc" "src/CMakeFiles/popp.dir/perturb/perturbation.cc.o" "gcc" "src/CMakeFiles/popp.dir/perturb/perturbation.cc.o.d"
  "/root/repo/src/perturb/reconstruction.cc" "src/CMakeFiles/popp.dir/perturb/reconstruction.cc.o" "gcc" "src/CMakeFiles/popp.dir/perturb/reconstruction.cc.o.d"
  "/root/repo/src/risk/crack.cc" "src/CMakeFiles/popp.dir/risk/crack.cc.o" "gcc" "src/CMakeFiles/popp.dir/risk/crack.cc.o.d"
  "/root/repo/src/risk/domain_risk.cc" "src/CMakeFiles/popp.dir/risk/domain_risk.cc.o" "gcc" "src/CMakeFiles/popp.dir/risk/domain_risk.cc.o.d"
  "/root/repo/src/risk/pattern_risk.cc" "src/CMakeFiles/popp.dir/risk/pattern_risk.cc.o" "gcc" "src/CMakeFiles/popp.dir/risk/pattern_risk.cc.o.d"
  "/root/repo/src/risk/subspace_risk.cc" "src/CMakeFiles/popp.dir/risk/subspace_risk.cc.o" "gcc" "src/CMakeFiles/popp.dir/risk/subspace_risk.cc.o.d"
  "/root/repo/src/risk/trials.cc" "src/CMakeFiles/popp.dir/risk/trials.cc.o" "gcc" "src/CMakeFiles/popp.dir/risk/trials.cc.o.d"
  "/root/repo/src/svm/linear_svm.cc" "src/CMakeFiles/popp.dir/svm/linear_svm.cc.o" "gcc" "src/CMakeFiles/popp.dir/svm/linear_svm.cc.o.d"
  "/root/repo/src/synth/covtype_like.cc" "src/CMakeFiles/popp.dir/synth/covtype_like.cc.o" "gcc" "src/CMakeFiles/popp.dir/synth/covtype_like.cc.o.d"
  "/root/repo/src/synth/distributions.cc" "src/CMakeFiles/popp.dir/synth/distributions.cc.o" "gcc" "src/CMakeFiles/popp.dir/synth/distributions.cc.o.d"
  "/root/repo/src/synth/presets.cc" "src/CMakeFiles/popp.dir/synth/presets.cc.o" "gcc" "src/CMakeFiles/popp.dir/synth/presets.cc.o.d"
  "/root/repo/src/transform/choose_bp.cc" "src/CMakeFiles/popp.dir/transform/choose_bp.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/choose_bp.cc.o.d"
  "/root/repo/src/transform/choose_max_mp.cc" "src/CMakeFiles/popp.dir/transform/choose_max_mp.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/choose_max_mp.cc.o.d"
  "/root/repo/src/transform/families.cc" "src/CMakeFiles/popp.dir/transform/families.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/families.cc.o.d"
  "/root/repo/src/transform/function.cc" "src/CMakeFiles/popp.dir/transform/function.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/function.cc.o.d"
  "/root/repo/src/transform/pieces.cc" "src/CMakeFiles/popp.dir/transform/pieces.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/pieces.cc.o.d"
  "/root/repo/src/transform/piecewise.cc" "src/CMakeFiles/popp.dir/transform/piecewise.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/piecewise.cc.o.d"
  "/root/repo/src/transform/plan.cc" "src/CMakeFiles/popp.dir/transform/plan.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/plan.cc.o.d"
  "/root/repo/src/transform/serialize.cc" "src/CMakeFiles/popp.dir/transform/serialize.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/serialize.cc.o.d"
  "/root/repo/src/transform/tree_decode.cc" "src/CMakeFiles/popp.dir/transform/tree_decode.cc.o" "gcc" "src/CMakeFiles/popp.dir/transform/tree_decode.cc.o.d"
  "/root/repo/src/tree/builder.cc" "src/CMakeFiles/popp.dir/tree/builder.cc.o" "gcc" "src/CMakeFiles/popp.dir/tree/builder.cc.o.d"
  "/root/repo/src/tree/compare.cc" "src/CMakeFiles/popp.dir/tree/compare.cc.o" "gcc" "src/CMakeFiles/popp.dir/tree/compare.cc.o.d"
  "/root/repo/src/tree/criterion.cc" "src/CMakeFiles/popp.dir/tree/criterion.cc.o" "gcc" "src/CMakeFiles/popp.dir/tree/criterion.cc.o.d"
  "/root/repo/src/tree/decision_tree.cc" "src/CMakeFiles/popp.dir/tree/decision_tree.cc.o" "gcc" "src/CMakeFiles/popp.dir/tree/decision_tree.cc.o.d"
  "/root/repo/src/tree/evaluate.cc" "src/CMakeFiles/popp.dir/tree/evaluate.cc.o" "gcc" "src/CMakeFiles/popp.dir/tree/evaluate.cc.o.d"
  "/root/repo/src/tree/label_runs.cc" "src/CMakeFiles/popp.dir/tree/label_runs.cc.o" "gcc" "src/CMakeFiles/popp.dir/tree/label_runs.cc.o.d"
  "/root/repo/src/tree/prune.cc" "src/CMakeFiles/popp.dir/tree/prune.cc.o" "gcc" "src/CMakeFiles/popp.dir/tree/prune.cc.o.d"
  "/root/repo/src/tree/serialize.cc" "src/CMakeFiles/popp.dir/tree/serialize.cc.o" "gcc" "src/CMakeFiles/popp.dir/tree/serialize.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/popp.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/popp.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/popp.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/popp.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/popp.dir/util/status.cc.o" "gcc" "src/CMakeFiles/popp.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/popp.dir/util/table.cc.o" "gcc" "src/CMakeFiles/popp.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
