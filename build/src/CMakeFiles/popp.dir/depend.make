# Empty dependencies file for popp.
# This may be replaced when dependencies are built.
