# Empty dependencies file for example_custodian_workflow.
# This may be replaced when dependencies are built.
