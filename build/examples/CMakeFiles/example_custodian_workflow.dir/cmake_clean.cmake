file(REMOVE_RECURSE
  "CMakeFiles/example_custodian_workflow.dir/custodian_workflow.cpp.o"
  "CMakeFiles/example_custodian_workflow.dir/custodian_workflow.cpp.o.d"
  "example_custodian_workflow"
  "example_custodian_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custodian_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
