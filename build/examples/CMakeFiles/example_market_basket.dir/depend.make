# Empty dependencies file for example_market_basket.
# This may be replaced when dependencies are built.
