file(REMOVE_RECURSE
  "CMakeFiles/example_market_basket.dir/market_basket.cpp.o"
  "CMakeFiles/example_market_basket.dir/market_basket.cpp.o.d"
  "example_market_basket"
  "example_market_basket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_market_basket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
