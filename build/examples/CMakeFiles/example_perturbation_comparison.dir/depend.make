# Empty dependencies file for example_perturbation_comparison.
# This may be replaced when dependencies are built.
