file(REMOVE_RECURSE
  "CMakeFiles/example_perturbation_comparison.dir/perturbation_comparison.cpp.o"
  "CMakeFiles/example_perturbation_comparison.dir/perturbation_comparison.cpp.o.d"
  "example_perturbation_comparison"
  "example_perturbation_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_perturbation_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
