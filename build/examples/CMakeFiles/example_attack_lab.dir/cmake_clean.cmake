file(REMOVE_RECURSE
  "CMakeFiles/example_attack_lab.dir/attack_lab.cpp.o"
  "CMakeFiles/example_attack_lab.dir/attack_lab.cpp.o.d"
  "example_attack_lab"
  "example_attack_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attack_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
