# Empty compiler generated dependencies file for popp_tests.
# This may be replaced when dependencies are built.
