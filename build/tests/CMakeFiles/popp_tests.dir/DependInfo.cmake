
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/anon_test.cc" "tests/CMakeFiles/popp_tests.dir/anon_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/anon_test.cc.o.d"
  "/root/repo/tests/arm_test.cc" "tests/CMakeFiles/popp_tests.dir/arm_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/arm_test.cc.o.d"
  "/root/repo/tests/attack_test.cc" "tests/CMakeFiles/popp_tests.dir/attack_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/attack_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/popp_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/custodian_test.cc" "tests/CMakeFiles/popp_tests.dir/custodian_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/custodian_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/popp_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/evaluate_test.cc" "tests/CMakeFiles/popp_tests.dir/evaluate_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/evaluate_test.cc.o.d"
  "/root/repo/tests/function_test.cc" "tests/CMakeFiles/popp_tests.dir/function_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/function_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/popp_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/label_runs_test.cc" "tests/CMakeFiles/popp_tests.dir/label_runs_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/label_runs_test.cc.o.d"
  "/root/repo/tests/nb_test.cc" "tests/CMakeFiles/popp_tests.dir/nb_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/nb_test.cc.o.d"
  "/root/repo/tests/no_outcome_change_test.cc" "tests/CMakeFiles/popp_tests.dir/no_outcome_change_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/no_outcome_change_test.cc.o.d"
  "/root/repo/tests/perturb_test.cc" "tests/CMakeFiles/popp_tests.dir/perturb_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/perturb_test.cc.o.d"
  "/root/repo/tests/pieces_test.cc" "tests/CMakeFiles/popp_tests.dir/pieces_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/pieces_test.cc.o.d"
  "/root/repo/tests/piecewise_test.cc" "tests/CMakeFiles/popp_tests.dir/piecewise_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/piecewise_test.cc.o.d"
  "/root/repo/tests/plan_test.cc" "tests/CMakeFiles/popp_tests.dir/plan_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/plan_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/popp_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/prune_test.cc" "tests/CMakeFiles/popp_tests.dir/prune_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/prune_test.cc.o.d"
  "/root/repo/tests/recipe_test.cc" "tests/CMakeFiles/popp_tests.dir/recipe_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/recipe_test.cc.o.d"
  "/root/repo/tests/risk_test.cc" "tests/CMakeFiles/popp_tests.dir/risk_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/risk_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/popp_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/sorting_attack_test.cc" "tests/CMakeFiles/popp_tests.dir/sorting_attack_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/sorting_attack_test.cc.o.d"
  "/root/repo/tests/spectral_test.cc" "tests/CMakeFiles/popp_tests.dir/spectral_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/spectral_test.cc.o.d"
  "/root/repo/tests/svm_test.cc" "tests/CMakeFiles/popp_tests.dir/svm_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/svm_test.cc.o.d"
  "/root/repo/tests/synth_test.cc" "tests/CMakeFiles/popp_tests.dir/synth_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/synth_test.cc.o.d"
  "/root/repo/tests/tree_decode_test.cc" "tests/CMakeFiles/popp_tests.dir/tree_decode_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/tree_decode_test.cc.o.d"
  "/root/repo/tests/tree_test.cc" "tests/CMakeFiles/popp_tests.dir/tree_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/tree_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/popp_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/popp_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/popp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
