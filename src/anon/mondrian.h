#ifndef POPP_ANON_MONDRIAN_H_
#define POPP_ANON_MONDRIAN_H_

#include <cstddef>

#include "data/dataset.h"

/// \file
/// Mondrian multidimensional k-anonymity (LeFevre et al.) over numeric
/// quasi-identifiers — the data-exchange defense of the paper's related
/// work ([9] Sweeney): "the notion of k-anonymity is designed for input
/// privacy. If the transformed data were mined directly, the mining
/// outcome could be significantly affected." This module makes that
/// claim measurable: it generalizes the data so every quasi-identifier
/// combination appears at least k times, and the benches quantify how
/// much the mined tree degrades as k grows — in contrast to the
/// piecewise framework's exact outcome preservation.

namespace popp {

/// Anonymization parameters.
struct MondrianOptions {
  /// Minimum equivalence-class size (k-anonymity's k). k = 1 leaves the
  /// data unchanged up to per-singleton generalization.
  size_t k = 10;
};

/// Result of anonymizing a dataset.
struct AnonymizationResult {
  /// Every attribute value replaced by its equivalence class's mean;
  /// labels unchanged.
  Dataset data;
  size_t num_groups = 0;
  size_t min_group = 0;
  size_t max_group = 0;
};

/// Runs strict-Mondrian: recursively split on the attribute with the
/// widest normalized range at the median, as long as both sides keep at
/// least k rows. Deterministic.
AnonymizationResult MondrianAnonymize(const Dataset& data,
                                      const MondrianOptions& options);

/// True iff every distinct quasi-identifier combination (all attributes)
/// occurs at least k times in `data` — the k-anonymity property.
bool IsKAnonymous(const Dataset& data, size_t k);

}  // namespace popp

#endif  // POPP_ANON_MONDRIAN_H_
