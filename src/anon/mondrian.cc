#include "anon/mondrian.h"

#include <algorithm>
#include <functional>
#include <map>

#include "data/summary.h"
#include "util/status.h"

namespace popp {

AnonymizationResult MondrianAnonymize(const Dataset& data,
                                      const MondrianOptions& options) {
  POPP_CHECK_MSG(options.k >= 1, "k must be >= 1");
  POPP_CHECK_MSG(data.NumRows() >= options.k,
                 "fewer rows than k — nothing can be released");

  AnonymizationResult result;
  result.data = data;
  result.min_group = data.NumRows();
  result.max_group = 0;

  // Global attribute ranges for split-attribute normalization.
  std::vector<double> global_width(data.NumAttributes(), 1.0);
  for (size_t a = 0; a < data.NumAttributes(); ++a) {
    const AttributeSummary s = AttributeSummary::FromDataset(data, a);
    global_width[a] =
        std::max(1e-12, double{s.MaxValue()} - double{s.MinValue()});
  }

  std::function<void(std::vector<size_t>&)> partition =
      [&](std::vector<size_t>& rows) {
        // Pick the attribute with the widest normalized range that allows
        // an (>= k | >= k) median cut.
        size_t best_attr = data.NumAttributes();
        double best_width = -1.0;
        size_t best_cut = 0;
        std::vector<std::pair<AttrValue, size_t>> best_order;

        std::vector<std::pair<AttrValue, size_t>> order;
        for (size_t a = 0; a < data.NumAttributes(); ++a) {
          order.clear();
          order.reserve(rows.size());
          for (size_t r : rows) order.emplace_back(data.Value(r, a), r);
          std::sort(order.begin(), order.end());
          const double width =
              (order.back().first - order.front().first) / global_width[a];
          if (width <= best_width || width <= 0.0) continue;
          // Median cut position: the strict-Mondrian "allowable cut" must
          // put whole value-groups on each side, each side >= k.
          const size_t mid = rows.size() / 2;
          // Move the cut to a value boundary at or after the median...
          size_t cut = mid;
          while (cut < order.size() &&
                 order[cut].first == order[cut - 1].first) {
            ++cut;
          }
          // ...or before it if the right side starved.
          if (order.size() - cut < options.k) {
            cut = mid;
            while (cut > 0 && order[cut].first == order[cut - 1].first) {
              --cut;
            }
          }
          if (cut < options.k || order.size() - cut < options.k) continue;
          best_attr = a;
          best_width = width;
          best_cut = cut;
          best_order = order;
        }

        if (best_attr == data.NumAttributes()) {
          // No allowable cut: this is an equivalence class. Generalize
          // every attribute to the class mean.
          result.num_groups++;
          result.min_group = std::min(result.min_group, rows.size());
          result.max_group = std::max(result.max_group, rows.size());
          for (size_t a = 0; a < data.NumAttributes(); ++a) {
            double mean = 0.0;
            for (size_t r : rows) mean += data.Value(r, a);
            mean /= static_cast<double>(rows.size());
            for (size_t r : rows) result.data.SetValue(r, a, mean);
          }
          return;
        }

        std::vector<size_t> left, right;
        left.reserve(best_cut);
        right.reserve(best_order.size() - best_cut);
        for (size_t i = 0; i < best_order.size(); ++i) {
          (i < best_cut ? left : right).push_back(best_order[i].second);
        }
        rows.clear();
        rows.shrink_to_fit();
        partition(left);
        partition(right);
      };

  std::vector<size_t> rows(data.NumRows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  partition(rows);
  return result;
}

bool IsKAnonymous(const Dataset& data, size_t k) {
  std::map<std::vector<AttrValue>, size_t> counts;
  for (size_t r = 0; r < data.NumRows(); ++r) {
    counts[data.Row(r)]++;
  }
  for (const auto& [key, count] : counts) {
    if (count < k) return false;
  }
  return true;
}

}  // namespace popp
