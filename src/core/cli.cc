#include "core/cli.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>

#include "core/custodian.h"
#include "core/recipe.h"
#include "core/report.h"
#include "data/cols.h"
#include "data/csv.h"
#include "fault/file.h"
#include "parallel/exec_policy.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "shard/meta_manifest.h"
#include "shard/pipeline.h"
#include "stream/chunk_io.h"
#include "stream/cols_io.h"
#include "stream/manifest.h"
#include "stream/streaming_custodian.h"
#include "transform/compiled.h"
#include "transform/serialize.h"
#include "transform/tree_decode.h"
#include "tree/builder.h"
#include "tree/compare.h"
#include "tree/prune.h"
#include "tree/serialize.h"
#include "util/crc64.h"

namespace popp {
namespace {

constexpr char kUsage[] =
    "usage: popp <command> [args]\n"
    "\n"
    "custodian commands:\n"
    "  encode <in.csv> <out.csv> <key.out> [--seed N] [--policy "
    "none|bp|maxmp]\n"
    "         [--breakpoints W] [--anti]\n"
    "  stream-release <in.csv> <out.csv> <key.out> [--chunk-rows N]\n"
    "         [--ood-policy reject|clamp|extend-piece|refit] [--fit-rows N]\n"
    "         [--key-in key] [--seed N] [--policy none|bp|maxmp]\n"
    "         [--breakpoints W] [--anti] [--resume]\n"
    "  shard-release <in> <out> <key.out> [--shards N] [--workers-mode\n"
    "         thread|process] [--chunk-rows N] [--seed N]\n"
    "         [--policy none|bp|maxmp] [--breakpoints W] [--anti] [--resume]\n"
    "         [--worker-deadline MS] [--max-worker-restarts N]\n"
    "  decode <tree.in> <key> <original.csv> <tree.out>\n"
    "  verify <original.csv> [--seed N]\n"
    "  verify <release> --manifest [--key key]\n"
    "  report <data.csv> [--trials N] [--seed N]\n"
    "  harden <data.csv> [--max-risk PCT] [--trials N] [--seed N]\n"
    "  convert <in> <out> [--to csv|cols]\n"
    "\n"
    "provider commands:\n"
    "  mine <data.csv> <tree.out> [--criterion gini|entropy|gainratio]\n"
    "       [--prune] [--max-depth D] [--min-leaf N]\n"
    "\n"
    "daemon commands (against a running popp-serve):\n"
    "  serve-client <socket> fit <in.csv> <key.out> [--save RELPATH]\n"
    "      (--save is server-side, confined to the daemon's\n"
    "       --save-dir/<tenant>/; absolute paths and '..' are refused)\n"
    "  serve-client <socket> encode <in.csv> <out.csv>\n"
    "  serve-client <socket> decode <tree.in> <original.csv> <tree.out>\n"
    "  serve-client <socket> verify <in.csv>\n"
    "  serve-client <socket> risk <in.csv> [--trials N]\n"
    "  serve-client <socket> stats\n"
    "  serve-client <socket> health\n"
    "  serve-client <socket> shutdown\n"
    "  all take --tenant NAME (default 'default') plus the usual --seed,\n"
    "  --policy, --breakpoints, --anti, --threads, --no-compiled flags,\n"
    "  and --deadline-ms MS / --retry N: the deadline rides the request\n"
    "  (the daemon sheds it with an explicit 'overloaded'/'deadline\n"
    "  exceeded' reply, exit 6, instead of hanging) and --retry retries\n"
    "  shed replies with deterministic backoff, honoring the daemon's\n"
    "  retry-after-ms hint;\n"
    "  dataset files are sent to the daemon verbatim, so a popp-cols input\n"
    "  rides the zero-copy path. Outputs are written atomically\n"
    "  client-side; daemon-served encode output is byte-identical to\n"
    "  `popp encode` with the same flags. Encode replies mirror the\n"
    "  request framing: a CSV input yields the CLI's CSV, a popp-cols\n"
    "  input yields the release as popp-cols (~50x cheaper to\n"
    "  serialize).\n"
    "\n"
    "every command also accepts --threads N (default 1 = serial; 0 = all\n"
    "hardware threads). Results are bit-identical for every N.\n"
    "every dataset input accepts --format csv|cols|auto (default auto:\n"
    "sniff the 'poppcols' magic). popp-cols is the binary columnar\n"
    "container; convert translates between the two, defaulting --to to\n"
    "the opposite of the input's format. Release output is byte-identical\n"
    "whichever format the input arrives in.\n"
    "encode, stream-release, verify and report accept --no-compiled to\n"
    "force the interpreted encode path (A/B debugging; the compiled\n"
    "kernels are bit-identical, just faster).\n"
    "\n"
    "stream-release journals progress in <out.csv>.manifest and stages\n"
    "bytes in <out.csv>.partial; --resume continues an interrupted run\n"
    "(byte-identical to an uninterrupted one) instead of starting over.\n"
    "\n"
    "shard-release splits the input into --shards disjoint row ranges,\n"
    "summarizes them in parallel (thread workers, or forked processes\n"
    "with --workers-mode process), fits one global plan from the merged\n"
    "summaries, then encodes each shard into <out>.shard<k> behind its\n"
    "own journal (--resume continues crashed shards independently).\n"
    "With --workers-mode process each worker is supervised: a worker\n"
    "silent past --worker-deadline MS (default 30000; 0 disables the\n"
    "watchdog) is killed and restarted with jittered exponential backoff,\n"
    "resuming from its own journal, up to --max-worker-restarts times\n"
    "(default 2) before the shard is quarantined with its failure\n"
    "history. A fresh (non---resume) run first sweeps orphaned working\n"
    "files (*.sum/*.partial/*.manifest/*.tmp/*.hb debris from dead\n"
    "runs); --resume keeps them, because they are the resume state.\n"
    "<out> itself is the atomic manifest-of-manifests; the concatenated\n"
    "shard files are byte-identical to stream-release with the same\n"
    "flags. `verify <out> --manifest` re-checks every shard's length and\n"
    "CRC-64 shard by shard, without materializing the dataset; --key\n"
    "also binds the key file to the release's plan CRC.\n"
    "\n"
    "exit codes: 0 success, 1 runtime failure, 2 usage error,\n"
    "3 file/I-O error, 4 corrupt or integrity-failed artifact,\n"
    "5 internal error, 6 deadline exceeded or overloaded.\n";

/// Maps a failed Status onto the CLI exit-code taxonomy above.
int ExitFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
    case StatusCode::kIoError:
      return 3;
    case StatusCode::kDataLoss:
      return 4;
    case StatusCode::kInternal:
      return 5;
    case StatusCode::kUnavailable:
      return 6;
    default:
      return 1;
  }
}

/// Splits `args` into positional arguments and --flag[=value] options
/// (flags may also take their value as the next token).
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // name (no dashes) -> value
};

ParsedArgs Parse(const std::vector<std::string>& args,
                 const std::vector<std::string>& value_flags) {
  ParsedArgs parsed;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      parsed.positional.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (std::find(value_flags.begin(), value_flags.end(), name) !=
                   value_flags.end() &&
               i + 1 < args.size()) {
      value = args[++i];
    }
    parsed.flags[name] = value;
  }
  return parsed;
}

uint64_t FlagInt(const ParsedArgs& args, const std::string& name,
                 uint64_t fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end() || it->second.empty()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

ExecPolicy ExecFlags(const ParsedArgs& args) {
  return ExecPolicy{static_cast<size_t>(FlagInt(args, "threads", 1))};
}

std::optional<PiecewiseOptions> TransformFlags(const ParsedArgs& args,
                                               std::ostream& err) {
  PiecewiseOptions options;
  auto it = args.flags.find("policy");
  if (it != args.flags.end()) {
    if (it->second == "none") {
      options.policy = BreakpointPolicy::kNone;
    } else if (it->second == "bp") {
      options.policy = BreakpointPolicy::kChooseBP;
    } else if (it->second == "maxmp") {
      options.policy = BreakpointPolicy::kChooseMaxMP;
    } else {
      err << "unknown --policy '" << it->second << "'\n";
      return std::nullopt;
    }
  }
  options.min_breakpoints = FlagInt(args, "breakpoints", 20);
  options.global_anti_monotone = args.flags.count("anti") > 0;
  return options;
}

/// Resolves a --format / --to style flag; absent means kAuto.
Result<stream::DatasetFormat> FormatFlag(const ParsedArgs& args,
                                         const std::string& name) {
  auto it = args.flags.find(name);
  if (it == args.flags.end() || it->second.empty()) {
    return stream::DatasetFormat::kAuto;
  }
  return stream::ParseDatasetFormat(it->second);
}

/// Loads a whole dataset honoring the command's --format flag (auto-sniffs
/// by default, so existing CSV invocations keep working unchanged).
Result<Dataset> ReadDataset(const ParsedArgs& args, const std::string& path) {
  auto requested = FormatFlag(args, "format");
  if (!requested.ok()) return requested.status();
  auto format = stream::SniffDatasetFormat(path, requested.value());
  if (!format.ok()) return format.status();
  if (format.value() == stream::DatasetFormat::kCols) return ReadCols(path);
  return ReadCsv(path);
}

std::optional<BuildOptions> TreeFlags(const ParsedArgs& args,
                                      std::ostream& err) {
  BuildOptions options;
  auto it = args.flags.find("criterion");
  if (it != args.flags.end()) {
    if (it->second == "gini") {
      options.criterion = SplitCriterion::kGini;
    } else if (it->second == "entropy") {
      options.criterion = SplitCriterion::kEntropy;
    } else if (it->second == "gainratio") {
      options.criterion = SplitCriterion::kGainRatio;
    } else {
      err << "unknown --criterion '" << it->second << "'\n";
      return std::nullopt;
    }
  }
  options.max_depth = FlagInt(args, "max-depth", options.max_depth);
  options.min_leaf_size = FlagInt(args, "min-leaf", options.min_leaf_size);
  return options;
}

int CmdEncode(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 3) {
    err << "encode needs <in.csv> <out.csv> <key.out>\n";
    return 2;
  }
  auto data = ReadDataset(args, args.positional[0]);
  if (!data.ok()) {
    err << data.status().ToString() << "\n";
    return ExitFor(data.status());
  }
  auto options = TransformFlags(args, err);
  if (!options) return 2;
  Rng rng(FlagInt(args, "seed", 1));
  const TransformPlan plan =
      TransformPlan::Create(data.value(), *options, rng, ExecFlags(args));
  const Dataset released =
      args.flags.count("no-compiled") > 0
          ? plan.EncodeDataset(data.value(), ExecFlags(args))
          : CompiledPlan::Compile(plan).EncodeDataset(data.value(),
                                                      ExecFlags(args));

  Status status = WriteCsv(released, args.positional[1]);
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return ExitFor(status);
  }
  status = SavePlan(plan, args.positional[2]);
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return ExitFor(status);
  }
  out << "encoded " << released.NumRows() << " rows x "
      << released.NumAttributes() << " attributes -> " << args.positional[1]
      << "\nkey written to " << args.positional[2]
      << " (keep it secret; it decodes the mining outcome)\n";
  return 0;
}

int CmdStreamRelease(const ParsedArgs& args, std::ostream& out,
                     std::ostream& err) {
  if (args.positional.size() != 3) {
    err << "stream-release needs <in.csv> <out.csv> <key.out>\n";
    return 2;
  }
  auto transform = TransformFlags(args, err);
  if (!transform) return 2;
  stream::StreamOptions options;
  options.transform = *transform;
  options.seed = FlagInt(args, "seed", 1);
  options.exec = ExecFlags(args);
  options.chunk_rows = FlagInt(args, "chunk-rows", 4096);
  if (options.chunk_rows == 0) {
    err << "--chunk-rows must be >= 1\n";
    return 2;
  }
  options.fit_rows = FlagInt(args, "fit-rows", 0);
  options.use_compiled = args.flags.count("no-compiled") == 0;
  auto policy_it = args.flags.find("ood-policy");
  if (policy_it != args.flags.end()) {
    auto policy = stream::ParseOodPolicy(policy_it->second);
    if (!policy.ok()) {
      err << policy.status().ToString() << "\n";
      return 2;
    }
    options.ood_policy = policy.value();
  }
  auto format = FormatFlag(args, "format");
  if (!format.ok()) {
    err << format.status().ToString() << "\n";
    return 2;
  }
  auto reader_or =
      stream::MakeChunkReader(args.positional[0], format.value());
  if (!reader_or.ok()) {
    err << reader_or.status().ToString() << "\n";
    return ExitFor(reader_or.status());
  }
  stream::ChunkReader& reader = *reader_or.value();
  stream::ResumableCsvChunkWriter writer(args.positional[1], {},
                                         args.flags.count("resume") > 0);
  stream::StreamStats stats;
  Result<TransformPlan> plan = TransformPlan();
  auto key_it = args.flags.find("key-in");
  if (key_it != args.flags.end()) {
    auto loaded = LoadPlan(key_it->second);
    if (!loaded.ok()) {
      err << loaded.status().ToString() << "\n";
      return ExitFor(loaded.status());
    }
    plan = stream::StreamingCustodian::ReleaseWithPlan(
        reader, writer, std::move(loaded).value(), options, &stats);
  } else {
    plan = stream::StreamingCustodian::Release(reader, writer, options,
                                               &stats);
  }
  if (!plan.ok()) {
    err << plan.status().ToString() << "\n";
    return ExitFor(plan.status());
  }
  const Status status = SavePlan(plan.value(), args.positional[2]);
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return ExitFor(status);
  }
  out << stats.Render() << "released -> " << args.positional[1]
      << "\nkey written to " << args.positional[2]
      << " (keep it secret; it decodes the mining outcome)\n";
  return 0;
}

int CmdShardRelease(const ParsedArgs& args, std::ostream& out,
                    std::ostream& err) {
  if (args.positional.size() != 3) {
    err << "shard-release needs <in> <out> <key.out>\n";
    return 2;
  }
  auto transform = TransformFlags(args, err);
  if (!transform) return 2;
  shard::ShardOptions options;
  options.transform = *transform;
  options.seed = FlagInt(args, "seed", 1);
  options.exec = ExecFlags(args);
  options.num_shards = FlagInt(args, "shards", 2);
  if (options.num_shards == 0) {
    err << "--shards must be >= 1\n";
    return 2;
  }
  options.chunk_rows = FlagInt(args, "chunk-rows", 4096);
  if (options.chunk_rows == 0) {
    err << "--chunk-rows must be >= 1\n";
    return 2;
  }
  options.use_compiled = args.flags.count("no-compiled") == 0;
  options.resume = args.flags.count("resume") > 0;
  auto mode_it = args.flags.find("workers-mode");
  if (mode_it != args.flags.end()) {
    auto mode = shard::ParseWorkersMode(mode_it->second);
    if (!mode.ok()) {
      err << mode.status().ToString() << "\n";
      return 2;
    }
    options.workers_mode = mode.value();
  }
  options.worker_deadline_ms = FlagInt(args, "worker-deadline", 30000);
  options.max_worker_restarts = FlagInt(args, "max-worker-restarts", 2);
  auto format = FormatFlag(args, "format");
  if (!format.ok()) {
    err << format.status().ToString() << "\n";
    return 2;
  }
  options.format = format.value();
  shard::ShardStats stats;
  auto plan = shard::ShardedCustodian::Release(
      args.positional[0], args.positional[1], options, &stats);
  if (!plan.ok()) {
    err << plan.status().ToString() << "\n";
    return ExitFor(plan.status());
  }
  const Status status = SavePlan(plan.value(), args.positional[2]);
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return ExitFor(status);
  }
  out << stats.Render() << "released -> " << args.positional[1]
      << " (+ " << options.num_shards << " shard file"
      << (options.num_shards == 1 ? "" : "s")
      << ")\nkey written to " << args.positional[2]
      << " (keep it secret; it decodes the mining outcome)\n";
  return 0;
}

int CmdMine(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "mine needs <data.csv> <tree.out>\n";
    return 2;
  }
  auto options = TreeFlags(args, err);
  if (!options) return 2;
  auto data = ReadDataset(args, args.positional[0]);
  if (!data.ok()) {
    err << data.status().ToString() << "\n";
    return ExitFor(data.status());
  }
  DecisionTree tree =
      DecisionTreeBuilder(*options, ExecFlags(args)).Build(data.value());
  if (args.flags.count("prune") > 0) {
    tree = PruneTree(tree);
  }
  const Status status = SaveTree(tree, args.positional[1]);
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return ExitFor(status);
  }
  out << "mined tree: " << tree.NumLeaves() << " leaves, depth "
      << tree.Depth() << ", training accuracy "
      << 100.0 * tree.Accuracy(data.value()) << "% -> " << args.positional[1]
      << "\n";
  return 0;
}

int CmdDecode(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 4) {
    err << "decode needs <tree.in> <key> <original.csv> <tree.out>\n";
    return 2;
  }
  auto tree = LoadTree(args.positional[0]);
  if (!tree.ok()) {
    err << tree.status().ToString() << "\n";
    return ExitFor(tree.status());
  }
  auto plan = LoadPlan(args.positional[1]);
  if (!plan.ok()) {
    err << plan.status().ToString() << "\n";
    return ExitFor(plan.status());
  }
  auto original = ReadDataset(args, args.positional[2]);
  if (!original.ok()) {
    err << original.status().ToString() << "\n";
    return ExitFor(original.status());
  }
  const DecisionTree decoded =
      DecodeTreeWithData(tree.value(), plan.value(), original.value());
  const Status status = SaveTree(decoded, args.positional[3]);
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return ExitFor(status);
  }
  out << "decoded tree (" << decoded.NumLeaves() << " leaves) -> "
      << args.positional[3] << "\n"
      << decoded.ToText(original.value().schema());
  return 0;
}

/// `verify <release> --manifest`: integrity-check a sharded release
/// shard by shard against its manifest-of-manifests, in bounded memory.
int CmdVerifyManifest(const ParsedArgs& args, std::ostream& out,
                      std::ostream& err) {
  uint64_t plan_crc = 0;
  const uint64_t* expect_crc = nullptr;
  auto key_it = args.flags.find("key");
  if (key_it != args.flags.end()) {
    auto plan = LoadPlan(key_it->second);
    if (!plan.ok()) {
      err << plan.status().ToString() << "\n";
      return ExitFor(plan.status());
    }
    plan_crc = Crc64(SerializePlan(plan.value()));
    expect_crc = &plan_crc;
  }
  shard::VerifyTotals totals;
  const Status status =
      shard::VerifyShardedRelease(args.positional[0], expect_crc, &totals);
  if (!status.ok()) {
    err << status.ToString() << "\n";
    out << "sharded release: FAILED\n";
    return ExitFor(status);
  }
  out << "sharded release: VERIFIED (" << totals.shards << " shards, "
      << totals.rows << " rows, " << totals.bytes << " bytes"
      << (expect_crc != nullptr ? ", key matches" : "") << ")\n";
  return 0;
}

int CmdVerify(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "verify needs <original.csv>\n";
    return 2;
  }
  if (args.flags.count("manifest") > 0) {
    return CmdVerifyManifest(args, out, err);
  }
  auto data = ReadDataset(args, args.positional[0]);
  if (!data.ok()) {
    err << data.status().ToString() << "\n";
    return ExitFor(data.status());
  }
  auto transform = TransformFlags(args, err);
  if (!transform) return 2;
  auto tree = TreeFlags(args, err);
  if (!tree) return 2;
  CustodianOptions options;
  options.seed = FlagInt(args, "seed", 1);
  options.transform = *transform;
  options.tree = *tree;
  options.exec = ExecFlags(args);
  options.use_compiled = args.flags.count("no-compiled") == 0;
  const Custodian custodian(std::move(data).value(), options);
  std::string detail;
  const bool ok = custodian.VerifyNoOutcomeChange(&detail);
  out << "no-outcome-change: " << (ok ? "VERIFIED" : "FAILED") << "\n";
  if (!ok) {
    err << detail << "\n";
  }
  return ok ? 0 : 1;
}

int CmdReport(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "report needs <data.csv>\n";
    return 2;
  }
  auto data = ReadDataset(args, args.positional[0]);
  if (!data.ok()) {
    err << data.status().ToString() << "\n";
    return ExitFor(data.status());
  }
  CustodianOptions options;
  options.seed = FlagInt(args, "seed", 1);
  options.exec = ExecFlags(args);
  options.use_compiled = args.flags.count("no-compiled") == 0;
  const Custodian custodian(std::move(data).value(), options);
  ReportOptions report_options;
  report_options.num_trials = FlagInt(args, "trials", 31);
  report_options.seed = options.seed + 1;
  report_options.exec = options.exec;
  out << RenderRiskReport(BuildRiskReport(custodian, report_options));
  return 0;
}

int CmdHarden(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "harden needs <data.csv>\n";
    return 2;
  }
  auto data = ReadDataset(args, args.positional[0]);
  if (!data.ok()) {
    err << data.status().ToString() << "\n";
    return ExitFor(data.status());
  }
  HardeningTargets targets;
  targets.max_risk =
      static_cast<double>(FlagInt(args, "max-risk", 25)) / 100.0;
  targets.trials = FlagInt(args, "trials", 21);
  targets.exec = ExecFlags(args);
  const auto decisions = RecommendPerAttributeOptions(
      data.value(), PiecewiseOptions{}, targets, FlagInt(args, "seed", 1));
  out << RenderHardeningDecisions(data.value(), decisions);
  return 0;
}

int CmdConvert(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "convert needs <in> <out>\n";
    return 2;
  }
  auto requested = FormatFlag(args, "format");
  if (!requested.ok()) {
    err << requested.status().ToString() << "\n";
    return 2;
  }
  auto source = stream::SniffDatasetFormat(args.positional[0],
                                           requested.value());
  if (!source.ok()) {
    err << source.status().ToString() << "\n";
    return ExitFor(source.status());
  }
  auto target = FormatFlag(args, "to");
  if (!target.ok()) {
    err << target.status().ToString() << "\n";
    return 2;
  }
  // Absent --to flips the format: CSV in -> cols out and vice versa.
  stream::DatasetFormat to = target.value();
  if (to == stream::DatasetFormat::kAuto) {
    to = source.value() == stream::DatasetFormat::kCols
             ? stream::DatasetFormat::kCsv
             : stream::DatasetFormat::kCols;
  }
  auto data = source.value() == stream::DatasetFormat::kCols
                  ? ReadCols(args.positional[0])
                  : ReadCsv(args.positional[0]);
  if (!data.ok()) {
    err << data.status().ToString() << "\n";
    return ExitFor(data.status());
  }
  if (to == stream::DatasetFormat::kCols) {
    ColsStats stats;
    const Status status = WriteCols(data.value(), args.positional[1], &stats);
    if (!status.ok()) {
      err << status.ToString() << "\n";
      return ExitFor(status);
    }
    out << "converted " << stats.num_rows << " rows x "
        << stats.num_attributes << " attributes -> " << args.positional[1]
        << " (popp-cols v1: " << stats.dict_columns << " dict + "
        << stats.raw_columns << " raw columns, " << stats.bytes
        << " bytes)\n";
  } else {
    const Status status = WriteCsv(data.value(), args.positional[1]);
    if (!status.ok()) {
      err << status.ToString() << "\n";
      return ExitFor(status);
    }
    out << "converted " << data.value().NumRows() << " rows x "
        << data.value().NumAttributes() << " attributes -> "
        << args.positional[1] << " (csv)\n";
  }
  return 0;
}

/// Renders the request options line protocol (serve/ops.h vocabulary)
/// from the familiar CLI flags, so a serve-client invocation and the
/// matching one-shot command describe the same fit.
std::string ServeOptionsText(const ParsedArgs& args) {
  std::string text;
  const auto copy = [&](const std::string& flag) {
    auto it = args.flags.find(flag);
    if (it != args.flags.end()) text += flag + " " + it->second + "\n";
  };
  copy("seed");
  copy("policy");
  copy("breakpoints");
  copy("threads");
  copy("trials");
  copy("save");
  copy("deadline-ms");
  if (args.flags.count("anti") > 0) text += "anti\n";
  if (args.flags.count("no-compiled") > 0) text += "no-compiled\n";
  return text;
}

int CmdServeClient(const ParsedArgs& args, std::ostream& out,
                   std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "serve-client needs <socket> <op> [args] (ops: fit encode "
           "decode verify risk stats health shutdown)\n";
    return 2;
  }
  const std::string& socket_path = args.positional[0];
  auto tag = serve::ParseTag(args.positional[1]);
  if (!tag.ok() || tag.value() == serve::Tag::kReply) {
    err << "serve-client: unknown op '" << args.positional[1]
        << "' (ops: fit encode decode verify risk stats health shutdown)\n";
    return 2;
  }
  // Positional shape per op: op args after <socket> <op>.
  const std::vector<std::string> rest(args.positional.begin() + 2,
                                      args.positional.end());
  size_t want_inputs = 0;   // dataset (+ tree for decode)
  size_t want_outputs = 0;  // client-side artifact paths
  switch (tag.value()) {
    case serve::Tag::kFit:
      want_inputs = 1;
      want_outputs = 1;  // <key.out>
      break;
    case serve::Tag::kEncode:
      want_inputs = 1;
      want_outputs = 1;  // <out.csv>
      break;
    case serve::Tag::kDecode:
      want_inputs = 2;  // <tree.in> <original.csv>
      want_outputs = 1;  // <tree.out>
      break;
    case serve::Tag::kVerify:
    case serve::Tag::kRisk:
      want_inputs = 1;
      break;
    default:
      break;  // stats / health / shutdown take no op args
  }
  if (rest.size() != want_inputs + want_outputs) {
    err << "serve-client " << serve::TagName(tag.value()) << " needs "
        << want_inputs + want_outputs << " argument(s), got " << rest.size()
        << " (see popp help)\n";
    return 2;
  }

  serve::RequestBody request;
  request.options = ServeOptionsText(args);
  std::string output_path;
  if (tag.value() == serve::Tag::kDecode) {
    auto tree_bytes = fault::ReadFileToString(rest[0]);
    if (!tree_bytes.ok()) {
      err << tree_bytes.status().ToString() << "\n";
      return ExitFor(tree_bytes.status());
    }
    request.extra = std::move(tree_bytes).value();
  }
  if (want_inputs > 0) {
    // The dataset file rides the wire verbatim: the daemon sniffs the
    // popp-cols magic, so a binary container keeps its zero-copy path and
    // a CSV parses exactly as the one-shot CLI would have parsed it.
    const std::string& data_path = rest[want_inputs - 1];
    auto data_bytes = fault::ReadFileToString(data_path);
    if (!data_bytes.ok()) {
      err << data_bytes.status().ToString() << "\n";
      return ExitFor(data_bytes.status());
    }
    request.dataset = std::move(data_bytes).value();
  }
  if (want_outputs > 0) output_path = rest.back();

  serve::ServeClient client;
  Status status = client.Connect(socket_path);
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return status.code() == StatusCode::kFailedPrecondition
               ? 2
               : ExitFor(status);
  }
  auto tenant_it = args.flags.find("tenant");
  const std::string tenant =
      tenant_it != args.flags.end() ? tenant_it->second : "default";
  // --retry N retries explicit shed replies (overload / expired deadline)
  // with deterministic backoff; --deadline-ms also bounds the whole retry
  // loop client-side, so a saturated daemon cannot hold the CLI forever.
  serve::RetryOptions retry;
  retry.max_retries = static_cast<size_t>(FlagInt(args, "retry", 0));
  retry.deadline_ms = FlagInt(args, "deadline-ms", 0);
  retry.seed = FlagInt(args, "seed", 1);
  auto reply = client.CallWithRetry(tag.value(), tenant, request, retry);
  if (!reply.ok()) {
    err << reply.status().ToString() << "\n";
    return ExitFor(reply.status());
  }
  if (!reply.value().ok()) {
    err << reply.value().text << "\n";
    return ExitFor(Status(reply.value().code, reply.value().text));
  }

  out << reply.value().text << "\n";
  switch (tag.value()) {
    case serve::Tag::kVerify:
      // The reply text is the verdict; the body carries failure detail.
      if (reply.value().text.find("FAILED") != std::string::npos) {
        err << reply.value().body << "\n";
        return 1;
      }
      return 0;
    case serve::Tag::kRisk:
    case serve::Tag::kStats:
    case serve::Tag::kHealth:
      out << reply.value().body;
      return 0;
    default:
      break;
  }
  if (!output_path.empty()) {
    // Client-side artifacts get the same atomic publication discipline as
    // the daemon's --save path: no partial file under the final name.
    status = fault::WriteFileAtomic(output_path, reply.value().body);
    if (!status.ok()) {
      err << status.ToString() << "\n";
      return ExitFor(status);
    }
    out << "written to " << output_path << "\n";
  }
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  static const std::vector<std::string> kValueFlags = {
      "seed",     "policy", "breakpoints", "criterion",  "max-depth",
      "min-leaf", "trials", "max-risk",    "threads",    "chunk-rows",
      "ood-policy", "fit-rows", "key-in", "format", "to", "tenant",
      "save", "shards", "workers-mode", "key", "worker-deadline",
      "max-worker-restarts", "retry", "deadline-ms"};
  const ParsedArgs parsed = Parse(rest, kValueFlags);
  if (command == "encode") return CmdEncode(parsed, out, err);
  if (command == "stream-release") return CmdStreamRelease(parsed, out, err);
  if (command == "shard-release") return CmdShardRelease(parsed, out, err);
  if (command == "mine") return CmdMine(parsed, out, err);
  if (command == "decode") return CmdDecode(parsed, out, err);
  if (command == "verify") return CmdVerify(parsed, out, err);
  if (command == "report") return CmdReport(parsed, out, err);
  if (command == "harden") return CmdHarden(parsed, out, err);
  if (command == "convert") return CmdConvert(parsed, out, err);
  if (command == "serve-client") return CmdServeClient(parsed, out, err);
  err << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace popp
