#ifndef POPP_CORE_CUSTODIAN_H_
#define POPP_CORE_CUSTODIAN_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "transform/compiled.h"
#include "transform/plan.h"
#include "transform/tree_decode.h"
#include "tree/builder.h"
#include "tree/decision_tree.h"

/// \file
/// The data-custodian facade: the end-to-end workflow of the paper's
/// introduction. A custodian owns (or is entrusted with) a dataset D,
/// releases the transformed D' to an untrusted mining service, receives
/// the encoded tree T', decodes it to the true tree T, and can verify that
/// T equals the tree that mining D directly would have produced (the
/// no-outcome-change guarantee).

namespace popp {

/// Everything the custodian workflow is parameterized by.
struct CustodianOptions {
  PiecewiseOptions transform;  ///< how D is encoded
  BuildOptions tree;           ///< how trees are mined (both sides)
  uint64_t seed = 1;           ///< randomness of the encoding
  /// Execution policy for plan selection and mining. Serial by default;
  /// any thread count produces bit-identical plans and trees.
  ExecPolicy exec;
  /// Encode D' through the compiled kernels (bit-identical to the
  /// interpreted path; `--no-compiled` flips this off for A/B debugging).
  bool use_compiled = true;
};

/// Owns the original data and the secret transformation plan.
class Custodian {
 public:
  /// Creates the custodian and samples the encoding plan immediately.
  /// `data` must be non-empty.
  Custodian(Dataset data, CustodianOptions options);

  const Dataset& original() const { return original_; }
  const CustodianOptions& options() const { return options_; }
  const TransformPlan& plan() const { return plan_; }
  const CompiledPlan& compiled_plan() const { return compiled_; }

  /// The released dataset D' the service provider receives.
  Dataset Release() const;

  /// What the (honest) service provider computes: the tree mined from D'.
  DecisionTree MineReleased() const;

  /// Decodes an encoded tree T' received back from the provider, using
  /// the exact data-driven decoder.
  DecisionTree Decode(const DecisionTree& tprime) const;

  /// The ground truth: the tree mined directly from D.
  DecisionTree MineDirectly() const;

  /// End-to-end check of the no-outcome-change guarantee: mines D',
  /// decodes, and compares against mining D directly. Returns true when
  /// the decoded tree is exactly equal to the direct tree. If `detail` is
  /// non-null it receives a description of the first difference (empty on
  /// success).
  bool VerifyNoOutcomeChange(std::string* detail = nullptr) const;

 private:
  Dataset original_;
  CustodianOptions options_;
  TransformPlan plan_;
  CompiledPlan compiled_;  // empty unless options_.use_compiled
};

}  // namespace popp

#endif  // POPP_CORE_CUSTODIAN_H_
