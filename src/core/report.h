#ifndef POPP_CORE_REPORT_H_
#define POPP_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/custodian.h"
#include "parallel/exec_policy.h"
#include "util/rng.h"

/// \file
/// The custodian's pre-release risk report: per attribute, the Section 5.4
/// "recipe" inputs (monochromatic share, discontinuities) and the measured
/// disclosure risks under the standard attack battery. This is the
/// decision aid the paper describes for judging whether an attribute "is
/// safe for disclosure".

namespace popp {

/// One attribute's risk profile.
struct AttributeRiskReport {
  std::string name;
  size_t num_distinct = 0;
  size_t num_discontinuities = 0;
  double mono_value_fraction = 0;
  /// Median domain-disclosure risk under a polyline attack by an expert
  /// hacker (4 good KPs).
  double curve_fit_risk = 0;
  /// Worst-case sorting-attack risk (hacker knows true min/max).
  double sorting_risk = 0;
  /// Quantile-matching risk against a rival holding an exact sample of
  /// the population — the strongest prior in Section 3.3's list.
  double quantile_risk = 0;
  /// Risk against an ignorant hacker (identity guess).
  double ignorant_risk = 0;
  /// Section 5.4 recipe verdict.
  bool safe = false;
};

/// Options for building a risk report.
struct ReportOptions {
  double radius_fraction = 0.02;  ///< rho, as fraction of range width
  size_t num_trials = 51;         ///< randomized attack trials per figure
  uint64_t seed = 7;
  /// Recipe threshold: an attribute is flagged unsafe when both its
  /// curve-fit and sorting risks exceed this.
  double safety_threshold = 0.25;
  /// Attributes are measured under this policy (serial by default). Each
  /// attribute's battery depends only on (seed, attr), so the report is
  /// bit-identical at every thread count.
  ExecPolicy exec;
};

/// Runs the attack battery against the custodian's released data.
std::vector<AttributeRiskReport> BuildRiskReport(const Custodian& custodian,
                                                 const ReportOptions& options);

/// Renders the report as an aligned text table.
std::string RenderRiskReport(const std::vector<AttributeRiskReport>& report);

}  // namespace popp

#endif  // POPP_CORE_REPORT_H_
