#include "core/report.h"

#include <algorithm>

#include "attack/quantile_attack.h"
#include "attack/sorting_attack.h"
#include "data/summary.h"
#include "parallel/parallel_for.h"
#include "risk/domain_risk.h"
#include "risk/trials.h"
#include "transform/pieces.h"
#include "util/table.h"

namespace popp {

std::vector<AttributeRiskReport> BuildRiskReport(
    const Custodian& custodian, const ReportOptions& options) {
  const Dataset& data = custodian.original();
  std::vector<AttributeRiskReport> report(data.NumAttributes());

  // Each attribute's battery derives every stream from (options.seed,
  // attr) arithmetic — no shared RNG — so running attributes concurrently
  // cannot change a single bit of the report.
  ParallelFor(options.exec, data.NumAttributes(), [&](size_t attr) {
    const AttributeSummary summary =
        AttributeSummary::FromDataset(data, attr);
    AttributeRiskReport row;
    row.name = data.schema().AttributeName(attr);
    row.num_distinct = summary.NumDistinct();
    row.num_discontinuities = summary.NumDiscontinuities();
    row.mono_value_fraction = ComputeMonoStats(summary).value_fraction;
    const double rho = CrackRadius(summary, options.radius_fraction);

    // Median curve-fit risk (expert hacker, polyline) over fresh
    // transform + knowledge draws.
    DomainRiskExperiment experiment;
    experiment.transform_options = custodian.options().transform;
    experiment.method = FitMethod::kPolyline;
    experiment.knowledge.num_good = GoodKpCount(HackerProfile::kExpert);
    experiment.knowledge.radius_fraction = options.radius_fraction;
    experiment.num_trials = options.num_trials;
    experiment.seed = options.seed + attr;
    row.curve_fit_risk = MedianDomainRisk(summary, experiment);

    // Ignorant hacker against the custodian's actual plan.
    row.ignorant_risk =
        DomainDisclosureRisk(summary, custodian.plan().transform(attr),
                             *MakeIdentityCrack(), rho)
            .risk;

    // Worst-case sorting attack, median over fresh transforms.
    row.sorting_risk = MedianOverTrials(
        options.num_trials, options.seed + 1000 + attr, [&](Rng& rng) {
          const PiecewiseTransform transform = PiecewiseTransform::Create(
              summary, custodian.options().transform, rng);
          return SortingAttackRisk(summary, transform, rho).risk;
        });

    // Rival-sample quantile attack (exact reference), the strongest prior.
    row.quantile_risk = MedianOverTrials(
        options.num_trials, options.seed + 2000 + attr, [&](Rng& rng) {
          const PiecewiseTransform transform = PiecewiseTransform::Create(
              summary, custodian.options().transform, rng);
          return QuantileAttackRisk(summary, transform, 20000, 0.0, rho,
                                    rng);
        });

    row.safe = std::max({row.curve_fit_risk, row.sorting_risk,
                         row.quantile_risk}) <= options.safety_threshold;
    report[attr] = std::move(row);
  });
  return report;
}

std::string RenderRiskReport(const std::vector<AttributeRiskReport>& report) {
  TablePrinter table({"attribute", "#distinct", "#discont", "% mono",
                      "curve-fit risk", "sorting risk", "quantile risk",
                      "ignorant risk", "verdict"});
  for (const auto& row : report) {
    table.AddRow({row.name, std::to_string(row.num_distinct),
                  std::to_string(row.num_discontinuities),
                  TablePrinter::Pct(row.mono_value_fraction),
                  TablePrinter::Pct(row.curve_fit_risk),
                  TablePrinter::Pct(row.sorting_risk),
                  TablePrinter::Pct(row.quantile_risk),
                  TablePrinter::Pct(row.ignorant_risk),
                  row.safe ? "safe" : "REVIEW"});
  }
  return table.ToString("Custodian pre-release risk report");
}

}  // namespace popp
