#ifndef POPP_CORE_RECIPE_H_
#define POPP_CORE_RECIPE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "parallel/exec_policy.h"
#include "transform/piecewise.h"

/// \file
/// The custodian's "recipe" (paper Section 5.4), automated: decide per
/// attribute whether it is safe for disclosure and, if not, harden its
/// transform configuration until it is (or report that it cannot be).
///
/// The paper's recipe: an attribute is safe when it has many
/// monochromatic pieces or many discontinuities; the dangerous case is
/// few of both. The automation probes the actual attacks (expert
/// polyline curve fit and worst-case sorting) and doubles the breakpoint
/// budget until the measured risk clears the target.

namespace popp {

/// Acceptance targets for hardening.
struct HardeningTargets {
  /// Per-attribute risk ceiling (max of the probed attacks).
  double max_risk = 0.25;
  /// Crack radius as a fraction of the dynamic range.
  double radius_fraction = 0.01;
  /// Randomized trials per probe (medians).
  size_t trials = 21;
  /// Breakpoint budget cap; attributes still unsafe at the cap are
  /// reported as such.
  size_t max_breakpoints = 512;
  /// Attributes are hardened under this policy (serial by default). Each
  /// attribute's probe ladder is seeded from (seed, attr, probe) alone,
  /// so the decisions are bit-identical at every thread count.
  ExecPolicy exec;
};

/// Hardening outcome for one attribute.
struct HardeningDecision {
  PiecewiseOptions options;
  double measured_risk = 0;  ///< risk at the chosen configuration
  bool met_target = false;
  size_t probes = 0;  ///< configurations evaluated
};

/// Derives per-attribute transform options from `base`: breakpoints are
/// doubled (starting from base.min_breakpoints, at least 1) until the
/// strongest probed attack's median risk is at most targets.max_risk or
/// the cap is reached. Deterministic given `seed`.
std::vector<HardeningDecision> RecommendPerAttributeOptions(
    const Dataset& data, const PiecewiseOptions& base,
    const HardeningTargets& targets, uint64_t seed);

/// Renders the decisions as an aligned table.
std::string RenderHardeningDecisions(
    const Dataset& data, const std::vector<HardeningDecision>& decisions);

}  // namespace popp

#endif  // POPP_CORE_RECIPE_H_
