#ifndef POPP_CORE_CLI_H_
#define POPP_CORE_CLI_H_

#include <ostream>
#include <string>
#include <vector>

/// \file
/// The `popp` command-line tool, implemented as a library function so the
/// full workflow is unit-testable. Subcommands mirror the custodian /
/// provider roles:
///
///   popp encode <in.csv> <out.csv> <key.out> [--seed N] [--policy P]
///               [--breakpoints W] [--anti]
///       custodian: sample a plan, write the released data and the key.
///   popp mine <data.csv> <tree.out> [--criterion C] [--prune]
///             [--max-depth D] [--min-leaf N]
///       provider: induce a decision tree and write it out.
///   popp decode <tree.in> <key> <original.csv> <tree.out>
///       custodian: decode a mined tree against the key + original data.
///   popp verify <original.csv> [--seed N]
///       end-to-end self check of the no-outcome-change guarantee.
///   popp report <data.csv> [--trials N] [--seed N]
///       custodian: pre-release disclosure-risk report.

namespace popp {

/// Runs the CLI. `args` excludes the program name. Returns the process
/// exit code; human-readable output goes to `out`, errors to `err`.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace popp

#endif  // POPP_CORE_CLI_H_
