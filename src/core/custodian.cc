#include "core/custodian.h"

#include "tree/compare.h"
#include "util/rng.h"
#include "util/status.h"

namespace popp {

Custodian::Custodian(Dataset data, CustodianOptions options)
    : original_(std::move(data)), options_(options) {
  POPP_CHECK_MSG(original_.NumRows() > 0, "custodian needs data");
  Rng rng(options_.seed);
  plan_ = TransformPlan::Create(original_, options_.transform, rng,
                                options_.exec);
  if (options_.use_compiled) {
    compiled_ = CompiledPlan::Compile(plan_);
  }
}

Dataset Custodian::Release() const {
  if (options_.use_compiled) {
    return compiled_.EncodeDataset(original_, options_.exec);
  }
  return plan_.EncodeDataset(original_, options_.exec);
}

DecisionTree Custodian::MineReleased() const {
  const DecisionTreeBuilder builder(options_.tree, options_.exec);
  return builder.Build(Release());
}

DecisionTree Custodian::Decode(const DecisionTree& tprime) const {
  return DecodeTreeWithData(tprime, plan_, original_);
}

DecisionTree Custodian::MineDirectly() const {
  const DecisionTreeBuilder builder(options_.tree, options_.exec);
  return builder.Build(original_);
}

bool Custodian::VerifyNoOutcomeChange(std::string* detail) const {
  const DecisionTree direct = MineDirectly();
  const DecisionTree decoded = Decode(MineReleased());
  const std::string diff = DescribeDifference(direct, decoded);
  if (detail != nullptr) {
    *detail = diff;
  }
  return diff.empty();
}

}  // namespace popp
