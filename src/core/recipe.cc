#include "core/recipe.h"

#include <algorithm>

#include "attack/knowledge.h"
#include "attack/sorting_attack.h"
#include "data/summary.h"
#include "parallel/parallel_for.h"
#include "risk/domain_risk.h"
#include "risk/trials.h"
#include "util/table.h"
#include "util/status.h"

namespace popp {
namespace {

/// Median of the strongest probed attack at one configuration.
double ProbeRisk(const AttributeSummary& summary,
                 const PiecewiseOptions& options,
                 const HardeningTargets& targets, uint64_t seed) {
  const double rho = CrackRadius(summary, targets.radius_fraction);

  DomainRiskExperiment curve;
  curve.transform_options = options;
  curve.method = FitMethod::kPolyline;
  curve.knowledge.num_good = GoodKpCount(HackerProfile::kExpert);
  curve.knowledge.radius_fraction = targets.radius_fraction;
  curve.num_trials = targets.trials;
  curve.seed = seed;
  const double curve_risk = MedianDomainRisk(summary, curve);

  const double sorting_risk = MedianOverTrials(
      targets.trials, seed + 1, [&](Rng& rng) {
        const PiecewiseTransform f =
            PiecewiseTransform::Create(summary, options, rng);
        return SortingAttackRisk(summary, f, rho).risk;
      });
  return std::max(curve_risk, sorting_risk);
}

}  // namespace

std::vector<HardeningDecision> RecommendPerAttributeOptions(
    const Dataset& data, const PiecewiseOptions& base,
    const HardeningTargets& targets, uint64_t seed) {
  POPP_CHECK(targets.max_risk > 0.0 && targets.max_risk <= 1.0);
  std::vector<HardeningDecision> decisions(data.NumAttributes());

  // Every probe seed is pure (seed, attr, probe) arithmetic, so the
  // per-attribute ladders are independent and safe to run concurrently
  // without changing any decision.
  ParallelFor(targets.exec, data.NumAttributes(), [&](size_t attr) {
    const AttributeSummary summary =
        AttributeSummary::FromDataset(data, attr);
    HardeningDecision decision;
    decision.options = base;
    size_t w = std::max<size_t>(1, base.min_breakpoints);
    while (true) {
      decision.options.min_breakpoints = w;
      decision.measured_risk =
          ProbeRisk(summary, decision.options, targets,
                    seed * 131 + attr * 17 + decision.probes);
      decision.probes++;
      if (decision.measured_risk <= targets.max_risk) {
        decision.met_target = true;
        break;
      }
      if (w >= targets.max_breakpoints ||
          w >= summary.NumDistinct()) {
        decision.met_target = false;
        break;
      }
      w = std::min({w * 2, targets.max_breakpoints, summary.NumDistinct()});
    }
    decisions[attr] = std::move(decision);
  });
  return decisions;
}

std::string RenderHardeningDecisions(
    const Dataset& data, const std::vector<HardeningDecision>& decisions) {
  POPP_CHECK(decisions.size() == data.NumAttributes());
  TablePrinter table({"attribute", "breakpoints w", "measured risk",
                      "configs tried", "verdict"});
  for (size_t attr = 0; attr < decisions.size(); ++attr) {
    const HardeningDecision& d = decisions[attr];
    table.AddRow({data.schema().AttributeName(attr),
                  std::to_string(d.options.min_breakpoints),
                  TablePrinter::Pct(d.measured_risk),
                  std::to_string(d.probes),
                  d.met_target ? "safe" : "STILL UNSAFE AT CAP"});
  }
  return table.ToString("Hardening recommendations (Section 5.4 recipe)");
}

}  // namespace popp
