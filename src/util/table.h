#ifndef POPP_UTIL_TABLE_H_
#define POPP_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

/// \file
/// Fixed-width text table printer used by the experiment binaries to
/// regenerate the paper's tables with aligned, copy-paste-friendly output.

namespace popp {

/// Accumulates rows of string cells and prints them with column-fitted
/// widths, an optional title line, and a header separator, e.g.
///
///   === Figure 8: Statistics of Attributes ===
///   attr | dynamic range width | # distinct | ...
///   -----+---------------------+------------+ ...
///   #1   | 2000                | 1978       | ...
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a data row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with `digits` decimal places.
  static std::string Fmt(double value, int digits = 2);

  /// Convenience: formats a fraction as a percentage string, e.g. "12.5%".
  static std::string Pct(double fraction, int digits = 1);

  /// Renders the table to a string. If `title` is non-empty it is printed
  /// first as "=== title ===".
  std::string ToString(const std::string& title = "") const;

  /// Prints ToString(title) to stdout.
  void Print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace popp

#endif  // POPP_UTIL_TABLE_H_
