#ifndef POPP_UTIL_CRC64_H_
#define POPP_UTIL_CRC64_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// CRC-64 checksums for artifact integrity (key files, serialized trees,
/// stream-release manifests).
///
/// The variant is CRC-64/XZ (reflected ECMA-182 polynomial, init and
/// final xor 0xFFFFFFFFFFFFFFFF) — the same parameterization xz-utils
/// ships, chosen because it detects all burst errors up to 64 bits and
/// its reference vectors are widely published ("123456789" ->
/// 0x995DC9BBDF1939FA, pinned in util_test). Table-driven, byte at a
/// time; fast enough that checksumming is never the bottleneck next to
/// the disk.

namespace popp {

/// CRC-64/XZ of `bytes`.
uint64_t Crc64(std::string_view bytes);

/// Incremental CRC-64/XZ over a byte stream: Update in any split,
/// `value()` at any point equals Crc64 of everything fed so far.
class Crc64Stream {
 public:
  void Update(std::string_view bytes);
  uint64_t value() const { return state_ ^ kXorOut; }
  size_t bytes_fed() const { return bytes_fed_; }

 private:
  static constexpr uint64_t kXorOut = 0xFFFFFFFFFFFFFFFFull;
  uint64_t state_ = kXorOut;
  size_t bytes_fed_ = 0;
};

/// Canonical 16-lower-hex-digit rendering used by every on-disk footer
/// and manifest ("995dc9bbdf1939fa").
std::string Crc64Hex(uint64_t crc);

/// Parses the Crc64Hex form. Returns false on anything that is not
/// exactly 16 hex digits.
bool ParseCrc64Hex(std::string_view text, uint64_t* crc);

}  // namespace popp

#endif  // POPP_UTIL_CRC64_H_
