#ifndef POPP_UTIL_STATUS_H_
#define POPP_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

/// \file
/// Lightweight error-handling primitives for the popp library.
///
/// Following the project style (no exceptions in library code), there are
/// two distinct mechanisms:
///  * `POPP_CHECK` / `POPP_DCHECK` — invariant checks for programmer errors;
///    failure aborts the process with a diagnostic.
///  * `popp::Status` / `popp::Result<T>` — recoverable failures (I/O,
///    malformed configuration) that callers are expected to handle.

namespace popp {

/// Coarse error category attached to a failed Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  /// An artifact failed an integrity check (truncation, bit corruption, a
  /// failed CRC, a malformed on-disk document): the bytes exist but cannot
  /// be trusted. Distinct from kIoError (the OS failed to move bytes) so
  /// callers — and the CLI exit-code taxonomy — can tell "disk problem"
  /// from "corrupt/hostile artifact".
  kDataLoss,
  kInternal,
  /// The operation could not be served right now but may succeed if
  /// retried: a deadline expired, an admission queue was full, or a
  /// supervised worker was quarantined after exhausting its restart
  /// budget. Appended after kInternal so the numeric values of the other
  /// codes — which travel as a u8 in the popp-serve wire protocol — are
  /// unchanged.
  kUnavailable,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Value-semantic success-or-error result without a payload.
///
/// A default-constructed Status is OK. Failed statuses carry a code and a
/// free-form message suitable for logging. Status is cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a failed status; `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status plus a value on success (a minimal `expected`-like type).
///
/// Callers must check `ok()` before calling `value()`; accessing the value
/// of a failed Result is a checked programmer error.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a failed status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return value_;
  }
  T& value() & {
    AbortIfNotOk();
    return value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(value_);
  }

 private:
  void AbortIfNotOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "popp: Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

namespace internal {
/// Aborts the process after printing a check-failure diagnostic.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

}  // namespace popp

/// Aborts with a diagnostic if `cond` is false. Always enabled.
#define POPP_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::popp::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                 \
  } while (0)

/// Like POPP_CHECK but appends a streamed message, e.g.
/// `POPP_CHECK_MSG(i < n, "index " << i << " out of range " << n);`
#define POPP_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream popp_check_oss_;                                  \
      popp_check_oss_ << stream_expr;                                      \
      ::popp::internal::CheckFailed(__FILE__, __LINE__, #cond,             \
                                    popp_check_oss_.str());                \
    }                                                                      \
  } while (0)

/// Debug-only invariant check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define POPP_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define POPP_DCHECK(cond) POPP_CHECK(cond)
#endif

/// Early-returns the status if it is not OK.
#define POPP_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::popp::Status popp_status_ = (expr);   \
    if (!popp_status_.ok()) {               \
      return popp_status_;                  \
    }                                       \
  } while (0)

#endif  // POPP_UTIL_STATUS_H_
