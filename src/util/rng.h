#ifndef POPP_UTIL_RNG_H_
#define POPP_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

/// \file
/// Deterministic random number generation for popp.
///
/// Every randomized component of the library (breakpoint selection,
/// transformation choice, knowledge-point sampling, attack trials, synthetic
/// data generation) takes an explicit `Rng&`, so experiments are exactly
/// reproducible from a seed and independent of the platform's
/// std::random distributions (whose outputs are not standardized).

namespace popp {

/// xoshiro256** generator with a splitmix64 seeding sequence.
///
/// Small, fast, and with well-studied statistical quality; output is
/// identical on every platform for a given seed.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in sorted order.
  /// Requires k <= n. Uses Floyd's algorithm: O(k) expected draws.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Forks an independent child generator (useful for per-trial streams).
  /// Mutates this generator (advances it by one draw).
  Rng Fork();

  /// Forks the `index`-th child of this generator *without* mutating it.
  /// Distinct indices give independent-looking streams, and the child
  /// depends only on (current state, index) — never on how many other
  /// children were forked or in what order. This is the primitive behind
  /// popp's deterministic parallelism: task i uses Fork(i), so results are
  /// bit-identical at any thread count.
  Rng Fork(uint64_t index) const;

 private:
  uint64_t state_[4];
};

}  // namespace popp

#endif  // POPP_UTIL_RNG_H_
