#ifndef POPP_UTIL_STATS_H_
#define POPP_UTIL_STATS_H_

#include <cstddef>
#include <vector>

/// \file
/// Small numerical-statistics helpers used by the risk harness and the
/// experiment drivers (medians over randomized trials, summary rows).

namespace popp {

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; returns 0 for n < 2.
double SampleStdDev(const std::vector<double>& xs);

/// Median (average of the two middle order statistics for even n).
/// Returns 0 for an empty input. Does not modify the input.
double Median(std::vector<double> xs);

/// Linear-interpolation quantile, q in [0, 1]. Returns 0 for empty input.
double Quantile(std::vector<double> xs, double q);

/// Minimum / maximum; both require a non-empty input.
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Five-number-style summary of a sample.
struct Summary {
  size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
};

/// Computes a Summary of `xs` (all zeros for an empty sample).
Summary Summarize(const std::vector<double>& xs);

}  // namespace popp

#endif  // POPP_UTIL_STATS_H_
