#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/status.h"

namespace popp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  POPP_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  POPP_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string TablePrinter::Pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string TablePrinter::ToString(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += " | ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    line += "\n";
    return line;
  };

  std::string out;
  if (!title.empty()) {
    out += "=== " + title + " ===\n";
  }
  out += render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) sep += "-+-";
    sep.append(widths[c], '-');
  }
  out += sep + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void TablePrinter::Print(const std::string& title) const {
  std::fputs(ToString(title).c_str(), stdout);
}

}  // namespace popp
