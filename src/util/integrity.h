#ifndef POPP_UTIL_INTEGRITY_H_
#define POPP_UTIL_INTEGRITY_H_

#include <string>
#include <string_view>

#include "util/status.h"

/// \file
/// The integrity footer shared by every popp artifact format (popp-plan v2,
/// popp-tree v2, stream manifests).
///
/// A footered document is:
///
///     <payload bytes, ending in '\n'>
///     footer <decimal payload length> <16-hex-digit CRC-64/XZ>\n
///
/// The footer is the last line; the payload is every byte before it. Length
/// catches truncation (the cheap, common corruption), the CRC catches bit
/// rot and partial overwrites. Verification failures are `kDataLoss` — the
/// bytes arrived but cannot be trusted — distinct from `kIoError`.

namespace popp {

/// Appends the integrity footer line to `payload` (which must end in '\n')
/// and returns the footered document.
std::string WithIntegrityFooter(std::string payload);

/// Splits a document into payload + footer and verifies both length and
/// CRC. On success returns a view of the payload inside `text`.
///
/// If no footer line is present, sets `*had_footer = false` and returns the
/// whole text unverified — the caller decides whether a footer was required
/// (v2 formats) or optional (legacy v1). A present-but-malformed or
/// mismatching footer is always `kDataLoss` with an actionable message
/// naming what disagreed.
Result<std::string_view> VerifyIntegrityFooter(std::string_view text,
                                               bool* had_footer);

}  // namespace popp

#endif  // POPP_UTIL_INTEGRITY_H_
