#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace popp {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  POPP_CHECK_MSG(q >= 0.0 && q <= 1.0, "Quantile: q=" << q);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Min(const std::vector<double>& xs) {
  POPP_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  POPP_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.n = xs.size();
  s.mean = Mean(xs);
  s.stddev = SampleStdDev(xs);
  s.min = Min(xs);
  s.p25 = Quantile(xs, 0.25);
  s.median = Quantile(xs, 0.50);
  s.p75 = Quantile(xs, 0.75);
  s.max = Max(xs);
  return s;
}

}  // namespace popp
