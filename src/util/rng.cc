#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace popp {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
  // A state of all zeros would be a fixed point; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ull;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  POPP_CHECK_MSG(lo <= hi, "UniformInt: lo=" << lo << " > hi=" << hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~uint64_t{0} / span) * span;
  uint64_t draw = Next();
  while (draw >= limit) {
    draw = Next();
  }
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  POPP_CHECK_MSG(lo < hi, "Uniform: lo=" << lo << " >= hi=" << hi);
  return lo + (hi - lo) * Uniform01();
}

double Rng::Gaussian(double mean, double stddev) {
  // Box–Muller; draw u1 away from 0 to keep log finite.
  double u1 = Uniform01();
  while (u1 <= 0.0) {
    u1 = Uniform01();
  }
  const double u2 = Uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * M_PI * u2);
}

bool Rng::Bernoulli(double p) {
  POPP_CHECK_MSG(p >= 0.0 && p <= 1.0, "Bernoulli: p=" << p);
  return Uniform01() < p;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  POPP_CHECK_MSG(k <= n, "SampleIndices: k=" << k << " > n=" << n);
  // Floyd's algorithm yields a uniform k-subset with k draws.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (!chosen.insert(t).second) {
      chosen.insert(j);
    }
  }
  std::vector<size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

Rng Rng::Fork(uint64_t index) const {
  // Mix the full 256-bit state with the index through splitmix64 so that
  // children of distinct indices (and of distinct parents) decorrelate,
  // without advancing the parent.
  uint64_t x = index;
  uint64_t seed = SplitMix64(x);
  for (uint64_t s : state_) {
    x ^= s;
    seed = SplitMix64(x) ^ Rotl(seed, 23);
  }
  return Rng(seed);
}

}  // namespace popp
