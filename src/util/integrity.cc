#include "util/integrity.h"

#include <cstdio>
#include <sstream>

#include "util/crc64.h"

namespace popp {
namespace {

constexpr std::string_view kFooterWord = "footer ";

/// Parses a non-negative decimal with no sign, no leading zeros games —
/// strict on purpose, the footer is machine-written.
bool ParseDecimal(std::string_view token, size_t* out) {
  if (token.empty() || token.size() > 19) return false;
  size_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<size_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string WithIntegrityFooter(std::string payload) {
  POPP_CHECK_MSG(!payload.empty() && payload.back() == '\n',
                 "integrity footer payload must end in a newline");
  const uint64_t crc = Crc64(payload);
  std::ostringstream footer;
  footer << kFooterWord << payload.size() << " " << Crc64Hex(crc) << "\n";
  payload += footer.str();
  return payload;
}

Result<std::string_view> VerifyIntegrityFooter(std::string_view text,
                                               bool* had_footer) {
  *had_footer = false;
  // The footer is the last line; find its start. A document that *begins*
  // with "footer" has no payload and is malformed anyway.
  const size_t nl = text.rfind("\nfooter ");
  if (nl == std::string_view::npos) return text;
  *had_footer = true;
  const std::string_view payload = text.substr(0, nl + 1);
  std::string_view line = text.substr(nl + 1);
  line.remove_prefix(kFooterWord.size());
  if (line.empty() || line.back() != '\n') {
    return Status::DataLoss(
        "malformed integrity footer (no trailing newline) — file truncated "
        "mid-footer?");
  }
  line.remove_suffix(1);
  const size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    return Status::DataLoss("malformed integrity footer line");
  }
  size_t stated_len = 0;
  if (!ParseDecimal(line.substr(0, space), &stated_len)) {
    return Status::DataLoss("malformed integrity footer length field");
  }
  uint64_t stated_crc = 0;
  if (!ParseCrc64Hex(line.substr(space + 1), &stated_crc)) {
    return Status::DataLoss("malformed integrity footer checksum field");
  }
  if (stated_len != payload.size()) {
    std::ostringstream oss;
    oss << "integrity footer length mismatch: footer says " << stated_len
        << " bytes, payload has " << payload.size()
        << " — file truncated or partially overwritten";
    return Status::DataLoss(oss.str());
  }
  const uint64_t actual = Crc64(payload);
  if (actual != stated_crc) {
    std::ostringstream oss;
    oss << "integrity checksum mismatch: footer says " << Crc64Hex(stated_crc)
        << ", payload hashes to " << Crc64Hex(actual) << " — file corrupted";
    return Status::DataLoss(oss.str());
  }
  return payload;
}

}  // namespace popp
