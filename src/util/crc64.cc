#include "util/crc64.h"

#include <array>

namespace popp {
namespace {

/// Reflected ECMA-182 polynomial (0x42F0E1EBA9EA3693 bit-reversed).
constexpr uint64_t kPoly = 0xC96C5795D7870F42ull;

std::array<uint64_t, 256> MakeTable() {
  std::array<uint64_t, 256> table{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint64_t, 256>& Table() {
  static const std::array<uint64_t, 256> table = MakeTable();
  return table;
}

uint64_t Advance(uint64_t state, std::string_view bytes) {
  const auto& table = Table();
  for (const char c : bytes) {
    state = table[(state ^ static_cast<uint8_t>(c)) & 0xFF] ^ (state >> 8);
  }
  return state;
}

}  // namespace

uint64_t Crc64(std::string_view bytes) {
  return Advance(0xFFFFFFFFFFFFFFFFull, bytes) ^ 0xFFFFFFFFFFFFFFFFull;
}

void Crc64Stream::Update(std::string_view bytes) {
  state_ = Advance(state_, bytes);
  bytes_fed_ += bytes.size();
}

std::string Crc64Hex(uint64_t crc) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[crc & 0xF];
    crc >>= 4;
  }
  return out;
}

bool ParseCrc64Hex(std::string_view text, uint64_t* crc) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *crc = value;
  return true;
}

}  // namespace popp
