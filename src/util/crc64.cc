#include "util/crc64.h"

#include <array>
#include <cstring>

namespace popp {
namespace {

/// Reflected ECMA-182 polynomial (0x42F0E1EBA9EA3693 bit-reversed).
constexpr uint64_t kPoly = 0xC96C5795D7870F42ull;

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
/// table[k][b] advances the contribution of a byte that sits k positions
/// deeper in the stream, so eight input bytes fold in a single step.
/// Produces bit-identical CRCs to the one-table loop (same polynomial,
/// same reflection) at roughly 6x the throughput — which matters now
/// that every serve frame and popp-cols container is CRC-guarded
/// end-to-end.
using SliceTables = std::array<std::array<uint64_t, 256>, 8>;

SliceTables MakeTables() {
  SliceTables tables{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (size_t i = 0; i < 256; ++i) {
      const uint64_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

const SliceTables& Tables() {
  static const SliceTables tables = MakeTables();
  return tables;
}

uint64_t Advance(uint64_t state, std::string_view bytes) {
  const auto& t = Tables();
  const char* p = bytes.data();
  size_t len = bytes.size();
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The folded load maps stream byte 0 onto the low state byte, which
  // only lines up on little-endian hosts; others take the byte loop.
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);  // bytes in stream order (little-endian)
    state ^= chunk;
    state = t[7][state & 0xFF] ^ t[6][(state >> 8) & 0xFF] ^
            t[5][(state >> 16) & 0xFF] ^ t[4][(state >> 24) & 0xFF] ^
            t[3][(state >> 32) & 0xFF] ^ t[2][(state >> 40) & 0xFF] ^
            t[1][(state >> 48) & 0xFF] ^ t[0][(state >> 56) & 0xFF];
    p += 8;
    len -= 8;
  }
#endif
  for (; len > 0; ++p, --len) {
    state = t[0][(state ^ static_cast<uint8_t>(*p)) & 0xFF] ^ (state >> 8);
  }
  return state;
}

}  // namespace

uint64_t Crc64(std::string_view bytes) {
  return Advance(0xFFFFFFFFFFFFFFFFull, bytes) ^ 0xFFFFFFFFFFFFFFFFull;
}

void Crc64Stream::Update(std::string_view bytes) {
  state_ = Advance(state_, bytes);
  bytes_fed_ += bytes.size();
}

std::string Crc64Hex(uint64_t crc) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[crc & 0xF];
    crc >>= 4;
  }
  return out;
}

bool ParseCrc64Hex(std::string_view text, uint64_t* crc) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *crc = value;
  return true;
}

}  // namespace popp
