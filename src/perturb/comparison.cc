#include "perturb/comparison.h"

#include <cmath>

#include "data/summary.h"
#include "tree/compare.h"
#include "util/status.h"

namespace popp {

PerturbationImpact MeasurePerturbationImpact(const Dataset& data,
                                             const PerturbOptions& perturb,
                                             const BuildOptions& tree,
                                             double rho_fraction, Rng& rng) {
  POPP_CHECK(data.NumRows() > 0);
  PerturbationImpact impact;

  const Dataset released = PerturbDataset(data, perturb, rng);

  impact.unchanged_fraction.resize(data.NumAttributes());
  impact.within_rho_fraction.resize(data.NumAttributes());
  for (size_t attr = 0; attr < data.NumAttributes(); ++attr) {
    impact.unchanged_fraction[attr] = FractionUnchanged(data, released, attr);
    const AttributeSummary summary =
        AttributeSummary::FromDataset(data, attr);
    const double rho =
        rho_fraction * (summary.MaxValue() - summary.MinValue());
    size_t within = 0;
    for (size_t r = 0; r < data.NumRows(); ++r) {
      if (std::fabs(released.Value(r, attr) - data.Value(r, attr)) <= rho) {
        ++within;
      }
    }
    impact.within_rho_fraction[attr] =
        static_cast<double>(within) / static_cast<double>(data.NumRows());
  }

  const DecisionTreeBuilder builder(tree);
  const DecisionTree original_tree = builder.Build(data);
  const DecisionTree perturbed_tree = builder.Build(released);

  impact.original_accuracy = original_tree.Accuracy(data);
  impact.perturbed_tree_accuracy = perturbed_tree.Accuracy(data);
  impact.same_tree = StructurallyIdentical(original_tree, perturbed_tree);
  return impact;
}

}  // namespace popp
