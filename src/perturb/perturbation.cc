#include "perturb/perturbation.h"

#include <algorithm>
#include <cmath>

#include "data/summary.h"
#include "util/status.h"

namespace popp {

std::string ToString(PerturbOptions::Noise noise) {
  switch (noise) {
    case PerturbOptions::Noise::kUniform:
      return "uniform";
    case PerturbOptions::Noise::kGaussian:
      return "gaussian";
  }
  return "?";
}

Dataset PerturbDataset(const Dataset& data, const PerturbOptions& options,
                       Rng& rng) {
  POPP_CHECK_MSG(options.scale_fraction >= 0.0, "negative noise scale");
  Dataset out = data;
  for (size_t attr = 0; attr < data.NumAttributes(); ++attr) {
    const AttributeSummary summary =
        AttributeSummary::FromDataset(data, attr);
    if (summary.empty()) continue;
    const double width = summary.MaxValue() - summary.MinValue();
    const double scale = options.scale_fraction * std::max(width, 1.0);
    auto& col = out.MutableColumn(attr);
    for (auto& v : col) {
      double noise;
      switch (options.noise) {
        case PerturbOptions::Noise::kUniform:
          noise = scale > 0.0 ? rng.Uniform(-scale, scale) : 0.0;
          break;
        case PerturbOptions::Noise::kGaussian:
          noise = rng.Gaussian(0.0, scale);
          break;
        default:
          noise = 0.0;
      }
      double released = v + noise;
      if (options.round_to_int) {
        released = std::round(released);
      }
      if (options.clamp_to_range) {
        released = std::min(static_cast<double>(summary.MaxValue()),
                            std::max(static_cast<double>(summary.MinValue()),
                                     released));
      }
      v = released;
    }
  }
  return out;
}

double FractionUnchanged(const Dataset& original, const Dataset& perturbed,
                         size_t attr) {
  POPP_CHECK(original.NumRows() == perturbed.NumRows());
  if (original.NumRows() == 0) return 0.0;
  size_t same = 0;
  for (size_t r = 0; r < original.NumRows(); ++r) {
    if (original.Value(r, attr) == perturbed.Value(r, attr)) ++same;
  }
  return static_cast<double>(same) /
         static_cast<double>(original.NumRows());
}

}  // namespace popp
