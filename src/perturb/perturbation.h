#ifndef POPP_PERTURB_PERTURBATION_H_
#define POPP_PERTURB_PERTURBATION_H_

#include <string>

#include "data/dataset.h"
#include "util/rng.h"

/// \file
/// The random-perturbation baseline (Agrawal & Srikant, SIGMOD 2000): the
/// dominant data-collector-scenario transformation the paper contrasts
/// against. Each value is released as value + noise. Unlike the piecewise
/// framework it changes the mining outcome, and on discrete domains it
/// leaves a fraction of values unchanged (the paper cites ~30% retention
/// for some configurations of [8]).

namespace popp {

/// Additive-noise configuration.
struct PerturbOptions {
  enum class Noise {
    kUniform,   ///< noise uniform in [-scale, +scale]
    kGaussian,  ///< noise N(0, scale)
  };
  Noise noise = Noise::kUniform;

  /// Noise scale as a fraction of each attribute's dynamic-range width
  /// (AS00 parameterize privacy the same way).
  double scale_fraction = 0.25;

  /// Round perturbed values to integers (discrete-domain release, the
  /// setting in which values can survive unchanged).
  bool round_to_int = true;

  /// Clamp perturbed values into the attribute's original dynamic range.
  bool clamp_to_range = true;
};

/// Returns "uniform" or "gaussian".
std::string ToString(PerturbOptions::Noise noise);

/// Perturbs every attribute value of `data` (labels unchanged).
Dataset PerturbDataset(const Dataset& data, const PerturbOptions& options,
                       Rng& rng);

/// Fraction of tuples whose value of `attr` is identical in both datasets
/// — the "true value revealed" weakness of perturbation on discrete data.
double FractionUnchanged(const Dataset& original, const Dataset& perturbed,
                         size_t attr);

}  // namespace popp

#endif  // POPP_PERTURB_PERTURBATION_H_
