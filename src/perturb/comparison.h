#ifndef POPP_PERTURB_COMPARISON_H_
#define POPP_PERTURB_COMPARISON_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "perturb/perturbation.h"
#include "tree/builder.h"
#include "util/rng.h"

/// \file
/// Head-to-head comparison of the perturbation baseline against the
/// paper's three-pillar claims: perturbation changes the mining outcome
/// (no pillar 1), leaves discrete values unchanged (weak pillar 2), and
/// does not encode the outcome (no pillar 3).

namespace popp {

/// Per-attribute and outcome-level effects of perturbing one dataset.
struct PerturbationImpact {
  /// Fraction of values unchanged, per attribute (pillar-2 weakness).
  std::vector<double> unchanged_fraction;
  /// Naive disclosure: fraction of tuples whose released value already
  /// lies within rho of the truth (the hacker's zero-effort crack rate).
  std::vector<double> within_rho_fraction;
  /// Self-accuracy of the tree built on original data, evaluated on the
  /// original data (reference point).
  double original_accuracy = 0;
  /// Accuracy on the *original* data of the tree built on perturbed data
  /// (the outcome-change cost: how wrong the collector's tree is).
  double perturbed_tree_accuracy = 0;
  /// Whether the two trees are structurally identical (they essentially
  /// never are — that is the point).
  bool same_tree = false;
};

/// Perturbs `data`, builds trees on both versions, measures the impact.
/// `rho_fraction` is the crack radius as a fraction of each attribute's
/// dynamic-range width.
PerturbationImpact MeasurePerturbationImpact(const Dataset& data,
                                             const PerturbOptions& perturb,
                                             const BuildOptions& tree,
                                             double rho_fraction, Rng& rng);

}  // namespace popp

#endif  // POPP_PERTURB_COMPARISON_H_
