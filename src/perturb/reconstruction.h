#ifndef POPP_PERTURB_RECONSTRUCTION_H_
#define POPP_PERTURB_RECONSTRUCTION_H_

#include <vector>

#include "data/value.h"
#include "perturb/perturbation.h"

/// \file
/// Agrawal–Srikant Bayesian distribution reconstruction: given perturbed
/// values and the known noise distribution, iteratively re-estimate the
/// original value distribution. This is the reconstruction step AS00's
/// ByClass decision-tree algorithm relies on, and it quantifies how much
/// distributional information additive noise actually leaks — context for
/// the paper's point that perturbation trades outcome fidelity for privacy
/// while still leaking.

namespace popp {

/// A histogram over `num_bins` equal-width bins spanning [lo, hi].
struct BinnedDistribution {
  double lo = 0;
  double hi = 1;
  std::vector<double> density;  ///< probability mass per bin, sums to 1

  size_t NumBins() const { return density.size(); }
  double BinWidth() const {
    return (hi - lo) / static_cast<double>(density.size());
  }
  double BinCenter(size_t b) const {
    return lo + (static_cast<double>(b) + 0.5) * BinWidth();
  }
};

/// Builds the empirical histogram of `values` over [lo, hi].
BinnedDistribution EmpiricalDistribution(const std::vector<AttrValue>& values,
                                         double lo, double hi,
                                         size_t num_bins);

/// Reconstructs the original distribution from perturbed values using the
/// AS00 iterative Bayes update.
///
/// \param perturbed  released values (original + noise)
/// \param noise      the noise model the values were perturbed with; the
///                   reconstruction assumes the hacker knows it, as AS00 do
/// \param noise_scale absolute noise scale (same units as the values)
/// \param lo,hi      support of the original distribution
/// \param num_bins   histogram resolution
/// \param iterations Bayes-update sweeps (AS00 use a stopping criterion;
///                   a fixed small count converges in practice)
BinnedDistribution ReconstructDistribution(
    const std::vector<AttrValue>& perturbed, PerturbOptions::Noise noise,
    double noise_scale, double lo, double hi, size_t num_bins,
    size_t iterations = 8);

/// Total-variation distance between two distributions over the same bins:
/// 0.5 * sum |p_b - q_b|. Lower means the reconstruction recovered more.
double TotalVariation(const BinnedDistribution& p,
                      const BinnedDistribution& q);

}  // namespace popp

#endif  // POPP_PERTURB_RECONSTRUCTION_H_
