#include "perturb/reconstruction.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace popp {
namespace {

/// Noise density evaluated at displacement d.
double NoiseDensity(PerturbOptions::Noise noise, double scale, double d) {
  switch (noise) {
    case PerturbOptions::Noise::kUniform:
      if (scale <= 0.0) return d == 0.0 ? 1.0 : 0.0;
      return std::fabs(d) <= scale ? 1.0 / (2.0 * scale) : 0.0;
    case PerturbOptions::Noise::kGaussian: {
      if (scale <= 0.0) return d == 0.0 ? 1.0 : 0.0;
      const double z = d / scale;
      return std::exp(-0.5 * z * z) / (scale * std::sqrt(2.0 * M_PI));
    }
  }
  return 0.0;
}

void NormalizeInPlace(std::vector<double>& density) {
  double sum = 0.0;
  for (double d : density) sum += d;
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(density.size());
    std::fill(density.begin(), density.end(), uniform);
    return;
  }
  for (double& d : density) d /= sum;
}

}  // namespace

BinnedDistribution EmpiricalDistribution(const std::vector<AttrValue>& values,
                                         double lo, double hi,
                                         size_t num_bins) {
  POPP_CHECK(num_bins > 0);
  POPP_CHECK(lo < hi);
  BinnedDistribution dist;
  dist.lo = lo;
  dist.hi = hi;
  dist.density.assign(num_bins, 0.0);
  if (values.empty()) return dist;
  const double width = (hi - lo) / static_cast<double>(num_bins);
  for (AttrValue v : values) {
    const double clamped = std::min(hi, std::max(lo, static_cast<double>(v)));
    size_t b = static_cast<size_t>((clamped - lo) / width);
    b = std::min(b, num_bins - 1);
    dist.density[b] += 1.0;
  }
  NormalizeInPlace(dist.density);
  return dist;
}

BinnedDistribution ReconstructDistribution(
    const std::vector<AttrValue>& perturbed, PerturbOptions::Noise noise,
    double noise_scale, double lo, double hi, size_t num_bins,
    size_t iterations) {
  POPP_CHECK(num_bins > 0 && lo < hi);

  // Bin the released values once; the update only needs their histogram.
  const BinnedDistribution released =
      EmpiricalDistribution(perturbed, lo, hi, num_bins);

  // Precompute the noise kernel between bin centers: K[wb][ab].
  std::vector<std::vector<double>> kernel(num_bins,
                                          std::vector<double>(num_bins));
  for (size_t wb = 0; wb < num_bins; ++wb) {
    for (size_t ab = 0; ab < num_bins; ++ab) {
      kernel[wb][ab] = NoiseDensity(
          noise, noise_scale,
          released.BinCenter(wb) - released.BinCenter(ab));
    }
  }

  // AS00 iterative Bayes update, starting from the uniform prior:
  //   f^{j+1}(a) = sum_w P(w) * K(w,a) f^j(a) / sum_a' K(w,a') f^j(a').
  BinnedDistribution estimate;
  estimate.lo = lo;
  estimate.hi = hi;
  estimate.density.assign(num_bins, 1.0 / static_cast<double>(num_bins));
  std::vector<double> next(num_bins);
  for (size_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t wb = 0; wb < num_bins; ++wb) {
      if (released.density[wb] == 0.0) continue;
      double denom = 0.0;
      for (size_t ab = 0; ab < num_bins; ++ab) {
        denom += kernel[wb][ab] * estimate.density[ab];
      }
      if (denom <= 0.0) continue;
      for (size_t ab = 0; ab < num_bins; ++ab) {
        next[ab] += released.density[wb] * kernel[wb][ab] *
                    estimate.density[ab] / denom;
      }
    }
    estimate.density = next;
    NormalizeInPlace(estimate.density);
  }
  return estimate;
}

double TotalVariation(const BinnedDistribution& p,
                      const BinnedDistribution& q) {
  POPP_CHECK_MSG(p.NumBins() == q.NumBins(),
                 "distributions must share a bin grid");
  double tv = 0.0;
  for (size_t b = 0; b < p.NumBins(); ++b) {
    tv += std::fabs(p.density[b] - q.density[b]);
  }
  return 0.5 * tv;
}

}  // namespace popp
