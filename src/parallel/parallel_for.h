#ifndef POPP_PARALLEL_PARALLEL_FOR_H_
#define POPP_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "parallel/exec_policy.h"
#include "parallel/thread_pool.h"

/// \file
/// Deterministic parallel loops. These are the only constructs popp's
/// library code uses to go parallel; both guarantee bit-identical results
/// for every ExecPolicy because
///   * each index's work must be a pure function of the index (call sites
///     derive per-index RNG streams with Rng::Fork(index) and never share
///     a mutable generator), and
///   * all combining happens serially in index order after the parallel
///     phase (ParallelMapReduce), or not at all (ParallelFor writes to
///     index-addressed slots).

namespace popp {

/// Runs body(0..n-1) under `policy` (inline when the policy is serial,
/// otherwise on a transient ThreadPool). Exceptions: the smallest failing
/// index's exception is rethrown after all bodies finish.
void ParallelFor(const ExecPolicy& policy, size_t n,
                 const std::function<void(size_t)>& body);

/// Pool-reusing variant for hot loops: `pool == nullptr` means serial.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

/// Maps every index, then folds the mapped values **in index order** —
/// the fold is serial, so non-associative reductions (floating point
/// sums, first-wins tie-breaks) give bit-identical results at any thread
/// count. `T` must be default-constructible.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelMapReduce(const ExecPolicy& policy, size_t n, T init, MapFn map,
                    ReduceFn reduce) {
  std::vector<T> mapped(n);
  ParallelFor(policy, n, [&](size_t i) { mapped[i] = map(i); });
  T acc = std::move(init);
  for (size_t i = 0; i < n; ++i) {
    acc = reduce(std::move(acc), std::move(mapped[i]));
  }
  return acc;
}

}  // namespace popp

#endif  // POPP_PARALLEL_PARALLEL_FOR_H_
