#include "parallel/exec_policy.h"

#include <algorithm>
#include <thread>

namespace popp {

size_t ExecPolicy::ResolvedThreads() const {
  if (num_threads != 0) return num_threads;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace popp
