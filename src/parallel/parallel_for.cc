#include "parallel/parallel_for.h"

namespace popp {

void ParallelFor(const ExecPolicy& policy, size_t n,
                 const std::function<void(size_t)>& body) {
  const size_t threads = policy.ResolvedThreads();
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  pool.ForEach(n, body);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->ForEach(n, body);
}

}  // namespace popp
