#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/status.h"

namespace popp {
namespace {

/// The pool (if any) whose WorkerLoop owns the current thread.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  POPP_CHECK_MSG(num_threads >= 1, "ThreadPool needs at least one thread");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::OnWorkerThread() const { return current_pool == this; }

void ThreadPool::WorkerLoop() {
  current_pool = this;
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (OnWorkerThread()) {
    // Nested submit: run inline rather than enqueue-and-(maybe-)wait on
    // our own queue, which deadlocks once every worker blocks that way.
    packaged();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    POPP_CHECK_MSG(!shutdown_, "Submit on a shut-down ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::ForEach(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.size() <= 1 || OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::mutex failure_mutex;
  size_t failed_index = n;
  std::exception_ptr failure;

  const auto drain = [&] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (i < failed_index) {
          failed_index = i;
          failure = std::current_exception();
        }
      }
    }
  };

  // One drain task per worker (capped by n); the caller drains too, so a
  // pool busy with unrelated tasks cannot stall this loop.
  const size_t helpers = std::min(workers_.size(), n);
  std::vector<std::future<void>> done;
  done.reserve(helpers);
  for (size_t w = 0; w < helpers; ++w) {
    done.push_back(Submit(drain));
  }
  drain();
  for (auto& future : done) {
    future.get();  // drain() swallows body exceptions; nothing rethrows here
  }
  if (failure) {
    std::rethrow_exception(failure);
  }
}

}  // namespace popp
