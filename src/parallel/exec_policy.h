#ifndef POPP_PARALLEL_EXEC_POLICY_H_
#define POPP_PARALLEL_EXEC_POLICY_H_

#include <cstddef>

/// \file
/// Execution policy: how many threads a parallelizable popp operation may
/// use. Every parallel entry point in the library takes an ExecPolicy with
/// a **serial default**, and every one of them is *deterministic in the
/// policy*: the bits of the result are identical for any thread count,
/// because each unit of work derives its own RNG stream from its index
/// (Rng::Fork(index)) and writes to its own index-addressed slot. The
/// policy is therefore purely a performance knob — see DESIGN.md,
/// "Deterministic parallel execution".

namespace popp {

struct ExecPolicy {
  /// Number of worker threads; 0 means "use the hardware concurrency",
  /// 1 (the default) runs inline on the calling thread.
  size_t num_threads = 1;

  static ExecPolicy Serial() { return ExecPolicy{1}; }
  static ExecPolicy Hardware() { return ExecPolicy{0}; }

  /// The actual thread count: num_threads, or the detected hardware
  /// concurrency (at least 1) when num_threads is 0.
  size_t ResolvedThreads() const;

  /// True when work would run inline on the calling thread.
  bool IsSerial() const { return ResolvedThreads() <= 1; }
};

}  // namespace popp

#endif  // POPP_PARALLEL_EXEC_POLICY_H_
