#ifndef POPP_PARALLEL_THREAD_POOL_H_
#define POPP_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// A small fixed-size thread pool with no work stealing and no scheduling
/// cleverness — on purpose. popp's parallelism contract is that results
/// are bit-identical to serial execution for every thread count, which is
/// achieved at the call sites (index-derived RNG streams, index-addressed
/// output slots, index-ordered reduction), not in the scheduler; the pool
/// only has to run every task exactly once and propagate failures
/// deterministically.
///
/// Re-entrancy: a pool thread that submits to (or iterates on) its own
/// pool runs the work inline on itself instead of enqueueing. Blocking on
/// a queue from inside a worker is the classic self-deadlock of fixed
/// pools; inline execution keeps nested ParallelFor calls safe and — by
/// the determinism contract above — cannot change any result.

namespace popp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. The returned future rethrows whatever the task
  /// threw. Called from one of this pool's own workers, the task runs
  /// inline (see the re-entrancy note above) and the future is ready on
  /// return.
  std::future<void> Submit(std::function<void()> task);

  /// Runs body(0), ..., body(n-1) across the workers and blocks until all
  /// are done. Indices are claimed from a shared counter, so the
  /// assignment of index to thread is arbitrary — call sites must keep
  /// outputs index-addressed. If one or more bodies throw, the exception
  /// of the *smallest* failing index is rethrown (a deterministic choice;
  /// the others are discarded) after every body has finished. Runs inline
  /// when n <= 1 or when called from a worker of this pool.
  void ForEach(size_t n, const std::function<void(size_t)>& body);

  /// True when the calling thread is a worker of this pool.
  bool OnWorkerThread() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool shutdown_ = false;
};

}  // namespace popp

#endif  // POPP_PARALLEL_THREAD_POOL_H_
