#include "serve/protocol.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/crc64.h"

namespace popp::serve {
namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(u[0] | (u[1] << 8));
}

uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

/// Appends a u32-length-prefixed section.
void PutSection(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

/// Splits a u32-length-prefixed section off the front of `rest`.
Status TakeSection(std::string_view* rest, std::string* out,
                   const char* what) {
  if (rest->size() < 4) {
    return Status::DataLoss(std::string("request body truncated before ") +
                            what + " length");
  }
  const uint32_t len = GetU32(rest->data());
  rest->remove_prefix(4);
  if (rest->size() < len) {
    return Status::DataLoss(std::string("request body truncated inside ") +
                            what);
  }
  out->assign(rest->substr(0, len));
  rest->remove_prefix(len);
  return Status::Ok();
}

}  // namespace

const char* TagName(Tag tag) {
  switch (tag) {
    case Tag::kFit:
      return "fit";
    case Tag::kEncode:
      return "encode";
    case Tag::kDecode:
      return "decode";
    case Tag::kVerify:
      return "verify";
    case Tag::kRisk:
      return "risk";
    case Tag::kStats:
      return "stats";
    case Tag::kShutdown:
      return "shutdown";
    case Tag::kReply:
      return "reply";
    case Tag::kHealth:
      return "health";
  }
  return "unknown";
}

Result<Tag> ParseTag(std::string_view name) {
  for (const Tag tag :
       {Tag::kFit, Tag::kEncode, Tag::kDecode, Tag::kVerify, Tag::kRisk,
        Tag::kStats, Tag::kShutdown, Tag::kHealth}) {
    if (name == TagName(tag)) return tag;
  }
  return Status::InvalidArgument("unknown serve op '" + std::string(name) +
                                 "' (have: fit encode decode verify risk "
                                 "stats health shutdown)");
}

std::string EncodeFrame(Tag tag, std::string_view tenant,
                        std::string_view payload) {
  POPP_CHECK_MSG(tenant.size() <= UINT16_MAX,
                 "tenant name too long: " << tenant.size());
  POPP_CHECK_MSG(payload.size() <= UINT32_MAX - 12 - tenant.size(),
                 "frame payload too large for the u32 length prefix: "
                     << payload.size() << " bytes");
  std::string body;
  body.reserve(4 + tenant.size() + payload.size());
  body.push_back(static_cast<char>(kProtocolVersion));
  body.push_back(static_cast<char>(tag));
  PutU16(&body, static_cast<uint16_t>(tenant.size()));
  body.append(tenant);
  body.append(payload);

  std::string frame;
  frame.reserve(4 + body.size() + 8);
  PutU32(&frame, static_cast<uint32_t>(body.size() + 8));
  frame.append(body);
  PutU64(&frame, Crc64(body));
  return frame;
}

Result<Frame> DecodeFrame(std::string_view bytes, uint32_t max_frame_bytes) {
  if (bytes.size() < 4) {
    return Status::DataLoss("frame truncated: no length prefix");
  }
  const uint32_t frame_len = GetU32(bytes.data());
  if (frame_len > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(frame_len) + " exceeds the " +
        std::to_string(max_frame_bytes) + "-byte limit");
  }
  if (bytes.size() - 4 < frame_len) {
    return Status::DataLoss("frame truncated: length prefix promises " +
                            std::to_string(frame_len) + " bytes, got " +
                            std::to_string(bytes.size() - 4));
  }
  // 12 = version(1) + tag(1) + tenant_len(2) + crc(8).
  if (frame_len < 12) {
    return Status::DataLoss("frame too short for a body and CRC trailer");
  }
  const std::string_view body = bytes.substr(4, frame_len - 8);
  const uint64_t want_crc = GetU64(bytes.data() + 4 + body.size());
  if (Crc64(body) != want_crc) {
    return Status::DataLoss("frame CRC mismatch: computed " +
                            Crc64Hex(Crc64(body)) + ", frame carries " +
                            Crc64Hex(want_crc));
  }
  Frame frame;
  frame.version = static_cast<uint8_t>(body[0]);
  if (frame.version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: peer speaks v" +
        std::to_string(frame.version) + ", this build speaks v" +
        std::to_string(kProtocolVersion));
  }
  frame.tag = static_cast<Tag>(body[1]);
  const uint16_t tenant_len = GetU16(body.data() + 2);
  if (body.size() - 4 < tenant_len) {
    return Status::DataLoss("frame tenant field overruns the body");
  }
  frame.tenant.assign(body.substr(4, tenant_len));
  frame.payload.assign(body.substr(4 + tenant_len));
  return frame;
}

std::string RequestBody::Encode() const {
  std::string out;
  out.reserve(8 + options.size() + extra.size() + dataset.size());
  PutSection(&out, options);
  PutSection(&out, extra);
  out.append(dataset);
  return out;
}

Result<RequestBody> RequestBody::Decode(std::string_view payload) {
  RequestBody body;
  POPP_RETURN_IF_ERROR(TakeSection(&payload, &body.options, "options"));
  POPP_RETURN_IF_ERROR(TakeSection(&payload, &body.extra, "extra"));
  body.dataset.assign(payload);
  return body;
}

std::string ReplyBody::Encode() const {
  std::string out;
  out.reserve(5 + text.size() + body.size());
  out.push_back(static_cast<char>(code));
  PutSection(&out, text);
  out.append(body);
  return out;
}

Result<ReplyBody> ReplyBody::Decode(std::string_view payload) {
  if (payload.empty()) {
    return Status::DataLoss("reply payload is empty");
  }
  ReplyBody reply;
  reply.code = static_cast<StatusCode>(payload[0]);
  payload.remove_prefix(1);
  POPP_RETURN_IF_ERROR(TakeSection(&payload, &reply.text, "reply text"));
  reply.body.assign(payload);
  return reply;
}

namespace {

/// Reads exactly `want` bytes, polling in 100 ms slices so a drain request
/// can interrupt a blocked connection. `any_read` reports whether at least
/// one byte had arrived before an EOF.
Status ReadExact(int fd, char* buf, size_t want, const std::atomic<bool>* stop,
                 bool* any_read) {
  size_t got = 0;
  while (got < want) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::FailedPrecondition("read aborted: server is draining");
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket poll failed: ") +
                             ::strerror(errno));
    }
    if (ready == 0) continue;  // timeout slice; re-check stop
    const ssize_t n = ::read(fd, buf + got, want - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket read failed: ") +
                             ::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && !*any_read) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::DataLoss("peer closed the connection mid-frame");
    }
    got += static_cast<size_t>(n);
    *any_read = true;
  }
  return Status::Ok();
}

/// Writes exactly `want` bytes, mirroring ReadExact's 100 ms poll slices.
/// While `stop` is unset a full socket buffer just waits for the peer;
/// once `stop` is set a peer that is not consuming (POLLOUT never ready
/// within a slice) aborts, so a stalled reader cannot block a drain.
/// MSG_NOSIGNAL keeps a vanished peer an EPIPE on this connection instead
/// of a process-killing SIGPIPE — nothing in the daemon installs a
/// SIGPIPE handler, and the serve-client CLI must not need one either.
Status WriteExact(int fd, const char* buf, size_t want,
                  const std::atomic<bool>* stop) {
  size_t sent = 0;
  while (sent < want) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket poll failed: ") +
                             ::strerror(errno));
    }
    if (ready == 0) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        return Status::FailedPrecondition(
            "write aborted: server is draining and the peer stopped "
            "consuming");
      }
      continue;  // timeout slice; re-check stop
    }
    // MSG_DONTWAIT: a blocking send() on a stream socket queues the
    // whole remainder before returning, which would sleep past every
    // stop check on a stalled reader. Partial sends loop back through
    // the poll slice instead.
    const ssize_t n = ::send(fd, buf + sent, want - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IoError(std::string("socket write failed: ") +
                             ::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status SendFrame(int fd, Tag tag, std::string_view tenant,
                 std::string_view payload, const std::atomic<bool>* stop) {
  // Refuse gracefully before EncodeFrame's CHECK would abort: a reply
  // this large is a caller bug, but it must cost one connection, not the
  // daemon.
  if (tenant.size() > UINT16_MAX ||
      payload.size() > UINT32_MAX - 12 - tenant.size()) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(payload.size()) +
        " payload bytes overflows the u32 frame length prefix");
  }
  const std::string frame = EncodeFrame(tag, tenant, payload);
  return WriteExact(fd, frame.data(), frame.size(), stop);
}

Result<Frame> RecvFrame(int fd, const std::atomic<bool>* stop,
                        uint32_t max_frame_bytes) {
  char len_buf[4];
  bool any_read = false;
  POPP_RETURN_IF_ERROR(ReadExact(fd, len_buf, 4, stop, &any_read));
  const uint32_t frame_len = GetU32(len_buf);
  if (frame_len > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(frame_len) + " exceeds the " +
        std::to_string(max_frame_bytes) + "-byte limit");
  }
  std::string bytes;
  bytes.resize(4 + frame_len);
  std::memcpy(bytes.data(), len_buf, 4);
  POPP_RETURN_IF_ERROR(
      ReadExact(fd, bytes.data() + 4, frame_len, stop, &any_read));
  return DecodeFrame(bytes, max_frame_bytes);
}

}  // namespace popp::serve
