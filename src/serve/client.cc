#include "serve/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/file.h"

namespace popp::serve {

ServeClient::~ServeClient() { Close(); }

Status ServeClient::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path must be 1.." +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes: '" + socket_path + "'");
  }
  if (!fault::FileExists(socket_path)) {
    return Status::NotFound("no popp-serve socket at '" + socket_path +
                            "' (is the daemon running?)");
  }
  ::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           ::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string detail = ::strerror(errno);
    Close();
    return Status::FailedPrecondition(
        "cannot connect to '" + socket_path + "': " + detail +
        " (the daemon may have exited; a stale socket file is reclaimed "
        "by the next popp-serve start)");
  }
  return Status::Ok();
}

Result<ReplyBody> ServeClient::Call(Tag tag, const std::string& tenant,
                                    const RequestBody& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("Call() before a successful Connect()");
  }
  POPP_RETURN_IF_ERROR(SendFrame(fd_, tag, tenant, request.Encode()));
  auto frame = RecvFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (frame.value().tag != Tag::kReply) {
    return Status::DataLoss("peer answered with tag " +
                            std::string(TagName(frame.value().tag)) +
                            " instead of a reply frame");
  }
  return ReplyBody::Decode(frame.value().payload);
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace popp::serve
