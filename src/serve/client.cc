#include "serve/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "fault/file.h"
#include "resil/deadline.h"

namespace popp::serve {

uint64_t ParseRetryAfterMs(const std::string& reply_text) {
  constexpr const char kKey[] = "retry-after-ms ";
  const size_t pos = reply_text.find(kKey);
  if (pos == std::string::npos) return 0;
  const char* start = reply_text.c_str() + pos + sizeof(kKey) - 1;
  char* stop = nullptr;
  const unsigned long long parsed = std::strtoull(start, &stop, 10);
  return stop == start ? 0 : static_cast<uint64_t>(parsed);
}

ServeClient::~ServeClient() { Close(); }

Status ServeClient::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path must be 1.." +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes: '" + socket_path + "'");
  }
  if (!fault::FileExists(socket_path)) {
    return Status::NotFound("no popp-serve socket at '" + socket_path +
                            "' (is the daemon running?)");
  }
  ::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           ::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string detail = ::strerror(errno);
    Close();
    return Status::FailedPrecondition(
        "cannot connect to '" + socket_path + "': " + detail +
        " (the daemon may have exited; a stale socket file is reclaimed "
        "by the next popp-serve start)");
  }
  return Status::Ok();
}

Result<ReplyBody> ServeClient::Call(Tag tag, const std::string& tenant,
                                    const RequestBody& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("Call() before a successful Connect()");
  }
  POPP_RETURN_IF_ERROR(SendFrame(fd_, tag, tenant, request.Encode()));
  auto frame = RecvFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (frame.value().tag != Tag::kReply) {
    return Status::DataLoss("peer answered with tag " +
                            std::string(TagName(frame.value().tag)) +
                            " instead of a reply frame");
  }
  return ReplyBody::Decode(frame.value().payload);
}

Result<ReplyBody> ServeClient::CallWithRetry(Tag tag,
                                             const std::string& tenant,
                                             const RequestBody& request,
                                             const RetryOptions& retry) {
  const resil::Deadline deadline = retry.deadline_ms > 0
                                       ? resil::Deadline::After(retry.deadline_ms)
                                       : resil::Deadline::None();
  const resil::RetryPolicy policy(retry.backoff, retry.seed);
  Result<ReplyBody> reply = Call(tag, tenant, request);
  for (size_t attempt = 0; attempt < retry.max_retries; ++attempt) {
    if (!reply.ok()) return reply;  // transport error: connection unknown
    if (reply.value().code != StatusCode::kUnavailable) return reply;
    // An explicit shed. Wait the larger of the server's hint and the
    // deterministic backoff step, but never past the client deadline —
    // when the deadline cannot fit the wait, hand back the server's own
    // shed diagnostic instead of burning an attempt that must fail.
    const uint64_t wait_ms = std::max(ParseRetryAfterMs(reply.value().text),
                                      policy.DelayMs(attempt));
    if (deadline.has_deadline() && wait_ms >= deadline.RemainingMs()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    reply = Call(tag, tenant, request);
  }
  return reply;
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace popp::serve
