#include "serve/plan_cache.h"

#include <cstdio>
#include <utility>

#include "util/crc64.h"
#include "util/status.h"

namespace popp::serve {
namespace {

/// 17-significant-digit rendering, the same discipline the plan serializer
/// uses: distinct doubles render distinctly, so distinct knob settings
/// cannot collide into one policy fingerprint.
std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendDelimited(std::string* out, const std::string& piece) {
  out->append(std::to_string(piece.size()));
  out->push_back(':');
  out->append(piece);
}

}  // namespace

uint64_t SchemaFingerprint(const Schema& schema) {
  // Length-delimited so ("ab","c") and ("a","bc") cannot collide.
  std::string canon = "schema/";
  canon += std::to_string(schema.NumAttributes());
  canon.push_back('/');
  for (const std::string& name : schema.attribute_names()) {
    AppendDelimited(&canon, name);
  }
  canon += "/classes/";
  canon += std::to_string(schema.NumClasses());
  canon.push_back('/');
  for (const std::string& name : schema.class_names()) {
    AppendDelimited(&canon, name);
  }
  return Crc64(canon);
}

std::string PolicyFingerprint(const PiecewiseOptions& o) {
  std::string s = "policy=" + ToString(o.policy);
  s += " w=" + std::to_string(o.min_breakpoints);
  s += " minmono=" + std::to_string(o.min_mono_width);
  s += " exploit=" + std::to_string(o.exploit_monochromatic ? 1 : 0);
  s += " anti=" + std::to_string(o.global_anti_monotone ? 1 : 0);
  s += " shape=" + std::to_string(static_cast<int>(o.family.forced_shape));
  s += " fam=";
  s += o.family.allow_linear ? 'L' : '-';
  s += o.family.allow_polynomial ? 'P' : '-';
  s += o.family.allow_log ? 'G' : '-';
  s += o.family.allow_sqrt_log ? 'S' : '-';
  s += " pow=" + FmtDouble(o.family.min_power) + ".." +
       FmtDouble(o.family.max_power);
  s += " alpha=" + FmtDouble(o.family.min_alpha) + ".." +
       FmtDouble(o.family.max_alpha);
  s += " antiprob=" + FmtDouble(o.family.anti_monotone_prob);
  s += " width=" + FmtDouble(o.out_width_factor_min) + ".." +
       FmtDouble(o.out_width_factor_max);
  s += " offset=" + FmtDouble(o.out_offset_min) + ".." +
       FmtDouble(o.out_offset_max);
  s += " gap=" + FmtDouble(o.gap_fraction);
  s += " skew=" + FmtDouble(o.width_split_skew);
  return s;
}

std::string PlanKey::Render() const {
  return Crc64Hex(schema_fp) + "/" + std::to_string(seed) + "/" + policy;
}

PlanKey PlanKey::Make(const Schema& schema, uint64_t seed,
                      const PiecewiseOptions& options) {
  return PlanKey{SchemaFingerprint(schema), seed, PolicyFingerprint(options)};
}

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  POPP_CHECK_MSG(capacity_ >= 1, "plan cache capacity must be >= 1");
  stats_.capacity = capacity_;
}

const CachedPlan* PlanCache::Lookup(const PlanKey& key) {
  const auto it = entries_.find(key.Render());
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  return &it->second->plan;
}

const CachedPlan* PlanCache::Insert(const PlanKey& key, CachedPlan plan) {
  std::string rendered = key.Render();
  const auto it = entries_.find(rendered);
  if (it != entries_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.resident = entries_.size();
    return &it->second->plan;
  }
  lru_.push_front(Entry{rendered, std::move(plan)});
  entries_[std::move(rendered)] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().rendered_key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.resident = entries_.size();
  return &lru_.front().plan;
}

}  // namespace popp::serve
