#ifndef POPP_SERVE_SERVER_H_
#define POPP_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "parallel/thread_pool.h"
#include "resil/admission.h"
#include "serve/ops.h"
#include "serve/workspace.h"
#include "util/status.h"

/// \file
/// The popp-serve daemon: a persistent multi-tenant custodian service on a
/// Unix domain socket.
///
/// Architecture: the calling thread runs the accept loop; every accepted
/// connection is handed to the existing `ThreadPool`, whose worker runs
/// that connection's request loop — one in-flight request per connection,
/// with parallelism *inside* a request supplied by the request's own
/// ExecPolicy (parallel column encode). The pool size therefore bounds
/// concurrent connections, not throughput per request.
///
/// Lifecycle contract (the graceful parts the CLI's one-shot model never
/// needed):
///  * SIGTERM/SIGINT (via `InstallSignalHandlers` + `RequestShutdown`) or
///    a kShutdown request drains: the accept loop stops, in-flight
///    requests finish, blocked connection reads abort on the drain flag,
///    the socket file is unlinked, and Serve() returns exit code 0.
///  * Startup refuses a socket path another live daemon is bound to with
///    an actionable `kFailedPrecondition` (CLI exit 2, kUsage) naming the
///    path; a stale socket file whose daemon is gone (connect refused) is
///    reclaimed silently.
///  * A malformed, truncated or CRC-damaged frame poisons only its own
///    connection (error reply when possible, then close); the daemon
///    survives and keeps serving every other connection. Replies are
///    written with MSG_NOSIGNAL, so a peer that disappears mid-reply is
///    an EPIPE on that connection, never a process-killing SIGPIPE; a
///    peer that stops consuming its reply during a drain is aborted
///    within one poll slice, so it cannot block shutdown either.
///
/// Overload contract (resil/admission.h): every op except kShutdown and
/// kHealth passes through a bounded AdmissionController before any work
/// happens. A request that cannot be admitted gets an explicit
/// kUnavailable reply with a "retry-after-ms" hint on the same
/// connection — overload is always answered, never a silent hang — and
/// the connection stays open so the client can retry. `health` bypasses
/// admission entirely: liveness must be observable exactly when the
/// daemon is saturated.

namespace popp::serve {

/// Daemon configuration.
struct ServeOptions {
  std::string socket_path;
  /// Worker threads for the connection pool (>= 1).
  size_t num_threads = 4;
  /// Per-tenant LRU capacity of the hot plan cache.
  size_t cache_capacity = 64;
  /// Per-request `threads` option ceiling.
  size_t max_request_threads = 16;
  /// Largest frame a peer may send.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Root directory for request `save` targets (confined per tenant:
  /// <save_dir>/<tenant>/<relative path>). Empty (the default) disables
  /// server-side saves entirely — a socket peer must not get arbitrary
  /// writes with the daemon's filesystem privileges.
  std::string save_dir;
  /// Concurrent-execution cap across all tenants; 0 means "match
  /// num_threads" (one executing request per connection worker).
  size_t max_inflight = 0;
  /// Bounded admission queue; the max_queue+1'th waiter is shed with an
  /// explicit kUnavailable reply instead of queued.
  size_t max_queue = 16;
  /// Per-tenant concurrent-execution cap; 0 disables it.
  size_t per_tenant_inflight = 0;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on the socket path (reclaiming a dead socket file,
  /// refusing a live one). After an OK Start the socket exists and
  /// clients may connect.
  Status Start();

  /// Runs the accept loop until shutdown is requested, then drains and
  /// removes the socket. Returns the process exit code (0 on a graceful
  /// shutdown). `log` receives one-line lifecycle messages.
  int Serve(std::ostream& log);

  /// Triggers a graceful drain from any thread (signal handlers and the
  /// kShutdown op call this). Async-signal-safe: one atomic store.
  void RequestShutdown() {
    shutdown_.store(true, std::memory_order_relaxed);
  }

  bool ShutdownRequested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

  const ServeOptions& options() const { return options_; }

  /// Routes SIGTERM and SIGINT to `server`->RequestShutdown() (pass
  /// nullptr to detach before destroying the server). The handler is a
  /// single relaxed store into the drained-by-poll flag, so it is
  /// async-signal-safe.
  static void InstallSignalHandlers(Server* server);

 private:
  /// One connection's request loop (runs on a pool worker).
  void HandleConnection(int fd);

  ServeOptions options_;
  OpConfig op_config_;
  WorkspaceRegistry registry_;
  resil::AdmissionController admission_;
  ThreadPool pool_;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> rejected_frames_{0};
  int listen_fd_ = -1;
};

/// Convenience driver for the popp-serve binary and tests: Start (mapping
/// a refused socket onto the CLI usage exit code 2), install signal
/// handlers, Serve, detach handlers. Lifecycle lines go to `out`, errors
/// to `err`.
int RunServer(const ServeOptions& options, std::ostream& out,
              std::ostream& err);

}  // namespace popp::serve

#endif  // POPP_SERVE_SERVER_H_
