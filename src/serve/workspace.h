#ifndef POPP_SERVE_WORKSPACE_H_
#define POPP_SERVE_WORKSPACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/plan_cache.h"

/// \file
/// Per-tenant workspaces and the named-workspace registry.
///
/// A Workspace is everything the daemon holds for one tenant: the tenant's
/// plan cache and its request counters. The registry maps tenant names to
/// workspaces, creating them on first use — the named-workspace pattern of
/// caffe2's core/workspace (a process-global map of isolated state bags
/// addressed by string), reduced to what a custodian service needs.
///
/// Isolation contract: every request addresses exactly one workspace (the
/// tenant named in its frame), each workspace has its own lock and its own
/// LRU, and the stats op reports only the addressed workspace's counters.
/// A tenant therefore cannot read another tenant's plans, hit its cache,
/// evict its entries, or observe its eviction timing — the side channels a
/// shared cache would open between mutually distrustful custodians.

namespace popp::serve {

/// One tenant's isolated state bag. Thread-compatible; the owning
/// registry hands out stable pointers and callers serialize through
/// `mutex()` (one lock per tenant: concurrent tenants never contend).
class Workspace {
 public:
  explicit Workspace(std::string name, size_t cache_capacity)
      : name_(std::move(name)), cache_(cache_capacity) {}

  const std::string& name() const { return name_; }
  PlanCache& cache() { return cache_; }
  std::mutex& mutex() { return mutex_; }

  /// Request counter (guarded by mutex()).
  uint64_t requests_served = 0;

  /// Renders the stats reply body for this tenant (call under mutex()).
  std::string RenderStats() const;

 private:
  std::string name_;
  std::mutex mutex_;
  PlanCache cache_;
};

/// The process-wide tenant-name -> Workspace map. Thread-safe; pointers
/// returned by GetOrCreate stay valid for the registry's lifetime
/// (workspaces are never dropped while the daemon runs).
class WorkspaceRegistry {
 public:
  /// `cache_capacity` is the per-tenant LRU capacity for workspaces this
  /// registry creates.
  explicit WorkspaceRegistry(size_t cache_capacity)
      : cache_capacity_(cache_capacity) {}

  /// Returns the tenant's workspace, creating it on first use. The empty
  /// tenant name is legal and names the default workspace.
  Workspace* GetOrCreate(const std::string& tenant);

  /// Number of workspaces created so far.
  size_t size() const;

 private:
  size_t cache_capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Workspace>> workspaces_;
};

}  // namespace popp::serve

#endif  // POPP_SERVE_WORKSPACE_H_
