#ifndef POPP_SERVE_PROTOCOL_H_
#define POPP_SERVE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

/// \file
/// The popp-serve wire protocol: length-prefixed, CRC-guarded binary
/// frames over a Unix domain socket.
///
/// Every message — request or reply — is one frame:
///
///     u32 frame_len      byte count of everything after this field
///     body:
///       u8  version      (= kProtocolVersion)
///       u8  tag          request/reply tag (Tag below)
///       u16 tenant_len
///       tenant bytes     the tenant (workspace) name; empty on replies
///       payload bytes    frame_len - 12 - tenant_len
///     u64 crc64(body)    CRC-64/XZ (util/crc64) over the body bytes
///
/// All integers are little-endian. The CRC covers the body only (not the
/// length prefix): a reader that got the right byte count but damaged
/// bytes sees a CRC mismatch (`kDataLoss`); a reader that cannot even
/// assemble `frame_len` bytes sees truncation (`kDataLoss`); an
/// unsupported version byte is `kInvalidArgument` carrying both versions,
/// so a client from the future gets an actionable diagnostic instead of a
/// checksum coincidence. `frame_len` is bounded by `max_frame_bytes`
/// (default 1 GiB) so a garbage prefix cannot drive an allocation.
///
/// Request payloads for the dataset-carrying ops (fit, encode, decode,
/// verify, risk) share one shape, `RequestBody`:
///
///     u32 options_len · options text ("key value\n" lines)
///     u32 extra_len   · extra bytes  (decode: the popp-tree document)
///     dataset bytes   (CSV text or a popp-cols container; the server
///                      sniffs the 'poppcols' magic, so the PR 7 zero-copy
///                      read path is the hot path)
///
/// Reply payloads share `ReplyBody`:
///
///     u8  code        StatusCode of the operation (0 = OK)
///     u32 text_len    · human-readable summary / diagnostic
///     body bytes      binary result (released CSV, plan or tree document)
///
/// The frame codec is pure byte-string in/out so the malformed-input tests
/// need no socket; `SendFrame`/`RecvFrame` wrap it for a connected fd.

namespace popp::serve {

inline constexpr uint8_t kProtocolVersion = 1;

/// Hard ceiling a reader enforces on frame_len before allocating.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1u << 30;

/// Frame tags. Requests are dispatched through the op registry
/// (serve/ops.h); kReply marks every server response.
enum class Tag : uint8_t {
  kFit = 1,       ///< fit (or look up) a plan; reply body = plan document
  kEncode = 2,    ///< encode a dataset; reply body = released CSV bytes
  kDecode = 3,    ///< decode a mined tree; reply body = tree document
  kVerify = 4,    ///< end-to-end no-outcome-change check
  kRisk = 5,      ///< pre-release risk report
  kStats = 6,     ///< per-tenant cache/request statistics
  kShutdown = 7,  ///< drain in-flight requests and exit 0
  kReply = 8,     ///< server -> client response
  kHealth = 9,    ///< liveness + admission stats; bypasses admission
};

/// Stable lower-case name ("fit", "encode", ...) used in diagnostics and
/// by the serve-client CLI.
const char* TagName(Tag tag);

/// Parses a serve-client op name; kInvalidArgument for unknown names.
Result<Tag> ParseTag(std::string_view name);

/// One decoded frame.
struct Frame {
  uint8_t version = kProtocolVersion;
  Tag tag = Tag::kReply;
  std::string tenant;
  std::string payload;
};

/// Serializes a frame (length prefix, body, CRC trailer).
std::string EncodeFrame(Tag tag, std::string_view tenant,
                        std::string_view payload);

/// Decodes one complete frame from `bytes` (which must hold exactly one
/// frame). Truncation and CRC damage are `kDataLoss`; a version mismatch
/// is `kInvalidArgument`; an oversize length is `kInvalidArgument`.
Result<Frame> DecodeFrame(std::string_view bytes,
                          uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

/// The shared request-payload shape (see the file comment).
struct RequestBody {
  std::string options;  ///< "key value\n" lines
  std::string extra;    ///< op-specific second section (decode: tree doc)
  std::string dataset;  ///< CSV bytes or a popp-cols container

  std::string Encode() const;
  static Result<RequestBody> Decode(std::string_view payload);
};

/// The shared reply-payload shape.
struct ReplyBody {
  StatusCode code = StatusCode::kOk;
  std::string text;  ///< human-readable summary or error diagnostic
  std::string body;  ///< binary result

  bool ok() const { return code == StatusCode::kOk; }
  std::string Encode() const;
  static Result<ReplyBody> Decode(std::string_view payload);

  static ReplyBody Ok(std::string text, std::string body = {}) {
    return ReplyBody{StatusCode::kOk, std::move(text), std::move(body)};
  }
  static ReplyBody Error(const Status& status) {
    return ReplyBody{status.code(), status.ToString(), {}};
  }
};

/// Writes one frame to a connected socket fd, looping over partial writes
/// in 100 ms poll slices. Writes use MSG_NOSIGNAL, so a peer that closed
/// mid-reply is an `kIoError` (EPIPE) on this connection — never a
/// process-wide SIGPIPE. When `stop` is non-null and becomes true while
/// the peer is not consuming (the socket stays unwritable for a slice),
/// the write aborts with `kFailedPrecondition` so a stalled reader cannot
/// block the server's drain. An oversize tenant/payload (frame length
/// would overflow the u32 prefix) is `kInvalidArgument` without writing.
Status SendFrame(int fd, Tag tag, std::string_view tenant,
                 std::string_view payload,
                 const std::atomic<bool>* stop = nullptr);

/// Reads one frame from a connected socket fd. Blocks in 100 ms poll
/// slices; when `stop` is non-null and becomes true the read aborts with
/// `kFailedPrecondition` (the server's drain path closes idle connections
/// this way). A clean EOF before any byte is `kNotFound` ("peer closed");
/// EOF mid-frame is `kDataLoss` (a truncated frame).
Result<Frame> RecvFrame(int fd, const std::atomic<bool>* stop = nullptr,
                        uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace popp::serve

#endif  // POPP_SERVE_PROTOCOL_H_
