#ifndef POPP_SERVE_PLAN_CACHE_H_
#define POPP_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "data/schema.h"
#include "transform/compiled.h"
#include "transform/piecewise.h"
#include "transform/plan.h"

/// \file
/// The daemon's hot compiled-plan cache.
///
/// Refitting a plan is the dominant per-request cost of the CLI; the
/// serving shape fits once and answers every later request with one
/// compiled-kernel pass. Plans are keyed by (schema fingerprint, seed,
/// policy):
///
///  * schema fingerprint — CRC-64 over a canonical rendering of the
///    relation's attribute names and class dictionary, so two relations
///    only share a plan when they agree on shape and vocabulary;
///  * seed — the encoding seed (a different seed is a different key by
///    definition of the release);
///  * policy — a canonical rendering of every PiecewiseOptions knob, so
///    any change to the transform configuration misses the cache instead
///    of silently reusing a plan fitted under different rules.
///
/// Eviction is strict LRU over a fixed capacity. Each cache belongs to
/// exactly one tenant workspace (serve/workspace.h) and is guarded by the
/// workspace lock, so tenants can neither observe each other's plans nor
/// each other's eviction timing — capacity pressure from tenant A never
/// evicts (or reorders) tenant B's entries.

namespace popp::serve {

/// CRC-64 fingerprint of a schema's canonical rendering (attribute names
/// and class names, length-delimited, in schema order).
uint64_t SchemaFingerprint(const Schema& schema);

/// Canonical single-line rendering of every PiecewiseOptions knob. Equal
/// renderings guarantee equal fitting behavior for equal (data, seed).
std::string PolicyFingerprint(const PiecewiseOptions& options);

/// The cache key (see the file comment).
struct PlanKey {
  uint64_t schema_fp = 0;
  uint64_t seed = 0;
  std::string policy;

  /// The flat map/diagnostic form ("<schema_fp hex>/<seed>/<policy>").
  std::string Render() const;

  static PlanKey Make(const Schema& schema, uint64_t seed,
                      const PiecewiseOptions& options);
};

/// A fitted plan held hot: the exact TransformPlan plus its compiled form
/// (the one-pass encode kernels of PR 4).
struct CachedPlan {
  TransformPlan plan;
  CompiledPlan compiled;
};

/// Counters the stats op reports (per tenant).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t resident = 0;
  size_t capacity = 0;
};

/// A strict-LRU map from PlanKey to CachedPlan. Not internally locked:
/// the owning workspace serializes access (one lock per tenant keeps
/// tenants' timing observably independent).
class PlanCache {
 public:
  /// `capacity` >= 1 entries are kept resident.
  explicit PlanCache(size_t capacity);

  /// Returns the cached plan for `key` and marks it most-recently-used,
  /// or nullptr on a miss. Counts a hit or a miss.
  const CachedPlan* Lookup(const PlanKey& key);

  /// Inserts (or replaces) the plan for `key` as most-recently-used,
  /// evicting the least-recently-used entry when over capacity. Returns
  /// the resident entry.
  const CachedPlan* Insert(const PlanKey& key, CachedPlan plan);

  size_t size() const { return entries_.size(); }
  const PlanCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string rendered_key;
    CachedPlan plan;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  PlanCacheStats stats_;
};

}  // namespace popp::serve

#endif  // POPP_SERVE_PLAN_CACHE_H_
