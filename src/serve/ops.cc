#include "serve/ops.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "core/custodian.h"
#include "core/report.h"
#include "data/cols.h"
#include "data/csv.h"
#include "parallel/exec_policy.h"
#include "transform/serialize.h"
#include "transform/tree_decode.h"
#include "tree/serialize.h"
#include "util/rng.h"

namespace popp::serve {
namespace {

/// The parsed option surface shared by every op (see ops.h).
struct OpOptions {
  PiecewiseOptions transform;
  uint64_t seed = 1;
  ExecPolicy exec;
  bool use_compiled = true;
  size_t trials = 31;
  std::string save_path;
  /// Parsed for validation only: the server anchors the deadline at frame
  /// receipt (ExtractDeadlineMs) and threads it in via RequestContext.
  uint64_t deadline_ms = UINT64_MAX;
};

Result<OpOptions> ParseOptions(const std::string& text,
                               const OpConfig& config) {
  OpOptions options;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t space = line.find(' ');
    const std::string key = line.substr(0, space);
    const std::string value =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (key == "seed") {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "policy") {
      if (value == "none") {
        options.transform.policy = BreakpointPolicy::kNone;
      } else if (value == "bp") {
        options.transform.policy = BreakpointPolicy::kChooseBP;
      } else if (value == "maxmp") {
        options.transform.policy = BreakpointPolicy::kChooseMaxMP;
      } else {
        return Status::InvalidArgument("unknown policy '" + value + "'");
      }
    } else if (key == "breakpoints") {
      options.transform.min_breakpoints =
          std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "anti") {
      options.transform.global_anti_monotone = true;
    } else if (key == "threads") {
      // 0 keeps the CLI's documented meaning — all hardware threads —
      // and then the serve-side ceiling applies exactly as it does to an
      // explicit count. The released bytes do not depend on the choice.
      const size_t requested = std::strtoull(value.c_str(), nullptr, 10);
      const size_t resolved = requested == 0
                                  ? ExecPolicy::Hardware().ResolvedThreads()
                                  : requested;
      options.exec.num_threads = std::min(
          std::max<size_t>(resolved, 1), config.max_request_threads);
    } else if (key == "no-compiled") {
      options.use_compiled = false;
    } else if (key == "trials") {
      options.trials = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "save") {
      options.save_path = value;
    } else if (key == "deadline-ms") {
      options.deadline_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument("unknown request option '" + key + "'");
    }
  }
  return options;
}

/// Resolves a client-supplied `save` target inside the daemon's save
/// root. The client may only name a relative path, which is confined to
/// <save_dir>/<tenant>/ — the tenants are mutually distrustful, so a
/// socket peer must be able to clobber neither another tenant's saved
/// artifacts nor anything else the daemon's user can write.
Result<std::string> ResolveSavePath(const OpConfig& config,
                                    const std::string& tenant,
                                    const std::string& requested) {
  if (config.save_dir.empty()) {
    return Status::InvalidArgument(
        "server-side save is disabled: this daemon was started without "
        "--save-dir, so requests may not name filesystem paths");
  }
  const auto component_ok = [](std::string_view c) {
    return !c.empty() && c != "." && c != ".." &&
           c.find('\0') == std::string_view::npos;
  };
  if (!component_ok(tenant) || tenant.find('/') != std::string::npos) {
    return Status::InvalidArgument(
        "tenant '" + tenant +
        "' cannot own a save directory (a saving tenant needs a non-empty "
        "name that is not '.', '..' or slash-separated)");
  }
  if (requested.empty() || requested.front() == '/') {
    return Status::InvalidArgument(
        "save target '" + requested +
        "' must be relative: server-side saves are confined to the "
        "daemon's --save-dir, per tenant");
  }
  for (size_t begin = 0; begin <= requested.size();) {
    size_t end = requested.find('/', begin);
    if (end == std::string::npos) end = requested.size();
    if (!component_ok(std::string_view(requested).substr(begin,
                                                         end - begin))) {
      return Status::InvalidArgument(
          "save target '" + requested +
          "' may not contain empty, '.' or '..' components");
    }
    begin = end + 1;
  }
  const std::filesystem::path full =
      std::filesystem::path(config.save_dir) / tenant / requested;
  std::error_code ec;
  std::filesystem::create_directories(full.parent_path(), ec);
  if (ec) {
    return Status::IoError("cannot create save directory '" +
                           full.parent_path().string() +
                           "': " + ec.message());
  }
  return full.string();
}

/// Phase-boundary deadline check: a non-null return is the kUnavailable
/// reply to send instead of doing any more work. `phase` names the
/// boundary for the diagnostic ("after parse", "before save", ...).
std::optional<ReplyBody> DeadlineReply(const RequestContext& context,
                                       const char* phase) {
  if (!context.deadline.Expired()) return std::nullopt;
  return ReplyBody::Error(Status::Unavailable(
      std::string("deadline exceeded ") + phase +
      "; the request was abandoned at this phase boundary"));
}

/// Parses the request's dataset bytes, sniffing the popp-cols magic so the
/// binary container takes the PR 7 zero-copy validation path and anything
/// else goes through the incremental CSV tokenizer.
Result<Dataset> ParseRequestDataset(const std::string& bytes) {
  if (bytes.empty()) {
    return Status::InvalidArgument("request carries no dataset bytes");
  }
  if (LooksLikeCols(bytes)) return ParseCols(bytes);
  return ParseCsv(bytes);
}

/// Fetches the tenant's plan for (data's schema, seed, policy), fitting
/// and caching on a miss. Must be called under the workspace lock. The
/// bool reports whether the plan was served hot.
std::pair<const CachedPlan*, bool> GetOrFitPlan(Workspace& workspace,
                                                const Dataset& data,
                                                const OpOptions& options) {
  const PlanKey key =
      PlanKey::Make(data.schema(), options.seed, options.transform);
  if (const CachedPlan* hit = workspace.cache().Lookup(key)) {
    return {hit, true};
  }
  // The exact CLI fitting sequence: a fresh Rng seeded with the request
  // seed, consumed only by plan creation — byte-identical to `popp
  // encode --seed N` at every thread count.
  Rng rng(options.seed);
  CachedPlan cached;
  cached.plan =
      TransformPlan::Create(data, options.transform, rng, options.exec);
  cached.compiled = CompiledPlan::Compile(cached.plan);
  return {workspace.cache().Insert(key, std::move(cached)), false};
}

ReplyBody OpFit(Workspace& workspace, const RequestBody& request,
                const OpConfig& config, const RequestContext& context) {
  auto options = ParseOptions(request.options, config);
  if (!options.ok()) return ReplyBody::Error(options.status());
  auto data = ParseRequestDataset(request.dataset);
  if (!data.ok()) return ReplyBody::Error(data.status());
  if (auto late = DeadlineReply(context, "after parsing the request")) {
    return *late;
  }

  std::lock_guard<std::mutex> lock(workspace.mutex());
  ++workspace.requests_served;
  const auto [cached, hot] = GetOrFitPlan(workspace, data.value(),
                                          options.value());
  const std::string document = SerializePlan(cached->plan);
  if (auto late = DeadlineReply(context, "after fitting the plan")) {
    return *late;
  }
  if (!options.value().save_path.empty()) {
    auto target = ResolveSavePath(config, workspace.name(),
                                  options.value().save_path);
    if (!target.ok()) return ReplyBody::Error(target.status());
    // Artifact persistence goes through the hardened atomic writer
    // (SavePlan stages in <path>.tmp and renames), so a daemon killed
    // mid-save never leaves a partial key under the final name.
    const Status saved = SavePlan(cached->plan, target.value());
    if (!saved.ok()) return ReplyBody::Error(saved);
    // A save that out-waited the deadline still produced a complete,
    // atomic artifact — but the client has moved on: tell it so.
    if (auto late = DeadlineReply(context, "after the server-side save")) {
      return *late;
    }
  }
  const PlanKey key = PlanKey::Make(data.value().schema(),
                                    options.value().seed,
                                    options.value().transform);
  return ReplyBody::Ok(
      std::string(hot ? "cached" : "fitted") + " plan " + key.Render() +
          " (" + std::to_string(data.value().NumAttributes()) +
          " attributes)",
      document);
}

ReplyBody OpEncode(Workspace& workspace, const RequestBody& request,
                   const OpConfig& config, const RequestContext& context) {
  auto options = ParseOptions(request.options, config);
  if (!options.ok()) return ReplyBody::Error(options.status());
  auto data = ParseRequestDataset(request.dataset);
  if (!data.ok()) return ReplyBody::Error(data.status());
  if (auto late = DeadlineReply(context, "after parsing the request")) {
    return *late;
  }

  std::lock_guard<std::mutex> lock(workspace.mutex());
  ++workspace.requests_served;
  const auto [cached, hot] = GetOrFitPlan(workspace, data.value(),
                                          options.value());
  if (auto late = DeadlineReply(context, "after the plan fit")) {
    return *late;
  }
  const Dataset released =
      options.value().use_compiled
          ? cached->compiled.EncodeDataset(data.value(), options.value().exec)
          : cached->plan.EncodeDataset(data.value(), options.value().exec);
  // The reply mirrors the request framing: a popp-cols request gets a
  // popp-cols release (the binary container is ~50x cheaper to serialize
  // than CSV, which is where warm-request latency goes otherwise); a CSV
  // request gets the byte-identical CSV that `popp encode` would write.
  if (auto late = DeadlineReply(context, "after the encode")) {
    return *late;
  }
  const bool cols_framed = LooksLikeCols(request.dataset);
  return ReplyBody::Ok("encoded " + std::to_string(released.NumRows()) +
                           " rows x " +
                           std::to_string(released.NumAttributes()) +
                           " attributes (" + (hot ? "hot" : "cold") +
                           " plan, " + (cols_framed ? "cols" : "csv") +
                           " reply)",
                       cols_framed ? SerializeCols(released)
                                   : ToCsvString(released));
}

ReplyBody OpDecode(Workspace& workspace, const RequestBody& request,
                   const OpConfig& config, const RequestContext& context) {
  auto options = ParseOptions(request.options, config);
  if (!options.ok()) return ReplyBody::Error(options.status());
  if (request.extra.empty()) {
    return ReplyBody::Error(Status::InvalidArgument(
        "decode needs the mined tree document in the request's extra "
        "section"));
  }
  auto tree = ParseTree(request.extra);
  if (!tree.ok()) return ReplyBody::Error(tree.status());
  auto data = ParseRequestDataset(request.dataset);
  if (!data.ok()) return ReplyBody::Error(data.status());
  if (auto late = DeadlineReply(context, "after parsing the request")) {
    return *late;
  }

  std::lock_guard<std::mutex> lock(workspace.mutex());
  ++workspace.requests_served;
  const auto [cached, hot] = GetOrFitPlan(workspace, data.value(),
                                          options.value());
  const DecisionTree decoded =
      DecodeTreeWithData(tree.value(), cached->plan, data.value());
  if (auto late = DeadlineReply(context, "after the decode")) {
    return *late;
  }
  return ReplyBody::Ok("decoded tree (" +
                           std::to_string(decoded.NumLeaves()) +
                           " leaves, " + (hot ? "hot" : "cold") + " plan)",
                       SerializeTree(decoded));
}

ReplyBody OpVerify(Workspace& workspace, const RequestBody& request,
                   const OpConfig& config, const RequestContext& context) {
  auto options = ParseOptions(request.options, config);
  if (!options.ok()) return ReplyBody::Error(options.status());
  auto data = ParseRequestDataset(request.dataset);
  if (!data.ok()) return ReplyBody::Error(data.status());
  if (auto late = DeadlineReply(context, "after parsing the request")) {
    return *late;
  }

  std::lock_guard<std::mutex> lock(workspace.mutex());
  ++workspace.requests_served;
  CustodianOptions custodian_options;
  custodian_options.seed = options.value().seed;
  custodian_options.transform = options.value().transform;
  custodian_options.exec = options.value().exec;
  custodian_options.use_compiled = options.value().use_compiled;
  const Custodian custodian(std::move(data).value(), custodian_options);
  std::string detail;
  const bool ok = custodian.VerifyNoOutcomeChange(&detail);
  if (auto late = DeadlineReply(context, "after the verification")) {
    return *late;
  }
  return ReplyBody::Ok(ok ? "no-outcome-change: VERIFIED"
                          : "no-outcome-change: FAILED",
                       detail);
}

ReplyBody OpRisk(Workspace& workspace, const RequestBody& request,
                 const OpConfig& config, const RequestContext& context) {
  auto options = ParseOptions(request.options, config);
  if (!options.ok()) return ReplyBody::Error(options.status());
  auto data = ParseRequestDataset(request.dataset);
  if (!data.ok()) return ReplyBody::Error(data.status());
  if (auto late = DeadlineReply(context, "after parsing the request")) {
    return *late;
  }

  std::lock_guard<std::mutex> lock(workspace.mutex());
  ++workspace.requests_served;
  CustodianOptions custodian_options;
  custodian_options.seed = options.value().seed;
  custodian_options.transform = options.value().transform;
  custodian_options.exec = options.value().exec;
  custodian_options.use_compiled = options.value().use_compiled;
  const Custodian custodian(std::move(data).value(), custodian_options);
  ReportOptions report_options;
  report_options.num_trials = options.value().trials;
  report_options.seed = custodian_options.seed + 1;  // the CLI's discipline
  report_options.exec = custodian_options.exec;
  std::string report =
      RenderRiskReport(BuildRiskReport(custodian, report_options));
  if (auto late = DeadlineReply(context, "after the risk report")) {
    return *late;
  }
  return ReplyBody::Ok(
      "risk report (" + std::to_string(report_options.num_trials) +
          " trials)",
      std::move(report));
}

ReplyBody OpStats(Workspace& workspace, const RequestBody& request,
                  const OpConfig& config, const RequestContext& context) {
  (void)request;
  (void)config;
  (void)context;  // stats is cheap enough that a deadline check would only
                  // cost a reply the client already paid for
  std::lock_guard<std::mutex> lock(workspace.mutex());
  ++workspace.requests_served;
  return ReplyBody::Ok("stats for tenant '" + workspace.name() + "'",
                       workspace.RenderStats());
}

}  // namespace

const std::map<Tag, OpHandler>& OpRegistry() {
  static const std::map<Tag, OpHandler>* registry = [] {
    auto* m = new std::map<Tag, OpHandler>;
    (*m)[Tag::kFit] = {TagName(Tag::kFit), OpFit};
    (*m)[Tag::kEncode] = {TagName(Tag::kEncode), OpEncode};
    (*m)[Tag::kDecode] = {TagName(Tag::kDecode), OpDecode};
    (*m)[Tag::kVerify] = {TagName(Tag::kVerify), OpVerify};
    (*m)[Tag::kRisk] = {TagName(Tag::kRisk), OpRisk};
    (*m)[Tag::kStats] = {TagName(Tag::kStats), OpStats};
    return m;
  }();
  return *registry;
}

ReplyBody DispatchOp(Tag tag, Workspace& workspace, const RequestBody& request,
                     const OpConfig& config, const RequestContext& context) {
  const auto it = OpRegistry().find(tag);
  if (it == OpRegistry().end()) {
    return ReplyBody::Error(Status::InvalidArgument(
        "request tag " + std::to_string(static_cast<int>(tag)) +
        " is not a registered operation"));
  }
  return it->second.run(workspace, request, config, context);
}

uint64_t ExtractDeadlineMs(const std::string& options_text) {
  // A line-oriented peek, not a full parse: admission must not reject a
  // request the op itself would have diagnosed better.
  size_t pos = 0;
  while (pos < options_text.size()) {
    size_t end = options_text.find('\n', pos);
    if (end == std::string::npos) end = options_text.size();
    const std::string_view line(options_text.data() + pos, end - pos);
    constexpr std::string_view kKey = "deadline-ms ";
    if (line.size() > kKey.size() && line.substr(0, kKey.size()) == kKey) {
      const std::string value(line.substr(kKey.size()));
      char* stop = nullptr;
      const unsigned long long parsed = std::strtoull(value.c_str(), &stop, 10);
      if (stop != value.c_str()) return static_cast<uint64_t>(parsed);
    }
    pos = end + 1;
  }
  return UINT64_MAX;
}

}  // namespace popp::serve
