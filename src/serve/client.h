#ifndef POPP_SERVE_CLIENT_H_
#define POPP_SERVE_CLIENT_H_

#include <string>

#include "serve/protocol.h"
#include "util/status.h"

/// \file
/// Client side of the popp-serve protocol: connect to a daemon's Unix
/// socket, issue requests, read replies. One Call is one round trip; the
/// connection stays open across calls (the daemon serves one in-flight
/// request per connection, so sequential calls reuse the hot path without
/// re-connecting). Used by the `popp serve-client` CLI subcommand, the
/// serve tests, the serve_vs_cli oracle and bench_serve.

namespace popp::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to a daemon. A missing socket file is `kNotFound`; a
  /// refused connection (stale socket, daemon gone) is
  /// `kFailedPrecondition` — both name the path.
  Status Connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }

  /// One request/reply round trip. Transport or framing failures are the
  /// Status; an operation-level failure arrives as an OK Result whose
  /// ReplyBody carries the server's StatusCode and diagnostic.
  Result<ReplyBody> Call(Tag tag, const std::string& tenant,
                         const RequestBody& request);

  void Close();

 private:
  int fd_ = -1;
};

}  // namespace popp::serve

#endif  // POPP_SERVE_CLIENT_H_
