#ifndef POPP_SERVE_CLIENT_H_
#define POPP_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "resil/retry.h"
#include "serve/protocol.h"
#include "util/status.h"

/// \file
/// Client side of the popp-serve protocol: connect to a daemon's Unix
/// socket, issue requests, read replies. One Call is one round trip; the
/// connection stays open across calls (the daemon serves one in-flight
/// request per connection, so sequential calls reuse the hot path without
/// re-connecting). Used by the `popp serve-client` CLI subcommand, the
/// serve tests, the serve_vs_cli oracle and bench_serve.
///
/// `CallWithRetry` layers the overload contract on top of Call: a shed
/// reply (kUnavailable) is retried on the same connection after the
/// larger of the server's "retry-after-ms" hint and the deterministic
/// backoff schedule (resil::RetryPolicy), bounded by both an attempt
/// budget and the client-side deadline. Every other reply — success or
/// any other error — returns immediately; retrying a non-overload error
/// would just repeat it.

namespace popp::serve {

/// Client-side retry/deadline knobs (`popp serve-client --retry
/// --deadline-ms`).
struct RetryOptions {
  /// Additional attempts after the first (0 = no retry, the default).
  size_t max_retries = 0;
  /// Overall client-side deadline for the whole retry loop in ms; 0 means
  /// unbounded. Also forwarded to the server as the request's
  /// "deadline-ms" option by the CLI (the option text, not this struct,
  /// is what travels).
  uint64_t deadline_ms = 0;
  /// Backoff schedule between attempts; deterministic in `seed`.
  resil::BackoffOptions backoff;
  uint64_t seed = 1;
};

/// Parses a "retry-after-ms N" hint out of a shed reply's text; returns 0
/// when the reply carries none.
uint64_t ParseRetryAfterMs(const std::string& reply_text);

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to a daemon. A missing socket file is `kNotFound`; a
  /// refused connection (stale socket, daemon gone) is
  /// `kFailedPrecondition` — both name the path.
  Status Connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }

  /// One request/reply round trip. Transport or framing failures are the
  /// Status; an operation-level failure arrives as an OK Result whose
  /// ReplyBody carries the server's StatusCode and diagnostic.
  Result<ReplyBody> Call(Tag tag, const std::string& tenant,
                         const RequestBody& request);

  /// Call, retrying explicit shed replies (kUnavailable) up to
  /// `retry.max_retries` additional attempts. The wait before attempt k is
  /// max(server retry-after-ms hint, RetryPolicy::DelayMs(k)), clipped to
  /// the remaining client deadline; when the deadline cannot fit another
  /// wait+attempt the last shed reply is returned as-is (the caller sees
  /// the server's own diagnostic, exit 6 in the CLI). Transport errors are
  /// never retried — the connection state is unknown.
  Result<ReplyBody> CallWithRetry(Tag tag, const std::string& tenant,
                                  const RequestBody& request,
                                  const RetryOptions& retry);

  void Close();

 private:
  int fd_ = -1;
};

}  // namespace popp::serve

#endif  // POPP_SERVE_CLIENT_H_
