#ifndef POPP_SERVE_OPS_H_
#define POPP_SERVE_OPS_H_

#include <functional>
#include <map>
#include <string>

#include "resil/deadline.h"
#include "serve/protocol.h"
#include "serve/workspace.h"

/// \file
/// The daemon's request operations, dispatched through a tag-keyed
/// registry (the caffe2 registry.h idiom: a static map from key to
/// factory/handler, so adding an op is one registration and the server's
/// connection loop never grows a switch).
///
/// Every dataset-carrying op shares the same request shape
/// (protocol.h `RequestBody`) and the same option vocabulary:
///
///   seed N          encoding seed                      (default 1)
///   policy P        none | bp | maxmp                  (default maxmp)
///   breakpoints W   minimum breakpoint count           (default 20)
///   anti            global-anti-monotone direction
///   threads N       ExecPolicy for this request        (default 1; 0 =
///                   all hardware threads, as in the CLI; either way
///                   capped by the server's max_request_threads)
///   no-compiled     force the interpreted encode path
///   trials N        risk-report trials                 (risk; default 31)
///   deadline-ms N   relative deadline for this request. The server
///                   anchors it at frame receipt against its own steady
///                   clock (client/server clock skew never matters) and
///                   checks it at admission, at dequeue and between op
///                   phases; an expired request is answered with an
///                   explicit kUnavailable reply (CLI exit 6), never
///                   silently hung. 0 means "already expired" — the
///                   canonical shed probe.
///   save PATH       also persist the op's artifact server-side (fit:
///                   the plan key document), atomically via
///                   fault::AtomicFileWriter. PATH must be relative and
///                   is confined to <save_dir>/<tenant>/ ('..' and
///                   absolute paths are refused; without a configured
///                   save_dir the option is refused outright), so a
///                   socket peer never writes outside its own corner
///
/// Determinism contract: a served encode is byte-identical to `popp
/// encode` on the same input at every thread count and in either dataset
/// framing (CSV or popp-cols) — the serve_vs_cli oracle gates it.

namespace popp::serve {

/// Server-side knobs an op consults.
struct OpConfig {
  /// Ceiling on the per-request `threads` option (a tenant cannot demand
  /// unbounded pools; the bytes do not depend on the cap).
  size_t max_request_threads = 16;
  /// Root for request `save` targets; empty disables server-side saves
  /// (see ServeOptions::save_dir).
  std::string save_dir;
};

/// Request-scoped execution context threaded from the server's connection
/// loop into every op phase.
struct RequestContext {
  /// Absolute deadline (anchored at frame receipt); default never expires.
  resil::Deadline deadline;
};

/// One registered operation.
struct OpHandler {
  /// Human name, for diagnostics (= TagName of the registered tag).
  std::string name;
  /// Runs the op against the tenant's workspace. Implementations lock
  /// `workspace.mutex()` themselves around cache access; the registry
  /// wrapper does not serialize, so independent tenants run concurrently.
  /// Implementations re-check `context.deadline` between phases (after
  /// request parse, after the main compute, around server-side saves) and
  /// answer kUnavailable once it expires.
  std::function<ReplyBody(Workspace& workspace, const RequestBody& request,
                          const OpConfig& config,
                          const RequestContext& context)>
      run;
};

/// The tag -> handler registry (fit, encode, decode, verify, risk, stats).
/// kShutdown and kHealth are intentionally absent: lifecycle and liveness
/// belong to the server (health must answer even when admission is
/// saturated).
const std::map<Tag, OpHandler>& OpRegistry();

/// Dispatches one request frame body. Unknown tags produce an
/// InvalidArgument reply; a handler's reply is returned as-is.
ReplyBody DispatchOp(Tag tag, Workspace& workspace, const RequestBody& request,
                     const OpConfig& config,
                     const RequestContext& context = RequestContext{});

/// Pre-admission peek at a request's "deadline-ms" option (the full parse
/// happens later, inside the op, after admission): returns the relative
/// deadline in ms, or UINT64_MAX when the request carries none.
uint64_t ExtractDeadlineMs(const std::string& options_text);

}  // namespace popp::serve

#endif  // POPP_SERVE_OPS_H_
