#ifndef POPP_SERVE_OPS_H_
#define POPP_SERVE_OPS_H_

#include <functional>
#include <map>
#include <string>

#include "serve/protocol.h"
#include "serve/workspace.h"

/// \file
/// The daemon's request operations, dispatched through a tag-keyed
/// registry (the caffe2 registry.h idiom: a static map from key to
/// factory/handler, so adding an op is one registration and the server's
/// connection loop never grows a switch).
///
/// Every dataset-carrying op shares the same request shape
/// (protocol.h `RequestBody`) and the same option vocabulary:
///
///   seed N          encoding seed                      (default 1)
///   policy P        none | bp | maxmp                  (default maxmp)
///   breakpoints W   minimum breakpoint count           (default 20)
///   anti            global-anti-monotone direction
///   threads N       ExecPolicy for this request        (default 1; 0 =
///                   all hardware threads, as in the CLI; either way
///                   capped by the server's max_request_threads)
///   no-compiled     force the interpreted encode path
///   trials N        risk-report trials                 (risk; default 31)
///   save PATH       also persist the op's artifact server-side (fit:
///                   the plan key document), atomically via
///                   fault::AtomicFileWriter. PATH must be relative and
///                   is confined to <save_dir>/<tenant>/ ('..' and
///                   absolute paths are refused; without a configured
///                   save_dir the option is refused outright), so a
///                   socket peer never writes outside its own corner
///
/// Determinism contract: a served encode is byte-identical to `popp
/// encode` on the same input at every thread count and in either dataset
/// framing (CSV or popp-cols) — the serve_vs_cli oracle gates it.

namespace popp::serve {

/// Server-side knobs an op consults.
struct OpConfig {
  /// Ceiling on the per-request `threads` option (a tenant cannot demand
  /// unbounded pools; the bytes do not depend on the cap).
  size_t max_request_threads = 16;
  /// Root for request `save` targets; empty disables server-side saves
  /// (see ServeOptions::save_dir).
  std::string save_dir;
};

/// One registered operation.
struct OpHandler {
  /// Human name, for diagnostics (= TagName of the registered tag).
  std::string name;
  /// Runs the op against the tenant's workspace. Implementations lock
  /// `workspace.mutex()` themselves around cache access; the registry
  /// wrapper does not serialize, so independent tenants run concurrently.
  std::function<ReplyBody(Workspace& workspace, const RequestBody& request,
                          const OpConfig& config)>
      run;
};

/// The tag -> handler registry (fit, encode, decode, verify, risk, stats).
/// kShutdown is intentionally absent: lifecycle belongs to the server.
const std::map<Tag, OpHandler>& OpRegistry();

/// Dispatches one request frame body. Unknown tags produce an
/// InvalidArgument reply; a handler's reply is returned as-is.
ReplyBody DispatchOp(Tag tag, Workspace& workspace, const RequestBody& request,
                     const OpConfig& config);

}  // namespace popp::serve

#endif  // POPP_SERVE_OPS_H_
