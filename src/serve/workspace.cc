#include "serve/workspace.h"

namespace popp::serve {

std::string Workspace::RenderStats() const {
  const PlanCacheStats& s = cache_.stats();
  std::string out = "tenant: " + (name_.empty() ? "(default)" : name_) + "\n";
  out += "requests_served: " + std::to_string(requests_served) + "\n";
  out += "plans_resident: " + std::to_string(s.resident) + "\n";
  out += "cache_capacity: " + std::to_string(s.capacity) + "\n";
  out += "cache_hits: " + std::to_string(s.hits) + "\n";
  out += "cache_misses: " + std::to_string(s.misses) + "\n";
  out += "cache_evictions: " + std::to_string(s.evictions) + "\n";
  return out;
}

Workspace* WorkspaceRegistry::GetOrCreate(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = workspaces_.find(tenant);
  if (it == workspaces_.end()) {
    it = workspaces_
             .emplace(tenant,
                      std::make_unique<Workspace>(tenant, cache_capacity_))
             .first;
  }
  return it->second.get();
}

size_t WorkspaceRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workspaces_.size();
}

}  // namespace popp::serve
