#include "serve/server.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "fault/file.h"

namespace popp::serve {
namespace {

/// Builds the sockaddr for `path`, rejecting paths that do not fit the
/// platform's sun_path (a real limit, ~108 bytes — long temp dirs hit it).
Result<sockaddr_un> SocketAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path must be 1.." +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes, got " +
        std::to_string(path.size()) + " ('" + path + "')");
  }
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// True when a daemon currently accepts connections on `path`.
bool SocketIsLive(const std::string& path) {
  auto addr = SocketAddress(path);
  if (!addr.ok()) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const bool live =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
                sizeof(addr.value())) == 0;
  ::close(fd);
  return live;
}

/// Maps the daemon-level knobs onto the admission controller's options.
/// max_inflight 0 defaults to the connection-pool width: with one
/// in-flight request per connection worker, admission then only sheds
/// when the queue bound is also hit.
resil::AdmissionOptions AdmissionFromServe(const ServeOptions& options) {
  resil::AdmissionOptions admission;
  admission.max_inflight =
      options.max_inflight > 0
          ? options.max_inflight
          : (options.num_threads < 1 ? 1 : options.num_threads);
  admission.max_queue = options.max_queue;
  admission.per_tenant_inflight = options.per_tenant_inflight;
  return admission;
}

std::atomic<Server*> g_signal_server{nullptr};

void HandleShutdownSignal(int /*signo*/) {
  // One relaxed load + one relaxed store: async-signal-safe by
  // construction. The accept loop polls the flag every 100 ms.
  Server* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestShutdown();
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      op_config_{options_.max_request_threads, options_.save_dir},
      registry_(options_.cache_capacity),
      admission_(AdmissionFromServe(options_)),
      pool_(options_.num_threads < 1 ? 1 : options_.num_threads) {}

Server::~Server() {
  RequestShutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

Status Server::Start() {
  auto addr = SocketAddress(options_.socket_path);
  if (!addr.ok()) return addr.status();

  if (fault::FileExists(options_.socket_path)) {
    if (SocketIsLive(options_.socket_path)) {
      return Status::FailedPrecondition(
          "another popp-serve daemon is already listening on '" +
          options_.socket_path +
          "'; stop it first (popp serve-client <socket> shutdown) or pick "
          "a different socket path");
    }
    // The daemon that bound this socket is gone (connect refused): the
    // file is stale debris from a crash or kill — reclaim it.
    POPP_RETURN_IF_ERROR(fault::RemoveFile(options_.socket_path));
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           ::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr.value()),
             sizeof(addr.value())) != 0) {
    const Status status = Status::IoError(
        "cannot bind '" + options_.socket_path + "': " + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status status = Status::IoError(
        "cannot listen on '" + options_.socket_path +
        "': " + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    return status;
  }
  return Status::Ok();
}

int Server::Serve(std::ostream& log) {
  POPP_CHECK_MSG(listen_fd_ >= 0, "Serve() before a successful Start()");
  while (!ShutdownRequested()) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal; the flag decides
      log << "popp-serve: poll failed: " << ::strerror(errno) << "\n";
      RequestShutdown();
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      log << "popp-serve: accept failed: " << ::strerror(errno) << "\n";
      RequestShutdown();
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    pool_.Submit([this, fd] { HandleConnection(fd); });
  }

  // Drain: stop accepting, let in-flight requests finish. Blocked reads
  // — and replies whose peer stopped consuming — abort on the shutdown
  // flag within one 100 ms poll slice, so every worker returns promptly
  // even if its client went quiet or never reads.
  ::close(listen_fd_);
  listen_fd_ = -1;
  while (connections_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Status removed = fault::RemoveFile(options_.socket_path);
  if (!removed.ok()) {
    log << "popp-serve: cannot remove socket file: " << removed.ToString()
        << "\n";
  }
  log << "popp-serve: drained (" << rejected_frames_.load()
      << " rejected frames), socket removed, exiting\n";
  return 0;
}

void Server::HandleConnection(int fd) {
  for (;;) {
    auto frame = RecvFrame(fd, &shutdown_, options_.max_frame_bytes);
    if (!frame.ok()) {
      const StatusCode code = frame.status().code();
      // kNotFound: the peer closed cleanly between requests. The drain
      // abort (kFailedPrecondition) closes quietly too. Everything else
      // is a protocol violation — answer with the diagnostic when the
      // peer still listens, then reject the connection. The daemon
      // itself survives every such frame.
      if (code != StatusCode::kNotFound &&
          code != StatusCode::kFailedPrecondition) {
        rejected_frames_.fetch_add(1, std::memory_order_relaxed);
        (void)SendFrame(fd, Tag::kReply, "",
                        ReplyBody::Error(frame.status()).Encode(),
                        &shutdown_);
      }
      break;
    }

    if (frame.value().tag == Tag::kShutdown) {
      // Flag first, then acknowledge: a reading client gets the ack (its
      // socket is writable, so the send completes), while a peer that
      // stopped consuming aborts within one poll slice instead of
      // holding the drain open.
      RequestShutdown();
      (void)SendFrame(
          fd, Tag::kReply, "",
          ReplyBody::Ok("draining in-flight requests, then exiting")
              .Encode(),
          &shutdown_);
      break;
    }

    if (frame.value().tag == Tag::kHealth) {
      // Liveness bypasses admission: the whole point of `health` is to be
      // answerable exactly when every slot and queue position is taken.
      std::string stats = admission_.RenderStats();
      stats += "rejected-frames " + std::to_string(rejected_frames_.load(
                                        std::memory_order_relaxed)) +
               "\n";
      stats += "connections " + std::to_string(connections_.load(
                                    std::memory_order_relaxed)) +
               "\n";
      if (!SendFrame(fd, Tag::kReply, "",
                     ReplyBody::Ok("healthy", std::move(stats)).Encode(),
                     &shutdown_)
               .ok()) {
        break;
      }
      continue;
    }

    ReplyBody reply;
    auto body = RequestBody::Decode(frame.value().payload);
    if (!body.ok()) {
      reply = ReplyBody::Error(body.status());
    } else {
      // Anchor any request deadline at frame receipt against this
      // process's steady clock — the wire carries a relative value, so
      // client/server clock skew never matters.
      RequestContext context;
      const uint64_t deadline_ms = ExtractDeadlineMs(body.value().options);
      if (deadline_ms != UINT64_MAX) {
        context.deadline = resil::Deadline::After(deadline_ms);
      }
      const Status admitted = admission_.Acquire(frame.value().tenant,
                                                 context.deadline, &shutdown_);
      if (admitted.ok()) {
        Workspace* workspace = registry_.GetOrCreate(frame.value().tenant);
        reply = DispatchOp(frame.value().tag, *workspace, body.value(),
                           op_config_, context);
        admission_.Release(frame.value().tenant);
      } else if (admitted.code() == StatusCode::kFailedPrecondition) {
        break;  // draining — close like an aborted read, no reply owed
      } else {
        // Explicit shed (overload or expired deadline): answer it and keep
        // the connection open — the client's retry loop reuses it.
        reply = ReplyBody::Error(admitted);
      }
    }
    if (!SendFrame(fd, Tag::kReply, "", reply.Encode(), &shutdown_).ok()) {
      break;
    }
  }
  ::close(fd);
  connections_.fetch_sub(1, std::memory_order_release);
}

void Server::InstallSignalHandlers(Server* server) {
  g_signal_server.store(server, std::memory_order_relaxed);
  struct sigaction action {};
  if (server != nullptr) {
    action.sa_handler = HandleShutdownSignal;
    ::sigemptyset(&action.sa_mask);
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

int RunServer(const ServeOptions& options, std::ostream& out,
              std::ostream& err) {
  Server server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    err << started.ToString() << "\n";
    switch (started.code()) {
      case StatusCode::kFailedPrecondition:
      case StatusCode::kInvalidArgument:
        return 2;  // usage: live socket or unusable path
      case StatusCode::kIoError:
      case StatusCode::kNotFound:
        return 3;
      default:
        return 1;
    }
  }
  const size_t threads = options.num_threads < 1 ? 1 : options.num_threads;
  out << "popp-serve: listening on " << options.socket_path << " ("
      << threads << " connection threads, per-tenant cache capacity "
      << options.cache_capacity << ", admission "
      << (options.max_inflight > 0 ? options.max_inflight : threads)
      << " in flight / " << options.max_queue << " queued";
  if (options.per_tenant_inflight > 0) {
    out << ", tenant cap " << options.per_tenant_inflight;
  }
  out << ")\n";
  Server::InstallSignalHandlers(&server);
  const int code = server.Serve(out);
  Server::InstallSignalHandlers(nullptr);
  return code;
}

}  // namespace popp::serve
