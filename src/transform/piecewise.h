#ifndef POPP_TRANSFORM_PIECEWISE_H_
#define POPP_TRANSFORM_PIECEWISE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/summary.h"
#include "transform/families.h"
#include "transform/function.h"
#include "util/rng.h"

/// \file
/// The piecewise (anti-)monotone transformation of one attribute — the
/// paper's core contribution (Section 5).
///
/// The attribute's active domain is split into pieces (ChooseBP or
/// ChooseMaxMP); each piece receives a randomly selected function from
/// F_mono (or F_bi for monochromatic pieces); and every piece's outputs are
/// confined to a dedicated target interval, with the intervals ordered so
/// the global-(anti-)monotone invariant of Definition 8 holds *by
/// construction*: for pieces i < j, every output of piece i is strictly
/// below (resp. above) every output of piece j.

namespace popp {

/// How piece boundaries are chosen when creating a PiecewiseTransform.
enum class BreakpointPolicy {
  kNone,         ///< a single piece over the whole domain (the baseline)
  kChooseBP,     ///< random breakpoints (paper Figure 5)
  kChooseMaxMP,  ///< maximal monochromatic pieces + random top-up (Figure 6)
};

/// Returns "none", "ChooseBP" or "ChooseMaxMP".
std::string ToString(BreakpointPolicy policy);

/// Parameters for PiecewiseTransform::Create.
struct PiecewiseOptions {
  BreakpointPolicy policy = BreakpointPolicy::kChooseMaxMP;

  /// Desired minimum number of breakpoints w (the paper's experiments use
  /// a minimum of 20). ChooseMaxMP may exceed it; both procedures return
  /// fewer only if the domain runs out of values.
  size_t min_breakpoints = 20;

  /// Monochromatic pieces narrower than this are transformed monotonically
  /// instead of bijectively (paper Section 5.2, "minimum width threshold").
  size_t min_mono_width = 2;

  /// Use F_bi (random bijections) on qualifying monochromatic pieces.
  /// Only effective under kChooseMaxMP; ChooseBP in the paper's experiments
  /// transforms every piece (anti-)monotonically.
  bool exploit_monochromatic = true;

  /// Function family for non-monochromatic pieces.
  FamilyOptions family;

  /// Direction of the global invariant: false = global-monotone
  /// (Definition 8's first form), true = global-anti-monotone.
  bool global_anti_monotone = false;

  /// The transformed dynamic range's width is the original width times a
  /// factor drawn uniformly from this interval...
  double out_width_factor_min = 0.6;
  double out_width_factor_max = 1.8;
  /// ...and its start is the original minimum plus this (fractional) random
  /// offset times the original width. Keeping the transformed range a
  /// plausible magnitude is what makes T' "look realistic enough that a
  /// hacker may not even know that it is encoded" (Section 1).
  double out_offset_min = -0.5;
  double out_offset_max = 0.5;

  /// Fraction of the output width reserved for the random gaps between
  /// consecutive piece intervals.
  double gap_fraction = 0.05;

  /// Skew of the recursive stick-breaking that allocates per-piece output
  /// intervals: at every recursion level the current interval is cut at a
  /// fraction drawn from [0.5 - skew/2, 0.5 + skew/2], independently of
  /// how many values each half holds. This yields a multifractal
  /// allocation whose relative distortion persists at *every* scale, so
  /// the aggregate transform stays far from affine no matter how many
  /// pieces there are — with proportional (or i.i.d.-width) allocation,
  /// large piece counts would average out and a handful of knowledge
  /// points could interpolate the whole map. 0 makes all intervals equal
  /// (the hacker-friendly degenerate case; see the ablation bench).
  double width_split_skew = 0.9;
};

/// One attribute's piecewise transformation: an ordered list of pieces,
/// each owning a domain interval, a disjoint output interval, and an
/// invertible function between them.
///
/// Copyable (pieces clone their functions) and movable.
class PiecewiseTransform {
 public:
  struct Piece {
    AttrValue domain_lo = 0;  ///< smallest active-domain value of the piece
    AttrValue domain_hi = 0;  ///< largest active-domain value of the piece
    AttrValue out_lo = 0;     ///< smallest image over the piece
    AttrValue out_hi = 0;     ///< largest image over the piece
    bool bijective = false;   ///< F_bi (permutation) piece
    std::unique_ptr<Transformation> fn;

    Piece() = default;
    Piece(const Piece& other);
    Piece& operator=(const Piece& other);
    Piece(Piece&&) = default;
    Piece& operator=(Piece&&) = default;
  };

  /// Decoded split threshold: the original-space value plus whether the
  /// transformation reverses order in the threshold's neighborhood (in
  /// which case a decoded tree node must swap its subtrees).
  struct ThresholdDecode {
    AttrValue value = 0;
    bool order_reversed = false;
  };

  PiecewiseTransform() = default;

  /// Builds a randomized transform for the attribute described by
  /// `summary`, which must be non-empty.
  static PiecewiseTransform Create(const AttributeSummary& summary,
                                   const PiecewiseOptions& options, Rng& rng);

  /// Reassembles a transform from explicit pieces (deserialization).
  /// Pieces must be in domain order with non-overlapping, increasing
  /// domain intervals; their output intervals must respect the global
  /// direction. Each piece must carry a function.
  static PiecewiseTransform FromPieces(std::vector<Piece> pieces,
                                       bool global_anti_monotone);

  /// Encodes a value. Exact for active-domain values; other values map
  /// monotonically into the induced gaps (bijective pieces snap to the
  /// nearest domain value).
  AttrValue Apply(AttrValue x) const;

  /// Decodes a transformed value; exact inverse of Apply on images of
  /// active-domain values.
  AttrValue Inverse(AttrValue y) const;

  /// Decodes a split threshold of a tree mined from transformed data:
  /// returns the original-space threshold and the local order direction.
  ThresholdDecode InverseThreshold(AttrValue y) const;

  size_t NumPieces() const { return pieces_.size(); }
  const Piece& piece(size_t i) const;
  bool global_anti_monotone() const { return global_anti_; }

  /// Verifies Definition 8 against the actual images of `summary`'s
  /// values: consecutive pieces' image ranges must be strictly ordered in
  /// the global direction and all images distinct. Returns true iff the
  /// invariant holds.
  bool SatisfiesGlobalInvariant(const AttributeSummary& summary) const;

  /// The custodian's decoding key, rendered for inspection: breakpoint
  /// locations and the function used in every piece (what Section 5.4 says
  /// the custodian must keep).
  std::string Describe() const;

 private:
  /// Pieces in *domain* order (piece 0 holds the smallest values).
  std::vector<Piece> pieces_;
  bool global_anti_ = false;

  /// Index of the piece whose domain contains (or is nearest below) x.
  size_t DomainPieceIndex(AttrValue x) const;
  /// Piece index by output location, or npos when y falls in a gap;
  /// `gap_after` then identifies the piece (in output order) before y.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t OutputPieceIndex(AttrValue y, size_t* gap_after) const;
  /// Pieces in output order = domain order, reversed when global-anti.
  size_t OutputOrderToDomainIndex(size_t k) const;
};

}  // namespace popp

#endif  // POPP_TRANSFORM_PIECEWISE_H_
