#include "transform/tree_decode.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "util/status.h"

namespace popp {
namespace {

/// Recursive pure-function decode; returns the new node's id in `out`.
NodeId DecodePure(const DecisionTree& tprime, NodeId id,
                  const TransformPlan& plan, DecisionTree& out) {
  const auto& n = tprime.node(id);
  if (n.is_leaf) {
    return out.AddLeaf(n.label, n.class_hist);
  }
  const PiecewiseTransform::ThresholdDecode decode =
      plan.transform(n.attribute).InverseThreshold(n.threshold);
  NodeId left_src = n.left;
  NodeId right_src = n.right;
  if (decode.order_reversed) {
    std::swap(left_src, right_src);
  }
  const NodeId left = DecodePure(tprime, left_src, plan, out);
  const NodeId right = DecodePure(tprime, right_src, plan, out);
  return out.AddInternal(n.attribute, decode.value, left, right,
                         n.class_hist);
}

}  // namespace

DecisionTree DecodeTree(const DecisionTree& tprime,
                        const TransformPlan& plan) {
  DecisionTree out;
  if (tprime.empty()) return out;
  out.SetRoot(DecodePure(tprime, tprime.root(), plan, out));
  return out;
}

DecisionTree DecodeTreeWithData(const DecisionTree& tprime,
                                const TransformPlan& plan,
                                const Dataset& original) {
  DecisionTree out;
  if (tprime.empty()) return out;

  const Dataset encoded = plan.EncodeDataset(original);

  std::function<NodeId(NodeId, const std::vector<size_t>&)> walk =
      [&](NodeId id, const std::vector<size_t>& rows) -> NodeId {
    const auto& n = tprime.node(id);
    if (n.is_leaf) {
      return out.AddLeaf(n.label, n.class_hist);
    }
    std::vector<size_t> left_rows, right_rows;
    for (size_t r : rows) {
      (encoded.Value(r, n.attribute) <= n.threshold ? left_rows : right_rows)
          .push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) {
      // The node does not separate any custodian tuples (possible only if
      // T' was mined from different data); fall back to pure inversion.
      return DecodePure(tprime, id, plan, out);
    }
    // Original-space value ranges of the two sides.
    auto range_of = [&](const std::vector<size_t>& side) {
      AttrValue lo = original.Value(side[0], n.attribute);
      AttrValue hi = lo;
      for (size_t r : side) {
        const AttrValue v = original.Value(r, n.attribute);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      return std::pair<AttrValue, AttrValue>{lo, hi};
    };
    const auto [lmin, lmax] = range_of(left_rows);
    const auto [rmin, rmax] = range_of(right_rows);

    if (lmax < rmin) {
      // Order preserved: left side holds the smaller original values.
      const AttrValue threshold = lmax + (rmin - lmax) / 2;
      const NodeId left = walk(n.left, left_rows);
      const NodeId right = walk(n.right, right_rows);
      return out.AddInternal(n.attribute, threshold, left, right,
                             n.class_hist);
    }
    POPP_CHECK_MSG(rmax < lmin,
                   "decode: sides interleave in original space — either the "
                   "plan does not match the data T' was mined from, or the "
                   "split threshold falls inside a bijective/direction-free "
                   "piece (possible when the miner's best feasible split is "
                   "interior to a label run, e.g. kAllBoundaries with "
                   "min_leaf_size > 1), where no original-space threshold "
                   "reproduces the routing");
    // Order reversed around this threshold: T''s right side holds the
    // smaller original values, so it becomes the decoded left subtree.
    const AttrValue threshold = rmax + (lmin - rmax) / 2;
    const NodeId left = walk(n.right, right_rows);
    const NodeId right = walk(n.left, left_rows);
    return out.AddInternal(n.attribute, threshold, left, right,
                           n.class_hist);
  };

  std::vector<size_t> rows(original.NumRows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  out.SetRoot(walk(tprime.root(), rows));
  return out;
}

}  // namespace popp
