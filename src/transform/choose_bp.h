#ifndef POPP_TRANSFORM_CHOOSE_BP_H_
#define POPP_TRANSFORM_CHOOSE_BP_H_

#include <cstddef>
#include <vector>

#include "data/summary.h"
#include "util/rng.h"

/// \file
/// Procedure ChooseBP (paper Figure 5): random breakpoint selection.
///
/// Breakpoints are drawn uniformly from the attribute's distinct values; a
/// breakpoint at value v starts a new piece whose smallest value is v. The
/// privacy power of this simple procedure comes from the hacker's
/// uncertainty about both the number w and the O(2^N) possible locations.

namespace popp {

/// Picks `w` random breakpoints among the distinct values of `summary` and
/// returns the resulting sorted piece-start indices (always including 0).
/// If w >= NumDistinct, every value becomes its own piece.
std::vector<size_t> ChooseBP(const AttributeSummary& summary, size_t w,
                             Rng& rng);

}  // namespace popp

#endif  // POPP_TRANSFORM_CHOOSE_BP_H_
