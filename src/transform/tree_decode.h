#ifndef POPP_TRANSFORM_TREE_DECODE_H_
#define POPP_TRANSFORM_TREE_DECODE_H_

#include "data/dataset.h"
#include "transform/plan.h"
#include "tree/decision_tree.h"

/// \file
/// Decoding the mined tree T' back into the original space (Theorem 2).
///
/// Two decoders:
///  * `DecodeTree` — the paper's construction: every node A theta nu' is
///    rewritten to A theta f_A^{-1}(nu'), swapping subtrees where the
///    transformation is locally order-reversing. Uses only the plan.
///  * `DecodeTreeWithData` — the custodian's exact decoder: she still owns
///    D, so each threshold is re-derived from the original values of the
///    tuples the node actually separates. This yields thresholds that are
///    bit-identical to those the tree builder would produce on D directly
///    (midpoints of the adjacent original values), for every function
///    family including bijective pieces — the strongest form of Theorem 2.

namespace popp {

/// Decodes T' using per-attribute function inversion only.
///
/// Exact (partition-identical to mining D) whenever each split threshold
/// lies either inside the non-bijective piece containing the two values it
/// separates or in an inter-piece gap — which holds for all single-piece
/// plans and for piece-boundary splits. Thresholds land strictly between
/// the same original values but are generally not canonical midpoints; use
/// CanonicalizeThresholds or DecodeTreeWithData for exact equality.
DecisionTree DecodeTree(const DecisionTree& tprime, const TransformPlan& plan);

/// Decodes T' exactly using the custodian's original data `original`
/// (which must be the dataset the plan encoded). The result is
/// ExactlyEqual to the tree mined directly from `original` whenever T' was
/// mined from plan.EncodeDataset(original) with the same builder options.
DecisionTree DecodeTreeWithData(const DecisionTree& tprime,
                                const TransformPlan& plan,
                                const Dataset& original);

}  // namespace popp

#endif  // POPP_TRANSFORM_TREE_DECODE_H_
