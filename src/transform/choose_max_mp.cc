#include "transform/choose_max_mp.h"

#include <algorithm>

#include "util/status.h"

namespace popp {

size_t ChooseMaxMPResult::NumMonochromatic() const {
  size_t n = 0;
  for (const auto& piece : pieces) {
    if (piece.monochromatic) ++n;
  }
  return n;
}

ChooseMaxMPResult ChooseMaxMP(const AttributeSummary& summary, size_t w,
                              size_t min_mono_width, Rng& rng) {
  const size_t n = summary.NumDistinct();
  POPP_CHECK_MSG(n > 0, "ChooseMaxMP on empty summary");

  // Phase 1 — the scan of Figure 6: breakpoints open a new piece whenever
  // the monochromatic state flips or the (single) class changes.
  std::vector<size_t> starts;
  starts.push_back(0);
  bool in_mono = summary.IsMonochromatic(0);
  ClassId cur_label = summary.MonoClassAt(0);
  for (size_t i = 1; i < n; ++i) {
    const ClassId mono = summary.MonoClassAt(i);
    if (mono == kNoClass) {
      if (in_mono) {
        starts.push_back(i);  // end of a monochromatic piece
        in_mono = false;
        cur_label = kNoClass;
      }
    } else {
      if (!in_mono) {
        starts.push_back(i);  // a new monochromatic piece begins
        in_mono = true;
        cur_label = mono;
      } else if (cur_label != mono) {
        starts.push_back(i);  // different label: a different mono piece
        cur_label = mono;
      }
    }
  }

  // Phase 2 — enforce the minimum monochromatic width: pieces that fail it
  // lose their bijective privilege; merge adjacent non-monochromatic
  // pieces so demoted slivers join their neighbors.
  std::vector<PieceSpec> pieces = ComputePieces(summary, starts,
                                                min_mono_width);
  std::vector<size_t> merged_starts;
  for (size_t k = 0; k < pieces.size(); ++k) {
    const bool mergeable = k > 0 && !pieces[k].monochromatic &&
                           !pieces[k - 1].monochromatic;
    if (!mergeable) {
      merged_starts.push_back(pieces[k].begin);
    }
    if (mergeable) {
      pieces[k].begin = pieces[k - 1].begin;  // keep flags consistent
    }
  }
  starts = std::move(merged_starts);
  pieces = ComputePieces(summary, starts, min_mono_width);

  // Phase 3 — top up to w breakpoints from the non-monochromatic values
  // (Figure 6 lines 18–20). Candidate positions are interior indices of
  // non-monochromatic pieces.
  if (starts.size() - 1 < w) {
    std::vector<size_t> candidates;
    for (const auto& piece : pieces) {
      if (piece.monochromatic) continue;
      for (size_t i = piece.begin + 1; i < piece.end; ++i) {
        candidates.push_back(i);
      }
    }
    const size_t need =
        std::min(w - (starts.size() - 1), candidates.size());
    if (need > 0) {
      std::vector<size_t> picks = rng.SampleIndices(candidates.size(), need);
      for (size_t p : picks) starts.push_back(candidates[p]);
      std::sort(starts.begin(), starts.end());
      starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
      pieces = ComputePieces(summary, starts, min_mono_width);
    }
  }

  ChooseMaxMPResult result;
  result.piece_starts = std::move(starts);
  result.pieces = std::move(pieces);
  return result;
}

}  // namespace popp
