#include "transform/families.h"

#include <algorithm>

#include "util/status.h"

namespace popp {
namespace {

using ShapeChoice = FamilyOptions::ShapeChoice;

std::unique_ptr<ShapeFunction> MakeShape(ShapeChoice choice,
                                         const FamilyOptions& options,
                                         Rng& rng) {
  switch (choice) {
    case ShapeChoice::kLinear:
      return std::make_unique<IdentityShape>();
    case ShapeChoice::kPolynomial:
      return std::make_unique<PowerShape>(
          rng.Uniform(options.min_power, options.max_power));
    case ShapeChoice::kLog:
      return std::make_unique<LogShape>(
          rng.Uniform(options.min_alpha, options.max_alpha));
    case ShapeChoice::kSqrtLog:
      return std::make_unique<SqrtLogShape>(
          rng.Uniform(options.min_alpha, options.max_alpha));
    case ShapeChoice::kRandom:
      break;
  }
  POPP_CHECK_MSG(false, "MakeShape: kRandom must be resolved by caller");
  return nullptr;
}

}  // namespace

std::unique_ptr<ShapeFunction> SampleShape(const FamilyOptions& options,
                                           Rng& rng) {
  if (options.forced_shape != ShapeChoice::kRandom) {
    return MakeShape(options.forced_shape, options, rng);
  }
  std::vector<ShapeChoice> enabled;
  if (options.allow_linear) enabled.push_back(ShapeChoice::kLinear);
  if (options.allow_polynomial) enabled.push_back(ShapeChoice::kPolynomial);
  if (options.allow_log) enabled.push_back(ShapeChoice::kLog);
  if (options.allow_sqrt_log) enabled.push_back(ShapeChoice::kSqrtLog);
  POPP_CHECK_MSG(!enabled.empty(), "no shape family enabled");
  const size_t pick = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(enabled.size()) - 1));
  return MakeShape(enabled[pick], options, rng);
}

std::unique_ptr<Transformation> SampleMonotone(const FamilyOptions& options,
                                               AttrValue dlo, AttrValue dhi,
                                               AttrValue olo, AttrValue ohi,
                                               Rng& rng) {
  const bool anti = rng.Bernoulli(options.anti_monotone_prob);
  return SampleMonotoneDirected(options, dlo, dhi, olo, ohi, anti, rng);
}

std::unique_ptr<Transformation> SampleMonotoneDirected(
    const FamilyOptions& options, AttrValue dlo, AttrValue dhi, AttrValue olo,
    AttrValue ohi, bool anti_monotone, Rng& rng) {
  return std::make_unique<RescaledFunction>(SampleShape(options, rng), dlo,
                                            dhi, olo, ohi, anti_monotone);
}

std::unique_ptr<Transformation> SamplePermutation(
    const std::vector<AttrValue>& domain_values, AttrValue olo, AttrValue ohi,
    Rng& rng) {
  POPP_CHECK(!domain_values.empty());
  POPP_CHECK_MSG(olo < ohi, "SamplePermutation: empty target interval");
  const size_t n = domain_values.size();

  // Jittered strictly-increasing positions inside [olo, ohi]: value i sits
  // near the center of its 1/n slot, displaced by less than half a slot,
  // which keeps positions distinct.
  std::vector<AttrValue> positions(n);
  const double slot = (ohi - olo) / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double center = olo + (static_cast<double>(i) + 0.5) * slot;
    positions[i] = center + rng.Uniform(-0.45, 0.45) * slot;
  }
  // Random bijection: permute which domain value gets which position.
  rng.Shuffle(positions);
  return std::make_unique<PermutationFunction>(domain_values,
                                               std::move(positions));
}

}  // namespace popp
