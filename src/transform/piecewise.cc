#include "transform/piecewise.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "transform/choose_bp.h"
#include "transform/choose_max_mp.h"
#include "transform/pieces.h"
#include "util/status.h"

namespace popp {

std::string ToString(BreakpointPolicy policy) {
  switch (policy) {
    case BreakpointPolicy::kNone:
      return "none";
    case BreakpointPolicy::kChooseBP:
      return "ChooseBP";
    case BreakpointPolicy::kChooseMaxMP:
      return "ChooseMaxMP";
  }
  return "?";
}

PiecewiseTransform::Piece::Piece(const Piece& other)
    : domain_lo(other.domain_lo),
      domain_hi(other.domain_hi),
      out_lo(other.out_lo),
      out_hi(other.out_hi),
      bijective(other.bijective),
      fn(other.fn ? other.fn->Clone() : nullptr) {}

PiecewiseTransform::Piece& PiecewiseTransform::Piece::operator=(
    const Piece& other) {
  if (this != &other) {
    domain_lo = other.domain_lo;
    domain_hi = other.domain_hi;
    out_lo = other.out_lo;
    out_hi = other.out_hi;
    bijective = other.bijective;
    fn = other.fn ? other.fn->Clone() : nullptr;
  }
  return *this;
}

PiecewiseTransform PiecewiseTransform::Create(const AttributeSummary& summary,
                                              const PiecewiseOptions& options,
                                              Rng& rng) {
  const size_t n = summary.NumDistinct();
  POPP_CHECK_MSG(n > 0, "PiecewiseTransform::Create on empty summary");

  // --- Phase 1: piece layout. ---------------------------------------
  std::vector<size_t> starts;
  switch (options.policy) {
    case BreakpointPolicy::kNone:
      starts = {0};
      break;
    case BreakpointPolicy::kChooseBP:
      starts = ChooseBP(summary, options.min_breakpoints, rng);
      break;
    case BreakpointPolicy::kChooseMaxMP:
      starts = ChooseMaxMP(summary, options.min_breakpoints,
                           options.min_mono_width, rng)
                   .piece_starts;
      break;
  }
  const std::vector<PieceSpec> specs =
      ComputePieces(summary, starts, options.min_mono_width);
  const size_t k = specs.size();

  // --- Phase 2: disjoint target intervals (Definition 8 holds by
  // construction: interval p+1 starts strictly above interval p). --------
  const AttrValue in_lo = summary.MinValue();
  const AttrValue in_hi = summary.MaxValue();
  const double in_width = std::max(1.0, static_cast<double>(in_hi - in_lo));
  const double out_width =
      in_width *
      rng.Uniform(options.out_width_factor_min, options.out_width_factor_max);
  const double out_start =
      in_lo + rng.Uniform(options.out_offset_min, options.out_offset_max) *
                  in_width;

  // Per-piece interval widths via recursive stick-breaking (see
  // PiecewiseOptions::width_split_skew): each recursion cuts the current
  // budget at a random skewed fraction, independently of piece sizes, so
  // the allocation is multifractal — random at every scale — and the
  // hacker can infer neither a piece's location from its value count nor
  // the aggregate map from a few fitted points.
  POPP_CHECK_MSG(options.width_split_skew >= 0.0 &&
                     options.width_split_skew < 1.0,
                 "width_split_skew must be in [0, 1)");
  const double cut_lo = 0.5 - options.width_split_skew / 2;
  const double cut_hi = 0.5 + options.width_split_skew / 2;
  std::vector<double> piece_w(k);
  const std::function<void(size_t, size_t, double)> split =
      [&](size_t begin, size_t end, double budget) {
        if (end - begin == 1) {
          piece_w[begin] = budget;
          return;
        }
        const size_t mid = begin + (end - begin) / 2;
        const double left = budget * rng.Uniform(cut_lo, cut_hi);
        split(begin, mid, left);
        split(mid, end, budget - left);
      };
  split(0, k, 1.0);
  std::vector<double> gap_w(k > 0 ? k - 1 : 0);
  double piece_sum = 0.0;
  double gap_sum = 0.0;
  for (size_t p = 0; p < k; ++p) {
    piece_sum += piece_w[p];
  }
  for (auto& g : gap_w) {
    g = rng.Uniform(0.5, 1.5);
    gap_sum += g;
  }
  const double gap_total = (k > 1) ? options.gap_fraction * out_width : 0.0;
  const double piece_total = out_width - gap_total;
  POPP_CHECK(piece_total > 0.0);

  // Interval bounds in output order.
  std::vector<AttrValue> olo(k), ohi(k);
  double cursor = out_start;
  for (size_t p = 0; p < k; ++p) {
    const double width = piece_total * piece_w[p] / piece_sum;
    olo[p] = cursor;
    ohi[p] = cursor + width;
    cursor = ohi[p];
    if (p + 1 < k) {
      cursor += gap_total * gap_w[p] / gap_sum;
    }
  }

  // --- Phase 3: one function per piece. ------------------------------
  PiecewiseTransform result;
  result.global_anti_ = options.global_anti_monotone;
  result.pieces_.resize(k);
  const bool exploit = options.exploit_monochromatic &&
                       options.policy == BreakpointPolicy::kChooseMaxMP;
  for (size_t d = 0; d < k; ++d) {
    const size_t p = options.global_anti_monotone ? k - 1 - d : d;
    const PieceSpec& spec = specs[d];
    Piece& piece = result.pieces_[d];
    piece.domain_lo = summary.ValueAt(spec.begin);
    piece.domain_hi = summary.ValueAt(spec.end - 1);

    if (spec.length() == 1) {
      // Single-value piece: pin its image to the interval midpoint.
      const AttrValue mid = olo[p] + (ohi[p] - olo[p]) / 2;
      piece.fn = std::make_unique<PermutationFunction>(
          std::vector<AttrValue>{piece.domain_lo},
          std::vector<AttrValue>{mid});
      piece.bijective = true;
      piece.out_lo = mid;
      piece.out_hi = mid;
    } else if (exploit && spec.monochromatic) {
      std::vector<AttrValue> domain_values(
          summary.values().begin() + static_cast<ptrdiff_t>(spec.begin),
          summary.values().begin() + static_cast<ptrdiff_t>(spec.end));
      piece.fn = SamplePermutation(domain_values, olo[p], ohi[p], rng);
      piece.bijective = true;
      // Tighten the interval to the image hull so piece-boundary split
      // thresholds always land in inter-piece gaps.
      const auto* perm = static_cast<const PermutationFunction*>(piece.fn.get());
      piece.out_lo = *std::min_element(perm->image().begin(),
                                       perm->image().end());
      piece.out_hi = *std::max_element(perm->image().begin(),
                                       perm->image().end());
    } else {
      // Direction freedom is only outcome-safe on monochromatic pieces
      // (a single label run tolerates any internal reordering, cf. the
      // paper's Figure 4 where the anti-monotone function is applied to
      // the pure run r1). A non-monochromatic piece must follow the
      // global direction, or its sub-class-string would reverse and the
      // label runs — hence the tree — would change.
      const bool mono_range =
          IsMonochromaticRange(summary, spec.begin, spec.end);
      const bool anti =
          mono_range ? rng.Bernoulli(options.family.anti_monotone_prob)
                     : options.global_anti_monotone;
      piece.fn =
          SampleMonotoneDirected(options.family, piece.domain_lo,
                                 piece.domain_hi, olo[p], ohi[p], anti, rng);
      piece.bijective = false;
      piece.out_lo = olo[p];
      piece.out_hi = ohi[p];
    }
  }
  return result;
}

PiecewiseTransform PiecewiseTransform::FromPieces(std::vector<Piece> pieces,
                                                  bool global_anti_monotone) {
  POPP_CHECK_MSG(!pieces.empty(), "FromPieces: no pieces");
  for (size_t d = 0; d < pieces.size(); ++d) {
    POPP_CHECK_MSG(pieces[d].fn != nullptr, "FromPieces: piece " << d
                                                                 << " has no "
                                                                    "function");
    POPP_CHECK(pieces[d].domain_lo <= pieces[d].domain_hi);
    if (d > 0) {
      POPP_CHECK_MSG(pieces[d - 1].domain_hi < pieces[d].domain_lo,
                     "FromPieces: domain intervals must increase");
      if (!global_anti_monotone) {
        POPP_CHECK_MSG(pieces[d - 1].out_hi < pieces[d].out_lo,
                       "FromPieces: output intervals violate the "
                       "global-monotone invariant");
      } else {
        POPP_CHECK_MSG(pieces[d - 1].out_lo > pieces[d].out_hi,
                       "FromPieces: output intervals violate the "
                       "global-anti-monotone invariant");
      }
    }
  }
  PiecewiseTransform out;
  out.pieces_ = std::move(pieces);
  out.global_anti_ = global_anti_monotone;
  return out;
}

const PiecewiseTransform::Piece& PiecewiseTransform::piece(size_t i) const {
  POPP_CHECK_MSG(i < pieces_.size(), "bad piece index " << i);
  return pieces_[i];
}

size_t PiecewiseTransform::DomainPieceIndex(AttrValue x) const {
  POPP_DCHECK(!pieces_.empty());
  // Largest d with pieces_[d].domain_lo <= x (clamped to 0).
  size_t lo = 0, hi = pieces_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (pieces_[mid].domain_lo <= x) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t PiecewiseTransform::OutputOrderToDomainIndex(size_t p) const {
  return global_anti_ ? pieces_.size() - 1 - p : p;
}

size_t PiecewiseTransform::OutputPieceIndex(AttrValue y,
                                            size_t* gap_after) const {
  POPP_DCHECK(!pieces_.empty());
  const size_t k = pieces_.size();
  // Output-ordered interval p belongs to domain piece OutputOrderToDomain(p).
  // Binary search the largest p with out_lo(p) <= y.
  size_t lo = 0, hi = k;
  auto out_lo_of = [&](size_t p) {
    return pieces_[OutputOrderToDomainIndex(p)].out_lo;
  };
  auto out_hi_of = [&](size_t p) {
    return pieces_[OutputOrderToDomainIndex(p)].out_hi;
  };
  if (y < out_lo_of(0)) {
    // Below all intervals: clamp to the first piece.
    if (gap_after) *gap_after = npos;
    return OutputOrderToDomainIndex(0);
  }
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (out_lo_of(mid) <= y) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (y <= out_hi_of(lo) || lo + 1 == k) {
    if (gap_after) *gap_after = npos;
    return OutputOrderToDomainIndex(lo);
  }
  // y is in the gap between output positions lo and lo+1.
  if (gap_after) *gap_after = lo;
  return npos;
}

AttrValue PiecewiseTransform::Apply(AttrValue x) const {
  POPP_CHECK_MSG(!pieces_.empty(), "Apply on empty transform");
  const size_t d = DomainPieceIndex(x);
  const Piece& piece = pieces_[d];
  if (x <= piece.domain_hi || d + 1 == pieces_.size()) {
    return piece.fn->Apply(x);
  }
  // x falls in the domain gap between pieces d and d+1: bridge the output
  // gap linearly, in the global direction.
  const Piece& next = pieces_[d + 1];
  const double t = (x - piece.domain_hi) / (next.domain_lo - piece.domain_hi);
  if (!global_anti_) {
    return piece.out_hi + t * (next.out_lo - piece.out_hi);
  }
  return piece.out_lo + t * (next.out_hi - piece.out_lo);
}

AttrValue PiecewiseTransform::Inverse(AttrValue y) const {
  POPP_CHECK_MSG(!pieces_.empty(), "Inverse on empty transform");
  size_t gap_after = npos;
  const size_t d = OutputPieceIndex(y, &gap_after);
  if (d != npos) {
    return pieces_[d].fn->Inverse(y);
  }
  // y lies in the gap after output position `gap_after`: invert the linear
  // bridge of Apply. The two output-adjacent pieces are domain-adjacent
  // (consecutive d's), in forward or reverse order by global direction.
  const size_t d1 = OutputOrderToDomainIndex(gap_after);
  const size_t d2 = OutputOrderToDomainIndex(gap_after + 1);
  const size_t da = std::min(d1, d2);  // lower domain piece
  const Piece& a = pieces_[da];
  const Piece& b = pieces_[da + 1];
  double t;
  if (!global_anti_) {
    t = (y - a.out_hi) / (b.out_lo - a.out_hi);
  } else {
    t = (y - a.out_lo) / (b.out_hi - a.out_lo);
  }
  t = std::min(1.0, std::max(0.0, t));
  return a.domain_hi + t * (b.domain_lo - a.domain_hi);
}

PiecewiseTransform::ThresholdDecode PiecewiseTransform::InverseThreshold(
    AttrValue y) const {
  POPP_CHECK_MSG(!pieces_.empty(), "InverseThreshold on empty transform");
  ThresholdDecode decode;
  size_t gap_after = npos;
  const size_t d = OutputPieceIndex(y, &gap_after);
  if (d != npos) {
    const Piece& piece = pieces_[d];
    decode.value = piece.fn->Inverse(y);
    decode.order_reversed =
        piece.bijective ? global_anti_
                        : piece.fn->kind() == FunctionKind::kAntiMonotone;
    return decode;
  }
  // Gap: a split separating whole pieces; the global direction governs.
  decode.value = Inverse(y);
  decode.order_reversed = global_anti_;
  return decode;
}

bool PiecewiseTransform::SatisfiesGlobalInvariant(
    const AttributeSummary& summary) const {
  if (pieces_.empty()) return false;
  // Images of all active-domain values, in domain order.
  std::vector<AttrValue> images;
  images.reserve(summary.NumDistinct());
  for (AttrValue v : summary.values()) {
    images.push_back(Apply(v));
  }
  // All images must be distinct (bijectivity).
  std::vector<AttrValue> sorted = images;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return false;
  }
  // Definition 8: for pieces i < j, every image of i is strictly below
  // (global-monotone) / above (global-anti-monotone) every image of j.
  // Because pieces partition the sorted domain, it suffices to compare
  // consecutive pieces' image ranges.
  size_t d = 0;
  AttrValue prev_min = 0, prev_max = 0;
  bool have_prev = false;
  size_t i = 0;
  while (i < images.size()) {
    // Gather this piece's image range.
    const Piece& piece = pieces_[d];
    AttrValue lo = images[i], hi = images[i];
    while (i < images.size() && summary.ValueAt(i) <= piece.domain_hi) {
      lo = std::min(lo, images[i]);
      hi = std::max(hi, images[i]);
      ++i;
    }
    if (have_prev) {
      if (!global_anti_ && !(prev_max < lo)) return false;
      if (global_anti_ && !(prev_min > hi)) return false;
    }
    prev_min = lo;
    prev_max = hi;
    have_prev = true;
    ++d;
  }
  return d == pieces_.size();
}

std::string PiecewiseTransform::Describe() const {
  std::ostringstream oss;
  oss << "piecewise(" << pieces_.size() << " pieces, global-"
      << (global_anti_ ? "anti-monotone" : "monotone") << ")\n";
  for (size_t d = 0; d < pieces_.size(); ++d) {
    const Piece& piece = pieces_[d];
    oss << "  piece " << d << ": [" << piece.domain_lo << ", "
        << piece.domain_hi << "] via " << piece.fn->Describe() << "\n";
  }
  return oss.str();
}

}  // namespace popp
