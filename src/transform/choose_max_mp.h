#ifndef POPP_TRANSFORM_CHOOSE_MAX_MP_H_
#define POPP_TRANSFORM_CHOOSE_MAX_MP_H_

#include <cstddef>
#include <vector>

#include "data/summary.h"
#include "transform/pieces.h"
#include "util/rng.h"

/// \file
/// Procedure ChooseMaxMP (paper Figure 6): breakpoint selection that grows
/// monochromatic values into *maximal* monochromatic pieces, so that the
/// largest possible share of the domain can be transformed with arbitrary
/// bijections (F_bi) instead of merely (anti-)monotone functions.
///
/// After the scan, if fewer than the desired `w` breakpoints were found,
/// the remainder is drawn randomly from the non-monochromatic values, as
/// in ChooseBP (paper Figure 6, lines 18–20).

namespace popp {

/// Result of ChooseMaxMP: the final piece layout.
struct ChooseMaxMPResult {
  /// Sorted piece-start indices, beginning with 0.
  std::vector<size_t> piece_starts;
  /// Pieces induced by the starts, with monochromatic flags (a piece is
  /// monochromatic iff single-class and >= min_mono_width values wide).
  std::vector<PieceSpec> pieces;

  size_t NumMonochromatic() const;
};

/// Runs ChooseMaxMP on `summary`.
///
/// \param w              desired minimum number of breakpoints (the paper's
///                       experiments use w >= 20); the scan may produce
///                       more, and fewer are returned only when the domain
///                       runs out of values to break at.
/// \param min_mono_width monochromatic pieces narrower than this are merged
///                       into their neighbors and transformed monotonically
///                       (the paper's "minimum width threshold").
ChooseMaxMPResult ChooseMaxMP(const AttributeSummary& summary, size_t w,
                              size_t min_mono_width, Rng& rng);

}  // namespace popp

#endif  // POPP_TRANSFORM_CHOOSE_MAX_MP_H_
