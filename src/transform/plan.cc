#include "transform/plan.h"

#include <sstream>

#include "data/summary.h"
#include "util/status.h"

namespace popp {

TransformPlan TransformPlan::Create(const Dataset& data,
                                    const PiecewiseOptions& options,
                                    Rng& rng) {
  return CreatePerAttribute(
      data, std::vector<PiecewiseOptions>(data.NumAttributes(), options),
      rng);
}

TransformPlan TransformPlan::CreatePerAttribute(
    const Dataset& data, const std::vector<PiecewiseOptions>& options,
    Rng& rng) {
  POPP_CHECK_MSG(options.size() == data.NumAttributes(),
                 "need one PiecewiseOptions per attribute");
  TransformPlan plan;
  plan.transforms_.reserve(data.NumAttributes());
  for (size_t attr = 0; attr < data.NumAttributes(); ++attr) {
    const AttributeSummary summary =
        AttributeSummary::FromDataset(data, attr);
    plan.transforms_.push_back(
        PiecewiseTransform::Create(summary, options[attr], rng));
  }
  return plan;
}

TransformPlan TransformPlan::FromTransforms(
    std::vector<PiecewiseTransform> transforms) {
  POPP_CHECK_MSG(!transforms.empty(), "FromTransforms: no transforms");
  TransformPlan plan;
  plan.transforms_ = std::move(transforms);
  return plan;
}

const PiecewiseTransform& TransformPlan::transform(size_t attr) const {
  POPP_CHECK_MSG(attr < transforms_.size(), "bad attribute " << attr);
  return transforms_[attr];
}

AttrValue TransformPlan::Encode(size_t attr, AttrValue v) const {
  return transform(attr).Apply(v);
}

AttrValue TransformPlan::Decode(size_t attr, AttrValue v) const {
  return transform(attr).Inverse(v);
}

Dataset TransformPlan::EncodeDataset(const Dataset& data) const {
  POPP_CHECK_MSG(data.NumAttributes() == transforms_.size(),
                 "plan/dataset attribute count mismatch");
  Dataset out = data;  // copies schema + labels + values
  for (size_t attr = 0; attr < transforms_.size(); ++attr) {
    auto& col = out.MutableColumn(attr);
    const PiecewiseTransform& f = transforms_[attr];
    for (auto& v : col) {
      v = f.Apply(v);
    }
  }
  return out;
}

std::string TransformPlan::Describe(const Schema& schema) const {
  std::ostringstream oss;
  for (size_t attr = 0; attr < transforms_.size(); ++attr) {
    oss << schema.AttributeName(attr) << ": "
        << transforms_[attr].Describe();
  }
  return oss.str();
}

}  // namespace popp
