#include "transform/plan.h"

#include <sstream>

#include "data/summary.h"
#include "parallel/parallel_for.h"
#include "util/status.h"

namespace popp {

TransformPlan TransformPlan::Create(const Dataset& data,
                                    const PiecewiseOptions& options,
                                    Rng& rng, const ExecPolicy& exec) {
  return CreatePerAttribute(
      data, std::vector<PiecewiseOptions>(data.NumAttributes(), options),
      rng, exec);
}

TransformPlan TransformPlan::CreatePerAttribute(
    const Dataset& data, const std::vector<PiecewiseOptions>& options,
    Rng& rng, const ExecPolicy& exec) {
  POPP_CHECK_MSG(options.size() == data.NumAttributes(),
                 "need one PiecewiseOptions per attribute");
  TransformPlan plan;
  plan.transforms_.resize(data.NumAttributes());
  // Advance the caller's generator exactly once, then give every attribute
  // its own stateless child stream. Serial and parallel execution derive
  // the same streams, so the plan is bit-identical at any thread count.
  const Rng base = rng.Fork();
  ParallelFor(exec, data.NumAttributes(), [&](size_t attr) {
    Rng child = base.Fork(attr);
    const AttributeSummary summary =
        AttributeSummary::FromDataset(data, attr);
    plan.transforms_[attr] =
        PiecewiseTransform::Create(summary, options[attr], child);
  });
  return plan;
}

TransformPlan TransformPlan::CreateFromSummaries(
    const std::vector<AttributeSummary>& summaries,
    const PiecewiseOptions& options, Rng& rng, const ExecPolicy& exec) {
  POPP_CHECK_MSG(!summaries.empty(), "CreateFromSummaries: no summaries");
  TransformPlan plan;
  plan.transforms_.resize(summaries.size());
  // Identical RNG discipline to CreatePerAttribute: one fork of the
  // caller's stream, then index-derived children — so the plan matches the
  // batch fit bit-for-bit given equal summaries and seed.
  const Rng base = rng.Fork();
  ParallelFor(exec, summaries.size(), [&](size_t attr) {
    Rng child = base.Fork(attr);
    plan.transforms_[attr] =
        PiecewiseTransform::Create(summaries[attr], options, child);
  });
  return plan;
}

TransformPlan TransformPlan::FromTransforms(
    std::vector<PiecewiseTransform> transforms) {
  POPP_CHECK_MSG(!transforms.empty(), "FromTransforms: no transforms");
  TransformPlan plan;
  plan.transforms_ = std::move(transforms);
  return plan;
}

const PiecewiseTransform& TransformPlan::transform(size_t attr) const {
  POPP_CHECK_MSG(attr < transforms_.size(), "bad attribute " << attr);
  return transforms_[attr];
}

AttrValue TransformPlan::Encode(size_t attr, AttrValue v) const {
  return transform(attr).Apply(v);
}

AttrValue TransformPlan::Decode(size_t attr, AttrValue v) const {
  return transform(attr).Inverse(v);
}

Dataset TransformPlan::EncodeDataset(const Dataset& data,
                                     const ExecPolicy& exec) const {
  POPP_CHECK_MSG(data.NumAttributes() == transforms_.size(),
                 "plan/dataset attribute count mismatch");
  const size_t rows = data.NumRows();
  std::vector<std::vector<AttrValue>> columns(transforms_.size());
  ParallelFor(exec, transforms_.size(), [&](size_t attr) {
    const std::vector<AttrValue>& in = data.Column(attr);
    const PiecewiseTransform& f = transforms_[attr];
    std::vector<AttrValue> out(rows);
    for (size_t r = 0; r < rows; ++r) {
      out[r] = f.Apply(in[r]);
    }
    columns[attr] = std::move(out);
  });
  return Dataset(data.schema(), std::move(columns), data.labels());
}

std::string TransformPlan::Describe(const Schema& schema) const {
  std::ostringstream oss;
  for (size_t attr = 0; attr < transforms_.size(); ++attr) {
    oss << schema.AttributeName(attr) << ": "
        << transforms_[attr].Describe();
  }
  return oss.str();
}

}  // namespace popp
