#include "transform/serialize.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "transform/piecewise.h"

namespace popp {
namespace {

/// Renders a binary64 exactly: 17 significant decimal digits uniquely
/// identify every double, and strtod's correctly-rounded parse maps the
/// text back to the identical bits — including denormals, ±huge values and
/// signed zero. Piece domain/output endpoints therefore round-trip
/// bit-for-bit through popp-plan v1 (proved by the adversarial-endpoint
/// golden tests).
std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal whitespace tokenizer with typed reads and error context.
class Reader {
 public:
  explicit Reader(const std::string& text) : in_(text) {}

  Result<std::string> Word(const char* what) {
    std::string token;
    if (!(in_ >> token)) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     ", got end of input");
    }
    return token;
  }

  Status Expect(const std::string& literal) {
    auto word = Word(literal.c_str());
    POPP_RETURN_IF_ERROR(word.status());
    if (word.value() != literal) {
      return Status::InvalidArgument("expected '" + literal + "', got '" +
                                     word.value() + "'");
    }
    return Status::Ok();
  }

  /// Accepts anything strtod does — the %.17g decimals Num emits and also
  /// C99 hex-floats ("0x1.91eb851eb851fp+1"), so externally produced keys
  /// may spell endpoints in either exact form.
  Result<double> Number(const char* what) {
    auto word = Word(what);
    if (!word.ok()) return word.status();
    char* end = nullptr;
    const double v = std::strtod(word.value().c_str(), &end);
    if (end == word.value().c_str() || *end != '\0') {
      return Status::InvalidArgument(std::string("bad number for ") + what +
                                     ": '" + word.value() + "'");
    }
    return v;
  }

  Result<size_t> Count(const char* what) {
    auto v = Number(what);
    if (!v.ok()) return v.status();
    if (v.value() < 0 || v.value() != static_cast<size_t>(v.value())) {
      return Status::InvalidArgument(std::string("bad count for ") + what);
    }
    return static_cast<size_t>(v.value());
  }

 private:
  std::istringstream in_;
};

void SerializeFunction(const Transformation& fn, std::ostringstream& out) {
  if (fn.kind() == FunctionKind::kBijective) {
    const auto& perm = static_cast<const PermutationFunction&>(fn);
    out << "perm " << perm.size() << "\n";
    for (size_t i = 0; i < perm.size(); ++i) {
      out << Num(perm.domain()[i]) << " " << Num(perm.image()[i]) << "\n";
    }
    return;
  }
  const auto& rescaled = static_cast<const RescaledFunction&>(fn);
  out << "rescaled " << rescaled.shape().Serialize() << " "
      << Num(rescaled.dlo()) << " " << Num(rescaled.dhi()) << " "
      << Num(rescaled.olo()) << " " << Num(rescaled.ohi()) << " "
      << (rescaled.anti_monotone() ? 1 : 0) << "\n";
}

Result<std::unique_ptr<Transformation>> ParseFunction(Reader& reader) {
  auto kind = reader.Word("function kind");
  if (!kind.ok()) return kind.status();
  if (kind.value() == "perm") {
    auto count = reader.Count("perm size");
    if (!count.ok()) return count.status();
    std::vector<AttrValue> domain(count.value()), image(count.value());
    for (size_t i = 0; i < count.value(); ++i) {
      auto d = reader.Number("perm domain value");
      if (!d.ok()) return d.status();
      auto m = reader.Number("perm image value");
      if (!m.ok()) return m.status();
      domain[i] = d.value();
      image[i] = m.value();
    }
    return {std::make_unique<PermutationFunction>(std::move(domain),
                                                  std::move(image))};
  }
  if (kind.value() == "rescaled") {
    auto shape_name = reader.Word("shape name");
    if (!shape_name.ok()) return shape_name.status();
    std::string token = shape_name.value();
    if (token != "linear") {
      auto param = reader.Number("shape parameter");
      if (!param.ok()) return param.status();
      token += " " + Num(param.value());
    }
    auto shape = ParseShape(token);
    if (!shape.ok()) return shape.status();
    auto dlo = reader.Number("dlo");
    if (!dlo.ok()) return dlo.status();
    auto dhi = reader.Number("dhi");
    if (!dhi.ok()) return dhi.status();
    auto olo = reader.Number("olo");
    if (!olo.ok()) return olo.status();
    auto ohi = reader.Number("ohi");
    if (!ohi.ok()) return ohi.status();
    auto anti = reader.Number("anti flag");
    if (!anti.ok()) return anti.status();
    return {std::make_unique<RescaledFunction>(
        std::move(shape).value(), dlo.value(), dhi.value(), olo.value(),
        ohi.value(), anti.value() != 0.0)};
  }
  return Status::InvalidArgument("unknown function kind '" + kind.value() +
                                 "'");
}

}  // namespace

Result<std::unique_ptr<ShapeFunction>> ParseShape(const std::string& token) {
  std::istringstream in(token);
  std::string name;
  in >> name;
  if (name == "linear") {
    return {std::make_unique<IdentityShape>()};
  }
  double param = 0;
  if (!(in >> param) || param <= 0.0) {
    return Status::InvalidArgument("bad shape parameter in '" + token + "'");
  }
  if (name == "power") return {std::make_unique<PowerShape>(param)};
  if (name == "log") return {std::make_unique<LogShape>(param)};
  if (name == "sqrtlog") return {std::make_unique<SqrtLogShape>(param)};
  return Status::InvalidArgument("unknown shape '" + name + "'");
}

std::string SerializePlan(const TransformPlan& plan) {
  std::ostringstream out;
  out << "popp-plan v1\n";
  out << "attributes " << plan.NumAttributes() << "\n";
  for (size_t attr = 0; attr < plan.NumAttributes(); ++attr) {
    const PiecewiseTransform& f = plan.transform(attr);
    out << "attribute " << attr << " pieces " << f.NumPieces()
        << " global_anti " << (f.global_anti_monotone() ? 1 : 0) << "\n";
    for (size_t p = 0; p < f.NumPieces(); ++p) {
      const auto& piece = f.piece(p);
      out << "piece " << Num(piece.domain_lo) << " " << Num(piece.domain_hi)
          << " " << Num(piece.out_lo) << " " << Num(piece.out_hi) << " "
          << (piece.bijective ? 1 : 0) << "\n";
      SerializeFunction(*piece.fn, out);
    }
  }
  return out.str();
}

Result<TransformPlan> ParsePlan(const std::string& text) {
  Reader reader(text);
  POPP_RETURN_IF_ERROR(reader.Expect("popp-plan"));
  POPP_RETURN_IF_ERROR(reader.Expect("v1"));
  POPP_RETURN_IF_ERROR(reader.Expect("attributes"));
  auto num_attrs = reader.Count("attribute count");
  if (!num_attrs.ok()) return num_attrs.status();

  std::vector<PiecewiseTransform> transforms;
  transforms.reserve(num_attrs.value());
  for (size_t attr = 0; attr < num_attrs.value(); ++attr) {
    POPP_RETURN_IF_ERROR(reader.Expect("attribute"));
    auto index = reader.Count("attribute index");
    if (!index.ok()) return index.status();
    if (index.value() != attr) {
      return Status::InvalidArgument("attribute indices out of order");
    }
    POPP_RETURN_IF_ERROR(reader.Expect("pieces"));
    auto num_pieces = reader.Count("piece count");
    if (!num_pieces.ok()) return num_pieces.status();
    POPP_RETURN_IF_ERROR(reader.Expect("global_anti"));
    auto anti = reader.Count("global_anti flag");
    if (!anti.ok()) return anti.status();

    std::vector<PiecewiseTransform::Piece> pieces(num_pieces.value());
    for (auto& piece : pieces) {
      POPP_RETURN_IF_ERROR(reader.Expect("piece"));
      auto dlo = reader.Number("piece domain_lo");
      if (!dlo.ok()) return dlo.status();
      auto dhi = reader.Number("piece domain_hi");
      if (!dhi.ok()) return dhi.status();
      auto olo = reader.Number("piece out_lo");
      if (!olo.ok()) return olo.status();
      auto ohi = reader.Number("piece out_hi");
      if (!ohi.ok()) return ohi.status();
      auto bijective = reader.Count("piece bijective flag");
      if (!bijective.ok()) return bijective.status();
      piece.domain_lo = dlo.value();
      piece.domain_hi = dhi.value();
      piece.out_lo = olo.value();
      piece.out_hi = ohi.value();
      piece.bijective = bijective.value() != 0;
      auto fn = ParseFunction(reader);
      if (!fn.ok()) return fn.status();
      piece.fn = std::move(fn).value();
    }
    transforms.push_back(
        PiecewiseTransform::FromPieces(std::move(pieces), anti.value() != 0));
  }
  return TransformPlan::FromTransforms(std::move(transforms));
}

Status SavePlan(const TransformPlan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << SerializePlan(plan);
  if (!out) {
    return Status::IoError("error writing '" + path + "'");
  }
  return Status::Ok();
}

Result<TransformPlan> LoadPlan(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParsePlan(buffer.str());
}

}  // namespace popp
