#include "transform/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "fault/file.h"
#include "transform/piecewise.h"
#include "util/integrity.h"

namespace popp {
namespace {

/// Renders a binary64 exactly: 17 significant decimal digits uniquely
/// identify every double, and strtod's correctly-rounded parse maps the
/// text back to the identical bits — including denormals, ±huge values and
/// signed zero. Piece domain/output endpoints therefore round-trip
/// bit-for-bit through popp-plan v2 (proved by the adversarial-endpoint
/// golden tests).
std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal whitespace tokenizer with typed reads and error context.
///
/// Parsing is adversarial: the document may be corrupt or hostile, so
/// every count is sanity-capped by the document size (a well-formed
/// document spends at least two bytes per counted item) before any
/// allocation happens.
class Reader {
 public:
  explicit Reader(const std::string& text)
      : in_(text), count_limit_(text.size()) {}

  Result<std::string> Word(const char* what) {
    std::string token;
    if (!(in_ >> token)) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     ", got end of input");
    }
    return token;
  }

  Status Expect(const std::string& literal) {
    auto word = Word(literal.c_str());
    POPP_RETURN_IF_ERROR(word.status());
    if (word.value() != literal) {
      return Status::InvalidArgument("expected '" + literal + "', got '" +
                                     word.value() + "'");
    }
    return Status::Ok();
  }

  /// Accepts anything strtod does — the %.17g decimals Num emits and also
  /// C99 hex-floats ("0x1.91eb851eb851fp+1"), so externally produced keys
  /// may spell endpoints in either exact form.
  Result<double> Number(const char* what) {
    auto word = Word(what);
    if (!word.ok()) return word.status();
    char* end = nullptr;
    const double v = std::strtod(word.value().c_str(), &end);
    if (end == word.value().c_str() || *end != '\0') {
      return Status::InvalidArgument(std::string("bad number for ") + what +
                                     ": '" + word.value() + "'");
    }
    return v;
  }

  Result<size_t> Count(const char* what) {
    auto v = Number(what);
    if (!v.ok()) return v.status();
    if (v.value() < 0 || v.value() != static_cast<size_t>(v.value())) {
      return Status::InvalidArgument(std::string("bad count for ") + what);
    }
    const size_t count = static_cast<size_t>(v.value());
    if (count > count_limit_) {
      std::ostringstream oss;
      oss << "implausible count for " << what << " (" << count
          << " exceeds document size " << count_limit_ << ")";
      return Status::InvalidArgument(oss.str());
    }
    return count;
  }

 private:
  std::istringstream in_;
  size_t count_limit_;
};

void SerializeFunction(const Transformation& fn, std::ostringstream& out) {
  if (fn.kind() == FunctionKind::kBijective) {
    const auto& perm = static_cast<const PermutationFunction&>(fn);
    out << "perm " << perm.size() << "\n";
    for (size_t i = 0; i < perm.size(); ++i) {
      out << Num(perm.domain()[i]) << " " << Num(perm.image()[i]) << "\n";
    }
    return;
  }
  const auto& rescaled = static_cast<const RescaledFunction&>(fn);
  out << "rescaled " << rescaled.shape().Serialize() << " "
      << Num(rescaled.dlo()) << " " << Num(rescaled.dhi()) << " "
      << Num(rescaled.olo()) << " " << Num(rescaled.ohi()) << " "
      << (rescaled.anti_monotone() ? 1 : 0) << "\n";
}

/// Parses and fully validates one transformation. The constructors treat
/// invariant violations as programmer errors (they abort), so a document
/// that came off a disk must prove every invariant here first.
Result<std::unique_ptr<Transformation>> ParseFunction(Reader& reader) {
  auto kind = reader.Word("function kind");
  if (!kind.ok()) return kind.status();
  if (kind.value() == "perm") {
    auto count = reader.Count("perm size");
    if (!count.ok()) return count.status();
    if (count.value() == 0) {
      return Status::InvalidArgument("empty permutation");
    }
    std::vector<AttrValue> domain(count.value()), image(count.value());
    for (size_t i = 0; i < count.value(); ++i) {
      auto d = reader.Number("perm domain value");
      if (!d.ok()) return d.status();
      auto m = reader.Number("perm image value");
      if (!m.ok()) return m.status();
      if (!std::isfinite(d.value()) || !std::isfinite(m.value())) {
        return Status::InvalidArgument(
            "non-finite value in permutation entry");
      }
      domain[i] = d.value();
      image[i] = m.value();
    }
    for (size_t i = 1; i < domain.size(); ++i) {
      if (!(domain[i - 1] < domain[i])) {
        return Status::InvalidArgument(
            "permutation domain not strictly increasing");
      }
    }
    std::vector<AttrValue> sorted_image = image;
    std::sort(sorted_image.begin(), sorted_image.end());
    for (size_t i = 1; i < sorted_image.size(); ++i) {
      if (!(sorted_image[i - 1] < sorted_image[i])) {
        return Status::InvalidArgument(
            "permutation image values not distinct");
      }
    }
    return {std::make_unique<PermutationFunction>(std::move(domain),
                                                  std::move(image))};
  }
  if (kind.value() == "rescaled") {
    auto shape_name = reader.Word("shape name");
    if (!shape_name.ok()) return shape_name.status();
    std::string token = shape_name.value();
    if (token != "linear") {
      auto param = reader.Number("shape parameter");
      if (!param.ok()) return param.status();
      token += " " + Num(param.value());
    }
    auto shape = ParseShape(token);
    if (!shape.ok()) return shape.status();
    auto dlo = reader.Number("dlo");
    if (!dlo.ok()) return dlo.status();
    auto dhi = reader.Number("dhi");
    if (!dhi.ok()) return dhi.status();
    auto olo = reader.Number("olo");
    if (!olo.ok()) return olo.status();
    auto ohi = reader.Number("ohi");
    if (!ohi.ok()) return ohi.status();
    auto anti = reader.Number("anti flag");
    if (!anti.ok()) return anti.status();
    if (!(dlo.value() < dhi.value())) {
      return Status::InvalidArgument(
          "rescaled function has an empty domain interval");
    }
    if (!(olo.value() < ohi.value())) {
      return Status::InvalidArgument(
          "rescaled function has an empty output interval");
    }
    return {std::make_unique<RescaledFunction>(
        std::move(shape).value(), dlo.value(), dhi.value(), olo.value(),
        ohi.value(), anti.value() != 0.0)};
  }
  return Status::InvalidArgument("unknown function kind '" + kind.value() +
                                 "'");
}

/// Body parser over a footer-stripped payload. Reports failures as
/// kInvalidArgument; the public entry point rebrands them kDataLoss (a
/// document that fails to parse is untrustworthy bytes, whatever the
/// detail).
Result<TransformPlan> ParsePlanPayload(const std::string& payload,
                                       bool had_footer) {
  Reader reader(payload);
  POPP_RETURN_IF_ERROR(reader.Expect("popp-plan"));
  auto version = reader.Word("format version");
  if (!version.ok()) return version.status();
  if (version.value() == "v2") {
    if (!had_footer) {
      return Status::InvalidArgument(
          "popp-plan v2 requires an integrity footer and none was found — "
          "file truncated?");
    }
  } else if (version.value() != "v1") {
    return Status::InvalidArgument("unsupported popp-plan version '" +
                                   version.value() + "'");
  }
  POPP_RETURN_IF_ERROR(reader.Expect("attributes"));
  auto num_attrs = reader.Count("attribute count");
  if (!num_attrs.ok()) return num_attrs.status();
  if (num_attrs.value() == 0) {
    return Status::InvalidArgument("plan has no attributes");
  }

  std::vector<PiecewiseTransform> transforms;
  transforms.reserve(num_attrs.value());
  for (size_t attr = 0; attr < num_attrs.value(); ++attr) {
    POPP_RETURN_IF_ERROR(reader.Expect("attribute"));
    auto index = reader.Count("attribute index");
    if (!index.ok()) return index.status();
    if (index.value() != attr) {
      return Status::InvalidArgument("attribute indices out of order");
    }
    POPP_RETURN_IF_ERROR(reader.Expect("pieces"));
    auto num_pieces = reader.Count("piece count");
    if (!num_pieces.ok()) return num_pieces.status();
    if (num_pieces.value() == 0) {
      std::ostringstream oss;
      oss << "attribute " << attr << " has no pieces";
      return Status::InvalidArgument(oss.str());
    }
    POPP_RETURN_IF_ERROR(reader.Expect("global_anti"));
    auto anti = reader.Count("global_anti flag");
    if (!anti.ok()) return anti.status();
    const bool global_anti = anti.value() != 0;

    std::vector<PiecewiseTransform::Piece> pieces(num_pieces.value());
    for (size_t p = 0; p < pieces.size(); ++p) {
      auto& piece = pieces[p];
      POPP_RETURN_IF_ERROR(reader.Expect("piece"));
      auto dlo = reader.Number("piece domain_lo");
      if (!dlo.ok()) return dlo.status();
      auto dhi = reader.Number("piece domain_hi");
      if (!dhi.ok()) return dhi.status();
      auto olo = reader.Number("piece out_lo");
      if (!olo.ok()) return olo.status();
      auto ohi = reader.Number("piece out_hi");
      if (!ohi.ok()) return ohi.status();
      auto bijective = reader.Count("piece bijective flag");
      if (!bijective.ok()) return bijective.status();
      piece.domain_lo = dlo.value();
      piece.domain_hi = dhi.value();
      piece.out_lo = olo.value();
      piece.out_hi = ohi.value();
      piece.bijective = bijective.value() != 0;
      // Mirror the FromPieces invariants (which abort on violation): piece
      // intervals must be well-formed, domains disjoint and increasing,
      // outputs ordered according to the global monotonicity direction.
      // The negated comparisons also reject NaN endpoints.
      if (!(piece.domain_lo <= piece.domain_hi)) {
        return Status::InvalidArgument("piece has an empty domain interval");
      }
      if (p > 0) {
        const auto& prev = pieces[p - 1];
        if (!(prev.domain_hi < piece.domain_lo)) {
          return Status::InvalidArgument(
              "piece domains overlap or are out of order");
        }
        if (!global_anti && !(prev.out_hi < piece.out_lo)) {
          return Status::InvalidArgument(
              "piece outputs out of order for a monotone transform");
        }
        if (global_anti && !(prev.out_lo > piece.out_hi)) {
          return Status::InvalidArgument(
              "piece outputs out of order for an anti-monotone transform");
        }
      }
      auto fn = ParseFunction(reader);
      if (!fn.ok()) return fn.status();
      piece.fn = std::move(fn).value();
    }
    transforms.push_back(
        PiecewiseTransform::FromPieces(std::move(pieces), global_anti));
  }
  return TransformPlan::FromTransforms(std::move(transforms));
}

}  // namespace

Result<std::unique_ptr<ShapeFunction>> ParseShape(const std::string& token) {
  std::istringstream in(token);
  std::string name;
  in >> name;
  if (name == "linear") {
    return {std::make_unique<IdentityShape>()};
  }
  double param = 0;
  if (!(in >> param) || !(param > 0.0)) {
    return Status::InvalidArgument("bad shape parameter in '" + token + "'");
  }
  if (name == "power") return {std::make_unique<PowerShape>(param)};
  if (name == "log") return {std::make_unique<LogShape>(param)};
  if (name == "sqrtlog") return {std::make_unique<SqrtLogShape>(param)};
  return Status::InvalidArgument("unknown shape '" + name + "'");
}

std::string SerializePlan(const TransformPlan& plan) {
  std::ostringstream out;
  out << "popp-plan v2\n";
  out << "attributes " << plan.NumAttributes() << "\n";
  for (size_t attr = 0; attr < plan.NumAttributes(); ++attr) {
    const PiecewiseTransform& f = plan.transform(attr);
    out << "attribute " << attr << " pieces " << f.NumPieces()
        << " global_anti " << (f.global_anti_monotone() ? 1 : 0) << "\n";
    for (size_t p = 0; p < f.NumPieces(); ++p) {
      const auto& piece = f.piece(p);
      out << "piece " << Num(piece.domain_lo) << " " << Num(piece.domain_hi)
          << " " << Num(piece.out_lo) << " " << Num(piece.out_hi) << " "
          << (piece.bijective ? 1 : 0) << "\n";
      SerializeFunction(*piece.fn, out);
    }
  }
  return WithIntegrityFooter(out.str());
}

Result<TransformPlan> ParsePlan(const std::string& text) {
  bool had_footer = false;
  auto payload = VerifyIntegrityFooter(text, &had_footer);
  if (!payload.ok()) return payload.status();
  auto plan = ParsePlanPayload(std::string(payload.value()), had_footer);
  if (!plan.ok()) {
    // Whatever the parse-level detail, the document as a whole is
    // untrustworthy: report it under the integrity taxonomy.
    return Status::DataLoss(plan.status().message());
  }
  return plan;
}

Status SavePlan(const TransformPlan& plan, const std::string& path) {
  return fault::WriteFileAtomic(path, SerializePlan(plan));
}

Result<TransformPlan> LoadPlan(const std::string& path) {
  auto text = fault::ReadFileToString(path);
  if (!text.ok()) return text.status();
  auto plan = ParsePlan(text.value());
  if (!plan.ok()) {
    return Status(plan.status().code(),
                  "key file '" + path + "': " + plan.status().message());
  }
  return plan;
}

}  // namespace popp
