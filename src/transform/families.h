#ifndef POPP_TRANSFORM_FAMILIES_H_
#define POPP_TRANSFORM_FAMILIES_H_

#include <memory>
#include <vector>

#include "transform/function.h"
#include "util/rng.h"

/// \file
/// Randomized selection of transformation functions (paper Section 5.3):
/// "after breakpoints are selected, the next step is to choose a
/// transformation for each piece from a family of functions".

namespace popp {

/// Configuration of the function family to sample from.
///
/// F_mono members: linear, higher-order polynomials (power k in
/// [min_power, max_power]), log, and sqrt(log) — exactly the families the
/// paper's experiments use. Each can be disabled; `forced_shape` pins the
/// choice for controlled experiments (the Section 6.2.2 table).
struct FamilyOptions {
  enum class ShapeChoice {
    kRandom,      ///< uniform over the enabled shapes
    kLinear,
    kPolynomial,  ///< power with random exponent in [min_power, max_power]
    kLog,
    kSqrtLog,
  };
  ShapeChoice forced_shape = ShapeChoice::kRandom;

  bool allow_linear = true;
  bool allow_polynomial = true;
  bool allow_log = true;
  bool allow_sqrt_log = true;

  /// Exponent range for polynomial shapes (the paper uses degree >= 2).
  double min_power = 2.0;
  double max_power = 3.0;

  /// Curvature range for log / sqrt-log shapes.
  double min_alpha = 1.0;
  double max_alpha = 8.0;

  /// Probability that a sampled piece function is anti-monotone
  /// (0 disables anti-monotone members).
  double anti_monotone_prob = 0.5;
};

/// Samples a shape according to `options`. At least one shape must be
/// enabled (or forced).
std::unique_ptr<ShapeFunction> SampleShape(const FamilyOptions& options,
                                           Rng& rng);

/// Samples an F_mono member carrying [dlo, dhi] onto [olo, ohi]; the
/// direction (monotone vs anti-monotone) is drawn from
/// options.anti_monotone_prob.
///
/// Direction freedom is only outcome-safe on monochromatic pieces (or for
/// a whole-domain transform): an anti-monotone function on a
/// non-monochromatic piece reverses that piece's sub-class-string and
/// breaks the no-outcome-change guarantee. PiecewiseTransform::Create
/// therefore uses SampleMonotoneDirected for non-monochromatic pieces.
std::unique_ptr<Transformation> SampleMonotone(const FamilyOptions& options,
                                               AttrValue dlo, AttrValue dhi,
                                               AttrValue olo, AttrValue ohi,
                                               Rng& rng);

/// Samples an F_mono member with the direction pinned by the caller.
std::unique_ptr<Transformation> SampleMonotoneDirected(
    const FamilyOptions& options, AttrValue dlo, AttrValue dhi, AttrValue olo,
    AttrValue ohi, bool anti_monotone, Rng& rng);

/// Samples an F_bi member: a random bijection from `domain_values` (sorted,
/// distinct) onto jittered positions inside [olo, ohi], randomly permuted.
/// This is the "random permutation function" of Section 6.1.
std::unique_ptr<Transformation> SamplePermutation(
    const std::vector<AttrValue>& domain_values, AttrValue olo, AttrValue ohi,
    Rng& rng);

}  // namespace popp

#endif  // POPP_TRANSFORM_FAMILIES_H_
