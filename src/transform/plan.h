#ifndef POPP_TRANSFORM_PLAN_H_
#define POPP_TRANSFORM_PLAN_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "parallel/exec_policy.h"
#include "transform/piecewise.h"
#include "util/rng.h"

/// \file
/// A TransformPlan is the custodian's complete encoding key for one
/// dataset: one PiecewiseTransform per attribute (the vector of
/// transformations f of Section 3.1). It encodes D into D' for release and
/// decodes values/thresholds of the mining outcome back into the original
/// space. Class labels are never transformed (the paper transforms
/// attribute values only).

namespace popp {

class TransformPlan {
 public:
  TransformPlan() = default;

  /// Samples a fresh plan for `data`, using the same options for every
  /// attribute. Every attribute must have at least one value. Attributes
  /// are processed under `exec` (serial by default); the plan is
  /// bit-identical for every thread count because each attribute draws
  /// from its own index-derived RNG stream.
  static TransformPlan Create(const Dataset& data,
                              const PiecewiseOptions& options, Rng& rng,
                              const ExecPolicy& exec = {});

  /// Samples a plan with per-attribute options; `options.size()` must
  /// equal data.NumAttributes().
  static TransformPlan CreatePerAttribute(
      const Dataset& data, const std::vector<PiecewiseOptions>& options,
      Rng& rng, const ExecPolicy& exec = {});

  /// Samples a plan from precomputed per-attribute summaries (one per
  /// attribute, each non-empty). Consumes `rng` exactly like Create on a
  /// dataset with these summaries, so a fit from incrementally merged
  /// chunk summaries (src/stream) is byte-identical to the batch fit for
  /// the same seed.
  static TransformPlan CreateFromSummaries(
      const std::vector<AttributeSummary>& summaries,
      const PiecewiseOptions& options, Rng& rng, const ExecPolicy& exec = {});

  /// Reassembles a plan from explicit per-attribute transforms
  /// (deserialization).
  static TransformPlan FromTransforms(
      std::vector<PiecewiseTransform> transforms);

  size_t NumAttributes() const { return transforms_.size(); }

  const PiecewiseTransform& transform(size_t attr) const;

  /// Encodes one value of attribute `attr`.
  AttrValue Encode(size_t attr, AttrValue v) const;

  /// Decodes one transformed value of attribute `attr`.
  AttrValue Decode(size_t attr, AttrValue v) const;

  /// Produces D': every attribute column transformed, labels unchanged.
  /// `data` must have the same number of attributes as the plan.
  /// Attributes are encoded under `exec` (serial by default) into freshly
  /// allocated columns (no copy-then-overwrite); the output is
  /// bit-identical at every thread count.
  Dataset EncodeDataset(const Dataset& data, const ExecPolicy& exec = {}) const;

  /// Renders the decoding key the custodian stores: per attribute, the
  /// breakpoints and the function used in each piece (Section 5.4 notes
  /// this is all that must be kept).
  std::string Describe(const Schema& schema) const;

 private:
  std::vector<PiecewiseTransform> transforms_;
};

}  // namespace popp

#endif  // POPP_TRANSFORM_PLAN_H_
