#include "transform/pieces.h"

#include "util/status.h"

namespace popp {

bool IsMonochromaticRange(const AttributeSummary& summary, size_t begin,
                          size_t end) {
  POPP_CHECK(begin < end && end <= summary.NumDistinct());
  const ClassId common = summary.MonoClassAt(begin);
  if (common == kNoClass) return false;
  for (size_t i = begin + 1; i < end; ++i) {
    if (summary.MonoClassAt(i) != common) return false;
  }
  return true;
}

std::vector<PieceSpec> ComputePieces(const AttributeSummary& summary,
                                     const std::vector<size_t>& starts,
                                     size_t min_mono_width) {
  const size_t n = summary.NumDistinct();
  POPP_CHECK_MSG(!starts.empty() && starts[0] == 0,
                 "piece starts must begin with 0");
  std::vector<PieceSpec> pieces;
  pieces.reserve(starts.size());
  for (size_t k = 0; k < starts.size(); ++k) {
    PieceSpec piece;
    piece.begin = starts[k];
    piece.end = (k + 1 < starts.size()) ? starts[k + 1] : n;
    POPP_CHECK_MSG(piece.begin < piece.end,
                   "piece starts must be strictly increasing and < n");
    piece.monochromatic =
        piece.length() >= min_mono_width &&
        IsMonochromaticRange(summary, piece.begin, piece.end);
    pieces.push_back(piece);
  }
  return pieces;
}

std::vector<PieceSpec> MaximalMonochromaticPieces(
    const AttributeSummary& summary, size_t min_width) {
  std::vector<PieceSpec> pieces;
  const size_t n = summary.NumDistinct();
  size_t i = 0;
  while (i < n) {
    const ClassId mono = summary.MonoClassAt(i);
    if (mono == kNoClass) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n && summary.MonoClassAt(j) == mono) ++j;
    if (j - i >= min_width) {
      pieces.push_back(PieceSpec{i, j, true});
    }
    i = j;
  }
  return pieces;
}

MonoStats ComputeMonoStats(const AttributeSummary& summary,
                           size_t min_width) {
  MonoStats stats;
  const auto pieces = MaximalMonochromaticPieces(summary, min_width);
  stats.num_pieces = pieces.size();
  size_t covered = 0;
  for (const auto& piece : pieces) covered += piece.length();
  if (!pieces.empty()) {
    stats.avg_length =
        static_cast<double>(covered) / static_cast<double>(pieces.size());
  }
  if (summary.NumDistinct() > 0) {
    stats.value_fraction = static_cast<double>(covered) /
                           static_cast<double>(summary.NumDistinct());
  }
  return stats;
}

}  // namespace popp
