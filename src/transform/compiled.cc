#include "transform/compiled.h"

#include <utility>

#include "parallel/parallel_for.h"
#include "transform/function.h"
#include "util/status.h"

namespace popp {
namespace {

/// Row-block granularity of the (attribute x block) task grid: large enough
/// to amortize task dispatch, small enough that a 100k-row column still
/// splits across every worker.
constexpr size_t kBlockRows = 8192;

}  // namespace

DomainBounds DomainBounds::Of(const PiecewiseTransform& t) {
  POPP_CHECK_MSG(t.NumPieces() > 0, "DomainBounds of an empty transform");
  DomainBounds b;
  b.lo = t.piece(0).domain_lo;
  b.hi = t.piece(t.NumPieces() - 1).domain_hi;
  b.out_min = t.piece(0).out_lo;
  b.out_max = t.piece(0).out_hi;
  for (size_t i = 1; i < t.NumPieces(); ++i) {
    b.out_min = std::min(b.out_min, t.piece(i).out_lo);
    b.out_max = std::max(b.out_max, t.piece(i).out_hi);
  }
  const AttrValue domain_width = b.hi - b.lo;
  b.slope = domain_width > 0 ? (b.out_max - b.out_min) / domain_width : 1.0;
  b.anti = t.global_anti_monotone();
  return b;
}

CompiledTransform CompiledTransform::Compile(const PiecewiseTransform& t,
                                             const CompileOptions& options) {
  POPP_CHECK_MSG(t.NumPieces() > 0, "Compile on an empty transform");
  const size_t k = t.NumPieces();
  CompiledTransform c;
  c.global_anti_ = t.global_anti_monotone();
  c.domain_lo_.reserve(k);
  c.domain_hi_.reserve(k);
  c.out_lo_.reserve(k);
  c.out_hi_.reserve(k);
  c.tag_.reserve(k);
  c.anti_.reserve(k);
  c.fdlo_.reserve(k);
  c.fdhi_.reserve(k);
  c.folo_.reserve(k);
  c.fohi_.reserve(k);
  c.param_.reserve(k);
  c.denom_.reserve(k);
  c.perm_off_.reserve(k + 1);
  c.perm_off_.push_back(0);

  bool integral_hull = true;
  for (size_t d = 0; d < k; ++d) {
    const PiecewiseTransform::Piece& piece = t.piece(d);
    c.domain_lo_.push_back(piece.domain_lo);
    c.domain_hi_.push_back(piece.domain_hi);
    c.out_lo_.push_back(piece.out_lo);
    c.out_hi_.push_back(piece.out_hi);
    integral_hull = integral_hull &&
                    piece.domain_lo == std::floor(piece.domain_lo) &&
                    piece.domain_hi == std::floor(piece.domain_hi);

    if (const auto* perm =
            dynamic_cast<const PermutationFunction*>(piece.fn.get())) {
      c.tag_.push_back(static_cast<uint8_t>(PieceTag::kPerm));
      c.anti_.push_back(0);
      c.fdlo_.push_back(0);
      c.fdhi_.push_back(0);
      c.folo_.push_back(0);
      c.fohi_.push_back(0);
      c.param_.push_back(0);
      c.denom_.push_back(0);
      const auto& dom = perm->domain();
      const auto& img = perm->image();
      c.perm_domain_.insert(c.perm_domain_.end(), dom.begin(), dom.end());
      c.perm_image_.insert(c.perm_image_.end(), img.begin(), img.end());
      // Image-sorted inverse index, exactly as PermutationFunction builds
      // its by_image_ pairs.
      std::vector<std::pair<AttrValue, AttrValue>> by_image;
      by_image.reserve(img.size());
      for (size_t i = 0; i < img.size(); ++i) {
        by_image.emplace_back(img[i], dom[i]);
      }
      std::sort(by_image.begin(), by_image.end());
      for (const auto& [image, preimage] : by_image) {
        c.perm_img_sorted_.push_back(image);
        c.perm_preimage_.push_back(preimage);
      }
      c.perm_off_.push_back(c.perm_domain_.size());
      continue;
    }

    const auto* rescaled =
        dynamic_cast<const RescaledFunction*>(piece.fn.get());
    POPP_CHECK_MSG(rescaled != nullptr,
                   "Compile: piece " << d << " has an unknown function type");
    c.anti_.push_back(rescaled->anti_monotone() ? 1 : 0);
    c.fdlo_.push_back(rescaled->dlo());
    c.fdhi_.push_back(rescaled->dhi());
    c.folo_.push_back(rescaled->olo());
    c.fohi_.push_back(rescaled->ohi());
    const ShapeFunction& shape = rescaled->shape();
    if (const auto* power = dynamic_cast<const PowerShape*>(&shape)) {
      c.tag_.push_back(static_cast<uint8_t>(PieceTag::kPower));
      c.param_.push_back(power->exponent());
      c.denom_.push_back(0);
    } else if (const auto* log = dynamic_cast<const LogShape*>(&shape)) {
      c.tag_.push_back(static_cast<uint8_t>(PieceTag::kLog));
      c.param_.push_back(log->alpha());
      c.denom_.push_back(std::log1p(log->alpha()));
    } else if (const auto* sqrt_log =
                   dynamic_cast<const SqrtLogShape*>(&shape)) {
      c.tag_.push_back(static_cast<uint8_t>(PieceTag::kSqrtLog));
      c.param_.push_back(sqrt_log->alpha());
      c.denom_.push_back(std::log1p(sqrt_log->alpha()));
    } else {
      POPP_CHECK_MSG(dynamic_cast<const IdentityShape*>(&shape) != nullptr,
                     "Compile: piece " << d << " has an unknown shape");
      c.tag_.push_back(static_cast<uint8_t>(PieceTag::kLinear));
      c.param_.push_back(0);
      c.denom_.push_back(0);
    }
    c.perm_off_.push_back(c.perm_domain_.size());
  }

  // Inverse piece routing: output-interval bounds in output order.
  c.oolo_.resize(k);
  c.oohi_.resize(k);
  for (size_t p = 0; p < k; ++p) {
    const size_t d = c.OutToDomain(p);
    c.oolo_[p] = c.out_lo_[d];
    c.oohi_[p] = c.out_hi_[d];
  }

  c.bounds_ = DomainBounds::Of(t);

  // LUT eligibility rule: every piece's domain endpoints are integral (a
  // small-integer active domain, the covertype shape) and the hull holds at
  // most max_lut_entries integers. Entries are the *interpreted* images, so
  // a LUT hit is bit-identical to PiecewiseTransform::Apply by construction.
  if (options.enable_lut && integral_hull) {
    const double base = std::ceil(c.bounds_.lo);
    const double last = std::floor(c.bounds_.hi);
    const double span = last - base;
    if (span >= 0 &&
        span < static_cast<double>(options.max_lut_entries)) {
      c.lut_base_ = base;
      c.lut_last_ = last;
      c.lut_.reserve(static_cast<size_t>(span) + 1);
      for (double v = base; v <= last; v += 1.0) {
        c.lut_.push_back(t.Apply(v));
      }
      c.has_lut_ = true;
    }
  }
  return c;
}

AttrValue CompiledTransform::ApplySearch(AttrValue x) const {
  POPP_DCHECK(!tag_.empty());
  // Largest d with domain_lo_[d] <= x (clamped to 0) — the same binary
  // search as PiecewiseTransform::DomainPieceIndex, over a flat array.
  const size_t k = tag_.size();
  size_t lo = 0, hi = k;
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (domain_lo_[mid] <= x) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (x <= domain_hi_[lo] || lo + 1 == k) {
    return EvalPiece(lo, x);
  }
  // Domain gap between pieces lo and lo+1: linear output bridge in the
  // global direction (PiecewiseTransform::Apply's gap branch, verbatim).
  const double t = (x - domain_hi_[lo]) / (domain_lo_[lo + 1] - domain_hi_[lo]);
  if (!global_anti_) {
    return out_hi_[lo] + t * (out_lo_[lo + 1] - out_hi_[lo]);
  }
  return out_lo_[lo] + t * (out_hi_[lo + 1] - out_lo_[lo]);
}

AttrValue CompiledTransform::EvalPiece(size_t d, AttrValue x) const {
  const PieceTag tag = static_cast<PieceTag>(tag_[d]);
  if (tag == PieceTag::kPerm) {
    const AttrValue* dom = perm_domain_.data() + perm_off_[d];
    const AttrValue* img = perm_image_.data() + perm_off_[d];
    const size_t n = perm_off_[d + 1] - perm_off_[d];
    const AttrValue* it = std::lower_bound(dom, dom + n, x);
    if (it != dom + n && *it == x) {
      return img[it - dom];
    }
    // Nearest-domain snap, ties to the smaller value (function.cc Nearest).
    if (it == dom) return img[0];
    if (it == dom + n) return img[n - 1];
    const AttrValue above = *it;
    const AttrValue below = *(it - 1);
    return (x - below) <= (above - x) ? img[it - dom - 1] : img[it - dom];
  }
  // F_mono: RescaledFunction::Apply's exact operation sequence, with the
  // shape's Forward inlined per tag. Shape-internal Clamp01 calls are
  // no-ops here because t is already clamped.
  const double t =
      std::min(1.0, std::max(0.0, (x - fdlo_[d]) / (fdhi_[d] - fdlo_[d])));
  double s = t;
  switch (tag) {
    case PieceTag::kLinear:
      break;
    case PieceTag::kPower:
      s = std::pow(t, param_[d]);
      break;
    case PieceTag::kLog:
      s = std::log1p(param_[d] * t) / denom_[d];
      break;
    case PieceTag::kSqrtLog:
      s = std::sqrt(std::log1p(param_[d] * t) / denom_[d]);
      break;
    case PieceTag::kPerm:
      break;  // handled above
  }
  const double y = anti_[d] ? fohi_[d] - (fohi_[d] - folo_[d]) * s
                            : folo_[d] + (fohi_[d] - folo_[d]) * s;
  return std::min(fohi_[d], std::max(folo_[d], y));
}

AttrValue CompiledTransform::Inverse(AttrValue y) const {
  POPP_DCHECK(!tag_.empty());
  const size_t k = tag_.size();
  // PiecewiseTransform::OutputPieceIndex, over the flat output-order arrays.
  if (y < oolo_[0]) {
    return InvertPiece(OutToDomain(0), y);
  }
  size_t lo = 0, hi = k;
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (oolo_[mid] <= y) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (y <= oohi_[lo] || lo + 1 == k) {
    return InvertPiece(OutToDomain(lo), y);
  }
  // Output gap after output position lo: invert Apply's linear bridge
  // between the two domain-adjacent pieces.
  const size_t d1 = OutToDomain(lo);
  const size_t d2 = OutToDomain(lo + 1);
  const size_t da = std::min(d1, d2);
  double t;
  if (!global_anti_) {
    t = (y - out_hi_[da]) / (out_lo_[da + 1] - out_hi_[da]);
  } else {
    t = (y - out_lo_[da]) / (out_hi_[da + 1] - out_lo_[da]);
  }
  t = std::min(1.0, std::max(0.0, t));
  return domain_hi_[da] + t * (domain_lo_[da + 1] - domain_hi_[da]);
}

AttrValue CompiledTransform::InvertPiece(size_t d, AttrValue y) const {
  const PieceTag tag = static_cast<PieceTag>(tag_[d]);
  if (tag == PieceTag::kPerm) {
    const AttrValue* img = perm_img_sorted_.data() + perm_off_[d];
    const AttrValue* pre = perm_preimage_.data() + perm_off_[d];
    const size_t n = perm_off_[d + 1] - perm_off_[d];
    const AttrValue* it = std::lower_bound(img, img + n, y);
    if (it != img + n && *it == y) {
      return pre[it - img];
    }
    // Nearest-image snap (PermutationFunction::Inverse's tie rule).
    if (it == img) return pre[0];
    if (it == img + n) return pre[n - 1];
    const AttrValue above = *it;
    const AttrValue below = *(it - 1);
    return (y - below) <= (above - y) ? pre[it - img - 1] : pre[it - img];
  }
  // RescaledFunction::Inverse with the shape's Backward inlined per tag.
  const double s = std::min(
      1.0, std::max(0.0, anti_[d] ? (fohi_[d] - y) / (fohi_[d] - folo_[d])
                                  : (y - folo_[d]) / (fohi_[d] - folo_[d])));
  double t = s;
  switch (tag) {
    case PieceTag::kLinear:
      break;
    case PieceTag::kPower:
      t = std::pow(s, 1.0 / param_[d]);
      break;
    case PieceTag::kLog:
      t = std::expm1(s * denom_[d]) / param_[d];
      break;
    case PieceTag::kSqrtLog:
      t = std::expm1(s * s * denom_[d]) / param_[d];
      break;
    case PieceTag::kPerm:
      break;  // handled above
  }
  const double x = fdlo_[d] + t * (fdhi_[d] - fdlo_[d]);
  return std::min(fdhi_[d], std::max(fdlo_[d], x));
}

void CompiledTransform::ApplyColumn(const AttrValue* in, AttrValue* out,
                                    size_t n) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Apply(in[i]);
  }
}

void CompiledTransform::InverseColumn(const AttrValue* in, AttrValue* out,
                                      size_t n) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Inverse(in[i]);
  }
}

void CompiledTransform::ApplyColumn(std::vector<AttrValue>& values) const {
  ApplyColumn(values.data(), values.data(), values.size());
}

AttrValue CompiledTransform::EncodeClamped(AttrValue x) const {
  return OodEncodeClamped(bounds_, x, [this](AttrValue v) { return Apply(v); });
}

AttrValue CompiledTransform::EncodeExtended(AttrValue x) const {
  return OodEncodeExtended(bounds_, x,
                           [this](AttrValue v) { return Apply(v); });
}

CompiledPlan CompiledPlan::Compile(
    const TransformPlan& plan, const CompiledTransform::CompileOptions& options) {
  CompiledPlan compiled;
  compiled.transforms_.reserve(plan.NumAttributes());
  for (size_t attr = 0; attr < plan.NumAttributes(); ++attr) {
    compiled.transforms_.push_back(
        CompiledTransform::Compile(plan.transform(attr), options));
  }
  return compiled;
}

const CompiledTransform& CompiledPlan::transform(size_t attr) const {
  POPP_CHECK_MSG(attr < transforms_.size(), "bad attribute " << attr);
  return transforms_[attr];
}

void CompiledPlan::EncodeColumn(size_t attr, const AttrValue* in,
                                AttrValue* out, size_t n,
                                const ExecPolicy& exec) const {
  const CompiledTransform& t = transform(attr);
  const size_t blocks = (n + kBlockRows - 1) / kBlockRows;
  if (blocks <= 1 || exec.IsSerial()) {
    t.ApplyColumn(in, out, n);
    return;
  }
  ParallelFor(exec, blocks, [&](size_t blk) {
    const size_t begin = blk * kBlockRows;
    const size_t end = std::min(n, begin + kBlockRows);
    t.ApplyColumn(in + begin, out + begin, end - begin);
  });
}

Dataset CompiledPlan::EncodeDataset(const Dataset& data,
                                    const ExecPolicy& exec) const {
  POPP_CHECK_MSG(data.NumAttributes() == transforms_.size(),
                 "plan/dataset attribute count mismatch");
  const size_t rows = data.NumRows();
  const size_t attrs = transforms_.size();
  std::vector<std::vector<AttrValue>> columns(attrs);
  for (auto& col : columns) {
    col.resize(rows);
  }
  // (attribute x row-block) task grid: write-disjoint, index-addressed, so
  // any thread count produces the same bytes.
  const size_t blocks = rows == 0 ? 0 : (rows + kBlockRows - 1) / kBlockRows;
  ParallelFor(exec, attrs * blocks, [&](size_t task) {
    const size_t attr = task / blocks;
    const size_t begin = (task % blocks) * kBlockRows;
    const size_t end = std::min(rows, begin + kBlockRows);
    transforms_[attr].ApplyColumn(data.Column(attr).data() + begin,
                                  columns[attr].data() + begin, end - begin);
  });
  return Dataset(data.schema(), std::move(columns), data.labels());
}

}  // namespace popp
