#ifndef POPP_TRANSFORM_PIECES_H_
#define POPP_TRANSFORM_PIECES_H_

#include <cstddef>
#include <vector>

#include "data/summary.h"

/// \file
/// Pieces of an attribute domain (paper Section 5): contiguous ranges of
/// the sorted distinct values, produced by breakpoint selection, each of
/// which will receive its own transformation function.

namespace popp {

/// One piece: the distinct-value index range [begin, end) of an
/// AttributeSummary, plus whether the piece qualifies as monochromatic
/// (every value monochromatic with one common class — Definition 9 — and
/// at least `min_mono_width` values wide).
struct PieceSpec {
  size_t begin = 0;
  size_t end = 0;
  bool monochromatic = false;

  size_t length() const { return end - begin; }
  friend bool operator==(const PieceSpec&, const PieceSpec&) = default;
};

/// True iff all values in [begin, end) of `summary` are monochromatic and
/// share a single class label.
bool IsMonochromaticRange(const AttributeSummary& summary, size_t begin,
                          size_t end);

/// Builds the piece list induced by sorted piece-start indices
/// (`starts[0]` must be 0; the last piece ends at NumDistinct). A piece is
/// flagged monochromatic iff IsMonochromaticRange holds and its length is
/// at least `min_mono_width`.
std::vector<PieceSpec> ComputePieces(const AttributeSummary& summary,
                                     const std::vector<size_t>& starts,
                                     size_t min_mono_width = 1);

/// The *maximal* monochromatic pieces of the attribute: maximal runs of
/// consecutive monochromatic values sharing one class, each at least
/// `min_width` values long. This is what ChooseMaxMP's scan discovers and
/// what the paper's Figure 8 tabulates.
std::vector<PieceSpec> MaximalMonochromaticPieces(
    const AttributeSummary& summary, size_t min_width = 1);

/// Figure 8 statistics of one attribute.
struct MonoStats {
  size_t num_pieces = 0;      ///< number of maximal monochromatic pieces
  double avg_length = 0;      ///< average piece length in distinct values
  double value_fraction = 0;  ///< fraction of distinct values inside pieces
};

/// Computes MonoStats over the maximal monochromatic pieces (min `min_width`).
MonoStats ComputeMonoStats(const AttributeSummary& summary,
                           size_t min_width = 1);

}  // namespace popp

#endif  // POPP_TRANSFORM_PIECES_H_
