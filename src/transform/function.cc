#include "transform/function.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/status.h"

namespace popp {
namespace {

double Clamp01(double t) { return std::min(1.0, std::max(0.0, t)); }

/// Nearest element of sorted `xs` to `probe` (ties to the smaller value).
AttrValue Nearest(const std::vector<AttrValue>& xs, AttrValue probe) {
  POPP_CHECK(!xs.empty());
  auto it = std::lower_bound(xs.begin(), xs.end(), probe);
  if (it == xs.begin()) return *it;
  if (it == xs.end()) return xs.back();
  const AttrValue hi = *it;
  const AttrValue lo = *(it - 1);
  return (probe - lo) <= (hi - probe) ? lo : hi;
}

}  // namespace

std::string ToString(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kMonotone:
      return "monotone";
    case FunctionKind::kAntiMonotone:
      return "anti-monotone";
    case FunctionKind::kBijective:
      return "bijective";
  }
  return "?";
}

// ---------------------------------------------------------------- shapes --

PowerShape::PowerShape(double exponent) : exponent_(exponent) {
  POPP_CHECK_MSG(exponent > 0.0, "PowerShape exponent must be > 0");
}

double PowerShape::Forward(double t) const {
  return std::pow(Clamp01(t), exponent_);
}

double PowerShape::Backward(double s) const {
  return std::pow(Clamp01(s), 1.0 / exponent_);
}

std::string PowerShape::Name() const {
  std::ostringstream oss;
  oss << "power(" << exponent_ << ")";
  return oss.str();
}

std::string PowerShape::Serialize() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "power %.17g", exponent_);
  return buf;
}

LogShape::LogShape(double alpha) : alpha_(alpha) {
  POPP_CHECK_MSG(alpha > 0.0, "LogShape alpha must be > 0");
}

double LogShape::Forward(double t) const {
  return std::log1p(alpha_ * Clamp01(t)) / std::log1p(alpha_);
}

double LogShape::Backward(double s) const {
  return std::expm1(Clamp01(s) * std::log1p(alpha_)) / alpha_;
}

std::string LogShape::Name() const {
  std::ostringstream oss;
  oss << "log(" << alpha_ << ")";
  return oss.str();
}

std::string LogShape::Serialize() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "log %.17g", alpha_);
  return buf;
}

SqrtLogShape::SqrtLogShape(double alpha) : alpha_(alpha) {
  POPP_CHECK_MSG(alpha > 0.0, "SqrtLogShape alpha must be > 0");
}

double SqrtLogShape::Forward(double t) const {
  return std::sqrt(std::log1p(alpha_ * Clamp01(t)) / std::log1p(alpha_));
}

double SqrtLogShape::Backward(double s) const {
  const double clamped = Clamp01(s);
  return std::expm1(clamped * clamped * std::log1p(alpha_)) / alpha_;
}

std::string SqrtLogShape::Name() const {
  std::ostringstream oss;
  oss << "sqrt(log(" << alpha_ << "))";
  return oss.str();
}

std::string SqrtLogShape::Serialize() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "sqrtlog %.17g", alpha_);
  return buf;
}

// ------------------------------------------------------ RescaledFunction --

RescaledFunction::RescaledFunction(std::unique_ptr<ShapeFunction> shape,
                                   AttrValue dlo, AttrValue dhi, AttrValue olo,
                                   AttrValue ohi, bool anti_monotone)
    : shape_(std::move(shape)),
      dlo_(dlo),
      dhi_(dhi),
      olo_(olo),
      ohi_(ohi),
      anti_(anti_monotone) {
  POPP_CHECK(shape_ != nullptr);
  POPP_CHECK_MSG(dlo_ < dhi_, "RescaledFunction: empty domain interval");
  POPP_CHECK_MSG(olo_ < ohi_, "RescaledFunction: empty output interval");
}

AttrValue RescaledFunction::Apply(AttrValue x) const {
  const double t = Clamp01((x - dlo_) / (dhi_ - dlo_));
  const double s = shape_->Forward(t);
  const double y = anti_ ? ohi_ - (ohi_ - olo_) * s : olo_ + (ohi_ - olo_) * s;
  // Rounding in `interval_end - width * 1.0` can land an endpoint's image an
  // ulp outside [olo_, ohi_]; piece routing would then misread it as lying
  // in the inter-piece gap, so pin the result to the interval.
  return std::min(ohi_, std::max(olo_, y));
}

AttrValue RescaledFunction::Inverse(AttrValue y) const {
  const double s =
      Clamp01(anti_ ? (ohi_ - y) / (ohi_ - olo_) : (y - olo_) / (ohi_ - olo_));
  const double t = shape_->Backward(s);
  const double x = dlo_ + t * (dhi_ - dlo_);
  return std::min(dhi_, std::max(dlo_, x));
}

std::string RescaledFunction::Describe() const {
  std::ostringstream oss;
  oss << (anti_ ? "anti:" : "mono:") << shape_->Name() << " [" << dlo_ << ","
      << dhi_ << "]->[" << olo_ << "," << ohi_ << "]";
  return oss.str();
}

std::unique_ptr<Transformation> RescaledFunction::Clone() const {
  return std::make_unique<RescaledFunction>(shape_->Clone(), dlo_, dhi_, olo_,
                                            ohi_, anti_);
}

// --------------------------------------------------- PermutationFunction --

PermutationFunction::PermutationFunction(std::vector<AttrValue> domain,
                                         std::vector<AttrValue> image)
    : domain_(std::move(domain)), image_(std::move(image)) {
  POPP_CHECK_MSG(!domain_.empty(), "PermutationFunction: empty domain");
  POPP_CHECK_MSG(domain_.size() == image_.size(),
                 "PermutationFunction: |domain| != |image|");
  for (size_t i = 1; i < domain_.size(); ++i) {
    POPP_CHECK_MSG(domain_[i - 1] < domain_[i],
                   "PermutationFunction: domain must be strictly increasing");
  }
  by_image_.reserve(image_.size());
  for (size_t i = 0; i < image_.size(); ++i) {
    by_image_.emplace_back(image_[i], domain_[i]);
  }
  std::sort(by_image_.begin(), by_image_.end());
  for (size_t i = 1; i < by_image_.size(); ++i) {
    POPP_CHECK_MSG(by_image_[i - 1].first < by_image_[i].first,
                   "PermutationFunction: image values must be distinct");
  }
}

AttrValue PermutationFunction::Apply(AttrValue x) const {
  auto it = std::lower_bound(domain_.begin(), domain_.end(), x);
  if (it != domain_.end() && *it == x) {
    return image_[static_cast<size_t>(it - domain_.begin())];
  }
  // Non-active-domain probe: snap to the nearest domain value.
  const AttrValue snapped = Nearest(domain_, x);
  auto jt = std::lower_bound(domain_.begin(), domain_.end(), snapped);
  return image_[static_cast<size_t>(jt - domain_.begin())];
}

AttrValue PermutationFunction::Inverse(AttrValue y) const {
  auto it = std::lower_bound(
      by_image_.begin(), by_image_.end(), y,
      [](const auto& pair, AttrValue v) { return pair.first < v; });
  if (it != by_image_.end() && it->first == y) {
    return it->second;
  }
  // Snap to nearest image value.
  if (it == by_image_.begin()) return it->second;
  if (it == by_image_.end()) return (it - 1)->second;
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  return (y - lo.first) <= (hi.first - y) ? lo.second : hi.second;
}

std::string PermutationFunction::Describe() const {
  std::ostringstream oss;
  oss << "perm(" << domain_.size() << " values) [" << domain_.front() << ","
      << domain_.back() << "]";
  return oss.str();
}

std::unique_ptr<Transformation> PermutationFunction::Clone() const {
  return std::make_unique<PermutationFunction>(domain_, image_);
}

}  // namespace popp
