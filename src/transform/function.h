#ifndef POPP_TRANSFORM_FUNCTION_H_
#define POPP_TRANSFORM_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "data/value.h"

/// \file
/// Transformation functions (paper Sections 3.1 and 5.3).
///
/// Two families:
///  * `F_mono` — invertible (anti-)monotone functions over an interval,
///    realized as `RescaledFunction`: a normalized monotone *shape*
///    (linear, power, log, sqrt-log) composed with affine maps that carry
///    the piece's domain interval onto its target output interval, forward
///    or reversed. Composing with affine maps keeps the family closed under
///    the global-monotone interval allocation of Definition 8.
///  * `F_bi`  — arbitrary bijections over a finite set of values, realized
///    as `PermutationFunction`. Only applicable to monochromatic pieces
///    (Section 5.2); strictly larger than F_mono and blocks sorting attacks.

namespace popp {

/// Direction/kind of a transformation.
enum class FunctionKind {
  kMonotone,      ///< strictly increasing
  kAntiMonotone,  ///< strictly decreasing
  kBijective,     ///< arbitrary bijection on a finite value set (F_bi)
};

/// Returns "monotone", "anti-monotone" or "bijective".
std::string ToString(FunctionKind kind);

/// An invertible value transformation f : delta(A) -> delta'(A).
///
/// `Apply` is the custodian's encoding direction, `Inverse` the decoding
/// direction. Inverse(Apply(x)) == x is exact for every active-domain
/// value; for other inputs (e.g. decoded split thresholds) Inverse returns
/// a value in the correct inter-value gap.
class Transformation {
 public:
  virtual ~Transformation() = default;

  virtual AttrValue Apply(AttrValue x) const = 0;
  virtual AttrValue Inverse(AttrValue y) const = 0;
  virtual FunctionKind kind() const = 0;

  /// Short diagnostic rendering, e.g. "power(2)[10,44]->[3,97]".
  virtual std::string Describe() const = 0;

  virtual std::unique_ptr<Transformation> Clone() const = 0;
};

/// A strictly increasing bijection of [0,1] onto [0,1] with F(0)=0, F(1)=1:
/// the normalized "shape" of a monotone transformation.
class ShapeFunction {
 public:
  virtual ~ShapeFunction() = default;
  virtual double Forward(double t) const = 0;
  virtual double Backward(double s) const = 0;
  virtual std::string Name() const = 0;
  /// Machine-readable token form for serialization, e.g. "linear",
  /// "power 2.5", "log 8" — parsed back by ParseShape (serialize.h).
  virtual std::string Serialize() const = 0;
  virtual std::unique_ptr<ShapeFunction> Clone() const = 0;
};

/// The identity shape: a linear transformation after rescaling.
class IdentityShape : public ShapeFunction {
 public:
  double Forward(double t) const override { return t; }
  double Backward(double s) const override { return s; }
  std::string Name() const override { return "linear"; }
  std::string Serialize() const override { return "linear"; }
  std::unique_ptr<ShapeFunction> Clone() const override {
    return std::make_unique<IdentityShape>();
  }
};

/// t -> t^k for k > 0 (k=2,3 give the paper's higher-order polynomials;
/// fractional k gives root functions).
class PowerShape : public ShapeFunction {
 public:
  explicit PowerShape(double exponent);
  double Forward(double t) const override;
  double Backward(double s) const override;
  std::string Name() const override;
  std::string Serialize() const override;
  std::unique_ptr<ShapeFunction> Clone() const override {
    return std::make_unique<PowerShape>(exponent_);
  }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
};

/// t -> log(1 + alpha t) / log(1 + alpha) for alpha > 0 (the paper's "log").
class LogShape : public ShapeFunction {
 public:
  explicit LogShape(double alpha);
  double Forward(double t) const override;
  double Backward(double s) const override;
  std::string Name() const override;
  std::string Serialize() const override;
  std::unique_ptr<ShapeFunction> Clone() const override {
    return std::make_unique<LogShape>(alpha_);
  }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

/// t -> sqrt(log(1 + alpha t) / log(1 + alpha)) (the paper's "sqrt(log)").
class SqrtLogShape : public ShapeFunction {
 public:
  explicit SqrtLogShape(double alpha);
  double Forward(double t) const override;
  double Backward(double s) const override;
  std::string Name() const override;
  std::string Serialize() const override;
  std::unique_ptr<ShapeFunction> Clone() const override {
    return std::make_unique<SqrtLogShape>(alpha_);
  }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

/// A member of F_mono: shape composed with affine domain/output rescaling.
///
/// Monotone direction:      f(x) = olo + (ohi-olo) * S((x-dlo)/(dhi-dlo))
/// Anti-monotone direction: f(x) = ohi - (ohi-olo) * S((x-dlo)/(dhi-dlo))
class RescaledFunction : public Transformation {
 public:
  /// Requires dlo < dhi and olo < ohi.
  RescaledFunction(std::unique_ptr<ShapeFunction> shape, AttrValue dlo,
                   AttrValue dhi, AttrValue olo, AttrValue ohi,
                   bool anti_monotone);

  AttrValue Apply(AttrValue x) const override;
  AttrValue Inverse(AttrValue y) const override;
  FunctionKind kind() const override {
    return anti_ ? FunctionKind::kAntiMonotone : FunctionKind::kMonotone;
  }
  std::string Describe() const override;
  std::unique_ptr<Transformation> Clone() const override;

  const ShapeFunction& shape() const { return *shape_; }
  AttrValue dlo() const { return dlo_; }
  AttrValue dhi() const { return dhi_; }
  AttrValue olo() const { return olo_; }
  AttrValue ohi() const { return ohi_; }
  bool anti_monotone() const { return anti_; }

 private:
  std::unique_ptr<ShapeFunction> shape_;
  AttrValue dlo_, dhi_, olo_, ohi_;
  bool anti_;
};

/// A member of F_bi: an explicit bijection from a finite set of domain
/// values onto an equal-sized set of image values (any pairing). Used for
/// monochromatic pieces, where Lemma 1's order constraint is vacuous.
///
/// Apply/Inverse of a value not in the respective set snaps to the nearest
/// set element (by absolute distance, ties to the smaller value); this only
/// arises for non-active-domain probes such as attack guesses.
class PermutationFunction : public Transformation {
 public:
  /// `domain` must be strictly increasing; `image[i]` is the image of
  /// `domain[i]` and all images must be distinct.
  PermutationFunction(std::vector<AttrValue> domain,
                      std::vector<AttrValue> image);

  AttrValue Apply(AttrValue x) const override;
  AttrValue Inverse(AttrValue y) const override;
  FunctionKind kind() const override { return FunctionKind::kBijective; }
  std::string Describe() const override;
  std::unique_ptr<Transformation> Clone() const override;

  size_t size() const { return domain_.size(); }
  const std::vector<AttrValue>& domain() const { return domain_; }
  const std::vector<AttrValue>& image() const { return image_; }

 private:
  std::vector<AttrValue> domain_;  // sorted ascending
  std::vector<AttrValue> image_;   // image_[i] = f(domain_[i])
  // Inverse index: pairs (image value, domain value) sorted by image value.
  std::vector<std::pair<AttrValue, AttrValue>> by_image_;
};

}  // namespace popp

#endif  // POPP_TRANSFORM_FUNCTION_H_
