#ifndef POPP_TRANSFORM_SERIALIZE_H_
#define POPP_TRANSFORM_SERIALIZE_H_

#include <memory>
#include <string>

#include "transform/function.h"
#include "transform/plan.h"
#include "util/status.h"

/// \file
/// Persistence of the custodian's decoding key (Section 5.4: "the
/// information required is rather minimal — the locations of breakpoints
/// and the transformations used").
///
/// The format is a line-oriented text format ("popp-plan v2"). All doubles
/// are written with 17 significant digits, which round-trips IEEE-754
/// binary64 exactly, so a reloaded plan encodes and decodes bit-identically
/// to the original. v2 documents end in an integrity footer (payload length
/// + CRC-64, see util/integrity.h); the parser verifies it and rejects
/// truncated or corrupted keys with `kDataLoss`. Legacy v1 documents (no
/// footer) still load.

namespace popp {

/// Serializes a plan to the popp-plan v2 text format (integrity footer
/// included).
std::string SerializePlan(const TransformPlan& plan);

/// Parses a popp-plan document (v2, or legacy v1 without a footer). Any
/// failure — bad syntax, a violated invariant, a footer mismatch — is
/// `kDataLoss`: the bytes cannot be trusted.
Result<TransformPlan> ParsePlan(const std::string& text);

/// File convenience wrappers. SavePlan publishes atomically (write-temp,
/// flush, rename); LoadPlan reports a missing file as `kNotFound` and a
/// corrupt one as `kDataLoss`, with the path in the message.
Status SavePlan(const TransformPlan& plan, const std::string& path);
Result<TransformPlan> LoadPlan(const std::string& path);

/// Parses a shape token produced by ShapeFunction::Serialize ("linear",
/// "power <k>", "log <a>", "sqrtlog <a>").
Result<std::unique_ptr<ShapeFunction>> ParseShape(const std::string& token);

}  // namespace popp

#endif  // POPP_TRANSFORM_SERIALIZE_H_
