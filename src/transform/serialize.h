#ifndef POPP_TRANSFORM_SERIALIZE_H_
#define POPP_TRANSFORM_SERIALIZE_H_

#include <memory>
#include <string>

#include "transform/function.h"
#include "transform/plan.h"
#include "util/status.h"

/// \file
/// Persistence of the custodian's decoding key (Section 5.4: "the
/// information required is rather minimal — the locations of breakpoints
/// and the transformations used").
///
/// The format is a line-oriented text format ("popp-plan v1"). All doubles
/// are written with 17 significant digits, which round-trips IEEE-754
/// binary64 exactly, so a reloaded plan encodes and decodes bit-identically
/// to the original.

namespace popp {

/// Serializes a plan to the popp-plan v1 text format.
std::string SerializePlan(const TransformPlan& plan);

/// Parses a popp-plan v1 document.
Result<TransformPlan> ParsePlan(const std::string& text);

/// File convenience wrappers.
Status SavePlan(const TransformPlan& plan, const std::string& path);
Result<TransformPlan> LoadPlan(const std::string& path);

/// Parses a shape token produced by ShapeFunction::Serialize ("linear",
/// "power <k>", "log <a>", "sqrtlog <a>").
Result<std::unique_ptr<ShapeFunction>> ParseShape(const std::string& token);

}  // namespace popp

#endif  // POPP_TRANSFORM_SERIALIZE_H_
