#ifndef POPP_TRANSFORM_COMPILED_H_
#define POPP_TRANSFORM_COMPILED_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "parallel/exec_policy.h"
#include "transform/piecewise.h"
#include "transform/plan.h"

/// \file
/// Compiled encode/decode kernels: a PiecewiseTransform flattened into
/// structure-of-arrays tables, evaluated by tag-switch dispatch instead of
/// per-value virtual calls.
///
/// Contract (see DESIGN.md, "Compiled kernel contract"): the compiled
/// evaluation is **bit-identical** to the interpreted one — for every input
/// (in-domain, gap, or out-of-hull), `CompiledTransform::Apply/Inverse`
/// returns exactly the double `PiecewiseTransform::Apply/Inverse` would.
/// This is achieved by replicating the interpreted path's floating-point
/// operation sequence per function tag (precomputation is limited to values
/// that are themselves deterministic, e.g. log1p(alpha)), and by building
/// the value-indexed LUT from the interpreted transform itself. Because of
/// bit-identity, every downstream guarantee (no outcome change, stream ==
/// batch, thread-count independence) carries over unchanged.
///
/// Two fast paths:
///  * a dense value-indexed LUT when the fitted hull is a small integer
///    range (the covertype case): one load per value;
///  * branch-light binary search over the flat breakpoint array otherwise
///    (no pointer chasing, no virtual dispatch).

namespace popp {

/// Function tag of one compiled piece (the dispatch table's opcode).
enum class PieceTag : uint8_t {
  kLinear = 0,  ///< identity shape
  kPower,       ///< t^k               (param = k)
  kLog,         ///< log1p(a t)/log1p(a)   (param = a, denom = log1p(a))
  kSqrtLog,     ///< sqrt of the log shape (param = a, denom = log1p(a))
  kPerm,        ///< F_bi permutation over flat sorted arrays
};

/// Domain bounds of one fitted transform: the active-domain hull plus the
/// aggregate output hull and extrapolation slope. This is the single
/// implementation of the out-of-domain (OOD) semantics shared by the
/// streaming helpers (stream/ood_policy) and the compiled kernels.
struct DomainBounds {
  AttrValue lo = 0;       ///< fitted hull minimum (first piece's domain_lo)
  AttrValue hi = 0;       ///< fitted hull maximum (last piece's domain_hi)
  AttrValue out_min = 0;  ///< smallest output-interval bound over all pieces
  AttrValue out_max = 0;  ///< largest output-interval bound over all pieces
  AttrValue slope = 1.0;  ///< aggregate slope (out width / domain width)
  bool anti = false;      ///< global direction of the transform

  bool Contains(AttrValue x) const { return x >= lo && x <= hi; }

  /// Extracts the bounds of a fitted transform (pieces in domain order).
  static DomainBounds Of(const PiecewiseTransform& t);
};

/// kClamp OOD semantics: encode the nearest hull endpoint. `apply` is the
/// encode function (interpreted or compiled — bit-identical either way).
template <typename ApplyFn>
AttrValue OodEncodeClamped(const DomainBounds& b, AttrValue x,
                           const ApplyFn& apply) {
  return apply(std::clamp(x, b.lo, b.hi));
}

/// kExtendPiece OOD semantics: linear extrapolation beyond the output hull,
/// sloped like the aggregate transform and aimed in the global direction,
/// so order against every in-domain image is exactly what the global
/// invariant promises. In-hull values fall through to `apply`.
template <typename ApplyFn>
AttrValue OodEncodeExtended(const DomainBounds& b, AttrValue x,
                            const ApplyFn& apply) {
  if (x < b.lo) {
    const AttrValue excess = b.lo - x;
    return b.anti ? b.out_max + b.slope * excess : b.out_min - b.slope * excess;
  }
  if (x > b.hi) {
    const AttrValue excess = x - b.hi;
    return b.anti ? b.out_min - b.slope * excess : b.out_max + b.slope * excess;
  }
  return apply(x);
}

/// One attribute's transform compiled to SoA tables.
///
/// Value type: copyable, movable, cheap to default-construct. Thread-safe
/// for concurrent reads (it is immutable after Compile).
class CompiledTransform {
 public:
  struct CompileOptions {
    /// Build the dense integer LUT when the hull qualifies. Worth it when
    /// many values will be encoded (a column); skip it for short-lived
    /// transforms applied to a handful of values (risk-trial inner loops),
    /// where the build cost would exceed the work it accelerates.
    bool enable_lut = true;
    /// Hard cap on LUT entries (65536 covers every covertype attribute).
    size_t max_lut_entries = 65536;
  };

  CompiledTransform() = default;

  /// Flattens `t`. The source transform is only needed during the call.
  static CompiledTransform Compile(const PiecewiseTransform& t,
                                   const CompileOptions& options);
  static CompiledTransform Compile(const PiecewiseTransform& t) {
    return Compile(t, CompileOptions{});
  }

  /// Encodes one value; bit-identical to PiecewiseTransform::Apply.
  AttrValue Apply(AttrValue x) const {
    if (has_lut_ && x >= lut_base_ && x <= lut_last_ && x == std::floor(x)) {
      return lut_[static_cast<size_t>(x - lut_base_)];
    }
    return ApplySearch(x);
  }

  /// Decodes one value; bit-identical to PiecewiseTransform::Inverse.
  AttrValue Inverse(AttrValue y) const;

  /// Batched encode/decode over spans (out may alias in).
  void ApplyColumn(const AttrValue* in, AttrValue* out, size_t n) const;
  void InverseColumn(const AttrValue* in, AttrValue* out, size_t n) const;
  /// In-place convenience overload.
  void ApplyColumn(std::vector<AttrValue>& values) const;

  /// Shared OOD semantics over the compiled bounds; bit-identical to
  /// stream::EncodeClamped / stream::EncodeExtended on the source transform.
  AttrValue EncodeClamped(AttrValue x) const;
  AttrValue EncodeExtended(AttrValue x) const;

  const DomainBounds& bounds() const { return bounds_; }
  size_t NumPieces() const { return tag_.size(); }
  bool empty() const { return tag_.empty(); }
  bool global_anti_monotone() const { return global_anti_; }
  bool has_lut() const { return has_lut_; }
  size_t LutEntries() const { return lut_.size(); }

 private:
  /// Binary-search path (LUT miss): piece routing + tag dispatch.
  AttrValue ApplySearch(AttrValue x) const;
  AttrValue EvalPiece(size_t d, AttrValue x) const;
  AttrValue InvertPiece(size_t d, AttrValue y) const;
  size_t OutToDomain(size_t p) const {
    return global_anti_ ? tag_.size() - 1 - p : p;
  }

  bool global_anti_ = false;

  // Parallel SoA arrays, one slot per piece, in domain order.
  std::vector<AttrValue> domain_lo_, domain_hi_;  // piece domain intervals
  std::vector<AttrValue> out_lo_, out_hi_;        // piece output intervals
  std::vector<uint8_t> tag_;                      // PieceTag per piece
  std::vector<uint8_t> anti_;                     // F_mono direction
  std::vector<double> fdlo_, fdhi_;               // RescaledFunction domain
  std::vector<double> folo_, fohi_;               // RescaledFunction output
  std::vector<double> param_;                     // exponent or alpha
  std::vector<double> denom_;                     // precomputed log1p(alpha)

  // F_bi flattening: piece d's pairs live at [perm_off_[d], perm_off_[d+1])
  // in the shared flat arrays (empty range for F_mono pieces).
  std::vector<size_t> perm_off_;
  std::vector<AttrValue> perm_domain_, perm_image_;      // domain-sorted
  std::vector<AttrValue> perm_img_sorted_, perm_preimage_;  // image-sorted

  // Output-interval bounds in *output* order (Inverse piece routing).
  std::vector<AttrValue> oolo_, oohi_;

  DomainBounds bounds_;

  // Dense integer LUT over [lut_base_, lut_last_], built by evaluating the
  // interpreted transform — LUT hits equal the interpreted result *by
  // construction*.
  bool has_lut_ = false;
  AttrValue lut_base_ = 0, lut_last_ = 0;
  std::vector<AttrValue> lut_;
};

/// A TransformPlan compiled attribute by attribute, with batched parallel
/// dataset encoding.
class CompiledPlan {
 public:
  CompiledPlan() = default;

  static CompiledPlan Compile(const TransformPlan& plan,
                              const CompiledTransform::CompileOptions& options);
  static CompiledPlan Compile(const TransformPlan& plan) {
    return Compile(plan, CompiledTransform::CompileOptions{});
  }

  size_t NumAttributes() const { return transforms_.size(); }
  bool empty() const { return transforms_.empty(); }
  const CompiledTransform& transform(size_t attr) const;

  /// Encodes one attribute column (out may alias in). Row blocks are
  /// distributed over `exec`; output is index-addressed, so the bytes are
  /// identical at every thread count.
  void EncodeColumn(size_t attr, const AttrValue* in, AttrValue* out,
                    size_t n, const ExecPolicy& exec = {}) const;

  /// Produces D' — bit-identical to TransformPlan::EncodeDataset at every
  /// thread count. Work is distributed over (attribute x row-block) tasks,
  /// so the kernel scales even on wide-row, few-attribute tables.
  Dataset EncodeDataset(const Dataset& data, const ExecPolicy& exec = {}) const;

 private:
  std::vector<CompiledTransform> transforms_;
};

}  // namespace popp

#endif  // POPP_TRANSFORM_COMPILED_H_
