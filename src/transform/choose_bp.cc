#include "transform/choose_bp.h"

#include <algorithm>

#include "util/status.h"

namespace popp {

std::vector<size_t> ChooseBP(const AttributeSummary& summary, size_t w,
                             Rng& rng) {
  const size_t n = summary.NumDistinct();
  POPP_CHECK_MSG(n > 0, "ChooseBP on empty summary");
  // Candidate breakpoints CBP are the distinct A-values; index 0 is always
  // a piece start, so sample from indices [1, n).
  const size_t available = n - 1;
  const size_t k = std::min(w, available);
  std::vector<size_t> starts = rng.SampleIndices(available, k);
  for (size_t& s : starts) s += 1;  // shift into [1, n)
  starts.insert(starts.begin(), 0);
  return starts;
}

}  // namespace popp
