#include "synth/covtype_like.h"

#include <algorithm>
#include <cmath>

#include "synth/distributions.h"
#include "util/status.h"

namespace popp {
namespace {

/// A zone of the sorted support: a run of distinct-value indices that is
/// either a monochromatic piece (with a class) or a mixed region.
struct Zone {
  size_t begin = 0;
  size_t end = 0;
  bool mono = false;
  ClassId label = kNoClass;
};

/// Splits `total` into `parts` positive integers, each >= min_part, with
/// random proportions. Requires total >= parts * min_part.
std::vector<size_t> RandomComposition(size_t total, size_t parts,
                                      size_t min_part, Rng& rng) {
  POPP_CHECK(parts > 0);
  POPP_CHECK_MSG(total >= parts * min_part,
                 "cannot split " << total << " into " << parts
                                 << " parts of >= " << min_part);
  std::vector<size_t> out(parts, min_part);
  size_t remaining = total - parts * min_part;
  // Dirichlet-ish: distribute the remainder with random weights.
  std::vector<double> weights(parts);
  double sum = 0.0;
  for (auto& w : weights) {
    w = rng.Uniform(0.2, 1.0);
    sum += w;
  }
  size_t given = 0;
  for (size_t i = 0; i + 1 < parts; ++i) {
    const size_t share = static_cast<size_t>(
        static_cast<double>(remaining) * weights[i] / sum);
    out[i] += share;
    given += share;
  }
  out[parts - 1] += remaining - given;
  return out;
}

/// Lays out mono pieces and mixed gaps over `num_distinct` value slots.
std::vector<Zone> LayoutZones(const AttributeTargets& t, Rng& rng) {
  const size_t distinct = t.num_distinct;
  size_t total_mono = static_cast<size_t>(
      std::llround(t.mono_value_fraction * static_cast<double>(distinct)));
  size_t pieces = t.num_mono_pieces;
  if (pieces == 0 || total_mono == 0) {
    return {Zone{0, distinct, false, kNoClass}};
  }
  // Each piece needs >= 2 values to be a meaningful piece; shrink the
  // piece count if the mono budget cannot afford it.
  pieces = std::min(pieces, total_mono / 2);
  POPP_CHECK(pieces > 0);
  const size_t mixed_total = distinct - total_mono;
  POPP_CHECK_MSG(mixed_total >= pieces - 1,
                 "not enough mixed values to separate " << pieces
                                                        << " mono pieces");

  const std::vector<size_t> piece_lens =
      RandomComposition(total_mono, pieces, 2, rng);
  // pieces+1 gaps; interior gaps (1..pieces-1) must be >= 1.
  std::vector<size_t> gap_lens;
  // pieces+1 gaps; interior gaps (1..pieces-1) must be >= 1 so adjacent
  // mono pieces stay maximal. Spread the rest uniformly over all gaps.
  gap_lens.assign(pieces + 1, 0);
  for (size_t i = 1; i < pieces; ++i) gap_lens[i] = 1;
  size_t spread = mixed_total - (pieces - 1);
  while (spread > 0) {
    const size_t g = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pieces)));
    gap_lens[g] += 1;
    --spread;
  }

  std::vector<Zone> zones;
  size_t pos = 0;
  for (size_t p = 0; p < pieces; ++p) {
    if (gap_lens[p] > 0) {
      zones.push_back(Zone{pos, pos + gap_lens[p], false, kNoClass});
      pos += gap_lens[p];
    }
    zones.push_back(Zone{pos, pos + piece_lens[p], true, kNoClass});
    pos += piece_lens[p];
  }
  if (gap_lens[pieces] > 0) {
    zones.push_back(Zone{pos, pos + gap_lens[pieces], false, kNoClass});
    pos += gap_lens[pieces];
  }
  POPP_CHECK(pos == distinct);
  return zones;
}

}  // namespace

CovtypeLikeSpec DefaultCovtypeSpec(size_t num_rows) {
  CovtypeLikeSpec spec;
  spec.num_rows = num_rows;
  // Calibrated to Figure 8 of the paper (width, #distinct, #mono pieces,
  // fraction of distinct values inside mono pieces).
  spec.attributes = {
      {"elevation", 1859, 2000, 1978, 9, 0.742},
      {"aspect", 0, 361, 361, 0, 0.000},
      {"slope", 0, 67, 67, 1, 0.224},
      {"horiz_dist_hydro", 0, 1398, 551, 22, 0.400},
      {"vert_dist_hydro", -173, 775, 700, 14, 0.480},
      {"horiz_dist_road", 0, 7118, 5785, 202, 0.629},
      {"hillshade_9am", 0, 255, 207, 2, 0.396},
      {"hillshade_noon", 0, 255, 185, 8, 0.259},
      {"hillshade_3pm", 0, 255, 255, 3, 0.094},
      {"horiz_dist_fire", 0, 7174, 5827, 229, 0.668},
  };
  spec.class_names = {"spruce_fir", "lodgepole", "ponderosa", "cottonwood",
                      "aspen",      "douglas",   "krummholz"};
  return spec;
}

CovtypeLikeSpec SmallCovtypeSpec(size_t num_rows) {
  CovtypeLikeSpec spec;
  spec.num_rows = num_rows;
  // Sized so that even a few hundred rows can cover every distinct value
  // (mono coverage + two-class seeding of every mixed value).
  spec.attributes = {
      {"a1", 0, 120, 100, 4, 0.5},
      {"a2", 10, 60, 60, 0, 0.0},
      {"a3", -50, 300, 80, 5, 0.3},
  };
  spec.class_weights = {0.5, 0.3, 0.2};
  spec.class_names = {"x", "y", "z"};
  return spec;
}

Dataset GenerateCovtypeLike(const CovtypeLikeSpec& spec, Rng& rng) {
  POPP_CHECK_MSG(!spec.attributes.empty(), "spec has no attributes");
  POPP_CHECK_MSG(spec.class_weights.size() >= 2, "need >= 2 classes");
  const size_t num_classes = spec.class_weights.size();

  std::vector<std::string> attr_names;
  for (const auto& a : spec.attributes) attr_names.push_back(a.name);
  std::vector<std::string> class_names = spec.class_names;
  if (class_names.empty()) {
    for (size_t c = 0; c < num_classes; ++c) {
      class_names.push_back("c" + std::to_string(c + 1));
    }
  }
  POPP_CHECK(class_names.size() == num_classes);

  // --- Labels first: one shared class column couples all attributes. ---
  const size_t n = spec.num_rows;
  CategoricalSampler class_sampler(spec.class_weights);
  std::vector<ClassId> labels(n);
  std::vector<std::vector<size_t>> by_class(num_classes);
  for (size_t r = 0; r < n; ++r) {
    const size_t c = class_sampler.Sample(rng);
    labels[r] = static_cast<ClassId>(c);
    by_class[c].push_back(r);
  }

  Dataset data(Schema(attr_names, class_names));
  data.Reserve(n);
  {
    // Materialize rows with placeholder values; columns filled in below.
    const std::vector<AttrValue> zeros(spec.attributes.size(), 0.0);
    for (size_t r = 0; r < n; ++r) {
      data.AddRow(zeros, labels[r]);
    }
  }

  // --- Per-attribute value assignment. ------------------------------
  for (size_t a = 0; a < spec.attributes.size(); ++a) {
    const AttributeTargets& t = spec.attributes[a];
    POPP_CHECK_MSG(t.num_distinct >= 2, "attribute needs >= 2 values");
    POPP_CHECK_MSG(static_cast<int64_t>(t.num_distinct) <= t.range_width,
                   "num_distinct exceeds range width");

    // Clustered support: real measurement attributes have dense stretches
    // and sparse tails, which is what gives discontinuities their
    // protective power against the sorting attack (Figure 11).
    const std::vector<int64_t> support = SampleClusteredSupport(
        t.min_value, t.min_value + t.range_width - 1, t.num_distinct,
        /*num_segments=*/12, /*log_density_spread=*/2.5, rng);
    std::vector<Zone> zones = LayoutZones(t, rng);

    // Per-attribute class pools: shuffled tuple ids per class, consumed
    // from a cursor.
    std::vector<std::vector<size_t>> pool = by_class;
    for (auto& p : pool) rng.Shuffle(p);
    std::vector<size_t> cursor(num_classes, 0);
    auto remaining = [&](size_t c) { return pool[c].size() - cursor[c]; };

    // Assign a class to every mono zone, respecting remaining capacity.
    for (auto& zone : zones) {
      if (!zone.mono) continue;
      const size_t len = zone.end - zone.begin;
      double total_weight = 0.0;
      for (size_t c = 0; c < num_classes; ++c) {
        if (remaining(c) >= len) total_weight += spec.class_weights[c];
      }
      POPP_CHECK_MSG(total_weight > 0.0,
                     "no class has capacity for a mono piece of " << len);
      double pick = rng.Uniform(0.0, total_weight);
      size_t chosen = num_classes;
      for (size_t c = 0; c < num_classes; ++c) {
        if (remaining(c) < len) continue;
        chosen = c;  // remember the last eligible class
        pick -= spec.class_weights[c];
        if (pick <= 0.0) break;
      }
      POPP_CHECK(chosen < num_classes);
      zone.label = static_cast<ClassId>(chosen);
      cursor[chosen] += len;  // reserve now; tuples drawn later
    }
    // Rewind cursors: reservation was only a feasibility check.
    std::fill(cursor.begin(), cursor.end(), 0);

    std::vector<AttrValue> column(n, 0.0);
    std::vector<char> assigned(n, 0);
    std::vector<size_t> mixed_values;  // support indices of mixed values
    // Candidate extra slots per class: mixed values + own mono values.
    std::vector<std::vector<size_t>> extra_slots(num_classes);

    for (const auto& zone : zones) {
      if (zone.mono) {
        const size_t c = static_cast<size_t>(zone.label);
        for (size_t i = zone.begin; i < zone.end; ++i) {
          POPP_CHECK_MSG(cursor[c] < pool[c].size(),
                         "class pool exhausted during mono coverage");
          const size_t tuple = pool[c][cursor[c]++];
          column[tuple] = static_cast<AttrValue>(support[i]);
          assigned[tuple] = 1;
          extra_slots[c].push_back(i);
        }
      } else {
        for (size_t i = zone.begin; i < zone.end; ++i) {
          mixed_values.push_back(i);
        }
      }
    }

    // Seed every mixed value with two tuples of *different* classes, drawn
    // from the two largest remaining pools. Feasibility: the number of
    // distinct-class pairs that can be formed from the remaining pools is
    // min(floor(total/2), total - max_pool) (and greedy two-largest
    // pairing achieves it) — check it up front with a clear message.
    {
      size_t rem_total = 0, rem_max = 0;
      for (size_t c = 0; c < num_classes; ++c) {
        rem_total += remaining(c);
        rem_max = std::max(rem_max, remaining(c));
      }
      const size_t max_pairs = std::min(rem_total / 2, rem_total - rem_max);
      POPP_CHECK_MSG(
          mixed_values.size() <= max_pairs,
          "attribute '" << t.name << "': " << mixed_values.size()
                        << " mixed values need two distinct-class tuples "
                           "each, but only "
                        << max_pairs
                        << " such pairs exist — increase num_rows or reduce "
                           "num_distinct");
    }
    for (size_t i : mixed_values) {
      size_t c1 = num_classes, c2 = num_classes;
      for (size_t c = 0; c < num_classes; ++c) {
        if (remaining(c) == 0) continue;
        if (c1 == num_classes || remaining(c) > remaining(c1)) {
          c2 = c1;
          c1 = c;
        } else if (c2 == num_classes || remaining(c) > remaining(c2)) {
          c2 = c;
        }
      }
      POPP_CHECK_MSG(c1 < num_classes && c2 < num_classes,
                     "mixing infeasible despite up-front check");
      for (size_t c : {c1, c2}) {
        const size_t tuple = pool[c][cursor[c]++];
        column[tuple] = static_cast<AttrValue>(support[i]);
        assigned[tuple] = 1;
      }
    }
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t i : mixed_values) extra_slots[c].push_back(i);
    }

    // Spread the leftovers: each unassigned tuple goes to a uniformly
    // random compatible value (mixed, or a mono value of its own class).
    for (size_t c = 0; c < num_classes; ++c) {
      const auto& slots = extra_slots[c];
      while (cursor[c] < pool[c].size()) {
        const size_t tuple = pool[c][cursor[c]++];
        POPP_CHECK_MSG(!slots.empty(),
                       "class " << c << " has tuples but no compatible value");
        const size_t i = slots[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(slots.size()) - 1))];
        column[tuple] = static_cast<AttrValue>(support[i]);
        assigned[tuple] = 1;
      }
    }

    auto& col = data.MutableColumn(a);
    for (size_t r = 0; r < n; ++r) {
      POPP_CHECK_MSG(assigned[r], "tuple " << r << " left unassigned");
      col[r] = column[r];
    }
  }
  return data;
}

}  // namespace popp
