#include "synth/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace popp {

CategoricalSampler::CategoricalSampler(const std::vector<double>& weights) {
  POPP_CHECK_MSG(!weights.empty(), "CategoricalSampler: empty weights");
  double sum = 0.0;
  for (double w : weights) {
    POPP_CHECK_MSG(w >= 0.0, "CategoricalSampler: negative weight");
    sum += w;
  }
  POPP_CHECK_MSG(sum > 0.0, "CategoricalSampler: zero total weight");

  const size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Vose's alias method.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] / sum * static_cast<double>(n);
  }
  std::vector<size_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;
}

size_t CategoricalSampler::Sample(Rng& rng) const {
  const size_t i = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(prob_.size()) - 1));
  return rng.Uniform01() < prob_[i] ? i : alias_[i];
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  POPP_CHECK_MSG(n > 0, "ZipfSampler: n must be positive");
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 1; r <= n; ++r) {
    acc += std::pow(static_cast<double>(r), -s);
    cdf_[r - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.Uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

std::vector<int64_t> SampleDistinctSupport(int64_t lo, int64_t hi,
                                           size_t count, Rng& rng) {
  POPP_CHECK_MSG(lo < hi, "SampleDistinctSupport: lo must be < hi");
  const uint64_t slots = static_cast<uint64_t>(hi - lo) + 1;
  POPP_CHECK_MSG(count >= 2 && count <= slots,
                 "SampleDistinctSupport: bad count " << count);
  // Endpoints are pinned; sample count-2 interior values from (lo, hi).
  std::vector<size_t> interior =
      rng.SampleIndices(static_cast<size_t>(slots - 2), count - 2);
  std::vector<int64_t> out;
  out.reserve(count);
  out.push_back(lo);
  for (size_t offset : interior) {
    out.push_back(lo + 1 + static_cast<int64_t>(offset));
  }
  out.push_back(hi);
  return out;
}

std::vector<int64_t> SampleClusteredSupport(int64_t lo, int64_t hi,
                                            size_t count,
                                            size_t num_segments,
                                            double log_density_spread,
                                            Rng& rng) {
  const uint64_t slots = static_cast<uint64_t>(hi - lo) + 1;
  POPP_CHECK_MSG(count >= 2 && count <= slots,
                 "SampleClusteredSupport: bad count " << count);
  POPP_CHECK(num_segments >= 1);
  if (count == slots) {
    std::vector<int64_t> out(count);
    for (size_t i = 0; i < count; ++i) out[i] = lo + static_cast<int64_t>(i);
    return out;
  }

  // Endpoints are pinned; allocate the remaining count-2 picks over the
  // interior slots (lo+1 .. hi-1), split into segments with log-uniform
  // densities.
  const size_t interior = static_cast<size_t>(slots - 2);
  const size_t picks = count - 2;
  const size_t segments = std::min(num_segments, std::max<size_t>(1, interior));

  std::vector<size_t> seg_begin(segments + 1);
  for (size_t s = 0; s <= segments; ++s) {
    seg_begin[s] = interior * s / segments;
  }
  std::vector<double> weight(segments);
  for (auto& w : weight) {
    w = std::exp(rng.Uniform(-log_density_spread, log_density_spread));
  }

  // Quotas by weighted share, capped at segment capacity; redistribute
  // any shortfall to segments with spare room (by weight order).
  std::vector<size_t> quota(segments, 0);
  double weighted_total = 0.0;
  for (size_t s = 0; s < segments; ++s) {
    weighted_total +=
        weight[s] * static_cast<double>(seg_begin[s + 1] - seg_begin[s]);
  }
  size_t assigned = 0;
  for (size_t s = 0; s < segments; ++s) {
    const size_t cap = seg_begin[s + 1] - seg_begin[s];
    const double share =
        weight[s] * static_cast<double>(cap) / weighted_total;
    quota[s] = std::min(cap, static_cast<size_t>(share *
                                                 static_cast<double>(picks)));
    assigned += quota[s];
  }
  // Distribute the remainder round-robin to segments with spare capacity.
  size_t s = 0;
  while (assigned < picks) {
    const size_t cap = seg_begin[s + 1] - seg_begin[s];
    if (quota[s] < cap) {
      quota[s]++;
      assigned++;
    }
    s = (s + 1) % segments;
  }

  std::vector<int64_t> out;
  out.reserve(count);
  out.push_back(lo);
  for (size_t seg = 0; seg < segments; ++seg) {
    const size_t cap = seg_begin[seg + 1] - seg_begin[seg];
    if (quota[seg] == 0 || cap == 0) continue;
    for (size_t offset : rng.SampleIndices(cap, quota[seg])) {
      out.push_back(lo + 1 + static_cast<int64_t>(seg_begin[seg] + offset));
    }
  }
  out.push_back(hi);
  POPP_CHECK(out.size() == count);
  return out;
}

int64_t ClampedGaussianInt(double mean, double stddev, int64_t lo, int64_t hi,
                           Rng& rng) {
  const double draw = rng.Gaussian(mean, stddev);
  const int64_t rounded = static_cast<int64_t>(std::llround(draw));
  return std::min(hi, std::max(lo, rounded));
}

}  // namespace popp
