#ifndef POPP_SYNTH_COVTYPE_LIKE_H_
#define POPP_SYNTH_COVTYPE_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

/// \file
/// Synthetic stand-in for the UCI forest covertype data set.
///
/// The paper's experiments (Section 6) run on covertype's 10 numeric
/// attributes, and every reported number depends on the data only through
/// the per-attribute statistics of Figure 8: the dynamic-range width, the
/// number of distinct values (equivalently, the number of discontinuities),
/// and the count / average length / value share of maximal monochromatic
/// pieces. This generator synthesizes a dataset matching those statistics
/// exactly in structure (widths, distinct counts, piece counts and value
/// shares), so the experiments reproduce the paper's shapes without the
/// proprietary download. `DefaultCovtypeSpec()` is calibrated to Figure 8.

namespace popp {

/// Target structure of one synthetic attribute.
struct AttributeTargets {
  std::string name;
  int64_t min_value = 0;        ///< smallest value of the dynamic range
  int64_t range_width = 100;    ///< max - min + 1 (Figure 8 column 2)
  size_t num_distinct = 100;    ///< Figure 8 column 3
  size_t num_mono_pieces = 0;   ///< Figure 8 column 4
  double mono_value_fraction = 0.0;  ///< Figure 8 column 6 (0..1)
};

/// Full generator specification.
struct CovtypeLikeSpec {
  std::vector<AttributeTargets> attributes;
  /// Class-label weights (need not be normalized); covertype has 7 cover
  /// types with two dominant classes.
  std::vector<double> class_weights = {0.365, 0.488, 0.062, 0.005,
                                       0.016, 0.030, 0.035};
  std::vector<std::string> class_names;  ///< default c1..ck if empty
  size_t num_rows = 60000;
};

/// The 10 attributes of Figure 8 (names follow the covertype documentation).
CovtypeLikeSpec DefaultCovtypeSpec(size_t num_rows = 60000);

/// A small 3-attribute spec for fast tests.
CovtypeLikeSpec SmallCovtypeSpec(size_t num_rows = 3000);

/// Generates a dataset matching `spec`.
///
/// Guarantees, per attribute (verified by tests):
///  * active domain has exactly `num_distinct` values, spanning exactly
///    `range_width` integer slots;
///  * exactly `num_mono_pieces` maximal monochromatic pieces covering
///    round(mono_value_fraction * num_distinct) distinct values;
///  * every non-monochromatic value carries >= 2 classes.
Dataset GenerateCovtypeLike(const CovtypeLikeSpec& spec, Rng& rng);

}  // namespace popp

#endif  // POPP_SYNTH_COVTYPE_LIKE_H_
