#include "synth/presets.h"

#include "util/status.h"

namespace popp {

Dataset MakeFigure1Dataset() {
  Dataset data({"age", "salary"}, {"High", "Low"});
  const ClassId kHigh = 0;
  const ClassId kLow = 1;
  // Sorted by age the class string is H H H L H L, exactly as in the
  // paper. (The paper's text also states sigma_salary = HHHHLL, but that
  // string admits a *perfect* salary split, which would contradict the
  // age-rooted tree of Figure 1(d); we use salaries giving HHHLLH so the
  // induced tree matches the figure: split age at 27.5, then salary.)
  data.AddRow({17, 40000}, kHigh);
  data.AddRow({20, 20000}, kHigh);
  data.AddRow({23, 50000}, kHigh);
  data.AddRow({32, 60000}, kLow);
  data.AddRow({43, 80000}, kHigh);
  data.AddRow({50, 70000}, kLow);
  return data;
}

Dataset MakeFigure1Transformed() {
  Dataset data = MakeFigure1Dataset();
  auto& age = data.MutableColumn(0);
  for (auto& v : age) v = 0.9 * v + 10.0;
  auto& salary = data.MutableColumn(1);
  for (auto& v : salary) v = 0.5 * v;
  return data;
}

CovtypeLikeSpec CensusLikeSpec(size_t num_rows) {
  CovtypeLikeSpec spec;
  spec.num_rows = num_rows;
  spec.attributes = {
      {"age", 17, 74, 72, 3, 0.25},
      {"wage_per_hour", 0, 2000, 300, 18, 0.45},
      {"capital_gain", 0, 5000, 350, 24, 0.55},
      {"weeks_worked", 0, 53, 53, 0, 0.0},
      {"dividends", 0, 3000, 300, 16, 0.50},
  };
  spec.class_weights = {0.76, 0.24};
  spec.class_names = {"under50k", "over50k"};
  return spec;
}

CovtypeLikeSpec WdbcLikeSpec(size_t num_rows) {
  CovtypeLikeSpec spec;
  spec.num_rows = num_rows;
  spec.attributes = {
      {"radius", 70, 220, 100, 6, 0.40},
      {"texture", 90, 300, 140, 5, 0.35},
      {"perimeter", 430, 1600, 300, 12, 0.45},
      {"area", 1400, 2400, 350, 10, 0.50},
      {"smoothness", 50, 120, 60, 2, 0.20},
      {"concavity", 0, 430, 150, 8, 0.38},
  };
  spec.class_weights = {0.63, 0.37};
  spec.class_names = {"benign", "malignant"};
  return spec;
}

Dataset MakeCorrelatedDataset(size_t num_rows, size_t num_attrs,
                              size_t num_factors, double attribute_noise,
                              Rng& rng) {
  POPP_CHECK(num_rows > 1 && num_attrs > 0 && num_factors > 0);
  std::vector<std::string> attr_names;
  for (size_t a = 0; a < num_attrs; ++a) {
    attr_names.push_back("x" + std::to_string(a + 1));
  }
  Dataset data(Schema(attr_names, {"neg", "pos"}));
  data.Reserve(num_rows);

  // Random loading matrix with entries in [-1, 1], scaled so attribute
  // magnitudes land around +-100.
  std::vector<std::vector<double>> loading(num_attrs,
                                           std::vector<double>(num_factors));
  for (auto& row : loading) {
    for (auto& w : row) w = rng.Uniform(-1.0, 1.0) * 100.0;
  }

  std::vector<double> factors(num_factors);
  std::vector<AttrValue> values(num_attrs);
  for (size_t r = 0; r < num_rows; ++r) {
    for (auto& z : factors) z = rng.Gaussian();
    for (size_t a = 0; a < num_attrs; ++a) {
      double v = 0.0;
      for (size_t f = 0; f < num_factors; ++f) {
        v += loading[a][f] * factors[f];
      }
      values[a] = v + rng.Gaussian(0.0, attribute_noise);
    }
    data.AddRow(values, factors[0] > 0.0 ? 1 : 0);
  }
  return data;
}

Dataset MakeRandomDataset(size_t num_rows, size_t num_attrs,
                          size_t num_classes, int64_t max_value, Rng& rng) {
  POPP_CHECK(num_rows > 0 && num_attrs > 0 && num_classes >= 2);
  std::vector<std::string> attr_names;
  for (size_t a = 0; a < num_attrs; ++a) {
    attr_names.push_back("attr" + std::to_string(a + 1));
  }
  std::vector<std::string> class_names;
  for (size_t c = 0; c < num_classes; ++c) {
    class_names.push_back("c" + std::to_string(c + 1));
  }
  Dataset data(Schema(attr_names, class_names));
  data.Reserve(num_rows);
  std::vector<AttrValue> values(num_attrs);
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < num_attrs; ++a) {
      values[a] = static_cast<AttrValue>(rng.UniformInt(0, max_value));
    }
    const ClassId label = static_cast<ClassId>(
        rng.UniformInt(0, static_cast<int64_t>(num_classes) - 1));
    data.AddRow(values, label);
  }
  return data;
}

}  // namespace popp
