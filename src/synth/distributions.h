#ifndef POPP_SYNTH_DISTRIBUTIONS_H_
#define POPP_SYNTH_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

/// \file
/// Sampling primitives for synthetic workloads: categorical draws, Zipf
/// ranks, and distinct-support sampling for integer domains. The paper's
/// attack model explicitly lists Zipf and Gaussian as distributions a
/// hacker may assume as prior knowledge (Section 3.3), so the generators
/// here let experiments produce both shapes.

namespace popp {

/// Weighted categorical sampler with O(1) draws (alias method).
class CategoricalSampler {
 public:
  /// `weights` must be non-empty with non-negative entries and a positive
  /// sum; they need not be normalized.
  explicit CategoricalSampler(const std::vector<double>& weights);

  /// Draws an index in [0, weights.size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;   // alias-method cut probabilities
  std::vector<size_t> alias_;  // alias targets
};

/// Zipf(s) sampler over ranks 1..n (probability of rank r proportional to
/// r^-s). Draws by inverse CDF over a precomputed table; O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [1, n].
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Samples `count` distinct integers from [lo, hi], always including both
/// endpoints (so the dynamic range width is exactly hi - lo + 1). Requires
/// 2 <= count <= hi - lo + 1. Returned sorted ascending.
std::vector<int64_t> SampleDistinctSupport(int64_t lo, int64_t hi,
                                           size_t count, Rng& rng);

/// Like SampleDistinctSupport, but *clustered*: the range is divided into
/// `num_segments` runs whose sampling densities differ by up to
/// exp(2 * log_density_spread), so the support has dense stretches and
/// sparse stretches — the shape of real sensor/measurement attributes
/// (e.g. covertype's distance fields). Clustering matters for the sorting
/// attack: rank-to-value drift accumulates across sparse stretches, while
/// a uniformly sampled support would keep the drift tiny everywhere.
std::vector<int64_t> SampleClusteredSupport(int64_t lo, int64_t hi,
                                            size_t count,
                                            size_t num_segments,
                                            double log_density_spread,
                                            Rng& rng);

/// Rounds a Gaussian draw to an integer and clamps it into [lo, hi].
int64_t ClampedGaussianInt(double mean, double stddev, int64_t lo, int64_t hi,
                           Rng& rng);

}  // namespace popp

#endif  // POPP_SYNTH_DISTRIBUTIONS_H_
