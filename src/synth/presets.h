#ifndef POPP_SYNTH_PRESETS_H_
#define POPP_SYNTH_PRESETS_H_

#include <cstddef>

#include "data/dataset.h"
#include "synth/covtype_like.h"
#include "util/rng.h"

/// \file
/// Ready-made datasets and generator specs used by examples, tests and
/// experiments.

namespace popp {

/// The didactic training set of the paper's Figure 1: six tuples over
/// (age, salary) with classes High/Low, with sigma_age = HHHLHL and a
/// salary arrangement that reproduces the figure's tree (age at the root,
/// salary in the right subtree) — see the note in the implementation.
Dataset MakeFigure1Dataset();

/// The transformed Figure 1 data D' under the paper's example functions
/// age' = 0.9 * age + 10 and salary' = 0.5 * salary.
Dataset MakeFigure1Transformed();

/// A census-income-like spec (the paper's second benchmark): fewer rows,
/// a binary class, wide age/income-style attributes.
CovtypeLikeSpec CensusLikeSpec(size_t num_rows = 20000);

/// A WDBC-like spec (the paper's third benchmark): small and numeric-dense
/// with a binary class.
CovtypeLikeSpec WdbcLikeSpec(size_t num_rows = 4000);

/// A fully random dataset for property tests: `num_rows` tuples over
/// `num_attrs` integer attributes with values in [0, max_value] and
/// `num_classes` uniformly random classes. No structure is enforced.
Dataset MakeRandomDataset(size_t num_rows, size_t num_attrs,
                          size_t num_classes, int64_t max_value, Rng& rng);

/// A latent-factor dataset: every attribute is a noisy linear view of
/// `num_factors` shared latent variables, so the columns are strongly
/// correlated — the setting in which the spectral attack on perturbed
/// data shines and a linear separator is the natural model. The binary
/// class is the sign of the first latent factor, which makes the classes
/// linearly separable up to the attribute noise.
Dataset MakeCorrelatedDataset(size_t num_rows, size_t num_attrs,
                              size_t num_factors, double attribute_noise,
                              Rng& rng);

}  // namespace popp

#endif  // POPP_SYNTH_PRESETS_H_
