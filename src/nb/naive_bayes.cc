#include "nb/naive_bayes.h"

#include <cmath>

#include "util/status.h"

namespace popp {

NaiveBayes NaiveBayes::Train(const Dataset& data,
                             const NaiveBayesOptions& options) {
  POPP_CHECK_MSG(data.NumRows() > 0, "NB needs data");
  POPP_CHECK_MSG(options.alpha > 0.0, "alpha must be positive");
  NaiveBayes model;
  model.alpha_ = options.alpha;
  model.total_rows_ = data.NumRows();
  model.class_counts_.assign(data.NumClasses(), 0);
  model.tables_.resize(data.NumAttributes());
  model.distinct_.assign(data.NumAttributes(), 0);

  for (size_t r = 0; r < data.NumRows(); ++r) {
    model.class_counts_[static_cast<size_t>(data.Label(r))]++;
  }
  for (size_t a = 0; a < data.NumAttributes(); ++a) {
    auto& table = model.tables_[a];
    const auto& col = data.Column(a);
    for (size_t r = 0; r < data.NumRows(); ++r) {
      auto [it, inserted] = table.try_emplace(
          col[r], std::vector<uint64_t>(data.NumClasses(), 0));
      it->second[static_cast<size_t>(data.Label(r))]++;
    }
    model.distinct_[a] = table.size();
  }
  return model;
}

std::vector<double> NaiveBayes::LogPosterior(
    const std::vector<AttrValue>& values) const {
  POPP_CHECK_MSG(values.size() == tables_.size(),
                 "tuple arity mismatches the model");
  const size_t k = class_counts_.size();
  std::vector<double> log_post(k);
  for (size_t c = 0; c < k; ++c) {
    // Smoothed class prior.
    log_post[c] = std::log(
        (static_cast<double>(class_counts_[c]) + alpha_) /
        (static_cast<double>(total_rows_) + alpha_ * static_cast<double>(k)));
  }
  for (size_t a = 0; a < tables_.size(); ++a) {
    const auto it = tables_[a].find(values[a]);
    for (size_t c = 0; c < k; ++c) {
      const double count =
          it == tables_[a].end() ? 0.0
                                 : static_cast<double>(it->second[c]);
      const double denom =
          static_cast<double>(class_counts_[c]) +
          alpha_ * static_cast<double>(distinct_[a] + 1);
      log_post[c] += std::log((count + alpha_) / denom);
    }
  }
  return log_post;
}

ClassId NaiveBayes::Predict(const std::vector<AttrValue>& values) const {
  const std::vector<double> log_post = LogPosterior(values);
  ClassId best = 0;
  for (size_t c = 1; c < log_post.size(); ++c) {
    // Strict improvement: ties break to the smaller class id, a
    // count-only rule (like the tree builder's), so predictions are
    // invariant under value bijections.
    if (log_post[c] > log_post[static_cast<size_t>(best)]) {
      best = static_cast<ClassId>(c);
    }
  }
  return best;
}

double NaiveBayes::Accuracy(const Dataset& data) const {
  if (data.NumRows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t r = 0; r < data.NumRows(); ++r) {
    if (Predict(data.Row(r)) == data.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.NumRows());
}

}  // namespace popp
