#ifndef POPP_NB_NAIVE_BAYES_H_
#define POPP_NB_NAIVE_BAYES_H_

#include <unordered_map>
#include <vector>

#include "data/dataset.h"

/// \file
/// Discrete (categorical-likelihood) naive Bayes over numeric attributes:
/// each attribute value is treated as a category with Laplace-smoothed
/// per-class frequencies.
///
/// Its role here is to complete the learner spectrum around the paper's
/// guarantee:
///   * decision trees  — preserved under order-preserving per-attribute
///                       transforms (the paper's result);
///   * discrete NB     — preserved under *arbitrary* per-attribute
///                       bijections, even order-destroying ones, because it
///                       only ever compares per-value class counts (tested
///                       in nb_test.cc);
///   * linear SVMs     — preserved only up to per-attribute affine maps
///                       (svm/linear_svm.h).
/// So the custodian model extends beyond trees to any learner whose
/// statistics are per-attribute-value class counts — with *more* freedom,
/// since no global invariant is needed at all.

namespace popp {

/// Smoothing and fallback parameters.
struct NaiveBayesOptions {
  /// Laplace pseudo-count added to every (value, class) cell.
  double alpha = 1.0;
};

/// A trained discrete naive Bayes classifier.
class NaiveBayes {
 public:
  /// Trains on all rows of `data`. Requires NumRows() > 0.
  static NaiveBayes Train(const Dataset& data,
                          const NaiveBayesOptions& options = {});

  /// Predicts the class of a full attribute-value tuple. Unseen values
  /// contribute only the smoothing mass (identically across classes).
  ClassId Predict(const std::vector<AttrValue>& values) const;

  /// Per-class log-posterior (up to the shared evidence constant).
  std::vector<double> LogPosterior(const std::vector<AttrValue>& values) const;

  /// Fraction of rows of `data` classified correctly.
  double Accuracy(const Dataset& data) const;

  size_t NumClasses() const { return class_counts_.size(); }

 private:
  double alpha_ = 1.0;
  uint64_t total_rows_ = 0;
  std::vector<uint64_t> class_counts_;
  /// Per attribute: value -> per-class counts.
  std::vector<std::unordered_map<AttrValue, std::vector<uint64_t>>> tables_;
  /// Per attribute: number of distinct values (the smoothing denominator).
  std::vector<size_t> distinct_;
};

}  // namespace popp

#endif  // POPP_NB_NAIVE_BAYES_H_
