#ifndef POPP_RESIL_ADMISSION_H_
#define POPP_RESIL_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "resil/deadline.h"
#include "util/status.h"

/// \file
/// Bounded admission control for popp-serve.
///
/// Every tenant request passes through one AdmissionController before any
/// work happens. The controller enforces three limits:
///
///  * a global in-flight cap — at most `max_inflight` requests execute
///    concurrently;
///  * a bounded wait queue — at most `max_queue` requests wait for a
///    slot; the next one is *shed* with an explicit kUnavailable status
///    carrying a "retry-after-ms" hint (overload is answered, never
///    queued silently);
///  * an optional per-tenant in-flight cap — a greedy tenant saturating
///    its own cap leaves the remaining global slots grantable to other
///    tenants, because the grant scan skips tenant-capped waiters
///    instead of blocking FIFO behind them.
///
/// Deadlines are honored at every hold point: a request whose deadline
/// has already passed is shed on arrival, and one that expires while
/// queued is shed at dequeue without ever executing.

namespace popp::resil {

struct AdmissionOptions {
  size_t max_inflight = 4;
  size_t max_queue = 16;
  /// Per-tenant concurrent-execution cap; 0 disables the per-tenant limit.
  size_t per_tenant_inflight = 0;
  /// Hint embedded in shed replies ("retry-after-ms N").
  uint64_t retry_after_ms = 100;
};

/// Counter snapshot for the `health` op and logs.
struct AdmissionSnapshot {
  size_t inflight = 0;
  size_t queued = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a slot is granted, then returns OK — the caller MUST
  /// call Release(tenant) when done. Non-OK returns mean no slot is held:
  /// kUnavailable (queue full, or the deadline expired before/while
  /// queued; the message carries the shed reason and, for overload, a
  /// "retry-after-ms N" hint) or kFailedPrecondition (`stop` was raised —
  /// the server is draining).
  Status Acquire(const std::string& tenant, const Deadline& deadline,
                 const std::atomic<bool>* stop);

  /// Returns the slot taken by a successful Acquire.
  void Release(const std::string& tenant);

  AdmissionSnapshot Snapshot() const;

  /// Multi-line "key value" stats block served by the `health` op.
  std::string RenderStats() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Waiter {
    std::string tenant;
    bool granted = false;
  };

  bool AdmissibleLocked(const std::string& tenant) const;
  void TakeSlotLocked(const std::string& tenant);
  void GrantWaitersLocked();

  const AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::list<Waiter*> queue_;
  size_t inflight_ = 0;
  std::unordered_map<std::string, size_t> tenant_inflight_;
  uint64_t admitted_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_deadline_ = 0;
};

}  // namespace popp::resil

#endif  // POPP_RESIL_ADMISSION_H_
