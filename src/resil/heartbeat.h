#ifndef POPP_RESIL_HEARTBEAT_H_
#define POPP_RESIL_HEARTBEAT_H_

#include <cstdint>
#include <string>

/// \file
/// Worker liveness heartbeats.
///
/// A supervised shard worker appends one record per unit of forward
/// progress (one chunk read, one artifact flush) to a per-worker `.hb`
/// file; the coordinator's watchdog treats *file growth* as the liveness
/// signal. Format: one line `b <seq>\n` per beat, sequence strictly
/// increasing from 0 within an attempt, so the file size is monotonic and
/// the content is greppable when debugging a quarantined shard.
///
/// Heartbeats deliberately bypass the fault-injection layer (raw POSIX
/// append): they are advisory — a lost beat can at worst trigger a
/// spurious restart, never corrupt an artifact — and routing them through
/// `fault::` would both perturb the deterministic op counts every fault
/// schedule is keyed on and let a delay injection stall the very signal
/// the watchdog uses to detect stalls.

namespace popp::resil {

/// Append-only beat emitter. Opens with O_TRUNC so each worker attempt
/// restarts the sequence — the watchdog re-baselines on restart. All
/// failures (unwritable path, full disk) are swallowed: a worker must
/// never fail because its liveness side channel did.
class HeartbeatWriter {
 public:
  /// Empty path constructs a disabled writer (Beat() is a no-op).
  explicit HeartbeatWriter(const std::string& path);
  ~HeartbeatWriter();

  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  /// Appends one beat record.
  void Beat();

  bool enabled() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint64_t seq_ = 0;
};

/// Watchdog-side probe: current byte size of the heartbeat file, or 0 if
/// it does not exist yet (a worker that has not opened its file is judged
/// by its spawn time instead).
uint64_t HeartbeatFileBytes(const std::string& path);

/// Removes a heartbeat file (raw unlink, missing file is fine). Used by
/// the coordinator once a worker task settles so `.hb` files never
/// outlive the release that created them.
void RemoveHeartbeatFile(const std::string& path);

}  // namespace popp::resil

#endif  // POPP_RESIL_HEARTBEAT_H_
