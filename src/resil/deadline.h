#ifndef POPP_RESIL_DEADLINE_H_
#define POPP_RESIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

/// \file
/// Absolute wall-clock deadlines for request-scoped work.
///
/// A Deadline is captured once at the edge (frame receipt in popp-serve,
/// flag parse in the CLI) and threaded by value through the op pipeline;
/// each phase boundary asks `Expired()`. Requests transport deadlines as a
/// *relative* "deadline-ms N" option — the receiving process anchors it
/// against its own steady clock, so client/server clock skew never
/// matters.

namespace popp::resil {

/// Optional absolute deadline against std::chrono::steady_clock. A
/// default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `ms` milliseconds from now. After(0) is already expired —
  /// the canonical "shed me immediately" probe.
  static Deadline After(uint64_t ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  /// The never-expiring deadline (same as default construction).
  static Deadline None() { return Deadline(); }

  bool has_deadline() const { return has_deadline_; }

  bool Expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds left; 0 when expired, UINT64_MAX when unbounded.
  uint64_t RemainingMs() const {
    if (!has_deadline_) return UINT64_MAX;
    const auto now = std::chrono::steady_clock::now();
    if (now >= at_) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(at_ - now)
            .count());
  }

  /// The raw time point (meaningful only when has_deadline()).
  std::chrono::steady_clock::time_point at() const { return at_; }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace popp::resil

#endif  // POPP_RESIL_DEADLINE_H_
