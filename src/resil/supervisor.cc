#include "resil/supervisor.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "resil/heartbeat.h"
#include "util/rng.h"

namespace popp::resil {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t MsSince(Clock::time_point then) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            then)
          .count());
}

enum class TaskState { kRunning, kBackoff, kDone };

struct TaskRuntime {
  const WorkerTask* task = nullptr;
  TaskState state = TaskState::kRunning;
  pid_t pid = -1;
  size_t attempt = 0;
  bool killed_by_watchdog = false;
  uint64_t stalled_ms = 0;
  // Watchdog baseline: any change in heartbeat-file size counts as
  // progress; the spawn itself counts as the first beat.
  uint64_t last_hb_bytes = 0;
  Clock::time_point last_progress{};
  Clock::time_point restart_at{};
  RetryPolicy policy;
  std::vector<std::string> history;
  Status final_status;
};

/// Forks the child for one attempt. Returns false (with a synthetic
/// failure recorded by the caller) if fork itself failed.
bool Spawn(TaskRuntime& rt) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::_exit(rt.task->run(rt.attempt));
  }
  rt.pid = pid;
  rt.state = TaskState::kRunning;
  rt.killed_by_watchdog = false;
  rt.last_hb_bytes = HeartbeatFileBytes(rt.task->heartbeat_path);
  rt.last_progress = Clock::now();
  return true;
}

std::string JoinHistory(const std::vector<std::string>& history) {
  std::string out;
  for (size_t i = 0; i < history.size(); ++i) {
    if (i > 0) out += "; ";
    out += history[i];
  }
  return out;
}

/// Records one failed attempt and either schedules a restart or settles
/// the task with its quarantine diagnostic.
void HandleFailure(const SupervisorOptions& options, TaskRuntime& rt,
                   const Status& failure, SupervisionReport* report) {
  std::ostringstream entry;
  entry << "attempt " << rt.attempt << ": " << failure.ToString();
  rt.history.push_back(entry.str());
  if (rt.attempt < options.max_restarts) {
    rt.state = TaskState::kBackoff;
    rt.restart_at = Clock::now() + std::chrono::milliseconds(
                                       rt.policy.DelayMs(rt.attempt));
    return;
  }
  rt.state = TaskState::kDone;
  if (report != nullptr) ++report->quarantined;
  if (rt.history.size() == 1) {
    // No restart budget: surface the lone failure verbatim.
    rt.final_status = failure;
    return;
  }
  std::ostringstream oss;
  oss << rt.task->name << " quarantined after " << rt.history.size()
      << " failed attempts (" << JoinHistory(rt.history) << ")";
  rt.final_status = Status(failure.code(), oss.str());
}

}  // namespace

Status RunSupervised(const SupervisorOptions& options,
                     const std::vector<WorkerTask>& tasks,
                     const ExitDecoder& decode, SupervisionReport* report) {
  std::vector<TaskRuntime> runtime(tasks.size());
  Rng seeder(options.seed);
  for (size_t k = 0; k < tasks.size(); ++k) {
    TaskRuntime& rt = runtime[k];
    rt.task = &tasks[k];
    rt.policy = RetryPolicy(options.backoff, seeder.Fork(k).Next());
    if (!Spawn(rt)) {
      HandleFailure(options, rt,
                    Status::Internal(tasks[k].name + ": fork failed"), report);
    }
  }

  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (TaskRuntime& rt : runtime) {
      if (rt.state == TaskState::kDone) continue;
      all_done = false;

      if (rt.state == TaskState::kBackoff) {
        if (Clock::now() < rt.restart_at) continue;
        ++rt.attempt;
        if (report != nullptr) ++report->worker_restarts;
        if (!Spawn(rt)) {
          HandleFailure(options, rt,
                        Status::Internal(rt.task->name + ": fork failed"),
                        report);
        }
        continue;
      }

      // kRunning: reap if exited, else watchdog-check.
      int wstatus = 0;
      const pid_t got = ::waitpid(rt.pid, &wstatus, WNOHANG);
      if (got == rt.pid) {
        if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
          rt.state = TaskState::kDone;
          rt.final_status = Status::Ok();
        } else if (rt.killed_by_watchdog) {
          std::ostringstream oss;
          oss << rt.task->name << " hung: no heartbeat for " << rt.stalled_ms
              << " ms (deadline " << options.worker_deadline_ms
              << " ms); killed by watchdog";
          HandleFailure(options, rt, Status::Unavailable(oss.str()), report);
        } else if (WIFEXITED(wstatus)) {
          HandleFailure(options, rt, decode(*rt.task, WEXITSTATUS(wstatus)),
                        report);
        } else {
          std::ostringstream oss;
          oss << rt.task->name << " terminated by signal "
              << (WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : 0);
          HandleFailure(options, rt, Status::Internal(oss.str()), report);
        }
        if (rt.state == TaskState::kDone) {
          RemoveHeartbeatFile(rt.task->heartbeat_path);
        }
        continue;
      }

      // Still running: a heartbeat-file size change is progress.
      if (options.worker_deadline_ms == 0 || rt.task->heartbeat_path.empty() ||
          rt.killed_by_watchdog) {
        continue;
      }
      const uint64_t bytes = HeartbeatFileBytes(rt.task->heartbeat_path);
      if (bytes != rt.last_hb_bytes) {
        rt.last_hb_bytes = bytes;
        rt.last_progress = Clock::now();
        continue;
      }
      const uint64_t silent_ms = MsSince(rt.last_progress);
      if (silent_ms > options.worker_deadline_ms) {
        rt.killed_by_watchdog = true;
        rt.stalled_ms = silent_ms;
        if (report != nullptr) ++report->workers_killed;
        ::kill(rt.pid, SIGKILL);
        // The next poll reaps the corpse and routes it to HandleFailure.
      }
    }
    if (!all_done) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
    }
  }

  for (const TaskRuntime& rt : runtime) {
    if (!rt.final_status.ok()) return rt.final_status;
  }
  return Status::Ok();
}

}  // namespace popp::resil
