#include "resil/retry.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace popp::resil {

uint64_t RetryPolicy::DelayMs(size_t attempt) const {
  double nominal = static_cast<double>(options_.base_ms) *
                   std::pow(options_.multiplier, static_cast<double>(attempt));
  nominal = std::min(nominal, static_cast<double>(options_.cap_ms));
  const double jitter = std::clamp(options_.jitter, 0.0, 0.999);
  if (jitter > 0.0) {
    // Fork(attempt) gives an independent, order-free stream per attempt:
    // two supervisors asking for DelayMs(3) of the same seed agree even if
    // one of them never asked for attempts 0..2.
    Rng rng = Rng(seed_).Fork(static_cast<uint64_t>(attempt));
    nominal *= 1.0 - jitter + 2.0 * jitter * rng.Uniform01();
  }
  if (nominal <= 0.0) return 0;
  const double capped =
      std::min(nominal, static_cast<double>(options_.cap_ms) * 2.0);
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(capped)));
}

}  // namespace popp::resil
