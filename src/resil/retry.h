#ifndef POPP_RESIL_RETRY_H_
#define POPP_RESIL_RETRY_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Deterministic retry backoff.
///
/// Every retry loop in the tree — the shard supervisor restarting a
/// crashed worker, `popp serve-client --retry` re-sending a shed request —
/// shares one policy: bounded exponential backoff with deterministic
/// jitter. The jitter is a pure function of (seed, attempt), drawn from
/// the project Rng's fork tree, so a failing supervised run replays its
/// exact restart schedule from the seed and the chaos oracle's wall-clock
/// bound is meaningful.

namespace popp::resil {

/// Shape of the backoff curve. Delay for attempt `a` (0-based) is
/// `min(cap_ms, base_ms * multiplier^a)` scaled by a jitter factor drawn
/// uniformly from [1 - jitter, 1 + jitter].
struct BackoffOptions {
  uint64_t base_ms = 50;
  uint64_t cap_ms = 2000;
  double multiplier = 2.0;
  double jitter = 0.25;  ///< in [0, 1); 0 disables jitter entirely
};

/// Deterministic delay schedule: DelayMs(a) depends only on (options,
/// seed, a) — never on call order or wall clock — so concurrent retry
/// loops sharing one policy object stay reproducible.
class RetryPolicy {
 public:
  RetryPolicy() : RetryPolicy(BackoffOptions{}, 1) {}
  RetryPolicy(BackoffOptions options, uint64_t seed)
      : options_(options), seed_(seed) {}

  /// Backoff before retry number `attempt` (0-based: DelayMs(0) follows
  /// the first failure). Always >= 1 unless base_ms is 0.
  uint64_t DelayMs(size_t attempt) const;

  const BackoffOptions& options() const { return options_; }

 private:
  BackoffOptions options_;
  uint64_t seed_;
};

}  // namespace popp::resil

#endif  // POPP_RESIL_RETRY_H_
