#include "resil/admission.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace popp::resil {

bool AdmissionController::AdmissibleLocked(const std::string& tenant) const {
  if (inflight_ >= options_.max_inflight) return false;
  if (options_.per_tenant_inflight > 0) {
    const auto it = tenant_inflight_.find(tenant);
    if (it != tenant_inflight_.end() &&
        it->second >= options_.per_tenant_inflight) {
      return false;
    }
  }
  return true;
}

void AdmissionController::TakeSlotLocked(const std::string& tenant) {
  ++inflight_;
  ++tenant_inflight_[tenant];
  ++admitted_;
}

void AdmissionController::GrantWaitersLocked() {
  // In-order scan that *skips* waiters blocked only by their tenant cap:
  // a greedy tenant's backlog must not starve an admissible waiter from
  // another tenant queued behind it.
  for (auto it = queue_.begin();
       it != queue_.end() && inflight_ < options_.max_inflight;) {
    Waiter* waiter = *it;
    if (!AdmissibleLocked(waiter->tenant)) {
      ++it;
      continue;
    }
    TakeSlotLocked(waiter->tenant);
    waiter->granted = true;
    it = queue_.erase(it);
  }
}

Status AdmissionController::Acquire(const std::string& tenant,
                                    const Deadline& deadline,
                                    const std::atomic<bool>* stop) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stop != nullptr && stop->load()) {
    return Status::FailedPrecondition("server is draining");
  }
  if (deadline.Expired()) {
    ++shed_deadline_;
    return Status::Unavailable("deadline exceeded before admission");
  }
  if (queue_.empty() && AdmissibleLocked(tenant)) {
    TakeSlotLocked(tenant);
    return Status::Ok();
  }
  if (queue_.size() >= options_.max_queue) {
    ++shed_queue_full_;
    std::ostringstream oss;
    oss << "overloaded: admission queue full (" << queue_.size()
        << " queued, " << inflight_ << " in flight); retry-after-ms "
        << options_.retry_after_ms;
    return Status::Unavailable(oss.str());
  }

  Waiter self;
  self.tenant = tenant;
  queue_.push_back(&self);
  // A freshly queued waiter may already be admissible (e.g. the queue was
  // non-empty only with tenant-capped peers).
  GrantWaitersLocked();
  cv_.notify_all();
  while (!self.granted) {
    const bool stopping = stop != nullptr && stop->load();
    if (stopping || deadline.Expired()) {
      queue_.remove(&self);
      if (stopping) return Status::FailedPrecondition("server is draining");
      ++shed_deadline_;
      return Status::Unavailable("deadline exceeded while queued");
    }
    // Bounded waits keep both the stop flag and the deadline observable.
    uint64_t wait_ms = 50;
    if (deadline.has_deadline()) {
      wait_ms = std::min<uint64_t>(wait_ms, deadline.RemainingMs() + 1);
    }
    cv_.wait_for(lock, std::chrono::milliseconds(std::max<uint64_t>(
                           1, wait_ms)));
  }
  // Granted — but the slot is only usable if the deadline still holds.
  if (deadline.Expired()) {
    --inflight_;
    auto it = tenant_inflight_.find(tenant);
    if (it != tenant_inflight_.end() && --it->second == 0) {
      tenant_inflight_.erase(it);
    }
    GrantWaitersLocked();
    cv_.notify_all();
    ++shed_deadline_;
    return Status::Unavailable("deadline exceeded while queued");
  }
  return Status::Ok();
}

void AdmissionController::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (inflight_ > 0) --inflight_;
  auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end() && --it->second == 0) {
    tenant_inflight_.erase(it);
  }
  GrantWaitersLocked();
  cv_.notify_all();
}

AdmissionSnapshot AdmissionController::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionSnapshot snapshot;
  snapshot.inflight = inflight_;
  snapshot.queued = queue_.size();
  snapshot.admitted = admitted_;
  snapshot.shed_queue_full = shed_queue_full_;
  snapshot.shed_deadline = shed_deadline_;
  return snapshot;
}

std::string AdmissionController::RenderStats() const {
  const AdmissionSnapshot snapshot = Snapshot();
  std::ostringstream oss;
  oss << "inflight " << snapshot.inflight << "\n"
      << "queued " << snapshot.queued << "\n"
      << "admitted " << snapshot.admitted << "\n"
      << "shed-queue-full " << snapshot.shed_queue_full << "\n"
      << "shed-deadline " << snapshot.shed_deadline << "\n"
      << "max-inflight " << options_.max_inflight << "\n"
      << "max-queue " << options_.max_queue << "\n"
      << "tenant-cap " << options_.per_tenant_inflight << "\n";
  return oss.str();
}

}  // namespace popp::resil
