#include "resil/heartbeat.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace popp::resil {

HeartbeatWriter::HeartbeatWriter(const std::string& path) {
  if (path.empty()) return;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
               0644);
}

HeartbeatWriter::~HeartbeatWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void HeartbeatWriter::Beat() {
  if (fd_ < 0) return;
  char line[32];
  const int n = std::snprintf(line, sizeof(line), "b %llu\n",
                              static_cast<unsigned long long>(seq_++));
  if (n > 0) {
    // Best-effort: a short or failed append only costs liveness signal.
    ssize_t ignored = ::write(fd_, line, static_cast<size_t>(n));
    (void)ignored;
  }
}

uint64_t HeartbeatFileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

void RemoveHeartbeatFile(const std::string& path) {
  if (!path.empty()) ::unlink(path.c_str());
}

}  // namespace popp::resil
