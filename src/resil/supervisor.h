#ifndef POPP_RESIL_SUPERVISOR_H_
#define POPP_RESIL_SUPERVISOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "resil/retry.h"
#include "util/status.h"

/// \file
/// Supervised execution of forked worker processes.
///
/// `RunSupervised` forks one child per task, then polls the whole set with
/// `waitpid(WNOHANG)` while running a heartbeat watchdog: a worker whose
/// `.hb` file stops changing for longer than `worker_deadline_ms` is
/// presumed hung, SIGKILLed, and treated like any other failed attempt. A
/// failed attempt (non-zero exit, fatal signal, or watchdog kill) is
/// retried with deterministic exponential backoff (`RetryPolicy`, seeded
/// per task from the supervisor seed) until `max_restarts` restarts are
/// exhausted, at which point the task is quarantined and the run fails
/// with a diagnostic naming the task and its complete failure history.
///
/// The contract the shard pipeline relies on: `run(attempt)` is invoked in
/// the child with the 0-based attempt number, so a restarted encode worker
/// can switch itself into journal-resume mode and only redo missing
/// chunks. The coordinator must be effectively single-threaded when this
/// is called (fork does not mix with live thread pools) — the same
/// restriction the unsupervised fork path always had.

namespace popp::resil {

struct SupervisorOptions {
  /// Max wall-clock ms a worker may go without heartbeat-file change
  /// before the watchdog kills it. 0 disables the watchdog (crash
  /// detection and restarts still work). Tasks with no heartbeat path are
  /// never killed.
  uint64_t worker_deadline_ms = 30000;
  /// Restarts per task after the initial attempt; 0 means fail fast.
  size_t max_restarts = 2;
  /// Backoff between a failed attempt and its restart.
  BackoffOptions backoff{};
  /// Seeds the per-task jitter streams (task k uses a child seed forked
  /// from this), so a supervised run's restart timing replays exactly.
  uint64_t seed = 1;
  /// Poll interval of the waitpid/watchdog loop.
  uint64_t poll_ms = 10;
};

/// One supervised unit of work, executed in a forked child.
struct WorkerTask {
  /// Diagnostic name, e.g. "shard 3 encode worker".
  std::string name;
  /// Heartbeat file this worker appends to; empty disables the watchdog
  /// for this task.
  std::string heartbeat_path;
  /// Child body: runs in the forked process, returns the exit code
  /// (`_exit`ed verbatim). `attempt` is 0 on the first try.
  std::function<int(size_t attempt)> run;
};

/// Aggregate counters for stats surfaces (ShardStats, logs).
struct SupervisionReport {
  size_t workers_killed = 0;    ///< watchdog SIGKILLs
  size_t worker_restarts = 0;   ///< respawns after a failed attempt
  size_t quarantined = 0;       ///< tasks that exhausted their restarts
};

/// Maps a worker's raw exit code to the Status it encodes. Watchdog kills
/// and fatal signals never reach the decoder — the supervisor classifies
/// those itself (kUnavailable for a hang, kInternal for a stray signal).
using ExitDecoder = std::function<Status(const WorkerTask&, int exit_code)>;

/// Runs every task to completion under supervision. Returns OK iff every
/// task eventually exited 0; otherwise the first failed task's final
/// status (the quarantine diagnostic when restarts were exhausted).
Status RunSupervised(const SupervisorOptions& options,
                     const std::vector<WorkerTask>& tasks,
                     const ExitDecoder& decode, SupervisionReport* report);

}  // namespace popp::resil

#endif  // POPP_RESIL_SUPERVISOR_H_
