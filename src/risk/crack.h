#ifndef POPP_RISK_CRACK_H_
#define POPP_RISK_CRACK_H_

#include "data/value.h"

/// \file
/// The crack predicate shared by all three disclosure metrics
/// (Definitions 1–3): a guess cracks a value when it falls within radius
/// rho of the true original.

namespace popp {

/// |guess - truth| <= rho (Definition 1's crack condition).
bool IsCrack(AttrValue guess, AttrValue truth, double rho);

}  // namespace popp

#endif  // POPP_RISK_CRACK_H_
