#ifndef POPP_RISK_TRIALS_H_
#define POPP_RISK_TRIALS_H_

#include <functional>
#include <vector>

#include "parallel/exec_policy.h"
#include "util/rng.h"
#include "util/stats.h"

/// \file
/// Multi-trial harness: the paper reports each disclosure figure as the
/// median over 500 random trials (Section 6.1). Trial t always draws from
/// the t-th indexed child stream of the master seed (Rng::Fork(t)), so a
/// trial's outcome depends on nothing but (seed, t): not on the trial
/// count, not on the order trials run in, and not on the thread count.

namespace popp {

/// Runs `trial` `num_trials` times with independent RNG streams seeded
/// from `seed`, under `exec` (serial by default); returns the collected
/// values, bit-identical for every thread count. When run in parallel,
/// `trial` must be safe to invoke concurrently (the usual pattern —
/// capturing only const references to shared inputs — is).
std::vector<double> CollectTrials(size_t num_trials, uint64_t seed,
                                  const std::function<double(Rng&)>& trial,
                                  const ExecPolicy& exec = {});

/// Back-compat spelling of CollectTrials(..., ExecPolicy{threads});
/// `threads` = 0 means hardware concurrency.
std::vector<double> CollectTrialsParallel(
    size_t num_trials, uint64_t seed,
    const std::function<double(Rng&)>& trial, size_t threads = 0);

/// Median over the trials.
double MedianOverTrials(size_t num_trials, uint64_t seed,
                        const std::function<double(Rng&)>& trial,
                        const ExecPolicy& exec = {});

/// Full distribution summary over the trials.
Summary SummarizeTrials(size_t num_trials, uint64_t seed,
                        const std::function<double(Rng&)>& trial,
                        const ExecPolicy& exec = {});

}  // namespace popp

#endif  // POPP_RISK_TRIALS_H_
