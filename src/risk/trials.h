#ifndef POPP_RISK_TRIALS_H_
#define POPP_RISK_TRIALS_H_

#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

/// \file
/// Multi-trial harness: the paper reports each disclosure figure as the
/// median over 500 random trials (Section 6.1). Every trial gets an
/// independent forked RNG stream, so trial counts can change without
/// perturbing individual trials.

namespace popp {

/// Runs `trial` `num_trials` times with independent RNG streams seeded
/// from `seed`; returns the collected values.
std::vector<double> CollectTrials(size_t num_trials, uint64_t seed,
                                  const std::function<double(Rng&)>& trial);

/// Parallel variant: trial i still gets the i-th forked stream, so the
/// result vector is bit-identical to CollectTrials regardless of
/// `threads` (0 = hardware concurrency). `trial` must be safe to invoke
/// concurrently (the usual pattern — capturing only const references to
/// shared inputs — is).
std::vector<double> CollectTrialsParallel(
    size_t num_trials, uint64_t seed,
    const std::function<double(Rng&)>& trial, size_t threads = 0);

/// Median over the trials.
double MedianOverTrials(size_t num_trials, uint64_t seed,
                        const std::function<double(Rng&)>& trial);

/// Full distribution summary over the trials.
Summary SummarizeTrials(size_t num_trials, uint64_t seed,
                        const std::function<double(Rng&)>& trial);

}  // namespace popp

#endif  // POPP_RISK_TRIALS_H_
