#ifndef POPP_RISK_PATTERN_RISK_H_
#define POPP_RISK_PATTERN_RISK_H_

#include <map>
#include <vector>

#include "attack/curve_fit.h"
#include "attack/knowledge.h"
#include "data/dataset.h"
#include "transform/plan.h"
#include "tree/decision_tree.h"
#include "util/rng.h"

/// \file
/// Pattern (output-privacy) disclosure risk (paper Definition 3 and
/// Section 6.4): the hacker sees the encoded tree T' and tries to crack
/// the thresholds along its root-to-leaf paths. A path cracks only when
/// *every* threshold on it is guessed to within the per-attribute radius.

namespace popp {

/// Outcome of a pattern-disclosure evaluation.
struct PatternRiskResult {
  double risk = 0;
  size_t cracks = 0;  ///< cracked paths
  size_t total = 0;   ///< paths in T'

  /// Path-length histogram and per-length cracks (the Section 6.4 table).
  std::map<size_t, size_t> paths_by_length;
  std::map<size_t, size_t> cracks_by_length;
};

/// Evaluates Definition 3 on the paths of `tprime`.
///
/// For each path condition `A theta nu'`, the hacker's guess is
/// `cracks[A]->Guess(nu')` and the truth is the plan's exact decode of
/// nu'; the condition cracks when they differ by at most rhos[A].
PatternRiskResult PatternDisclosureRisk(
    const DecisionTree& tprime, const TransformPlan& plan,
    const std::vector<const CrackFunction*>& cracks,
    const std::vector<double>& rhos);

/// Full single-trial pipeline: per-attribute knowledge points and curve
/// fits (against each attribute's transform), then path cracking.
/// `original` supplies the attribute summaries for KP sampling and radii.
PatternRiskResult CurveFitPatternRisk(const DecisionTree& tprime,
                                      const Dataset& original,
                                      const TransformPlan& plan,
                                      FitMethod method,
                                      const KnowledgeOptions& knowledge,
                                      Rng& rng);

}  // namespace popp

#endif  // POPP_RISK_PATTERN_RISK_H_
