#include "risk/crack.h"

#include <cmath>

namespace popp {

bool IsCrack(AttrValue guess, AttrValue truth, double rho) {
  return std::fabs(guess - truth) <= rho;
}

}  // namespace popp
