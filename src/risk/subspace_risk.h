#ifndef POPP_RISK_SUBSPACE_RISK_H_
#define POPP_RISK_SUBSPACE_RISK_H_

#include <vector>

#include "attack/curve_fit.h"
#include "attack/knowledge.h"
#include "data/dataset.h"
#include "transform/plan.h"
#include "util/rng.h"

/// \file
/// Subspace association disclosure risk (paper Definition 2): for a subset
/// S of attributes, the fraction of S-tuples in D' whose *every*
/// coordinate is cracked simultaneously. This is the metric the paper
/// argues matters most to custodians ("protecting Bob of age 45 earning
/// 50K, rather than the individual values").

namespace popp {

/// Outcome of one subspace-association evaluation.
struct SubspaceRiskResult {
  double risk = 0;
  size_t cracks = 0;  ///< S-tuples with all coordinates cracked
  size_t total = 0;   ///< S-tuples (rows) evaluated
};

/// Evaluates Definition 2 over the rows of `original`.
///
/// `subspace` lists the attribute indices of S; `cracks[i]` is the crack
/// function the hacker uses against subspace[i]; `rhos[i]` the per-
/// attribute radius. Per-attribute crack outcomes are computed once per
/// distinct value, then combined per row.
SubspaceRiskResult SubspaceAssociationRisk(
    const Dataset& original, const TransformPlan& plan,
    const std::vector<size_t>& subspace,
    const std::vector<const CrackFunction*>& cracks,
    const std::vector<double>& rhos);

/// Full single-trial pipeline: samples per-attribute knowledge points,
/// fits `method` per attribute, evaluates the association risk.
SubspaceRiskResult CurveFitSubspaceRisk(const Dataset& original,
                                        const TransformPlan& plan,
                                        const std::vector<size_t>& subspace,
                                        FitMethod method,
                                        const KnowledgeOptions& knowledge,
                                        Rng& rng);

}  // namespace popp

#endif  // POPP_RISK_SUBSPACE_RISK_H_
