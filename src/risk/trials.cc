#include "risk/trials.h"

#include "parallel/parallel_for.h"
#include "util/status.h"

namespace popp {

std::vector<double> CollectTrials(size_t num_trials, uint64_t seed,
                                  const std::function<double(Rng&)>& trial,
                                  const ExecPolicy& exec) {
  POPP_CHECK(num_trials > 0);
  // The master is never advanced: trial t derives the t-th indexed child
  // on demand, wherever (and on whichever thread) it happens to run.
  const Rng master(seed);
  std::vector<double> values(num_trials);
  ParallelFor(exec, num_trials, [&](size_t t) {
    Rng stream = master.Fork(static_cast<uint64_t>(t));
    values[t] = trial(stream);
  });
  return values;
}

std::vector<double> CollectTrialsParallel(
    size_t num_trials, uint64_t seed,
    const std::function<double(Rng&)>& trial, size_t threads) {
  return CollectTrials(num_trials, seed, trial, ExecPolicy{threads});
}

double MedianOverTrials(size_t num_trials, uint64_t seed,
                        const std::function<double(Rng&)>& trial,
                        const ExecPolicy& exec) {
  return Median(CollectTrials(num_trials, seed, trial, exec));
}

Summary SummarizeTrials(size_t num_trials, uint64_t seed,
                        const std::function<double(Rng&)>& trial,
                        const ExecPolicy& exec) {
  return Summarize(CollectTrials(num_trials, seed, trial, exec));
}

}  // namespace popp
