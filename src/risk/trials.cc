#include "risk/trials.h"

#include <atomic>
#include <thread>

#include "util/status.h"

namespace popp {

std::vector<double> CollectTrials(size_t num_trials, uint64_t seed,
                                  const std::function<double(Rng&)>& trial) {
  POPP_CHECK(num_trials > 0);
  Rng master(seed);
  std::vector<double> values;
  values.reserve(num_trials);
  for (size_t t = 0; t < num_trials; ++t) {
    Rng stream = master.Fork();
    values.push_back(trial(stream));
  }
  return values;
}

std::vector<double> CollectTrialsParallel(
    size_t num_trials, uint64_t seed,
    const std::function<double(Rng&)>& trial, size_t threads) {
  POPP_CHECK(num_trials > 0);
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  // Fork all per-trial streams up front (the fork sequence is what makes
  // results identical to the sequential harness).
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(num_trials);
  for (size_t t = 0; t < num_trials; ++t) {
    streams.push_back(master.Fork());
  }
  std::vector<double> values(num_trials);
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const size_t t = next.fetch_add(1);
      if (t >= num_trials) return;
      values[t] = trial(streams[t]);
    }
  };
  std::vector<std::thread> pool;
  const size_t workers = std::min(threads, num_trials);
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back(worker);
  }
  for (auto& t : pool) t.join();
  return values;
}

double MedianOverTrials(size_t num_trials, uint64_t seed,
                        const std::function<double(Rng&)>& trial) {
  return Median(CollectTrials(num_trials, seed, trial));
}

Summary SummarizeTrials(size_t num_trials, uint64_t seed,
                        const std::function<double(Rng&)>& trial) {
  return Summarize(CollectTrials(num_trials, seed, trial));
}

}  // namespace popp
