#include "risk/subspace_risk.h"

#include <unordered_map>

#include "data/summary.h"
#include "risk/crack.h"
#include "transform/compiled.h"
#include "util/status.h"

namespace popp {

SubspaceRiskResult SubspaceAssociationRisk(
    const Dataset& original, const TransformPlan& plan,
    const std::vector<size_t>& subspace,
    const std::vector<const CrackFunction*>& cracks,
    const std::vector<double>& rhos) {
  POPP_CHECK_MSG(!subspace.empty(), "empty subspace");
  POPP_CHECK(cracks.size() == subspace.size());
  POPP_CHECK(rhos.size() == subspace.size());

  // Per attribute: crack verdict per distinct value, computed once. The
  // transform runs compiled (bit-identical) without the LUT — only
  // NumDistinct applies per attribute, too few to amortize a LUT build.
  std::vector<std::unordered_map<AttrValue, bool>> verdicts(subspace.size());
  for (size_t s = 0; s < subspace.size(); ++s) {
    const size_t attr = subspace[s];
    const AttributeSummary summary =
        AttributeSummary::FromDataset(original, attr);
    const CompiledTransform f = CompiledTransform::Compile(
        plan.transform(attr),
        CompiledTransform::CompileOptions{.enable_lut = false});
    auto& verdict = verdicts[s];
    verdict.reserve(summary.NumDistinct());
    for (AttrValue truth : summary.values()) {
      const AttrValue guess = cracks[s]->Guess(f.Apply(truth));
      verdict.emplace(truth, IsCrack(guess, truth, rhos[s]));
    }
  }

  SubspaceRiskResult result;
  result.total = original.NumRows();
  for (size_t r = 0; r < original.NumRows(); ++r) {
    bool all = true;
    for (size_t s = 0; s < subspace.size() && all; ++s) {
      all = verdicts[s].at(original.Value(r, subspace[s]));
    }
    if (all) result.cracks++;
  }
  result.risk = result.total == 0
                    ? 0.0
                    : static_cast<double>(result.cracks) /
                          static_cast<double>(result.total);
  return result;
}

SubspaceRiskResult CurveFitSubspaceRisk(const Dataset& original,
                                        const TransformPlan& plan,
                                        const std::vector<size_t>& subspace,
                                        FitMethod method,
                                        const KnowledgeOptions& knowledge,
                                        Rng& rng) {
  std::vector<std::unique_ptr<CrackFunction>> owned;
  std::vector<const CrackFunction*> cracks;
  std::vector<double> rhos;
  for (size_t attr : subspace) {
    const AttributeSummary summary =
        AttributeSummary::FromDataset(original, attr);
    rhos.push_back(CrackRadius(summary, knowledge.radius_fraction));
    if (knowledge.num_good + knowledge.num_bad == 0) {
      owned.push_back(MakeIdentityCrack());
    } else {
      const CompiledTransform compiled = CompiledTransform::Compile(
          plan.transform(attr),
          CompiledTransform::CompileOptions{.enable_lut = false});
      owned.push_back(FitCurve(
          method, SampleKnowledgePoints(summary, compiled, knowledge, rng)));
    }
    cracks.push_back(owned.back().get());
  }
  return SubspaceAssociationRisk(original, plan, subspace, cracks, rhos);
}

}  // namespace popp
