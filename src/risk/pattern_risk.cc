#include "risk/pattern_risk.h"

#include "data/summary.h"
#include "risk/crack.h"
#include "util/status.h"

namespace popp {

PatternRiskResult PatternDisclosureRisk(
    const DecisionTree& tprime, const TransformPlan& plan,
    const std::vector<const CrackFunction*>& cracks,
    const std::vector<double>& rhos) {
  POPP_CHECK(cracks.size() == plan.NumAttributes());
  POPP_CHECK(rhos.size() == plan.NumAttributes());

  PatternRiskResult result;
  const std::vector<TreePath> paths = tprime.Paths();
  result.total = paths.size();
  for (const TreePath& path : paths) {
    result.paths_by_length[path.length()]++;
    bool all = true;
    for (const PathCondition& cond : path.conditions) {
      const AttrValue truth =
          plan.transform(cond.attribute).InverseThreshold(cond.threshold)
              .value;
      const AttrValue guess = cracks[cond.attribute]->Guess(cond.threshold);
      if (!IsCrack(guess, truth, rhos[cond.attribute])) {
        all = false;
        break;
      }
    }
    if (all) {
      result.cracks++;
      result.cracks_by_length[path.length()]++;
    }
  }
  result.risk = result.total == 0
                    ? 0.0
                    : static_cast<double>(result.cracks) /
                          static_cast<double>(result.total);
  return result;
}

PatternRiskResult CurveFitPatternRisk(const DecisionTree& tprime,
                                      const Dataset& original,
                                      const TransformPlan& plan,
                                      FitMethod method,
                                      const KnowledgeOptions& knowledge,
                                      Rng& rng) {
  std::vector<std::unique_ptr<CrackFunction>> owned;
  std::vector<const CrackFunction*> cracks;
  std::vector<double> rhos;
  for (size_t attr = 0; attr < original.NumAttributes(); ++attr) {
    const AttributeSummary summary =
        AttributeSummary::FromDataset(original, attr);
    rhos.push_back(CrackRadius(summary, knowledge.radius_fraction));
    if (knowledge.num_good + knowledge.num_bad == 0) {
      owned.push_back(MakeIdentityCrack());
    } else {
      owned.push_back(FitCurve(
          method, SampleKnowledgePoints(summary, plan.transform(attr),
                                        knowledge, rng)));
    }
    cracks.push_back(owned.back().get());
  }
  return PatternDisclosureRisk(tprime, plan, cracks, rhos);
}

}  // namespace popp
