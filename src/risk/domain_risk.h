#ifndef POPP_RISK_DOMAIN_RISK_H_
#define POPP_RISK_DOMAIN_RISK_H_

#include <vector>

#include "attack/curve_fit.h"
#include "attack/knowledge.h"
#include "data/summary.h"
#include "parallel/exec_policy.h"
#include "transform/piecewise.h"
#include "util/rng.h"

/// \file
/// Domain disclosure risk (paper Definition 1): the fraction of distinct
/// released values the hacker's crack function recovers to within rho of
/// their true originals.

namespace popp {

/// Outcome of one domain-disclosure evaluation.
struct DomainRiskResult {
  double risk = 0;
  size_t cracks = 0;
  size_t total = 0;
};

/// Per-distinct-value crack indicators, aligned with `original.values()`:
/// entry i tells whether g(f(v_i)) falls within rho of v_i.
std::vector<bool> DomainCrackVector(const AttributeSummary& original,
                                    const PiecewiseTransform& transform,
                                    const CrackFunction& crack, double rho);
/// Compiled-kernel overload; identical result (compiled Apply is
/// bit-identical), no per-value virtual dispatch.
std::vector<bool> DomainCrackVector(const AttributeSummary& original,
                                    const CompiledTransform& transform,
                                    const CrackFunction& crack, double rho);

/// Definition 1's risk: cracked distinct values / distinct values.
DomainRiskResult DomainDisclosureRisk(const AttributeSummary& original,
                                      const PiecewiseTransform& transform,
                                      const CrackFunction& crack, double rho);
/// Compiled-kernel overload; identical result.
DomainRiskResult DomainDisclosureRisk(const AttributeSummary& original,
                                      const CompiledTransform& transform,
                                      const CrackFunction& crack, double rho);

/// Full single-trial pipeline for a curve-fitting attack: sample knowledge
/// points, fit `method`, evaluate the risk. With zero knowledge points the
/// hacker falls back to the identity guess (the ignorant hacker).
DomainRiskResult CurveFitDomainRisk(const AttributeSummary& original,
                                    const PiecewiseTransform& transform,
                                    FitMethod method,
                                    const KnowledgeOptions& knowledge,
                                    Rng& rng);

/// Configuration for a randomized multi-trial domain-risk experiment: each
/// trial draws a fresh transform and fresh knowledge points.
struct DomainRiskExperiment {
  PiecewiseOptions transform_options;
  FitMethod method = FitMethod::kPolyline;
  KnowledgeOptions knowledge;
  size_t num_trials = 101;
  uint64_t seed = 42;
  /// Trials run under this policy (serial by default); each trial draws
  /// from its own indexed RNG stream, so the median is bit-identical at
  /// every thread count.
  ExecPolicy exec;
};

/// Runs the experiment and returns the *median* risk over the trials (the
/// paper reports medians of 500 random trials).
double MedianDomainRisk(const AttributeSummary& original,
                        const DomainRiskExperiment& experiment);

}  // namespace popp

#endif  // POPP_RISK_DOMAIN_RISK_H_
