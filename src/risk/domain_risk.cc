#include "risk/domain_risk.h"

#include "parallel/parallel_for.h"
#include "risk/crack.h"
#include "util/stats.h"
#include "util/status.h"

namespace popp {

std::vector<bool> DomainCrackVector(const AttributeSummary& original,
                                    const PiecewiseTransform& transform,
                                    const CrackFunction& crack, double rho) {
  std::vector<bool> cracked;
  cracked.reserve(original.NumDistinct());
  for (AttrValue truth : original.values()) {
    const AttrValue released = transform.Apply(truth);
    cracked.push_back(IsCrack(crack.Guess(released), truth, rho));
  }
  return cracked;
}

DomainRiskResult DomainDisclosureRisk(const AttributeSummary& original,
                                      const PiecewiseTransform& transform,
                                      const CrackFunction& crack,
                                      double rho) {
  DomainRiskResult result;
  const std::vector<bool> cracked =
      DomainCrackVector(original, transform, crack, rho);
  result.total = cracked.size();
  for (bool c : cracked) {
    if (c) result.cracks++;
  }
  result.risk = result.total == 0
                    ? 0.0
                    : static_cast<double>(result.cracks) /
                          static_cast<double>(result.total);
  return result;
}

DomainRiskResult CurveFitDomainRisk(const AttributeSummary& original,
                                    const PiecewiseTransform& transform,
                                    FitMethod method,
                                    const KnowledgeOptions& knowledge,
                                    Rng& rng) {
  const double rho = CrackRadius(original, knowledge.radius_fraction);
  std::unique_ptr<CrackFunction> crack;
  if (knowledge.num_good + knowledge.num_bad == 0) {
    crack = MakeIdentityCrack();
  } else {
    crack = FitCurve(
        method, SampleKnowledgePoints(original, transform, knowledge, rng));
  }
  return DomainDisclosureRisk(original, transform, *crack, rho);
}

double MedianDomainRisk(const AttributeSummary& original,
                        const DomainRiskExperiment& experiment) {
  POPP_CHECK(experiment.num_trials > 0);
  const Rng master(experiment.seed);
  std::vector<double> risks(experiment.num_trials);
  ParallelFor(experiment.exec, experiment.num_trials, [&](size_t t) {
    Rng trial = master.Fork(static_cast<uint64_t>(t));
    const PiecewiseTransform transform = PiecewiseTransform::Create(
        original, experiment.transform_options, trial);
    risks[t] = CurveFitDomainRisk(original, transform, experiment.method,
                                  experiment.knowledge, trial)
                   .risk;
  });
  return Median(std::move(risks));
}

}  // namespace popp
