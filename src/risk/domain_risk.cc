#include "risk/domain_risk.h"

#include "parallel/parallel_for.h"
#include "risk/crack.h"
#include "util/stats.h"
#include "util/status.h"

namespace popp {

namespace {

template <typename TransformT>
std::vector<bool> DomainCrackVectorImpl(const AttributeSummary& original,
                                        const TransformT& transform,
                                        const CrackFunction& crack,
                                        double rho) {
  std::vector<bool> cracked;
  cracked.reserve(original.NumDistinct());
  for (AttrValue truth : original.values()) {
    const AttrValue released = transform.Apply(truth);
    cracked.push_back(IsCrack(crack.Guess(released), truth, rho));
  }
  return cracked;
}

DomainRiskResult RiskFromCrackVector(std::vector<bool> cracked) {
  DomainRiskResult result;
  result.total = cracked.size();
  for (bool c : cracked) {
    if (c) result.cracks++;
  }
  result.risk = result.total == 0
                    ? 0.0
                    : static_cast<double>(result.cracks) /
                          static_cast<double>(result.total);
  return result;
}

}  // namespace

std::vector<bool> DomainCrackVector(const AttributeSummary& original,
                                    const PiecewiseTransform& transform,
                                    const CrackFunction& crack, double rho) {
  return DomainCrackVectorImpl(original, transform, crack, rho);
}

std::vector<bool> DomainCrackVector(const AttributeSummary& original,
                                    const CompiledTransform& transform,
                                    const CrackFunction& crack, double rho) {
  return DomainCrackVectorImpl(original, transform, crack, rho);
}

DomainRiskResult DomainDisclosureRisk(const AttributeSummary& original,
                                      const PiecewiseTransform& transform,
                                      const CrackFunction& crack,
                                      double rho) {
  return RiskFromCrackVector(DomainCrackVector(original, transform, crack, rho));
}

DomainRiskResult DomainDisclosureRisk(const AttributeSummary& original,
                                      const CompiledTransform& transform,
                                      const CrackFunction& crack,
                                      double rho) {
  return RiskFromCrackVector(DomainCrackVector(original, transform, crack, rho));
}

DomainRiskResult CurveFitDomainRisk(const AttributeSummary& original,
                                    const PiecewiseTransform& transform,
                                    FitMethod method,
                                    const KnowledgeOptions& knowledge,
                                    Rng& rng) {
  // One transform, NumDistinct + O(KP) applies: compile without the LUT
  // (its build cost would exceed the work it amortizes here).
  const CompiledTransform compiled = CompiledTransform::Compile(
      transform, CompiledTransform::CompileOptions{.enable_lut = false});
  const double rho = CrackRadius(original, knowledge.radius_fraction);
  std::unique_ptr<CrackFunction> crack;
  if (knowledge.num_good + knowledge.num_bad == 0) {
    crack = MakeIdentityCrack();
  } else {
    crack = FitCurve(
        method, SampleKnowledgePoints(original, compiled, knowledge, rng));
  }
  return DomainDisclosureRisk(original, compiled, *crack, rho);
}

double MedianDomainRisk(const AttributeSummary& original,
                        const DomainRiskExperiment& experiment) {
  POPP_CHECK(experiment.num_trials > 0);
  const Rng master(experiment.seed);
  std::vector<double> risks(experiment.num_trials);
  ParallelFor(experiment.exec, experiment.num_trials, [&](size_t t) {
    Rng trial = master.Fork(static_cast<uint64_t>(t));
    const PiecewiseTransform transform = PiecewiseTransform::Create(
        original, experiment.transform_options, trial);
    risks[t] = CurveFitDomainRisk(original, transform, experiment.method,
                                  experiment.knowledge, trial)
                   .risk;
  });
  return Median(std::move(risks));
}

}  // namespace popp
