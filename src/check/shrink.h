#ifndef POPP_CHECK_SHRINK_H_
#define POPP_CHECK_SHRINK_H_

#include <functional>
#include <string>

#include "check/generators.h"
#include "util/status.h"

/// \file
/// Failure minimization and reproducer persistence.
///
/// When an oracle fails, the raw trial case is an opaque blob of random
/// rows and options. The shrinker greedily removes rows (delta-debugging
/// style, halving chunk sizes down to single rows), drops attributes, and
/// simplifies the transform configuration (fewer breakpoints, simpler
/// policy, no anti-monotone members) — keeping each step only if the
/// failure persists — then writes the minimal case as a CSV plus a recipe
/// file from which `popp_check --replay` re-derives the identical failure.

namespace popp::check {

/// Returns true iff the candidate case still exhibits the failure under
/// investigation. Implementations must be deterministic.
using FailurePredicate = std::function<bool(const TrialCase&)>;

/// Work counters for shrink diagnostics.
struct ShrinkStats {
  size_t candidates_tried = 0;
  size_t candidates_accepted = 0;
};

/// Greedily minimizes `failing` (which must satisfy `still_fails`) while
/// preserving the failure. Deterministic; terminates because every
/// accepted step strictly shrinks rows, attributes, breakpoints, or an
/// option flag. The result still satisfies `still_fails`.
TrialCase ShrinkCase(TrialCase failing, const FailurePredicate& still_fails,
                     ShrinkStats* stats = nullptr);

/// A persisted failing case: everything needed to re-run one oracle.
struct Reproducer {
  TrialCase c;
  std::string oracle_name;
  std::string message;  ///< diagnostic captured at failure time
};

/// Writes the dataset to `csv_path` (popp CSV format) and the recipe —
/// schema, options, plan seed, oracle name and the CSV's base name — to
/// `recipe_path` ("popp-check-recipe v1", line-oriented, 17-digit doubles).
Status WriteReproducer(const Reproducer& repro, const std::string& csv_path,
                       const std::string& recipe_path);

/// Reloads a recipe and its CSV (resolved relative to the recipe's
/// directory), reconstructing the exact dataset — including the original
/// class-id assignment, which a bare CSV load would not preserve.
Result<Reproducer> LoadReproducer(const std::string& recipe_path);

}  // namespace popp::check

#endif  // POPP_CHECK_SHRINK_H_
